// Reproduces paper Fig. 1: performance and power efficiency of Backprop —
// the compute-intensive showcase.  Expected shape: performance flat across
// memory levels, efficiency maximized at (H-L) on Tesla/Fermi and (M-L) on
// Kepler with gains near 13/39/40/75%.
#include "figure_sweep.hpp"

int main() {
  gppm::bench::run_figure_sweep("Fig. 1", "backprop");
  return 0;
}
