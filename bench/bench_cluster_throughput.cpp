// Scaling, tail-latency and chaos-correctness characterization of the
// gppm::cluster routing layer.  Three phases, one JSON artifact:
//
//   * scaling — closed-loop saturation against shaped fleets of 1, 2 and
//     4 backends.  Each node carries the same service envelope (1 ms
//     service floor, concurrency 4), so per-node capacity — not the one
//     host core — is the binding constraint and the 1→2→4 curve measures
//     what the router adds and what it scales; the gate demands >= 2.5x
//     aggregate throughput at 4 backends vs 1.
//   * hedging — the same non-saturating load against a 3-node fleet where
//     a slice of requests stalls 20 ms (the slow-shard pathology), with
//     hedged requests off then on.  The gate demands a lower p999 with
//     hedging: slow primaries are raced against their replica instead of
//     being waited out.
//   * chaos — a wire fleet (each node behind its own loopback gppm::net
//     server) with every client socket routed through the net.* fault
//     sites while backends are killed and restarted round-robin under
//     load.  Every successful response must be bit-identical to a
//     single untouched reference server's answer: refusals are visible as
//     typed statuses, wrong answers are a failed bench.
//
// Emits BENCH_cluster.json into the working directory; exits nonzero if
// any gate fails.  `--smoke` shrinks the request counts for the
// bench/cluster-labeled ctest smoke.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cluster/fleet.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "fault/injector.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"

using namespace gppm;

namespace {

constexpr sim::GpuModel kBoard = sim::GpuModel::GTX680;

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

bool bit_identical(const serve::Response& a, const serve::Response& b) {
  return std::memcmp(&a.power_watts, &b.power_watts, sizeof(double)) == 0 &&
         std::memcmp(&a.time_seconds, &b.time_seconds, sizeof(double)) == 0 &&
         std::memcmp(&a.energy_joules, &b.energy_joules, sizeof(double)) ==
             0 &&
         a.status == b.status && a.pair == b.pair;
}

struct RunResult {
  double rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t non_ok = 0;
  std::uint64_t divergent = 0;
  cluster::RouterStats router;
};

/// Closed-loop drive of a fleet's router by `workers` threads.  When
/// `truth` is non-null every successful answer is checked bit-identical
/// against it.
RunResult drive(cluster::LocalFleet& fleet,
                const std::vector<serve::Request>& trace, std::size_t workers,
                const std::vector<serve::Response>* truth = nullptr) {
  std::mutex merge_mutex;
  std::vector<double> latencies;
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> non_ok{0};
  std::atomic<std::uint64_t> divergent{0};
  std::atomic<std::size_t> next{0};

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&] {
      std::vector<double> local;
      for (std::size_t i = next.fetch_add(1); i < trace.size();
           i = next.fetch_add(1)) {
        const auto t0 = std::chrono::steady_clock::now();
        const serve::Response r = fleet.router().predict(trace[i]);
        local.push_back(std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
        if (r.ok()) {
          ok.fetch_add(1);
          if (truth != nullptr && !bit_identical(r, (*truth)[i])) {
            divergent.fetch_add(1);
          }
        } else {
          non_ok.fetch_add(1);
        }
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::sort(latencies.begin(), latencies.end());
  RunResult r;
  r.rps = static_cast<double>(latencies.size()) / elapsed;
  r.p50_us = percentile(latencies, 0.50) * 1e6;
  r.p99_us = percentile(latencies, 0.99) * 1e6;
  r.p999_us = percentile(latencies, 0.999) * 1e6;
  r.ok = ok.load();
  r.non_ok = non_ok.load();
  r.divergent = divergent.load();
  r.router = fleet.router().stats();
  return r;
}

std::vector<serve::Request> make_trace(const serve::PhaseCorpus& corpus,
                                       std::size_t count, double jitter) {
  serve::TraceOptions topt;
  topt.request_count = count;
  topt.seed = bench::kCampaignSeed;
  // Govern is stateful (hysteresis), so a replicated fleet cannot promise
  // bit-identity for it; cluster traffic sticks to the pure endpoints.
  topt.govern_fraction = 0.0;
  // Full jitter makes every request a fresh phase, i.e. a fresh routing
  // key: placement spreads uniformly instead of following the Zipf head,
  // which is what a scaling measurement wants.
  topt.counter_jitter = jitter;
  return serve::synthetic_trace(corpus, topt);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const std::size_t scaling_requests = smoke ? 1500 : 6000;
  const std::size_t hedge_requests = smoke ? 2500 : 5000;
  const std::size_t chaos_requests = smoke ? 1200 : 2500;

  bench::print_banner(
      "cluster throughput",
      "Sharded/replicated router over shaped backend fleets: 1->2->4 "
      "scaling, hedged-request tail control, chaos bit-identity gate.");

  const bench::BoardModels& bm = bench::board_models(kBoard);
  const serve::PhaseCorpus corpus = serve::build_phase_corpus(kBoard);

  // ---- Phase 1: 1 -> 2 -> 4 scaling under a per-node service envelope.
  const std::vector<serve::Request> scaling_trace =
      make_trace(corpus, scaling_requests, 1.0);
  const std::size_t fleet_sizes[] = {1, 2, 4};
  std::vector<RunResult> scaling;
  for (const std::size_t n : fleet_sizes) {
    cluster::FleetOptions fopt;
    fopt.backends = n;
    fopt.shaped = true;
    fopt.shaping.min_service = Duration::milliseconds(1.0);
    fopt.shaping.concurrency = 4;
    cluster::RouterOptions ropt;
    ropt.hedging = false;  // capacity, not tail control, is under test
    cluster::LocalFleet fleet(bm.power, bm.perf, fopt, ropt);
    scaling.push_back(drive(fleet, scaling_trace, 32));
    fleet.stop();
    std::cout << n << " backends: " << format_double(scaling.back().rps, 0)
              << " req/s, p50 " << format_double(scaling.back().p50_us, 0)
              << " us, p999 " << format_double(scaling.back().p999_us, 0)
              << " us\n";
  }
  const double speedup_4x = scaling[2].rps / scaling[0].rps;
  const bool scaling_ok = speedup_4x >= 2.5;
  std::cout << "4-backend speedup vs 1: " << format_double(speedup_4x, 2)
            << "x (gate >= 2.5x)\n";

  // ---- Phase 2: p999 with one-in-150 requests stalling 20 ms, hedging
  // off vs on, under non-saturating load.
  const std::vector<serve::Request> hedge_trace =
      make_trace(corpus, hedge_requests, 1.0);
  RunResult unhedged, hedged;
  for (const bool hedging : {false, true}) {
    cluster::FleetOptions fopt;
    fopt.backends = 3;
    fopt.shaped = true;
    fopt.shaping.min_service = Duration::milliseconds(1.0);
    fopt.shaping.concurrency = 4;
    fopt.shaping.lag_every = 150;
    fopt.shaping.lag = Duration::milliseconds(20.0);
    cluster::RouterOptions ropt;
    ropt.hedging = hedging;
    cluster::LocalFleet fleet(bm.power, bm.perf, fopt, ropt);
    (hedging ? hedged : unhedged) = drive(fleet, hedge_trace, 8);
    fleet.stop();
  }
  const bool hedging_ok = hedged.p999_us < unhedged.p999_us;
  std::cout << "p999 unhedged " << format_double(unhedged.p999_us, 0)
            << " us -> hedged " << format_double(hedged.p999_us, 0) << " us ("
            << hedged.router.hedges_fired << " hedges, "
            << hedged.router.hedge_wins << " wins; gate: lower)\n";

  // ---- Phase 3: chaos.  Wire fleet, faulted sockets, backends dying and
  // recovering under load; every successful answer must match the
  // untouched reference server bit for bit.
  const std::vector<serve::Request> chaos_trace =
      make_trace(corpus, chaos_requests, 0.0);
  std::vector<serve::Response> truth(chaos_trace.size());
  {
    serve::PredictionServer reference;
    reference.load_models(bm.power, bm.perf);
    for (std::size_t i = 0; i < chaos_trace.size(); ++i) {
      truth[i] = reference.submit(chaos_trace[i]).get();
    }
  }

  fault::FaultInjector injector(fault::FaultPlan::net_profile(),
                                bench::kCampaignSeed);
  RunResult chaos;
  std::uint64_t kills = 0;
  {
    cluster::FleetOptions fopt;
    fopt.backends = 3;
    fopt.wire = true;
    fopt.injector = &injector;
    fopt.client.retry.max_attempts = 8;
    fopt.client.retry.initial_backoff = Duration::milliseconds(1.0);
    fopt.client.retry.max_backoff = Duration::milliseconds(50.0);
    cluster::LocalFleet fleet(bm.power, bm.perf, fopt, {});

    std::atomic<bool> running{true};
    std::thread reaper([&] {
      std::size_t victim = 0;
      while (running.load()) {
        const std::size_t k = victim++ % fleet.size();
        fleet.kill(k);
        ++kills;
        std::this_thread::sleep_for(std::chrono::milliseconds(40));
        fleet.restart(k);
        for (int tick = 0; tick < 6 && running.load(); ++tick) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      }
    });
    chaos = drive(fleet, chaos_trace, 4, &truth);
    running.store(false);
    reaper.join();
    fleet.stop();
  }
  const bool chaos_ok = chaos.divergent == 0 && chaos.ok > 0;
  std::cout << "chaos: " << chaos.ok << " ok / " << chaos.non_ok
            << " refused, " << chaos.divergent << " divergent, " << kills
            << " backend kills, " << injector.total_fires() << "/"
            << injector.total_checks() << " site checks fired\n";

  AsciiTable table({"metric", "value"});
  table.add_row({"rps 1 backend", format_double(scaling[0].rps, 0)});
  table.add_row({"rps 2 backends", format_double(scaling[1].rps, 0)});
  table.add_row({"rps 4 backends", format_double(scaling[2].rps, 0)});
  table.add_row({"speedup 4 vs 1", format_double(speedup_4x, 2)});
  table.add_row({"p999 us unhedged", format_double(unhedged.p999_us, 1)});
  table.add_row({"p999 us hedged", format_double(hedged.p999_us, 1)});
  table.add_row({"hedges fired", std::to_string(hedged.router.hedges_fired)});
  table.add_row({"chaos divergent", std::to_string(chaos.divergent)});
  table.print(std::cout);

  const bool ok = scaling_ok && hedging_ok && chaos_ok;
  {
    std::ofstream json("BENCH_cluster.json");
    json << "{\n  \"schema\": \"gppm.bench_cluster.v1\",\n"
         << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
         << "  \"scaling\": [\n";
    for (std::size_t i = 0; i < scaling.size(); ++i) {
      json << "    {\"backends\": " << fleet_sizes[i]
           << ", \"rps\": " << format_double(scaling[i].rps, 1)
           << ", \"p50_us\": " << format_double(scaling[i].p50_us, 2)
           << ", \"p99_us\": " << format_double(scaling[i].p99_us, 2)
           << ", \"p999_us\": " << format_double(scaling[i].p999_us, 2)
           << "}" << (i + 1 < scaling.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"speedup_4_vs_1\": " << format_double(speedup_4x, 3) << ",\n"
         << "  \"hedging\": {\n"
         << "    \"lag_every\": 150, \"lag_ms\": 20,\n"
         << "    \"unhedged_p999_us\": " << format_double(unhedged.p999_us, 2)
         << ",\n"
         << "    \"hedged_p999_us\": " << format_double(hedged.p999_us, 2)
         << ",\n"
         << "    \"hedges_fired\": " << hedged.router.hedges_fired << ",\n"
         << "    \"hedge_wins\": " << hedged.router.hedge_wins << ",\n"
         << "    \"p999_improved\": " << (hedging_ok ? "true" : "false")
         << "\n  },\n"
         << "  \"chaos\": {\n"
         << "    \"requests\": " << chaos_trace.size() << ",\n"
         << "    \"ok\": " << chaos.ok << ",\n"
         << "    \"refused\": " << chaos.non_ok << ",\n"
         << "    \"divergent\": " << chaos.divergent << ",\n"
         << "    \"backend_kills\": " << kills << ",\n"
         << "    \"fault_fires\": " << injector.total_fires() << ",\n"
         << "    \"failovers\": " << chaos.router.failovers << ",\n"
         << "    \"bit_identical\": " << (chaos_ok ? "true" : "false")
         << "\n  },\n"
         << "  \"pass\": " << (ok ? "true" : "false") << "\n}\n";
  }
  std::cout << "wrote BENCH_cluster.json\n";
  if (!ok) {
    std::cerr << "FAIL:" << (scaling_ok ? "" : " scaling-gate")
              << (hedging_ok ? "" : " hedging-gate")
              << (chaos_ok ? "" : " chaos-gate") << "\n";
  }
  return ok ? 0 : 1;
}
