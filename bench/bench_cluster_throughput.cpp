// Scaling, tail-latency and chaos-correctness characterization of the
// gppm::cluster routing layer.  Five phases, one JSON artifact:
//
//   * scaling — closed-loop saturation against shaped fleets of 1, 2 and
//     4 backends.  Each node carries the same service envelope (1 ms
//     service floor, concurrency 4), so per-node capacity — not the one
//     host core — is the binding constraint and the 1→2→4 curve measures
//     what the router adds and what it scales; the gate demands >= 2.5x
//     aggregate throughput at 4 backends vs 1.
//   * hedging — the same non-saturating load against a 3-node fleet where
//     a slice of requests stalls 20 ms (the slow-shard pathology), with
//     hedged requests off then on.  The gate demands a lower p999 with
//     hedging: slow primaries are raced against their replica instead of
//     being waited out.
//   * chaos — a wire fleet (each node behind its own loopback gppm::net
//     server) with every client socket routed through the net.* fault
//     sites while backends are killed and restarted round-robin under
//     load.  Every successful response must be bit-identical to a
//     single untouched reference server's answer: refusals are visible as
//     typed statuses, wrong answers are a failed bench.
//   * reconfig — rolling drain/restart of every backend (the zero-downtime
//     upgrade path: drain -> restart -> rejoin, one node at a time) under
//     live traffic.  The gate is absolute: zero failed answers and zero
//     non-bit-identical answers while the whole fleet is cycled at least
//     once.
//   * overload — open-loop arrivals at rates below, near and past the
//     shaped fleet's measured capacity, with AIMD admission control and a
//     50 ms request deadline.  The gate demands that accepted requests
//     keep their p99 within the deadline at every rate while the excess
//     is shed as typed Overloaded answers (graceful degradation, not
//     queue collapse).
//
// Emits BENCH_cluster.json into the working directory; exits nonzero if
// any gate fails.  `--smoke` shrinks the request counts for the
// bench/cluster-labeled ctest smoke.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cluster/fleet.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "fault/injector.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"

using namespace gppm;

namespace {

constexpr sim::GpuModel kBoard = sim::GpuModel::GTX680;

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

bool bit_identical(const serve::Response& a, const serve::Response& b) {
  return std::memcmp(&a.power_watts, &b.power_watts, sizeof(double)) == 0 &&
         std::memcmp(&a.time_seconds, &b.time_seconds, sizeof(double)) == 0 &&
         std::memcmp(&a.energy_joules, &b.energy_joules, sizeof(double)) ==
             0 &&
         a.status == b.status && a.pair == b.pair;
}

struct RunResult {
  double rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t non_ok = 0;
  std::uint64_t divergent = 0;
  cluster::RouterStats router;
};

/// Closed-loop drive of a fleet's router by `workers` threads.  When
/// `truth` is non-null every successful answer is checked bit-identical
/// against it.
RunResult drive(cluster::LocalFleet& fleet,
                const std::vector<serve::Request>& trace, std::size_t workers,
                const std::vector<serve::Response>* truth = nullptr) {
  std::mutex merge_mutex;
  std::vector<double> latencies;
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> non_ok{0};
  std::atomic<std::uint64_t> divergent{0};
  std::atomic<std::size_t> next{0};

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&] {
      std::vector<double> local;
      for (std::size_t i = next.fetch_add(1); i < trace.size();
           i = next.fetch_add(1)) {
        const auto t0 = std::chrono::steady_clock::now();
        const serve::Response r = fleet.router().predict(trace[i]);
        local.push_back(std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
        if (r.ok()) {
          ok.fetch_add(1);
          if (truth != nullptr && !bit_identical(r, (*truth)[i])) {
            divergent.fetch_add(1);
          }
        } else {
          non_ok.fetch_add(1);
        }
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::sort(latencies.begin(), latencies.end());
  RunResult r;
  r.rps = static_cast<double>(latencies.size()) / elapsed;
  r.p50_us = percentile(latencies, 0.50) * 1e6;
  r.p99_us = percentile(latencies, 0.99) * 1e6;
  r.p999_us = percentile(latencies, 0.999) * 1e6;
  r.ok = ok.load();
  r.non_ok = non_ok.load();
  r.divergent = divergent.load();
  r.router = fleet.router().stats();
  return r;
}

/// One rate point of the overload sweep.
struct OverloadPoint {
  double target_rps = 0.0;
  double offered_rps = 0.0;  ///< what the open loop actually offered
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;   ///< typed Overloaded answers
  std::uint64_t other = 0;  ///< other typed refusals (deadline etc.)
  double ok_p99_ms = 0.0;   ///< p99 latency of *accepted* requests
};

/// Open-loop drive: request i is launched at start + i/rate regardless of
/// completions (workers that fall behind fire immediately), so offered
/// load is set by `rate`, not by service capacity — the shape that makes
/// overload visible.
OverloadPoint open_loop_drive(cluster::LocalFleet& fleet,
                              const std::vector<serve::Request>& trace,
                              double rate, Duration deadline,
                              std::size_t workers) {
  std::mutex merge_mutex;
  std::vector<double> ok_latencies;
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> other{0};
  std::atomic<std::size_t> next{0};

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&] {
      std::vector<double> local;
      for (std::size_t i = next.fetch_add(1); i < trace.size();
           i = next.fetch_add(1)) {
        const auto arrival =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(i) / rate));
        std::this_thread::sleep_until(arrival);
        serve::Request request = trace[i];
        request.deadline = deadline;
        const auto t0 = std::chrono::steady_clock::now();
        const serve::Response r = fleet.router().predict(request);
        const double took = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        if (r.ok()) {
          ok.fetch_add(1);
          local.push_back(took);
        } else if (r.status == serve::ResponseStatus::Overloaded) {
          shed.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      ok_latencies.insert(ok_latencies.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::sort(ok_latencies.begin(), ok_latencies.end());
  OverloadPoint point;
  point.target_rps = rate;
  point.offered_rps = static_cast<double>(trace.size()) / elapsed;
  point.ok = ok.load();
  point.shed = shed.load();
  point.other = other.load();
  point.ok_p99_ms = percentile(ok_latencies, 0.99) * 1e3;
  return point;
}

std::vector<serve::Request> make_trace(const serve::PhaseCorpus& corpus,
                                       std::size_t count, double jitter) {
  serve::TraceOptions topt;
  topt.request_count = count;
  topt.seed = bench::kCampaignSeed;
  // Govern is stateful (hysteresis), so a replicated fleet cannot promise
  // bit-identity for it; cluster traffic sticks to the pure endpoints.
  topt.govern_fraction = 0.0;
  // Full jitter makes every request a fresh phase, i.e. a fresh routing
  // key: placement spreads uniformly instead of following the Zipf head,
  // which is what a scaling measurement wants.
  topt.counter_jitter = jitter;
  return serve::synthetic_trace(corpus, topt);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const std::size_t scaling_requests = smoke ? 1500 : 6000;
  const std::size_t hedge_requests = smoke ? 2500 : 5000;
  const std::size_t chaos_requests = smoke ? 1200 : 2500;

  bench::print_banner(
      "cluster throughput",
      "Sharded/replicated router over shaped backend fleets: 1->2->4 "
      "scaling, hedged-request tail control, chaos bit-identity gate.");

  const bench::BoardModels& bm = bench::board_models(kBoard);
  const serve::PhaseCorpus corpus = serve::build_phase_corpus(kBoard);

  // ---- Phase 1: 1 -> 2 -> 4 scaling under a per-node service envelope.
  const std::vector<serve::Request> scaling_trace =
      make_trace(corpus, scaling_requests, 1.0);
  const std::size_t fleet_sizes[] = {1, 2, 4};
  std::vector<RunResult> scaling;
  for (const std::size_t n : fleet_sizes) {
    cluster::FleetOptions fopt;
    fopt.backends = n;
    fopt.shaped = true;
    fopt.shaping.min_service = Duration::milliseconds(1.0);
    fopt.shaping.concurrency = 4;
    cluster::RouterOptions ropt;
    ropt.hedging = false;  // capacity, not tail control, is under test
    cluster::LocalFleet fleet(bm.power, bm.perf, fopt, ropt);
    scaling.push_back(drive(fleet, scaling_trace, 32));
    fleet.stop();
    std::cout << n << " backends: " << format_double(scaling.back().rps, 0)
              << " req/s, p50 " << format_double(scaling.back().p50_us, 0)
              << " us, p999 " << format_double(scaling.back().p999_us, 0)
              << " us\n";
  }
  // Smoke runs measure ~0.2 s per fleet size, which on a busy host puts
  // several hundred req/s of noise on the ratio; the full bench keeps the
  // tight gate, the smoke gate only has to catch scaling being broken.
  const double scaling_gate = smoke ? 2.0 : 2.5;
  const double speedup_4x = scaling[2].rps / scaling[0].rps;
  const bool scaling_ok = speedup_4x >= scaling_gate;
  std::cout << "4-backend speedup vs 1: " << format_double(speedup_4x, 2)
            << "x (gate >= " << format_double(scaling_gate, 1) << "x)\n";

  // ---- Phase 2: p999 with one-in-150 requests stalling 20 ms, hedging
  // off vs on, under non-saturating load.
  const std::vector<serve::Request> hedge_trace =
      make_trace(corpus, hedge_requests, 1.0);
  RunResult unhedged, hedged;
  for (const bool hedging : {false, true}) {
    cluster::FleetOptions fopt;
    fopt.backends = 3;
    fopt.shaped = true;
    fopt.shaping.min_service = Duration::milliseconds(1.0);
    fopt.shaping.concurrency = 4;
    fopt.shaping.lag_every = 150;
    fopt.shaping.lag = Duration::milliseconds(20.0);
    cluster::RouterOptions ropt;
    ropt.hedging = hedging;
    cluster::LocalFleet fleet(bm.power, bm.perf, fopt, ropt);
    (hedging ? hedged : unhedged) = drive(fleet, hedge_trace, 8);
    fleet.stop();
  }
  const bool hedging_ok = hedged.p999_us < unhedged.p999_us;
  std::cout << "p999 unhedged " << format_double(unhedged.p999_us, 0)
            << " us -> hedged " << format_double(hedged.p999_us, 0) << " us ("
            << hedged.router.hedges_fired << " hedges, "
            << hedged.router.hedge_wins << " wins; gate: lower)\n";

  // ---- Phase 3: chaos.  Wire fleet, faulted sockets, backends dying and
  // recovering under load; every successful answer must match the
  // untouched reference server bit for bit.
  const std::vector<serve::Request> chaos_trace =
      make_trace(corpus, chaos_requests, 0.0);
  std::vector<serve::Response> truth(chaos_trace.size());
  {
    serve::PredictionServer reference;
    reference.load_models(bm.power, bm.perf);
    for (std::size_t i = 0; i < chaos_trace.size(); ++i) {
      truth[i] = reference.submit(chaos_trace[i]).get();
    }
  }

  fault::FaultInjector injector(fault::FaultPlan::net_profile(),
                                bench::kCampaignSeed);
  RunResult chaos;
  std::uint64_t kills = 0;
  {
    cluster::FleetOptions fopt;
    fopt.backends = 3;
    fopt.wire = true;
    fopt.injector = &injector;
    fopt.client.retry.max_attempts = 8;
    fopt.client.retry.initial_backoff = Duration::milliseconds(1.0);
    fopt.client.retry.max_backoff = Duration::milliseconds(50.0);
    cluster::LocalFleet fleet(bm.power, bm.perf, fopt, {});

    std::atomic<bool> running{true};
    std::thread reaper([&] {
      std::size_t victim = 0;
      while (running.load()) {
        const std::size_t k = victim++ % fleet.size();
        fleet.kill(k);
        ++kills;
        std::this_thread::sleep_for(std::chrono::milliseconds(40));
        fleet.restart(k);
        for (int tick = 0; tick < 6 && running.load(); ++tick) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      }
    });
    chaos = drive(fleet, chaos_trace, 4, &truth);
    running.store(false);
    reaper.join();
    fleet.stop();
  }
  const bool chaos_ok = chaos.divergent == 0 && chaos.ok > 0;
  std::cout << "chaos: " << chaos.ok << " ok / " << chaos.non_ok
            << " refused, " << chaos.divergent << " divergent, " << kills
            << " backend kills, " << injector.total_fires() << "/"
            << injector.total_checks() << " site checks fired\n";

  // ---- Phase 4: reconfig.  Rolling drain/restart of every backend under
  // live traffic.  Planned removals must be invisible: zero refusals, zero
  // divergence, at least one full sweep of the fleet.
  const std::size_t reconfig_requests = smoke ? 3000 : 12000;
  const std::vector<serve::Request> reconfig_trace =
      make_trace(corpus, reconfig_requests, 0.0);
  std::vector<serve::Response> reconfig_truth(reconfig_trace.size());
  {
    serve::PredictionServer reference;
    reference.load_models(bm.power, bm.perf);
    for (std::size_t i = 0; i < reconfig_trace.size(); ++i) {
      reconfig_truth[i] = reference.submit(reconfig_trace[i]).get();
    }
  }

  RunResult reconfig;
  std::uint64_t rolling_sweeps = 0;
  std::uint64_t rolling_drains = 0;
  bool rolling_zero_loss = true;
  std::size_t reconfig_fleet_size = 0;
  {
    cluster::FleetOptions fopt;
    fopt.backends = 3;
    cluster::RouterOptions ropt;
    ropt.replicas = 2;
    ropt.health_interval = Duration::milliseconds(5.0);
    ropt.breaker.cooldown = std::chrono::milliseconds(20);
    cluster::LocalFleet fleet(bm.power, bm.perf, fopt, ropt);
    reconfig_fleet_size = fleet.size();

    std::atomic<bool> running{true};
    std::thread roller([&] {
      // Keep cycling the fleet until the load finishes, but always finish
      // at least one full sweep so every backend was drained under fire.
      do {
        const cluster::RollingRestartReport report = fleet.rolling_restart();
        ++rolling_sweeps;
        rolling_drains += report.drains.size();
        rolling_zero_loss = rolling_zero_loss && report.zero_loss;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      } while (running.load());
    });
    reconfig = drive(fleet, reconfig_trace, 8, &reconfig_truth);
    running.store(false);
    roller.join();
    fleet.stop();
  }
  const bool reconfig_ok = reconfig.non_ok == 0 && reconfig.divergent == 0 &&
                           rolling_zero_loss &&
                           rolling_drains >= reconfig_fleet_size;
  std::cout << "reconfig: " << rolling_sweeps << " rolling sweeps ("
            << rolling_drains << " drains) under " << reconfig.ok
            << " requests: " << reconfig.non_ok << " refused, "
            << reconfig.divergent
            << " divergent (gate: 0/0, zero-loss, full sweep)\n";

  // ---- Phase 5: overload.  Measure the shaped fleet's closed-loop
  // capacity, then offer open-loop load below, near and past it with AIMD
  // admission and a 50 ms deadline.  Accepted work must stay within the
  // deadline at every rate; the excess must come back as typed Overloaded.
  const Duration overload_deadline = Duration::milliseconds(50.0);
  const std::size_t overload_requests = smoke ? 1500 : 4000;
  const std::vector<serve::Request> overload_trace =
      make_trace(corpus, overload_requests, 1.0);

  cluster::FleetOptions overload_fopt;
  overload_fopt.backends = 2;
  overload_fopt.shaped = true;
  overload_fopt.shaping.min_service = Duration::milliseconds(1.0);
  overload_fopt.shaping.concurrency = 4;

  double capacity_rps = 0.0;
  {
    // Calibration: closed-loop saturation, admission off.
    cluster::RouterOptions ropt;
    ropt.hedging = false;
    cluster::LocalFleet fleet(bm.power, bm.perf, overload_fopt, ropt);
    const std::vector<serve::Request> calibration(
        overload_trace.begin(),
        overload_trace.begin() +
            static_cast<std::ptrdiff_t>(
                std::min<std::size_t>(overload_trace.size(), 1500)));
    capacity_rps = drive(fleet, calibration, 16).rps;
    fleet.stop();
  }

  const double rate_factors[] = {0.5, 0.8, 1.6};
  std::vector<OverloadPoint> overload;
  std::uint64_t overload_admission_shed = 0;
  for (const double factor : rate_factors) {
    cluster::RouterOptions ropt;
    ropt.hedging = false;
    ropt.admission_control = true;
    cluster::LocalFleet fleet(bm.power, bm.perf, overload_fopt, ropt);
    overload.push_back(open_loop_drive(fleet, overload_trace,
                                       capacity_rps * factor,
                                       overload_deadline, 48));
    overload_admission_shed += fleet.router().stats().admission_shed;
    fleet.stop();
    const OverloadPoint& point = overload.back();
    std::cout << "overload " << format_double(factor, 1) << "x capacity ("
              << format_double(point.target_rps, 0) << " req/s): " << point.ok
              << " ok, " << point.shed << " shed, " << point.other
              << " other, ok-p99 " << format_double(point.ok_p99_ms, 1)
              << " ms\n";
  }
  bool overload_p99_ok = true;
  for (const OverloadPoint& point : overload) {
    overload_p99_ok = overload_p99_ok && point.ok > 0 &&
                      point.ok_p99_ms <=
                          overload_deadline.as_seconds() * 1e3;
  }
  const bool overload_shed_ok = overload.back().shed > 0;
  const bool overload_ok = overload_p99_ok && overload_shed_ok;
  std::cout << "overload gate: accepted p99 <= "
            << format_double(overload_deadline.as_seconds() * 1e3, 0)
            << " ms at every rate "
            << (overload_p99_ok ? "(held)" : "(BLOWN)") << ", "
            << overload.back().shed
            << " typed Overloaded sheds past saturation\n";

  AsciiTable table({"metric", "value"});
  table.add_row({"rps 1 backend", format_double(scaling[0].rps, 0)});
  table.add_row({"rps 2 backends", format_double(scaling[1].rps, 0)});
  table.add_row({"rps 4 backends", format_double(scaling[2].rps, 0)});
  table.add_row({"speedup 4 vs 1", format_double(speedup_4x, 2)});
  table.add_row({"p999 us unhedged", format_double(unhedged.p999_us, 1)});
  table.add_row({"p999 us hedged", format_double(hedged.p999_us, 1)});
  table.add_row({"hedges fired", std::to_string(hedged.router.hedges_fired)});
  table.add_row({"chaos divergent", std::to_string(chaos.divergent)});
  table.add_row({"rolling drains", std::to_string(rolling_drains)});
  table.add_row({"reconfig refused", std::to_string(reconfig.non_ok)});
  table.add_row({"reconfig divergent", std::to_string(reconfig.divergent)});
  table.add_row({"capacity req/s", format_double(capacity_rps, 0)});
  table.add_row(
      {"overload p99 ms (1.6x)", format_double(overload.back().ok_p99_ms, 1)});
  table.add_row({"overload sheds (1.6x)", std::to_string(overload.back().shed)});
  table.print(std::cout);

  const bool ok =
      scaling_ok && hedging_ok && chaos_ok && reconfig_ok && overload_ok;
  {
    std::ofstream json("BENCH_cluster.json");
    json << "{\n  \"schema\": \"gppm.bench_cluster.v2\",\n"
         << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
         << "  \"scaling\": [\n";
    for (std::size_t i = 0; i < scaling.size(); ++i) {
      json << "    {\"backends\": " << fleet_sizes[i]
           << ", \"rps\": " << format_double(scaling[i].rps, 1)
           << ", \"p50_us\": " << format_double(scaling[i].p50_us, 2)
           << ", \"p99_us\": " << format_double(scaling[i].p99_us, 2)
           << ", \"p999_us\": " << format_double(scaling[i].p999_us, 2)
           << "}" << (i + 1 < scaling.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"speedup_4_vs_1\": " << format_double(speedup_4x, 3) << ",\n"
         << "  \"hedging\": {\n"
         << "    \"lag_every\": 150, \"lag_ms\": 20,\n"
         << "    \"unhedged_p999_us\": " << format_double(unhedged.p999_us, 2)
         << ",\n"
         << "    \"hedged_p999_us\": " << format_double(hedged.p999_us, 2)
         << ",\n"
         << "    \"hedges_fired\": " << hedged.router.hedges_fired << ",\n"
         << "    \"hedge_wins\": " << hedged.router.hedge_wins << ",\n"
         << "    \"p999_improved\": " << (hedging_ok ? "true" : "false")
         << "\n  },\n"
         << "  \"chaos\": {\n"
         << "    \"requests\": " << chaos_trace.size() << ",\n"
         << "    \"ok\": " << chaos.ok << ",\n"
         << "    \"refused\": " << chaos.non_ok << ",\n"
         << "    \"divergent\": " << chaos.divergent << ",\n"
         << "    \"backend_kills\": " << kills << ",\n"
         << "    \"fault_fires\": " << injector.total_fires() << ",\n"
         << "    \"failovers\": " << chaos.router.failovers << ",\n"
         << "    \"bit_identical\": " << (chaos_ok ? "true" : "false")
         << "\n  },\n"
         << "  \"reconfig\": {\n"
         << "    \"requests\": " << reconfig_trace.size() << ",\n"
         << "    \"rolling_sweeps\": " << rolling_sweeps << ",\n"
         << "    \"drains\": " << rolling_drains << ",\n"
         << "    \"refused\": " << reconfig.non_ok << ",\n"
         << "    \"divergent\": " << reconfig.divergent << ",\n"
         << "    \"zero_loss\": " << (rolling_zero_loss ? "true" : "false")
         << ",\n"
         << "    \"pass\": " << (reconfig_ok ? "true" : "false")
         << "\n  },\n"
         << "  \"overload\": {\n"
         << "    \"deadline_ms\": "
         << format_double(overload_deadline.as_seconds() * 1e3, 0) << ",\n"
         << "    \"capacity_rps\": " << format_double(capacity_rps, 1)
         << ",\n"
         << "    \"admission_shed\": " << overload_admission_shed << ",\n"
         << "    \"points\": [\n";
    for (std::size_t i = 0; i < overload.size(); ++i) {
      const OverloadPoint& point = overload[i];
      json << "      {\"factor\": " << format_double(rate_factors[i], 1)
           << ", \"target_rps\": " << format_double(point.target_rps, 1)
           << ", \"offered_rps\": " << format_double(point.offered_rps, 1)
           << ", \"ok\": " << point.ok << ", \"shed\": " << point.shed
           << ", \"other\": " << point.other
           << ", \"ok_p99_ms\": " << format_double(point.ok_p99_ms, 2) << "}"
           << (i + 1 < overload.size() ? "," : "") << "\n";
    }
    json << "    ],\n"
         << "    \"pass\": " << (overload_ok ? "true" : "false")
         << "\n  },\n"
         << "  \"pass\": " << (ok ? "true" : "false") << "\n}\n";
  }
  std::cout << "wrote BENCH_cluster.json\n";
  if (!ok) {
    std::cerr << "FAIL:" << (scaling_ok ? "" : " scaling-gate")
              << (hedging_ok ? "" : " hedging-gate")
              << (chaos_ok ? "" : " chaos-gate")
              << (reconfig_ok ? "" : " reconfig-gate")
              << (overload_ok ? "" : " overload-gate") << "\n";
  }
  return ok ? 0 : 1;
}
