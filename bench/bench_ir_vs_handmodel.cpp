// Validation V2: traced IR kernels vs hand-parameterized workload models.
//
// The workload library's profiles are hand-derived from algorithm
// structure; the kernel IR derives the same coefficients by executing the
// algorithm and *measuring* its address streams.  For the four algorithms
// present in both forms, this bench compares the derived coefficients and
// the end-to-end simulated behaviour (boundedness and Mem-L sensitivity on
// the reference board).
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "gpusim/timing.hpp"
#include "kernelir/programs.hpp"
#include "kernelir/trace.hpp"
#include "workload/suite.hpp"

using namespace gppm;

namespace {

struct Row {
  std::string algorithm;
  sim::KernelProfile traced;
  sim::KernelProfile hand;
};

double mem_l_slowdown(const sim::KernelProfile& k) {
  const sim::DeviceSpec& spec = sim::device_spec(sim::GpuModel::GTX480);
  const double hh =
      sim::compute_kernel_timing(spec, k, sim::kDefaultPair).kernel_time.as_seconds();
  const double hl = sim::compute_kernel_timing(
                        spec, k, {sim::ClockLevel::High, sim::ClockLevel::Low})
                        .kernel_time.as_seconds();
  return hl / hh;
}

std::string boundedness(const sim::KernelProfile& k) {
  const sim::DeviceSpec& spec = sim::device_spec(sim::GpuModel::GTX480);
  const auto t = sim::compute_kernel_timing(spec, k, sim::kDefaultPair);
  return t.compute_time.as_seconds() > t.memory_time.as_seconds() ? "compute"
                                                                  : "memory";
}

}  // namespace

int main() {
  bench::print_banner("Validation V2",
                      "Traced IR kernels vs hand-parameterized workload "
                      "models: measured coefficients and end-to-end "
                      "behaviour on the GTX 480.");

  std::vector<Row> rows;
  rows.push_back({"vector add", ir::derive_profile(ir::vector_add(1 << 22)),
                  workload::find_benchmark("MAdd").max_profile().kernels[0]});
  rows.push_back({"tiled matmul",
                  ir::derive_profile(ir::matrix_mul_tiled(1024)),
                  workload::find_benchmark("MMul").max_profile().kernels[0]});
  rows.push_back({"transpose", ir::derive_profile(ir::transpose_naive(2048)),
                  workload::find_benchmark("MTranspose").max_profile().kernels[0]});
  rows.push_back({"stencil", ir::derive_profile(ir::stencil5(1 << 20, 8)),
                  workload::find_benchmark("stencil").max_profile().kernels[0]});

  AsciiTable table({"algorithm", "source", "coalescing", "locality",
                    "bank", "boundedness", "Mem-L slowdown"});
  bench::begin_csv("ir_vs_handmodel");
  CsvWriter csv(std::cout);
  csv.row({"algorithm", "source", "coalescing", "locality", "bank_conflict",
           "boundedness", "mem_l_slowdown"});

  for (const Row& row : rows) {
    for (const auto& [label, profile] :
         {std::pair<const char*, const sim::KernelProfile*>{"traced",
                                                            &row.traced},
          {"hand", &row.hand}}) {
      table.add_row({row.algorithm, label, format_double(profile->coalescing, 2),
                     format_double(profile->locality, 2),
                     format_double(profile->bank_conflict, 2),
                     boundedness(*profile),
                     format_double(mem_l_slowdown(*profile), 2)});
      csv.row({row.algorithm, label, format_double(profile->coalescing, 3),
               format_double(profile->locality, 3),
               format_double(profile->bank_conflict, 3), boundedness(*profile),
               format_double(mem_l_slowdown(*profile), 3)});
    }
  }
  table.print(std::cout);
  bench::end_csv();
  std::cout
      << "Expected: each traced/hand pair agrees on boundedness at (H-H), and "
         "the streaming,\ntranspose and stencil rows agree on Mem-L "
         "sensitivity.  Known gap: the traced matmul\nis a plain shared-tiled "
         "kernel (arithmetic intensity 2 FLOPs per tile byte per k-step),\n"
         "while the hand MMul/sgemm profiles model register-blocked kernels "
         "with ~4x higher\nintensity — hence the traced version turns "
         "memory-bound at Mem-L where the hand\nmodel stays compute-bound.  "
         "Tracing makes such modeling assumptions visible.\n";
  return 0;
}
