// Reproduces paper TABLE VII: average prediction error of the power model,
// in percent and in watts.  Paper: 15.0/14.0/18.2/23.5 % and
// 20.1/15.2/24.4/23.7 W.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/str.hpp"
#include "common/table.hpp"

using namespace gppm;

int main() {
  bench::print_banner("TABLE VII",
                      "Average prediction error of the power model.");

  AsciiTable table({"", "GTX 285", "GTX 460", "GTX 480", "GTX 680"});
  std::vector<std::string> pct = {"Error[%]"}, watts = {"Error[W]"};
  std::vector<double> pct_v, watts_v;
  for (sim::GpuModel m : sim::kAllGpus) {
    const bench::BoardModels& bm = bench::board_models(m);
    const core::Evaluation eval = core::evaluate(bm.power, bm.dataset);
    pct.push_back(format_double(eval.mape(), 1));
    watts.push_back(format_double(eval.mean_abs_error(), 1));
    pct_v.push_back(eval.mape());
    watts_v.push_back(eval.mean_abs_error());
  }
  table.add_row(pct);
  table.add_row(watts);
  table.print(std::cout);
  std::cout << "paper: 15.0/14.0/18.2/23.5 %  and  20.1/15.2/24.4/23.7 W\n";

  bench::begin_csv("table7_power_error");
  CsvWriter csv(std::cout);
  csv.row({"metric", "gtx285", "gtx460", "gtx480", "gtx680"});
  csv.row("error_pct", pct_v, 2);
  csv.row("error_w", watts_v, 2);
  bench::end_csv();
  return 0;
}
