#include "error_distribution.hpp"

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "common/csv.hpp"
#include "common/str.hpp"

namespace gppm::bench {

void run_error_distribution(const std::string& figure_id,
                            core::TargetKind target) {
  const std::string what =
      target == core::TargetKind::Power ? "power" : "performance";
  print_banner(figure_id, "Errors in prediction of the " + what +
                              " model, by distribution over all benchmarks "
                              "(sorted independently per board).");

  begin_csv("error_distribution_" + what);
  CsvWriter csv(std::cout);
  csv.row({"gpu", "rank", "benchmark", "mean_abs_pct_error"});

  for (sim::GpuModel model : sim::kAllGpus) {
    const BoardModels& bm = board_models(model);
    const core::UnifiedModel& m =
        target == core::TargetKind::Power ? bm.power : bm.perf;
    const core::Evaluation eval = core::evaluate(m, bm.dataset);
    auto per_bench = core::per_benchmark_errors(eval, bm.dataset);
    std::sort(per_bench.begin(), per_bench.end(),
              [](const core::BenchmarkError& a, const core::BenchmarkError& b) {
                return a.mean_abs_percent_error < b.mean_abs_percent_error;
              });
    for (std::size_t i = 0; i < per_bench.size(); ++i) {
      csv.row({sim::to_string(model), std::to_string(i),
               per_bench[i].benchmark,
               format_double(per_bench[i].mean_abs_percent_error, 2)});
    }
  }
  end_csv();

  for (sim::GpuModel model : sim::kAllGpus) {
    const BoardModels& bm = board_models(model);
    const core::UnifiedModel& m =
        target == core::TargetKind::Power ? bm.power : bm.perf;
    const core::Evaluation eval = core::evaluate(m, bm.dataset);
    auto per_bench = core::per_benchmark_errors(eval, bm.dataset);
    std::sort(per_bench.begin(), per_bench.end(),
              [](const core::BenchmarkError& a, const core::BenchmarkError& b) {
                return a.mean_abs_percent_error < b.mean_abs_percent_error;
              });

    LineChart chart(sim::to_string(model) + " — " + what +
                        " prediction error by benchmark rank",
                    "benchmark (sorted by error)", "mean |error| (%)");
    Series s;
    s.label = "per-benchmark mean |error|";
    for (std::size_t i = 0; i < per_bench.size(); ++i) {
      s.x.push_back(static_cast<double>(i));
      s.y.push_back(per_bench[i].mean_abs_percent_error);
    }
    chart.add_series(std::move(s));
    chart.print(std::cout, 56, 12);

    std::size_t under20 = 0;
    for (const core::BenchmarkError& b : per_bench) {
      if (b.mean_abs_percent_error < 20.0) ++under20;
    }
    std::cout << "overall mean |error| " << format_double(eval.mape(), 1)
              << "%, benchmarks under 20%: " << under20 << "/"
              << per_bench.size() << "\n\n";
  }
}

}  // namespace gppm::bench
