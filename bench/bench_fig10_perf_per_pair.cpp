// Reproduces paper Fig. 10: impact of GPU clocks on the performance model —
// same comparison as Fig. 9 for the execution-time model.
#include "per_pair_boxes.hpp"

int main() {
  gppm::bench::run_per_pair_boxes("Fig. 10", gppm::core::TargetKind::ExecTime);
  return 0;
}
