// Ablation A4 (library extension): frequency-only (paper Eq. 1) vs
// voltage-aware (V^2 f) power features.
//
// Dynamic power follows C V^2 f and the boards scale voltage with
// frequency, so the paper's linear-in-f features systematically
// under-predict how much power a low P-state saves.  This ablation measures
// two consequences on every board:
//   1. the power model's prediction error, and
//   2. the quality of model-driven DVFS (how much of the oracle's energy
//      saving a governor recovers when picking the predicted minimum-energy
//      pair for each corpus sample).
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "core/optimizer.hpp"

using namespace gppm;

namespace {

struct GovernorScore {
  double saving_vs_default_pct;  ///< measured energy saved by the picks
  double oracle_capture_pct;     ///< share of the oracle saving recovered
};

GovernorScore score_governor(const core::Dataset& ds,
                             const core::UnifiedModel& power,
                             const core::UnifiedModel& perf) {
  double chosen = 0, def = 0, oracle = 0;
  for (const core::Sample& s : ds.samples) {
    const sim::FrequencyPair pick =
        core::predict_min_energy_pair(power, perf, s.counters);
    double best = 1e300;
    for (const core::Measurement& m : s.runs) {
      const double e = m.energy.as_joules();
      if (m.pair == pick) chosen += e;
      if (m.pair == sim::kDefaultPair) def += e;
      best = std::min(best, e);
    }
    oracle += best;
  }
  GovernorScore score;
  score.saving_vs_default_pct = (1.0 - chosen / def) * 100.0;
  score.oracle_capture_pct = (def - chosen) / (def - oracle) * 100.0;
  return score;
}

}  // namespace

int main() {
  bench::print_banner("Ablation A4",
                      "Paper Eq. 1 (features ~ f) vs voltage-aware extension "
                      "(features ~ V^2 f): power-model error and model-driven "
                      "DVFS quality.");

  AsciiTable table({"GPU", "err% (f)", "err% (V^2f)", "err% (V^2f+base)",
                    "save% (f)", "save% (V^2f)", "save% (V^2f+base)",
                    "capture% (V^2f+base)"});
  bench::begin_csv("ablation_voltage_scaling");
  CsvWriter csv(std::cout);
  csv.row({"gpu", "err_f", "err_v2f", "err_v2f_base", "saving_f",
           "saving_v2f", "saving_v2f_base", "capture_v2f_base"});

  for (sim::GpuModel model : sim::kAllGpus) {
    const bench::BoardModels& bm = bench::board_models(model);

    core::ModelOptions vopt;
    vopt.scaling = core::FeatureScaling::VoltageSquaredFrequency;
    const core::UnifiedModel vpower =
        core::UnifiedModel::fit(bm.dataset, core::TargetKind::Power, vopt);

    core::ModelOptions bopt = vopt;
    bopt.include_baseline_terms = true;
    const core::UnifiedModel bpower =
        core::UnifiedModel::fit(bm.dataset, core::TargetKind::Power, bopt);

    const double err_f = core::evaluate(bm.power, bm.dataset).mape();
    const double err_v = core::evaluate(vpower, bm.dataset).mape();
    const double err_b = core::evaluate(bpower, bm.dataset).mape();
    const GovernorScore g_f = score_governor(bm.dataset, bm.power, bm.perf);
    const GovernorScore g_v = score_governor(bm.dataset, vpower, bm.perf);
    const GovernorScore g_b = score_governor(bm.dataset, bpower, bm.perf);

    table.add_row({sim::to_string(model), format_double(err_f, 1),
                   format_double(err_v, 1), format_double(err_b, 1),
                   format_double(g_f.saving_vs_default_pct, 1),
                   format_double(g_v.saving_vs_default_pct, 1),
                   format_double(g_b.saving_vs_default_pct, 1),
                   format_double(g_b.oracle_capture_pct, 0)});
    csv.row(sim::to_string(model),
            {err_f, err_v, err_b, g_f.saving_vs_default_pct,
             g_v.saving_vs_default_pct, g_b.saving_vs_default_pct,
             g_b.oracle_capture_pct},
            2);
  }
  table.print(std::cout);
  bench::end_csv();
  std::cout << "Expected: the paper's frequency-only features cannot value "
               "down-clocking (saving ~0);\nadding V^2 scaling and per-domain "
               "baseline terms turns the same regression into a\nworking "
               "DVFS predictor.\n";
  return 0;
}
