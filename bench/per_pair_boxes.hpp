// Shared driver for Figs. 9/10: box-and-whisker error distributions of
// per-frequency-pair baseline models versus the unified model.
#pragma once

#include <string>

#include "core/features.hpp"

namespace gppm::bench {

void run_per_pair_boxes(const std::string& figure_id, core::TargetKind target);

}  // namespace gppm::bench
