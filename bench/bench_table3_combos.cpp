// Reproduces paper TABLE III: configurable frequency combinations, read
// back through the synthetic VBIOS images (the same path the DVFS
// controller uses), not from the static table.
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "dvfs/vbios.hpp"

using namespace gppm;

int main() {
  bench::print_banner("TABLE III", "Configurable frequency combinations.");

  std::vector<std::string> header = {"Pair"};
  for (sim::GpuModel m : sim::kAllGpus) header.push_back(sim::to_string(m));
  AsciiTable table(header);

  std::vector<dvfs::PerfTable> tables;
  for (sim::GpuModel m : sim::kAllGpus) {
    tables.push_back(dvfs::parse_vbios(dvfs::build_vbios(m)));
  }

  for (std::size_t row = 0; row < tables.front().entries.size(); ++row) {
    const sim::FrequencyPair pair = tables.front().entries[row].pair;
    std::vector<std::string> cells = {
        "Core-" + sim::to_string(pair.core) + ", Mem-" + sim::to_string(pair.mem)};
    for (const dvfs::PerfTable& t : tables) {
      cells.push_back(t.entries[row].configurable ? "yes" : "-");
    }
    table.add_row(cells);
  }
  table.print(std::cout);

  bench::begin_csv("table3_combos");
  CsvWriter csv(std::cout);
  csv.row({"pair", "gtx285", "gtx460", "gtx480", "gtx680"});
  for (std::size_t row = 0; row < tables.front().entries.size(); ++row) {
    std::vector<std::string> cells = {
        sim::to_string(tables.front().entries[row].pair)};
    for (const dvfs::PerfTable& t : tables) {
      cells.push_back(t.entries[row].configurable ? "1" : "0");
    }
    csv.row(cells);
  }
  bench::end_csv();
  return 0;
}
