// Shared driver for the Figs. 1-3 per-benchmark characterization figures:
// performance and power efficiency versus the core frequency, one series
// per memory frequency, one panel per board.
#pragma once

#include <string>

namespace gppm::bench {

/// Render the full figure (4 boards x 2 panels) for a benchmark at its
/// maximum input size, plus the underlying CSV.  `figure_id` is e.g.
/// "Fig. 1".
void run_figure_sweep(const std::string& figure_id,
                      const std::string& benchmark_name);

}  // namespace gppm::bench
