// Serving throughput and latency of the gppm::serve engine.
//
// Replays the synthetic 37-benchmark-suite trace against PredictionServer
// in two load-generator modes:
//   * closed loop — C clients, one request in flight each, measuring
//     sustained requests/sec while the worker count scales 1 -> 2 -> 4,
//     on both the warm-cache trace (phases repeat, Zipf popularity) and a
//     jittered all-miss trace (every request a fresh phase);
//   * open loop — paced arrivals at a fraction of the measured closed-loop
//     capacity, reporting the latency distribution under non-saturating
//     load and the shed-request count under overload.
//
// The scaling headline (4-worker vs 1-worker throughput) depends on the
// machine: the worker pool is CPU-bound, so a box with fewer than ~5
// hardware threads (4 workers + clients) caps the achievable ratio at
// roughly its core count.  The bench prints hardware_concurrency next to
// the ratio so the number reads honestly.
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"

using namespace gppm;

namespace {

constexpr sim::GpuModel kBoard = sim::GpuModel::GTX680;
constexpr std::size_t kClients = 4;
constexpr std::size_t kWarmRequests = 30000;
constexpr std::size_t kColdRequests = 8000;

struct LoadResult {
  double requests_per_sec = 0.0;
  serve::ServerMetrics metrics;
};

/// Closed loop: each client keeps exactly one request in flight.
LoadResult closed_loop(serve::PredictionServer& server,
                       const std::vector<serve::Request>& trace) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = c; i < trace.size(); i += kClients) {
        server.submit(trace[i]).get();
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  LoadResult result;
  result.requests_per_sec = static_cast<double>(trace.size()) / elapsed;
  result.metrics = server.metrics();
  return result;
}

/// Open loop: one producer paces arrivals at `rate_per_sec`, shedding
/// (try_submit) when the queue is full.
LoadResult open_loop(serve::PredictionServer& server,
                     const std::vector<serve::Request>& trace,
                     double rate_per_sec) {
  std::vector<std::future<serve::Response>> inflight;
  inflight.reserve(trace.size());
  const auto start = std::chrono::steady_clock::now();
  const std::chrono::duration<double> interval(1.0 / rate_per_sec);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    std::this_thread::sleep_until(start + interval * static_cast<double>(i));
    auto future = server.try_submit(trace[i]);
    if (future) inflight.push_back(std::move(*future));
  }
  for (auto& f : inflight) f.get();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  LoadResult result;
  result.requests_per_sec = static_cast<double>(inflight.size()) / elapsed;
  result.metrics = server.metrics();
  return result;
}

}  // namespace

int main() {
  bench::print_banner(
      "Serving throughput",
      "Closed- and open-loop load against the concurrent prediction server "
      "(synthetic suite trace, Zipf phase popularity).");

  const bench::BoardModels& bm = bench::board_models(kBoard);
  core::ModelOptions popt;
  popt.scaling = core::FeatureScaling::VoltageSquaredFrequency;
  popt.include_baseline_terms = true;
  const core::UnifiedModel power_model =
      core::UnifiedModel::fit(bm.dataset, core::TargetKind::Power, popt);
  const core::UnifiedModel perf_model =
      core::UnifiedModel::fit(bm.dataset, core::TargetKind::ExecTime);
  const serve::PhaseCorpus corpus = serve::build_phase_corpus(kBoard);

  serve::TraceOptions warm_opt;
  warm_opt.request_count = kWarmRequests;
  const std::vector<serve::Request> warm_trace =
      serve::synthetic_trace(corpus, warm_opt);

  serve::TraceOptions cold_opt;
  cold_opt.request_count = kColdRequests;
  cold_opt.counter_jitter = 1.0;  // every request a fresh phase: all misses
  const std::vector<serve::Request> cold_trace =
      serve::synthetic_trace(corpus, cold_opt);

  std::cout << corpus.counters.size() << " phases, hardware_concurrency "
            << std::thread::hardware_concurrency() << ", " << kClients
            << " closed-loop clients\n";

  const std::vector<std::size_t> worker_counts = {1, 2, 4};
  AsciiTable table({"trace", "workers", "req/s", "speedup vs 1w",
                    "cache hit %", "mean batch", "p95 us", "queue hw"});
  table.set_title("closed-loop scaling");

  CsvWriter csv(std::cout);
  struct Row {
    std::string trace;
    std::size_t workers;
    LoadResult r;
    double speedup;
  };
  std::vector<Row> rows;

  double warm_1w = 0.0, warm_4w = 0.0, warm_4w_hit_rate = 0.0;
  for (const char* trace_name : {"warm", "cold"}) {
    const bool warm = std::string(trace_name) == "warm";
    const std::vector<serve::Request>& trace = warm ? warm_trace : cold_trace;
    double base = 0.0;
    for (std::size_t workers : worker_counts) {
      serve::ServerOptions opt;
      opt.worker_threads = workers;
      serve::PredictionServer server(opt);
      server.load_models(power_model, perf_model);
      const LoadResult r = closed_loop(server, trace);
      if (workers == 1) base = r.requests_per_sec;
      const double speedup = r.requests_per_sec / base;
      if (warm && workers == 1) warm_1w = r.requests_per_sec;
      if (warm && workers == 4) {
        warm_4w = r.requests_per_sec;
        warm_4w_hit_rate = r.metrics.cache.hit_rate();
      }
      // The optimize/govern endpoints dominate p95; report the worst one.
      double p95 = 0.0;
      for (const serve::EndpointStats& s : r.metrics.endpoints) {
        if (s.p95_seconds > p95) p95 = s.p95_seconds;
      }
      table.add_row({trace_name, std::to_string(workers),
                     format_double(r.requests_per_sec, 0),
                     format_double(speedup, 2),
                     format_double(r.metrics.cache.hit_rate() * 100.0, 1),
                     format_double(r.metrics.mean_batch_size, 2),
                     format_double(p95 * 1e6, 1),
                     std::to_string(r.metrics.queue_high_water)});
      rows.push_back({trace_name, workers, r, speedup});
    }
  }
  table.print(std::cout);

  std::cout << "4-worker vs 1-worker (warm trace): "
            << format_double(warm_4w / warm_1w, 2) << "x at "
            << format_double(warm_4w_hit_rate * 100.0, 1)
            << "% cache hit rate (target >= 2.5x on a >= 4-core machine; "
            << "this machine offers " << std::thread::hardware_concurrency()
            << " hardware threads)\n\n";

  // Open loop at ~60% of the measured 4-worker capacity: the latency
  // distribution a non-saturated server delivers.
  {
    serve::ServerOptions opt;
    opt.worker_threads = 4;
    serve::PredictionServer server(opt);
    server.load_models(power_model, perf_model);
    const double rate = 0.6 * warm_4w;
    const LoadResult r = open_loop(server, warm_trace, rate);
    std::cout << "open loop at " << format_double(rate, 0) << " req/s target ("
              << format_double(r.requests_per_sec, 0) << " served, "
              << r.metrics.rejected_requests << " shed):\n";
    r.metrics.print(std::cout);
  }

  bench::begin_csv("serve_throughput");
  csv.row({"trace", "workers", "req_per_sec", "speedup_vs_1w",
           "cache_hit_rate", "mean_batch", "queue_high_water"});
  for (const Row& row : rows) {
    csv.row({row.trace, std::to_string(row.workers),
             format_double(row.r.requests_per_sec, 1),
             format_double(row.speedup, 3),
             format_double(row.r.metrics.cache.hit_rate(), 4),
             format_double(row.r.metrics.mean_batch_size, 3),
             std::to_string(row.r.metrics.queue_high_water)});
  }
  bench::end_csv();
  return 0;
}
