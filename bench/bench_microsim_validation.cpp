// Validation V1: analytical roofline vs cycle-level micro-simulation.
//
// The characterization results rest on the analytical timing model of
// timing.cpp.  This bench cross-validates it against the independent
// event-driven SM simulator (gpusim/microsim) over the whole suite, every
// board and every configurable pair: per-pair time ratios, rank
// correlation of per-pair orderings, and where the two models disagree.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "dvfs/combos.hpp"
#include "gpusim/microsim.hpp"
#include "gpusim/timing.hpp"
#include "stats/descriptive.hpp"
#include "workload/suite.hpp"

using namespace gppm;

int main() {
  bench::print_banner("Validation V1",
                      "Analytical roofline vs cycle-level micro-simulation "
                      "over suite x boards x pairs.");

  bench::begin_csv("microsim_validation");
  CsvWriter csv(std::cout);
  csv.row({"gpu", "benchmark", "pair", "analytical_s", "microsim_s", "ratio"});

  AsciiTable table({"GPU", "median ratio", "p10 ratio", "p90 ratio",
                    "perf-rank corr."});

  for (sim::GpuModel model : sim::kAllGpus) {
    const sim::DeviceSpec& spec = sim::device_spec(model);
    std::vector<double> ratios;
    std::vector<double> analytic_series, micro_series;

    for (const workload::BenchmarkDef& def : workload::benchmark_suite()) {
      const sim::RunProfile profile = def.max_profile();
      for (sim::FrequencyPair pair : dvfs::configurable_pairs(model)) {
        double analytic = 0, micro = 0;
        for (const sim::KernelProfile& k : profile.kernels) {
          analytic +=
              sim::compute_kernel_timing(spec, k, pair).total_time.as_seconds();
          micro += sim::microsim_kernel(spec, k, pair).total_time.as_seconds();
        }
        const double ratio = micro / analytic;
        ratios.push_back(ratio);
        analytic_series.push_back(analytic);
        micro_series.push_back(micro);
        csv.row({sim::to_string(model), def.name, sim::to_string(pair),
                 format_double(analytic, 5), format_double(micro, 5),
                 format_double(ratio, 3)});
      }
    }

    // Rank correlation on log-times (orderings matter for DVFS decisions).
    std::vector<double> la, lm;
    for (std::size_t i = 0; i < analytic_series.size(); ++i) {
      la.push_back(std::log(analytic_series[i]));
      lm.push_back(std::log(micro_series[i]));
    }
    table.add_row({sim::to_string(model),
                   format_double(stats::median(ratios), 2),
                   format_double(stats::quantile(ratios, 0.10), 2),
                   format_double(stats::quantile(ratios, 0.90), 2),
                   format_double(stats::pearson(la, lm), 3)});
  }
  bench::end_csv();
  table.print(std::cout);
  std::cout << "Expected: median ratio near 1, tight decile band, log-time "
               "correlation > 0.95 —\nthe analytical model the "
               "characterization uses agrees with an independent\n"
               "cycle-level simulation of the same hardware parameters.\n";
  return 0;
}
