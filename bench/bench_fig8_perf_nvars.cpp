// Reproduces paper Fig. 8: impact of the number of explanatory variables on
// the performance model.  Expected: little improvement beyond ~10 variables.
#include "nvars_sweep.hpp"

int main() {
  gppm::bench::run_nvars_sweep("Fig. 8", gppm::core::TargetKind::ExecTime);
  return 0;
}
