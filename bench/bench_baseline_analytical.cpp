// Baseline B1: statistical unified model vs the Hong-&-Kim-style analytical
// model (paper Section V).
//
// Two claims of the paper's related-work argument are measured:
//   1. a per-board-calibrated analytical model is competitive on its own
//      board (the diagonal of the transfer matrix), but
//   2. its tuned parameters do not transfer across boards — even within a
//      generation — while the statistical model simply refits from the new
//      board's counters.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "core/analytical_model.hpp"

using namespace gppm;

namespace {

double analytical_mape(const core::AnalyticalPerfModel& model,
                       const core::Dataset& ds) {
  double acc = 0;
  std::size_t n = 0;
  for (const core::Sample& s : ds.samples) {
    for (const core::Measurement& m : s.runs) {
      const double pred = model.predict_seconds(s.counters, m.pair);
      const double actual = m.exec_time.as_seconds();
      acc += std::abs(pred - actual) / actual * 100.0;
      ++n;
    }
  }
  return acc / static_cast<double>(n);
}

}  // namespace

int main() {
  bench::print_banner("Baseline B1",
                      "Statistical unified model vs Hong-&-Kim-style "
                      "analytical model (per-board calibration and "
                      "cross-board transfer).");

  // Per-board comparison.
  AsciiTable table({"GPU", "statistical err%", "analytical err% (own board)"});
  std::vector<core::AnalyticalPerfModel> calibrated;
  for (sim::GpuModel model : sim::kAllGpus) {
    const bench::BoardModels& bm = bench::board_models(model);
    calibrated.push_back(core::AnalyticalPerfModel::calibrate(bm.dataset));
    table.add_row({sim::to_string(model),
                   format_double(core::evaluate(bm.perf, bm.dataset).mape(), 1),
                   format_double(analytical_mape(calibrated.back(), bm.dataset), 1)});
  }
  table.print(std::cout);

  // Transfer matrix: calibrate on row board, evaluate on column board.
  std::cout << "\nAnalytical-model transfer matrix (err%, calibrated on row, "
               "evaluated on column):\n";
  std::vector<std::string> header = {"calibrated on \\ evaluated on"};
  for (sim::GpuModel m : sim::kAllGpus) header.push_back(sim::to_string(m));
  AsciiTable transfer(header);

  bench::begin_csv("baseline_analytical_transfer");
  CsvWriter csv(std::cout);
  csv.row({"calibrated_on", "gtx285", "gtx460", "gtx480", "gtx680"});

  for (std::size_t src = 0; src < sim::kAllGpus.size(); ++src) {
    std::vector<std::string> cells = {sim::to_string(sim::kAllGpus[src])};
    std::vector<double> values;
    for (std::size_t dst = 0; dst < sim::kAllGpus.size(); ++dst) {
      const bench::BoardModels& bm = bench::board_models(sim::kAllGpus[dst]);
      const core::AnalyticalPerfModel moved =
          calibrated[src].transferred_to(sim::kAllGpus[dst]);
      const double err = analytical_mape(moved, bm.dataset);
      cells.push_back(format_double(err, 1));
      values.push_back(err);
    }
    transfer.add_row(cells);
    csv.row(sim::to_string(sim::kAllGpus[src]), values, 2);
  }
  transfer.print(std::cout);
  bench::end_csv();

  std::cout << "Expected: the diagonal (own-board calibration) is competitive "
               "with the statistical\nmodel; off-diagonal transfer degrades "
               "badly — the paper's portability argument.\n";
  return 0;
}
