// Reproduces paper Fig. 11: selected explanatory variables and their
// impact of influence on power and performance — for each board and model,
// the forward-selection order with each variable's marginal contribution to
// adjusted R^2.
#include <iostream>

#include "bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "common/csv.hpp"
#include "common/str.hpp"
#include "profiler/counters.hpp"

using namespace gppm;

namespace {

void render(const core::UnifiedModel& model, const std::string& label,
            CsvWriter& csv) {
  BarChart chart(label + " — marginal adjusted-R^2 contribution per selected "
                         "variable (selection order)");
  double prev = 0.0;
  for (const core::SelectedVariable& v : model.variables()) {
    const double marginal = v.cumulative_adjusted_r2 - prev;
    prev = v.cumulative_adjusted_r2;
    chart.add_bar(v.counter + " [" + profiler::to_string(v.klass) + "]",
                  marginal);
    csv.row({label, v.counter, profiler::to_string(v.klass),
             format_double(marginal, 6),
             format_double(v.cumulative_adjusted_r2, 6),
             format_double(v.coefficient, 6)});
  }
  chart.print(std::cout, 36);
  std::cout << "final adjusted R^2: " << format_double(model.adjusted_r2(), 3)
            << "\n\n";
}

}  // namespace

int main() {
  bench::print_banner("Fig. 11",
                      "Selected explanatory variables and their impact of "
                      "influence on power and performance.");

  bench::begin_csv("fig11_variable_impact");
  CsvWriter csv(std::cout);
  csv.row({"model", "counter", "class", "marginal_adj_r2", "cumulative_adj_r2",
           "coefficient"});

  for (sim::GpuModel model : sim::kAllGpus) {
    const bench::BoardModels& bm = bench::board_models(model);
    render(bm.power, sim::to_string(model) + " power", csv);
    render(bm.perf, sim::to_string(model) + " perf", csv);
  }
  bench::end_csv();

  std::cout << "Observation check (paper): at most 10-15 variables carry the "
               "influence;\nthe marginal contributions above should collapse "
               "after the first few.\n";
  return 0;
}
