// Shared helpers for the paper-reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper: it
// prints a banner identifying the artifact, the reproduced table/figure in
// ASCII, and a machine-readable CSV block (between BEGIN-CSV / END-CSV
// markers) for external plotting.
#pragma once

#include <iostream>
#include <map>
#include <string>

#include "core/dataset.hpp"
#include "core/evaluation.hpp"
#include "core/unified_model.hpp"

namespace gppm::bench {

/// Seed shared by all benches so every artifact comes from the same
/// simulated campaign.
constexpr std::uint64_t kCampaignSeed = 42;

inline void print_banner(const std::string& artifact,
                         const std::string& description) {
  std::cout << "==============================================================\n"
            << "gppm reproduction | " << artifact << "\n"
            << description << "\n"
            << "==============================================================\n";
}

inline void begin_csv(const std::string& name) {
  std::cout << "BEGIN-CSV " << name << "\n";
}

inline void end_csv() { std::cout << "END-CSV\n"; }

/// Fitted models + corpus for one board, built once per process.
struct BoardModels {
  core::Dataset dataset;
  core::UnifiedModel power;
  core::UnifiedModel perf;
};

inline const BoardModels& board_models(sim::GpuModel model,
                                       std::size_t max_variables = 10) {
  static std::map<std::pair<sim::GpuModel, std::size_t>, BoardModels> cache;
  const auto key = std::make_pair(model, max_variables);
  auto it = cache.find(key);
  if (it == cache.end()) {
    core::DatasetOptions opt;
    opt.seed = kCampaignSeed;
    core::Dataset ds = core::build_dataset(model, opt);
    core::ModelOptions mopt;
    mopt.max_variables = max_variables;
    core::UnifiedModel power =
        core::UnifiedModel::fit(ds, core::TargetKind::Power, mopt);
    core::UnifiedModel perf =
        core::UnifiedModel::fit(ds, core::TargetKind::ExecTime, mopt);
    it = cache.emplace(key, BoardModels{std::move(ds), std::move(power),
                                        std::move(perf)})
             .first;
  }
  return it->second;
}

}  // namespace gppm::bench
