// Shared helpers for the paper-reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper: it
// prints a banner identifying the artifact, the reproduced table/figure in
// ASCII, and a machine-readable CSV block (between BEGIN-CSV / END-CSV
// markers) for external plotting.
//
// Model fits are served from a per-board *family* cache: one forward
// selection per (board, target) at kFamilyMaxVariables, from which every
// smaller variable cap is read as a prefix (see core::ModelFamily).  All
// caches are mutex-guarded so benches can prefetch boards concurrently.
#pragma once

#include <iostream>
#include <map>
#include <mutex>
#include <string>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "core/dataset.hpp"
#include "core/evaluation.hpp"
#include "core/unified_model.hpp"

namespace gppm::bench {

/// Seed shared by all benches so every artifact comes from the same
/// simulated campaign.
constexpr std::uint64_t kCampaignSeed = 42;

/// Cap of the cached selection runs: the top of the Fig. 7/8 sweep range,
/// so every bench's cap (default 10, sweeps 5-20) is a prefix of one run.
constexpr std::size_t kFamilyMaxVariables = 20;

inline void print_banner(const std::string& artifact,
                         const std::string& description) {
  std::cout << "==============================================================\n"
            << "gppm reproduction | " << artifact << "\n"
            << description << "\n"
            << "==============================================================\n";
}

inline void begin_csv(const std::string& name) {
  std::cout << "BEGIN-CSV " << name << "\n";
}

inline void end_csv() { std::cout << "END-CSV\n"; }

/// Environment stamp shared by every perf-bench JSON writer: scale mode,
/// thread count, compiler, and which SIMD backend the binary dispatched
/// to.  Keeping it in one helper keeps the writers consistent, so a
/// BENCH_*.json number can always be traced to the build that produced it.
inline void json_env_stamp(std::ostream& os, bool smoke) {
  os << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
     << "  \"threads\": " << gppm::parallel_threads() << ",\n"
     << "  \"compiler\": \"" << __VERSION__ << "\",\n"
     << "  \"simd_backend\": \"" << gppm::simd::kBackend << "\",\n"
     << "  \"simd_lane_width\": " << gppm::simd::kLaneWidth << ",\n";
}

/// Corpus and the two fitted model families of one board.
struct BoardFamilies {
  core::Dataset dataset;
  core::ModelFamily power;
  core::ModelFamily perf;
};

/// Families for one board, built once per process (thread-safe).
inline const BoardFamilies& board_families(sim::GpuModel model) {
  static std::mutex mu;
  static std::map<sim::GpuModel, BoardFamilies> cache;
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(model);
    if (it != cache.end()) return it->second;
  }
  // Build outside the lock so concurrent prefetches of *different* boards
  // overlap (prefetch_board_families assigns one board per iteration, so no
  // build is duplicated).
  core::DatasetOptions opt;
  opt.seed = kCampaignSeed;
  core::Dataset ds = core::build_dataset(model, opt);
  core::ModelOptions mopt;
  mopt.max_variables = kFamilyMaxVariables;
  core::ModelFamily power =
      core::ModelFamily::fit(ds, core::TargetKind::Power, mopt);
  core::ModelFamily perf =
      core::ModelFamily::fit(ds, core::TargetKind::ExecTime, mopt);
  std::lock_guard<std::mutex> lock(mu);
  return cache
      .emplace(model, BoardFamilies{std::move(ds), std::move(power),
                                    std::move(perf)})
      .first->second;
}

/// Warm the family cache for every board concurrently — the (GPU x target)
/// fan-out of the fit pipeline.  Benches that loop over boards call this
/// first so the serial reporting loop only reads cached fits.
inline void prefetch_board_families() {
  gppm::parallel_for(sim::kAllGpus.size(), [](std::size_t g) {
    board_families(sim::kAllGpus[g]);
  });
}

/// Fitted models + corpus for one board at one variable cap; views into the
/// family cache.
struct BoardModels {
  const core::Dataset& dataset;
  const core::UnifiedModel& power;
  const core::UnifiedModel& perf;
};

inline const BoardModels& board_models(sim::GpuModel model,
                                       std::size_t max_variables = 10) {
  static std::mutex mu;
  static std::map<std::pair<sim::GpuModel, std::size_t>, BoardModels> cache;
  GPPM_CHECK(max_variables >= 1 && max_variables <= kFamilyMaxVariables,
             "board_models cap outside the cached family range");
  const BoardFamilies& fam = board_families(model);
  const auto key = std::make_pair(model, max_variables);
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache
             .emplace(key, BoardModels{fam.dataset, fam.power.at(max_variables),
                                       fam.perf.at(max_variables)})
             .first;
  }
  return it->second;
}

}  // namespace gppm::bench
