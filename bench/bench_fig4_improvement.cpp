// Reproduces paper Fig. 4: power-efficiency improvement of the best pair
// over the default (H-H), per benchmark and board.  Paper averages:
// 0.8% / 12.3% / 12.1% / 24.4% for GTX 285/460/480/680.
#include <iostream>

#include "bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "common/csv.hpp"
#include "common/str.hpp"
#include "core/characterization.hpp"
#include "stats/descriptive.hpp"

using namespace gppm;

int main() {
  bench::print_banner("Fig. 4",
                      "Power efficiency improvement with the best "
                      "configuration over (H-H), per benchmark.");

  const auto rows = core::characterize_suite(bench::kCampaignSeed);

  for (std::size_t g = 0; g < sim::kAllGpus.size(); ++g) {
    BarChart chart(sim::to_string(sim::kAllGpus[g]) +
                   " — efficiency improvement (%)");
    std::vector<double> improvements;
    for (const core::BestPairRow& row : rows) {
      chart.add_bar(row.benchmark, row.improvement[g]);
      improvements.push_back(row.improvement[g]);
    }
    chart.print(std::cout, 40);
    std::cout << "average: " << format_double(stats::mean(improvements), 1)
              << "%  (paper: "
              << std::vector<const char*>{"0.8", "12.3", "12.1", "24.4"}[g]
              << "%),  max: " << format_double(stats::max_of(improvements), 1)
              << "%\n\n";
  }

  bench::begin_csv("fig4_improvement");
  CsvWriter csv(std::cout);
  csv.row({"benchmark", "gtx285", "gtx460", "gtx480", "gtx680"});
  for (const core::BestPairRow& row : rows) {
    csv.row(row.benchmark, row.improvement, 2);
  }
  bench::end_csv();
  return 0;
}
