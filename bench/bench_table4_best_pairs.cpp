// Reproduces paper TABLE IV: the best frequency pairs for power efficiency,
// per benchmark and board, at the maximum input size.  Non-default pairs
// are marked with '*' (the paper bolds them).
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/characterization.hpp"
#include "workload/suite.hpp"

using namespace gppm;

int main() {
  bench::print_banner("TABLE IV",
                      "The best frequency pairs for power efficiency "
                      "(* marks non-default pairs; paper bolds these).");

  const auto rows = core::characterize_suite(bench::kCampaignSeed);

  std::vector<std::string> header = {"Suite", "Benchmark"};
  for (sim::GpuModel m : sim::kAllGpus) header.push_back(sim::to_string(m));
  AsciiTable table(header);

  const auto& suite = workload::benchmark_suite();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::vector<std::string> cells = {workload::to_string(suite[i].suite),
                                      rows[i].benchmark};
    for (std::size_t g = 0; g < sim::kAllGpus.size(); ++g) {
      std::string cell = sim::to_string(rows[i].best[g]);
      if (!(rows[i].best[g] == sim::kDefaultPair)) cell += " *";
      cells.push_back(cell);
    }
    table.add_row(cells);
  }
  table.print(std::cout);

  // Diversity summary (the paper's "becomes more diverse as the generation
  // proceeds" observation).
  std::cout << "\nNon-default best pairs per board:\n";
  for (std::size_t g = 0; g < sim::kAllGpus.size(); ++g) {
    int n = 0;
    for (const core::BestPairRow& row : rows) {
      if (!(row.best[g] == sim::kDefaultPair)) ++n;
    }
    std::cout << "  " << sim::to_string(sim::kAllGpus[g]) << ": " << n << "/"
              << rows.size() << "\n";
  }

  bench::begin_csv("table4_best_pairs");
  CsvWriter csv(std::cout);
  csv.row({"benchmark", "gtx285", "gtx460", "gtx480", "gtx680"});
  for (const core::BestPairRow& row : rows) {
    csv.row({row.benchmark, sim::to_string(row.best[0]),
             sim::to_string(row.best[1]), sim::to_string(row.best[2]),
             sim::to_string(row.best[3])});
  }
  bench::end_csv();
  return 0;
}
