// Reproduces paper TABLE V: adjusted R^2 of the unified power model.
// Paper values: 0.30 / 0.59 / 0.70 / 0.18.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/str.hpp"
#include "common/table.hpp"

using namespace gppm;

int main() {
  bench::print_banner("TABLE V", "Adjusted R^2 of the power model (Eq. 1).");

  AsciiTable table({"GTX 285", "GTX 460", "GTX 480", "GTX 680"});
  std::vector<std::string> cells;
  std::vector<double> values;
  for (sim::GpuModel m : sim::kAllGpus) {
    const double r2 = bench::board_models(m).power.adjusted_r2();
    cells.push_back(format_double(r2, 2));
    values.push_back(r2);
  }
  table.add_row(cells);
  table.print(std::cout);
  std::cout << "paper: 0.30 / 0.59 / 0.70 / 0.18\n";

  bench::begin_csv("table5_power_r2");
  CsvWriter csv(std::cout);
  csv.row({"gtx285", "gtx460", "gtx480", "gtx680"});
  csv.row("", values, 4);
  bench::end_csv();
  return 0;
}
