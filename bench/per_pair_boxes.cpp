#include "per_pair_boxes.hpp"

#include <iostream>

#include "bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "common/csv.hpp"
#include "common/str.hpp"
#include "dvfs/combos.hpp"

namespace gppm::bench {

void run_per_pair_boxes(const std::string& figure_id, core::TargetKind target) {
  const std::string what =
      target == core::TargetKind::Power ? "power" : "performance";
  print_banner(figure_id,
               "Impact of GPU clocks on the " + what +
                   " model: per-pair baseline models (each trained and "
                   "scored on one operating point) vs the unified model.");

  begin_csv("per_pair_" + what);
  CsvWriter csv(std::cout);
  csv.row({"gpu", "model", "whisker_lo", "q1", "median", "q3", "whisker_hi",
           "mean_abs_pct_error"});

  prefetch_board_families();

  for (sim::GpuModel model : sim::kAllGpus) {
    const BoardModels& bm = board_models(model);
    BoxPlot plot(sim::to_string(model) + " — " + what +
                     " model |error| (%) per training scope",
                 "absolute error (%)");

    // The per-pair baseline models are independent fits — fan them out and
    // report serially in pair order.
    const std::vector<sim::FrequencyPair> pairs =
        dvfs::configurable_pairs(model);
    struct PairResult {
      stats::FiveNumber dist;
      double mape = 0.0;
    };
    std::vector<PairResult> results(pairs.size());
    gppm::parallel_for(pairs.size(), [&](std::size_t pi) {
      const core::UnifiedModel per_pair =
          core::UnifiedModel::fit(bm.dataset, target, {}, &pairs[pi]);
      const core::Evaluation eval =
          core::evaluate(per_pair, bm.dataset, &pairs[pi]);
      results[pi] = {eval.error_distribution(), eval.mape()};
    });

    for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
      const stats::FiveNumber& f = results[pi].dist;
      plot.add_box({sim::to_string(pairs[pi]), f.whisker_lo, f.q1, f.median,
                    f.q3, f.whisker_hi});
      csv.row({sim::to_string(model), sim::to_string(pairs[pi]),
               format_double(f.whisker_lo, 2), format_double(f.q1, 2),
               format_double(f.median, 2), format_double(f.q3, 2),
               format_double(f.whisker_hi, 2),
               format_double(results[pi].mape, 2)});
    }

    const core::UnifiedModel& unified =
        target == core::TargetKind::Power ? bm.power : bm.perf;
    const core::Evaluation eval = core::evaluate(unified, bm.dataset);
    const stats::FiveNumber f = eval.error_distribution();
    plot.add_box(
        {"unified", f.whisker_lo, f.q1, f.median, f.q3, f.whisker_hi});
    csv.row({sim::to_string(model), "unified", format_double(f.whisker_lo, 2),
             format_double(f.q1, 2), format_double(f.median, 2),
             format_double(f.q3, 2), format_double(f.whisker_hi, 2),
             format_double(eval.mape(), 2)});

    plot.print(std::cout, 52);
    std::cout << "\n";
  }
  end_csv();
}

}  // namespace gppm::bench
