// Reproduces paper Fig. 2: performance and power efficiency of
// Streamcluster — the most memory-intensive workload.  Expected shape:
// performance tracks the memory clock; at Mem-H it still rises with the
// core clock; on the GTX 680, (M-H) improves efficiency a few percent at
// a high-single-digit performance loss.
#include "figure_sweep.hpp"

int main() {
  gppm::bench::run_figure_sweep("Fig. 2", "streamcluster");
  return 0;
}
