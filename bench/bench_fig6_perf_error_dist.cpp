// Reproduces paper Fig. 6: errors in prediction of the performance model,
// by distribution over all benchmarks.
#include "error_distribution.hpp"

int main() {
  gppm::bench::run_error_distribution("Fig. 6",
                                      gppm::core::TargetKind::ExecTime);
  return 0;
}
