// Extension E1: DVFS governor policy comparison.
//
// Runs the phase-level governor (core::DvfsGovernor, extended model form)
// over the full 114-sample corpus of each board under its three policies
// and reports *measured* outcomes: energy vs the always-default baseline,
// energy-delay product, total runtime, cap compliance and switch counts.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "core/governor.hpp"

using namespace gppm;

namespace {

struct Outcome {
  double energy_j = 0;
  double time_s = 0;
  double edp = 0;  // sum of per-phase energy x time
  int switches = 0;
  int cap_violations = 0;
};

Outcome run_policy(const bench::BoardModels& bm, const core::UnifiedModel& power,
                   core::GovernorOptions opt) {
  core::DvfsGovernor governor(power, bm.perf, opt);
  Outcome out;
  for (const core::Sample& s : bm.dataset.samples) {
    const sim::FrequencyPair pick = governor.decide(s.counters);
    for (const core::Measurement& m : s.runs) {
      if (!(m.pair == pick)) continue;
      out.energy_j += m.energy.as_joules();
      out.time_s += m.exec_time.as_seconds();
      out.edp += m.energy.as_joules() * m.exec_time.as_seconds();
      if (opt.policy == core::GovernorPolicy::PowerCap &&
          m.avg_power.as_watts() > opt.power_cap.as_watts() * 1.10) {
        ++out.cap_violations;
      }
    }
  }
  out.switches = governor.switch_count();
  return out;
}

}  // namespace

int main() {
  bench::print_banner("Extension E1",
                      "Governor policy comparison over the 114-sample corpus "
                      "(extended model form; measured outcomes).");

  bench::begin_csv("governor_policies");
  CsvWriter csv(std::cout);
  csv.row({"gpu", "policy", "energy_vs_default_pct", "time_vs_default_pct",
           "edp_vs_default_pct", "switches", "cap_violations"});

  for (sim::GpuModel model : sim::kAllGpus) {
    const bench::BoardModels& bm = bench::board_models(model);
    core::ModelOptions ext;
    ext.scaling = core::FeatureScaling::VoltageSquaredFrequency;
    ext.include_baseline_terms = true;
    const core::UnifiedModel power =
        core::UnifiedModel::fit(bm.dataset, core::TargetKind::Power, ext);

    // Always-default baseline.
    Outcome base;
    for (const core::Sample& s : bm.dataset.samples) {
      for (const core::Measurement& m : s.runs) {
        if (!(m.pair == sim::kDefaultPair)) continue;
        base.energy_j += m.energy.as_joules();
        base.time_s += m.exec_time.as_seconds();
        base.edp += m.energy.as_joules() * m.exec_time.as_seconds();
      }
    }

    AsciiTable table({"policy", "energy vs default", "time vs default",
                      "EDP vs default", "switches", "cap misses"});
    for (core::GovernorPolicy policy :
         {core::GovernorPolicy::MinimumEnergy, core::GovernorPolicy::MinimumEdp,
          core::GovernorPolicy::PowerCap}) {
      core::GovernorOptions opt;
      opt.policy = policy;
      opt.power_cap = Power::watts(170.0);
      const Outcome o = run_policy(bm, power, opt);
      auto pct = [](double v, double b) {
        return format_double((v / b - 1.0) * 100.0, 1) + "%";
      };
      table.add_row({core::to_string(policy), pct(o.energy_j, base.energy_j),
                     pct(o.time_s, base.time_s), pct(o.edp, base.edp),
                     std::to_string(o.switches),
                     std::to_string(o.cap_violations)});
      csv.row({sim::to_string(model), core::to_string(policy),
               format_double((o.energy_j / base.energy_j - 1.0) * 100.0, 2),
               format_double((o.time_s / base.time_s - 1.0) * 100.0, 2),
               format_double((o.edp / base.edp - 1.0) * 100.0, 2),
               std::to_string(o.switches), std::to_string(o.cap_violations)});
    }
    std::cout << sim::to_string(model) << " (cap policy budget 170 W):\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  bench::end_csv();
  std::cout << "Expected: min-energy trades runtime for the largest energy "
               "cut; min-EDP stays\ncloser to default performance; the cap "
               "policy keeps measured power near budget\nwith few misses "
               "(misses quantify model error at the cap boundary).\n";
  return 0;
}
