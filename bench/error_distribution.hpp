// Shared driver for Figs. 5/6: per-benchmark prediction-error
// distributions, sorted independently per board as the paper plots them.
#pragma once

#include <string>

#include "core/features.hpp"

namespace gppm::bench {

/// Render the figure for one target kind ("Fig. 5" = Power,
/// "Fig. 6" = ExecTime).
void run_error_distribution(const std::string& figure_id,
                            core::TargetKind target);

}  // namespace gppm::bench
