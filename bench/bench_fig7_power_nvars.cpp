// Reproduces paper Fig. 7: impact of the number of explanatory variables on
// the power model.  Expected: little improvement beyond ~10 variables.
#include "nvars_sweep.hpp"

int main() {
  gppm::bench::run_nvars_sweep("Fig. 7", gppm::core::TargetKind::Power);
  return 0;
}
