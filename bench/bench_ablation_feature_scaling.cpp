// Ablation A1: the value of the paper's unified frequency scaling.
//
// The paper's central modeling idea is to fold the operating frequencies
// into the features (Eq. 1 multiplies counters by the domain frequency,
// Eq. 2 divides).  This ablation refits the same forward-selection
// regression with *raw* counter features (no frequency information) on the
// same multi-pair corpus and compares errors: without the scaling, a single
// model cannot distinguish operating points and its cross-pair error
// explodes.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "stats/forward_selection.hpp"

using namespace gppm;

namespace {

/// Fit the same selection pipeline on raw counters (per-second for power,
/// totals for time) with no frequency term, and return its in-sample MAPE.
double raw_feature_mape(const core::Dataset& ds, core::TargetKind target) {
  const std::size_t n_counters =
      ds.samples.front().counters.counters.size();
  std::size_t n_rows = ds.row_count();
  linalg::Matrix x(n_rows, n_counters);
  linalg::Vector y(n_rows);
  std::size_t row = 0;
  for (const core::Sample& s : ds.samples) {
    for (const core::Measurement& m : s.runs) {
      for (std::size_t c = 0; c < n_counters; ++c) {
        const auto& r = s.counters.counters[c];
        x(row, c) =
            target == core::TargetKind::Power ? r.per_second : r.total;
      }
      y[row] = target == core::TargetKind::Power ? m.avg_power.as_watts()
                                                 : m.exec_time.as_seconds();
      ++row;
    }
  }
  stats::SelectionOptions opt;
  opt.max_variables = 10;
  const stats::SelectionResult sel = stats::forward_select(x, y, opt);
  const linalg::Matrix selected = stats::gather_columns(x, sel.selected);
  double acc = 0;
  for (std::size_t i = 0; i < n_rows; ++i) {
    const double pred = sel.fit.predict(selected.row(i));
    acc += std::abs(pred - y[i]) / std::abs(y[i]) * 100.0;
  }
  return acc / static_cast<double>(n_rows);
}

}  // namespace

int main() {
  bench::print_banner("Ablation A1",
                      "Unified frequency-scaled features (Eq. 1/2) vs raw "
                      "counters on the same multi-pair corpus.");

  AsciiTable table({"GPU", "power err% (unified)", "power err% (raw)",
                    "perf err% (unified)", "perf err% (raw)"});
  bench::begin_csv("ablation_feature_scaling");
  CsvWriter csv(std::cout);
  csv.row({"gpu", "power_unified", "power_raw", "perf_unified", "perf_raw"});

  for (sim::GpuModel model : sim::kAllGpus) {
    const bench::BoardModels& bm = bench::board_models(model);
    const double power_unified = core::evaluate(bm.power, bm.dataset).mape();
    const double perf_unified = core::evaluate(bm.perf, bm.dataset).mape();
    const double power_raw =
        raw_feature_mape(bm.dataset, core::TargetKind::Power);
    const double perf_raw =
        raw_feature_mape(bm.dataset, core::TargetKind::ExecTime);
    table.add_row({sim::to_string(model), format_double(power_unified, 1),
                   format_double(power_raw, 1), format_double(perf_unified, 1),
                   format_double(perf_raw, 1)});
    csv.row(sim::to_string(model),
            {power_unified, power_raw, perf_unified, perf_raw}, 2);
  }
  table.print(std::cout);
  bench::end_csv();
  std::cout << "Expected: raw-feature errors exceed unified errors — the "
               "frequency terms are what\nlet one model cover every "
               "operating point.\n";
  return 0;
}
