// Reproduces paper Fig. 5: errors in prediction of the power model, by
// distribution over all benchmarks.
#include "error_distribution.hpp"

int main() {
  gppm::bench::run_error_distribution("Fig. 5", gppm::core::TargetKind::Power);
  return 0;
}
