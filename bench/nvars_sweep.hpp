// Shared driver for Figs. 7/8: model accuracy versus the number of
// explanatory variables (the paper sweeps 5 to 20 and settles on 10).
#pragma once

#include <string>

#include "core/features.hpp"

namespace gppm::bench {

void run_nvars_sweep(const std::string& figure_id, core::TargetKind target);

}  // namespace gppm::bench
