// Performance benchmark of the model-fitting pipeline: naive QR-refit
// forward selection vs the incremental Gram/Cholesky engine, serial and
// parallel.  Not a paper artifact — this tracks the perf trajectory of the
// selection hot path, which every table/figure bench and the Fig. 7/8
// sweeps sit on.
//
// Emits BENCH_selection.json (wall times + speedups) into the working
// directory so successive runs can be compared, plus the usual ASCII table
// and CSV block.  `--smoke` runs one repetition of the paper-scale scenario
// only (used by the `bench`-labeled ctest smoke).

#include <chrono>
#include <memory>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "core/features.hpp"
#include "linalg/gram.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "stats/forward_selection.hpp"

namespace {

using gppm::linalg::Matrix;
using gppm::linalg::Vector;
using gppm::stats::SelectionEngine;
using gppm::stats::SelectionOptions;
using gppm::stats::SelectionResult;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Problem {
  std::string name;
  Matrix x;
  Vector y;
  std::size_t max_variables = 20;
  bool time_naive = true;  // naive is too slow at the scaled size
};

/// The paper-scale problem: the GTX 480 power regression table (one row per
/// (sample, pair), one candidate column per profiler counter) at the top of
/// the Fig. 7/8 sweep range.
Problem paper_scale_problem() {
  const gppm::bench::BoardFamilies& fam =
      gppm::bench::board_families(gppm::sim::GpuModel::GTX480);
  const gppm::core::RegressionTable table = gppm::core::build_table(
      fam.dataset, gppm::core::TargetKind::Power);
  Problem p;
  p.name = "paper_scale";
  p.x = table.features;
  p.y = table.target;
  p.max_variables = 20;
  p.time_naive = true;
  return p;
}

/// A scaled-up synthetic corpus (what the reproduction line grows toward:
/// more counters, more samples): y depends on a planted subset of columns.
Problem scaled_problem() {
  gppm::Rng rng(1234);
  const std::size_t n = 2048, p = 192;
  Problem prob;
  prob.name = "scaled";
  prob.x = Matrix(n, p);
  prob.y = Vector(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < p; ++j) prob.x(i, j) = rng.normal();
    double v = 0.0;
    for (std::size_t j = 0; j < 24; ++j) {
      v += (j % 2 ? -1.0 : 1.0) * (1.0 + 0.2 * static_cast<double>(j)) *
           prob.x(i, j * 7 % p);
    }
    prob.y[i] = v + rng.normal(0.0, 2.0);
  }
  prob.max_variables = 20;
  prob.time_naive = false;
  return prob;
}

struct Timing {
  double naive_ms = 0.0;
  double incremental_ms = 0.0;
  double parallel_ms = 0.0;
  bool selected_match = true;
  double max_coeff_abs_diff = 0.0;
  std::size_t rows = 0, candidates = 0, selected = 0;
};

double time_engine(const Problem& prob, const SelectionOptions& opt, int reps,
                   SelectionResult* out) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_ms();
    SelectionResult result =
        gppm::stats::forward_select(prob.x, prob.y, opt);
    const double elapsed = now_ms() - t0;
    if (r == 0 || elapsed < best) best = elapsed;
    if (r == 0 && out) *out = std::move(result);
  }
  return best;
}

Timing run_problem(const Problem& prob, int reps) {
  Timing t;
  t.rows = prob.x.rows();
  t.candidates = prob.x.cols();

  SelectionOptions naive;
  naive.max_variables = prob.max_variables;
  naive.engine = SelectionEngine::NaiveQr;

  SelectionOptions incr = naive;
  incr.engine = SelectionEngine::IncrementalGram;
  incr.parallel = false;

  SelectionOptions par = incr;
  par.parallel = true;

  SelectionResult incr_result;
  t.incremental_ms = time_engine(prob, incr, reps, &incr_result);
  SelectionResult par_result;
  t.parallel_ms = time_engine(prob, par, reps, &par_result);
  t.selected = incr_result.selected.size();

  t.selected_match = incr_result.selected == par_result.selected;
  if (prob.time_naive) {
    SelectionResult naive_result;
    t.naive_ms = time_engine(prob, naive, reps, &naive_result);
    t.selected_match =
        t.selected_match && naive_result.selected == incr_result.selected;
    if (t.selected_match) {
      for (std::size_t i = 0; i < naive_result.fit.coefficients.size(); ++i) {
        const double d = std::abs(naive_result.fit.coefficients[i] -
                                  incr_result.fit.coefficients[i]);
        if (d > t.max_coeff_abs_diff) t.max_coeff_abs_diff = d;
      }
    }
  }
  return t;
}

// ---- SIMD kernel microbenches ---------------------------------------------
//
// The before/after of the hot-path SIMD pass, measured as same-source
// comparisons inside this binary: the vectorized kernels vs the identical
// 8-lane summation tree with compiler vectorization disabled (what a
// pre-SIMD build effectively executed), and the Gram column-panel build vs
// the strided column walks it replaced.

#if defined(__GNUC__) && !defined(__clang__)
#define GPPM_BENCH_NOVEC \
  __attribute__((optimize("no-tree-vectorize,no-tree-slp-vectorize")))
#else
#define GPPM_BENCH_NOVEC
#endif

/// scalar::dot with auto-vectorization off: the genuine scalar baseline.
/// (With -march=native at -O2, GCC would otherwise vectorize the 8-lane
/// reference into the very AVX2 code we are comparing against.)  noinline
/// keeps the attribute effective at every call site.
GPPM_BENCH_NOVEC __attribute__((noinline)) double dot_scalar_novec(
    const double* a, const double* b, std::size_t n) {
  return gppm::simd::scalar::dot(a, b, n);
}

struct MicrobenchResult {
  double simd_ms = 0.0;
  double scalar_ms = 0.0;
  double speedup = 0.0;
};

/// Best-of-reps wall time of `body(i)`, which must fold its work into
/// `sink`.  The iteration index feeds the body so a pure call cannot be
/// hoisted out of the timing loop.
template <typename Body>
double time_best_ms(int reps, int iters, double& sink, Body&& body) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_ms();
    for (int i = 0; i < iters; ++i) sink += body(i);
    const double elapsed = now_ms() - t0;
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

MicrobenchResult microbench_dot(int reps, int iters) {
  gppm::Rng rng(99);
  // L1-resident working set (two 8 KiB arrays), so the comparison measures
  // the kernels, not the L2 bus: at 4096 both variants are bandwidth-bound
  // and the vector speedup is hidden.
  const std::size_t n = 1024;
  // Eight extra elements so an i-dependent start offset keeps every call's
  // arguments distinct without changing the reduction length.
  // Round the bases up to 64 bytes: std::vector only guarantees 16, and a
  // misaligned base makes half the 32-byte vector loads straddle cache
  // lines, understating the kernel.
  std::vector<double> a_store(n + 24), b_store(n + 24);
  const auto align64 = [](double* p) {
    void* raw = p;
    std::size_t space = ~std::size_t{0};
    return static_cast<double*>(std::align(64, sizeof(double), raw, space));
  };
  double* a = align64(a_store.data());
  double* b = align64(b_store.data());
  for (std::size_t i = 0; i < n + 8; ++i) {
    a[i] = rng.normal();
    b[i] = rng.normal();
  }
  MicrobenchResult m;
  double sink = 0.0;
  // The (i & 1) * 8 start offset keeps successive calls' arguments
  // distinct (so a pure call cannot be hoisted) while staying 64-byte
  // aligned — an odd offset would split every vector load across cache
  // lines and measure the split, not the kernel.
  m.simd_ms = time_best_ms(reps, iters, sink, [&](int i) {
    const std::size_t off = static_cast<std::size_t>(i & 1) * 8;
    return gppm::simd::dot(a + off, b + off, n);
  });
  m.scalar_ms = time_best_ms(reps, iters, sink, [&](int i) {
    const std::size_t off = static_cast<std::size_t>(i & 1) * 8;
    return dot_scalar_novec(a + off, b + off, n);
  });
  m.speedup = m.simd_ms > 0.0 ? m.scalar_ms / m.simd_ms : 0.0;
  if (sink == 0.12345) std::cout << "";  // keep the sink observable
  return m;
}

/// The pre-panel Gram build: every cross term walks two row-major columns
/// at stride p — the code path GramSystem used before the transpose-once
/// column panel.
double baseline_gram_strided_ms(const Matrix& x, int reps) {
  const std::size_t n = x.rows(), p = x.cols();
  double best = 0.0;
  double sink = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_ms();
    for (std::size_t j = 0; j < p; ++j) {
      for (std::size_t i = 0; i <= j; ++i) {
        sink += gppm::simd::dot_strided(x.row_ptr(0) + i, x.row_ptr(0) + j, n,
                                        p, p);
      }
    }
    const double elapsed = now_ms() - t0;
    if (r == 0 || elapsed < best) best = elapsed;
  }
  if (sink == 0.12345) std::cout << "";
  return best;
}

MicrobenchResult microbench_gram(int reps) {
  // Candidate-scoring scale: the scaled selection problem's Gram build.
  gppm::Rng rng(1234);
  const std::size_t n = 2048, p = 192;
  Matrix x(n, p);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < p; ++j) x(i, j) = rng.normal();
    y[i] = rng.normal();
  }
  MicrobenchResult m;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_ms();
    const gppm::linalg::GramSystem gs =
        gppm::linalg::build_gram_system(x, y, /*parallel=*/false);
    const double elapsed = now_ms() - t0;
    if (gs.n_rows != n) std::abort();
    if (r == 0 || elapsed < m.simd_ms) m.simd_ms = elapsed;
  }
  m.scalar_ms = baseline_gram_strided_ms(x, reps);
  m.speedup = m.simd_ms > 0.0 ? m.scalar_ms / m.simd_ms : 0.0;
  return m;
}

void json_microbench(std::ostream& os, const char* name,
                     const MicrobenchResult& m) {
  os << "  \"" << name << "\": {\n"
     << "    \"simd_ms\": " << m.simd_ms << ",\n"
     << "    \"scalar_ms\": " << m.scalar_ms << ",\n"
     << "    \"speedup\": " << m.speedup << "\n  },\n";
}

void json_scenario(std::ostream& os, const std::string& name, const Timing& t,
                   bool has_naive) {
  os << "  \"" << name << "\": {\n"
     << "    \"rows\": " << t.rows << ",\n"
     << "    \"candidates\": " << t.candidates << ",\n"
     << "    \"selected\": " << t.selected << ",\n";
  if (has_naive) {
    os << "    \"naive_ms\": " << t.naive_ms << ",\n"
       << "    \"speedup_incremental_vs_naive\": "
       << (t.incremental_ms > 0 ? t.naive_ms / t.incremental_ms : 0.0) << ",\n"
       << "    \"speedup_parallel_vs_naive\": "
       << (t.parallel_ms > 0 ? t.naive_ms / t.parallel_ms : 0.0) << ",\n"
       << "    \"max_coeff_abs_diff\": " << t.max_coeff_abs_diff << ",\n";
  }
  os << "    \"incremental_ms\": " << t.incremental_ms << ",\n"
     << "    \"parallel_ms\": " << t.parallel_ms << ",\n"
     << "    \"speedup_parallel_vs_incremental\": "
     << (t.parallel_ms > 0 ? t.incremental_ms / t.parallel_ms : 0.0) << ",\n"
     << "    \"selected_match\": " << (t.selected_match ? "true" : "false")
     << "\n  }";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    // --trace-out=FILE enables gppm::obs span recording for the timed runs
    // and dumps a Chrome trace on exit.  Tracing adds overhead to the hot
    // path, so traced numbers are for span inspection, not for comparing
    // against untraced baselines.
    else if (std::strncmp(argv[i], "--trace-out=", 12) == 0)
      trace_out = argv[i] + 12;
    else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc)
      trace_out = argv[++i];
  }
  if (!trace_out.empty()) gppm::obs::set_enabled(true);

  gppm::bench::print_banner(
      "selection speedup",
      "Forward-selection engines: naive QR refit vs incremental "
      "Gram/Cholesky (serial and parallel fan-out).");

  const int reps = smoke ? 1 : 3;
  std::vector<std::pair<Problem, Timing>> runs;
  runs.emplace_back(paper_scale_problem(), Timing{});
  if (!smoke) runs.emplace_back(scaled_problem(), Timing{});
  for (auto& [prob, timing] : runs) timing = run_problem(prob, reps);

  const MicrobenchResult dot_micro = microbench_dot(reps, smoke ? 200 : 2000);
  const MicrobenchResult gram_micro = microbench_gram(reps);
  std::cout << "microbench dot: simd " << gppm::format_double(
                   dot_micro.simd_ms, 2)
            << " ms vs scalar " << gppm::format_double(dot_micro.scalar_ms, 2)
            << " ms (" << gppm::format_double(dot_micro.speedup, 1) << "x, "
            << gppm::simd::kBackend << ")\n"
            << "microbench gram: panel "
            << gppm::format_double(gram_micro.simd_ms, 2) << " ms vs strided "
            << gppm::format_double(gram_micro.scalar_ms, 2) << " ms ("
            << gppm::format_double(gram_micro.speedup, 1) << "x)\n";

  gppm::AsciiTable table({"scenario", "rows", "cands", "naive ms",
                          "incremental ms", "parallel ms", "speedup",
                          "match"});
  for (const auto& [prob, t] : runs) {
    table.add_row(
        {prob.name, std::to_string(t.rows), std::to_string(t.candidates),
         prob.time_naive ? gppm::format_double(t.naive_ms, 2) : "-",
         gppm::format_double(t.incremental_ms, 2),
         gppm::format_double(t.parallel_ms, 2),
         prob.time_naive
             ? gppm::format_double(t.naive_ms / t.incremental_ms, 1) + "x"
             : gppm::format_double(t.incremental_ms / t.parallel_ms, 1) + "x",
         t.selected_match ? "yes" : "NO"});
  }
  table.print(std::cout);

  gppm::bench::begin_csv("selection_speedup");
  std::cout << "scenario,rows,candidates,naive_ms,incremental_ms,parallel_ms,"
               "selected_match\n";
  for (const auto& [prob, t] : runs) {
    std::cout << prob.name << "," << t.rows << "," << t.candidates << ","
              << t.naive_ms << "," << t.incremental_ms << "," << t.parallel_ms
              << "," << (t.selected_match ? 1 : 0) << "\n";
  }
  gppm::bench::end_csv();

  {
    std::ofstream json("BENCH_selection.json");
    json << "{\n  \"schema\": \"gppm.bench_selection.v2\",\n";
    gppm::bench::json_env_stamp(json, smoke);
    // Pre-SIMD trajectory anchor: the paper_scale numbers this bench
    // recorded immediately before the vectorized Gram/Cholesky pass
    // (smoke run, 2 threads, scalar strided kernels).
    json << "  \"baseline_pre_simd\": {\n"
         << "    \"paper_scale_naive_ms\": 901.483,\n"
         << "    \"paper_scale_incremental_ms\": 19.0978,\n"
         << "    \"paper_scale_parallel_ms\": 19.3017\n  },\n";
    json_microbench(json, "microbench_dot", dot_micro);
    json_microbench(json, "microbench_gram", gram_micro);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      json_scenario(json, runs[i].first.name, runs[i].second,
                    runs[i].first.time_naive);
      json << (i + 1 < runs.size() ? ",\n" : "\n");
    }
    json << "}\n";
  }
  std::cout << "wrote BENCH_selection.json\n";

  if (!trace_out.empty()) {
    gppm::obs::write_trace_file(trace_out);
    std::cout << "wrote " << trace_out << " ("
              << gppm::obs::span_snapshot().size() << " spans, "
              << gppm::obs::spans_dropped() << " dropped)\n";
  }

  // The smoke run doubles as a correctness gate: the engines must agree.
  for (const auto& [prob, t] : runs) {
    if (!t.selected_match) {
      std::cerr << "engine mismatch on " << prob.name << "\n";
      return 1;
    }
  }
  return 0;
}
