#include "nvars_sweep.hpp"

#include <iostream>

#include "bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "common/csv.hpp"
#include "common/str.hpp"
#include "common/table.hpp"

namespace gppm::bench {

void run_nvars_sweep(const std::string& figure_id, core::TargetKind target) {
  const std::string what =
      target == core::TargetKind::Power ? "power" : "performance";
  print_banner(figure_id, "Impact of the number of explanatory variables on "
                          "the " + what + " model (paper sweeps 5-20).");

  const std::vector<std::size_t> var_counts = {5, 10, 15, 20};

  // One concurrent selection run per (board, target); every var count below
  // is then read as a prefix of the cached family instead of refitting.
  prefetch_board_families();

  AsciiTable table({"#vars", "GTX 285 err%", "GTX 460 err%", "GTX 480 err%",
                    "GTX 680 err%"});
  std::vector<std::vector<double>> errs(var_counts.size());

  for (std::size_t vi = 0; vi < var_counts.size(); ++vi) {
    std::vector<std::string> row = {std::to_string(var_counts[vi])};
    for (sim::GpuModel model : sim::kAllGpus) {
      const BoardModels& bm = board_models(model, var_counts[vi]);
      const core::UnifiedModel& m =
          target == core::TargetKind::Power ? bm.power : bm.perf;
      const double err = core::evaluate(m, bm.dataset).mape();
      row.push_back(format_double(err, 1));
      errs[vi].push_back(err);
    }
    table.add_row(row);
  }
  table.print(std::cout);

  LineChart chart("mean |error| (%) vs number of explanatory variables",
                  "#variables", "mean |error| (%)");
  for (std::size_t g = 0; g < sim::kAllGpus.size(); ++g) {
    Series s;
    s.label = sim::to_string(sim::kAllGpus[g]);
    for (std::size_t vi = 0; vi < var_counts.size(); ++vi) {
      s.x.push_back(static_cast<double>(var_counts[vi]));
      s.y.push_back(errs[vi][g]);
    }
    chart.add_series(std::move(s));
  }
  chart.print(std::cout, 56, 14);

  begin_csv("nvars_" + what);
  CsvWriter csv(std::cout);
  csv.row({"nvars", "gtx285", "gtx460", "gtx480", "gtx680"});
  for (std::size_t vi = 0; vi < var_counts.size(); ++vi) {
    csv.row(std::to_string(var_counts[vi]), errs[vi], 2);
  }
  end_csv();
}

}  // namespace gppm::bench
