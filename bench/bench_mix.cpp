// Concurrent-kernel interference verification: gppm::mix end to end.
//
// Runs the mix pipeline — seeded co-schedules, the contention engine, the
// interference corpus and the solo/mix model families — on every board and
// gates the results:
//
//   * interference gate — on each (board, degree) configuration the
//     solo-trained time family systematically *underpredicts* held-out
//     contended member times (negative signed bias: interference is real),
//     and the mix-aware family beats it on time-weighted error (wape);
//   * isolation gate — a 2-tenant overload sweep against the prediction
//     server: the quota-limited aggressor's burst sheds as typed
//     Overloaded answers while the un-quota'd victim tenant is answered
//     Ok on every request;
//   * determinism gate — same-seed mix schedules, corpora and engine
//     executions are bit-identical across two independent builds.
//
// Emits BENCH_mix.json (shared env stamp); exits nonzero if any gate
// fails.  --smoke shrinks the board x degree sweep for the ctest wrapper.
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "mix/engine.hpp"
#include "mix/model.hpp"
#include "serve/server.hpp"

using namespace gppm;

namespace {

struct MixConfigRun {
  sim::GpuModel model = sim::GpuModel::GTX480;
  std::size_t degree = 2;
  mix::MixEvaluation ev;
};

MixConfigRun run_config(sim::GpuModel model, std::size_t degree) {
  mix::MixCorpusOptions copt;
  copt.mixes = 32;
  copt.degree = degree;
  copt.seed = bench::kCampaignSeed;
  const mix::MixCorpus corpus = mix::build_mix_corpus(model, copt);
  core::ModelOptions mopt;
  mopt.max_variables = 5;
  const mix::MixModelSet models = mix::fit_mix_models(corpus, mopt);
  MixConfigRun run;
  run.model = model;
  run.degree = degree;
  run.ev = mix::evaluate_mix_models(models, corpus);
  return run;
}

struct TenantGate {
  std::size_t aggressor_ok = 0;
  std::size_t aggressor_shed = 0;
  std::size_t victim_ok = 0;
  std::size_t victim_total = 0;
  bool ok() const {
    return aggressor_ok >= 1 && aggressor_shed >= 1 &&
           victim_ok == victim_total && victim_total > 0;
  }
};

TenantGate run_tenant_gate() {
  const core::Dataset& ds = bench::board_families(sim::GpuModel::GTX460).dataset;
  const core::UnifiedModel power =
      core::UnifiedModel::fit(ds, core::TargetKind::Power);
  const core::UnifiedModel perf =
      core::UnifiedModel::fit(ds, core::TargetKind::ExecTime);

  serve::ServerOptions opt;
  opt.worker_threads = 1;
  opt.max_batch = 1;
  opt.cache_capacity = 0;
  serve::PredictionServer server(opt);
  server.load_models(power, perf);
  server.set_tenant_quota(1, 1);

  auto request = [&](std::uint32_t tenant, std::size_t i,
                     serve::RequestKind kind) {
    serve::Request r;
    r.kind = kind;
    r.gpu = sim::GpuModel::GTX460;
    r.tenant = tenant;
    r.counters = ds.samples[i % ds.samples.size()].counters;
    return r;
  };

  // Build every request up front so the submit loops are pure moves, and
  // pad the prefill requests' counters far past the catalog: the worker
  // fingerprints every reading before predicting (trailing pad is inert
  // for the prediction itself), so each prefill job pins the single
  // worker for orders of magnitude longer than the whole burst takes to
  // submit — the aggressor's quota ticket provably stays in flight.
  std::vector<serve::Request> prefill_reqs;
  for (std::size_t i = 0; i < 8; ++i) {
    serve::Request r = request(0, i, serve::RequestKind::Optimize);
    r.counters.counters.resize(r.counters.counters.size() + (1u << 17),
                               {"pad", profiler::EventClass::Core,
                                static_cast<double>(i), 1.0});
    prefill_reqs.push_back(std::move(r));
  }
  std::vector<serve::Request> burst_reqs;
  for (std::size_t i = 0; i < 64; ++i) {
    burst_reqs.push_back(request(1, i, serve::RequestKind::Optimize));
    burst_reqs.push_back(request(2, i, serve::RequestKind::Predict));
  }
  std::vector<std::future<serve::Response>> prefill;
  for (serve::Request& r : prefill_reqs) {
    prefill.push_back(server.submit(std::move(r)));
  }
  std::vector<std::future<serve::Response>> aggressor;
  std::vector<std::future<serve::Response>> victim;
  for (serve::Request& r : burst_reqs) {
    const bool is_victim = r.tenant == 2;
    std::future<serve::Response> f = server.submit(std::move(r));
    if (is_victim) {
      victim.push_back(std::move(f));
    } else {
      aggressor.push_back(std::move(f));
    }
  }

  TenantGate gate;
  for (std::future<serve::Response>& f : prefill) f.get();
  for (std::future<serve::Response>& f : aggressor) {
    const serve::Response r = f.get();
    if (r.ok()) {
      ++gate.aggressor_ok;
    } else if (r.status == serve::ResponseStatus::Overloaded) {
      ++gate.aggressor_shed;
    }
  }
  for (std::future<serve::Response>& f : victim) {
    ++gate.victim_total;
    if (f.get().ok()) ++gate.victim_ok;
  }
  server.shutdown();
  return gate;
}

bool run_determinism_gate() {
  // Schedules, corpora and engine executions must be pure functions of
  // (seed, model, mix, pair) — compare two independent builds bitwise.
  mix::MixCorpusOptions copt;
  copt.mixes = 8;
  copt.degree = 2;
  copt.seed = bench::kCampaignSeed;
  const mix::MixCorpus a = mix::build_mix_corpus(sim::GpuModel::GTX480, copt);
  const mix::MixCorpus b = mix::build_mix_corpus(sim::GpuModel::GTX480, copt);
  if (a.member_train.samples.size() != b.member_train.samples.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.member_train.samples.size(); ++i) {
    const core::Sample& sa = a.member_train.samples[i];
    const core::Sample& sb = b.member_train.samples[i];
    if (sa.counters.counters.size() != sb.counters.counters.size()) {
      return false;
    }
    for (std::size_t c = 0; c < sa.counters.counters.size(); ++c) {
      if (sa.counters.counters[c].total != sb.counters.counters[c].total) {
        return false;
      }
    }
    if (sa.runs.size() != sb.runs.size()) return false;
    for (std::size_t r = 0; r < sa.runs.size(); ++r) {
      if (sa.runs[r].exec_time.as_seconds() !=
              sb.runs[r].exec_time.as_seconds() ||
          sa.runs[r].avg_power.as_watts() != sb.runs[r].avg_power.as_watts()) {
        return false;
      }
    }
  }

  const std::vector<mix::ScheduledMix> schedule = mix::mix_schedule();
  const mix::MixProfile profile = mix::make_mix_profile(schedule.front(), 0);
  mix::MixEngine e1(sim::GpuModel::GTX680, bench::kCampaignSeed);
  mix::MixEngine e2(sim::GpuModel::GTX680, bench::kCampaignSeed);
  const mix::MixExecution x1 = e1.execute(profile);
  const mix::MixExecution x2 = e2.execute(profile);
  if (x1.makespan.as_seconds() != x2.makespan.as_seconds() ||
      x1.avg_power.as_watts() != x2.avg_power.as_watts()) {
    return false;
  }
  for (std::size_t i = 0; i < x1.members.size(); ++i) {
    if (x1.members[i].contended_time.as_seconds() !=
        x2.members[i].contended_time.as_seconds()) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";

  bench::print_banner(
      "Concurrent-kernel interference (gppm::mix)",
      "Co-scheduled kernel mixes under SM partitioning and bandwidth "
      "contention; solo vs interference-aware model families gated on "
      "held-out contended time, plus tenant-quota isolation and "
      "determinism gates.");

  std::vector<std::pair<sim::GpuModel, std::size_t>> configs;
  if (smoke) {
    configs = {{sim::GpuModel::GTX480, 2}, {sim::GpuModel::GTX460, 2}};
  } else {
    for (sim::GpuModel model : sim::kAllGpus) {
      configs.push_back({model, 2});
      configs.push_back({model, 3});
    }
  }

  std::vector<MixConfigRun> runs(configs.size());
  gppm::parallel_for(configs.size(), [&](std::size_t i) {
    runs[i] = run_config(configs[i].first, configs[i].second);
  });

  AsciiTable table({"gpu", "degree", "solo wape %", "mix wape %",
                    "solo bias", "power wape %", "gate"});
  bool interference_ok = true;
  for (const MixConfigRun& run : runs) {
    if (!run.ev.passes()) interference_ok = false;
    table.add_row({sim::to_string(run.model), std::to_string(run.degree),
                   format_double(run.ev.solo_time_wape, 2),
                   format_double(run.ev.mix_time_wape, 2),
                   format_double(run.ev.solo_signed_bias, 3),
                   format_double(run.ev.power_wape, 2),
                   run.ev.passes() ? "PASS" : "FAIL"});
  }
  table.print(std::cout);

  const TenantGate tenant = run_tenant_gate();
  std::cout << "tenant overload sweep: aggressor " << tenant.aggressor_ok
            << " ok / " << tenant.aggressor_shed << " shed, victim "
            << tenant.victim_ok << "/" << tenant.victim_total << " ok\n";
  const bool determinism_ok = run_determinism_gate();

  std::cout << "interference gate (mix beats solo, solo underpredicts): "
            << (interference_ok ? "held" : "BLOWN") << "\n"
            << "isolation gate (quota sheds aggressor, victim untouched): "
            << (tenant.ok() ? "held" : "BLOWN") << "\n"
            << "determinism gate (same-seed bit-identity): "
            << (determinism_ok ? "held" : "BLOWN") << "\n";

  const bool ok = interference_ok && tenant.ok() && determinism_ok;
  {
    std::ofstream json("BENCH_mix.json");
    json << "{\n  \"schema\": \"gppm.bench_mix.v1\",\n";
    bench::json_env_stamp(json, smoke);
    json << "  \"mixes\": 32,\n  \"max_variables\": 5,\n"
         << "  \"configs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const MixConfigRun& run = runs[i];
      json << "    {\"gpu\": \"" << sim::to_string(run.model) << "\""
           << ", \"degree\": " << run.degree
           << ", \"solo_time_wape\": " << format_double(run.ev.solo_time_wape, 3)
           << ", \"mix_time_wape\": " << format_double(run.ev.mix_time_wape, 3)
           << ", \"solo_signed_bias\": "
           << format_double(run.ev.solo_signed_bias, 4)
           << ", \"power_wape\": " << format_double(run.ev.power_wape, 3)
           << ", \"pass\": " << (run.ev.passes() ? "true" : "false") << "}"
           << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"tenant\": {\"aggressor_ok\": " << tenant.aggressor_ok
         << ", \"aggressor_shed\": " << tenant.aggressor_shed
         << ", \"victim_ok\": " << tenant.victim_ok
         << ", \"victim_total\": " << tenant.victim_total << "},\n"
         << "  \"gates\": {\"interference\": "
         << (interference_ok ? "true" : "false")
         << ", \"isolation\": " << (tenant.ok() ? "true" : "false")
         << ", \"determinism\": " << (determinism_ok ? "true" : "false")
         << "},\n"
         << "  \"pass\": " << (ok ? "true" : "false") << "\n}\n";
  }
  std::cout << "wrote BENCH_mix.json\n";
  if (!ok) {
    std::cerr << "FAIL:" << (interference_ok ? "" : " interference-gate")
              << (tenant.ok() ? "" : " isolation-gate")
              << (determinism_ok ? "" : " determinism-gate") << "\n";
    return 1;
  }
  return 0;
}
