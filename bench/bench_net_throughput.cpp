// Wire throughput and latency of the gppm::net RPC layer.
//
// An in-process PredictionServer behind a net::Server on a loopback
// ephemeral port, driven by closed-loop client threads sharing one pooled
// net::Client, in two phases:
//
//   * latency — serial predict() RPCs, one in flight per connection,
//     reporting the client-observed p50/p95/p99 round trip;
//   * throughput — pipelined predict_batch() calls (32 requests per send),
//     which amortize syscalls and thread handoffs batch-fold and measure
//     sustained predictions/sec.
//
// Both phases check the protocol's core promise on every response: the
// prediction that crossed the wire is bit-identical to the one the
// in-process server returns for the same request.  Emits BENCH_net.json
// (rps, p50/p95/p99 us, protocol_errors, bit_identical) into the working
// directory.
//
// `--smoke` shrinks the request counts for the `bench`-labeled ctest
// smoke; the binary exits nonzero on any protocol error or divergent
// prediction in either mode, so the smoke doubles as a correctness gate.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/server.hpp"

using namespace gppm;

namespace {

constexpr sim::GpuModel kBoard = sim::GpuModel::GTX680;
constexpr std::size_t kClientThreads = 4;
constexpr std::size_t kBatch = 32;

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

bool bit_identical(const serve::Response& a, const serve::Response& b) {
  return std::memcmp(&a.power_watts, &b.power_watts, sizeof(double)) == 0 &&
         std::memcmp(&a.time_seconds, &b.time_seconds, sizeof(double)) == 0 &&
         std::memcmp(&a.energy_joules, &b.energy_joules, sizeof(double)) ==
             0 &&
         a.status == b.status && a.pair == b.pair;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const std::size_t serial_requests = smoke ? 1500 : 8000;
  const std::size_t batched_requests = smoke ? 8000 : 64000;

  bench::print_banner(
      "net throughput",
      "Loopback RPC load against the wire-exposed prediction server; every "
      "response checked bit-identical to the in-process answer.");

  const bench::BoardModels& bm = bench::board_models(kBoard);
  serve::PredictionServer backend;
  backend.load_models(bm.power, bm.perf);

  // The request working set and its in-process ground truth.  Submitting
  // the probes first also warms the prediction cache, so the timed wire
  // runs measure RPC-layer cost, not model evaluation.
  std::vector<serve::Request> probes;
  std::vector<serve::Response> expected;
  for (std::size_t i = 0; i < bm.dataset.samples.size(); ++i) {
    serve::Request r;
    r.kind = serve::RequestKind::Predict;
    r.gpu = kBoard;
    r.counters = bm.dataset.samples[i].counters;
    probes.push_back(r);
    expected.push_back(backend.submit(probes.back()).get());
  }

  net::Server server(backend);
  net::ClientOptions copt;
  copt.port = server.port();
  copt.pool_size = kClientThreads;
  net::Client client(copt);

  std::cout << probes.size() << " cached phases, " << kClientThreads
            << " closed-loop client threads on 127.0.0.1:" << server.port()
            << "\n";

  std::atomic<std::uint64_t> divergent{0};
  std::atomic<std::uint64_t> answered{0};

  // Phase 1 — serial RPC latency.
  std::vector<std::vector<double>> latencies(kClientThreads);
  {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> threads;
    threads.reserve(kClientThreads);
    for (std::size_t t = 0; t < kClientThreads; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t i = next.fetch_add(1); i < serial_requests;
             i = next.fetch_add(1)) {
          const std::size_t p = i % probes.size();
          const auto t0 = std::chrono::steady_clock::now();
          const serve::Response r = client.predict(probes[p]);
          latencies[t].push_back(std::chrono::duration<double>(
                                     std::chrono::steady_clock::now() - t0)
                                     .count());
          answered.fetch_add(1);
          if (!bit_identical(r, expected[p])) divergent.fetch_add(1);
        }
      });
    }
    for (std::thread& th : threads) th.join();
  }
  std::vector<double> all;
  for (const std::vector<double>& part : latencies) {
    all.insert(all.end(), part.begin(), part.end());
  }
  std::sort(all.begin(), all.end());
  const double p50 = percentile(all, 0.50) * 1e6;
  const double p95 = percentile(all, 0.95) * 1e6;
  const double p99 = percentile(all, 0.99) * 1e6;

  // Phase 2 — pipelined throughput.
  double elapsed = 0.0;
  {
    std::atomic<std::size_t> next{0};
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(kClientThreads);
    for (std::size_t t = 0; t < kClientThreads; ++t) {
      threads.emplace_back([&] {
        std::vector<serve::Request> batch(kBatch);
        std::vector<std::size_t> indices(kBatch);
        for (std::size_t base = next.fetch_add(kBatch);
             base < batched_requests; base = next.fetch_add(kBatch)) {
          const std::size_t n =
              std::min(kBatch, batched_requests - base);
          batch.resize(n);
          indices.resize(n);
          for (std::size_t j = 0; j < n; ++j) {
            indices[j] = (base + j) % probes.size();
            batch[j] = probes[indices[j]];
          }
          const std::vector<serve::Response> replies =
              client.predict_batch(batch);
          answered.fetch_add(replies.size());
          for (std::size_t j = 0; j < replies.size(); ++j) {
            if (!bit_identical(replies[j], expected[indices[j]])) {
              divergent.fetch_add(1);
            }
          }
        }
      });
    }
    for (std::thread& th : threads) th.join();
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  }
  const double rps = static_cast<double>(batched_requests) / elapsed;

  server.stop();
  const net::ServerStats ns = server.stats();
  backend.shutdown();

  AsciiTable table({"metric", "value"});
  table.add_row({"pipelined predictions/s", format_double(rps, 0)});
  table.add_row({"serial p50 us", format_double(p50, 1)});
  table.add_row({"serial p95 us", format_double(p95, 1)});
  table.add_row({"serial p99 us", format_double(p99, 1)});
  table.add_row({"divergent", std::to_string(divergent.load())});
  table.add_row({"protocol errors", std::to_string(ns.protocol_errors)});
  table.print(std::cout);
  std::cout << ns.frames_received << " frames in / " << ns.frames_sent
            << " out, " << ns.bytes_received + ns.bytes_sent
            << " bytes on the wire (target >= 10000 predictions/s over "
            << "loopback)\n";

  const bool ok = divergent.load() == 0 && ns.protocol_errors == 0 &&
                  answered.load() == serial_requests + batched_requests;
  {
    std::ofstream json("BENCH_net.json");
    json << "{\n  \"schema\": \"gppm.bench_net.v2\",\n";
    gppm::bench::json_env_stamp(json, smoke);
    // Pre-SIMD trajectory anchor: the full-scale numbers recorded
    // immediately before the slice-by-8 CRC + zero-copy read path.
    json << "  \"baseline_pre_simd\": {\n"
         << "    \"rps\": 14527.7,\n"
         << "    \"p50_us\": 340.57,\n"
         << "    \"p95_us\": 689.25,\n"
         << "    \"p99_us\": 2117.29\n  },\n"
         << "  \"serial_requests\": " << serial_requests << ",\n"
         << "  \"batched_requests\": " << batched_requests << ",\n"
         << "  \"batch\": " << kBatch << ",\n"
         << "  \"client_threads\": " << kClientThreads << ",\n"
         << "  \"elapsed_s\": " << format_double(elapsed, 4) << ",\n"
         << "  \"rps\": " << format_double(rps, 1) << ",\n"
         << "  \"p50_us\": " << format_double(p50, 2) << ",\n"
         << "  \"p95_us\": " << format_double(p95, 2) << ",\n"
         << "  \"p99_us\": " << format_double(p99, 2) << ",\n"
         << "  \"protocol_errors\": " << ns.protocol_errors << ",\n"
         << "  \"divergent\": " << divergent.load() << ",\n"
         << "  \"bit_identical\": " << (ok ? "true" : "false") << "\n"
         << "}\n";
  }
  std::cout << "wrote BENCH_net.json\n";
  return ok ? 0 : 1;
}
