// Library micro-benchmarks (google-benchmark): throughput of the hot paths
// a user of the library exercises — kernel timing evaluation, full run
// simulation, measurement, regression fitting and forward selection.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/dataset.hpp"
#include "core/runner.hpp"
#include "core/unified_model.hpp"
#include "gpusim/engine.hpp"
#include "linalg/lstsq.hpp"
#include "stats/forward_selection.hpp"
#include "workload/suite.hpp"

using namespace gppm;

namespace {

const workload::BenchmarkDef& bench_def() {
  return workload::find_benchmark("hotspot");
}

void BM_KernelTiming(benchmark::State& state) {
  const sim::DeviceSpec& spec = sim::device_spec(sim::GpuModel::GTX480);
  const sim::RunProfile profile = bench_def().profile(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::compute_kernel_timing(
        spec, profile.kernels.front(), sim::kDefaultPair));
  }
}
BENCHMARK(BM_KernelTiming);

void BM_FullRunSimulation(benchmark::State& state) {
  sim::Gpu gpu(sim::GpuModel::GTX680);
  const sim::RunProfile profile = bench_def().profile(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpu.run(profile));
  }
}
BENCHMARK(BM_FullRunSimulation);

void BM_MeasuredRun(benchmark::State& state) {
  core::MeasurementRunner runner(sim::GpuModel::GTX680);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        runner.measure(bench_def(), 0, sim::kDefaultPair));
  }
}
BENCHMARK(BM_MeasuredRun);

void BM_Lstsq(benchmark::State& state) {
  const std::size_t rows = state.range(0);
  Rng rng(3);
  linalg::Matrix a(rows, 11);
  linalg::Vector b(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < 11; ++j) a(i, j) = rng.normal();
    b[i] = rng.normal();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::lstsq(a, b));
  }
}
BENCHMARK(BM_Lstsq)->Arg(114)->Arg(798);

void BM_ForwardSelection(benchmark::State& state) {
  const std::size_t candidates = state.range(0);
  Rng rng(7);
  linalg::Matrix x(200, candidates);
  linalg::Vector y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    for (std::size_t j = 0; j < candidates; ++j) x(i, j) = rng.normal();
    y[i] = 2 * x(i, 0) - x(i, 1) + rng.normal();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::forward_select(x, y));
  }
}
BENCHMARK(BM_ForwardSelection)->Arg(32)->Arg(74)->Arg(108);

void BM_DatasetBuild(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_dataset(sim::GpuModel::GTX460));
  }
}
BENCHMARK(BM_DatasetBuild)->Unit(benchmark::kMillisecond);

void BM_UnifiedModelFit(benchmark::State& state) {
  static const core::Dataset ds = core::build_dataset(sim::GpuModel::GTX460);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::UnifiedModel::fit(ds, core::TargetKind::Power));
  }
}
BENCHMARK(BM_UnifiedModelFit)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
