// Reproduces paper Fig. 3: performance and power efficiency of Gaussian —
// the mixed workload whose boundedness flips between operating points and
// between the two same-generation Fermi boards.
#include "figure_sweep.hpp"

int main() {
  gppm::bench::run_figure_sweep("Fig. 3", "gaussian");
  return 0;
}
