// Reproduces paper TABLE I: specifications of the NVIDIA GPUs.
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "gpusim/device_spec.hpp"

using namespace gppm;

int main() {
  bench::print_banner("TABLE I", "Specifications of the NVIDIA GPUs.");

  AsciiTable table({"GPU", "Architecture", "# cores", "Peak GFLOPS",
                    "BW (GB/s)", "TDP (W)", "Core MHz (L/M/H)",
                    "Mem MHz (L/M/H)"});
  auto freqs = [](const sim::ClockDomainSpec& dom) {
    std::vector<std::string> parts;
    for (const sim::ClockStep& s : dom.steps) {
      parts.push_back(format_double(s.frequency.as_mhz(), 0));
    }
    return join(parts, ", ");
  };
  for (sim::GpuModel m : sim::kAllGpus) {
    const sim::DeviceSpec& spec = sim::device_spec(m);
    table.add_row({sim::to_string(m), sim::to_string(spec.architecture),
                   std::to_string(spec.cuda_cores),
                   format_double(spec.peak_gflops, 0),
                   format_double(spec.mem_bandwidth_gbps, 1),
                   format_double(spec.tdp.as_watts(), 0),
                   freqs(spec.core_clock), freqs(spec.mem_clock)});
  }
  table.print(std::cout);

  bench::begin_csv("table1_specs");
  CsvWriter csv(std::cout);
  csv.row({"gpu", "architecture", "cores", "peak_gflops", "bandwidth_gbps",
           "tdp_w", "core_mhz_l", "core_mhz_m", "core_mhz_h", "mem_mhz_l",
           "mem_mhz_m", "mem_mhz_h", "counters"});
  for (sim::GpuModel m : sim::kAllGpus) {
    const sim::DeviceSpec& spec = sim::device_spec(m);
    csv.row({sim::to_string(m), sim::to_string(spec.architecture),
             std::to_string(spec.cuda_cores),
             format_double(spec.peak_gflops, 0),
             format_double(spec.mem_bandwidth_gbps, 1),
             format_double(spec.tdp.as_watts(), 0),
             format_double(spec.core_clock.steps[0].frequency.as_mhz(), 0),
             format_double(spec.core_clock.steps[1].frequency.as_mhz(), 0),
             format_double(spec.core_clock.steps[2].frequency.as_mhz(), 0),
             format_double(spec.mem_clock.steps[0].frequency.as_mhz(), 0),
             format_double(spec.mem_clock.steps[1].frequency.as_mhz(), 0),
             format_double(spec.mem_clock.steps[2].frequency.as_mhz(), 0),
             std::to_string(spec.performance_counter_count)});
  }
  bench::end_csv();
  return 0;
}
