#include "figure_sweep.hpp"

#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "common/csv.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "core/characterization.hpp"
#include "workload/suite.hpp"

namespace gppm::bench {

void run_figure_sweep(const std::string& figure_id,
                      const std::string& benchmark_name) {
  print_banner(figure_id, "Performance and power efficiency of " +
                              benchmark_name +
                              " (relative to (H-H); x-axis: core MHz, one "
                              "series per memory level).");

  const workload::BenchmarkDef& def = workload::find_benchmark(benchmark_name);

  begin_csv("sweep_" + benchmark_name);
  CsvWriter csv(std::cout);
  csv.row({"gpu", "pair", "core_mhz", "mem_mhz", "exec_time_s", "power_w",
           "energy_j", "rel_performance", "rel_efficiency"});

  struct PanelData {
    core::Sweep sweep;
  };
  std::vector<PanelData> panels;

  for (sim::GpuModel model : sim::kAllGpus) {
    core::RunnerOptions opt;
    opt.seed = kCampaignSeed;
    core::MeasurementRunner runner(model, opt);
    core::Sweep sweep = core::sweep_pairs(runner, def, def.size_count - 1);

    const sim::DeviceSpec& spec = sim::device_spec(model);
    for (const core::PairResult& r : sweep.results) {
      csv.row({sim::to_string(model), sim::to_string(r.measurement.pair),
               format_double(spec.core_clock.at(r.measurement.pair.core)
                                 .frequency.as_mhz(), 0),
               format_double(spec.mem_clock.at(r.measurement.pair.mem)
                                 .frequency.as_mhz(), 0),
               format_double(r.measurement.exec_time.as_seconds(), 4),
               format_double(r.measurement.avg_power.as_watts(), 2),
               format_double(r.measurement.energy.as_joules(), 2),
               format_double(r.relative_performance, 4),
               format_double(r.relative_efficiency, 4)});
    }
    panels.push_back({std::move(sweep)});
  }
  end_csv();

  for (std::size_t g = 0; g < sim::kAllGpus.size(); ++g) {
    const sim::GpuModel model = sim::kAllGpus[g];
    const sim::DeviceSpec& spec = sim::device_spec(model);
    const core::Sweep& sweep = panels[g].sweep;

    for (const char* metric : {"performance", "power efficiency"}) {
      LineChart chart(sim::to_string(model) + " — relative " + metric,
                      "core frequency (MHz)", std::string("relative ") + metric);
      for (sim::ClockLevel mem : {sim::ClockLevel::High, sim::ClockLevel::Medium,
                                  sim::ClockLevel::Low}) {
        Series s;
        s.label = "Mem-" + sim::to_string(mem);
        for (const core::PairResult& r : sweep.results) {
          if (r.measurement.pair.mem != mem) continue;
          s.x.push_back(
              spec.core_clock.at(r.measurement.pair.core).frequency.as_mhz());
          s.y.push_back(metric == std::string("performance")
                            ? r.relative_performance
                            : r.relative_efficiency);
        }
        if (!s.x.empty()) chart.add_series(std::move(s));
      }
      chart.print(std::cout, 56, 14);
      std::cout << "\n";
    }

    std::cout << sim::to_string(model) << ": best pair "
              << sim::to_string(sweep.best_pair()) << ", efficiency +"
              << format_double(sweep.improvement_percent(), 1)
              << "% over (H-H), performance -"
              << format_double(sweep.performance_loss_percent(), 1) << "%\n\n";
  }
}

}  // namespace gppm::bench
