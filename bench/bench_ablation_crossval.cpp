// Ablation A5 (library extension): in-sample vs leave-one-benchmark-out
// cross-validated error.
//
// The paper evaluates its models on the same 114 samples they were fitted
// on.  Its motivating use case — predicting power/performance for workloads
// at runtime — needs out-of-sample accuracy.  This ablation reports both,
// per board and per target, under the paper's model form.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/str.hpp"
#include "common/table.hpp"

using namespace gppm;

int main() {
  bench::print_banner("Ablation A5",
                      "In-sample vs leave-one-benchmark-out cross-validated "
                      "prediction error (paper model form, 10 variables).");

  AsciiTable table({"GPU", "power in-sample %", "power LOBO-CV %",
                    "perf in-sample %", "perf LOBO-CV %"});
  bench::begin_csv("ablation_crossval");
  CsvWriter csv(std::cout);
  csv.row({"gpu", "power_in_sample", "power_cv", "perf_in_sample", "perf_cv"});

  for (sim::GpuModel model : sim::kAllGpus) {
    const bench::BoardModels& bm = bench::board_models(model);
    const double power_in = core::evaluate(bm.power, bm.dataset).mape();
    const double perf_in = core::evaluate(bm.perf, bm.dataset).mape();
    const double power_cv =
        core::cross_validate(bm.dataset, core::TargetKind::Power).mape();
    const double perf_cv =
        core::cross_validate(bm.dataset, core::TargetKind::ExecTime).mape();
    table.add_row({sim::to_string(model), format_double(power_in, 1),
                   format_double(power_cv, 1), format_double(perf_in, 1),
                   format_double(perf_cv, 1)});
    csv.row(sim::to_string(model), {power_in, power_cv, perf_in, perf_cv}, 2);
  }
  table.print(std::cout);
  bench::end_csv();
  std::cout << "Expected: CV error exceeds in-sample error — the gap "
               "quantifies how optimistic the\npaper's in-sample evaluation "
               "is about runtime prediction of unseen workloads.\n";
  return 0;
}
