// Reproduces paper TABLE VIII: average prediction error of the performance
// model.  Paper: 67.9 / 47.6 / 39.3 / 33.5 %, decreasing with generation.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/str.hpp"
#include "common/table.hpp"

using namespace gppm;

int main() {
  bench::print_banner("TABLE VIII",
                      "Average prediction error of the performance model.");

  AsciiTable table({"", "GTX 285", "GTX 460", "GTX 480", "GTX 680"});
  std::vector<std::string> pct = {"Error[%]"};
  std::vector<double> pct_v;
  for (sim::GpuModel m : sim::kAllGpus) {
    const bench::BoardModels& bm = bench::board_models(m);
    const core::Evaluation eval = core::evaluate(bm.perf, bm.dataset);
    pct.push_back(format_double(eval.mape(), 1));
    pct_v.push_back(eval.mape());
  }
  table.add_row(pct);
  table.print(std::cout);
  std::cout << "paper: 67.9 / 47.6 / 39.3 / 33.5 %\n";

  bench::begin_csv("table8_perf_error");
  CsvWriter csv(std::cout);
  csv.row({"gtx285", "gtx460", "gtx480", "gtx680"});
  csv.row("", pct_v, 2);
  bench::end_csv();
  return 0;
}
