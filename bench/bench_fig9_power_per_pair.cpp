// Reproduces paper Fig. 9: impact of GPU clocks on the power model — the
// unified model's error distribution should sit close to the per-pair
// specialists despite covering all operating points with one model.
#include "per_pair_boxes.hpp"

int main() {
  gppm::bench::run_per_pair_boxes("Fig. 9", gppm::core::TargetKind::Power);
  return 0;
}
