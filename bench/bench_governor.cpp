// Closed-loop governor verification: online decisions vs TABLE IV.
//
// Runs the full online DVFS loop (profile -> decide -> VBIOS apply ->
// measure -> refit) over a drifting phase schedule drawn from the paper's
// benchmark suite, on every board generation, and gates the realized
// energy against the offline references:
//
//   * oracle gate  — governed energy within 5 % of the per-phase
//     offline-optimal (TABLE IV's best pair, re-derived per phase by a
//     full pair sweep);
//   * static gate  — governed energy strictly below the always-(H-H)
//     baseline on *every* board generation;
//   * ordering gate — realized savings grow across generations the way
//     the paper's Fig. 4 margins do (GTX 285 < Fermi boards < GTX 680);
//   * transition gate — reboots == switches (same-pair decisions are
//     controller no-ops) and switches < decisions (hysteresis holds at
//     least once).
//
// Emits BENCH_governor.json (shared env stamp); exits nonzero if any gate
// fails.  --smoke shortens the schedule for the ctest wrapper.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "governor/loop.hpp"

using namespace gppm;

namespace {

struct BoardRun {
  sim::GpuModel model = sim::GpuModel::GTX680;
  governor::LoopResult result;
  double saving_pct = 0.0;      ///< vs static (H-H)
  double oracle_gap_pct = 0.0;  ///< governed over offline-optimal
};

BoardRun run_board(sim::GpuModel model, std::size_t phase_count) {
  const bench::BoardFamilies& fam = bench::board_families(model);

  // The governor needs the voltage-aware power form: the paper's
  // frequency-only Eq. 1 under-predicts low-P-state power so badly that
  // energy minimization collapses to "always (H-H)" (see
  // bench_ablation_voltage_scaling).
  core::ModelOptions popt;
  popt.scaling = core::FeatureScaling::VoltageSquaredFrequency;
  popt.include_baseline_terms = true;

  governor::LoopOptions opt;
  opt.governor.policy = core::GovernorPolicy::MinimumEnergy;
  governor::GovernorLoop loop(
      model, fam.dataset,
      core::UnifiedModel::fit(fam.dataset, core::TargetKind::Power, popt),
      fam.perf.at(10), opt);

  workload::PhaseScheduleOptions sched;
  sched.phases = phase_count;
  sched.seed = bench::kCampaignSeed;
  const std::vector<workload::Phase> phases = workload::phase_schedule(
      sched, profiler::CudaProfiler::unsupported_benchmarks());

  BoardRun run;
  run.model = model;
  run.result = loop.run(phases);
  run.saving_pct = (1.0 - run.result.governed_energy_joules /
                              run.result.default_energy_joules) * 100.0;
  run.oracle_gap_pct = (run.result.governed_energy_joules /
                            run.result.oracle_energy_joules - 1.0) * 100.0;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const std::size_t phase_count = smoke ? 12 : 48;

  bench::print_banner(
      "Closed-loop governor vs TABLE IV",
      "Online profile->decide->apply->measure->refit loop over a drifting "
      "phase schedule; energy gated against the per-phase offline optimum "
      "and the static (H-H) baseline on every board generation.");

  bench::prefetch_board_families();
  std::vector<BoardRun> runs;
  for (sim::GpuModel model : sim::kAllGpus) {
    runs.push_back(run_board(model, phase_count));
  }

  AsciiTable table({"gpu", "phases", "governed J", "static J", "oracle J",
                    "saving %", "oracle gap %", "switches", "reboots",
                    "refits"});
  for (const BoardRun& run : runs) {
    table.add_row({sim::to_string(run.model),
                   std::to_string(run.result.phases.size()),
                   format_double(run.result.governed_energy_joules, 0),
                   format_double(run.result.default_energy_joules, 0),
                   format_double(run.result.oracle_energy_joules, 0),
                   format_double(run.saving_pct, 1),
                   format_double(run.oracle_gap_pct, 2),
                   std::to_string(run.result.switches),
                   std::to_string(run.result.reboots),
                   std::to_string(run.result.refits)});
  }
  table.print(std::cout);

  // Gates.
  bool oracle_ok = true, static_ok = true, transition_ok = true;
  for (const BoardRun& run : runs) {
    if (run.oracle_gap_pct > 5.0) oracle_ok = false;
    if (!(run.result.governed_energy_joules <
          run.result.default_energy_joules)) {
      static_ok = false;
    }
    if (run.result.reboots != run.result.switches ||
        run.result.switches >=
            static_cast<int>(run.result.phases.size())) {
      transition_ok = false;
    }
  }
  // Generation ordering of realized savings: Tesla below both Fermi
  // boards, both Fermi boards below Kepler (the Fig. 4 margin shape; the
  // two Fermi boards are too close to each other to order reliably).
  auto saving_of = [&](sim::GpuModel m) {
    for (const BoardRun& r : runs) {
      if (r.model == m) return r.saving_pct;
    }
    throw Error("board missing from runs");
  };
  const double s285 = saving_of(sim::GpuModel::GTX285);
  const double s460 = saving_of(sim::GpuModel::GTX460);
  const double s480 = saving_of(sim::GpuModel::GTX480);
  const double s680 = saving_of(sim::GpuModel::GTX680);
  const bool ordering_ok =
      s285 < s460 && s285 < s480 && s460 < s680 && s480 < s680;

  std::cout << "oracle gate (<= 5% over offline-optimal): "
            << (oracle_ok ? "held" : "BLOWN") << "\n"
            << "static gate (beats always-(H-H) on every board): "
            << (static_ok ? "held" : "BLOWN") << "\n"
            << "ordering gate (285 < Fermi < 680 savings): "
            << (ordering_ok ? "held" : "BLOWN") << "\n"
            << "transition gate (reboots == switches < phases): "
            << (transition_ok ? "held" : "BLOWN") << "\n";

  const bool ok = oracle_ok && static_ok && ordering_ok && transition_ok;
  {
    std::ofstream json("BENCH_governor.json");
    json << "{\n  \"schema\": \"gppm.bench_governor.v1\",\n";
    bench::json_env_stamp(json, smoke);
    json << "  \"policy\": \"min-energy\",\n"
         << "  \"phase_count\": " << phase_count << ",\n"
         << "  \"paper_fig4_margins_pct\": {\"gtx285\": 13, \"gtx460\": 39, "
            "\"gtx480\": 40, \"gtx680\": 75},\n"
         << "  \"boards\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const BoardRun& run = runs[i];
      json << "    {\"gpu\": \"" << sim::to_string(run.model) << "\""
           << ", \"phases\": " << run.result.phases.size()
           << ", \"governed_j\": "
           << format_double(run.result.governed_energy_joules, 1)
           << ", \"static_j\": "
           << format_double(run.result.default_energy_joules, 1)
           << ", \"oracle_j\": "
           << format_double(run.result.oracle_energy_joules, 1)
           << ", \"saving_pct\": " << format_double(run.saving_pct, 2)
           << ", \"oracle_gap_pct\": "
           << format_double(run.oracle_gap_pct, 2)
           << ", \"switches\": " << run.result.switches
           << ", \"reboots\": " << run.result.reboots
           << ", \"refits\": " << run.result.refits << "}"
           << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"gates\": {\"oracle\": " << (oracle_ok ? "true" : "false")
         << ", \"static\": " << (static_ok ? "true" : "false")
         << ", \"ordering\": " << (ordering_ok ? "true" : "false")
         << ", \"transitions\": " << (transition_ok ? "true" : "false")
         << "},\n"
         << "  \"pass\": " << (ok ? "true" : "false") << "\n}\n";
  }
  std::cout << "wrote BENCH_governor.json\n";
  if (!ok) {
    std::cerr << "FAIL:" << (oracle_ok ? "" : " oracle-gate")
              << (static_ok ? "" : " static-gate")
              << (ordering_ok ? "" : " ordering-gate")
              << (transition_ok ? "" : " transition-gate") << "\n";
    return 1;
  }
  return 0;
}
