// Ablation A2: sensitivity of the characterization to the instrument.
//
// The paper's methodology hinges on the WT1600's 50 ms sampling and the
// 500 ms repetition rule.  This ablation re-measures the backprop sweep on
// the GTX 680 with different sampling periods and noise levels and reports
// how stable the best-pair decision and the improvement figure are.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "core/characterization.hpp"
#include "workload/suite.hpp"

using namespace gppm;

int main() {
  bench::print_banner("Ablation A2",
                      "Meter sampling-period and noise sensitivity of the "
                      "backprop/GTX 680 characterization.");

  struct Config {
    double period_ms;
    double noise_w;
    double noise_frac;
  };
  const std::vector<Config> configs = {
      {50.0, 0.3, 0.002},   // WT1600 as modeled
      {50.0, 0.0, 0.0},     // ideal instrument
      {200.0, 0.3, 0.002},  // coarser sampling
      {50.0, 3.0, 0.02},    // 10x noisier instrument
      {500.0, 0.3, 0.002},  // one sample per half second
  };

  const auto& def = workload::find_benchmark("backprop");

  AsciiTable table({"period (ms)", "noise (W)", "noise (%)", "best pair",
                    "improvement %", "loss %"});
  bench::begin_csv("ablation_meter");
  CsvWriter csv(std::cout);
  csv.row({"period_ms", "noise_w", "noise_frac", "best_pair",
           "improvement_pct", "loss_pct"});

  for (const Config& cfg : configs) {
    core::RunnerOptions opt;
    opt.seed = bench::kCampaignSeed;
    opt.meter.sampling_period = Duration::milliseconds(cfg.period_ms);
    opt.meter.noise_floor_watts = cfg.noise_w;
    opt.meter.noise_fraction = cfg.noise_frac;
    core::MeasurementRunner runner(sim::GpuModel::GTX680, opt);
    const core::Sweep sweep =
        core::sweep_pairs(runner, def, def.size_count - 1);

    table.add_row({format_double(cfg.period_ms, 0),
                   format_double(cfg.noise_w, 1),
                   format_double(cfg.noise_frac * 100, 1),
                   sim::to_string(sweep.best_pair()),
                   format_double(sweep.improvement_percent(), 1),
                   format_double(sweep.performance_loss_percent(), 1)});
    csv.row({format_double(cfg.period_ms, 0), format_double(cfg.noise_w, 2),
             format_double(cfg.noise_frac, 4),
             sim::to_string(sweep.best_pair()),
             format_double(sweep.improvement_percent(), 2),
             format_double(sweep.performance_loss_percent(), 2)});
  }
  table.print(std::cout);
  bench::end_csv();
  std::cout << "Expected: the best-pair decision is robust to instrument "
               "settings; the improvement\nfigure moves by at most a few "
               "points.\n";
  return 0;
}
