// Ablation A3: profiler observation quality vs model accuracy.
//
// The CUDA profiler extrapolates counters from a sampled subset of SMs.
// This ablation rebuilds the GTX 480 corpus under different sampling-error
// levels and reports the fitted models' error — quantifying how much of the
// paper's prediction error is attributable to counter observation noise
// versus genuinely unmodeled behaviour.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/str.hpp"
#include "common/table.hpp"

using namespace gppm;

int main() {
  bench::print_banner("Ablation A3",
                      "Profiler SM-sampling error vs unified-model accuracy "
                      "(GTX 480 corpus).");

  AsciiTable table({"sampling sigma", "power R^2", "power err%", "perf R^2",
                    "perf err%"});
  bench::begin_csv("ablation_profiler");
  CsvWriter csv(std::cout);
  csv.row({"sigma", "power_r2", "power_err", "perf_r2", "perf_err"});

  for (double sigma : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    core::DatasetOptions opt;
    opt.seed = bench::kCampaignSeed;
    opt.profiler_sampling_sigma = sigma;
    const core::Dataset ds = core::build_dataset(sim::GpuModel::GTX480, opt);
    const core::UnifiedModel power =
        core::UnifiedModel::fit(ds, core::TargetKind::Power);
    const core::UnifiedModel perf =
        core::UnifiedModel::fit(ds, core::TargetKind::ExecTime);
    const double power_err = core::evaluate(power, ds).mape();
    const double perf_err = core::evaluate(perf, ds).mape();

    table.add_row({format_double(sigma, 2), format_double(power.adjusted_r2(), 2),
                   format_double(power_err, 1),
                   format_double(perf.adjusted_r2(), 2),
                   format_double(perf_err, 1)});
    csv.row(format_double(sigma, 2),
            {power.adjusted_r2(), power_err, perf.adjusted_r2(), perf_err}, 3);
  }
  table.print(std::cout);
  bench::end_csv();
  std::cout << "Expected: even a perfect profiler (sigma 0) leaves most of "
               "the prediction error in\nplace — the error is dominated by "
               "behaviour no counter observes, the paper's central\n"
               "limitation of multiple linear regression.\n";
  return 0;
}
