// Serving fitted models at runtime: the deployment story end to end.
//
// Offline, once: build the corpus, fit the power and exectime models,
// serialize them.  Online, forever: a PredictionServer loads the pair and
// answers concurrent Predict / Optimize / Govern requests from a worker
// pool, with micro-batching, a prediction cache and metrics.
//
// Build & run:  ./build/examples/serving
#include <iostream>
#include <vector>

#include "common/str.hpp"
#include "core/dataset.hpp"
#include "core/serialization.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"

using namespace gppm;

int main() {
  const sim::GpuModel board = sim::GpuModel::GTX460;

  // --- Offline: fit once (in a real deployment this runs on the rig and
  // the models ship as files; serialize_model/deserialize_model round-trip
  // them exactly).
  std::cout << "fitting models for " << sim::to_string(board) << "...\n";
  const core::Dataset ds = core::build_dataset(board);
  core::ModelOptions popt;
  popt.scaling = core::FeatureScaling::VoltageSquaredFrequency;
  popt.include_baseline_terms = true;
  core::UnifiedModel power =
      core::UnifiedModel::fit(ds, core::TargetKind::Power, popt);
  core::UnifiedModel perf =
      core::UnifiedModel::fit(ds, core::TargetKind::ExecTime);
  std::cout << "power model fingerprint "
            << core::model_fingerprint(power) << "\n";

  // --- Online: start the server (workers spin up immediately) and
  // register the pair for the board.
  serve::ServerOptions options;
  options.worker_threads = 2;
  serve::PredictionServer server(options);
  server.load_models(std::move(power), std::move(perf));

  // A client ships a profiled phase and asks the three questions.
  const profiler::ProfileResult& phase = ds.samples.front().counters;

  serve::Request predict;
  predict.kind = serve::RequestKind::Predict;
  predict.gpu = board;
  predict.counters = phase;
  predict.pair = {sim::ClockLevel::Medium, sim::ClockLevel::High};

  serve::Request optimize;
  optimize.kind = serve::RequestKind::Optimize;
  optimize.gpu = board;
  optimize.counters = phase;

  serve::Request govern;
  govern.kind = serve::RequestKind::Govern;
  govern.gpu = board;
  govern.counters = phase;
  govern.policy = core::GovernorPolicy::MinimumEnergy;

  // submit() returns a future; batching and caching happen behind it.
  auto f1 = server.submit(predict);
  auto f2 = server.submit(optimize);
  auto f3 = server.submit(govern);

  const serve::Response r1 = f1.get();
  std::cout << "predict @ " << sim::to_string(r1.pair) << ": "
            << format_double(r1.power_watts, 1) << " W, "
            << format_double(r1.time_seconds, 3) << " s\n";
  const serve::Response r2 = f2.get();
  std::cout << "optimize: best pair " << sim::to_string(r2.pair) << " at "
            << format_double(r2.energy_joules, 1) << " J predicted\n";
  const serve::Response r3 = f3.get();
  std::cout << "govern (min-energy): " << sim::to_string(r3.pair) << "\n";

  // Re-asking an identical question is answered from the cache.
  const serve::Response again = server.submit(predict).get();
  std::cout << "repeat predict served from cache: "
            << (again.cache_hit ? "yes" : "no") << "\n";

  // Shutdown drains: everything queued is answered, new work is rejected.
  server.shutdown();
  try {
    server.submit(predict);
  } catch (const Error&) {
    std::cout << "post-shutdown submit rejected (drain semantics)\n";
  }

  server.metrics().print(std::cout);
  return 0;
}
