// Online DVFS governor: the paper's "dynamic runtime management" future
// work, built from its pieces.
//
// A stream of application phases (different kernels) arrives; for each
// phase the governor profiles it once at the current clocks, predicts
// power/time for every configurable pair with the unified models, switches
// to the predicted minimum-energy pair through the VBIOS path, and runs.
// The run reports the realized energy against two baselines: always-default
// clocks and the per-phase oracle.
//
// Build & run:  ./build/examples/online_governor
#include <iostream>

#include "common/str.hpp"
#include "common/table.hpp"
#include "core/governor.hpp"
#include "core/runner.hpp"
#include "dvfs/controller.hpp"
#include "profiler/cuda_profiler.hpp"
#include "workload/suite.hpp"

using namespace gppm;

int main() {
  const sim::GpuModel board = sim::GpuModel::GTX680;
  std::cout << "Training unified models for " << sim::to_string(board)
            << "...\n";
  const core::Dataset ds = core::build_dataset(board);
  // The governor uses the voltage-aware power features (V^2 f) plus the
  // per-domain baseline terms: the paper's frequency-only Eq. 1
  // under-predicts the power drop of low P-states so badly that energy
  // minimization collapses to "always (H-H)" — see
  // bench_ablation_voltage_scaling for the comparison.
  core::ModelOptions popt;
  popt.scaling = core::FeatureScaling::VoltageSquaredFrequency;
  popt.include_baseline_terms = true;
  core::GovernorOptions gopt;
  gopt.policy = core::GovernorPolicy::MinimumEnergy;
  gopt.switch_threshold = 0.02;  // ignore <2% predicted gains
  core::DvfsGovernor governor(
      core::UnifiedModel::fit(ds, core::TargetKind::Power, popt),
      core::UnifiedModel::fit(ds, core::TargetKind::ExecTime), gopt);

  core::MeasurementRunner runner(board);
  dvfs::Controller dvfs(runner.gpu());
  profiler::CudaProfiler prof;

  // A day in the life of a GPU server: alternating phases.
  const std::vector<std::string> phases = {"sgemm", "streamcluster", "lbm",
                                           "mri-q", "spmv", "hotspot"};

  AsciiTable table({"phase", "governor pair", "energy (J)", "default (J)",
                    "oracle (J)", "saving %"});
  double total_gov = 0, total_def = 0, total_oracle = 0;

  for (const std::string& phase : phases) {
    const workload::BenchmarkDef& bench = workload::find_benchmark(phase);
    const sim::RunProfile profile =
        runner.prepared_profile(bench, bench.size_count - 1);

    // Profile the phase once (at the current pair, as a governor would).
    runner.gpu().set_frequency_pair(governor.current_pair());
    const profiler::ProfileResult counters = prof.collect(runner.gpu(), profile);

    // Predict and switch (hysteresis applies inside the governor).
    const sim::FrequencyPair pick = governor.decide(counters);
    dvfs.set_pair(pick);
    const core::Measurement chosen = runner.measure_profile(profile, pick);

    // Baselines.
    const core::Measurement at_default =
        runner.measure_profile(profile, sim::kDefaultPair);
    double oracle = at_default.energy.as_joules();
    for (sim::FrequencyPair pair : dvfs.available_pairs()) {
      oracle = std::min(
          oracle, runner.measure_profile(profile, pair).energy.as_joules());
    }

    total_gov += chosen.energy.as_joules();
    total_def += at_default.energy.as_joules();
    total_oracle += oracle;
    table.add_row(
        {phase, sim::to_string(pick),
         format_double(chosen.energy.as_joules(), 1),
         format_double(at_default.energy.as_joules(), 1),
         format_double(oracle, 1),
         format_double((1.0 - chosen.energy.as_joules() /
                                  at_default.energy.as_joules()) * 100.0, 1)});
  }
  table.print(std::cout);

  std::cout << "\nTotals: governor " << format_double(total_gov, 0)
            << " J, always-default " << format_double(total_def, 0)
            << " J, oracle " << format_double(total_oracle, 0) << " J\n";
  std::cout << "Governor saves "
            << format_double((1.0 - total_gov / total_def) * 100.0, 1)
            << "% of energy and captures "
            << format_double((total_def - total_gov) /
                                 std::max(1e-9, total_def - total_oracle) * 100.0,
                             0)
            << "% of the oracle's achievable saving, using "
            << governor.switch_count() << " P-state switches over "
            << governor.decision_count() << " phases.\n";
  return 0;
}
