// NVML-style monitoring: what `nvidia-smi dmon` would show while one of
// the paper's benchmarks runs on a simulated board.
//
// Demonstrates the gppm::nvml shim: attach a device, load a run's virtual
// timeline, and sample clocks / utilization / power / energy on a fixed
// grid — the modern (meter-free) way to collect the paper's power data.
//
// Build & run:  ./build/examples/nvml_monitor [benchmark] [gpu]
#include <iostream>

#include "common/error.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "nvml/nvml.hpp"
#include "workload/suite.hpp"

using namespace gppm;

namespace {
sim::GpuModel parse_gpu(const std::string& name) {
  if (name == "gtx285") return sim::GpuModel::GTX285;
  if (name == "gtx460") return sim::GpuModel::GTX460;
  if (name == "gtx480") return sim::GpuModel::GTX480;
  if (name == "gtx680") return sim::GpuModel::GTX680;
  throw Error("unknown GPU: " + name);
}
}  // namespace

int main(int argc, char** argv) {
  const std::string bench_name = argc > 1 ? argv[1] : "srad_v1";
  const sim::GpuModel model = argc > 2 ? parse_gpu(argv[2]) : sim::GpuModel::GTX680;

  sim::Gpu gpu(model);
  nvml::Session session;
  const nvml::DeviceHandle dev = session.attach_device(gpu);
  std::cout << session.device_name(dev) << " | graphics "
            << session.clock_info(dev).graphics_mhz << " MHz | memory "
            << session.clock_info(dev).memory_mhz << " MHz\n\n";

  const workload::BenchmarkDef& bench = workload::find_benchmark(bench_name);
  const sim::RunExecution exec = gpu.run(bench.max_profile());
  session.begin_run(dev, exec);

  // dmon-style table: one row per 200 ms of virtual time.
  AsciiTable table({"t (s)", "power (W)", "sm%", "mem%", "energy (J)"});
  const double total = exec.total_time.as_seconds();
  const double step = std::max(total / 12.0, 0.05);
  for (double t = 0.0; t <= total; t += step) {
    const Duration at = Duration::seconds(t);
    const nvml::UtilizationRates u = session.utilization(dev, at);
    table.add_row(
        {format_double(t, 2),
         format_double(session.power_usage_mw(dev, at) / 1000.0, 1),
         std::to_string(u.gpu), std::to_string(u.memory),
         format_double(session.total_energy_mj(dev, at) / 1000.0, 1)});
  }
  table.print(std::cout);

  const auto samples = nvml::sample_power(session, dev, exec.total_time,
                                          Duration::milliseconds(50.0));
  std::cout << "\n" << bench_name << " on " << sim::to_string(model) << ": "
            << format_double(total, 3) << " s, board energy "
            << format_double(session.total_energy_mj(dev, exec.total_time) / 1000.0, 1)
            << " J, 50 ms-sampled average board power "
            << format_double(nvml::average_power(samples).as_watts(), 1)
            << " W over " << samples.size() << " samples\n";
  return 0;
}
