// Energy tuning: the paper's Section III use case as an application.
//
// Given a workload (default: srad_v1, pass another name as argv[1]),
// exhaustively sweep every configurable frequency pair on all four boards
// and report the energy-optimal setting, its saving over the factory
// default, and the performance cost — i.e. regenerate one row of TABLE IV
// with full context.
//
// Build & run:  ./build/examples/energy_tuning [benchmark-name]
#include <iostream>

#include "common/str.hpp"
#include "common/table.hpp"
#include "core/characterization.hpp"
#include "workload/suite.hpp"

using namespace gppm;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "srad_v1";
  const workload::BenchmarkDef& bench = workload::find_benchmark(name);
  std::cout << "Energy tuning for '" << name << "' ("
            << workload::to_string(bench.suite)
            << ") at maximum input size\n\n";

  AsciiTable table({"GPU", "best pair", "energy saving %", "perf loss %",
                    "best energy (J)", "default energy (J)"});

  for (sim::GpuModel model : sim::kAllGpus) {
    core::MeasurementRunner runner(model);
    const core::Sweep sweep =
        core::sweep_pairs(runner, bench, bench.size_count - 1);
    const core::PairResult& best = sweep.at(sweep.best_pair());
    const core::PairResult& def = sweep.at(sim::kDefaultPair);
    const double saving =
        (1.0 - best.measurement.energy / def.measurement.energy) * 100.0;
    table.add_row({sim::to_string(model), sim::to_string(sweep.best_pair()),
                   format_double(saving, 1),
                   format_double(sweep.performance_loss_percent(), 1),
                   format_double(best.measurement.energy.as_joules(), 1),
                   format_double(def.measurement.energy.as_joules(), 1)});
  }
  table.print(std::cout);

  std::cout << "\nPer-pair detail on the GTX 680:\n";
  core::MeasurementRunner runner(sim::GpuModel::GTX680);
  const core::Sweep sweep =
      core::sweep_pairs(runner, bench, bench.size_count - 1);
  AsciiTable detail({"pair", "time (s)", "power (W)", "energy (J)",
                     "rel. perf", "rel. efficiency"});
  for (const core::PairResult& r : sweep.results) {
    detail.add_row({sim::to_string(r.measurement.pair),
                    format_double(r.measurement.exec_time.as_seconds(), 3),
                    format_double(r.measurement.avg_power.as_watts(), 1),
                    format_double(r.measurement.energy.as_joules(), 1),
                    format_double(r.relative_performance, 3),
                    format_double(r.relative_efficiency, 3)});
  }
  detail.print(std::cout);
  return 0;
}
