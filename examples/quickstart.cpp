// Quickstart: the five-minute tour of the library.
//
//   1. create a simulated board and its DVFS controller,
//   2. run a benchmark and measure time / power / energy like the paper's
//      WT1600 setup,
//   3. change the operating point through the VBIOS path and re-measure,
//   4. collect CUDA-profiler counters for the same run.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "common/str.hpp"
#include "core/runner.hpp"
#include "dvfs/controller.hpp"
#include "profiler/cuda_profiler.hpp"
#include "workload/suite.hpp"

using namespace gppm;

int main() {
  // A GTX 680 with deterministic behaviour (seed 42).
  core::MeasurementRunner runner(sim::GpuModel::GTX680);
  dvfs::Controller dvfs(runner.gpu());

  std::cout << "Board: " << sim::to_string(runner.gpu().spec().model) << " ("
            << sim::to_string(runner.gpu().spec().architecture) << ", "
            << runner.gpu().spec().cuda_cores << " cores)\n";
  std::cout << "Configurable pairs:";
  for (sim::FrequencyPair p : dvfs.available_pairs()) {
    std::cout << " " << sim::to_string(p);
  }
  std::cout << "\n\n";

  // Run hotspot at the default clocks.
  const workload::BenchmarkDef& bench = workload::find_benchmark("hotspot");
  const std::size_t size = bench.size_count - 1;  // max feasible input

  const core::Measurement at_default =
      runner.measure(bench, size, dvfs.current_pair());
  std::cout << "hotspot @ " << sim::to_string(dvfs.current_pair()) << ": "
            << format_double(at_default.exec_time.as_seconds(), 3) << " s, "
            << format_double(at_default.avg_power.as_watts(), 1) << " W, "
            << format_double(at_default.energy.as_joules(), 1) << " J\n";

  // Sweep every configurable pair through the VBIOS patching path and keep
  // the energy-optimal one (the paper's TABLE IV procedure for one cell).
  core::Measurement best = at_default;
  for (sim::FrequencyPair pair : dvfs.available_pairs()) {
    dvfs.set_pair(pair);
    const core::Measurement m = runner.measure(bench, size, pair);
    if (m.energy < best.energy) best = m;
  }
  std::cout << "best pair " << sim::to_string(best.pair) << ": "
            << format_double(best.exec_time.as_seconds(), 3) << " s, "
            << format_double(best.avg_power.as_watts(), 1) << " W, "
            << format_double(best.energy.as_joules(), 1) << " J\n";
  std::cout << "energy saving vs default: "
            << format_double((1.0 - best.energy / at_default.energy) * 100, 1)
            << "%\n\n";

  // Profile the run: the counters the paper's models consume.
  dvfs.set_pair(sim::kDefaultPair);
  profiler::CudaProfiler prof;
  const profiler::ProfileResult counters =
      prof.collect(runner.gpu(), runner.prepared_profile(bench, size));
  std::cout << "Collected " << counters.counters.size()
            << " hardware counters; the five largest per-second rates:\n";
  std::vector<profiler::CounterReading> sorted = counters.counters;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.per_second > b.per_second; });
  for (std::size_t i = 0; i < 5; ++i) {
    std::cout << "  " << sorted[i].name << " ("
              << profiler::to_string(sorted[i].klass) << " event): "
              << format_double(sorted[i].per_second / 1e6, 1) << " M/s\n";
  }
  return 0;
}
