// Power capping: run as fast as possible under a system power budget.
//
// The use case of Lee et al. (the paper's related work) driven by this
// paper's unified models: fit power and performance models once from the
// profiled corpus, then — for a new workload's counter profile — pick the
// fastest operating point whose *predicted* power stays under the cap, and
// validate the choice against measurement.
//
// Build & run:  ./build/examples/power_capping [cap-watts]
#include <iostream>

#include "common/str.hpp"
#include "common/table.hpp"
#include "core/optimizer.hpp"
#include "core/runner.hpp"
#include "profiler/cuda_profiler.hpp"
#include "workload/suite.hpp"

using namespace gppm;

int main(int argc, char** argv) {
  const double cap_watts = argc > 1 ? std::stod(argv[1]) : 180.0;
  const sim::GpuModel board = sim::GpuModel::GTX680;

  std::cout << "Fitting unified models for " << sim::to_string(board)
            << " (114-sample corpus)...\n";
  const core::Dataset ds = core::build_dataset(board);
  const core::UnifiedModel power =
      core::UnifiedModel::fit(ds, core::TargetKind::Power);
  const core::UnifiedModel perf =
      core::UnifiedModel::fit(ds, core::TargetKind::ExecTime);
  std::cout << "  power model adj-R^2 " << format_double(power.adjusted_r2(), 2)
            << ", perf model adj-R^2 " << format_double(perf.adjusted_r2(), 2)
            << "\n\n";

  core::MeasurementRunner runner(board);
  profiler::CudaProfiler prof;

  AsciiTable table({"workload", "chosen pair", "pred. power W", "meas. power W",
                    "meas. time s", "under cap?"});
  for (const char* name : {"lbm", "sgemm", "BlackScholes", "kmeans"}) {
    const workload::BenchmarkDef& bench = workload::find_benchmark(name);
    const sim::RunProfile profile =
        runner.prepared_profile(bench, bench.size_count - 1);
    runner.gpu().set_frequency_pair(sim::kDefaultPair);
    const profiler::ProfileResult counters = prof.collect(runner.gpu(), profile);

    sim::FrequencyPair pick;
    try {
      pick = core::fastest_pair_under_cap(power, perf, counters,
                                          Power::watts(cap_watts));
    } catch (const Error&) {
      std::cout << name << ": no configurable pair fits under "
                << format_double(cap_watts, 0) << " W\n";
      continue;
    }
    const double predicted = power.predict(counters, pick);
    const core::Measurement m = runner.measure_profile(profile, pick);
    table.add_row({name, sim::to_string(pick), format_double(predicted, 1),
                   format_double(m.avg_power.as_watts(), 1),
                   format_double(m.exec_time.as_seconds(), 3),
                   m.avg_power.as_watts() <= cap_watts * 1.1 ? "yes"
                                                             : "exceeded"});
  }
  std::cout << "Cap: " << format_double(cap_watts, 0)
            << " W (system, at the wall)\n";
  table.print(std::cout);
  std::cout << "\nNote: predictions carry the paper's ~20-30% model error; a "
               "production governor\nwould keep a guard band below the cap, "
               "as the 'under cap?' column illustrates.\n";
  return 0;
}
