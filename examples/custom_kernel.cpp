// Bring your own kernel: the downstream-user story.
//
// A user has an algorithm that is not in the benchmark suite.  They write
// it as a kernel-IR program (with its real address arithmetic), trace it to
// derive a simulator profile, characterize it across the DVFS space of a
// board, and check what the paper's fitted models would have predicted for
// it — all without touching the suite.
//
// The example kernel is a row-normalization pass over a row-major matrix:
// each thread owns one row and walks across it, so the lanes of a warp read
// addresses a full row apart — the classic uncoalesced-gather bug.
//
// Build & run:  ./build/examples/custom_kernel
#include <iostream>

#include "common/str.hpp"
#include "common/table.hpp"
#include "core/characterization.hpp"
#include "kernelir/trace.hpp"
#include "workload/suite.hpp"

using namespace gppm;

namespace {

/// Row-wise normalization of a row-major n x n float matrix, one thread
/// per row: warp lanes touch addresses a whole row apart every iteration.
ir::Program row_normalize(std::uint32_t n) {
  ir::Program p;
  p.name = "custom/row_normalize";
  p.threads_per_block = 256;
  p.blocks = n / 256;
  p.iterations = n;  // one body pass per column index

  const std::int64_t row_bytes = static_cast<std::int64_t>(n) * 4;
  ir::AddressExpr row_walk;
  row_walk.base = 1ull << 30;
  row_walk.stride_thread = row_bytes;  // thread t owns row t
  row_walk.stride_iter = 4;            // iteration walks across the row

  p.body = {
      ir::load_global(row_walk),  // A[row][col]
      ir::fma(),                  // running mean / rescale
      ir::int_op(),
      ir::store_global([&] {
        ir::AddressExpr out = row_walk;
        out.base = 2ull << 30;
        return out;
      }()),
  };
  return p;
}

}  // namespace

int main() {
  const ir::Program program = row_normalize(2048);
  const ir::TraceStats stats = ir::trace_block(program);

  std::cout << "Traced '" << program.name << "':\n"
            << "  per-thread: " << format_double(stats.flops, 0) << " FLOPs, "
            << format_double(stats.global_load_bytes, 0) << " B loaded, "
            << format_double(stats.global_store_bytes, 0) << " B stored\n"
            << "  measured coalescing " << format_double(stats.coalescing, 2)
            << " (lanes a row apart!), locality "
            << format_double(stats.locality, 2) << "\n\n";

  // Wrap the traced kernel as a run and characterize it on the GTX 680.
  sim::RunProfile run;
  run.benchmark_name = "row_normalize";
  run.kernels = {ir::derive_profile(program)};
  run.host_time = Duration::milliseconds(150.0);

  core::MeasurementRunner runner(sim::GpuModel::GTX680);
  AsciiTable table({"pair", "time s", "power W", "energy J"});
  core::Measurement def{}, best{};
  for (sim::FrequencyPair pair :
       dvfs::configurable_pairs(sim::GpuModel::GTX680)) {
    const core::Measurement m = runner.measure_profile(run, pair);
    if (pair == sim::kDefaultPair) def = m;
    if (best.exec_time.as_seconds() == 0.0 || m.energy < best.energy) best = m;
    table.add_row({sim::to_string(pair),
                   format_double(m.exec_time.as_seconds(), 3),
                   format_double(m.avg_power.as_watts(), 1),
                   format_double(m.energy.as_joules(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nBest pair " << sim::to_string(best.pair) << ": saves "
            << format_double((1.0 - best.energy / def.energy) * 100.0, 1)
            << "% energy vs (H-H) at "
            << format_double(
                   (1.0 - def.exec_time / best.exec_time) * -100.0, 1)
            << "% longer runtime.\n"
            << "Fix the coalescing (one thread per column, or a tiled transpose) and "
               "re-trace to see the\ncharacterization flip toward "
               "compute-bound behaviour.\n";
  return 0;
}
