#include "gpusim/microsim.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "gpusim/timing.hpp"
#include "workload/suite.hpp"

namespace gppm::sim {
namespace {

KernelProfile compute_kernel() {
  KernelProfile k;
  k.name = "compute";
  k.blocks = 2048;
  k.threads_per_block = 256;
  k.flops_sp_per_thread = 800.0;
  k.int_ops_per_thread = 100.0;
  k.global_load_bytes_per_thread = 2.0;
  k.locality = 0.8;
  return k;
}

KernelProfile memory_kernel() {
  KernelProfile k;
  k.name = "memory";
  k.blocks = 2048;
  k.threads_per_block = 256;
  k.flops_sp_per_thread = 4.0;
  k.global_load_bytes_per_thread = 64.0;
  k.global_store_bytes_per_thread = 16.0;
  k.locality = 0.1;
  return k;
}

class MicrosimOnEveryBoard : public ::testing::TestWithParam<GpuModel> {
 protected:
  const DeviceSpec& spec() const { return device_spec(GetParam()); }
};

TEST_P(MicrosimOnEveryBoard, ComputeBoundScalesWithCoreClock) {
  const auto hh = microsim_kernel(spec(), compute_kernel(), kDefaultPair);
  const auto mh = microsim_kernel(spec(), compute_kernel(),
                                  {ClockLevel::Medium, ClockLevel::High});
  const double freq_ratio = spec().core_clock.frequency_ratio(ClockLevel::Medium);
  EXPECT_NEAR(mh.kernel_time / hh.kernel_time, 1.0 / freq_ratio, 0.2 / freq_ratio);
}

TEST_P(MicrosimOnEveryBoard, MemoryBoundScalesWithMemoryClock) {
  const auto hh = microsim_kernel(spec(), memory_kernel(), kDefaultPair);
  const auto hm = microsim_kernel(spec(), memory_kernel(),
                                  {ClockLevel::High, ClockLevel::Medium});
  const double freq_ratio = spec().mem_clock.frequency_ratio(ClockLevel::Medium);
  EXPECT_GT(hm.kernel_time / hh.kernel_time, 0.5 / freq_ratio);
}

TEST_P(MicrosimOnEveryBoard, ComputeBoundInsensitiveToMemoryClock) {
  const auto hh = microsim_kernel(spec(), compute_kernel(), kDefaultPair);
  const auto hl = microsim_kernel(spec(), compute_kernel(),
                                  {ClockLevel::High, ClockLevel::Low});
  EXPECT_LT(hl.kernel_time / hh.kernel_time, 1.6);
}

TEST_P(MicrosimOnEveryBoard, HighOccupancyHidesLatencyBetterThanLow) {
  KernelProfile k = memory_kernel();
  k.occupancy = 1.0;
  const auto high = microsim_kernel(spec(), k, kDefaultPair);
  k.occupancy = 0.1;
  const auto low = microsim_kernel(spec(), k, kDefaultPair);
  // Per-wave latency hiding is worse with few warps: the low-occupancy run
  // must take longer in total (same work, fewer overlapping warps).
  EXPECT_GT(low.kernel_time.as_seconds(), high.kernel_time.as_seconds());
}

TEST_P(MicrosimOnEveryBoard, IssueUtilizationBounded) {
  for (const KernelProfile& k : {compute_kernel(), memory_kernel()}) {
    const auto r = microsim_kernel(spec(), k, kDefaultPair);
    EXPECT_GT(r.issue_utilization, 0.0);
    EXPECT_LE(r.issue_utilization, 1.0 + 1e-9);
    EXPECT_GE(r.stall_fraction, 0.0);
  }
}

TEST_P(MicrosimOnEveryBoard, ComputeKernelSaturatesIssuePort) {
  const auto r = microsim_kernel(spec(), compute_kernel(), kDefaultPair);
  EXPECT_GT(r.issue_utilization, 0.8);
}

TEST_P(MicrosimOnEveryBoard, LaunchesScaleTotalTime) {
  KernelProfile k = compute_kernel();
  const auto one = microsim_kernel(spec(), k, kDefaultPair);
  k.launches = 7;
  const auto seven = microsim_kernel(spec(), k, kDefaultPair);
  EXPECT_NEAR(seven.total_time / one.total_time, 7.0, 1e-9);
}

TEST_P(MicrosimOnEveryBoard, AgreesWithAnalyticalModelOnSuite) {
  // Cross-validation: over real benchmark kernels the two models must land
  // within a factor of two of each other and mostly much closer.
  int within_2x = 0, total = 0;
  for (const char* name : {"backprop", "streamcluster", "sgemm", "stencil",
                           "hotspot", "lbm", "mri-q"}) {
    const sim::RunProfile profile =
        workload::find_benchmark(name).max_profile();
    for (const KernelProfile& k : profile.kernels) {
      const double analytic =
          compute_kernel_timing(spec(), k, kDefaultPair).kernel_time.as_seconds();
      const double micro =
          microsim_kernel(spec(), k, kDefaultPair).kernel_time.as_seconds();
      const double ratio = micro / analytic;
      ++total;
      if (ratio > 0.5 && ratio < 2.0) ++within_2x;
    }
  }
  EXPECT_GE(within_2x * 10, total * 7) << within_2x << "/" << total;
}

INSTANTIATE_TEST_SUITE_P(AllBoards, MicrosimOnEveryBoard,
                         ::testing::ValuesIn(kAllGpus),
                         [](const ::testing::TestParamInfo<GpuModel>& info) {
                           std::string n = to_string(info.param);
                           n.erase(std::remove(n.begin(), n.end(), ' '), n.end());
                           return n;
                         });

TEST(Microsim, DeterministicAndPure) {
  const DeviceSpec& spec = device_spec(GpuModel::GTX480);
  const auto a = microsim_kernel(spec, memory_kernel(), kDefaultPair);
  const auto b = microsim_kernel(spec, memory_kernel(), kDefaultPair);
  EXPECT_DOUBLE_EQ(a.kernel_time.as_seconds(), b.kernel_time.as_seconds());
}

TEST(Microsim, RejectsEmptyLaunch) {
  KernelProfile k = compute_kernel();
  k.blocks = 0;
  EXPECT_THROW(microsim_kernel(device_spec(GpuModel::GTX480), k, kDefaultPair),
               gppm::Error);
}

TEST(Microsim, WavesReflectGridSize) {
  const DeviceSpec& spec = device_spec(GpuModel::GTX680);
  KernelProfile k = compute_kernel();
  const auto small = microsim_kernel(spec, k, kDefaultPair);
  k.blocks *= 8;
  const auto large = microsim_kernel(spec, k, kDefaultPair);
  EXPECT_NEAR(large.waves / small.waves, 8.0, 0.01);
}

}  // namespace
}  // namespace gppm::sim
