#include "gpusim/system.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace gppm::sim {
namespace {

TEST(System, WallPowerIncludesPsuLoss) {
  const HostSpec host = default_host();
  const Power wall = wall_power(host, Power::watts(176.0));
  EXPECT_NEAR(wall.as_watts(), 176.0 / host.psu_efficiency, 1e-9);
  EXPECT_GT(wall.as_watts(), 176.0);
}

TEST(System, DefaultHostStatesAreOrdered) {
  const HostSpec host = default_host();
  EXPECT_LT(host.idle.as_watts(), host.host_active.as_watts());
  EXPECT_LE(host.idle.as_watts(), host.gpu_wait.as_watts());
  EXPECT_LT(host.gpu_wait.as_watts(), host.host_active.as_watts());
}

TEST(System, RejectsBadPsuEfficiency) {
  HostSpec host;
  host.psu_efficiency = 0.0;
  EXPECT_THROW(wall_power(host, Power::watts(100)), gppm::Error);
  host.psu_efficiency = 1.5;
  EXPECT_THROW(wall_power(host, Power::watts(100)), gppm::Error);
}

TEST(System, PerfectPsuPassesThrough) {
  HostSpec host;
  host.psu_efficiency = 1.0;
  EXPECT_DOUBLE_EQ(wall_power(host, Power::watts(123)).as_watts(), 123.0);
}

}  // namespace
}  // namespace gppm::sim
