#include "gpusim/timing.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace gppm::sim {
namespace {

KernelProfile compute_kernel() {
  KernelProfile k;
  k.name = "compute";
  k.blocks = 2048;
  k.threads_per_block = 256;
  k.flops_sp_per_thread = 800.0;
  k.int_ops_per_thread = 100.0;
  k.global_load_bytes_per_thread = 2.0;
  k.locality = 0.8;
  return k;
}

KernelProfile memory_kernel() {
  KernelProfile k;
  k.name = "memory";
  k.blocks = 2048;
  k.threads_per_block = 256;
  k.flops_sp_per_thread = 4.0;
  k.global_load_bytes_per_thread = 64.0;
  k.global_store_bytes_per_thread = 16.0;
  k.locality = 0.1;
  return k;
}

FrequencyPair pair(ClockLevel c, ClockLevel m) { return {c, m}; }

class TimingOnEveryBoard : public ::testing::TestWithParam<GpuModel> {
 protected:
  const DeviceSpec& spec() const { return device_spec(GetParam()); }
};

TEST_P(TimingOnEveryBoard, ComputeBoundScalesWithCoreClock) {
  const KernelProfile k = compute_kernel();
  const auto th = compute_kernel_timing(spec(), k, kDefaultPair);
  const auto tm = compute_kernel_timing(
      spec(), k, pair(ClockLevel::Medium, ClockLevel::High));
  const double freq_ratio = spec().core_clock.frequency_ratio(ClockLevel::Medium);
  // Kernel time should grow close to 1/freq_ratio.
  EXPECT_NEAR(tm.kernel_time / th.kernel_time, 1.0 / freq_ratio, 0.15);
}

TEST_P(TimingOnEveryBoard, ComputeBoundInsensitiveToMemoryClock) {
  const KernelProfile k = compute_kernel();
  const auto th = compute_kernel_timing(spec(), k, kDefaultPair);
  const auto tl = compute_kernel_timing(
      spec(), k, pair(ClockLevel::High, ClockLevel::Low));
  EXPECT_LT(tl.kernel_time / th.kernel_time, 1.30);
}

TEST_P(TimingOnEveryBoard, MemoryBoundScalesWithMemoryClock) {
  const KernelProfile k = memory_kernel();
  const auto th = compute_kernel_timing(spec(), k, kDefaultPair);
  const auto tm = compute_kernel_timing(
      spec(), k, pair(ClockLevel::High, ClockLevel::Medium));
  const double freq_ratio = spec().mem_clock.frequency_ratio(ClockLevel::Medium);
  EXPECT_GT(tm.kernel_time / th.kernel_time, 0.6 / freq_ratio);
}

TEST_P(TimingOnEveryBoard, MemoryBoundGainsFromCoreClockAtMemHigh) {
  // The Fig. 2 shape: at Mem-H, raising the core clock helps even
  // memory-bound kernels (request-issue limitation).
  const KernelProfile k = memory_kernel();
  const auto t_low = compute_kernel_timing(
      spec(), k, pair(ClockLevel::Low, ClockLevel::High));
  const auto t_high = compute_kernel_timing(spec(), k, kDefaultPair);
  EXPECT_GT(t_low.kernel_time.as_seconds(), t_high.kernel_time.as_seconds());
}

TEST_P(TimingOnEveryBoard, UtilizationsAreFractions) {
  for (const KernelProfile& k : {compute_kernel(), memory_kernel()}) {
    const auto t = compute_kernel_timing(spec(), k, kDefaultPair);
    EXPECT_GE(t.core_utilization, 0.0);
    EXPECT_LE(t.core_utilization, 1.0);
    EXPECT_GE(t.mem_utilization, 0.0);
    EXPECT_LE(t.mem_utilization, 1.0);
  }
}

TEST_P(TimingOnEveryBoard, BottleneckUtilizationIsHigh) {
  const auto tc = compute_kernel_timing(spec(), compute_kernel(), kDefaultPair);
  EXPECT_GT(tc.core_utilization, 0.9);
  const auto tm = compute_kernel_timing(spec(), memory_kernel(), kDefaultPair);
  EXPECT_GT(tm.mem_utilization, 0.9);
}

TEST_P(TimingOnEveryBoard, LaunchesMultiplyTotalTime) {
  KernelProfile k = compute_kernel();
  const auto t1 = compute_kernel_timing(spec(), k, kDefaultPair);
  k.launches = 10;
  const auto t10 = compute_kernel_timing(spec(), k, kDefaultPair);
  EXPECT_NEAR(t10.total_time / t1.total_time, 10.0, 1e-9);
}

TEST_P(TimingOnEveryBoard, MoreBlocksMoreTime) {
  KernelProfile k = memory_kernel();
  const auto t1 = compute_kernel_timing(spec(), k, kDefaultPair);
  k.blocks *= 2;
  const auto t2 = compute_kernel_timing(spec(), k, kDefaultPair);
  EXPECT_NEAR(t2.kernel_time / t1.kernel_time, 2.0, 0.01);
}

TEST_P(TimingOnEveryBoard, PoorCoalescingInflatesDramTraffic) {
  KernelProfile k = memory_kernel();
  k.coalescing = 1.0;
  const double full = kernel_dram_bytes(spec(), k);
  k.coalescing = 0.25;
  EXPECT_NEAR(kernel_dram_bytes(spec(), k) / full, 4.0, 1e-9);
}

TEST_P(TimingOnEveryBoard, DivergenceSlowsCompute) {
  KernelProfile k = compute_kernel();
  const auto base = compute_kernel_timing(spec(), k, kDefaultPair);
  k.divergence = 2.0;
  const auto div = compute_kernel_timing(spec(), k, kDefaultPair);
  EXPECT_NEAR(div.compute_time / base.compute_time, 2.0, 1e-9);
}

TEST_P(TimingOnEveryBoard, LowOccupancyHurtsBothSides) {
  KernelProfile k = compute_kernel();
  k.occupancy = 0.2;
  const auto low = compute_kernel_timing(spec(), k, kDefaultPair);
  k.occupancy = 1.0;
  const auto high = compute_kernel_timing(spec(), k, kDefaultPair);
  EXPECT_GT(low.compute_time.as_seconds(), high.compute_time.as_seconds());
}

INSTANTIATE_TEST_SUITE_P(AllBoards, TimingOnEveryBoard,
                         ::testing::ValuesIn(kAllGpus),
                         [](const ::testing::TestParamInfo<GpuModel>& info) {
                           std::string n = to_string(info.param);
                           n.erase(std::remove(n.begin(), n.end(), ' '), n.end());
                           return n;
                         });

TEST(Timing, CacheReducesTrafficOnlyWithHierarchy) {
  KernelProfile k = memory_kernel();
  k.locality = 0.8;
  const double tesla = kernel_dram_bytes(device_spec(GpuModel::GTX285), k);
  const double kepler = kernel_dram_bytes(device_spec(GpuModel::GTX680), k);
  EXPECT_LT(kepler, tesla);
}

TEST(Timing, OverlapReducesCombinedTime) {
  KernelProfile k = memory_kernel();
  k.flops_sp_per_thread = 100.0;  // give it a real compute side
  k.overlap = 0.0;
  const auto serial =
      compute_kernel_timing(device_spec(GpuModel::GTX480), k, kDefaultPair);
  k.overlap = 1.0;
  const auto overlapped =
      compute_kernel_timing(device_spec(GpuModel::GTX480), k, kDefaultPair);
  EXPECT_LT(overlapped.kernel_time.as_seconds(), serial.kernel_time.as_seconds());
  EXPECT_NEAR(serial.kernel_time.as_seconds(),
              serial.compute_time.as_seconds() + serial.memory_time.as_seconds(),
              1e-12);
}

TEST(Timing, ValidatesKernelProfiles) {
  const DeviceSpec& spec = device_spec(GpuModel::GTX480);
  KernelProfile k = compute_kernel();
  k.coalescing = 0.0;
  EXPECT_THROW(compute_kernel_timing(spec, k, kDefaultPair), gppm::Error);
  k = compute_kernel();
  k.locality = 1.0;
  EXPECT_THROW(compute_kernel_timing(spec, k, kDefaultPair), gppm::Error);
  k = compute_kernel();
  k.divergence = 0.5;
  EXPECT_THROW(compute_kernel_timing(spec, k, kDefaultPair), gppm::Error);
  k = compute_kernel();
  k.blocks = 0;
  EXPECT_THROW(compute_kernel_timing(spec, k, kDefaultPair), gppm::Error);
  k = compute_kernel();
  k.launches = 0;
  EXPECT_THROW(compute_kernel_timing(spec, k, kDefaultPair), gppm::Error);
  k = compute_kernel();
  k.occupancy = 0.0;
  EXPECT_THROW(compute_kernel_timing(spec, k, kDefaultPair), gppm::Error);
  k = compute_kernel();
  k.overlap = 1.5;
  EXPECT_THROW(compute_kernel_timing(spec, k, kDefaultPair), gppm::Error);
}

TEST(Timing, RejectsTrafficAgainstZeroBandwidthCeiling) {
  // Regression for the silent-clamp bug: a device whose bandwidth ceiling
  // collapses to zero used to grant DRAM-moving kernels infinite bandwidth
  // (t_mem clamped to 0).  The timing model must reject the profile — its
  // implied bandwidth demand exceeds any finite ceiling — not mask it.
  DeviceSpec spec = device_spec(GpuModel::GTX480);
  spec.timing.dram_efficiency = 0.0;
  EXPECT_EQ(device_bandwidth_ceiling(spec, kDefaultPair), 0.0);
  EXPECT_THROW(compute_kernel_timing(spec, memory_kernel(), kDefaultPair),
               gppm::Error);

  // A kernel with no DRAM traffic is still computable on the same device.
  KernelProfile pure = compute_kernel();
  pure.global_load_bytes_per_thread = 0.0;
  pure.global_store_bytes_per_thread = 0.0;
  pure.locality = 0.0;
  const KernelTiming t = compute_kernel_timing(spec, pure, kDefaultPair);
  EXPECT_EQ(t.memory_time.as_seconds(), 0.0);
  EXPECT_GT(t.kernel_time.as_seconds(), 0.0);
}

TEST(Timing, DoublePrecisionCostlier) {
  const DeviceSpec& spec = device_spec(GpuModel::GTX680);
  KernelProfile k = compute_kernel();
  const double sp = thread_issue_cycles(spec, k);
  k.flops_sp_per_thread = 0.0;
  k.flops_dp_per_thread = 800.0;
  const double dp = thread_issue_cycles(spec, k);
  EXPECT_GT(dp, sp * 5.0);  // GK104: 1/24 DP rate
}

}  // namespace
}  // namespace gppm::sim
