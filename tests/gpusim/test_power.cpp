#include "gpusim/power.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace gppm::sim {
namespace {

class PowerOnEveryBoard : public ::testing::TestWithParam<GpuModel> {
 protected:
  const DeviceSpec& spec() const { return device_spec(GetParam()); }
};

TEST_P(PowerOnEveryBoard, FullLoadNearCalibrationBudget) {
  const PowerCalibration& cal = spec().power;
  const double budget = cal.static_power.as_watts() +
                        cal.core_dynamic.as_watts() +
                        cal.mem_dynamic.as_watts();
  const Power p = gpu_power(spec(), kDefaultPair, 1.0, 1.0);
  EXPECT_NEAR(p.as_watts(), budget, 1e-9);
}

TEST_P(PowerOnEveryBoard, IdleBelowFullLoad) {
  const Power idle = gpu_idle_power(spec(), kDefaultPair);
  const Power full = gpu_power(spec(), kDefaultPair, 1.0, 1.0);
  EXPECT_LT(idle.as_watts(), full.as_watts());
  EXPECT_GT(idle.as_watts(), 0.0);
}

TEST_P(PowerOnEveryBoard, MonotonicInUtilization) {
  double prev = 0.0;
  for (double u : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double p = gpu_power(spec(), kDefaultPair, u, u).as_watts();
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST_P(PowerOnEveryBoard, LowerClocksLowerPower) {
  const double hh = gpu_power(spec(), kDefaultPair, 0.8, 0.8).as_watts();
  const double ml =
      gpu_power(spec(), {ClockLevel::Medium, ClockLevel::Low}, 0.8, 0.8)
          .as_watts();
  EXPECT_LT(ml, hh);
}

TEST_P(PowerOnEveryBoard, MemoryClockOnlyAffectsMemoryAndNothingElse) {
  const auto hh = gpu_power_breakdown(spec(), kDefaultPair, 0.5, 0.5);
  const auto hl = gpu_power_breakdown(
      spec(), {ClockLevel::High, ClockLevel::Low}, 0.5, 0.5);
  EXPECT_DOUBLE_EQ(hh.static_power.as_watts(), hl.static_power.as_watts());
  EXPECT_DOUBLE_EQ(hh.core_dynamic.as_watts(), hl.core_dynamic.as_watts());
  EXPECT_LT(hl.mem_dynamic.as_watts(), hh.mem_dynamic.as_watts());
}

TEST_P(PowerOnEveryBoard, BreakdownSumsToTotal) {
  const auto b = gpu_power_breakdown(spec(), kDefaultPair, 0.7, 0.3);
  EXPECT_NEAR(b.total.as_watts(),
              b.static_power.as_watts() + b.core_dynamic.as_watts() +
                  b.mem_dynamic.as_watts(),
              1e-9);
}

TEST_P(PowerOnEveryBoard, RejectsOutOfRangeUtilization) {
  EXPECT_THROW(gpu_power(spec(), kDefaultPair, -0.1, 0.5), gppm::Error);
  EXPECT_THROW(gpu_power(spec(), kDefaultPair, 0.5, 1.1), gppm::Error);
}

INSTANTIATE_TEST_SUITE_P(AllBoards, PowerOnEveryBoard,
                         ::testing::ValuesIn(kAllGpus),
                         [](const ::testing::TestParamInfo<GpuModel>& info) {
                           std::string n = to_string(info.param);
                           n.erase(std::remove(n.begin(), n.end(), ' '), n.end());
                           return n;
                         });

TEST(Power, TeslaCoreScalingIsWeakest) {
  // The ungated fraction makes the GTX 285's core power respond least to a
  // core clock drop — the root of the paper's near-zero Tesla headroom.
  auto drop = [](GpuModel m) {
    const DeviceSpec& spec = device_spec(m);
    const auto hh = gpu_power_breakdown(spec, kDefaultPair, 0.9, 0.1);
    const auto mh = gpu_power_breakdown(
        spec, {ClockLevel::Medium, ClockLevel::High}, 0.9, 0.1);
    return mh.core_dynamic.as_watts() / hh.core_dynamic.as_watts();
  };
  EXPECT_GT(drop(GpuModel::GTX285), drop(GpuModel::GTX460));
  EXPECT_GT(drop(GpuModel::GTX285), drop(GpuModel::GTX680));
}

TEST(Power, KeplerMediumStepCutsCorePowerDeeply) {
  // The GTX 680 (M) step runs near the low-voltage rail: the core V^2 f
  // factor drops below half, the mechanism behind the 75% best case.
  const DeviceSpec& spec = device_spec(GpuModel::GTX680);
  const double vf = spec.core_clock.voltage_sq_ratio(ClockLevel::Medium) *
                    spec.core_clock.frequency_ratio(ClockLevel::Medium);
  EXPECT_LT(vf, 0.5);
}

TEST(Power, MemoryBaselineDominatesOnGddr5Boards) {
  // Fermi/Kepler memory interfaces burn most of their power regardless of
  // utilization; Tesla's GDDR3 interface does not.
  EXPECT_GT(device_spec(GpuModel::GTX460).power.mem_baseline, 0.7);
  EXPECT_GT(device_spec(GpuModel::GTX480).power.mem_baseline, 0.7);
  EXPECT_LT(device_spec(GpuModel::GTX285).power.mem_baseline, 0.7);
}

}  // namespace
}  // namespace gppm::sim
