#include "gpusim/arch.hpp"

#include <gtest/gtest.h>

namespace gppm::sim {
namespace {

TEST(Arch, ArchitectureNames) {
  EXPECT_EQ(to_string(Architecture::Tesla), "Tesla");
  EXPECT_EQ(to_string(Architecture::Fermi), "Fermi");
  EXPECT_EQ(to_string(Architecture::Kepler), "Kepler");
}

TEST(Arch, GpuNamesMatchPaper) {
  EXPECT_EQ(to_string(GpuModel::GTX285), "GTX 285");
  EXPECT_EQ(to_string(GpuModel::GTX460), "GTX 460");
  EXPECT_EQ(to_string(GpuModel::GTX480), "GTX 480");
  EXPECT_EQ(to_string(GpuModel::GTX680), "GTX 680");
}

TEST(Arch, PairNotationMatchesPaper) {
  EXPECT_EQ(to_string(FrequencyPair{ClockLevel::High, ClockLevel::Low}),
            "(H-L)");
  EXPECT_EQ(to_string(kDefaultPair), "(H-H)");
}

TEST(Arch, LevelIndices) {
  EXPECT_EQ(level_index(ClockLevel::Low), 0u);
  EXPECT_EQ(level_index(ClockLevel::Medium), 1u);
  EXPECT_EQ(level_index(ClockLevel::High), 2u);
}

TEST(Arch, PairEquality) {
  const FrequencyPair a{ClockLevel::High, ClockLevel::Medium};
  const FrequencyPair b{ClockLevel::High, ClockLevel::Medium};
  const FrequencyPair c{ClockLevel::Medium, ClockLevel::High};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(Arch, AllGpusListsFourBoards) {
  EXPECT_EQ(kAllGpus.size(), 4u);
}

}  // namespace
}  // namespace gppm::sim
