// Validates the device registry against paper TABLE I.
#include "gpusim/device_spec.hpp"

#include <gtest/gtest.h>

namespace gppm::sim {
namespace {

struct TableOneRow {
  GpuModel model;
  Architecture arch;
  int cores;
  double gflops;
  double bandwidth;
  double tdp;
  double core_freqs[3];  // L, M, H
  double mem_freqs[3];
};

const TableOneRow kTableOne[] = {
    {GpuModel::GTX285, Architecture::Tesla, 240, 933.0, 159.0, 183.0,
     {600, 800, 1296}, {100, 300, 1284}},
    {GpuModel::GTX460, Architecture::Fermi, 336, 907.0, 115.2, 160.0,
     {100, 810, 1350}, {135, 324, 1800}},
    {GpuModel::GTX480, Architecture::Fermi, 480, 1350.0, 177.0, 250.0,
     {100, 810, 1400}, {135, 324, 1848}},
    {GpuModel::GTX680, Architecture::Kepler, 1536, 3090.0, 192.2, 195.0,
     {648, 1080, 1411}, {324, 810, 3004}},
};

class DeviceSpecTableOne : public ::testing::TestWithParam<TableOneRow> {};

TEST_P(DeviceSpecTableOne, MatchesPaperTableOne) {
  const TableOneRow& row = GetParam();
  const DeviceSpec& spec = device_spec(row.model);
  EXPECT_EQ(spec.architecture, row.arch);
  EXPECT_EQ(spec.cuda_cores, row.cores);
  EXPECT_EQ(spec.sm_count * spec.cores_per_sm, row.cores);
  EXPECT_DOUBLE_EQ(spec.peak_gflops, row.gflops);
  EXPECT_DOUBLE_EQ(spec.mem_bandwidth_gbps, row.bandwidth);
  EXPECT_DOUBLE_EQ(spec.tdp.as_watts(), row.tdp);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(spec.core_clock.steps[i].frequency.as_mhz(),
                     row.core_freqs[i]);
    EXPECT_DOUBLE_EQ(spec.mem_clock.steps[i].frequency.as_mhz(),
                     row.mem_freqs[i]);
  }
}

TEST_P(DeviceSpecTableOne, VoltagesIncreaseWithFrequency) {
  const DeviceSpec& spec = device_spec(GetParam().model);
  for (const ClockDomainSpec* dom : {&spec.core_clock, &spec.mem_clock}) {
    EXPECT_LE(dom->steps[0].voltage.as_volts(), dom->steps[1].voltage.as_volts());
    EXPECT_LE(dom->steps[1].voltage.as_volts(), dom->steps[2].voltage.as_volts());
  }
}

TEST_P(DeviceSpecTableOne, CalibrationIsPhysical) {
  const DeviceSpec& spec = device_spec(GetParam().model);
  const PowerCalibration& p = spec.power;
  EXPECT_GT(p.static_power.as_watts(), 0.0);
  EXPECT_GT(p.core_dynamic.as_watts(), 0.0);
  EXPECT_GT(p.mem_dynamic.as_watts(), 0.0);
  EXPECT_GE(p.core_baseline, 0.0);
  EXPECT_LE(p.core_baseline, 1.0);
  EXPECT_GE(p.mem_baseline, 0.0);
  EXPECT_LE(p.mem_baseline, 1.0);
  EXPECT_GE(p.core_ungated, 0.0);
  EXPECT_LT(p.core_ungated, 1.0);
  EXPECT_GT(spec.timing.issue_efficiency, 0.0);
  EXPECT_LE(spec.timing.issue_efficiency, 1.0);
  EXPECT_GT(spec.timing.dram_efficiency, 0.0);
  EXPECT_LE(spec.timing.dram_efficiency, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBoards, DeviceSpecTableOne, ::testing::ValuesIn(kTableOne),
    [](const ::testing::TestParamInfo<TableOneRow>& info) {
      std::string n = to_string(info.param.model);
      n.erase(std::remove(n.begin(), n.end(), ' '), n.end());
      return n;
    });

TEST(DeviceSpec, CounterCountsMatchPaper) {
  EXPECT_EQ(device_spec(GpuModel::GTX285).performance_counter_count, 32);
  EXPECT_EQ(device_spec(GpuModel::GTX460).performance_counter_count, 74);
  EXPECT_EQ(device_spec(GpuModel::GTX480).performance_counter_count, 74);
  EXPECT_EQ(device_spec(GpuModel::GTX680).performance_counter_count, 108);
}

TEST(DeviceSpec, CacheHierarchyPresenceByGeneration) {
  EXPECT_FALSE(device_spec(GpuModel::GTX285).has_cache_hierarchy);
  EXPECT_TRUE(device_spec(GpuModel::GTX460).has_cache_hierarchy);
  EXPECT_TRUE(device_spec(GpuModel::GTX480).has_cache_hierarchy);
  EXPECT_TRUE(device_spec(GpuModel::GTX680).has_cache_hierarchy);
}

TEST(DeviceSpec, TeslaCacheEffectivenessIsTextureOnly) {
  EXPECT_LT(device_spec(GpuModel::GTX285).timing.cache_effectiveness, 0.2);
  EXPECT_GT(device_spec(GpuModel::GTX480).timing.cache_effectiveness, 0.4);
}

TEST(DeviceSpec, UnpredictabilityDecreasesWithGeneration) {
  // The error-ordering mechanism: Tesla is the least predictable board.
  EXPECT_GT(device_spec(GpuModel::GTX285).timing.unmodeled_sigma,
            device_spec(GpuModel::GTX460).timing.unmodeled_sigma);
  EXPECT_GT(device_spec(GpuModel::GTX460).timing.unmodeled_sigma,
            device_spec(GpuModel::GTX680).timing.unmodeled_sigma);
}

TEST(ClockDomainSpec, RatiosRelativeToHigh) {
  const DeviceSpec& spec = device_spec(GpuModel::GTX285);
  EXPECT_DOUBLE_EQ(spec.core_clock.frequency_ratio(ClockLevel::High), 1.0);
  EXPECT_NEAR(spec.core_clock.frequency_ratio(ClockLevel::Low), 600.0 / 1296.0,
              1e-12);
  EXPECT_DOUBLE_EQ(spec.core_clock.voltage_sq_ratio(ClockLevel::High), 1.0);
  EXPECT_LT(spec.core_clock.voltage_sq_ratio(ClockLevel::Low), 1.0);
}

}  // namespace
}  // namespace gppm::sim
