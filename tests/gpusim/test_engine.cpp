#include "gpusim/engine.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "gpusim/power.hpp"

namespace gppm::sim {
namespace {

KernelProfile test_kernel(const std::string& name = "k") {
  KernelProfile k;
  k.name = name;
  k.blocks = 1024;
  k.threads_per_block = 256;
  k.flops_sp_per_thread = 200.0;
  k.int_ops_per_thread = 50.0;
  k.shared_ops_per_thread = 10.0;
  k.global_load_bytes_per_thread = 16.0;
  k.global_store_bytes_per_thread = 4.0;
  k.locality = 0.4;
  k.divergence = 1.2;
  k.bank_conflict = 1.1;
  return k;
}

RunProfile test_run() {
  RunProfile run;
  run.benchmark_name = "testbench";
  run.kernels = {test_kernel("k1"), test_kernel("k2")};
  run.host_time = Duration::milliseconds(100);
  return run;
}

TEST(Engine, DeterministicAcrossInstances) {
  Gpu a(GpuModel::GTX480, 42), b(GpuModel::GTX480, 42);
  const auto ra = a.run(test_run());
  const auto rb = b.run(test_run());
  EXPECT_DOUBLE_EQ(ra.total_time.as_seconds(), rb.total_time.as_seconds());
  EXPECT_DOUBLE_EQ(ra.kernels[0].gpu_power.as_watts(),
                   rb.kernels[0].gpu_power.as_watts());
}

TEST(Engine, CallOrderDoesNotMatter) {
  Gpu a(GpuModel::GTX480, 42);
  const auto first = a.launch(test_kernel("other"));
  const auto target_after = a.launch(test_kernel("target"));
  Gpu b(GpuModel::GTX480, 42);
  const auto target_fresh = b.launch(test_kernel("target"));
  (void)first;
  EXPECT_DOUBLE_EQ(target_after.timing.total_time.as_seconds(),
                   target_fresh.timing.total_time.as_seconds());
}

TEST(Engine, SeedChangesUnmodeledBehaviour) {
  Gpu a(GpuModel::GTX285, 1), b(GpuModel::GTX285, 2);
  const auto ra = a.launch(test_kernel());
  const auto rb = b.launch(test_kernel());
  EXPECT_NE(ra.timing.total_time.as_seconds(), rb.timing.total_time.as_seconds());
}

TEST(Engine, FrequencyPairPinning) {
  Gpu gpu(GpuModel::GTX680);
  EXPECT_EQ(gpu.frequency_pair(), kDefaultPair);
  const FrequencyPair ml{ClockLevel::Medium, ClockLevel::Low};
  gpu.set_frequency_pair(ml);
  EXPECT_EQ(gpu.frequency_pair(), ml);
}

TEST(Engine, TimelineDurationsSumToTotalTime) {
  Gpu gpu(GpuModel::GTX460);
  const RunExecution exec = gpu.run(test_run());
  double sum = 0;
  for (const PowerSegment& seg : exec.timeline) sum += seg.duration.as_seconds();
  EXPECT_NEAR(sum, exec.total_time.as_seconds(), 1e-9);
}

TEST(Engine, TimelineStructureHostKernelHost) {
  Gpu gpu(GpuModel::GTX460);
  const RunExecution exec = gpu.run(test_run());
  ASSERT_EQ(exec.timeline.size(), 4u);  // host, k1, k2, host
  EXPECT_EQ(exec.timeline.front().kind, SegmentKind::HostCompute);
  EXPECT_EQ(exec.timeline[1].kind, SegmentKind::GpuKernel);
  EXPECT_EQ(exec.timeline.back().kind, SegmentKind::HostCompute);
}

TEST(Engine, HostSegmentsUseIdleGpuPower) {
  Gpu gpu(GpuModel::GTX480);
  const RunExecution exec = gpu.run(test_run());
  const Power idle = gpu_idle_power(gpu.spec(), gpu.frequency_pair());
  EXPECT_DOUBLE_EQ(exec.timeline.front().gpu_power.as_watts(), idle.as_watts());
  EXPECT_GT(exec.timeline[1].gpu_power.as_watts(), idle.as_watts());
}

TEST(Engine, EventsAggregateAcrossKernels) {
  Gpu gpu(GpuModel::GTX480);
  const RunExecution exec = gpu.run(test_run());
  double sum = 0;
  for (const auto& k : exec.kernels) sum += k.events.insts_executed;
  EXPECT_NEAR(exec.events.insts_executed, sum, 1e-6);
}

TEST(Engine, RejectsEmptyRun) {
  Gpu gpu(GpuModel::GTX480);
  RunProfile empty;
  empty.benchmark_name = "empty";
  EXPECT_THROW(gpu.run(empty), gppm::Error);
}

TEST(Engine, UnmodeledFactorStableAcrossPairs) {
  // The factor models workload character: the same kernel must get the same
  // factor at every operating point, so cross-pair ratios stay physical.
  Gpu gpu(GpuModel::GTX285, 42);
  const KernelProfile k = test_kernel("stable");
  gpu.set_frequency_pair(kDefaultPair);
  const auto hh = gpu.launch(k);
  gpu.set_frequency_pair({ClockLevel::Medium, ClockLevel::High});
  const auto mh = gpu.launch(k);
  // Compute-leaning kernel: the time ratio must track the core clock ratio
  // closely, which only holds if the noise factor cancelled.
  const double ratio = mh.timing.kernel_time / hh.timing.kernel_time;
  const double freq = 1296.0 / 800.0;
  EXPECT_NEAR(ratio, freq, 0.25);
}

TEST(EngineEvents, CountsScaleWithThreads) {
  const DeviceSpec& spec = device_spec(GpuModel::GTX480);
  KernelProfile k = test_kernel();
  const auto t = compute_kernel_timing(spec, k, kDefaultPair);
  const HardwareEvents e1 = synthesize_events(spec, k, t);
  k.blocks *= 2;
  const auto t2 = compute_kernel_timing(spec, k, kDefaultPair);
  const HardwareEvents e2 = synthesize_events(spec, k, t2);
  EXPECT_NEAR(e2.flops_sp / e1.flops_sp, 2.0, 1e-9);
  EXPECT_NEAR(e2.gld_transactions / e1.gld_transactions, 2.0, 1e-9);
}

TEST(EngineEvents, TeslaHasNoCacheEvents) {
  const DeviceSpec& spec = device_spec(GpuModel::GTX285);
  const KernelProfile k = test_kernel();
  const auto t = compute_kernel_timing(spec, k, kDefaultPair);
  const HardwareEvents e = synthesize_events(spec, k, t);
  EXPECT_EQ(e.l1_hits, 0.0);
  EXPECT_EQ(e.l2_reads, 0.0);
}

TEST(EngineEvents, IssuedAtLeastExecuted) {
  const DeviceSpec& spec = device_spec(GpuModel::GTX680);
  const KernelProfile k = test_kernel();
  const auto t = compute_kernel_timing(spec, k, kDefaultPair);
  const HardwareEvents e = synthesize_events(spec, k, t);
  EXPECT_GE(e.insts_issued, e.insts_executed);
}

TEST(EngineEvents, DramTrafficConsistentWithTiming) {
  const DeviceSpec& spec = device_spec(GpuModel::GTX680);
  const KernelProfile k = test_kernel();
  const auto t = compute_kernel_timing(spec, k, kDefaultPair);
  const HardwareEvents e = synthesize_events(spec, k, t);
  EXPECT_NEAR((e.dram_reads + e.dram_writes) * 32.0, t.dram_bytes, 1.0);
}

TEST(EngineEvents, DivergentBranchesTrackDivergence) {
  const DeviceSpec& spec = device_spec(GpuModel::GTX480);
  KernelProfile k = test_kernel();
  k.divergence = 1.0;
  auto t = compute_kernel_timing(spec, k, kDefaultPair);
  EXPECT_EQ(synthesize_events(spec, k, t).divergent_branches, 0.0);
  k.divergence = 2.0;
  t = compute_kernel_timing(spec, k, kDefaultPair);
  const HardwareEvents e = synthesize_events(spec, k, t);
  EXPECT_NEAR(e.divergent_branches, e.branches * 0.5, 1e-6);
}

}  // namespace
}  // namespace gppm::sim
