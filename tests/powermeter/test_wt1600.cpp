#include "powermeter/wt1600.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace gppm::meter {
namespace {

std::vector<TimelineSegment> constant(double watts, double seconds) {
  return {{Duration::seconds(seconds), Power::watts(watts)}};
}

MeterConfig noiseless() {
  MeterConfig c;
  c.noise_floor_watts = 0.0;
  c.noise_fraction = 0.0;
  c.quantization_watts = 0.0;
  return c;
}

TEST(WT1600, SampleCountMatchesFiftyMsGrid) {
  WT1600 meter(noiseless());
  const Measurement m = meter.measure(constant(100.0, 0.5));
  EXPECT_EQ(m.sample_count(), 10u);  // the paper's >= 10 samples rule
  EXPECT_NEAR(m.duration.as_seconds(), 0.5, 1e-12);
}

TEST(WT1600, ConstantPowerMeasuredExactlyWithoutNoise) {
  WT1600 meter(noiseless());
  const Measurement m = meter.measure(constant(215.5, 1.0));
  EXPECT_NEAR(m.average_power.as_watts(), 215.5, 1e-9);
  EXPECT_NEAR(m.energy.as_joules(), 215.5, 1e-6);
}

TEST(WT1600, WindowAveragesAcrossSegmentBoundaries) {
  WT1600 meter(noiseless());
  // 25 ms at 100 W then 25 ms at 300 W inside one 50 ms window -> 200 W.
  const std::vector<TimelineSegment> timeline = {
      {Duration::milliseconds(25), Power::watts(100)},
      {Duration::milliseconds(25), Power::watts(300)},
  };
  const Measurement m = meter.measure(timeline);
  ASSERT_EQ(m.sample_count(), 1u);
  EXPECT_NEAR(m.samples[0].power.as_watts(), 200.0, 1e-9);
}

TEST(WT1600, RejectsRunsShorterThanOneSample) {
  WT1600 meter;
  EXPECT_THROW(meter.measure(constant(100.0, 0.02)), gppm::Error);
  EXPECT_THROW(meter.measure({}), gppm::Error);
}

TEST(WT1600, RejectsNonpositiveSamplingPeriod) {
  MeterConfig zero;
  zero.sampling_period = Duration::seconds(0.0);
  EXPECT_THROW(WT1600{zero}, gppm::Error);
  MeterConfig negative;
  negative.sampling_period = Duration::milliseconds(-50.0);
  EXPECT_THROW(WT1600{negative}, gppm::Error);
}

TEST(WT1600, RejectsNegativeDurationSegments) {
  WT1600 meter(noiseless());
  const std::vector<TimelineSegment> timeline = {
      {Duration::seconds(1.0), Power::watts(100)},
      {Duration::seconds(-0.25), Power::watts(200)},
  };
  EXPECT_THROW(meter.measure(timeline), gppm::Error);
}

TEST(WT1600, NoiseAverageIsUnbiased) {
  MeterConfig cfg;
  cfg.noise_floor_watts = 1.0;
  cfg.noise_fraction = 0.01;
  WT1600 meter(cfg, 5);
  const Measurement m = meter.measure(constant(200.0, 60.0));  // 1200 samples
  EXPECT_NEAR(m.average_power.as_watts(), 200.0, 1.0);
}

TEST(WT1600, QuantizationSnapsReadings) {
  MeterConfig cfg = noiseless();
  cfg.quantization_watts = 0.5;
  WT1600 meter(cfg);
  const Measurement m = meter.measure(constant(100.26, 0.5));
  EXPECT_NEAR(m.samples[0].power.as_watts(), 100.5, 1e-12);
}

TEST(WT1600, SessionsDifferButInstrumentIsSeeded) {
  MeterConfig cfg;
  WT1600 a(cfg, 7), b(cfg, 7);
  const auto ma1 = a.measure(constant(150.0, 1.0));
  const auto mb1 = b.measure(constant(150.0, 1.0));
  // Same seed, same session index -> identical readings.
  EXPECT_DOUBLE_EQ(ma1.average_power.as_watts(), mb1.average_power.as_watts());
  // Next session on the same instrument differs (fresh noise draw).
  const auto ma2 = a.measure(constant(150.0, 1.0));
  EXPECT_NE(ma1.average_power.as_watts(), ma2.average_power.as_watts());
}

TEST(WT1600, IntegrateIsExact) {
  const std::vector<TimelineSegment> timeline = {
      {Duration::seconds(2.0), Power::watts(100)},
      {Duration::seconds(1.0), Power::watts(50)},
  };
  EXPECT_DOUBLE_EQ(WT1600::integrate(timeline).as_joules(), 250.0);
  EXPECT_DOUBLE_EQ(WT1600::total_duration(timeline).as_seconds(), 3.0);
}

TEST(WT1600, EnergyAccumulationMatchesIntegralOnGridAlignedRuns) {
  WT1600 meter(noiseless());
  const std::vector<TimelineSegment> timeline = {
      {Duration::seconds(0.5), Power::watts(100)},
      {Duration::seconds(0.5), Power::watts(300)},
  };
  const Measurement m = meter.measure(timeline);
  EXPECT_NEAR(m.energy.as_joules(), WT1600::integrate(timeline).as_joules(),
              1e-6);
}

TEST(WT1600, TailShorterThanWindowIsDropped) {
  WT1600 meter(noiseless());
  // 0.52 s -> 10 full windows, 20 ms tail discarded by the instrument.
  const Measurement m = meter.measure(constant(100.0, 0.52));
  EXPECT_EQ(m.sample_count(), 10u);
  EXPECT_NEAR(m.duration.as_seconds(), 0.5, 1e-12);
}

TEST(WT1600, ConfigValidation) {
  MeterConfig cfg;
  cfg.sampling_period = Duration::seconds(0.0);
  EXPECT_THROW(WT1600 m(cfg), gppm::Error);
  cfg = MeterConfig{};
  cfg.noise_floor_watts = -1.0;
  EXPECT_THROW(WT1600 m(cfg), gppm::Error);
}

TEST(WT1600, SampleTimestampsAreMonotonic) {
  WT1600 meter;
  const Measurement m = meter.measure(constant(100.0, 1.0));
  for (std::size_t i = 1; i < m.samples.size(); ++i) {
    EXPECT_GT(m.samples[i].timestamp.as_seconds(),
              m.samples[i - 1].timestamp.as_seconds());
  }
}

}  // namespace
}  // namespace gppm::meter
