#include "profiler/cuda_profiler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "workload/suite.hpp"

namespace gppm::profiler {
namespace {

sim::RunProfile small_run(const std::string& name = "hotspot") {
  return workload::find_benchmark(name).profile(0);
}

TEST(CudaProfiler, UnsupportedSetMatchesPaper) {
  const auto& list = CudaProfiler::unsupported_benchmarks();
  EXPECT_EQ(list.size(), 4u);
  for (const char* name : {"mummergpu", "backprop", "pathfinder", "bfs"}) {
    EXPECT_FALSE(CudaProfiler::supports(name)) << name;
  }
  EXPECT_TRUE(CudaProfiler::supports("hotspot"));
}

TEST(CudaProfiler, ThrowsOnUnsupportedBenchmark) {
  sim::Gpu gpu(sim::GpuModel::GTX480);
  CudaProfiler prof;
  EXPECT_THROW(prof.collect(gpu, small_run("backprop")), ProfilerUnsupported);
}

TEST(CudaProfiler, CollectsFullCatalog) {
  sim::Gpu gpu(sim::GpuModel::GTX680);
  CudaProfiler prof;
  const ProfileResult r = prof.collect(gpu, small_run());
  EXPECT_EQ(r.counters.size(), 108u);
  EXPECT_GT(r.run_time.as_seconds(), 0.0);
}

TEST(CudaProfiler, CatalogOrderPreserved) {
  sim::Gpu gpu(sim::GpuModel::GTX460);
  CudaProfiler prof;
  const ProfileResult r = prof.collect(gpu, small_run());
  const auto& catalog = counter_catalog(sim::Architecture::Fermi);
  ASSERT_EQ(r.counters.size(), catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(r.counters[i].name, catalog[i].name);
    EXPECT_EQ(r.counters[i].klass, catalog[i].klass);
  }
}

TEST(CudaProfiler, PerSecondConsistentWithTotals) {
  sim::Gpu gpu(sim::GpuModel::GTX480);
  CudaProfiler prof;
  const ProfileResult r = prof.collect(gpu, small_run());
  for (const CounterReading& c : r.counters) {
    EXPECT_NEAR(c.per_second * r.run_time.as_seconds(), c.total,
                1e-6 * std::max(1.0, c.total))
        << c.name;
  }
}

TEST(CudaProfiler, ReadingsAreIntegerTotals) {
  sim::Gpu gpu(sim::GpuModel::GTX285);
  CudaProfiler prof;
  const ProfileResult r = prof.collect(gpu, small_run());
  for (const CounterReading& c : r.counters) {
    EXPECT_EQ(c.total, std::round(c.total)) << c.name;
    EXPECT_GE(c.total, 0.0) << c.name;
  }
}

TEST(CudaProfiler, DeterministicGivenSeed) {
  sim::Gpu gpu(sim::GpuModel::GTX480);
  CudaProfiler a(11), b(11);
  const auto ra = a.collect(gpu, small_run());
  const auto rb = b.collect(gpu, small_run());
  for (std::size_t i = 0; i < ra.counters.size(); ++i) {
    EXPECT_EQ(ra.counters[i].total, rb.counters[i].total);
  }
}

TEST(CudaProfiler, SamplingErrorBoundedAndPresent) {
  // With sigma = 5%, observed totals should sit near truth but not exactly
  // on it for large counters.
  sim::Gpu gpu(sim::GpuModel::GTX480);
  CudaProfiler prof;
  const sim::RunProfile run = small_run();
  const sim::RunExecution exec = gpu.run(run);
  const ProfileResult r = prof.collect(gpu, run);
  const auto& catalog = counter_catalog(sim::Architecture::Fermi);
  bool any_differs = false;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const double truth = catalog[i].extract(exec.events);
    if (truth < 1000.0) continue;
    EXPECT_NEAR(r.counters[i].total, truth, truth * 0.30) << catalog[i].name;
    if (std::abs(r.counters[i].total - truth) > 0.5) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(CudaProfiler, ZeroSigmaReproducesTruthExactly) {
  sim::Gpu gpu(sim::GpuModel::GTX480);
  CudaProfiler prof;
  prof.set_sampling_sigma(0.0);
  const sim::RunProfile run = small_run();
  const sim::RunExecution exec = gpu.run(run);
  const ProfileResult r = prof.collect(gpu, run);
  const auto& catalog = counter_catalog(sim::Architecture::Fermi);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(r.counters[i].total, std::round(catalog[i].extract(exec.events)));
  }
}

TEST(CudaProfiler, RejectsNegativeSigma) {
  CudaProfiler prof;
  EXPECT_THROW(prof.set_sampling_sigma(-0.1), gppm::Error);
}

}  // namespace
}  // namespace gppm::profiler
