#include "profiler/counters.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/str.hpp"
#include "gpusim/device_spec.hpp"

namespace gppm::profiler {
namespace {

sim::HardwareEvents sample_events() {
  sim::HardwareEvents e;
  e.insts_issued = 2.2e9;
  e.insts_executed = 2.0e9;
  e.flops_sp = 3.0e10;
  e.flops_dp = 1.0e8;
  e.int_insts = 5.0e9;
  e.special_insts = 2.0e8;
  e.gld_requests = 4.0e7;
  e.gst_requests = 1.0e7;
  e.gld_transactions = 2.0e8;
  e.gst_transactions = 5.0e7;
  e.l1_hits = 8.0e7;
  e.l1_misses = 1.2e8;
  e.l2_reads = 1.2e8;
  e.l2_writes = 5.0e7;
  e.dram_reads = 9.0e7;
  e.dram_writes = 4.0e7;
  e.shared_loads = 6.0e8;
  e.shared_stores = 4.0e8;
  e.shared_bank_conflicts = 1.0e7;
  e.tex_requests = 2.0e6;
  e.tex_hits = 1.5e6;
  e.branches = 1.5e8;
  e.divergent_branches = 2.0e7;
  e.warps_launched = 8.0e6;
  e.blocks_launched = 1.0e6;
  e.threads_launched = 2.56e8;
  e.active_cycles = 1.0e9;
  e.elapsed_cycles = 1.4e9;
  e.active_warps = 3.0e10;
  e.barrier_syncs = 4.0e6;
  return e;
}

class CatalogPerArch : public ::testing::TestWithParam<sim::Architecture> {};

TEST_P(CatalogPerArch, NamesAreUnique) {
  std::set<std::string> names;
  for (const CounterDef& def : counter_catalog(GetParam())) {
    EXPECT_TRUE(names.insert(def.name).second) << def.name;
  }
}

TEST_P(CatalogPerArch, BothEventClassesPresent) {
  bool has_core = false, has_memory = false;
  for (const CounterDef& def : counter_catalog(GetParam())) {
    if (def.klass == EventClass::Core) has_core = true;
    if (def.klass == EventClass::Memory) has_memory = true;
  }
  EXPECT_TRUE(has_core);
  EXPECT_TRUE(has_memory);
}

TEST_P(CatalogPerArch, ExtractorsNonNegativeAndFinite) {
  const sim::HardwareEvents e = sample_events();
  for (const CounterDef& def : counter_catalog(GetParam())) {
    const double v = def.extract(e);
    EXPECT_GE(v, 0.0) << def.name;
    EXPECT_TRUE(std::isfinite(v)) << def.name;
  }
}

TEST_P(CatalogPerArch, ZeroEventsGiveZeroCounters) {
  const sim::HardwareEvents zero;
  for (const CounterDef& def : counter_catalog(GetParam())) {
    EXPECT_EQ(def.extract(zero), 0.0) << def.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Architectures, CatalogPerArch,
                         ::testing::Values(sim::Architecture::Tesla,
                                           sim::Architecture::Fermi,
                                           sim::Architecture::Kepler),
                         [](const auto& info) {
                           return sim::to_string(info.param);
                         });

TEST(Catalog, SizesMatchPaper) {
  EXPECT_EQ(counter_catalog(sim::Architecture::Tesla).size(), 32u);
  EXPECT_EQ(counter_catalog(sim::Architecture::Fermi).size(), 74u);
  EXPECT_EQ(counter_catalog(sim::Architecture::Kepler).size(), 108u);
}

TEST(Catalog, SizesMatchDeviceSpecs) {
  for (sim::GpuModel m : sim::kAllGpus) {
    const sim::DeviceSpec& spec = sim::device_spec(m);
    EXPECT_EQ(counter_catalog(spec.architecture).size(),
              static_cast<std::size_t>(spec.performance_counter_count));
  }
}

TEST(Catalog, UncoreCountersAreMemoryClass) {
  for (sim::Architecture arch :
       {sim::Architecture::Fermi, sim::Architecture::Kepler}) {
    for (const CounterDef& def : counter_catalog(arch)) {
      if (starts_with(def.name, "l2_") || starts_with(def.name, "fb_")) {
        EXPECT_EQ(def.klass, EventClass::Memory) << def.name;
      }
    }
  }
}

TEST(Catalog, SmCountersAreCoreClass) {
  for (sim::Architecture arch :
       {sim::Architecture::Fermi, sim::Architecture::Kepler}) {
    for (const char* name : {"inst_executed", "branch", "shared_load"}) {
      const auto& catalog = counter_catalog(arch);
      EXPECT_EQ(catalog[counter_index(arch, name)].klass, EventClass::Core)
          << name;
    }
  }
}

TEST(Catalog, SubpartitionSplitsSumToWhole) {
  const sim::HardwareEvents e = sample_events();
  const auto& catalog = counter_catalog(sim::Architecture::Kepler);
  double sum = 0.0;
  for (const CounterDef& def : catalog) {
    if (starts_with(def.name, "l2_subp") && contains(def.name, "_read_requests")) {
      sum += def.extract(e);
    }
  }
  EXPECT_NEAR(sum, e.l2_reads, e.l2_reads * 1e-9);
}

TEST(Catalog, CounterIndexFindsAndThrows) {
  EXPECT_EQ(counter_index(sim::Architecture::Tesla, "instructions"), 0u);
  EXPECT_THROW(counter_index(sim::Architecture::Tesla, "no_such_counter"),
               gppm::Error);
}

TEST(Catalog, ProfTriggersAreConstantZero) {
  const sim::HardwareEvents e = sample_events();
  for (sim::Architecture arch :
       {sim::Architecture::Tesla, sim::Architecture::Fermi,
        sim::Architecture::Kepler}) {
    int trigger_count = 0;
    for (const CounterDef& def : counter_catalog(arch)) {
      if (starts_with(def.name, "prof_trigger")) {
        EXPECT_EQ(def.extract(e), 0.0);
        ++trigger_count;
      }
    }
    EXPECT_EQ(trigger_count, 8);
  }
}

TEST(EventClassName, Strings) {
  EXPECT_EQ(to_string(EventClass::Core), "core");
  EXPECT_EQ(to_string(EventClass::Memory), "memory");
}

}  // namespace
}  // namespace gppm::profiler
