#include "governor/governor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/optimizer.hpp"
#include "governor/loop.hpp"
#include "profiler/cuda_profiler.hpp"
#include "workload/phases.hpp"

namespace gppm::governor {
namespace {

const core::Dataset& dataset() {
  static const core::Dataset ds = core::build_dataset(sim::GpuModel::GTX680);
  return ds;
}

core::UnifiedModel extended_power() {
  core::ModelOptions opt;
  opt.scaling = core::FeatureScaling::VoltageSquaredFrequency;
  opt.include_baseline_terms = true;
  return core::UnifiedModel::fit(dataset(), core::TargetKind::Power, opt);
}

core::UnifiedModel perf_model() {
  return core::UnifiedModel::fit(dataset(), core::TargetKind::ExecTime);
}

const core::Sample& sample_of(const std::string& bench) {
  for (const core::Sample& s : dataset().samples) {
    if (s.benchmark == bench && s.size_index == 0) return s;
  }
  throw Error("benchmark not in corpus: " + bench);
}

/// Raw-model governor: no feedback corrections, no refitting.  Decisions
/// are then a pure function of the seed models, which the tests can
/// reproduce through core::predict_all_pairs.
OnlineGovernorOptions raw_options() {
  OnlineGovernorOptions opt;
  opt.feedback = false;
  opt.refit_interval = 0;
  opt.instrument = false;
  return opt;
}

TEST(OnlineGovernor, ValidatesOptions) {
  OnlineGovernorOptions opt = raw_options();
  opt.switch_threshold = -0.1;
  EXPECT_THROW(OnlineGovernor(dataset(), extended_power(), perf_model(), opt),
               Error);
  opt = raw_options();
  opt.max_slowdown = 0.5;  // below 1 and not the 0 sentinel
  EXPECT_THROW(OnlineGovernor(dataset(), extended_power(), perf_model(), opt),
               Error);
}

// Find a corpus sample where the raw models prefer a non-default pair, and
// return the hysteresis threshold at which that preference exactly equals
// the switching margin.
struct BoundaryCase {
  const core::Sample* sample = nullptr;
  sim::FrequencyPair best_pair;
  double threshold_at = 0.0;  ///< 1 - E(best)/E(default)
};

BoundaryCase find_boundary_case(const core::UnifiedModel& power,
                                const core::UnifiedModel& perf) {
  for (const core::Sample& s : dataset().samples) {
    const auto preds = core::predict_all_pairs(power, perf, s.counters);
    const core::PairPrediction* best = nullptr;
    const core::PairPrediction* at_default = nullptr;
    for (const core::PairPrediction& p : preds) {
      if (!best || p.predicted_energy_joules < best->predicted_energy_joules) {
        best = &p;
      }
      if (p.pair == sim::kDefaultPair) at_default = &p;
    }
    if (best->pair == sim::kDefaultPair) continue;
    BoundaryCase c;
    c.sample = &s;
    c.best_pair = best->pair;
    c.threshold_at = 1.0 - best->predicted_energy_joules /
                               at_default->predicted_energy_joules;
    if (c.threshold_at > 1e-3) return c;
  }
  throw Error("no corpus sample prefers a non-default pair");
}

TEST(OnlineGovernor, HysteresisBoundaryBracketsSwitchingMargin) {
  const core::UnifiedModel power = extended_power();
  const core::UnifiedModel perf = perf_model();
  const BoundaryCase c = find_boundary_case(power, perf);

  // Threshold a hair above the predicted margin: the margin no longer
  // clears it, so the governor must hold the default pair.
  OnlineGovernorOptions hold_opt = raw_options();
  hold_opt.switch_threshold = c.threshold_at + 1e-9;
  OnlineGovernor holder(dataset(), power, perf, hold_opt);
  EXPECT_EQ(holder.decide(c.sample->counters), sim::kDefaultPair);
  EXPECT_EQ(holder.switch_count(), 0);
  ASSERT_EQ(holder.decision_log().size(), 1u);
  EXPECT_FALSE(holder.decision_log()[0].switched);

  // Threshold a hair below: the same margin now clears it and the governor
  // must switch to the predicted-best pair.
  OnlineGovernorOptions switch_opt = raw_options();
  switch_opt.switch_threshold = c.threshold_at - 1e-9;
  OnlineGovernor switcher(dataset(), power, perf, switch_opt);
  EXPECT_EQ(switcher.decide(c.sample->counters), c.best_pair);
  EXPECT_EQ(switcher.switch_count(), 1);
  ASSERT_EQ(switcher.decision_log().size(), 1u);
  EXPECT_TRUE(switcher.decision_log()[0].switched);
}

TEST(OnlineGovernor, ZeroThresholdDecisionMatchesOptimizer) {
  const core::UnifiedModel power = extended_power();
  const core::UnifiedModel perf = perf_model();
  OnlineGovernorOptions opt = raw_options();
  opt.switch_threshold = 0.0;
  OnlineGovernor gov(dataset(), power, perf, opt);
  const auto& c = sample_of("sgemm").counters;
  EXPECT_EQ(gov.decide(c), core::predict_min_energy_pair(power, perf, c));
}

TEST(OnlineGovernor, MaxSlowdownConstraintBoundsPredictedTime) {
  const core::UnifiedModel power = extended_power();
  const core::UnifiedModel perf = perf_model();
  OnlineGovernorOptions opt = raw_options();
  opt.switch_threshold = 0.0;
  opt.max_slowdown = 1.05;
  for (const char* bench : {"sgemm", "kmeans", "BlackScholes", "lbm"}) {
    const auto& counters = sample_of(bench).counters;
    OnlineGovernor gov(dataset(), power, perf, opt);
    const sim::FrequencyPair pick = gov.decide(counters);
    double default_time = 0.0, pick_time = 0.0;
    for (const auto& p : core::predict_all_pairs(power, perf, counters)) {
      if (p.pair == sim::kDefaultPair) default_time = p.predicted_time_seconds;
      if (p.pair == pick) pick_time = p.predicted_time_seconds;
    }
    EXPECT_LE(pick_time, default_time * 1.05 * (1.0 + 1e-12)) << bench;
  }
}

TEST(OnlineGovernor, RefitTriggersExactlyOnInterval) {
  OnlineGovernorOptions opt;
  opt.feedback = false;
  opt.instrument = false;
  opt.refit_interval = 4;
  OnlineGovernor gov(dataset(), extended_power(), perf_model(), opt);
  const core::Sample& s = sample_of("sgemm");
  const core::Measurement& run = s.runs.front();
  for (int i = 1; i <= 8; ++i) {
    gov.observe(s.counters, run.pair, run.avg_power, run.exec_time);
    EXPECT_EQ(gov.refit_count(), i / 4) << "after observation " << i;
  }
}

TEST(OnlineGovernor, CorpusSeedsFeedbackBiasTable) {
  OnlineGovernor gov(dataset(), extended_power(), perf_model());
  const core::Sample& s = sample_of("sgemm");
  for (const core::Measurement& run : s.runs) {
    const FeedbackBias keyed = gov.feedback_bias("sgemm", run.pair);
    EXPECT_GT(keyed.samples, 0);
    EXPECT_GT(keyed.rel_samples, 0);
    EXPECT_GT(keyed.power, 0.0);
    EXPECT_GT(keyed.time, 0.0);
    // The cross-phase aggregate lives under the empty key.
    EXPECT_GT(gov.feedback_bias("", run.pair).samples, 0);
  }
  // Unknown phases carry no correction.
  EXPECT_EQ(gov.feedback_bias("no-such-bench", s.runs.front().pair).samples,
            0);
}

TEST(OnlineGovernor, FeedbackSteersAwayFromMeasuredBadPair) {
  OnlineGovernorOptions opt;
  opt.refit_interval = 0;  // isolate the bias table from model refits
  opt.instrument = false;
  opt.switch_threshold = 0.0;
  OnlineGovernor gov(dataset(), extended_power(), perf_model(), opt);
  const core::Sample& s = sample_of("sgemm");

  const sim::FrequencyPair first = gov.decide(s.counters, "sgemm");
  // Report the picked pair as catastrophically expensive, repeatedly, so
  // the EMA converges onto the fiction.
  for (int i = 0; i < 4; ++i) {
    gov.observe(s.counters, first, Power::watts(4000.0),
                Duration::seconds(400.0), "sgemm");
  }
  const sim::FrequencyPair second = gov.decide(s.counters, "sgemm");
  EXPECT_FALSE(second == first)
      << "governor repeated a pair measured as catastrophic";
}

TEST(OnlineGovernor, ResetClearsDecisionsButKeepsLearnedState) {
  OnlineGovernorOptions opt;
  opt.instrument = false;
  OnlineGovernor gov(dataset(), extended_power(), perf_model(), opt);
  const core::Sample& s = sample_of("sgemm");
  gov.decide(s.counters, "sgemm");
  ASSERT_EQ(gov.decision_count(), 1);

  gov.reset();
  EXPECT_EQ(gov.decision_count(), 0);
  EXPECT_EQ(gov.switch_count(), 0);
  EXPECT_EQ(gov.current_pair(), sim::kDefaultPair);
  // The corpus-seeded feedback table survives the reset.
  EXPECT_GT(gov.feedback_bias("sgemm", s.runs.front().pair).samples, 0);
}

// --- Closed loop ------------------------------------------------------

LoopOptions fast_loop_options() {
  LoopOptions opt;
  opt.measure_baselines = false;
  opt.governor.instrument = false;
  return opt;
}

std::vector<workload::Phase> short_schedule(std::uint64_t seed) {
  workload::PhaseScheduleOptions sched;
  sched.phases = 8;
  sched.seed = seed;
  return workload::phase_schedule(
      sched, profiler::CudaProfiler::unsupported_benchmarks());
}

TEST(GovernorLoop, SameSeedProducesIdenticalDecisionLog) {
  const std::vector<workload::Phase> phases = short_schedule(5);
  GovernorLoop a(sim::GpuModel::GTX680, dataset(), extended_power(),
                 perf_model(), fast_loop_options());
  GovernorLoop b(sim::GpuModel::GTX680, dataset(), extended_power(),
                 perf_model(), fast_loop_options());
  const LoopResult ra = a.run(phases);
  const LoopResult rb = b.run(phases);

  EXPECT_EQ(ra.governed_energy_joules, rb.governed_energy_joules);
  const std::vector<Decision>& la = a.governor().decision_log();
  const std::vector<Decision>& lb = b.governor().decision_log();
  ASSERT_EQ(la.size(), lb.size());
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la[i].pair, lb[i].pair) << "decision " << i;
    EXPECT_EQ(la[i].switched, lb[i].switched) << "decision " << i;
    EXPECT_EQ(la[i].predicted_energy_joules, lb[i].predicted_energy_joules)
        << "decision " << i;
  }
}

TEST(GovernorLoop, EverySwitchCostsExactlyOneReboot) {
  GovernorLoop loop(sim::GpuModel::GTX680, dataset(), extended_power(),
                    perf_model(), fast_loop_options());
  const LoopResult result = loop.run(short_schedule(13));
  EXPECT_EQ(result.reboots, result.switches);
  EXPECT_GT(result.governed_energy_joules, 0.0);
  EXPECT_FALSE(result.phases.empty());
}

TEST(GovernorLoop, RejectsCorpusFromDifferentBoard) {
  EXPECT_THROW(GovernorLoop(sim::GpuModel::GTX285, dataset(),
                            extended_power(), perf_model(),
                            fast_loop_options()),
               Error);
}

// --- Refitter ---------------------------------------------------------

TEST(ModelRefitter, RefitWithoutObservationsReproducesSeedModels) {
  ModelRefitter refitter(dataset(), extended_power(), perf_model());
  const core::UnifiedModel seed_power = refitter.power_model();
  const core::UnifiedModel seed_perf = refitter.perf_model();
  refitter.refit();
  for (const char* bench : {"sgemm", "kmeans"}) {
    const core::Sample& s = sample_of(bench);
    for (const core::Measurement& run : s.runs) {
      const double p0 = seed_power.predict(s.counters, run.pair);
      const double p1 = refitter.power_model().predict(s.counters, run.pair);
      EXPECT_NEAR(p1, p0, std::abs(p0) * 0.02 + 0.5) << bench;
      const double t0 = seed_perf.predict(s.counters, run.pair);
      const double t1 = refitter.perf_model().predict(s.counters, run.pair);
      EXPECT_NEAR(t1, t0, std::abs(t0) * 0.02 + 0.01) << bench;
    }
  }
}

TEST(ModelRefitter, ObservationsMoveTheCoefficients) {
  ModelRefitter refitter(dataset(), extended_power(), perf_model());
  const core::Sample& s = sample_of("sgemm");
  const core::Measurement& run = s.runs.front();
  const double before =
      refitter.power_model().predict(s.counters, run.pair);
  // Stream a long run of measurements 25 % hotter than the corpus says.
  for (int i = 0; i < 64; ++i) {
    refitter.observe(s.counters, run.pair,
                     Power::watts(run.avg_power.as_watts() * 1.25),
                     run.exec_time);
  }
  refitter.refit();
  const double after = refitter.power_model().predict(s.counters, run.pair);
  EXPECT_GT(after, before);
  EXPECT_TRUE(std::isfinite(after));
  EXPECT_EQ(refitter.refit_count(), 1);
  EXPECT_EQ(refitter.observation_count(), 64u);
}

}  // namespace
}  // namespace gppm::governor
