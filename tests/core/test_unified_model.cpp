#include "core/unified_model.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "core/evaluation.hpp"

namespace gppm::core {
namespace {

const Dataset& dataset() {
  static const Dataset ds = build_dataset(sim::GpuModel::GTX460);
  return ds;
}

const UnifiedModel& power_model() {
  static const UnifiedModel m = UnifiedModel::fit(dataset(), TargetKind::Power);
  return m;
}

const UnifiedModel& perf_model() {
  static const UnifiedModel m =
      UnifiedModel::fit(dataset(), TargetKind::ExecTime);
  return m;
}

TEST(UnifiedModel, MetadataAfterFit) {
  EXPECT_EQ(power_model().target(), TargetKind::Power);
  EXPECT_EQ(power_model().gpu(), sim::GpuModel::GTX460);
  EXPECT_EQ(perf_model().target(), TargetKind::ExecTime);
}

TEST(UnifiedModel, RespectsVariableCap) {
  EXPECT_LE(power_model().variables().size(), 10u);
  EXPECT_GE(power_model().variables().size(), 1u);
  ModelOptions opt;
  opt.max_variables = 3;
  const UnifiedModel small = UnifiedModel::fit(dataset(), TargetKind::Power, opt);
  EXPECT_LE(small.variables().size(), 3u);
}

TEST(UnifiedModel, AdjustedR2InRange) {
  EXPECT_GT(power_model().adjusted_r2(), 0.0);
  EXPECT_LE(power_model().adjusted_r2(), 1.0);
  EXPECT_GT(perf_model().adjusted_r2(), 0.5);
}

TEST(UnifiedModel, CumulativeR2NonDecreasing) {
  const auto& vars = perf_model().variables();
  for (std::size_t i = 1; i < vars.size(); ++i) {
    EXPECT_GE(vars[i].cumulative_adjusted_r2,
              vars[i - 1].cumulative_adjusted_r2 - 1e-12);
  }
  EXPECT_NEAR(vars.back().cumulative_adjusted_r2, perf_model().adjusted_r2(),
              1e-12);
}

TEST(UnifiedModel, SelectedCountersAreDistinct) {
  std::set<std::string> names;
  for (const SelectedVariable& v : power_model().variables()) {
    EXPECT_TRUE(names.insert(v.counter).second) << v.counter;
  }
}

TEST(UnifiedModel, PredictMatchesManualComputation) {
  const Sample& s = dataset().samples.front();
  const sim::FrequencyPair pair = s.runs.back().pair;
  const sim::DeviceSpec& spec = sim::device_spec(sim::GpuModel::GTX460);
  double manual = power_model().intercept();
  for (const SelectedVariable& v : power_model().variables()) {
    const auto idx =
        profiler::counter_index(sim::Architecture::Fermi, v.counter);
    manual += v.coefficient *
              feature_value(s.counters.counters[idx], pair, spec,
                            TargetKind::Power);
  }
  EXPECT_NEAR(power_model().predict(s.counters, pair), manual, 1e-9);
}

TEST(UnifiedModel, PredictionsTrackFrequencyDirection) {
  // Averaged over the corpus, predicted power must drop from (H-H) to
  // (M-L); the unified frequency scaling is what encodes this.
  const Dataset& ds = dataset();
  double hh = 0, ml = 0;
  for (const Sample& s : ds.samples) {
    hh += power_model().predict(s.counters, sim::kDefaultPair);
    ml += power_model().predict(
        s.counters, {sim::ClockLevel::Medium, sim::ClockLevel::Low});
  }
  EXPECT_LT(ml, hh);
}

TEST(UnifiedModel, PerfPredictionsGrowWhenCoreSlows) {
  const Dataset& ds = dataset();
  double hh = 0, mh = 0;
  for (const Sample& s : ds.samples) {
    hh += perf_model().predict(s.counters, sim::kDefaultPair);
    mh += perf_model().predict(
        s.counters, {sim::ClockLevel::Medium, sim::ClockLevel::High});
  }
  EXPECT_GT(mh, hh);
}

TEST(UnifiedModel, PerPairFitUsesOnlyThatPair) {
  const sim::FrequencyPair hh = sim::kDefaultPair;
  const UnifiedModel per_pair =
      UnifiedModel::fit(dataset(), TargetKind::Power, {}, &hh);
  // Scoring it on its own pair must beat (or match) scoring it everywhere.
  const Evaluation own = evaluate(per_pair, dataset(), &hh);
  const Evaluation all = evaluate(per_pair, dataset());
  EXPECT_LE(own.mape(), all.mape() + 1e-9);
}

TEST(ModelFamily, PrefixesMatchDirectFits) {
  // One selection run at the family cap serves every smaller variable count:
  // family.at(k) must be exactly the model a direct fit capped at k returns.
  ModelOptions opt;
  opt.max_variables = 8;
  const ModelFamily family = ModelFamily::fit(dataset(), TargetKind::Power, opt);
  ASSERT_GE(family.size(), 3u);
  EXPECT_EQ(family.full().variables().size(), family.size());
  for (std::size_t k : {std::size_t{1}, std::size_t{3}, family.size()}) {
    ModelOptions capped = opt;
    capped.max_variables = k;
    const UnifiedModel direct =
        UnifiedModel::fit(dataset(), TargetKind::Power, capped);
    const UnifiedModel& prefix = family.at(k);
    ASSERT_EQ(prefix.variables().size(), direct.variables().size());
    EXPECT_EQ(prefix.intercept(), direct.intercept());
    for (std::size_t i = 0; i < direct.variables().size(); ++i) {
      EXPECT_EQ(prefix.variables()[i].counter, direct.variables()[i].counter);
      EXPECT_EQ(prefix.variables()[i].coefficient,
                direct.variables()[i].coefficient);
      EXPECT_EQ(prefix.variables()[i].cumulative_adjusted_r2,
                direct.variables()[i].cumulative_adjusted_r2);
    }
  }
}

TEST(ModelFamily, AtClampsToSelectedCount) {
  ModelOptions opt;
  opt.max_variables = 4;
  const ModelFamily family =
      ModelFamily::fit(dataset(), TargetKind::ExecTime, opt);
  // Asking beyond what selection kept returns the full model.
  EXPECT_EQ(&family.at(family.size()), &family.full());
  EXPECT_THROW(family.at(0), gppm::Error);
}

TEST(UnifiedModel, EnginesProduceIdenticalModels) {
  // The incremental engine is the default; the naive QR engine is the
  // reference.  Fit tables must be bit-identical between them.
  ModelOptions naive;
  naive.engine = stats::SelectionEngine::NaiveQr;
  const UnifiedModel reference =
      UnifiedModel::fit(dataset(), TargetKind::Power, naive);
  const UnifiedModel& incremental = power_model();
  ASSERT_EQ(reference.variables().size(), incremental.variables().size());
  EXPECT_EQ(reference.intercept(), incremental.intercept());
  for (std::size_t i = 0; i < reference.variables().size(); ++i) {
    EXPECT_EQ(reference.variables()[i].counter,
              incremental.variables()[i].counter);
    EXPECT_EQ(reference.variables()[i].coefficient,
              incremental.variables()[i].coefficient);
  }
}

TEST(UnifiedModel, MoreVariablesNeverHurtAdjustedR2) {
  ModelOptions small;
  small.max_variables = 5;
  ModelOptions large;
  large.max_variables = 15;
  const UnifiedModel m5 = UnifiedModel::fit(dataset(), TargetKind::ExecTime, small);
  const UnifiedModel m15 =
      UnifiedModel::fit(dataset(), TargetKind::ExecTime, large);
  EXPECT_GE(m15.adjusted_r2(), m5.adjusted_r2() - 1e-9);
}

}  // namespace
}  // namespace gppm::core
