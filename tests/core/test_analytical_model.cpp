#include "core/analytical_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/evaluation.hpp"

namespace gppm::core {
namespace {

const Dataset& ds480() {
  static const Dataset ds = build_dataset(sim::GpuModel::GTX480);
  return ds;
}

double mape_of(const AnalyticalPerfModel& model, const Dataset& ds) {
  double acc = 0;
  std::size_t n = 0;
  for (const Sample& s : ds.samples) {
    for (const Measurement& m : s.runs) {
      const double pred = model.predict_seconds(s.counters, m.pair);
      acc += std::abs(pred - m.exec_time.as_seconds()) /
             m.exec_time.as_seconds() * 100.0;
      ++n;
    }
  }
  return acc / static_cast<double>(n);
}

TEST(AnalyticalInputs, ExtractsPositiveQuantities) {
  const Sample& s = ds480().samples.front();
  const AnalyticalInputs in =
      analytical_inputs(s.counters, sim::Architecture::Fermi);
  EXPECT_GT(in.warp_instructions, 0.0);
  EXPECT_GT(in.dram_bytes, 0.0);
  EXPECT_GT(in.launches, 0.0);
}

TEST(AnalyticalInputs, TeslaUsesSizeBinnedTransactions) {
  static const Dataset ds = build_dataset(sim::GpuModel::GTX285);
  const AnalyticalInputs in =
      analytical_inputs(ds.samples.front().counters, sim::Architecture::Tesla);
  EXPECT_GT(in.warp_instructions, 0.0);
  EXPECT_GT(in.dram_bytes, 0.0);
}

TEST(AnalyticalModel, CalibrationProducesPositiveParams) {
  const AnalyticalPerfModel model = AnalyticalPerfModel::calibrate(ds480());
  EXPECT_GT(model.params().alpha_compute, 0.0);
  EXPECT_GT(model.params().alpha_memory, 0.0);
  EXPECT_GE(model.params().beta_launch, 0.0);
  EXPECT_GE(model.params().gamma_fixed, 0.0);
  EXPECT_EQ(model.gpu(), sim::GpuModel::GTX480);
}

TEST(AnalyticalModel, PredictionsArePositive) {
  const AnalyticalPerfModel model = AnalyticalPerfModel::calibrate(ds480());
  for (const Sample& s : ds480().samples) {
    EXPECT_GT(model.predict_seconds(s.counters, sim::kDefaultPair), 0.0);
  }
}

TEST(AnalyticalModel, CalibratedErrorIsBounded) {
  const AnalyticalPerfModel model = AnalyticalPerfModel::calibrate(ds480());
  EXPECT_LT(mape_of(model, ds480()), 90.0);
}

TEST(AnalyticalModel, PredictionsScaleWithCoreClockForComputeBound) {
  // For a compute-dominated sample the bottleneck term scales with 1/f_core.
  const AnalyticalPerfModel model = AnalyticalPerfModel::calibrate(ds480());
  const Sample* compute_heavy = nullptr;
  for (const Sample& s : ds480().samples) {
    if (s.benchmark == "mri-q") compute_heavy = &s;
  }
  ASSERT_NE(compute_heavy, nullptr);
  const double hh =
      model.predict_seconds(compute_heavy->counters, sim::kDefaultPair);
  const double mh = model.predict_seconds(
      compute_heavy->counters,
      {sim::ClockLevel::Medium, sim::ClockLevel::High});
  EXPECT_GT(mh, hh);
}

TEST(AnalyticalModel, TransferAcrossBoardsDegrades) {
  // The paper's portability argument: parameters tuned for one board do not
  // transfer to another generation.
  static const Dataset ds680 = build_dataset(sim::GpuModel::GTX680);
  const AnalyticalPerfModel own = AnalyticalPerfModel::calibrate(ds680);
  const AnalyticalPerfModel moved =
      AnalyticalPerfModel::calibrate(ds480()).transferred_to(
          sim::GpuModel::GTX680);
  EXPECT_GT(mape_of(moved, ds680), mape_of(own, ds680));
}

TEST(AnalyticalModel, StatisticalModelBeatsAnalyticalInSample) {
  // On every corpus the statistical model's flexible feature set should
  // match or beat the four-parameter analytical form.
  const AnalyticalPerfModel analytical =
      AnalyticalPerfModel::calibrate(ds480());
  const UnifiedModel statistical =
      UnifiedModel::fit(ds480(), TargetKind::ExecTime);
  EXPECT_LT(evaluate(statistical, ds480()).mape(), mape_of(analytical, ds480()));
}

TEST(AnalyticalModel, DeterministicCalibration) {
  const AnalyticalPerfModel a = AnalyticalPerfModel::calibrate(ds480());
  const AnalyticalPerfModel b = AnalyticalPerfModel::calibrate(ds480());
  EXPECT_DOUBLE_EQ(a.params().alpha_compute, b.params().alpha_compute);
  EXPECT_DOUBLE_EQ(a.params().alpha_memory, b.params().alpha_memory);
}

}  // namespace
}  // namespace gppm::core
