#include "core/features.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace gppm::core {
namespace {

/// Shared corpus: built once per test binary (construction sweeps the whole
/// suite, so caching matters).
const Dataset& gtx480_dataset() {
  static const Dataset ds = build_dataset(sim::GpuModel::GTX480);
  return ds;
}

profiler::CounterReading reading(profiler::EventClass klass, double total,
                                 double per_second) {
  profiler::CounterReading r;
  r.name = "c";
  r.klass = klass;
  r.total = total;
  r.per_second = per_second;
  return r;
}

TEST(Features, PowerFeatureMultipliesByDomainFrequency) {
  const sim::DeviceSpec& spec = sim::device_spec(sim::GpuModel::GTX480);
  const auto core = reading(profiler::EventClass::Core, 100.0, 10.0);
  const auto mem = reading(profiler::EventClass::Memory, 100.0, 10.0);
  // Eq. 1: per-second value x frequency (GHz).
  EXPECT_NEAR(feature_value(core, sim::kDefaultPair, spec, TargetKind::Power),
              10.0 * 1.4, 1e-9);
  EXPECT_NEAR(feature_value(mem, sim::kDefaultPair, spec, TargetKind::Power),
              10.0 * 1.848, 1e-9);
}

TEST(Features, TimeFeatureDividesByDomainFrequency) {
  const sim::DeviceSpec& spec = sim::device_spec(sim::GpuModel::GTX480);
  const auto core = reading(profiler::EventClass::Core, 100.0, 10.0);
  // Eq. 2: total / frequency (GHz).
  EXPECT_NEAR(feature_value(core, sim::kDefaultPair, spec, TargetKind::ExecTime),
              100.0 / 1.4, 1e-9);
  const sim::FrequencyPair ml{sim::ClockLevel::Medium, sim::ClockLevel::Low};
  EXPECT_NEAR(feature_value(core, ml, spec, TargetKind::ExecTime),
              100.0 / 0.81, 1e-9);
}

TEST(Features, MemoryEventUsesMemoryClock) {
  const sim::DeviceSpec& spec = sim::device_spec(sim::GpuModel::GTX480);
  const auto mem = reading(profiler::EventClass::Memory, 100.0, 10.0);
  const sim::FrequencyPair hl{sim::ClockLevel::High, sim::ClockLevel::Low};
  EXPECT_NEAR(feature_value(mem, hl, spec, TargetKind::ExecTime),
              100.0 / 0.135, 1e-9);
}

TEST(Features, TableHasRowPerSamplePair) {
  const Dataset& ds = gtx480_dataset();
  const RegressionTable table = build_table(ds, TargetKind::Power);
  EXPECT_EQ(table.features.rows(), ds.row_count());
  EXPECT_EQ(table.features.rows(), 114u * 7u);
  EXPECT_EQ(table.features.cols(), 74u);
  EXPECT_EQ(table.target.size(), table.features.rows());
  EXPECT_EQ(table.rows.size(), table.features.rows());
  EXPECT_EQ(table.feature_names.size(), 74u);
}

TEST(Features, PairFilterRestrictsRows) {
  const Dataset& ds = gtx480_dataset();
  const sim::FrequencyPair hh = sim::kDefaultPair;
  const RegressionTable table = build_table(ds, TargetKind::ExecTime, &hh);
  EXPECT_EQ(table.features.rows(), 114u);
  for (const RowInfo& info : table.rows) EXPECT_EQ(info.pair, hh);
}

TEST(Features, TargetsMatchMeasurements) {
  const Dataset& ds = gtx480_dataset();
  const RegressionTable power = build_table(ds, TargetKind::Power);
  const RegressionTable time = build_table(ds, TargetKind::ExecTime);
  for (std::size_t i = 0; i < power.rows.size(); ++i) {
    const Sample& s = ds.samples[power.rows[i].sample_index];
    bool found = false;
    for (const Measurement& m : s.runs) {
      if (m.pair == power.rows[i].pair) {
        EXPECT_DOUBLE_EQ(power.target[i], m.avg_power.as_watts());
        EXPECT_DOUBLE_EQ(time.target[i], m.exec_time.as_seconds());
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(Features, ToStringNames) {
  EXPECT_EQ(to_string(TargetKind::Power), "power");
  EXPECT_EQ(to_string(TargetKind::ExecTime), "exectime");
}

TEST(Features, EmptyDatasetRejected) {
  Dataset empty;
  empty.model = sim::GpuModel::GTX480;
  EXPECT_THROW(build_table(empty, TargetKind::Power), gppm::Error);
}

}  // namespace
}  // namespace gppm::core
