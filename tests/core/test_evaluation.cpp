#include "core/evaluation.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace gppm::core {
namespace {

const Dataset& dataset() {
  static const Dataset ds = build_dataset(sim::GpuModel::GTX680);
  return ds;
}

const UnifiedModel& model() {
  static const UnifiedModel m = UnifiedModel::fit(dataset(), TargetKind::Power);
  return m;
}

TEST(Evaluation, OneRowPerMeasurement) {
  const Evaluation eval = evaluate(model(), dataset());
  EXPECT_EQ(eval.rows.size(), dataset().row_count());
}

TEST(Evaluation, RowErrorMath) {
  RowError r;
  r.actual = 200.0;
  r.predicted = 150.0;
  EXPECT_DOUBLE_EQ(r.abs_error(), 50.0);
  EXPECT_DOUBLE_EQ(r.abs_percent_error(), 25.0);
}

TEST(Evaluation, RowErrorRejectsZeroActual) {
  RowError r;
  r.actual = 0.0;
  r.predicted = 1.0;
  EXPECT_THROW(r.abs_percent_error(), gppm::Error);
}

TEST(Evaluation, MapeIsMeanOfAbsPercentErrors) {
  const Evaluation eval = evaluate(model(), dataset());
  const auto errs = eval.abs_percent_errors();
  double acc = 0;
  for (double e : errs) acc += e;
  EXPECT_NEAR(eval.mape(), acc / errs.size(), 1e-9);
}

TEST(Evaluation, DistributionIsOrdered) {
  const Evaluation eval = evaluate(model(), dataset());
  const stats::FiveNumber f = eval.error_distribution();
  EXPECT_LE(f.whisker_lo, f.q1);
  EXPECT_LE(f.q1, f.median);
  EXPECT_LE(f.median, f.q3);
  EXPECT_LE(f.q3, f.whisker_hi);
  EXPECT_GE(f.whisker_lo, 0.0);
}

TEST(Evaluation, PairFilterRestrictsRows) {
  const sim::FrequencyPair hh = sim::kDefaultPair;
  const Evaluation eval = evaluate(model(), dataset(), &hh);
  EXPECT_EQ(eval.rows.size(), dataset().samples.size());
  for (const RowError& r : eval.rows) EXPECT_EQ(r.pair, hh);
}

TEST(Evaluation, PerBenchmarkErrorsCoverCorpus) {
  const Evaluation eval = evaluate(model(), dataset());
  const auto per_bench = per_benchmark_errors(eval, dataset());
  EXPECT_EQ(per_bench.size(), 33u);  // profiler-supported programs
  for (const BenchmarkError& b : per_bench) {
    EXPECT_GE(b.mean_abs_percent_error, 0.0);
    EXPECT_FALSE(b.benchmark.empty());
  }
}

TEST(Evaluation, ModelDatasetBoardMismatchRejected) {
  const Dataset other = build_dataset(sim::GpuModel::GTX285);
  EXPECT_THROW(evaluate(model(), other), gppm::Error);
}

TEST(Evaluation, InSampleFitBeatsInterceptOnly) {
  // The fitted model's in-sample absolute error must beat predicting the
  // global mean for every row.
  const Evaluation eval = evaluate(model(), dataset());
  double mean_actual = 0;
  for (const RowError& r : eval.rows) mean_actual += r.actual;
  mean_actual /= static_cast<double>(eval.rows.size());
  double mean_model_err = 0, mean_const_err = 0;
  for (const RowError& r : eval.rows) {
    mean_model_err += r.abs_error();
    mean_const_err += std::abs(r.actual - mean_actual);
  }
  EXPECT_LT(mean_model_err, mean_const_err);
}

}  // namespace
}  // namespace gppm::core
