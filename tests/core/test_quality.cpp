#include "core/quality.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

namespace gppm::core {
namespace {

constexpr double kPeriod = 0.05;  // the WT1600's 50 ms grid

// A delivered measurement whose samples sit on the 50 ms grid.  Pass the
// slot indices to drop to simulate a thinned channel (the timestamps of the
// surviving samples keep their original grid positions).
meter::Measurement make_measurement(const std::vector<double>& watts,
                                    const std::vector<std::size_t>& dropped = {}) {
  meter::Measurement m;
  m.duration = Duration::seconds(static_cast<double>(watts.size()) * kPeriod);
  double sum = 0.0;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < watts.size(); ++i) {
    bool drop = false;
    for (std::size_t d : dropped) drop = drop || d == i;
    if (drop) continue;
    m.samples.push_back({Duration::seconds(static_cast<double>(i + 1) * kPeriod),
                         Power::watts(watts[i])});
    sum += watts[i];
    ++kept;
  }
  m.average_power = Power::watts(kept > 0 ? sum / static_cast<double>(kept) : 0.0);
  m.energy = m.average_power * m.duration;
  return m;
}

ValidationOptions grid_options() {
  ValidationOptions o;
  o.sampling_period = Duration::seconds(kPeriod);
  return o;
}

TEST(Quality, CleanStreamIsReturnedBitIdentical) {
  std::vector<double> watts(20, 200.0);
  watts[3] = 200.1;  // quantization-scale wiggle must not be rejected
  watts[11] = 199.9;
  const meter::Measurement m = make_measurement(watts);
  const ValidatedRun v = validate_run(m, grid_options());
  ASSERT_TRUE(v.ok) << v.reason;
  EXPECT_EQ(v.rejected, 0u);
  EXPECT_EQ(v.imputed, 0u);
  ASSERT_EQ(v.cleaned.samples.size(), m.samples.size());
  for (std::size_t i = 0; i < m.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(v.cleaned.samples[i].power.as_watts(),
                     m.samples[i].power.as_watts());
  }
  EXPECT_DOUBLE_EQ(v.cleaned.energy.as_joules(), m.energy.as_joules());
  EXPECT_DOUBLE_EQ(v.cleaned.average_power.as_watts(),
                   m.average_power.as_watts());
}

TEST(Quality, SpikeIsRejectedAndImputedFromNeighbours) {
  std::vector<double> watts(20, 200.0);
  watts[7] = 600.0;  // 3x glitch, the faulty meter's spike shape
  const ValidatedRun v = validate_run(make_measurement(watts), grid_options());
  ASSERT_TRUE(v.ok) << v.reason;
  EXPECT_EQ(v.rejected, 1u);
  EXPECT_EQ(v.imputed, 1u);
  ASSERT_EQ(v.cleaned.samples.size(), 20u);
  EXPECT_NEAR(v.cleaned.samples[7].power.as_watts(), 200.0, 1e-9);
  EXPECT_NEAR(v.cleaned.average_power.as_watts(), 200.0, 1e-9);
}

TEST(Quality, BimodalPlateausAreNotRejected) {
  // A wall-power trace is bimodal (GPU-kernel vs host plateaus).  A global
  // median would reject one mode wholesale; the running median must keep
  // both plateaus untouched.
  std::vector<double> watts;
  for (int i = 0; i < 10; ++i) watts.push_back(120.0);
  for (int i = 0; i < 10; ++i) watts.push_back(260.0);
  const ValidatedRun v = validate_run(make_measurement(watts), grid_options());
  ASSERT_TRUE(v.ok) << v.reason;
  EXPECT_EQ(v.rejected, 0u);
  EXPECT_EQ(v.imputed, 0u);
}

TEST(Quality, DroppedSlotsAreImputedOnTheGrid) {
  // Slots 5 and 19 never arrive; the grid is rebuilt with both filled
  // (interior by interpolation, the trailing edge by nearest value).
  const std::vector<double> watts(20, 200.0);
  const ValidatedRun v =
      validate_run(make_measurement(watts, {5, 19}), grid_options());
  ASSERT_TRUE(v.ok) << v.reason;
  EXPECT_EQ(v.rejected, 0u);  // nothing was corrupted, just dropped
  EXPECT_EQ(v.imputed, 2u);
  ASSERT_EQ(v.cleaned.samples.size(), 20u);
  EXPECT_NEAR(v.cleaned.samples[5].power.as_watts(), 200.0, 1e-9);
  EXPECT_NEAR(v.cleaned.samples[19].power.as_watts(), 200.0, 1e-9);
  EXPECT_NEAR(v.cleaned.average_power.as_watts(), 200.0, 1e-9);
  EXPECT_NEAR(v.cleaned.duration.as_seconds(), 1.0, 1e-12);
}

TEST(Quality, InterpolationBridgesAGapLinearly) {
  // Steps around a dropped slot: neighbours at 100 W and 300 W, the imputed
  // slot must land on the line between them.
  std::vector<double> watts(20, 100.0);
  for (std::size_t i = 11; i < 20; ++i) watts[i] = 300.0;
  watts[10] = 200.0;  // will be dropped; linear bridge reproduces it
  const ValidatedRun v =
      validate_run(make_measurement(watts, {10}), grid_options());
  ASSERT_TRUE(v.ok) << v.reason;
  EXPECT_EQ(v.imputed, 1u);
  EXPECT_NEAR(v.cleaned.samples[10].power.as_watts(), 200.0, 1e-9);
}

TEST(Quality, TooFewSamplesIsInvalid) {
  const std::vector<double> watts(5, 200.0);  // below min_samples = 8
  const ValidatedRun v = validate_run(make_measurement(watts), grid_options());
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.reason.find("required samples"), std::string::npos);
}

TEST(Quality, ExcessiveImputationIsInvalid) {
  const std::vector<double> watts(20, 200.0);
  const ValidatedRun v = validate_run(
      make_measurement(watts, {1, 3, 5, 7, 9, 11, 13, 15}), grid_options());
  EXPECT_FALSE(v.ok);  // 8 of 20 slots = 40% > the 25% ceiling
  EXPECT_NE(v.reason.find("imputed fraction"), std::string::npos);
}

TEST(Quality, EmptyStreamIsInvalid) {
  meter::Measurement m;
  m.duration = Duration::seconds(1.0);
  const ValidatedRun v = validate_run(m, grid_options());
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.reason, "no samples delivered");
}

TEST(Quality, MoreSamplesThanGridSlotsIsInvalid) {
  // 20 samples claiming a 0.5 s run on a 50 ms grid (10 slots): the stream
  // contradicts the grid and cannot be trusted.
  meter::Measurement m = make_measurement(std::vector<double>(20, 200.0));
  m.duration = Duration::seconds(0.5);
  const ValidatedRun v = validate_run(m, grid_options());
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.reason.find("inconsistent"), std::string::npos);
}

TEST(Quality, InfersThePeriodWhenNotConfigured) {
  const ValidatedRun v = validate_run(
      make_measurement(std::vector<double>(20, 200.0)), ValidationOptions{});
  ASSERT_TRUE(v.ok) << v.reason;
  EXPECT_EQ(v.imputed, 0u);
}

TEST(Quality, ReportRendersByteStably) {
  QualityReport q;
  q.valid = true;
  q.attempts = 2;
  q.transient_faults = 1;
  q.samples_delivered = 18;
  q.samples_rejected = 1;
  q.samples_imputed = 2;
  q.backoff = Duration::milliseconds(12.5);
  EXPECT_EQ(q.to_string(),
            "valid attempts=2 faults=1 samples=18 rejected=1 imputed=2 "
            "backoff_ms=12.500");

  QualityReport missing;
  missing.attempts = 4;
  missing.transient_faults = 4;
  missing.failure = "retry budget exhausted";
  EXPECT_EQ(missing.to_string(),
            "missing attempts=4 faults=4 samples=0 rejected=0 imputed=0 "
            "backoff_ms=0.000 failure=\"retry budget exhausted\"");
}

}  // namespace
}  // namespace gppm::core
