#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/evaluation.hpp"

namespace gppm::core {
namespace {

const Dataset& dataset() {
  static const Dataset ds = build_dataset(sim::GpuModel::GTX480);
  return ds;
}

TEST(CrossValidation, CoversEveryRowExactlyOnce) {
  const Evaluation cv = cross_validate(dataset(), TargetKind::Power);
  EXPECT_EQ(cv.rows.size(), dataset().row_count());
  // Each sample index must appear exactly runs.size() times.
  std::map<std::size_t, std::size_t> counts;
  for (const RowError& r : cv.rows) counts[r.sample_index]++;
  for (std::size_t si = 0; si < dataset().samples.size(); ++si) {
    EXPECT_EQ(counts[si], dataset().samples[si].runs.size());
  }
}

TEST(CrossValidation, OutOfSampleErrorAtLeastInSample) {
  const UnifiedModel in_sample = UnifiedModel::fit(dataset(), TargetKind::Power);
  const double in_err = evaluate(in_sample, dataset()).mape();
  const double cv_err = cross_validate(dataset(), TargetKind::Power).mape();
  EXPECT_GE(cv_err, in_err * 0.9);  // CV cannot be dramatically better
}

TEST(CrossValidation, PerfModelGeneralizesWithinReason) {
  // The deployment question: for unseen benchmarks the error should grow
  // but stay in the same order of magnitude as in-sample.
  const UnifiedModel in_sample =
      UnifiedModel::fit(dataset(), TargetKind::ExecTime);
  const double in_err = evaluate(in_sample, dataset()).mape();
  const double cv_err = cross_validate(dataset(), TargetKind::ExecTime).mape();
  EXPECT_LT(cv_err, in_err * 6.0);
}

TEST(CrossValidation, WorksWithExtendedOptions) {
  ModelOptions opt;
  opt.scaling = FeatureScaling::VoltageSquaredFrequency;
  opt.include_baseline_terms = true;
  const Evaluation cv = cross_validate(dataset(), TargetKind::Power, opt);
  EXPECT_EQ(cv.rows.size(), dataset().row_count());
  EXPECT_GT(cv.mape(), 0.0);
}

TEST(CrossValidation, RejectsTinyCorpus) {
  Dataset tiny;
  tiny.model = dataset().model;
  tiny.samples.push_back(dataset().samples.front());
  EXPECT_THROW(cross_validate(tiny, TargetKind::Power), Error);
}

}  // namespace
}  // namespace gppm::core
