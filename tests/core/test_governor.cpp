#include "core/governor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace gppm::core {
namespace {

const Dataset& dataset() {
  static const Dataset ds = build_dataset(sim::GpuModel::GTX680);
  return ds;
}

UnifiedModel extended_power() {
  ModelOptions opt;
  opt.scaling = FeatureScaling::VoltageSquaredFrequency;
  opt.include_baseline_terms = true;
  return UnifiedModel::fit(dataset(), TargetKind::Power, opt);
}

UnifiedModel perf_model() {
  return UnifiedModel::fit(dataset(), TargetKind::ExecTime);
}

const profiler::ProfileResult& counters_of(const std::string& bench) {
  for (const Sample& s : dataset().samples) {
    if (s.benchmark == bench && s.size_index == 0) return s.counters;
  }
  throw Error("benchmark not in corpus: " + bench);
}

TEST(Governor, ConstructionValidatesModels) {
  EXPECT_THROW(DvfsGovernor(perf_model(), perf_model()), Error);
  EXPECT_NO_THROW(DvfsGovernor(extended_power(), perf_model()));
}

TEST(Governor, MinEnergyDecisionMatchesOptimizer) {
  GovernorOptions opt;
  opt.switch_threshold = 0.0;  // no hysteresis: pure argmin
  const UnifiedModel power = extended_power();
  const UnifiedModel perf = perf_model();
  DvfsGovernor governor(power, perf, opt);
  const auto& c = counters_of("sgemm");
  EXPECT_EQ(governor.decide(c), predict_min_energy_pair(power, perf, c));
}

TEST(Governor, EdpPolicyPrefersFasterPairsThanEnergyPolicy) {
  // EDP weighs time quadratically: across the corpus the EDP policy must
  // never pick a slower predicted pair than the energy policy does.
  GovernorOptions energy_opt;
  energy_opt.switch_threshold = 0.0;
  GovernorOptions edp_opt = energy_opt;
  edp_opt.policy = GovernorPolicy::MinimumEdp;
  const UnifiedModel power = extended_power();
  const UnifiedModel perf = perf_model();
  DvfsGovernor energy(power, perf, energy_opt);
  DvfsGovernor edp(power, perf, edp_opt);

  for (const Sample& s : dataset().samples) {
    const sim::FrequencyPair pe = energy.decide(s.counters);
    const sim::FrequencyPair pd = edp.decide(s.counters);
    double te = 0, td = 0;
    for (const PairPrediction& p : predict_all_pairs(power, perf, s.counters)) {
      if (p.pair == pe) te = p.predicted_time_seconds;
      if (p.pair == pd) td = p.predicted_time_seconds;
    }
    EXPECT_LE(td, te + 1e-12);
  }
}

TEST(Governor, PowerCapRespectedWhenFeasible) {
  GovernorOptions opt;
  opt.policy = GovernorPolicy::PowerCap;
  opt.power_cap = Power::watts(150.0);
  opt.switch_threshold = 0.0;
  const UnifiedModel power = extended_power();
  const UnifiedModel perf = perf_model();
  DvfsGovernor governor(power, perf, opt);
  const auto& c = counters_of("lbm");
  const sim::FrequencyPair pick = governor.decide(c);
  EXPECT_LE(power.predict(c, pick), 150.0 + 1e-9);
}

TEST(Governor, ImpossibleCapFallsBackToMinPower) {
  GovernorOptions opt;
  opt.policy = GovernorPolicy::PowerCap;
  opt.power_cap = Power::watts(1.0);  // nothing fits
  opt.switch_threshold = 0.0;
  const UnifiedModel power = extended_power();
  const UnifiedModel perf = perf_model();
  DvfsGovernor governor(power, perf, opt);
  const auto& c = counters_of("lbm");
  const sim::FrequencyPair pick = governor.decide(c);
  // Fallback is the minimum-predicted-power pair.
  double min_power = 1e300;
  sim::FrequencyPair min_pair{};
  for (const PairPrediction& p : predict_all_pairs(power, perf, c)) {
    if (p.predicted_power_watts < min_power) {
      min_power = p.predicted_power_watts;
      min_pair = p.pair;
    }
  }
  EXPECT_EQ(pick, min_pair);
}

TEST(Governor, HysteresisSuppressesMarginalSwitches) {
  const UnifiedModel power = extended_power();
  const UnifiedModel perf = perf_model();
  GovernorOptions eager;
  eager.switch_threshold = 0.0;
  GovernorOptions sticky;
  sticky.switch_threshold = 0.5;  // only move for a 50% predicted gain
  DvfsGovernor g_eager(power, perf, eager);
  DvfsGovernor g_sticky(power, perf, sticky);
  for (const Sample& s : dataset().samples) {
    g_eager.decide(s.counters);
    g_sticky.decide(s.counters);
  }
  EXPECT_LE(g_sticky.switch_count(), g_eager.switch_count());
  EXPECT_EQ(g_eager.decision_count(), 114);
}

TEST(Governor, HysteresisBoundaryHoldsBelowAndSwitchesAbove) {
  const UnifiedModel power = extended_power();
  const UnifiedModel perf = perf_model();
  GovernorOptions probe_opt;
  probe_opt.switch_threshold = 0.0;
  DvfsGovernor probe(power, perf, probe_opt);

  // Find a phase whose best pair differs from the kDefaultPair incumbent and
  // measure the predicted fractional benefit of switching to it.
  const profiler::ProfileResult* phase = nullptr;
  sim::FrequencyPair best_pair{};
  double benefit = 0.0;
  for (const Sample& s : dataset().samples) {
    double best = std::numeric_limits<double>::infinity();
    double incumbent = std::numeric_limits<double>::infinity();
    sim::FrequencyPair arg{};
    for (const PairPrediction& p : predict_all_pairs(power, perf, s.counters)) {
      const double obj = probe.objective(p);
      if (obj < best) {
        best = obj;
        arg = p.pair;
      }
      if (p.pair == sim::kDefaultPair) incumbent = obj;
    }
    if (!(arg == sim::kDefaultPair)) {
      phase = &s.counters;
      best_pair = arg;
      benefit = 1.0 - best / incumbent;
      break;
    }
  }
  ASSERT_NE(phase, nullptr) << "corpus has no phase favoring a non-default pair";
  ASSERT_GT(benefit, 0.0);
  const double eps = std::min(1e-6, benefit * 0.5);

  // Threshold just above the predicted benefit: the governor must hold the
  // incumbent pair.
  GovernorOptions hold_opt;
  hold_opt.switch_threshold = benefit + eps;
  DvfsGovernor holds(power, perf, hold_opt);
  EXPECT_EQ(holds.decide(*phase), sim::kDefaultPair);
  EXPECT_EQ(holds.switch_count(), 0);

  // Threshold just below the benefit: the governor must switch.
  GovernorOptions move_opt;
  move_opt.switch_threshold = benefit - eps;
  DvfsGovernor moves(power, perf, move_opt);
  EXPECT_EQ(moves.decide(*phase), best_pair);
  EXPECT_EQ(moves.switch_count(), 1);
}

TEST(Governor, ResetClearsState) {
  DvfsGovernor governor(extended_power(), perf_model());
  governor.decide(counters_of("sgemm"));
  governor.reset();
  EXPECT_EQ(governor.current_pair(), sim::kDefaultPair);
  EXPECT_EQ(governor.switch_count(), 0);
  EXPECT_EQ(governor.decision_count(), 0);
}

TEST(Governor, PolicyNames) {
  EXPECT_EQ(to_string(GovernorPolicy::MinimumEnergy), "min-energy");
  EXPECT_EQ(to_string(GovernorPolicy::MinimumEdp), "min-edp");
  EXPECT_EQ(to_string(GovernorPolicy::PowerCap), "power-cap");
}

}  // namespace
}  // namespace gppm::core
