// Tests for the library extensions beyond the paper's model form:
// voltage-aware (V^2 f) power features and per-domain baseline terms.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/evaluation.hpp"
#include "core/optimizer.hpp"
#include "core/unified_model.hpp"

namespace gppm::core {
namespace {

const Dataset& dataset() {
  static const Dataset ds = build_dataset(sim::GpuModel::GTX680);
  return ds;
}

TEST(FeatureScalingExt, VoltageAwarePowerFeatureScalesByVSquared) {
  const sim::DeviceSpec& spec = sim::device_spec(sim::GpuModel::GTX680);
  profiler::CounterReading r;
  r.name = "c";
  r.klass = profiler::EventClass::Core;
  r.total = 100.0;
  r.per_second = 10.0;
  const sim::FrequencyPair mh{sim::ClockLevel::Medium, sim::ClockLevel::High};
  const double f_only =
      feature_value(r, mh, spec, TargetKind::Power, FeatureScaling::FrequencyOnly);
  const double v2f = feature_value(r, mh, spec, TargetKind::Power,
                                   FeatureScaling::VoltageSquaredFrequency);
  EXPECT_NEAR(v2f / f_only,
              spec.core_clock.voltage_sq_ratio(sim::ClockLevel::Medium), 1e-12);
}

TEST(FeatureScalingExt, TimeFeaturesUnaffectedByVoltageMode) {
  const sim::DeviceSpec& spec = sim::device_spec(sim::GpuModel::GTX680);
  profiler::CounterReading r;
  r.name = "c";
  r.klass = profiler::EventClass::Memory;
  r.total = 100.0;
  r.per_second = 10.0;
  const sim::FrequencyPair hm{sim::ClockLevel::High, sim::ClockLevel::Medium};
  EXPECT_DOUBLE_EQ(
      feature_value(r, hm, spec, TargetKind::ExecTime,
                    FeatureScaling::FrequencyOnly),
      feature_value(r, hm, spec, TargetKind::ExecTime,
                    FeatureScaling::VoltageSquaredFrequency));
}

TEST(FeatureScalingExt, ToStringNames) {
  EXPECT_EQ(to_string(FeatureScaling::FrequencyOnly), "f");
  EXPECT_EQ(to_string(FeatureScaling::VoltageSquaredFrequency), "V^2*f");
}

TEST(BaselineTermsExt, ReadingHasUnitRate) {
  const auto core = baseline_reading(profiler::EventClass::Core);
  EXPECT_EQ(core.name, kBaselineCoreFeature);
  EXPECT_EQ(core.klass, profiler::EventClass::Core);
  EXPECT_EQ(core.total, 1.0);
  EXPECT_EQ(core.per_second, 1.0);
  const auto mem = baseline_reading(profiler::EventClass::Memory);
  EXPECT_EQ(mem.name, kBaselineMemFeature);
  EXPECT_EQ(mem.klass, profiler::EventClass::Memory);
}

TEST(BaselineTermsExt, TableGainsTwoColumns) {
  const RegressionTable base = build_table(dataset(), TargetKind::Power);
  const RegressionTable ext =
      build_table(dataset(), TargetKind::Power, nullptr,
                  FeatureScaling::FrequencyOnly, /*baseline=*/true);
  EXPECT_EQ(ext.features.cols(), base.features.cols() + 2);
  EXPECT_EQ(ext.feature_names[ext.feature_names.size() - 2],
            kBaselineCoreFeature);
  EXPECT_EQ(ext.feature_names.back(), kBaselineMemFeature);
  // Baseline power feature of a row equals the domain frequency in GHz.
  const sim::DeviceSpec& spec = sim::device_spec(sim::GpuModel::GTX680);
  for (std::size_t i = 0; i < ext.rows.size(); ++i) {
    EXPECT_NEAR(ext.features(i, base.features.cols()),
                spec.core_clock.at(ext.rows[i].pair.core).frequency.as_ghz(),
                1e-12);
  }
}

TEST(BaselineTermsExt, ExtendedModelPredictsAndImprovesPowerError) {
  const UnifiedModel paper = UnifiedModel::fit(dataset(), TargetKind::Power);
  ModelOptions opt;
  opt.scaling = FeatureScaling::VoltageSquaredFrequency;
  opt.include_baseline_terms = true;
  const UnifiedModel extended =
      UnifiedModel::fit(dataset(), TargetKind::Power, opt);
  EXPECT_EQ(extended.scaling(), FeatureScaling::VoltageSquaredFrequency);

  // predict() must work even when baseline pseudo-features were selected.
  const Sample& s = dataset().samples.front();
  EXPECT_GT(extended.predict(s.counters, sim::kDefaultPair), 0.0);

  const double err_paper = evaluate(paper, dataset()).mape();
  const double err_ext = evaluate(extended, dataset()).mape();
  EXPECT_LT(err_ext, err_paper);
}

TEST(BaselineTermsExt, ExtendedModelsEnableDvfsSavings) {
  // The A4 ablation's headline as a guardrail: with V^2 f + baseline
  // features, model-driven pair selection recovers most of the oracle
  // saving on the Kepler board.
  ModelOptions opt;
  opt.scaling = FeatureScaling::VoltageSquaredFrequency;
  opt.include_baseline_terms = true;
  const UnifiedModel power = UnifiedModel::fit(dataset(), TargetKind::Power, opt);
  const UnifiedModel perf = UnifiedModel::fit(dataset(), TargetKind::ExecTime);

  double chosen = 0, def = 0, oracle = 0;
  for (const Sample& s : dataset().samples) {
    const sim::FrequencyPair pick = predict_min_energy_pair(power, perf, s.counters);
    double best = 1e300;
    for (const Measurement& m : s.runs) {
      const double e = m.energy.as_joules();
      if (m.pair == pick) chosen += e;
      if (m.pair == sim::kDefaultPair) def += e;
      best = std::min(best, e);
    }
    oracle += best;
  }
  const double capture = (def - chosen) / (def - oracle);
  EXPECT_GT(capture, 0.5);
}

}  // namespace
}  // namespace gppm::core
