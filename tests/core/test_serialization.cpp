#include "core/serialization.hpp"

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/evaluation.hpp"
#include "gpusim/device_spec.hpp"
#include "profiler/counters.hpp"

namespace gppm::core {
namespace {

const Dataset& dataset() {
  static const Dataset ds = build_dataset(sim::GpuModel::GTX460);
  return ds;
}

const UnifiedModel& model() {
  static const UnifiedModel m = UnifiedModel::fit(dataset(), TargetKind::Power);
  return m;
}

TEST(Serialization, RoundTripPreservesMetadata) {
  const UnifiedModel loaded = deserialize_model(serialize_model(model()));
  EXPECT_EQ(loaded.gpu(), model().gpu());
  EXPECT_EQ(loaded.target(), model().target());
  EXPECT_EQ(loaded.scaling(), model().scaling());
  EXPECT_DOUBLE_EQ(loaded.intercept(), model().intercept());
  EXPECT_DOUBLE_EQ(loaded.adjusted_r2(), model().adjusted_r2());
  ASSERT_EQ(loaded.variables().size(), model().variables().size());
  for (std::size_t i = 0; i < loaded.variables().size(); ++i) {
    EXPECT_EQ(loaded.variables()[i].counter, model().variables()[i].counter);
    EXPECT_DOUBLE_EQ(loaded.variables()[i].coefficient,
                     model().variables()[i].coefficient);
  }
}

TEST(Serialization, RoundTripPredictionsIdentical) {
  const UnifiedModel loaded = deserialize_model(serialize_model(model()));
  for (const Sample& s : dataset().samples) {
    for (const Measurement& m : s.runs) {
      EXPECT_DOUBLE_EQ(loaded.predict(s.counters, m.pair),
                       model().predict(s.counters, m.pair));
    }
  }
}

TEST(Serialization, RoundTripExtendedModel) {
  ModelOptions opt;
  opt.scaling = FeatureScaling::VoltageSquaredFrequency;
  opt.include_baseline_terms = true;
  const UnifiedModel ext = UnifiedModel::fit(dataset(), TargetKind::Power, opt);
  const UnifiedModel loaded = deserialize_model(serialize_model(ext));
  EXPECT_EQ(loaded.scaling(), FeatureScaling::VoltageSquaredFrequency);
  const Sample& s = dataset().samples.front();
  EXPECT_DOUBLE_EQ(loaded.predict(s.counters, sim::kDefaultPair),
                   ext.predict(s.counters, sim::kDefaultPair));
}

TEST(Serialization, PerfModelRoundTrips) {
  const UnifiedModel perf = UnifiedModel::fit(dataset(), TargetKind::ExecTime);
  const UnifiedModel loaded = deserialize_model(serialize_model(perf));
  EXPECT_EQ(loaded.target(), TargetKind::ExecTime);
  const Sample& s = dataset().samples.back();
  EXPECT_DOUBLE_EQ(loaded.predict(s.counters, s.runs.front().pair),
                   perf.predict(s.counters, s.runs.front().pair));
}

TEST(Serialization, RandomModelsRoundTripExactly) {
  // Fuzz-ish sweep: every board, both targets, both scalings, 0-10 randomly
  // chosen catalog variables with coefficients spanning 24 decades and both
  // signs.  The hex-float serialization contract promises *exact* recovery.
  Rng rng(20260807);
  const auto coefficient = [&rng] {
    const double magnitude = std::pow(10.0, rng.uniform(-12.0, 12.0));
    return (rng.uniform() < 0.5 ? -magnitude : magnitude) *
           rng.uniform(0.5, 1.5);
  };
  for (sim::GpuModel gpu : sim::kAllGpus) {
    const auto& catalog =
        profiler::counter_catalog(sim::device_spec(gpu).architecture);
    for (TargetKind target : {TargetKind::Power, TargetKind::ExecTime}) {
      for (FeatureScaling scaling :
           {FeatureScaling::FrequencyOnly,
            FeatureScaling::VoltageSquaredFrequency}) {
        for (int iter = 0; iter < 6; ++iter) {
          UnifiedModel::Parts parts;
          parts.gpu = gpu;
          parts.target = target;
          parts.scaling = scaling;
          parts.intercept = coefficient();
          parts.adjusted_r2 = rng.uniform(-1.0, 1.0);
          const std::size_t nvars = rng.uniform_index(11);  // 0..10 variables
          std::vector<std::size_t> pool(catalog.size());
          std::iota(pool.begin(), pool.end(), std::size_t{0});
          for (std::size_t v = 0; v < nvars; ++v) {
            // Partial Fisher-Yates: distinct catalog indices.
            std::swap(pool[v], pool[v + rng.uniform_index(pool.size() - v)]);
            const std::size_t idx = pool[v];
            SelectedVariable var;
            var.counter = catalog[idx].name;
            var.klass = catalog[idx].klass;
            var.coefficient = coefficient();
            var.cumulative_adjusted_r2 = rng.uniform();
            parts.variables.push_back(var);
            parts.counter_indices.push_back(idx);
          }
          const UnifiedModel original = UnifiedModel::from_parts(parts);
          const UnifiedModel loaded =
              deserialize_model(serialize_model(original));
          EXPECT_EQ(loaded.gpu(), gpu);
          EXPECT_EQ(loaded.target(), target);
          EXPECT_EQ(loaded.scaling(), scaling);
          EXPECT_EQ(loaded.intercept(), original.intercept());
          EXPECT_EQ(loaded.adjusted_r2(), original.adjusted_r2());
          ASSERT_EQ(loaded.variables().size(), nvars);
          for (std::size_t v = 0; v < nvars; ++v) {
            EXPECT_EQ(loaded.variables()[v].counter,
                      original.variables()[v].counter);
            EXPECT_EQ(loaded.variables()[v].klass,
                      original.variables()[v].klass);
            EXPECT_EQ(loaded.variables()[v].coefficient,
                      original.variables()[v].coefficient);
            EXPECT_EQ(loaded.variables()[v].cumulative_adjusted_r2,
                      original.variables()[v].cumulative_adjusted_r2);
          }
          // Serialized text is stable across a round-trip, which is what
          // makes core::model_fingerprint a usable cache key.
          EXPECT_EQ(serialize_model(loaded), serialize_model(original));
        }
      }
    }
  }
}

/// A hand-built model whose every double has a short exact hexfloat, plus
/// the exact bytes serialize_model must emit for it.
UnifiedModel golden_model() {
  UnifiedModel::Parts parts;
  parts.gpu = sim::GpuModel::GTX460;
  parts.target = TargetKind::Power;
  parts.scaling = FeatureScaling::FrequencyOnly;
  parts.intercept = 42.5;      // 0x1.54p+5
  parts.adjusted_r2 = 0.875;   // 0x1.cp-1
  SelectedVariable v0;
  v0.counter = "inst_issued";
  v0.klass = profiler::EventClass::Core;
  v0.coefficient = -0.15625;   // -0x1.4p-3
  v0.cumulative_adjusted_r2 = 0.5;
  SelectedVariable v1;
  v1.counter = "inst_executed";
  v1.klass = profiler::EventClass::Core;
  v1.coefficient = 1024.0;     // 0x1p+10
  v1.cumulative_adjusted_r2 = 0.75;
  parts.variables = {v0, v1};
  parts.counter_indices = {0, 1};
  return UnifiedModel::from_parts(std::move(parts));
}

constexpr const char* kGoldenBytes =
    "gppm-model 1\n"
    "gpu GTX460\n"
    "target power\n"
    "scaling f\n"
    "intercept 0x1.54p+5\n"
    "adjusted_r2 0x1.cp-1\n"
    "var inst_issued core 0 -0x1.4p-3 0x1p-1\n"
    "var inst_executed core 1 0x1p+10 0x1.8p-1\n"
    "end\n";

// Pins the on-disk/wire format byte for byte.  This text is what
// model_fingerprint hashes and what net/protocol ships; if this test
// breaks, every stored model file and fingerprint breaks with it — bump
// the format version instead of editing the expectation.
TEST(Serialization, GoldenBytesPinned) {
  EXPECT_EQ(serialize_model(golden_model()), kGoldenBytes);
  // The fingerprint is the FNV-1a hash of exactly these bytes.
  EXPECT_EQ(model_fingerprint(golden_model()), fnv1a(kGoldenBytes));
  // And the bytes deserialize back to a model that re-serializes
  // identically.
  EXPECT_EQ(serialize_model(deserialize_model(kGoldenBytes)), kGoldenBytes);
}

// The encoding must not depend on the process locale: a comma-radix locale
// flips printf("%a")/std::stod output, which is exactly why the codec does
// its own formatting.  Skipped when no such locale is installed.
TEST(Serialization, LocaleIndependentBytes) {
  const char* applied = std::setlocale(LC_NUMERIC, "de_DE.UTF-8");
  if (applied == nullptr) applied = std::setlocale(LC_NUMERIC, "fr_FR.UTF-8");
  if (applied == nullptr) GTEST_SKIP() << "no comma-radix locale installed";
  const std::string text = serialize_model(golden_model());
  const std::string reparsed = serialize_model(deserialize_model(text));
  std::setlocale(LC_NUMERIC, "C");
  EXPECT_EQ(text, kGoldenBytes);
  EXPECT_EQ(reparsed, kGoldenBytes);
}

TEST(Serialization, RejectsNonHexfloatNumbers) {
  std::string text = serialize_model(model());
  // A decimal-looking intercept is out of contract now that the parser is
  // locale-free hexfloat only.
  const std::size_t pos = text.find("intercept ");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t eol = text.find('\n', pos);
  text.replace(pos, eol - pos, "intercept 1.25");
  EXPECT_THROW(deserialize_model(text), Error);
}

TEST(Serialization, RejectsGarbage) {
  EXPECT_THROW(deserialize_model("not a model"), Error);
  EXPECT_THROW(deserialize_model(""), Error);
}

TEST(Serialization, RejectsTruncatedFile) {
  std::string text = serialize_model(model());
  text.resize(text.size() - 5);  // cut off "end\n"
  EXPECT_THROW(deserialize_model(text), Error);
}

TEST(Serialization, RejectsUnknownField) {
  std::string text = serialize_model(model());
  text.insert(text.find("intercept"), "bogus 1\n");
  EXPECT_THROW(deserialize_model(text), Error);
}

TEST(Serialization, RejectsWrongVersion) {
  std::string text = serialize_model(model());
  text.replace(text.find("gppm-model 1"), 12, "gppm-model 9");
  EXPECT_THROW(deserialize_model(text), Error);
}

TEST(Serialization, RejectsCounterIndexMismatch) {
  // Corrupt a var line's index so it no longer matches the counter name.
  std::string text = serialize_model(model());
  const std::size_t var_pos = text.find("\nvar ");
  ASSERT_NE(var_pos, std::string::npos);
  // Find the index token (third field after "var").
  std::istringstream in(text.substr(var_pos + 1));
  std::string kw, name, klass, idx;
  in >> kw >> name >> klass >> idx;
  const std::string needle = kw + " " + name + " " + klass + " " + idx;
  const std::string bogus = kw + " " + name + " " + klass + " " +
                            std::to_string(std::stoul(idx) == 0 ? 1 : 0);
  text.replace(text.find(needle), needle.size(), bogus);
  EXPECT_THROW(deserialize_model(text), Error);
}

}  // namespace
}  // namespace gppm::core
