#include "core/serialization.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/evaluation.hpp"

namespace gppm::core {
namespace {

const Dataset& dataset() {
  static const Dataset ds = build_dataset(sim::GpuModel::GTX460);
  return ds;
}

const UnifiedModel& model() {
  static const UnifiedModel m = UnifiedModel::fit(dataset(), TargetKind::Power);
  return m;
}

TEST(Serialization, RoundTripPreservesMetadata) {
  const UnifiedModel loaded = deserialize_model(serialize_model(model()));
  EXPECT_EQ(loaded.gpu(), model().gpu());
  EXPECT_EQ(loaded.target(), model().target());
  EXPECT_EQ(loaded.scaling(), model().scaling());
  EXPECT_DOUBLE_EQ(loaded.intercept(), model().intercept());
  EXPECT_DOUBLE_EQ(loaded.adjusted_r2(), model().adjusted_r2());
  ASSERT_EQ(loaded.variables().size(), model().variables().size());
  for (std::size_t i = 0; i < loaded.variables().size(); ++i) {
    EXPECT_EQ(loaded.variables()[i].counter, model().variables()[i].counter);
    EXPECT_DOUBLE_EQ(loaded.variables()[i].coefficient,
                     model().variables()[i].coefficient);
  }
}

TEST(Serialization, RoundTripPredictionsIdentical) {
  const UnifiedModel loaded = deserialize_model(serialize_model(model()));
  for (const Sample& s : dataset().samples) {
    for (const Measurement& m : s.runs) {
      EXPECT_DOUBLE_EQ(loaded.predict(s.counters, m.pair),
                       model().predict(s.counters, m.pair));
    }
  }
}

TEST(Serialization, RoundTripExtendedModel) {
  ModelOptions opt;
  opt.scaling = FeatureScaling::VoltageSquaredFrequency;
  opt.include_baseline_terms = true;
  const UnifiedModel ext = UnifiedModel::fit(dataset(), TargetKind::Power, opt);
  const UnifiedModel loaded = deserialize_model(serialize_model(ext));
  EXPECT_EQ(loaded.scaling(), FeatureScaling::VoltageSquaredFrequency);
  const Sample& s = dataset().samples.front();
  EXPECT_DOUBLE_EQ(loaded.predict(s.counters, sim::kDefaultPair),
                   ext.predict(s.counters, sim::kDefaultPair));
}

TEST(Serialization, PerfModelRoundTrips) {
  const UnifiedModel perf = UnifiedModel::fit(dataset(), TargetKind::ExecTime);
  const UnifiedModel loaded = deserialize_model(serialize_model(perf));
  EXPECT_EQ(loaded.target(), TargetKind::ExecTime);
  const Sample& s = dataset().samples.back();
  EXPECT_DOUBLE_EQ(loaded.predict(s.counters, s.runs.front().pair),
                   perf.predict(s.counters, s.runs.front().pair));
}

TEST(Serialization, RejectsGarbage) {
  EXPECT_THROW(deserialize_model("not a model"), Error);
  EXPECT_THROW(deserialize_model(""), Error);
}

TEST(Serialization, RejectsTruncatedFile) {
  std::string text = serialize_model(model());
  text.resize(text.size() - 5);  // cut off "end\n"
  EXPECT_THROW(deserialize_model(text), Error);
}

TEST(Serialization, RejectsUnknownField) {
  std::string text = serialize_model(model());
  text.insert(text.find("intercept"), "bogus 1\n");
  EXPECT_THROW(deserialize_model(text), Error);
}

TEST(Serialization, RejectsWrongVersion) {
  std::string text = serialize_model(model());
  text.replace(text.find("gppm-model 1"), 12, "gppm-model 9");
  EXPECT_THROW(deserialize_model(text), Error);
}

TEST(Serialization, RejectsCounterIndexMismatch) {
  // Corrupt a var line's index so it no longer matches the counter name.
  std::string text = serialize_model(model());
  const std::size_t var_pos = text.find("\nvar ");
  ASSERT_NE(var_pos, std::string::npos);
  // Find the index token (third field after "var").
  std::istringstream in(text.substr(var_pos + 1));
  std::string kw, name, klass, idx;
  in >> kw >> name >> klass >> idx;
  const std::string needle = kw + " " + name + " " + klass + " " + idx;
  const std::string bogus = kw + " " + name + " " + klass + " " +
                            std::to_string(std::stoul(idx) == 0 ? 1 : 0);
  text.replace(text.find(needle), needle.size(), bogus);
  EXPECT_THROW(deserialize_model(text), Error);
}

}  // namespace
}  // namespace gppm::core
