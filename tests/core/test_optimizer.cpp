#include "core/optimizer.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/evaluation.hpp"
#include "dvfs/combos.hpp"

namespace gppm::core {
namespace {

const Dataset& dataset() {
  static const Dataset ds = build_dataset(sim::GpuModel::GTX680);
  return ds;
}

const UnifiedModel& power_model() {
  static const UnifiedModel m = UnifiedModel::fit(dataset(), TargetKind::Power);
  return m;
}

const UnifiedModel& perf_model() {
  static const UnifiedModel m =
      UnifiedModel::fit(dataset(), TargetKind::ExecTime);
  return m;
}

const profiler::ProfileResult& sample_counters() {
  return dataset().samples.front().counters;
}

TEST(Optimizer, PredictsEveryConfigurablePair) {
  const auto preds =
      predict_all_pairs(power_model(), perf_model(), sample_counters());
  EXPECT_EQ(preds.size(),
            dvfs::configurable_pairs(sim::GpuModel::GTX680).size());
  for (const PairPrediction& p : preds) {
    EXPECT_GT(p.predicted_power_watts, 0.0);
    EXPECT_GT(p.predicted_time_seconds, 0.0);
    EXPECT_NEAR(p.predicted_energy_joules,
                p.predicted_power_watts * p.predicted_time_seconds, 1e-9);
  }
}

TEST(Optimizer, MinEnergyPairIsArgmin) {
  const auto preds =
      predict_all_pairs(power_model(), perf_model(), sample_counters());
  const sim::FrequencyPair best =
      predict_min_energy_pair(power_model(), perf_model(), sample_counters());
  double best_energy = 0;
  for (const PairPrediction& p : preds) {
    if (p.pair == best) best_energy = p.predicted_energy_joules;
  }
  for (const PairPrediction& p : preds) {
    EXPECT_GE(p.predicted_energy_joules, best_energy - 1e-12);
  }
}

TEST(Optimizer, CapSelectsFastestFeasible) {
  const auto preds =
      predict_all_pairs(power_model(), perf_model(), sample_counters());
  // Use the median predicted power as a binding cap.
  std::vector<double> powers;
  for (const auto& p : preds) powers.push_back(p.predicted_power_watts);
  std::sort(powers.begin(), powers.end());
  const Power cap = Power::watts(powers[powers.size() / 2]);

  const sim::FrequencyPair pick = fastest_pair_under_cap(
      power_model(), perf_model(), sample_counters(), cap);
  double pick_time = 0, pick_power = 0;
  for (const auto& p : preds) {
    if (p.pair == pick) {
      pick_time = p.predicted_time_seconds;
      pick_power = p.predicted_power_watts;
    }
  }
  EXPECT_LE(pick_power, cap.as_watts());
  for (const auto& p : preds) {
    if (p.predicted_power_watts <= cap.as_watts()) {
      EXPECT_GE(p.predicted_time_seconds, pick_time - 1e-12);
    }
  }
}

TEST(Optimizer, ImpossibleCapThrows) {
  EXPECT_THROW(fastest_pair_under_cap(power_model(), perf_model(),
                                      sample_counters(), Power::watts(0.5)),
               gppm::Error);
}

TEST(Optimizer, RejectsSwappedModels) {
  EXPECT_THROW(
      predict_all_pairs(perf_model(), power_model(), sample_counters()),
      gppm::Error);
}

TEST(Optimizer, RejectsMismatchedBoards) {
  static const Dataset other = build_dataset(sim::GpuModel::GTX285);
  static const UnifiedModel other_perf =
      UnifiedModel::fit(other, TargetKind::ExecTime);
  EXPECT_THROW(predict_all_pairs(power_model(), other_perf, sample_counters()),
               gppm::Error);
}

TEST(Optimizer, ModelDrivenChoiceBeatsWorstPairOnAverage) {
  // Across the corpus, picking the model-predicted minimum-energy pair must
  // yield lower *measured* energy than the measured-worst pair, and should
  // recover a good share of the oracle's savings.
  const Dataset& ds = dataset();
  double chosen = 0, worst = 0, oracle = 0;
  for (const Sample& s : ds.samples) {
    const sim::FrequencyPair pick =
        predict_min_energy_pair(power_model(), perf_model(), s.counters);
    double pick_e = 0, worst_e = 0, best_e = 1e300;
    for (const Measurement& m : s.runs) {
      const double e = m.energy.as_joules();
      if (m.pair == pick) pick_e = e;
      worst_e = std::max(worst_e, e);
      best_e = std::min(best_e, e);
    }
    chosen += pick_e;
    worst += worst_e;
    oracle += best_e;
  }
  EXPECT_LT(chosen, worst);
  EXPECT_GE(chosen, oracle - 1e-9);
}

}  // namespace
}  // namespace gppm::core
