#include "core/runner.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "fault/injector.hpp"
#include "workload/suite.hpp"

namespace gppm::core {
namespace {

const workload::BenchmarkDef& quick_bench() {
  return workload::find_benchmark("nn");  // smallest GPU time in the suite
}

TEST(Runner, MeasurementFieldsAreConsistent) {
  MeasurementRunner runner(sim::GpuModel::GTX480);
  const Measurement m = runner.measure(quick_bench(), 0, sim::kDefaultPair);
  EXPECT_GT(m.exec_time.as_seconds(), 0.0);
  EXPECT_GT(m.avg_power.as_watts(), 0.0);
  EXPECT_NEAR(m.energy.as_joules(),
              m.avg_power.as_watts() * m.exec_time.as_seconds(), 1e-6);
  EXPECT_NEAR(m.power_efficiency(), 1.0 / m.energy.as_joules(), 1e-15);
  EXPECT_NEAR(m.performance(), 1.0 / m.exec_time.as_seconds(), 1e-15);
}

TEST(Runner, DeterministicAcrossRunners) {
  RunnerOptions opt;
  opt.seed = 99;
  MeasurementRunner a(sim::GpuModel::GTX680, opt);
  MeasurementRunner b(sim::GpuModel::GTX680, opt);
  const Measurement ma = a.measure(quick_bench(), 1, sim::kDefaultPair);
  const Measurement mb = b.measure(quick_bench(), 1, sim::kDefaultPair);
  EXPECT_DOUBLE_EQ(ma.exec_time.as_seconds(), mb.exec_time.as_seconds());
  EXPECT_DOUBLE_EQ(ma.energy.as_joules(), mb.energy.as_joules());
}

TEST(Runner, RepetitionRuleExtendsShortRuns) {
  // `nn` at size 0 has a tiny GPU portion; the prepared profile must carry
  // enough launches for the run to exceed 500 ms.
  MeasurementRunner runner(sim::GpuModel::GTX680);
  const sim::RunProfile prepared = runner.prepared_profile(quick_bench(), 0);
  runner.gpu().set_frequency_pair(sim::kDefaultPair);
  const sim::RunExecution exec = runner.gpu().run(prepared);
  EXPECT_GE(exec.total_time.as_seconds(), 0.5);
}

TEST(Runner, RepetitionFactorSharedAcrossPairs) {
  // The factor must be decided once per (benchmark, size): identical kernel
  // launch counts at every operating point.
  MeasurementRunner runner(sim::GpuModel::GTX460);
  const sim::RunProfile p1 = runner.prepared_profile(quick_bench(), 0);
  runner.measure(quick_bench(), 0,
                 {sim::ClockLevel::Medium, sim::ClockLevel::Low});
  const sim::RunProfile p2 = runner.prepared_profile(quick_bench(), 0);
  ASSERT_EQ(p1.kernels.size(), p2.kernels.size());
  for (std::size_t i = 0; i < p1.kernels.size(); ++i) {
    EXPECT_EQ(p1.kernels[i].launches, p2.kernels[i].launches);
  }
}

TEST(Runner, LongRunsNotRepeated) {
  MeasurementRunner runner(sim::GpuModel::GTX285);
  const auto& slow = workload::find_benchmark("streamcluster");
  const sim::RunProfile raw = slow.profile(slow.size_count - 1);
  const sim::RunProfile prepared =
      runner.prepared_profile(slow, slow.size_count - 1);
  EXPECT_EQ(raw.kernels.front().launches, prepared.kernels.front().launches);
}

TEST(Runner, LowerClocksDrawLessPower) {
  MeasurementRunner runner(sim::GpuModel::GTX480);
  const auto& bench = workload::find_benchmark("sgemm");
  const Measurement hh = runner.measure(bench, 0, sim::kDefaultPair);
  const Measurement ml = runner.measure(
      bench, 0, {sim::ClockLevel::Medium, sim::ClockLevel::Low});
  EXPECT_LT(ml.avg_power.as_watts(), hh.avg_power.as_watts());
}

TEST(Runner, SystemPowerAboveHostFloor) {
  MeasurementRunner runner(sim::GpuModel::GTX285);
  const Measurement m = runner.measure(quick_bench(), 0, sim::kDefaultPair);
  const sim::HostSpec& host = runner.options().host;
  EXPECT_GT(m.avg_power.as_watts(),
            host.gpu_wait.as_watts() / host.psu_efficiency);
}

TEST(Runner, GpuAccessorExposesBoard) {
  MeasurementRunner runner(sim::GpuModel::GTX680);
  EXPECT_EQ(runner.gpu().spec().model, sim::GpuModel::GTX680);
}

TEST(Runner, RejectsNonpositiveMinRunLength) {
  RunnerOptions zero;
  zero.min_run_length = Duration::seconds(0.0);
  EXPECT_THROW(MeasurementRunner(sim::GpuModel::GTX480, zero), gppm::Error);
  RunnerOptions negative;
  negative.min_run_length = Duration::milliseconds(-1.0);
  EXPECT_THROW(MeasurementRunner(sim::GpuModel::GTX480, negative), gppm::Error);
}

TEST(Runner, CheckedPathIsHealthyAndRepeatableWithoutInjector) {
  MeasurementRunner runner(sim::GpuModel::GTX480);
  const MeasuredCell a = runner.measure_checked(quick_bench(), 0,
                                                sim::kDefaultPair);
  const MeasuredCell b = runner.measure_checked(quick_bench(), 0,
                                                sim::kDefaultPair);
  ASSERT_TRUE(a.covered());
  ASSERT_TRUE(b.covered());
  EXPECT_TRUE(a.quality.valid);
  EXPECT_EQ(a.quality.attempts, 1);
  EXPECT_EQ(a.quality.transient_faults, 0);
  EXPECT_EQ(a.quality.samples_rejected, 0u);
  EXPECT_EQ(a.quality.samples_imputed, 0u);
  EXPECT_GE(a.quality.samples_delivered, 10u);  // the paper's sample floor
  // The meter stream is keyed on the run identity, not on call order, so
  // repeated checked measurements of the same cell are identical.
  EXPECT_DOUBLE_EQ(a.measurement->exec_time.as_seconds(),
                   b.measurement->exec_time.as_seconds());
  EXPECT_DOUBLE_EQ(a.measurement->energy.as_joules(),
                   b.measurement->energy.as_joules());
}

TEST(Runner, CheckedPathRecordsHopelessCellsAsMissing) {
  fault::FaultInjector injector(
      fault::FaultPlan::parse_string("dvfs.set_pair p=1\n"), 3);
  RunnerOptions opt;
  opt.injector = &injector;
  MeasurementRunner runner(sim::GpuModel::GTX480, opt);
  const MeasuredCell cell = runner.measure_checked(quick_bench(), 0,
                                                   sim::kDefaultPair);
  EXPECT_FALSE(cell.covered());
  EXPECT_FALSE(cell.quality.valid);
  EXPECT_GE(cell.quality.attempts, 1);
  EXPECT_GE(cell.quality.transient_faults, 1);
  EXPECT_NE(cell.quality.failure.find("P-state"), std::string::npos);
}

TEST(Runner, CheckedPathAbsorbsOccasionalTransientFaults) {
  // Low-rate faults must be retried/validated into a covered cell (the
  // sequences are deterministic at this seed; a regression that stops
  // retrying or starts aborting fails loudly).
  fault::FaultInjector injector(fault::FaultPlan::default_profile(), 7);
  RunnerOptions opt;
  opt.injector = &injector;
  MeasurementRunner runner(sim::GpuModel::GTX480, opt);
  const MeasuredCell cell = runner.measure_checked(quick_bench(), 0,
                                                   sim::kDefaultPair);
  EXPECT_TRUE(cell.covered());
  EXPECT_TRUE(cell.quality.valid);
}

}  // namespace
}  // namespace gppm::core
