#include "core/characterization.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "workload/suite.hpp"

namespace gppm::core {
namespace {

Sweep sweep(sim::GpuModel model, const std::string& bench,
            std::size_t size = 0) {
  MeasurementRunner runner(model);
  return sweep_pairs(runner, workload::find_benchmark(bench), size);
}

TEST(Characterization, SweepCoversAllConfigurablePairs) {
  const Sweep s = sweep(sim::GpuModel::GTX285, "hotspot");
  EXPECT_EQ(s.results.size(), dvfs::configurable_pairs(sim::GpuModel::GTX285).size());
  EXPECT_EQ(s.benchmark, "hotspot");
  EXPECT_EQ(s.gpu, sim::GpuModel::GTX285);
}

TEST(Characterization, DefaultPairIsReference) {
  const Sweep s = sweep(sim::GpuModel::GTX460, "kmeans");
  const PairResult& def = s.at(sim::kDefaultPair);
  EXPECT_DOUBLE_EQ(def.relative_performance, 1.0);
  EXPECT_DOUBLE_EQ(def.relative_efficiency, 1.0);
}

TEST(Characterization, AtThrowsForUnsweptPair) {
  const Sweep s = sweep(sim::GpuModel::GTX460, "kmeans");
  // (L-H) is not configurable on the GTX 460.
  EXPECT_THROW(s.at({sim::ClockLevel::Low, sim::ClockLevel::High}),
               gppm::Error);
}

TEST(Characterization, BestPairHasMaximalEfficiency) {
  const Sweep s = sweep(sim::GpuModel::GTX680, "spmv");
  const double best_eff =
      s.at(s.best_pair()).measurement.power_efficiency();
  for (const PairResult& r : s.results) {
    EXPECT_LE(r.measurement.power_efficiency(), best_eff + 1e-12);
  }
}

TEST(Characterization, ImprovementNonNegative) {
  for (const char* bench : {"hotspot", "spmv", "sgemm"}) {
    const Sweep s = sweep(sim::GpuModel::GTX480, bench);
    EXPECT_GE(s.improvement_percent(), 0.0) << bench;
  }
}

TEST(Characterization, ComputeBoundPerfFlatAcrossMemoryClock) {
  // Fig. 1 left half: backprop performance barely moves with the memory
  // frequency at Core-H.
  const Sweep s = sweep(sim::GpuModel::GTX480, "backprop", 2);
  const double hl =
      s.at({sim::ClockLevel::High, sim::ClockLevel::Low}).relative_performance;
  EXPECT_GT(hl, 0.93);
}

TEST(Characterization, MemoryBoundPerfCollapsesAtMemLow) {
  // Fig. 2: streamcluster throughput tracks the memory clock.
  const Sweep s = sweep(sim::GpuModel::GTX480, "streamcluster", 3);
  const double hl =
      s.at({sim::ClockLevel::High, sim::ClockLevel::Low}).relative_performance;
  EXPECT_LT(hl, 0.3);
}

TEST(Characterization, MemoryBoundGainsFromCoreClockAtMemHigh) {
  // Fig. 2's second observation: at Mem-H, performance improves with the
  // core clock even for the most memory-intensive benchmark.
  const Sweep s = sweep(sim::GpuModel::GTX680, "streamcluster", 3);
  const double mh = s.at({sim::ClockLevel::Medium, sim::ClockLevel::High})
                        .relative_performance;
  const double lh =
      s.at({sim::ClockLevel::Low, sim::ClockLevel::High}).relative_performance;
  EXPECT_LT(lh, mh);
  EXPECT_LT(mh, 1.0);
}

TEST(Characterization, ParetoFrontIsNonDominatedAndSorted) {
  const Sweep s = sweep(sim::GpuModel::GTX680, "gaussian", 1);
  const auto front = s.pareto_front();
  ASSERT_FALSE(front.empty());
  // Sorted by time, and energy strictly decreasing along the front.
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].measurement.exec_time.as_seconds(),
              front[i - 1].measurement.exec_time.as_seconds());
    EXPECT_LT(front[i].measurement.energy.as_joules(),
              front[i - 1].measurement.energy.as_joules());
  }
  // No swept point dominates any front point.
  for (const PairResult& f : front) {
    for (const PairResult& other : s.results) {
      const bool dominates =
          other.measurement.exec_time.as_seconds() <
              f.measurement.exec_time.as_seconds() &&
          other.measurement.energy.as_joules() <
              f.measurement.energy.as_joules();
      EXPECT_FALSE(dominates);
    }
  }
}

TEST(Characterization, ParetoFrontContainsFastestAndBestEnergy) {
  const Sweep s = sweep(sim::GpuModel::GTX460, "spmv", 1);
  const auto front = s.pareto_front();
  const sim::FrequencyPair best_energy = s.best_pair();
  bool has_best_energy = false;
  for (const PairResult& f : front) {
    if (f.measurement.pair == best_energy) has_best_energy = true;
  }
  EXPECT_TRUE(has_best_energy);
  // The first entry is the globally fastest pair.
  for (const PairResult& r : s.results) {
    EXPECT_GE(r.measurement.exec_time.as_seconds(),
              front.front().measurement.exec_time.as_seconds() - 1e-12);
  }
}

TEST(CharacterizeSuite, CoversWholeSuiteOnAllBoards) {
  const auto rows = characterize_suite(42);
  EXPECT_EQ(rows.size(), workload::benchmark_suite().size());
  for (const BestPairRow& row : rows) {
    EXPECT_EQ(row.best.size(), sim::kAllGpus.size());
    EXPECT_EQ(row.improvement.size(), sim::kAllGpus.size());
    for (double imp : row.improvement) EXPECT_GE(imp, 0.0);
  }
}

}  // namespace
}  // namespace gppm::core
