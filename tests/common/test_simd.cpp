// Bitwise parity of the active SIMD backend against the always-compiled
// scalar reference kernels (gppm::simd::scalar::*), and of the slice-by-8
// CRC against the byte-at-a-time reference.
//
// These tests are the teeth behind the "bit-identical, not approximately
// equal" contract in common/simd.hpp: every comparison is on the raw
// 64-bit pattern (EXPECT_EQ on std::bit_cast), never EXPECT_NEAR, and the
// inputs deliberately include NaN, infinities, denormals, and lengths
// that are not multiples of any lane width.

#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "net/wire.hpp"

namespace {

using gppm::Rng;
namespace simd = gppm::simd;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Lengths straddling every interesting boundary: empty, below one vector,
/// exactly the 8-lane block, off-by-one around it, and larger odd sizes.
const std::vector<std::size_t> kLengths = {0,  1,  2,  3,  4,  5,  7,  8,
                                           9,  15, 16, 17, 31, 32, 63, 64,
                                           65, 100, 255, 256, 1000, 1021};

std::vector<double> random_vec(Rng& rng, std::size_t n) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.normal(0.0, 3.0);
  return v;
}

/// Sprinkle the canonical special values through a vector.  A *single*
/// canonical NaN payload is used on purpose: the result of NaN + NaN picks
/// one operand's payload, and which operand is hardware- and order-
/// defined — identical payloads keep the output bit pattern unique while
/// still proving NaNs propagate through every backend identically.
void add_specials(Rng& rng, std::vector<double>& v) {
  const double specials[] = {
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min() / 4.0,  // denormal
      0.0,
      -0.0,
  };
  if (v.empty()) return;
  for (double s : specials) {
    v[rng.uniform_index(v.size())] = s;
  }
}

TEST(SimdParity, DotMatchesScalarBitwise) {
  Rng rng(2024);
  for (std::size_t n : kLengths) {
    for (int rep = 0; rep < 8; ++rep) {
      std::vector<double> a = random_vec(rng, n);
      std::vector<double> b = random_vec(rng, n);
      const double fast = simd::dot(a.data(), b.data(), n);
      const double ref = simd::scalar::dot(a.data(), b.data(), n);
      EXPECT_EQ(bits(fast), bits(ref)) << "n=" << n << " rep=" << rep;
    }
  }
}

TEST(SimdParity, DotMatchesScalarWithSpecialValues) {
  Rng rng(7);
  for (std::size_t n : kLengths) {
    if (n == 0) continue;
    for (int rep = 0; rep < 8; ++rep) {
      std::vector<double> a = random_vec(rng, n);
      std::vector<double> b = random_vec(rng, n);
      add_specials(rng, a);
      add_specials(rng, b);
      const double fast = simd::dot(a.data(), b.data(), n);
      const double ref = simd::scalar::dot(a.data(), b.data(), n);
      EXPECT_EQ(bits(fast), bits(ref)) << "n=" << n << " rep=" << rep;
    }
  }
}

TEST(SimdParity, SumMatchesScalarBitwise) {
  Rng rng(11);
  for (std::size_t n : kLengths) {
    std::vector<double> a = random_vec(rng, n);
    if (!a.empty()) add_specials(rng, a);
    EXPECT_EQ(bits(simd::sum(a.data(), n)),
              bits(simd::scalar::sum(a.data(), n)))
        << "n=" << n;
  }
}

TEST(SimdParity, SumDotMatchesScalarBitwise) {
  Rng rng(13);
  for (std::size_t n : kLengths) {
    std::vector<double> a = random_vec(rng, n);
    std::vector<double> y = random_vec(rng, n);
    if (!a.empty()) {
      add_specials(rng, a);
      add_specials(rng, y);
    }
    double fs = 0.0, fd = 0.0, rs = 0.0, rd = 0.0;
    simd::sum_dot(a.data(), y.data(), n, fs, fd);
    simd::scalar::sum_dot(a.data(), y.data(), n, rs, rd);
    EXPECT_EQ(bits(fs), bits(rs)) << "sum n=" << n;
    EXPECT_EQ(bits(fd), bits(rd)) << "dot n=" << n;
  }
}

TEST(SimdParity, StridedUnitStrideMatchesContiguousDot) {
  // dot_strided computes the canonical tree too, so with stride 1 it must
  // reproduce simd::dot exactly — the property that makes Matrix::col_dot
  // (strided) agree bitwise with the Gram column-panel path (contiguous).
  Rng rng(17);
  for (std::size_t n : kLengths) {
    std::vector<double> a = random_vec(rng, n);
    std::vector<double> b = random_vec(rng, n);
    EXPECT_EQ(bits(simd::dot_strided(a.data(), b.data(), n, 1, 1)),
              bits(simd::dot(a.data(), b.data(), n)))
        << "n=" << n;
  }
}

TEST(SimdParity, StridedMatchesGatheredCopy) {
  Rng rng(19);
  const std::size_t n = 97;
  const std::size_t stride = 5;
  std::vector<double> backing = random_vec(rng, n * stride);
  std::vector<double> gathered(n);
  for (std::size_t i = 0; i < n; ++i) gathered[i] = backing[i * stride];
  EXPECT_EQ(
      bits(simd::dot_strided(backing.data(), backing.data(), n, stride,
                             stride)),
      bits(simd::dot(gathered.data(), gathered.data(), n)));
}

TEST(SimdParity, BackendReportsDispatch) {
  // Sanity on the compile-time dispatch itself: a GPPM_SIMD=off build must
  // report "scalar"; a default build reports whatever ISA it targeted.
#if defined(GPPM_SIMD_FORCE_SCALAR)
  EXPECT_STREQ(simd::kBackend, "scalar");
#else
  const std::string backend = simd::kBackend;
  EXPECT_TRUE(backend == "scalar" || backend == "sse2" || backend == "avx2" ||
              backend == "neon")
      << backend;
#endif
  EXPECT_GE(simd::kLaneWidth, 1u);
}

TEST(CrcParity, SliceBy8MatchesReferenceOnAllLengths) {
  Rng rng(23);
  for (std::size_t n = 0; n <= 300; ++n) {
    std::vector<std::uint8_t> buf(n);
    for (std::uint8_t& b : buf) {
      b = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
    }
    EXPECT_EQ(gppm::net::crc32(buf.data(), n),
              gppm::net::crc32_reference(buf.data(), n))
        << "n=" << n;
  }
  // A few large buffers where the slice-by-8 loop dominates.
  for (std::size_t n : {4096ul, 65536ul, 65539ul}) {
    std::vector<std::uint8_t> buf(n);
    for (std::uint8_t& b : buf) {
      b = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
    }
    EXPECT_EQ(gppm::net::crc32(buf.data(), n),
              gppm::net::crc32_reference(buf.data(), n))
        << "n=" << n;
  }
}

TEST(CrcParity, KnownVector) {
  // The standard CRC-32 check value: crc32("123456789") = 0xCBF43926.
  const std::uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(gppm::net::crc32(msg, sizeof(msg)), 0xcbf43926u);
  EXPECT_EQ(gppm::net::crc32_reference(msg, sizeof(msg)), 0xcbf43926u);
}

TEST(CrcParity, UnalignedStartMatches) {
  // The slice-by-8 loop must not depend on the buffer's alignment: CRC of
  // the same bytes at every offset within a word must agree with the
  // reference.
  Rng rng(29);
  std::vector<std::uint8_t> buf(256 + 8);
  for (std::uint8_t& b : buf) {
    b = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
  }
  for (std::size_t off = 0; off < 8; ++off) {
    EXPECT_EQ(gppm::net::crc32(buf.data() + off, 256),
              gppm::net::crc32_reference(buf.data() + off, 256))
        << "offset=" << off;
  }
}

}  // namespace
