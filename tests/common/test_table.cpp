#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace gppm {
namespace {

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| beta  | 22    |"), std::string::npos);
}

TEST(AsciiTable, TitlePrintedFirst) {
  AsciiTable t({"c"});
  t.set_title("TABLE X");
  t.add_row({"v"});
  std::ostringstream out;
  t.print(out);
  EXPECT_EQ(out.str().rfind("TABLE X", 0), 0u);
}

TEST(AsciiTable, RejectsWrongWidth) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(AsciiTable, NumericRowFormatsPrecision) {
  AsciiTable t({"k", "v1", "v2"});
  t.add_row("row", {1.234, 5.678}, 1);
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("1.2"), std::string::npos);
  EXPECT_NE(out.str().find("5.7"), std::string::npos);
}

TEST(AsciiTable, ColumnsWidenToLongestCell) {
  AsciiTable t({"x"});
  t.add_row({"very-long-cell-content"});
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("very-long-cell-content"), std::string::npos);
}

}  // namespace
}  // namespace gppm
