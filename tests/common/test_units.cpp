#include "common/units.hpp"

#include <gtest/gtest.h>

namespace gppm {
namespace {

TEST(Frequency, Conversions) {
  const Frequency f = Frequency::mhz(1500.0);
  EXPECT_DOUBLE_EQ(f.as_mhz(), 1500.0);
  EXPECT_DOUBLE_EQ(f.as_ghz(), 1.5);
  EXPECT_DOUBLE_EQ(f.as_hz(), 1.5e9);
  EXPECT_DOUBLE_EQ(Frequency::ghz(2.0).as_mhz(), 2000.0);
  EXPECT_DOUBLE_EQ(Frequency::hz(1e6).as_mhz(), 1.0);
}

TEST(Frequency, RatioAndScaling) {
  const Frequency a = Frequency::mhz(800), b = Frequency::mhz(1600);
  EXPECT_DOUBLE_EQ(a / b, 0.5);
  EXPECT_DOUBLE_EQ((a * 2.0).as_mhz(), 1600.0);
  EXPECT_LT(a, b);
}

TEST(Voltage, SquaredAndComparison) {
  const Voltage v = Voltage::volts(1.1);
  EXPECT_NEAR(v.squared(), 1.21, 1e-12);
  EXPECT_DOUBLE_EQ(Voltage::millivolts(900).as_volts(), 0.9);
  EXPECT_LT(Voltage::volts(0.9), v);
}

TEST(Duration, ConversionsAndArithmetic) {
  const Duration d = Duration::milliseconds(250);
  EXPECT_DOUBLE_EQ(d.as_seconds(), 0.25);
  EXPECT_DOUBLE_EQ(d.as_milliseconds(), 250.0);
  EXPECT_DOUBLE_EQ((d + d).as_seconds(), 0.5);
  EXPECT_DOUBLE_EQ((d - Duration::milliseconds(50)).as_seconds(), 0.2);
  EXPECT_DOUBLE_EQ((d * 4.0).as_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(d / Duration::milliseconds(50), 5.0);
  EXPECT_DOUBLE_EQ(Duration::microseconds(1000).as_milliseconds(), 1.0);
}

TEST(PowerEnergy, PhysicalRelations) {
  const Power p = Power::watts(200);
  const Duration t = Duration::seconds(3);
  const Energy e = p * t;
  EXPECT_DOUBLE_EQ(e.as_joules(), 600.0);
  EXPECT_DOUBLE_EQ((e / t).as_watts(), 200.0);
  EXPECT_DOUBLE_EQ((e / Energy::joules(300)), 2.0);
}

TEST(Power, Arithmetic) {
  Power p = Power::watts(100);
  p += Power::watts(50);
  EXPECT_DOUBLE_EQ(p.as_watts(), 150.0);
  EXPECT_DOUBLE_EQ((p - Power::watts(30)).as_watts(), 120.0);
  EXPECT_DOUBLE_EQ((p * 0.5).as_watts(), 75.0);
  EXPECT_GT(p, Power::watts(149));
}

TEST(Energy, Accumulation) {
  Energy e = Energy::joules(1.0);
  e += Energy::joules(2.5);
  EXPECT_DOUBLE_EQ(e.as_joules(), 3.5);
  EXPECT_DOUBLE_EQ((e + Energy::joules(0.5)).as_joules(), 4.0);
}

TEST(Duration, CompoundAssignment) {
  Duration d = Duration::seconds(1.0);
  d += Duration::seconds(0.5);
  EXPECT_DOUBLE_EQ(d.as_seconds(), 1.5);
}

}  // namespace
}  // namespace gppm
