#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace gppm {
namespace {

TEST(ParallelFor, RunsEveryIterationExactlyOnce) {
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> counts(n);
  parallel_for(n, [&](std::size_t i) { counts[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ParallelFor, SlotResultsMatchSerialLoop) {
  const std::size_t n = 512;
  std::vector<double> expected(n), got(n);
  const auto body = [](std::size_t i) {
    double acc = 0.0;
    for (std::size_t k = 1; k <= i % 37 + 3; ++k) {
      acc += 1.0 / static_cast<double>(k * (i + 1));
    }
    return acc;
  };
  for (std::size_t i = 0; i < n; ++i) expected[i] = body(i);
  parallel_for(n, [&](std::size_t i) { got[i] = body(i); });
  EXPECT_EQ(got, expected);  // bit-identical, not just approximately equal
}

TEST(ParallelFor, HandlesZeroAndOneIteration) {
  int calls = 0;
  parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesException) {
  EXPECT_THROW(
      parallel_for(100,
                   [](std::size_t i) {
                     if (i == 42) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, NestedCallsRunSeriallyWithoutDeadlock) {
  std::atomic<int> total{0};
  parallel_for(8, [&](std::size_t) {
    // A nested parallel_for from (possibly) inside a pool worker must not
    // wait on the pool it occupies.
    parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelFor, ReusableAcrossManyCalls) {
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round) {
    parallel_for(32, [&](std::size_t i) {
      total.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(total.load(), 50L * (31 * 32 / 2));
}

TEST(ParallelThreads, IsPositive) {
  EXPECT_GE(parallel_threads(), 1u);
}

}  // namespace
}  // namespace gppm
