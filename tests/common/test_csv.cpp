#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace gppm {
namespace {

TEST(Csv, PlainRow) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(Csv, QuotesFieldsWithCommas) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row({"a,b", "c"});
  EXPECT_EQ(out.str(), "\"a,b\",c\n");
}

TEST(Csv, EscapesQuotes) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row({"say \"hi\""});
  EXPECT_EQ(out.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(Csv, QuotesNewlines) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row({"a\nb"});
  EXPECT_EQ(out.str(), "\"a\nb\"\n");
}

TEST(Csv, NumericRow) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row("key", {1.5, 2.25}, 2);
  EXPECT_EQ(out.str(), "key,1.50,2.25\n");
}

TEST(Csv, MultipleRows) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row({"h1", "h2"});
  w.row({"v1", "v2"});
  EXPECT_EQ(out.str(), "h1,h2\nv1,v2\n");
}

}  // namespace
}  // namespace gppm
