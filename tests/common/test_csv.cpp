#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace gppm {
namespace {

TEST(Csv, PlainRow) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(Csv, QuotesFieldsWithCommas) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row({"a,b", "c"});
  EXPECT_EQ(out.str(), "\"a,b\",c\n");
}

TEST(Csv, EscapesQuotes) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row({"say \"hi\""});
  EXPECT_EQ(out.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(Csv, QuotesNewlines) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row({"a\nb"});
  EXPECT_EQ(out.str(), "\"a\nb\"\n");
}

TEST(Csv, QuotesCarriageReturns) {
  // Regression: \r was missing from the quote-trigger set, so a field with a
  // bare carriage return (or a Windows \r\n) was emitted unquoted and split
  // into two records by RFC 4180 readers.
  std::ostringstream out;
  CsvWriter w(out);
  w.row({"a\rb", "c\r\nd"});
  EXPECT_EQ(out.str(), "\"a\rb\",\"c\r\nd\"\n");
}

// Minimal RFC 4180 reader for the round-trip check below: one record,
// quoted fields may contain separators, CR, LF and doubled quotes.
std::vector<std::string> parse_csv_record(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (quoted) {
      if (c == '"' && i + 1 < line.size() && line[i + 1] == '"') {
        field += '"';
        i += 2;
      } else if (c == '"') {
        quoted = false;
        ++i;
      } else {
        field += c;
        ++i;
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;
      ++i;
    } else if (c == ',') {
      fields.push_back(field);
      field.clear();
      ++i;
    } else if (c == '\n' && !quoted) {
      break;
    } else {
      field += c;
      ++i;
    }
  }
  fields.push_back(field);
  return fields;
}

TEST(Csv, RoundTripsEveryEscapeTrigger) {
  const std::vector<std::string> original = {
      "plain", "comma,inside", "quote\"inside", "line\nbreak", "cr\rreturn",
      "crlf\r\npair", "all,\"of\"\r\nthem"};
  std::ostringstream out;
  CsvWriter w(out);
  w.row(original);
  EXPECT_EQ(parse_csv_record(out.str()), original);
}

TEST(Csv, NumericRow) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row("key", {1.5, 2.25}, 2);
  EXPECT_EQ(out.str(), "key,1.50,2.25\n");
}

TEST(Csv, MultipleRows) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row({"h1", "h2"});
  w.row({"v1", "v2"});
  EXPECT_EQ(out.str(), "h1,h2\nv1,v2\n");
}

}  // namespace
}  // namespace gppm
