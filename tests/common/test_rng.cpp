#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/error.hpp"

namespace gppm {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDifferentSequences) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double acc = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Rng, UniformRangeRejectsInverted) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(1.0, 0.0), Error);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, NormalMomentsMatchStandardNormal) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng rng(17);
  EXPECT_THROW(rng.normal(0.0, -1.0), Error);
}

TEST(Rng, ForkIsIndependentOfParentState) {
  Rng a(42);
  Rng fork_before = a.fork(9);
  for (int i = 0; i < 50; ++i) a.next_u64();
  Rng fork_after = a.fork(9);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fork_before.next_u64(), fork_after.next_u64());
  }
}

TEST(Rng, DistinctForkStreamsDiffer) {
  Rng a(42);
  Rng f1 = a.fork(1), f2 = a.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (f1.next_u64() == f2.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Fnv1a, KnownValues) {
  // FNV-1a 64-bit reference values.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
}

TEST(Fnv1a, DistinctStringsDistinctHashes) {
  std::set<std::uint64_t> hashes;
  for (const char* s : {"backprop", "bfs", "cfd", "gaussian", "hotspot"}) {
    hashes.insert(fnv1a(s));
  }
  EXPECT_EQ(hashes.size(), 5u);
}

TEST(Splitmix, AdvancesState) {
  std::uint64_t s = 1;
  const std::uint64_t v1 = splitmix64(s);
  const std::uint64_t v2 = splitmix64(s);
  EXPECT_NE(v1, v2);
}

}  // namespace
}  // namespace gppm
