#include "common/str.hpp"

#include <gtest/gtest.h>

namespace gppm {
namespace {

TEST(Str, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.5, 0), "-2");  // round-half-to-even via printf
  EXPECT_EQ(format_double(0.0, 3), "0.000");
}

TEST(Str, PadLeft) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");
}

TEST(Str, PadRight) {
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_right("abcdef", 3), "abcdef");
}

TEST(Str, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Str, StartsWith) {
  EXPECT_TRUE(starts_with("l2_subp0_read", "l2_"));
  EXPECT_FALSE(starts_with("fb_read", "l2_"));
  EXPECT_FALSE(starts_with("l2", "l2_"));
}

TEST(Str, Contains) {
  EXPECT_TRUE(contains("gld_transactions", "trans"));
  EXPECT_FALSE(contains("gld", "gst"));
}

}  // namespace
}  // namespace gppm
