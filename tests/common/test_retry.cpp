#include "common/retry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gppm {
namespace {

RetryPolicy no_jitter() {
  RetryPolicy p;
  p.jitter_fraction = 0.0;
  return p;
}

TEST(Retry, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy p = no_jitter();
  p.initial_backoff = Duration::milliseconds(10.0);
  p.multiplier = 2.0;
  p.max_backoff = Duration::milliseconds(50.0);
  Rng rng(1);
  EXPECT_NEAR(backoff_delay(p, 0, rng).as_milliseconds(), 10.0, 1e-9);
  EXPECT_NEAR(backoff_delay(p, 1, rng).as_milliseconds(), 20.0, 1e-9);
  EXPECT_NEAR(backoff_delay(p, 2, rng).as_milliseconds(), 40.0, 1e-9);
  EXPECT_NEAR(backoff_delay(p, 3, rng).as_milliseconds(), 50.0, 1e-9);
  EXPECT_NEAR(backoff_delay(p, 9, rng).as_milliseconds(), 50.0, 1e-9);
}

TEST(Retry, JitterIsBoundedAndDeterministic) {
  RetryPolicy p;  // default jitter_fraction = 0.1
  Rng a(7);
  Rng b(7);
  for (int retry = 0; retry < 6; ++retry) {
    const double nominal =
        std::min(p.initial_backoff.as_milliseconds() *
                     std::pow(p.multiplier, static_cast<double>(retry)),
                 p.max_backoff.as_milliseconds());
    const double da = backoff_delay(p, retry, a).as_milliseconds();
    const double db = backoff_delay(p, retry, b).as_milliseconds();
    EXPECT_DOUBLE_EQ(da, db);  // same RNG state, same delay
    EXPECT_GE(da, nominal * (1.0 - p.jitter_fraction) - 1e-9);
    EXPECT_LE(da, nominal * (1.0 + p.jitter_fraction) + 1e-9);
  }
}

TEST(Retry, RetriesTransientUntilSuccess) {
  Rng rng(3);
  RetryStats stats;
  int calls = 0;
  const int v = retry_call(RetryPolicy{}, rng, stats, [&] {
    if (++calls < 3) throw TransientError("flaky channel");
    return 42;
  });
  EXPECT_EQ(v, 42);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(stats.transient_failures, 2);
  EXPECT_GT(stats.total_backoff.as_seconds(), 0.0);
  EXPECT_FALSE(stats.budget_exhausted);
}

TEST(Retry, PermanentErrorPropagatesImmediately) {
  Rng rng(3);
  RetryStats stats;
  EXPECT_THROW(retry_call(RetryPolicy{}, rng, stats,
                          []() -> int { throw PermanentError("device lost"); }),
               PermanentError);
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.transient_failures, 0);
  EXPECT_DOUBLE_EQ(stats.total_backoff.as_seconds(), 0.0);
}

TEST(Retry, AttemptsExhaustedRethrowsLastTransient) {
  RetryPolicy p = no_jitter();
  p.max_attempts = 3;
  Rng rng(5);
  RetryStats stats;
  EXPECT_THROW(retry_call(p, rng, stats,
                          []() -> int { throw TransientError("still down"); }),
               TransientError);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(stats.transient_failures, 3);
  EXPECT_FALSE(stats.budget_exhausted);
}

TEST(Retry, BudgetExhaustionEndsRetriesEarly) {
  RetryPolicy p = no_jitter();
  p.max_attempts = 10;
  p.initial_backoff = Duration::milliseconds(10.0);
  p.retry_budget = Duration::milliseconds(5.0);  // first delay already over
  Rng rng(5);
  RetryStats stats;
  EXPECT_THROW(retry_call(p, rng, stats,
                          []() -> int { throw TransientError("down"); }),
               TransientError);
  EXPECT_TRUE(stats.budget_exhausted);
  EXPECT_EQ(stats.attempts, 1);  // far fewer than max_attempts
  EXPECT_DOUBLE_EQ(stats.total_backoff.as_seconds(), 0.0);
}

TEST(Retry, BudgetBoundaryExcludesRejectedDelayAndKeepsRngStream) {
  // Pins the documented budget-exhaustion semantics (common/retry.hpp): the
  // delay that would overrun the budget is computed — advancing the jitter
  // RNG by exactly one draw, like a charged delay — but never added to
  // total_backoff.
  RetryPolicy p;  // default jitter keeps the RNG draws meaningful
  p.max_attempts = 10;
  p.initial_backoff = Duration::milliseconds(10.0);
  p.multiplier = 2.0;
  // Fits the ~10 ms first delay but not the ~20 ms second one, even at the
  // jitter extremes (9..11 ms then 18..22 ms).
  p.retry_budget = Duration::milliseconds(15.0);

  Rng rng(21);
  RetryStats stats;
  EXPECT_THROW(retry_call(p, rng, stats,
                          []() -> int { throw TransientError("down"); }),
               TransientError);
  EXPECT_TRUE(stats.budget_exhausted);
  EXPECT_EQ(stats.attempts, 2);
  EXPECT_EQ(stats.transient_failures, 2);
  // Only the first (charged) delay is accounted; the rejected second delay
  // is excluded, so the total stays within the budget.
  EXPECT_GT(stats.total_backoff.as_milliseconds(), 0.0);
  EXPECT_LE(stats.total_backoff.as_milliseconds(),
            p.retry_budget.as_milliseconds());
  EXPECT_LT(stats.total_backoff.as_milliseconds(), 11.0 + 1e-9);

  // Same seed, same failure pattern, but a budget large enough to charge
  // both delays: two transient failures were followed by a backoff
  // computation either way, so both runs leave the RNG in the same state.
  RetryPolicy roomy = p;
  roomy.max_attempts = 3;  // third failure is final: no delay computed
  roomy.retry_budget = Duration::seconds(10.0);
  Rng control(21);
  RetryStats control_stats;
  EXPECT_THROW(retry_call(roomy, control, control_stats,
                          []() -> int { throw TransientError("down"); }),
               TransientError);
  EXPECT_FALSE(control_stats.budget_exhausted);
  EXPECT_EQ(control_stats.transient_failures, 3);
  EXPECT_EQ(rng.next_u64(), control.next_u64());

  // And the exhausted run itself is reproducible draw for draw.
  Rng replay(21);
  RetryStats replay_stats;
  EXPECT_THROW(retry_call(p, replay, replay_stats,
                          []() -> int { throw TransientError("down"); }),
               TransientError);
  EXPECT_DOUBLE_EQ(replay_stats.total_backoff.as_seconds(),
                   stats.total_backoff.as_seconds());
  EXPECT_TRUE(replay_stats.budget_exhausted);
}

TEST(Retry, SingleAttemptPolicyNeverBacksOff) {
  RetryPolicy p;
  p.max_attempts = 1;
  Rng rng(9);
  RetryStats stats;
  EXPECT_THROW(retry_call(p, rng, stats,
                          []() -> int { throw TransientError("once"); }),
               TransientError);
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_DOUBLE_EQ(stats.total_backoff.as_seconds(), 0.0);
}

TEST(Retry, BackoffSaturatesAtCapForHighAttemptCounts) {
  // Regression: the naive initial * multiplier^retry overflows double range
  // at high retry counts (multiplier^1100 == inf), and with a zero initial
  // backoff the product is 0 * inf == NaN, which slips through the min/max
  // clamps.  The delay must saturate at max_backoff — never wrap to a tiny,
  // negative or NaN value.
  RetryPolicy p;
  p.initial_backoff = Duration::milliseconds(10.0);
  p.multiplier = 2.0;
  p.max_backoff = Duration::seconds(2.0);
  p.jitter_fraction = 0.0;  // exact values
  Rng rng(3);
  for (int retry : {32, 64, 100, 1024, 100000, 2147483647}) {
    const Duration d = backoff_delay(p, retry, rng);
    EXPECT_DOUBLE_EQ(d.as_seconds(), 2.0) << "retry " << retry;
  }
}

TEST(Retry, BackoffAtHighAttemptsStaysWithinJitterBandOfCap) {
  RetryPolicy p;
  p.jitter_fraction = 0.1;
  Rng rng(17);
  for (int retry = 32; retry < 4096; retry = retry * 2 + 1) {
    const double s = backoff_delay(p, retry, rng).as_seconds();
    EXPECT_GE(s, p.max_backoff.as_seconds() * 0.9 - 1e-12);
    EXPECT_LE(s, p.max_backoff.as_seconds() * 1.1 + 1e-12);
  }
}

TEST(Retry, OverLargeJitterFractionNeverErasesTheDelay) {
  // Regression: jitter_fraction >= 1 drew factors from [1-jf, 1+jf], which
  // includes negative values — ~25% of draws at jf=2 collapsed (after the
  // zero clamp) to a no-pacing retry storm.  The fraction now saturates
  // below 1, so every delay keeps a positive floor.
  RetryPolicy p;
  p.initial_backoff = Duration::milliseconds(100.0);
  p.jitter_fraction = 2.0;  // misconfigured
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const double s = backoff_delay(p, 3, rng).as_seconds();
    EXPECT_GT(s, 0.0) << "draw " << i;
    // 5% floor of the nominal (capped) delay.
    EXPECT_GE(s, 0.05 * 0.8 - 1e-12);
  }
}

TEST(Retry, ZeroInitialBackoffIsZeroAtEveryRetry) {
  // With initial_backoff == 0 the old code returned 0 for small retries and
  // NaN-collapsed-to-0 for large ones; pin the intended "no pacing"
  // behavior explicitly at both ends.
  RetryPolicy p;
  p.initial_backoff = Duration::seconds(0.0);
  Rng rng(8);
  EXPECT_DOUBLE_EQ(backoff_delay(p, 0, rng).as_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(backoff_delay(p, 5000, rng).as_seconds(), 0.0);
}

TEST(Retry, SameSeedSameBackoffAccounting) {
  RetryPolicy p;
  p.max_attempts = 5;
  RetryStats sa;
  RetryStats sb;
  Rng a(11);
  Rng b(11);
  EXPECT_THROW(retry_call(p, a, sa, []() -> int { throw TransientError("x"); }),
               TransientError);
  EXPECT_THROW(retry_call(p, b, sb, []() -> int { throw TransientError("x"); }),
               TransientError);
  EXPECT_DOUBLE_EQ(sa.total_backoff.as_seconds(), sb.total_backoff.as_seconds());
  EXPECT_EQ(sa.attempts, sb.attempts);
}

}  // namespace
}  // namespace gppm
