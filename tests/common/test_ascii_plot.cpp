#include "common/ascii_plot.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace gppm {
namespace {

TEST(LineChart, RendersSeriesAndLegend) {
  LineChart chart("Perf", "core MHz", "relative");
  chart.add_series({"Mem-H", {600, 800, 1296}, {0.5, 0.7, 1.0}});
  chart.add_series({"Mem-L", {600, 800, 1296}, {0.5, 0.69, 0.98}});
  std::ostringstream out;
  chart.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("Perf"), std::string::npos);
  EXPECT_NE(s.find("* = Mem-H"), std::string::npos);
  EXPECT_NE(s.find("o = Mem-L"), std::string::npos);
  EXPECT_NE(s.find("core MHz"), std::string::npos);
}

TEST(LineChart, RejectsMismatchedSeries) {
  LineChart chart("t", "x", "y");
  EXPECT_THROW(chart.add_series({"bad", {1, 2}, {1}}), Error);
}

TEST(LineChart, RejectsEmptySeries) {
  LineChart chart("t", "x", "y");
  EXPECT_THROW(chart.add_series({"bad", {}, {}}), Error);
}

TEST(LineChart, HandlesConstantSeries) {
  LineChart chart("t", "x", "y");
  chart.add_series({"flat", {1, 2, 3}, {5, 5, 5}});
  std::ostringstream out;
  EXPECT_NO_THROW(chart.print(out));
}

TEST(BarChart, BarsScaleToMax) {
  BarChart chart("Improvement");
  chart.add_bar("a", 10.0);
  chart.add_bar("b", 5.0);
  std::ostringstream out;
  chart.print(out, 20);
  const std::string s = out.str();
  EXPECT_NE(s.find(std::string(20, '#')), std::string::npos);
  EXPECT_NE(s.find(std::string(10, '#')), std::string::npos);
}

TEST(BarChart, EmptyChartDoesNotCrash) {
  BarChart chart("empty");
  std::ostringstream out;
  EXPECT_NO_THROW(chart.print(out));
  EXPECT_NE(out.str().find("no data"), std::string::npos);
}

TEST(BoxPlot, RendersMedianMarker) {
  BoxPlot plot("Errors", "%");
  plot.add_box({"GTX 285", 1.0, 5.0, 10.0, 20.0, 40.0});
  std::ostringstream out;
  plot.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find('M'), std::string::npos);
  EXPECT_NE(s.find('['), std::string::npos);
  EXPECT_NE(s.find(']'), std::string::npos);
}

TEST(BoxPlot, MultipleBoxesShareScale) {
  BoxPlot plot("Errors", "%");
  plot.add_box({"a", 0, 1, 2, 3, 4});
  plot.add_box({"b", 10, 11, 12, 13, 100});
  std::ostringstream out;
  EXPECT_NO_THROW(plot.print(out));
}

}  // namespace
}  // namespace gppm
