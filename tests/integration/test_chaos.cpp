// Chaos integration suite: the full characterization pipeline under the
// default fault profile must stay both covered and faithful.
//
// The board/seed below are pinned deliberately.  The contract "the chaos
// run picks the same energy-optimal pair on every covered cell" is only
// meaningful where the fault-free top-two pairs are separated by more than
// the measurement perturbation; on GTX480 at seed 7 every benchmark has a
// healthy gap (GTX460's leukocyte ties its top two energies within 0.001%,
// which no amount of robustness engineering can stabilize).
#include <gtest/gtest.h>

#include "core/characterization.hpp"
#include "fault/plan.hpp"

namespace gppm::core {
namespace {

TEST(ChaosIntegration, CoverageAndBestPairContract) {
  const ChaosReport report = chaos_characterization(
      sim::GpuModel::GTX480, fault::FaultPlan::default_profile(), 7);
  EXPECT_GE(report.coverage(), 0.95);  // the ISSUE's floor
  EXPECT_EQ(report.divergent_count(), 0u);
  EXPECT_GT(report.fault_fires, 0u);  // the run was actually under attack
  EXPECT_GT(report.fault_checks, report.fault_fires);
  for (const ChaosBenchmarkRow& row : report.rows) {
    if (!row.comparable) continue;
    EXPECT_EQ(row.best_chaos, row.best_fault_free) << row.benchmark;
  }
  // Every cell is accounted for exactly once, covered or missing.
  EXPECT_EQ(report.cells.size(), report.cells_total);
  std::size_t covered = 0;
  for (const ChaosCell& cell : report.cells) {
    if (cell.covered) {
      ++covered;
      EXPECT_TRUE(cell.quality.valid);
    } else {
      EXPECT_FALSE(cell.quality.valid);
      EXPECT_FALSE(cell.quality.failure.empty());
    }
  }
  EXPECT_EQ(covered, report.cells_covered);
}

TEST(ChaosIntegration, ByteIdenticalAtFixedSeed) {
  const fault::FaultPlan plan = fault::FaultPlan::default_profile();
  const ChaosReport a =
      chaos_characterization(sim::GpuModel::GTX480, plan, 7, 6);
  const ChaosReport b =
      chaos_characterization(sim::GpuModel::GTX480, plan, 7, 6);
  EXPECT_EQ(a.summary(), b.summary());
  EXPECT_EQ(a.fault_fires, b.fault_fires);
  EXPECT_EQ(a.fault_checks, b.fault_checks);
}

TEST(ChaosIntegration, SeedChangesTheFaultPattern) {
  const fault::FaultPlan plan = fault::FaultPlan::default_profile();
  const ChaosReport a =
      chaos_characterization(sim::GpuModel::GTX285, plan, 7, 4);
  const ChaosReport b =
      chaos_characterization(sim::GpuModel::GTX285, plan, 8, 4);
  EXPECT_NE(a.summary(), b.summary());
}

TEST(ChaosIntegration, HopelessFaultsDegradeToMissingCellsNotAborts) {
  // A transition that almost always fails exhausts every cell's retries;
  // the sweep must record the casualties and keep going.
  const fault::FaultPlan plan =
      fault::FaultPlan::parse_string("dvfs.set_pair p=0.97\n");
  const ChaosReport report =
      chaos_characterization(sim::GpuModel::GTX680, plan, 21, 3);
  EXPECT_EQ(report.rows.size(), 3u);
  EXPECT_LT(report.cells_covered, report.cells_total);
  for (const ChaosCell& cell : report.cells) {
    if (cell.covered) continue;
    EXPECT_FALSE(cell.quality.failure.empty());
    EXPECT_GE(cell.quality.attempts, 1);
  }
}

}  // namespace
}  // namespace gppm::core
