// Reproduction guardrails: the paper's headline numbers, asserted with
// bands.  EXPERIMENTS.md records the exact measured values; these tests
// pin the *shape* so refactoring cannot silently lose the reproduction.
#include <gtest/gtest.h>

#include "core/characterization.hpp"
#include "core/evaluation.hpp"
#include "stats/descriptive.hpp"
#include "workload/suite.hpp"

namespace gppm::core {
namespace {

using sim::ClockLevel;
using sim::FrequencyPair;
using sim::GpuModel;

Sweep backprop_sweep(GpuModel model) {
  MeasurementRunner runner(model);
  const auto& def = workload::find_benchmark("backprop");
  return sweep_pairs(runner, def, def.size_count - 1);
}

// --- Fig. 1 / abstract: backprop best-case efficiency per generation ----

TEST(PaperHeadlines, BackpropBestPairsMatchTableFour) {
  // TABLE IV row Backprop: (H-L) on GTX 285/460/480, (M-L) on GTX 680.
  EXPECT_EQ(backprop_sweep(GpuModel::GTX285).best_pair(),
            (FrequencyPair{ClockLevel::High, ClockLevel::Low}));
  EXPECT_EQ(backprop_sweep(GpuModel::GTX460).best_pair(),
            (FrequencyPair{ClockLevel::High, ClockLevel::Low}));
  EXPECT_EQ(backprop_sweep(GpuModel::GTX480).best_pair(),
            (FrequencyPair{ClockLevel::High, ClockLevel::Low}));
  EXPECT_EQ(backprop_sweep(GpuModel::GTX680).best_pair(),
            (FrequencyPair{ClockLevel::Medium, ClockLevel::Low}));
}

TEST(PaperHeadlines, BackpropImprovementLadder) {
  // Paper: 13%, 39%, 40%, 75% with losses 2%, 2%, 0.1%, 30%.
  const double i285 = backprop_sweep(GpuModel::GTX285).improvement_percent();
  const double i460 = backprop_sweep(GpuModel::GTX460).improvement_percent();
  const double i480 = backprop_sweep(GpuModel::GTX480).improvement_percent();
  const double i680 = backprop_sweep(GpuModel::GTX680).improvement_percent();
  EXPECT_NEAR(i285, 13.0, 6.0);
  EXPECT_NEAR(i460, 39.0, 10.0);
  EXPECT_NEAR(i480, 40.0, 10.0);
  EXPECT_NEAR(i680, 75.0, 15.0);
  // Generation ordering.
  EXPECT_LT(i285, i460);
  EXPECT_LT(i480, i680);
}

TEST(PaperHeadlines, BackpropPerformanceLossesSmallExceptKepler) {
  EXPECT_LT(backprop_sweep(GpuModel::GTX285).performance_loss_percent(), 8.0);
  EXPECT_LT(backprop_sweep(GpuModel::GTX460).performance_loss_percent(), 8.0);
  EXPECT_LT(backprop_sweep(GpuModel::GTX480).performance_loss_percent(), 8.0);
  const double loss680 =
      backprop_sweep(GpuModel::GTX680).performance_loss_percent();
  EXPECT_GT(loss680, 12.0);
  EXPECT_LT(loss680, 35.0);
}

// --- Fig. 2: streamcluster on the GTX 680 --------------------------------

TEST(PaperHeadlines, StreamclusterKeplerPrefersCoreMediumAtMemHigh) {
  MeasurementRunner runner(GpuModel::GTX680);
  const auto& def = workload::find_benchmark("streamcluster");
  const Sweep s = sweep_pairs(runner, def, def.size_count - 1);
  // Paper: best (M-H), ~4.7% gain at ~8.7% performance loss.
  EXPECT_EQ(s.best_pair(), (FrequencyPair{ClockLevel::Medium, ClockLevel::High}));
  EXPECT_GT(s.improvement_percent(), 1.0);
  EXPECT_LT(s.improvement_percent(), 25.0);
  EXPECT_GT(s.performance_loss_percent(), 2.0);
  EXPECT_LT(s.performance_loss_percent(), 15.0);
}

// --- Fig. 4 / TABLE IV aggregates ----------------------------------------

class SuiteCharacterization : public ::testing::Test {
 protected:
  static const std::vector<BestPairRow>& rows() {
    static const std::vector<BestPairRow> r = characterize_suite(42);
    return r;
  }
  static std::vector<double> improvements(std::size_t gpu_index) {
    std::vector<double> out;
    for (const BestPairRow& row : rows()) out.push_back(row.improvement[gpu_index]);
    return out;
  }
  static int non_default(std::size_t gpu_index) {
    int n = 0;
    for (const BestPairRow& row : rows()) {
      if (!(row.best[gpu_index] == sim::kDefaultPair)) ++n;
    }
    return n;
  }
};

TEST_F(SuiteCharacterization, AverageImprovementGrowsWithGeneration) {
  // Paper Fig. 4: 0.8% / 12.3% / 12.1% / 24.4%.
  const double a285 = stats::mean(improvements(0));
  const double a460 = stats::mean(improvements(1));
  const double a480 = stats::mean(improvements(2));
  const double a680 = stats::mean(improvements(3));
  EXPECT_LT(a285, 8.0);
  EXPECT_NEAR(a460, 12.3, 6.0);
  EXPECT_NEAR(a480, 12.1, 7.0);
  EXPECT_GT(a680, 20.0);
  EXPECT_LT(a285, a460);
  EXPECT_LT(a460, a680);
  EXPECT_LT(a480, a680);
}

TEST_F(SuiteCharacterization, KeplerBestPairsAllNonDefault) {
  // Paper: "for GTX 680, the best power efficiency for all the benchmarks
  // are achieved besides the default configuration".
  EXPECT_EQ(non_default(3), static_cast<int>(rows().size()));
}

TEST_F(SuiteCharacterization, TeslaMostlyDefault) {
  // The GTX 285 keeps (H-H) for the majority of the suite.
  EXPECT_LT(non_default(0), static_cast<int>(rows().size()) / 2);
}

TEST_F(SuiteCharacterization, DiversityGrowsWithGeneration) {
  EXPECT_LE(non_default(0), non_default(3));
  EXPECT_LE(non_default(1), non_default(3));
}

// --- TABLEs V-VIII: model quality ----------------------------------------

struct ModelBands {
  GpuModel model;
  double power_r2_lo, power_r2_hi;
  double perf_r2_lo;
  double power_err_lo, power_err_hi;  // percent
  double perf_err_lo, perf_err_hi;    // percent
};

class ModelQuality : public ::testing::TestWithParam<ModelBands> {
 protected:
  struct Fitted {
    Dataset ds;
    UnifiedModel power;
    UnifiedModel perf;
  };
  static const Fitted& fitted(GpuModel model) {
    static std::map<GpuModel, Fitted> cache;
    auto it = cache.find(model);
    if (it == cache.end()) {
      Dataset ds = build_dataset(model);
      UnifiedModel power = UnifiedModel::fit(ds, TargetKind::Power);
      UnifiedModel perf = UnifiedModel::fit(ds, TargetKind::ExecTime);
      it = cache.emplace(model, Fitted{std::move(ds), std::move(power),
                                       std::move(perf)})
               .first;
    }
    return it->second;
  }
};

TEST_P(ModelQuality, PowerModelInPaperBand) {
  const ModelBands& band = GetParam();
  const Fitted& f = fitted(band.model);
  EXPECT_GT(f.power.adjusted_r2(), band.power_r2_lo);
  EXPECT_LT(f.power.adjusted_r2(), band.power_r2_hi);
  const double err = evaluate(f.power, f.ds).mape();
  EXPECT_GT(err, band.power_err_lo);
  EXPECT_LT(err, band.power_err_hi);
}

TEST_P(ModelQuality, PerfModelInPaperBand) {
  const ModelBands& band = GetParam();
  const Fitted& f = fitted(band.model);
  EXPECT_GT(f.perf.adjusted_r2(), band.perf_r2_lo);
  const double err = evaluate(f.perf, f.ds).mape();
  EXPECT_GT(err, band.perf_err_lo);
  EXPECT_LT(err, band.perf_err_hi);
}

INSTANTIATE_TEST_SUITE_P(
    AllBoards, ModelQuality,
    ::testing::Values(
        // Paper: power R2 .30/.59/.70/.18; power err 15.0/14.0/18.2/23.5;
        //        perf R2 .91/.90/.94/.91; perf err 67.9/47.6/39.3/33.5.
        ModelBands{GpuModel::GTX285, 0.15, 0.60, 0.75, 7.0, 22.0, 45.0, 95.0},
        ModelBands{GpuModel::GTX460, 0.45, 0.90, 0.80, 8.0, 22.0, 30.0, 70.0},
        ModelBands{GpuModel::GTX480, 0.45, 0.90, 0.80, 10.0, 25.0, 25.0, 60.0},
        ModelBands{GpuModel::GTX680, 0.10, 0.75, 0.80, 14.0, 32.0, 22.0, 50.0}),
    [](const ::testing::TestParamInfo<ModelBands>& info) {
      std::string n = sim::to_string(info.param.model);
      n.erase(std::remove(n.begin(), n.end(), ' '), n.end());
      return n;
    });

TEST(PaperHeadlines, PerfErrorDecreasesWithGeneration) {
  // TABLE VIII's trend: newer architectures predict better.
  std::vector<double> errs;
  for (GpuModel m : sim::kAllGpus) {
    const Dataset ds = build_dataset(m);
    const UnifiedModel perf = UnifiedModel::fit(ds, TargetKind::ExecTime);
    errs.push_back(evaluate(perf, ds).mape());
  }
  EXPECT_GT(errs[0], errs[1]);  // Tesla worse than Fermi
  EXPECT_GT(errs[1], errs[3]);  // GTX 460 worse than Kepler
}

}  // namespace
}  // namespace gppm::core
