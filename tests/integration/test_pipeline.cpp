// End-to-end pipeline tests: VBIOS-controlled board -> benchmark execution
// -> WT1600 measurement -> profiling -> dataset -> unified models.
#include <gtest/gtest.h>

#include <tuple>

#include "core/dataset.hpp"
#include "core/evaluation.hpp"
#include "core/optimizer.hpp"
#include "dvfs/combos.hpp"
#include "dvfs/controller.hpp"
#include "workload/suite.hpp"

namespace gppm::core {
namespace {

TEST(Pipeline, DvfsControlledMeasurement) {
  // Drive the full control path the paper describes: patch the VBIOS, boot
  // at the chosen P-state, run, measure.
  MeasurementRunner runner(sim::GpuModel::GTX460);
  dvfs::Controller ctl(runner.gpu());
  const auto& bench = workload::find_benchmark("hotspot");

  std::vector<double> energies;
  for (sim::FrequencyPair pair : ctl.available_pairs()) {
    ctl.set_pair(pair);
    EXPECT_EQ(runner.gpu().frequency_pair(), pair);
    const Measurement m = runner.measure(bench, 0, pair);
    energies.push_back(m.energy.as_joules());
  }
  EXPECT_EQ(energies.size(), 7u);
  // Energies must differ across pairs (the sweep is meaningful).
  EXPECT_NE(stats::min_of(energies), stats::max_of(energies));
}

TEST(Pipeline, DatasetBuildsFullCorpusOnEveryBoard) {
  for (sim::GpuModel model : sim::kAllGpus) {
    const Dataset ds = build_dataset(model);
    EXPECT_EQ(ds.samples.size(), 114u) << sim::to_string(model);
    const std::size_t pairs = dvfs::configurable_pairs(model).size();
    EXPECT_EQ(ds.row_count(), 114u * pairs) << sim::to_string(model);
    for (const Sample& s : ds.samples) {
      EXPECT_EQ(s.counters.counters.size(),
                static_cast<std::size_t>(
                    sim::device_spec(model).performance_counter_count));
      EXPECT_EQ(s.runs.size(), pairs);
    }
  }
}

TEST(Pipeline, DatasetExcludesProfilerFailures) {
  const Dataset ds = build_dataset(sim::GpuModel::GTX480);
  for (const Sample& s : ds.samples) {
    for (const char* failed : {"backprop", "bfs", "mummergpu", "pathfinder"}) {
      EXPECT_NE(s.benchmark, failed);
    }
  }
}

TEST(Pipeline, DatasetDeterministicGivenSeed) {
  DatasetOptions opt;
  opt.seed = 7;
  const Dataset a = build_dataset(sim::GpuModel::GTX285, opt);
  const Dataset b = build_dataset(sim::GpuModel::GTX285, opt);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    ASSERT_EQ(a.samples[i].runs.size(), b.samples[i].runs.size());
    for (std::size_t j = 0; j < a.samples[i].runs.size(); ++j) {
      EXPECT_DOUBLE_EQ(a.samples[i].runs[j].energy.as_joules(),
                       b.samples[i].runs[j].energy.as_joules());
    }
  }
}

TEST(Pipeline, ModelsFitAndEvaluateOnEveryBoard) {
  for (sim::GpuModel model : sim::kAllGpus) {
    const Dataset ds = build_dataset(model);
    const UnifiedModel power = UnifiedModel::fit(ds, TargetKind::Power);
    const UnifiedModel perf = UnifiedModel::fit(ds, TargetKind::ExecTime);
    const Evaluation pe = evaluate(power, ds);
    const Evaluation te = evaluate(perf, ds);
    // Wide sanity bands; the tight paper bands live in the headline test.
    EXPECT_GT(power.adjusted_r2(), 0.1) << sim::to_string(model);
    EXPECT_GT(perf.adjusted_r2(), 0.6) << sim::to_string(model);
    EXPECT_LT(pe.mape(), 40.0) << sim::to_string(model);
    EXPECT_LT(te.mape(), 120.0) << sim::to_string(model);
  }
}

TEST(Pipeline, OptimizerRecoversRealSavings) {
  // DVFS selection quality end-to-end (the ablation A4 story): the paper's
  // frequency-only model form cannot value down-clocking (its picks hover
  // around the default's energy), while the extended form (V^2 f features
  // + baseline terms) recovers most of the oracle saving.
  const Dataset ds = build_dataset(sim::GpuModel::GTX680);
  const UnifiedModel perf = UnifiedModel::fit(ds, TargetKind::ExecTime);
  const UnifiedModel paper_power = UnifiedModel::fit(ds, TargetKind::Power);
  ModelOptions ext;
  ext.scaling = FeatureScaling::VoltageSquaredFrequency;
  ext.include_baseline_terms = true;
  const UnifiedModel ext_power = UnifiedModel::fit(ds, TargetKind::Power, ext);

  auto score = [&](const UnifiedModel& power) {
    double chosen = 0, fixed_default = 0, oracle = 0;
    for (const Sample& s : ds.samples) {
      const sim::FrequencyPair pick =
          predict_min_energy_pair(power, perf, s.counters);
      double best_e = 1e300;
      for (const Measurement& m : s.runs) {
        const double e = m.energy.as_joules();
        if (m.pair == pick) chosen += e;
        if (m.pair == sim::kDefaultPair) fixed_default += e;
        best_e = std::min(best_e, e);
      }
      oracle += best_e;
    }
    return std::tuple{chosen, fixed_default, oracle};
  };

  const auto [paper_chosen, def1, oracle1] = score(paper_power);
  EXPECT_NEAR(paper_chosen / def1, 1.0, 0.05);  // paper form: ~no effect

  const auto [ext_chosen, def2, oracle2] = score(ext_power);
  EXPECT_LT(ext_chosen, def2 * 0.90);           // extended: real savings
  const double capture = (def2 - ext_chosen) / (def2 - oracle2);
  EXPECT_GT(capture, 0.5);                      // most of the oracle saving
}

}  // namespace
}  // namespace gppm::core
