#include "fault/plan.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace gppm::fault {
namespace {

TEST(FaultPlan, DefaultProfileNamesEveryWiredSite) {
  const FaultPlan plan = FaultPlan::default_profile();
  for (std::string_view site :
       {kSiteMeterDrop, kSiteMeterSpike, kSiteMeterDisconnect, kSiteNvmlQuery,
        kSiteDvfsSetPair}) {
    const SiteSpec* spec = plan.find(site);
    ASSERT_NE(spec, nullptr) << site;
    EXPECT_GT(spec->probability, 0.0) << site;
    EXPECT_LE(spec->probability, 1.0) << site;
    EXPECT_GE(spec->burst, 1) << site;
  }
  EXPECT_EQ(plan.find(kSiteMeterDrop)->burst, 2);
  EXPECT_NEAR(plan.find(kSiteMeterSpike)->magnitude, 3.0, 1e-12);
}

TEST(FaultPlan, ParsesCommentsBlanksAndAnyFieldOrder) {
  const FaultPlan plan = FaultPlan::parse_string(
      "# header comment\n"
      "\n"
      "meter.spike mag=2.5 p=0.5   # trailing comment\n"
      "nvml.query p=1 burst=3\n"
      "custom.site\n");
  ASSERT_EQ(plan.sites.size(), 3u);
  const SiteSpec* spike = plan.find("meter.spike");
  ASSERT_NE(spike, nullptr);
  EXPECT_NEAR(spike->probability, 0.5, 1e-12);
  EXPECT_NEAR(spike->magnitude, 2.5, 1e-12);
  EXPECT_EQ(spike->burst, 1);  // untouched default
  const SiteSpec* nvml = plan.find("nvml.query");
  ASSERT_NE(nvml, nullptr);
  EXPECT_NEAR(nvml->probability, 1.0, 1e-12);
  EXPECT_EQ(nvml->burst, 3);
  // A bare site line is legal: all defaults (probability 0 = never fires).
  const SiteSpec* custom = plan.find("custom.site");
  ASSERT_NE(custom, nullptr);
  EXPECT_DOUBLE_EQ(custom->probability, 0.0);
}

TEST(FaultPlan, FindReturnsNullForUnknownSites) {
  const FaultPlan plan = FaultPlan::default_profile();
  EXPECT_EQ(plan.find("no.such.site"), nullptr);
  EXPECT_EQ(FaultPlan{}.find(kSiteMeterDrop), nullptr);
}

TEST(FaultPlan, RoundTripsThroughToString) {
  const FaultPlan a = FaultPlan::default_profile();
  const FaultPlan b = FaultPlan::parse_string(a.to_string());
  ASSERT_EQ(b.sites.size(), a.sites.size());
  for (std::size_t i = 0; i < a.sites.size(); ++i) {
    EXPECT_EQ(b.sites[i].site, a.sites[i].site);
    EXPECT_DOUBLE_EQ(b.sites[i].probability, a.sites[i].probability);
    EXPECT_EQ(b.sites[i].burst, a.sites[i].burst);
    EXPECT_DOUBLE_EQ(b.sites[i].magnitude, a.sites[i].magnitude);
  }
  EXPECT_EQ(b.to_string(), a.to_string());
}

TEST(FaultPlan, RejectsMalformedProfiles) {
  // Duplicate site.
  EXPECT_THROW(FaultPlan::parse_string("meter.drop p=0.1\nmeter.drop p=0.2\n"),
               Error);
  // Probability outside [0, 1].
  EXPECT_THROW(FaultPlan::parse_string("meter.drop p=1.5\n"), Error);
  EXPECT_THROW(FaultPlan::parse_string("meter.drop p=-0.1\n"), Error);
  // Burst below 1.
  EXPECT_THROW(FaultPlan::parse_string("meter.drop p=0.1 burst=0\n"), Error);
  // Unknown field.
  EXPECT_THROW(FaultPlan::parse_string("meter.drop prob=0.1\n"), Error);
  // Not key=value.
  EXPECT_THROW(FaultPlan::parse_string("meter.drop 0.1\n"), Error);
  EXPECT_THROW(FaultPlan::parse_string("meter.drop p=\n"), Error);
  // Unparseable number.
  EXPECT_THROW(FaultPlan::parse_string("meter.drop p=abc\n"), Error);
  EXPECT_THROW(FaultPlan::parse_string("meter.drop p=0.1x\n"), Error);
}

}  // namespace
}  // namespace gppm::fault
