#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace gppm::fault {
namespace {

std::vector<bool> firing_sequence(FaultInjector& injector,
                                  std::string_view site, int checks) {
  std::vector<bool> out;
  out.reserve(static_cast<std::size_t>(checks));
  for (int i = 0; i < checks; ++i) out.push_back(injector.should_fire(site));
  return out;
}

TEST(FaultInjector, DefaultConstructedNeverFires) {
  FaultInjector injector;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.should_fire(kSiteMeterDrop));
  }
  EXPECT_EQ(injector.total_checks(), 100u);
  EXPECT_EQ(injector.total_fires(), 0u);
}

TEST(FaultInjector, SameSeedSameFiringSequence) {
  FaultInjector a(FaultPlan::default_profile(), 5);
  FaultInjector b(FaultPlan::default_profile(), 5);
  EXPECT_EQ(firing_sequence(a, kSiteMeterDrop, 500),
            firing_sequence(b, kSiteMeterDrop, 500));
  EXPECT_EQ(firing_sequence(a, kSiteNvmlQuery, 500),
            firing_sequence(b, kSiteNvmlQuery, 500));
}

TEST(FaultInjector, SiteStreamsAreIndependentOfOtherSites) {
  // The nvml.query stream must not shift when other sites are checked in
  // between — each site forks its own RNG stream from the seed.
  FaultInjector alone(FaultPlan::default_profile(), 9);
  const std::vector<bool> reference =
      firing_sequence(alone, kSiteNvmlQuery, 300);

  FaultInjector interleaved(FaultPlan::default_profile(), 9);
  std::vector<bool> seq;
  for (int i = 0; i < 300; ++i) {
    interleaved.should_fire(kSiteMeterDrop);
    seq.push_back(interleaved.should_fire(kSiteNvmlQuery));
    interleaved.should_fire(kSiteMeterSpike);
  }
  EXPECT_EQ(seq, reference);
}

TEST(FaultInjector, BurstsFireConsecutively) {
  const FaultPlan plan = FaultPlan::parse_string("meter.drop p=0.05 burst=4\n");
  FaultInjector injector(plan, 11);
  const std::vector<bool> seq = firing_sequence(injector, kSiteMeterDrop, 2000);
  ASSERT_GT(injector.total_fires(), 0u);
  // Every maximal run of consecutive fires is a union of bursts, so any run
  // not cut off by the end of the sequence is at least `burst` long.
  std::size_t run = 0;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (seq[i]) {
      ++run;
    } else {
      if (run > 0) EXPECT_GE(run, 4u) << "short burst ending at check " << i;
      run = 0;
    }
  }
}

TEST(FaultInjector, StatsCountChecksAndFires) {
  const FaultPlan plan =
      FaultPlan::parse_string("meter.drop p=1\nmeter.spike p=0\n");
  FaultInjector injector(plan, 3);
  for (int i = 0; i < 40; ++i) injector.should_fire(kSiteMeterDrop);
  for (int i = 0; i < 25; ++i) injector.should_fire(kSiteMeterSpike);
  const auto& stats = injector.stats();
  ASSERT_TRUE(stats.contains("meter.drop"));
  ASSERT_TRUE(stats.contains("meter.spike"));
  EXPECT_EQ(stats.at("meter.drop").checks, 40u);
  EXPECT_EQ(stats.at("meter.drop").fires, 40u);  // p=1 always fires
  EXPECT_EQ(stats.at("meter.spike").checks, 25u);
  EXPECT_EQ(stats.at("meter.spike").fires, 0u);  // p=0 never fires
  EXPECT_EQ(injector.total_checks(), 65u);
  EXPECT_EQ(injector.total_fires(), 40u);
}

TEST(FaultInjector, UnknownSitesNeverFireButAreCounted) {
  FaultInjector injector(FaultPlan::default_profile(), 7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(injector.should_fire("bogus.site"));
  }
  ASSERT_TRUE(injector.stats().contains("bogus.site"));
  EXPECT_EQ(injector.stats().at("bogus.site").checks, 50u);
  EXPECT_EQ(injector.stats().at("bogus.site").fires, 0u);
}

TEST(FaultInjector, ResetReproducesOrRediversifies) {
  FaultInjector injector(FaultPlan::default_profile(), 21);
  const std::vector<bool> first =
      firing_sequence(injector, kSiteMeterDrop, 400);

  injector.reset(21);
  EXPECT_EQ(injector.total_checks(), 0u);  // statistics start over
  EXPECT_EQ(firing_sequence(injector, kSiteMeterDrop, 400), first);

  injector.reset(22);
  EXPECT_NE(firing_sequence(injector, kSiteMeterDrop, 400), first);
}

TEST(FaultInjector, ConcurrentChecksAreSafeAndFullyAccounted) {
  // One injector shared by concurrent socket paths (the cluster chaos
  // profile): checks from many threads must neither race nor lose counts.
  const FaultPlan plan = FaultPlan::parse_string(
      "net.reset p=0.2 burst=2\nnet.short_read p=0.4\n");
  FaultInjector injector(plan, 99);
  constexpr int kThreads = 4;
  constexpr int kChecksPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&injector, t] {
      const std::string_view site =
          t % 2 == 0 ? "net.reset" : "net.short_read";
      for (int i = 0; i < kChecksPerThread; ++i) {
        injector.should_fire(site);
        injector.uniform("net.shared");
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(injector.total_checks(),
            static_cast<std::uint64_t>(kThreads) * kChecksPerThread);
  const auto stats = injector.stats();
  EXPECT_EQ(stats.at("net.reset").checks, 2u * kChecksPerThread);
  EXPECT_EQ(stats.at("net.short_read").checks, 2u * kChecksPerThread);
  EXPECT_GT(injector.total_fires(), 0u);
}

TEST(FaultInjector, MagnitudeComesFromThePlanWithDefaultFallback) {
  const FaultPlan plan = FaultPlan::parse_string("meter.spike mag=2.5\n");
  const FaultInjector injector(plan, 1);
  EXPECT_NEAR(injector.magnitude(kSiteMeterSpike), 2.5, 1e-12);
  EXPECT_NEAR(injector.magnitude("unplanned.site"), SiteSpec{}.magnitude,
              1e-12);
}

TEST(FaultInjector, UniformDrawsAreDeterministicAndInRange) {
  FaultInjector a(FaultPlan::default_profile(), 13);
  FaultInjector b(FaultPlan::default_profile(), 13);
  for (int i = 0; i < 100; ++i) {
    const double ua = a.uniform(kSiteNvmlQuery);
    EXPECT_DOUBLE_EQ(ua, b.uniform(kSiteNvmlQuery));
    EXPECT_GE(ua, 0.0);
    EXPECT_LT(ua, 1.0);
  }
  // uniform() counts neither as check nor fire.
  EXPECT_EQ(a.total_checks(), 0u);
}

}  // namespace
}  // namespace gppm::fault
