// Tests for the faulty instrument wrappers: the meter channel, the NVML
// query path and the DVFS transition path, each driven by a deterministic
// FaultInjector.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "dvfs/controller.hpp"
#include "fault/faulty_dvfs.hpp"
#include "fault/faulty_meter.hpp"
#include "fault/faulty_nvml.hpp"
#include "workload/suite.hpp"

namespace gppm::fault {
namespace {

using sim::ClockLevel;

meter::MeterConfig noiseless() {
  meter::MeterConfig c;
  c.noise_floor_watts = 0.0;
  c.noise_fraction = 0.0;
  c.quantization_watts = 0.0;
  return c;
}

std::vector<meter::TimelineSegment> constant_timeline(double watts,
                                                      double seconds) {
  return {{Duration::seconds(seconds), Power::watts(watts)}};
}

TEST(FaultyMeter, NullInjectorIsBitIdenticalToHealthyMeter) {
  meter::WT1600 healthy(meter::MeterConfig{}, 17);
  FaultyMeter faulty(meter::MeterConfig{}, 17, nullptr);
  const meter::Measurement a = healthy.measure(constant_timeline(200.0, 1.0));
  const meter::Measurement b = faulty.measure(constant_timeline(200.0, 1.0));
  ASSERT_EQ(a.sample_count(), b.sample_count());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.samples[i].power.as_watts(),
                     b.samples[i].power.as_watts());
  }
  EXPECT_DOUBLE_EQ(a.energy.as_joules(), b.energy.as_joules());
  EXPECT_DOUBLE_EQ(a.average_power.as_watts(), b.average_power.as_watts());
}

TEST(FaultyMeter, QuietSitesLeaveTheRunBitIdentical) {
  // An injector whose sites all miss this run must not change a byte — the
  // equivalence the chaos suite's best-pair assertions build on.
  FaultInjector injector(FaultPlan{}, 3);  // empty plan: never fires
  meter::WT1600 healthy(meter::MeterConfig{}, 17);
  FaultyMeter faulty(meter::MeterConfig{}, 17, &injector);
  const meter::Measurement a = healthy.measure(constant_timeline(180.0, 2.0));
  const meter::Measurement b = faulty.measure(constant_timeline(180.0, 2.0));
  ASSERT_EQ(a.sample_count(), b.sample_count());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.samples[i].power.as_watts(),
                     b.samples[i].power.as_watts());
  }
  EXPECT_GT(injector.total_checks(), 0u);  // the sites were consulted
  EXPECT_EQ(injector.total_fires(), 0u);
}

TEST(FaultyMeter, DropThinsTheStreamWithoutBiasingTheMean) {
  FaultInjector injector(FaultPlan::parse_string("meter.drop p=0.3\n"), 17);
  FaultyMeter faulty(noiseless(), 17, &injector);
  const meter::Measurement m = faulty.measure(constant_timeline(200.0, 2.0));
  const std::size_t expected =
      FaultyMeter::expected_sample_count(noiseless(), constant_timeline(200.0, 2.0));
  EXPECT_EQ(expected, 40u);
  EXPECT_LT(m.sample_count(), expected);  // something was dropped
  EXPECT_GT(m.sample_count(), 0u);
  for (const meter::PowerSample& s : m.samples) {
    EXPECT_NEAR(s.power.as_watts(), 200.0, 1e-9);
  }
  // Summaries are recomputed over the survivors: the thinned stream still
  // estimates the same constant power and full-run energy.
  EXPECT_NEAR(m.average_power.as_watts(), 200.0, 1e-9);
  EXPECT_NEAR(m.energy.as_joules(), 400.0, 1e-6);
}

TEST(FaultyMeter, SpikesScaleReadingsByTheSiteMagnitude) {
  FaultInjector injector(
      FaultPlan::parse_string("meter.spike p=1 mag=3.0\n"), 5);
  FaultyMeter faulty(noiseless(), 5, &injector);
  const meter::Measurement m = faulty.measure(constant_timeline(200.0, 1.0));
  ASSERT_EQ(m.sample_count(), 20u);
  for (const meter::PowerSample& s : m.samples) {
    EXPECT_NEAR(s.power.as_watts(), 600.0, 1e-9);
  }
  EXPECT_NEAR(m.average_power.as_watts(), 600.0, 1e-9);
}

TEST(FaultyMeter, DisconnectThrowsTransient) {
  FaultInjector injector(
      FaultPlan::parse_string("meter.disconnect p=1\n"), 5);
  FaultyMeter faulty(noiseless(), 5, &injector);
  EXPECT_THROW(faulty.measure(constant_timeline(200.0, 1.0)), TransientError);
}

TEST(FaultyMeter, FullyDroppedRunIsTransient) {
  FaultInjector injector(FaultPlan::parse_string("meter.drop p=1\n"), 5);
  FaultyMeter faulty(noiseless(), 5, &injector);
  EXPECT_THROW(faulty.measure(constant_timeline(200.0, 1.0)), TransientError);
}

// --- NVML -----------------------------------------------------------------

struct NvmlFixture {
  sim::Gpu gpu{sim::GpuModel::GTX480};
  nvml::Session session;
  nvml::DeviceHandle handle;
  sim::RunExecution exec;

  NvmlFixture() {
    handle = session.attach_device(gpu);
    exec = gpu.run(workload::find_benchmark("nn").profile(0));
    session.begin_run(handle, exec);
  }
};

TEST(FaultyNvml, StatusSpellingAndTransience) {
  EXPECT_EQ(to_string(NvmlStatus::Success), "NVML_SUCCESS");
  EXPECT_EQ(to_string(NvmlStatus::ErrorTimeout), "NVML_ERROR_TIMEOUT");
  EXPECT_EQ(to_string(NvmlStatus::ErrorUnknown), "NVML_ERROR_UNKNOWN");
  EXPECT_EQ(to_string(NvmlStatus::ErrorGpuIsLost), "NVML_ERROR_GPU_IS_LOST");
  EXPECT_FALSE(is_transient(NvmlStatus::Success));
  EXPECT_TRUE(is_transient(NvmlStatus::ErrorTimeout));
  EXPECT_TRUE(is_transient(NvmlStatus::ErrorUnknown));
  EXPECT_FALSE(is_transient(NvmlStatus::ErrorGpuIsLost));
}

TEST(FaultyNvml, NullInjectorQueriesMatchTheSession) {
  NvmlFixture fx;
  FaultyNvmlSession faulty(fx.session, nullptr);
  const Duration at = Duration::milliseconds(10.0);
  const NvmlResult<unsigned> power = faulty.power_usage_mw(fx.handle, at);
  ASSERT_TRUE(power.ok());
  EXPECT_EQ(power.value, fx.session.power_usage_mw(fx.handle, at));
  const NvmlResult<nvml::UtilizationRates> util =
      faulty.utilization(fx.handle, at);
  ASSERT_TRUE(util.ok());
  EXPECT_EQ(util.value.gpu, fx.session.utilization(fx.handle, at).gpu);
  const NvmlResult<std::uint64_t> energy =
      faulty.total_energy_mj(fx.handle, at);
  ASSERT_TRUE(energy.ok());
  EXPECT_EQ(energy.value, fx.session.total_energy_mj(fx.handle, at));
}

TEST(FaultyNvml, FailedQueriesReturnNvmlStatusesNotValues) {
  NvmlFixture fx;
  FaultInjector injector(FaultPlan::parse_string("nvml.query p=1\n"), 5);
  FaultyNvmlSession faulty(fx.session, &injector);
  int transient = 0;
  for (int i = 0; i < 50; ++i) {
    const NvmlResult<unsigned> r =
        faulty.power_usage_mw(fx.handle, Duration::milliseconds(10.0));
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.status, NvmlStatus::Success);
    if (is_transient(r.status)) ++transient;
  }
  // The status split is mostly transient (60% timeout + 35% unknown).
  EXPECT_GT(transient, 25);
}

TEST(FaultyNvml, SamplePowerRetriesThroughTransientFailures) {
  NvmlFixture fx;
  FaultInjector injector(
      FaultPlan::parse_string("nvml.query p=0.15 burst=2\n"), 9);
  FaultyNvmlSession faulty(fx.session, &injector);
  RetryStats stats;
  const Duration duration = Duration::seconds(1.0);
  const Duration period = Duration::milliseconds(50.0);
  const std::vector<nvml::PowerSample> hardened =
      faulty.sample_power(fx.handle, duration, period, RetryPolicy{}, &stats);
  const std::vector<nvml::PowerSample> reference =
      nvml::sample_power(fx.session, fx.handle, duration, period);
  ASSERT_EQ(hardened.size(), reference.size());
  for (std::size_t i = 0; i < hardened.size(); ++i) {
    // Retries must not corrupt the sampled values, only absorb failures.
    EXPECT_DOUBLE_EQ(hardened[i].power.as_watts(),
                     reference[i].power.as_watts());
    EXPECT_DOUBLE_EQ(hardened[i].timestamp.as_seconds(),
                     reference[i].timestamp.as_seconds());
  }
  EXPECT_GT(stats.transient_failures, 0);
  EXPECT_GT(stats.attempts, static_cast<int>(hardened.size()));
}

TEST(FaultyNvml, HopelessChannelExhaustsRetries) {
  NvmlFixture fx;
  FaultInjector injector(FaultPlan::parse_string("nvml.query p=1\n"), 5);
  FaultyNvmlSession faulty(fx.session, &injector);
  // Every query fails; whichever status the stream draws, the sampler must
  // surface a gppm::Error (TransientError after the policy's attempts, or
  // PermanentError the moment the device is lost).
  EXPECT_THROW(faulty.sample_power(fx.handle, Duration::seconds(1.0),
                                   Duration::milliseconds(50.0), RetryPolicy{}),
               Error);
}

TEST(FaultyNvml, SamplePowerValidatesItsWindow) {
  NvmlFixture fx;
  FaultyNvmlSession faulty(fx.session, nullptr);
  EXPECT_THROW(faulty.sample_power(fx.handle, Duration::seconds(1.0),
                                   Duration::seconds(0.0), RetryPolicy{}),
               Error);
  EXPECT_THROW(faulty.sample_power(fx.handle, Duration::milliseconds(10.0),
                                   Duration::milliseconds(50.0), RetryPolicy{}),
               Error);
}

// --- DVFS -----------------------------------------------------------------

TEST(FaultyDvfs, NullInjectorPassesTransitionsThrough) {
  sim::Gpu gpu(sim::GpuModel::GTX680);
  dvfs::Controller ctl(gpu);
  FaultyController faulty(ctl, nullptr);
  const sim::FrequencyPair mm{ClockLevel::Medium, ClockLevel::Medium};
  faulty.set_pair(mm);
  EXPECT_EQ(faulty.current_pair(), mm);
  EXPECT_EQ(gpu.frequency_pair(), mm);
  EXPECT_EQ(faulty.reboot_count(), 2);
  EXPECT_EQ(faulty.available_pairs(), ctl.available_pairs());
}

TEST(FaultyDvfs, TransientFailureLeavesControllerStateIntact) {
  sim::Gpu gpu(sim::GpuModel::GTX680);
  dvfs::Controller ctl(gpu);
  FaultInjector injector(FaultPlan::parse_string("dvfs.set_pair p=1\n"), 3);
  FaultyController faulty(ctl, &injector);

  const sim::FrequencyPair before = ctl.current_pair();
  const std::vector<std::uint8_t> image_before = ctl.image();
  const int reboots_before = ctl.reboot_count();
  EXPECT_THROW(
      faulty.set_pair({ClockLevel::Medium, ClockLevel::Medium}),
      TransientError);
  EXPECT_EQ(ctl.current_pair(), before);
  EXPECT_EQ(gpu.frequency_pair(), before);
  EXPECT_EQ(ctl.image(), image_before);  // VBIOS untouched
  EXPECT_EQ(ctl.reboot_count(), reboots_before);
}

TEST(FaultyDvfs, IllegalPairsStillRejectedByTheController) {
  sim::Gpu gpu(sim::GpuModel::GTX680);
  dvfs::Controller ctl(gpu);
  FaultyController faulty(ctl, nullptr);
  EXPECT_THROW(faulty.set_pair({ClockLevel::Low, ClockLevel::Low}), Error);
  EXPECT_EQ(ctl.current_pair(), sim::kDefaultPair);
}

}  // namespace
}  // namespace gppm::fault
