// Multi-tenant serving: per-tenant model families, fixed admission quotas
// and per-tenant metrics on the PredictionServer (the serving half of the
// gppm::mix interference work — tenants are how co-located workloads reach
// the server as distinct principals).
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "serve/server.hpp"

namespace gppm::serve {
namespace {

const core::Dataset& dataset() {
  static const core::Dataset ds = core::build_dataset(sim::GpuModel::GTX460);
  return ds;
}

const core::UnifiedModel& power_model() {
  static const core::UnifiedModel m =
      core::UnifiedModel::fit(dataset(), core::TargetKind::Power);
  return m;
}

const core::UnifiedModel& perf_model() {
  static const core::UnifiedModel m =
      core::UnifiedModel::fit(dataset(), core::TargetKind::ExecTime);
  return m;
}

// A deliberately coarser family (one selected counter) so tenant routing
// is observable: its predictions differ from the default family's.
const core::UnifiedModel& coarse_power_model() {
  static const core::UnifiedModel m = [] {
    core::ModelOptions opt;
    opt.max_variables = 1;
    return core::UnifiedModel::fit(dataset(), core::TargetKind::Power, opt);
  }();
  return m;
}

const core::UnifiedModel& coarse_perf_model() {
  static const core::UnifiedModel m = [] {
    core::ModelOptions opt;
    opt.max_variables = 1;
    return core::UnifiedModel::fit(dataset(), core::TargetKind::ExecTime, opt);
  }();
  return m;
}

Request predict_request(std::uint32_t tenant,
                        sim::FrequencyPair pair = sim::kDefaultPair) {
  Request r;
  r.kind = RequestKind::Predict;
  r.gpu = sim::GpuModel::GTX460;
  r.tenant = tenant;
  r.counters = dataset().samples.front().counters;
  r.pair = pair;
  return r;
}

TEST(ServeTenant, RoutesToTheTenantFamilyWithDefaultFallback) {
  PredictionServer server;
  server.load_models(power_model(), perf_model());
  server.load_tenant_models(7, coarse_power_model(), coarse_perf_model());
  EXPECT_TRUE(server.has_tenant_models(7, sim::GpuModel::GTX460));
  EXPECT_FALSE(server.has_tenant_models(7, sim::GpuModel::GTX680));
  EXPECT_FALSE(server.has_tenant_models(8, sim::GpuModel::GTX460));

  const profiler::ProfileResult& counters =
      dataset().samples.front().counters;
  const Response own = server.submit(predict_request(7)).get();
  ASSERT_TRUE(own.ok());
  EXPECT_DOUBLE_EQ(own.power_watts,
                   coarse_power_model().predict(counters, sim::kDefaultPair));
  EXPECT_DOUBLE_EQ(own.time_seconds,
                   coarse_perf_model().predict(counters, sim::kDefaultPair));

  // A tenant without a registered family answers from the board default —
  // exactly what an untenanted (tenant 0) request sees.
  const Response fallback = server.submit(predict_request(8)).get();
  const Response shared = server.submit(predict_request(0)).get();
  ASSERT_TRUE(fallback.ok());
  EXPECT_DOUBLE_EQ(fallback.power_watts,
                   power_model().predict(counters, sim::kDefaultPair));
  EXPECT_DOUBLE_EQ(fallback.power_watts, shared.power_watts);
  EXPECT_DOUBLE_EQ(fallback.time_seconds, shared.time_seconds);
  // Routing is observable: the coarse family really predicts differently.
  EXPECT_NE(own.power_watts, shared.power_watts);
}

TEST(ServeTenant, TenantZeroIsLoadModels) {
  PredictionServer server;
  server.load_tenant_models(0, power_model(), perf_model());
  EXPECT_TRUE(server.has_models(sim::GpuModel::GTX460));
  // Tenant 0 *is* the default family, so the tenant-scoped query answers
  // the same question as has_models.
  EXPECT_TRUE(server.has_tenant_models(0, sim::GpuModel::GTX460));
  EXPECT_FALSE(server.has_tenant_models(0, sim::GpuModel::GTX680));
}

TEST(ServeTenant, SharedDefaultTenantCannotBeQuotaLimited) {
  PredictionServer server;
  EXPECT_THROW(server.set_tenant_quota(0, 1), Error);
}

TEST(ServeTenant, QuotaShedsTheAggressorAndSparesTheRest) {
  ServerOptions opt;
  // One slow worker and no cache: the burst below is submitted far faster
  // than Optimize requests are served, so a quota of 1 must shed.
  opt.worker_threads = 1;
  opt.max_batch = 1;
  opt.cache_capacity = 0;
  PredictionServer server(opt);
  server.load_models(power_model(), perf_model());
  server.set_tenant_quota(5, 1);

  auto heavy_request = [](std::uint32_t tenant, std::size_t i) {
    Request heavy;
    heavy.kind = RequestKind::Optimize;
    heavy.gpu = sim::GpuModel::GTX460;
    heavy.tenant = tenant;
    heavy.counters = dataset().samples[i % dataset().samples.size()].counters;
    return heavy;
  };

  // Build every request up front so the submit loop below is pure moves,
  // and pad each prefill request's counters far past the catalog: the
  // worker fingerprints *every* reading before predicting (predict itself
  // indexes only the selected counters, so trailing pad is inert), which
  // pins the single worker per prefill job for orders of magnitude longer
  // than the whole moved-in burst takes to submit.
  std::vector<Request> prefill_reqs;
  for (std::size_t i = 0; i < 8; ++i) {
    Request r = heavy_request(0, i);
    r.counters.counters.resize(r.counters.counters.size() + (1u << 17),
                               {"pad", profiler::EventClass::Core,
                                static_cast<double>(i), 1.0});
    prefill_reqs.push_back(std::move(r));
  }
  std::vector<Request> aggressor_reqs;
  std::vector<Request> victim_reqs;
  for (std::size_t i = 0; i < 50; ++i) {
    aggressor_reqs.push_back(heavy_request(5, i));
    if (i % 10 == 0) victim_reqs.push_back(predict_request(6));
  }

  // Prefill the FIFO with shared-tenant work: the quota holder submitted
  // next cannot finish (and release its ticket) before the single worker
  // drains all of it, so the burst after it deterministically over-quotas.
  std::vector<std::future<Response>> prefill;
  for (Request& r : prefill_reqs) {
    prefill.push_back(server.submit(std::move(r)));
  }
  std::vector<std::future<Response>> aggressor;
  std::vector<std::future<Response>> victim;
  std::size_t next_victim = 0;
  for (std::size_t i = 0; i < aggressor_reqs.size(); ++i) {
    aggressor.push_back(server.submit(std::move(aggressor_reqs[i])));
    if (i % 10 == 0) {
      victim.push_back(server.submit(std::move(victim_reqs[next_victim++])));
    }
  }
  for (std::future<Response>& f : prefill) {
    EXPECT_TRUE(f.get().ok());
  }

  std::size_t ok = 0;
  std::size_t shed = 0;
  for (std::future<Response>& f : aggressor) {
    const Response r = f.get();
    if (r.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(r.status, ResponseStatus::Overloaded);
      EXPECT_NE(r.error.find("quota saturated"), std::string::npos);
      ++shed;
    }
  }
  EXPECT_GE(ok, 1u);   // the ticket holder is always served
  EXPECT_GE(shed, 1u); // and the rest of the burst cannot fit a quota of 1
  EXPECT_EQ(ok + shed, aggressor.size());
  // The un-quota'd tenant rode through the same burst untouched.
  for (std::future<Response>& f : victim) {
    EXPECT_TRUE(f.get().ok());
  }

  const ServerMetrics m = server.metrics();
  bool found = false;
  for (const TenantStats& t : m.tenants) {
    if (t.tenant != 5) continue;
    found = true;
    EXPECT_EQ(t.accepted, ok);
    EXPECT_EQ(t.shed, shed);
  }
  EXPECT_TRUE(found);
}

TEST(ServeTenant, RemovingTheQuotaRestoresAdmission) {
  ServerOptions opt;
  opt.worker_threads = 1;
  opt.max_batch = 1;
  opt.cache_capacity = 0;
  PredictionServer server(opt);
  server.load_models(power_model(), perf_model());
  server.set_tenant_quota(5, 1);
  server.set_tenant_quota(5, 0);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(server.submit(predict_request(5)));
  }
  for (std::future<Response>& f : futures) {
    EXPECT_TRUE(f.get().ok());
  }
}

TEST(ServeTenant, CacheHitsAreAttributedToTheTenant) {
  PredictionServer server;  // default options: cache enabled
  server.load_models(power_model(), perf_model());
  const Request req = predict_request(3);
  ASSERT_TRUE(server.submit(req).get().ok());
  const Response second = server.submit(req).get();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.cache_hit);

  const ServerMetrics m = server.metrics();
  bool found = false;
  for (const TenantStats& t : m.tenants) {
    if (t.tenant != 3) continue;
    found = true;
    EXPECT_EQ(t.accepted, 2u);
    EXPECT_GE(t.cache_hits, 1u);
  }
  EXPECT_TRUE(found);
}

TEST(ServeTenant, TenantFamiliesDoNotAliasCacheEntries) {
  // Same counters, same pair, two families: the second tenant must get
  // its own family's numbers, not the default family's cached entry.
  PredictionServer server;
  server.load_models(power_model(), perf_model());
  server.load_tenant_models(7, coarse_power_model(), coarse_perf_model());
  const Response shared = server.submit(predict_request(0)).get();
  const Response tenant = server.submit(predict_request(7)).get();
  ASSERT_TRUE(shared.ok());
  ASSERT_TRUE(tenant.ok());
  EXPECT_NE(shared.power_watts, tenant.power_watts);
  const profiler::ProfileResult& counters =
      dataset().samples.front().counters;
  EXPECT_DOUBLE_EQ(tenant.power_watts,
                   coarse_power_model().predict(counters, sim::kDefaultPair));
}

}  // namespace
}  // namespace gppm::serve
