#include "mix/schedule.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"

namespace gppm::mix {
namespace {

MixScheduleOptions options(std::size_t degree = 2, std::uint64_t seed = 42) {
  MixScheduleOptions opt;
  opt.mixes = 10;
  opt.degree = degree;
  opt.seed = seed;
  return opt;
}

TEST(MixSchedule, SameSeedIsBitIdentical) {
  const std::vector<ScheduledMix> a = mix_schedule(options());
  const std::vector<ScheduledMix> b = mix_schedule(options());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].phases.size(), b[i].phases.size());
    for (std::size_t j = 0; j < a[i].phases.size(); ++j) {
      EXPECT_EQ(a[i].phases[j].benchmark, b[i].phases[j].benchmark);
      // Bitwise, not approximately: the schedule is the reproducibility
      // anchor of every mix corpus built from it.
      EXPECT_EQ(a[i].phases[j].scale, b[i].phases[j].scale);
      EXPECT_EQ(a[i].shares[j], b[i].shares[j]);
    }
  }
}

TEST(MixSchedule, DifferentSeedsDiffer) {
  const std::vector<ScheduledMix> a = mix_schedule(options(2, 42));
  const std::vector<ScheduledMix> b = mix_schedule(options(2, 43));
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    for (std::size_t j = 0; j < a[i].phases.size() && !differs; ++j) {
      differs = a[i].phases[j].benchmark != b[i].phases[j].benchmark ||
                a[i].phases[j].scale != b[i].phases[j].scale ||
                a[i].shares[j] != b[i].shares[j];
    }
  }
  EXPECT_TRUE(differs);
}

TEST(MixSchedule, EveryDegreeYieldsFullDistinctMixes) {
  for (std::size_t degree = kMinMixDegree; degree <= kMaxMixDegree; ++degree) {
    const std::vector<ScheduledMix> mixes = mix_schedule(options(degree));
    ASSERT_EQ(mixes.size(), 10u);
    for (const ScheduledMix& m : mixes) {
      ASSERT_EQ(m.phases.size(), degree);
      ASSERT_EQ(m.shares.size(), degree);
      // Benchmarks within one mix are distinct by construction.
      std::set<std::string> names;
      double sum = 0.0;
      for (std::size_t j = 0; j < degree; ++j) {
        names.insert(m.phases[j].benchmark);
        EXPECT_GT(m.shares[j], 0.0);
        EXPECT_LT(m.shares[j], 1.0);
        sum += m.shares[j];
      }
      EXPECT_EQ(names.size(), degree);
      EXPECT_NEAR(sum, 1.0, 1e-12);
    }
  }
}

TEST(MixSchedule, HonorsExclusions) {
  const std::vector<ScheduledMix> base = mix_schedule(options());
  const std::string excluded = base.front().phases.front().benchmark;
  const std::vector<ScheduledMix> pruned =
      mix_schedule(options(), {excluded});
  for (const ScheduledMix& m : pruned) {
    for (const workload::Phase& p : m.phases) {
      EXPECT_NE(p.benchmark, excluded);
    }
  }
}

TEST(MixSchedule, DriftBoundsHoldPerCoRunner) {
  // Each phase scale is a ladder point 2^i times (1 + drift * u) with u in
  // [-1, 1]; with drift 0.25 the off-ladder factor stays within 0.5 of a
  // power of two in log space, so rounding log2 recovers the ladder point.
  MixScheduleOptions opt = options();
  opt.drift = 0.25;
  for (const ScheduledMix& m : mix_schedule(opt)) {
    for (const workload::Phase& p : m.phases) {
      const double ladder = std::exp2(std::round(std::log2(p.scale)));
      const double factor = p.scale / ladder;
      EXPECT_GE(factor, 1.0 - opt.drift - 1e-12);
      EXPECT_LE(factor, 1.0 + opt.drift + 1e-12);
    }
  }
}

TEST(MixSchedule, ZeroDriftStaysOnTheLadder) {
  MixScheduleOptions opt = options();
  opt.drift = 0.0;
  for (const ScheduledMix& m : mix_schedule(opt)) {
    for (const workload::Phase& p : m.phases) {
      const double ladder = std::exp2(std::round(std::log2(p.scale)));
      EXPECT_DOUBLE_EQ(p.scale, ladder);
    }
  }
}

TEST(MixSchedule, RejectsBadOptions) {
  MixScheduleOptions opt;
  opt.mixes = 0;
  EXPECT_THROW(mix_schedule(opt), Error);
  opt = options();
  opt.degree = 1;
  EXPECT_THROW(mix_schedule(opt), Error);
  opt.degree = 5;
  EXPECT_THROW(mix_schedule(opt), Error);
}

TEST(MixSchedule, MaterializesValidProfiles) {
  const std::vector<ScheduledMix> mixes = mix_schedule(options(3));
  for (std::size_t i = 0; i < mixes.size(); ++i) {
    const MixProfile profile = make_mix_profile(mixes[i], i);
    EXPECT_EQ(profile.name, "mix-" + std::to_string(i));
    ASSERT_EQ(profile.degree(), 3u);
    for (std::size_t j = 0; j < profile.members.size(); ++j) {
      EXPECT_EQ(profile.members[j].benchmark, mixes[i].phases[j].benchmark);
      EXPECT_EQ(profile.members[j].sm_share, mixes[i].shares[j]);
      EXPECT_FALSE(profile.members[j].kernel.name.empty());
    }
    // make_mix_profile validates; a second validation must also hold.
    EXPECT_NO_THROW(validate(profile));
  }
}

TEST(MixSchedule, PrefixStableUnderLargerRequest) {
  // Shares fork per mix index, so asking for more mixes must not perturb
  // the ones already scheduled.
  MixScheduleOptions small = options();
  MixScheduleOptions large = options();
  large.mixes = 20;
  const std::vector<ScheduledMix> a = mix_schedule(small);
  const std::vector<ScheduledMix> b = mix_schedule(large);
  ASSERT_GE(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < a[i].shares.size(); ++j) {
      EXPECT_EQ(a[i].shares[j], b[i].shares[j]);
    }
  }
}

}  // namespace
}  // namespace gppm::mix
