#include "mix/model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "mix/dataset.hpp"

namespace gppm::mix {
namespace {

profiler::ProfileResult base_profile() {
  profiler::ProfileResult p;
  p.counters.push_back(
      {"inst_issued", profiler::EventClass::Core, 6.0e9, 3.0e9});
  p.counters.push_back(
      {"fb_subp0_read_sectors", profiler::EventClass::Memory, 8.0e6, 4.0e6});
  p.run_time = Duration::seconds(2.0);
  return p;
}

TEST(MixModel, AugmentAppendsPseudoAndInteractedCounters) {
  const profiler::ProfileResult base = base_profile();
  const profiler::ProfileResult aug = augment_profile(base, 0.5, 0.25);
  // Two pseudo-features plus one interacted copy per base counter.
  ASSERT_EQ(aug.counters.size(), base.counters.size() + 2 + 2);
  EXPECT_EQ(aug.counters[2].name, kMixBwPressureFeature);
  EXPECT_EQ(aug.counters[2].klass, profiler::EventClass::Memory);
  EXPECT_DOUBLE_EQ(aug.counters[2].total, 0.5 * 2.0);
  EXPECT_DOUBLE_EQ(aug.counters[2].per_second, 0.5);
  EXPECT_EQ(aug.counters[3].name, kMixSmShareFeature);
  EXPECT_EQ(aug.counters[3].klass, profiler::EventClass::Core);
  EXPECT_DOUBLE_EQ(aug.counters[3].total, 3.0 * 2.0);  // (1/0.25 - 1) * T
  EXPECT_DOUBLE_EQ(aug.counters[3].per_second, 3.0);
  // Core counters interact with the share scalar, memory counters with
  // the bandwidth overcommit, in catalog order.
  EXPECT_EQ(aug.counters[4].name, std::string(kMixShareInteractionPrefix) +
                                      "inst_issued");
  EXPECT_DOUBLE_EQ(aug.counters[4].total, 3.0 * 6.0e9);
  EXPECT_EQ(aug.counters[5].name, std::string(kMixBwInteractionPrefix) +
                                      "fb_subp0_read_sectors");
  EXPECT_DOUBLE_EQ(aug.counters[5].total, 0.5 * 8.0e6);

  const MixScalars s = mix_scalars(aug);
  EXPECT_DOUBLE_EQ(s.bw_overcommit, 0.5);
  EXPECT_DOUBLE_EQ(s.share_scalar, 3.0);
}

TEST(MixModel, AugmentRejectsBadInputs) {
  const profiler::ProfileResult base = base_profile();
  EXPECT_THROW(augment_profile(base, -0.1, 0.5), Error);
  EXPECT_THROW(augment_profile(base, 0.0, 0.0), Error);
  EXPECT_THROW(augment_profile(base, 0.0, 1.5), Error);
  profiler::ProfileResult timeless = base;
  timeless.run_time = Duration::seconds(0.0);
  EXPECT_THROW(augment_profile(timeless, 0.0, 0.5), Error);
  // Augmenting twice would stack pseudo-counters — a layout corruption.
  const profiler::ProfileResult once = augment_profile(base, 0.2, 0.5);
  EXPECT_THROW(augment_profile(once, 0.2, 0.5), Error);
  // And un-augmented profiles carry no scalars to recover.
  EXPECT_THROW(mix_scalars(base), Error);
}

TEST(MixCorpus, ShapesFollowTheHoldoutDiscipline) {
  MixCorpusOptions opt;
  opt.mixes = 8;
  opt.degree = 2;
  opt.holdout_every = 4;
  const MixCorpus corpus = build_mix_corpus(sim::GpuModel::GTX460, opt);
  EXPECT_EQ(corpus.model, sim::GpuModel::GTX460);
  EXPECT_EQ(corpus.degree, 2u);
  EXPECT_FALSE(corpus.solo.samples.empty());
  // Every (mix, member) lands in exactly one member split, every mix in
  // exactly one power split, and every fourth mix is held out.
  EXPECT_EQ(corpus.member_train.samples.size() +
                corpus.member_eval.samples.size(),
            opt.mixes * opt.degree);
  EXPECT_EQ(corpus.power_train.samples.size() +
                corpus.power_eval.samples.size(),
            opt.mixes);
  EXPECT_EQ(corpus.power_eval.samples.size(), opt.mixes / opt.holdout_every);
  EXPECT_EQ(corpus.member_eval.samples.size(),
            (opt.mixes / opt.holdout_every) * opt.degree);
  // Member samples carry the augmented layout; their scalars recover.
  for (const core::Sample& s : corpus.member_train.samples) {
    const MixScalars scalars = mix_scalars(s.counters);
    EXPECT_GE(scalars.bw_overcommit, 0.0);
    EXPECT_GT(scalars.share_scalar, 0.0);
    EXPECT_FALSE(s.runs.empty());
  }
}

TEST(MixCorpus, SameSeedBuildsBitIdenticalCorpora) {
  MixCorpusOptions opt;
  opt.mixes = 8;
  opt.degree = 2;
  const MixCorpus a = build_mix_corpus(sim::GpuModel::GTX480, opt);
  const MixCorpus b = build_mix_corpus(sim::GpuModel::GTX480, opt);
  ASSERT_EQ(a.member_train.samples.size(), b.member_train.samples.size());
  for (std::size_t i = 0; i < a.member_train.samples.size(); ++i) {
    const core::Sample& sa = a.member_train.samples[i];
    const core::Sample& sb = b.member_train.samples[i];
    ASSERT_EQ(sa.counters.counters.size(), sb.counters.counters.size());
    for (std::size_t c = 0; c < sa.counters.counters.size(); ++c) {
      EXPECT_EQ(sa.counters.counters[c].total, sb.counters.counters[c].total);
    }
    ASSERT_EQ(sa.runs.size(), sb.runs.size());
    for (std::size_t r = 0; r < sa.runs.size(); ++r) {
      EXPECT_EQ(sa.runs[r].exec_time.as_seconds(),
                sb.runs[r].exec_time.as_seconds());
      EXPECT_EQ(sa.runs[r].avg_power.as_watts(),
                sb.runs[r].avg_power.as_watts());
    }
  }
  ASSERT_EQ(a.power_eval.samples.size(), b.power_eval.samples.size());
  for (std::size_t i = 0; i < a.power_eval.samples.size(); ++i) {
    ASSERT_FALSE(a.power_eval.samples[i].runs.empty());
    EXPECT_EQ(a.power_eval.samples[i].runs[0].avg_power.as_watts(),
              b.power_eval.samples[i].runs[0].avg_power.as_watts());
  }

  MixCorpusOptions reseeded = opt;
  reseeded.seed = 43;
  const MixCorpus c = build_mix_corpus(sim::GpuModel::GTX480, reseeded);
  bool differs =
      c.member_train.samples.size() != a.member_train.samples.size();
  if (!differs) {
    differs = c.member_train.samples[0].runs[0].exec_time.as_seconds() !=
              a.member_train.samples[0].runs[0].exec_time.as_seconds();
  }
  EXPECT_TRUE(differs);
}

// The gate corpus and model set are shared across the tests below: the fit
// is the expensive step, and every assertion reads the same configuration
// the bench gates on (GTX 480, pairs, 32 mixes, 5-variable budget).
const MixCorpus& gate_corpus() {
  static const MixCorpus corpus = [] {
    MixCorpusOptions opt;
    opt.mixes = 32;
    opt.degree = 2;
    opt.seed = 42;
    return build_mix_corpus(sim::GpuModel::GTX480, opt);
  }();
  return corpus;
}

const MixModelSet& gate_models() {
  static const MixModelSet models = [] {
    core::ModelOptions opt;
    opt.max_variables = 5;
    return fit_mix_models(gate_corpus(), opt);
  }();
  return models;
}

TEST(MixModel, InterferenceGatePasses) {
  const MixEvaluation ev = evaluate_mix_models(gate_models(), gate_corpus());
  // The tentpole claim: a solo-trained time model systematically
  // underpredicts contended time, and the mix-aware family closes the gap
  // on mixes it never saw.
  EXPECT_LT(ev.solo_signed_bias, 0.0);
  EXPECT_LT(ev.mix_time_wape, ev.solo_time_wape);
  EXPECT_TRUE(ev.passes());
  EXPECT_GT(ev.solo_time_wape, 0.0);
  EXPECT_GT(ev.power_wape, 0.0);
}

TEST(MixModel, FamiliesCarryTheCorpusIdentity) {
  const MixModelSet& models = gate_models();
  EXPECT_EQ(models.model, sim::GpuModel::GTX480);
  EXPECT_EQ(models.degree, 2u);
  EXPECT_GE(models.mix_time.size(), 1u);
  EXPECT_GE(models.mix_power.size(), 1u);
}

TEST(MixModel, PredictionsRespectTheSlowdownEnvelope) {
  const MixModelSet& models = gate_models();
  for (const core::Sample& s : gate_corpus().member_eval.samples) {
    const MixScalars scalars = mix_scalars(s.counters);
    for (const core::Measurement& run : s.runs) {
      const double solo =
          models.solo_time.full().predict(s.counters, run.pair);
      const double mix = predict_member_time(models, s.counters, run.pair);
      if (solo > 0.0) {
        const double ceiling = solo * (1.0 + scalars.share_scalar) *
                               (1.0 + scalars.bw_overcommit);
        EXPECT_LE(mix, ceiling * (1.0 + 1e-12));
        EXPECT_GT(mix, 0.0);
      }
    }
  }
}

}  // namespace
}  // namespace gppm::mix
