#include "mix/engine.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "mix/profile.hpp"

namespace gppm::mix {
namespace {

sim::KernelProfile compute_kernel(const std::string& name) {
  sim::KernelProfile k;
  k.name = name;
  k.blocks = 2048;
  k.threads_per_block = 256;
  k.flops_sp_per_thread = 800.0;
  k.int_ops_per_thread = 100.0;
  k.global_load_bytes_per_thread = 2.0;
  k.locality = 0.8;
  return k;
}

sim::KernelProfile memory_kernel(const std::string& name) {
  sim::KernelProfile k;
  k.name = name;
  k.blocks = 2048;
  k.threads_per_block = 256;
  k.flops_sp_per_thread = 4.0;
  k.global_load_bytes_per_thread = 64.0;
  k.global_store_bytes_per_thread = 16.0;
  k.locality = 0.1;
  return k;
}

MixMember member(const std::string& benchmark, sim::KernelProfile kernel,
                 double share) {
  MixMember m;
  m.benchmark = benchmark;
  m.kernel = std::move(kernel);
  m.sm_share = share;
  return m;
}

MixProfile pair_mix(double share_a = 0.5, double share_b = 0.5) {
  MixProfile mix;
  mix.name = "test-pair";
  mix.members.push_back(member("alpha", compute_kernel("ck"), share_a));
  mix.members.push_back(member("beta", memory_kernel("mk"), share_b));
  return mix;
}

TEST(MixProfileValidate, RejectsBadCardinality) {
  MixProfile one;
  one.name = "one";
  one.members.push_back(member("a", compute_kernel("ck"), 0.5));
  EXPECT_THROW(validate(one), Error);

  MixProfile five;
  five.name = "five";
  for (int i = 0; i < 5; ++i) {
    std::string name = "b";
    name += std::to_string(i);
    five.members.push_back(member(name, compute_kernel("ck"), 0.19));
  }
  EXPECT_THROW(validate(five), Error);

  EXPECT_NO_THROW(validate(pair_mix()));
}

TEST(MixProfileValidate, RejectsBadShares) {
  EXPECT_THROW(validate(pair_mix(0.0, 0.5)), Error);
  EXPECT_THROW(validate(pair_mix(-0.1, 0.5)), Error);
  EXPECT_THROW(validate(pair_mix(1.2, 0.5)), Error);
  // Oversubscribed partition: each share is legal, the sum is not.
  EXPECT_THROW(validate(pair_mix(0.7, 0.7)), Error);
  // A full partition is legal.
  EXPECT_NO_THROW(validate(pair_mix(0.6, 0.4)));
}

TEST(MixProfileValidate, RejectsDuplicateBenchmarks) {
  MixProfile mix;
  mix.name = "dup";
  mix.members.push_back(member("same", compute_kernel("ck"), 0.5));
  mix.members.push_back(member("same", memory_kernel("mk"), 0.5));
  EXPECT_THROW(validate(mix), Error);
}

TEST(MixKey, DependsOnMembersNotOrder) {
  MixProfile a = pair_mix(0.6, 0.4);
  MixProfile b = a;
  std::swap(b.members[0], b.members[1]);
  b.name = "renamed";  // identity is the member set, not the label
  EXPECT_EQ(mix_key(a), mix_key(b));
  EXPECT_NE(mix_key(a), mix_key(pair_mix(0.5, 0.5)));
}

TEST(MixEngine, ExecutionIsDeterministicAndOrderIndependent) {
  const MixProfile mix_a = pair_mix(0.6, 0.4);
  MixProfile mix_b = pair_mix(0.5, 0.5);
  mix_b.name = "test-pair-even";

  MixEngine first(sim::GpuModel::GTX480, 42);
  MixEngine second(sim::GpuModel::GTX480, 42);
  const MixExecution a1 = first.execute(mix_a);
  const MixExecution b1 = first.execute(mix_b);
  // The second engine sees mix_b first: results must not depend on call
  // order (the determinism contract mirrors sim::Gpu's).
  const MixExecution b2 = second.execute(mix_b);
  const MixExecution a2 = second.execute(mix_a);

  for (const auto* p : {&a1, &b1}) {
    const MixExecution& x = *p;
    const MixExecution& y = (p == &a1) ? a2 : b2;
    EXPECT_EQ(x.makespan.as_seconds(), y.makespan.as_seconds());
    EXPECT_EQ(x.avg_power.as_watts(), y.avg_power.as_watts());
    EXPECT_EQ(x.energy.as_joules(), y.energy.as_joules());
    ASSERT_EQ(x.members.size(), y.members.size());
    for (std::size_t i = 0; i < x.members.size(); ++i) {
      EXPECT_EQ(x.members[i].contended_time.as_seconds(),
                y.members[i].contended_time.as_seconds());
      EXPECT_EQ(x.members[i].solo_time.as_seconds(),
                y.members[i].solo_time.as_seconds());
      EXPECT_EQ(x.members[i].slowdown, y.members[i].slowdown);
    }
  }
}

TEST(MixEngine, ContentionNeverSpeedsAMemberUp) {
  MixEngine engine(sim::GpuModel::GTX480, 42);
  const MixExecution out = engine.execute(pair_mix(0.5, 0.5));
  ASSERT_EQ(out.members.size(), 2u);
  double max_contended = 0.0;
  for (const MemberExecution& m : out.members) {
    EXPECT_GE(m.slowdown, 1.0 - 1e-9) << m.benchmark;
    EXPECT_GE(m.contended_time.as_seconds(),
              m.solo_time.as_seconds() * (1.0 - 1e-9));
    EXPECT_GT(m.bw_demand, 0.0);
    EXPECT_GE(m.co_bw_pressure, 0.0);
    max_contended = std::max(max_contended, m.contended_time.as_seconds());
  }
  EXPECT_GE(out.contention_factor, 1.0);
  EXPECT_DOUBLE_EQ(out.makespan.as_seconds(), max_contended);
  EXPECT_DOUBLE_EQ(out.energy.as_joules(),
                   out.avg_power.as_watts() * out.makespan.as_seconds());
}

TEST(MixEngine, SmallerShareSlowsDownMore) {
  // The same kernel under two benchmark names: the member squeezed onto
  // fewer SMs must finish later than its twin with the bigger partition.
  MixProfile mix;
  mix.name = "asymmetric";
  mix.members.push_back(member("big", compute_kernel("twin"), 0.7));
  mix.members.push_back(member("small", compute_kernel("twin"), 0.3));

  MixEngine engine(sim::GpuModel::GTX480, 42);
  const MixExecution out = engine.execute(mix);
  ASSERT_EQ(out.members.size(), 2u);
  // Identical kernels realize identical solo runs (draws key on the
  // kernel, not the member slot), so the slowdowns order like the times.
  EXPECT_EQ(out.members[0].solo_time.as_seconds(),
            out.members[1].solo_time.as_seconds());
  EXPECT_GT(out.members[1].contended_time.as_seconds(),
            out.members[0].contended_time.as_seconds());
  EXPECT_GT(out.members[1].slowdown, out.members[0].slowdown);
}

TEST(MixEngine, BandwidthPressureTracksMemoryHunger) {
  // Two memory-hungry kernels overcommit bandwidth harder than two
  // compute kernels; the contention factor must reflect that.
  MixProfile hungry;
  hungry.name = "hungry";
  hungry.members.push_back(member("m1", memory_kernel("mk1"), 0.5));
  hungry.members.push_back(member("m2", memory_kernel("mk2"), 0.5));
  MixProfile mild;
  mild.name = "mild";
  mild.members.push_back(member("c1", compute_kernel("ck1"), 0.5));
  mild.members.push_back(member("c2", compute_kernel("ck2"), 0.5));

  MixEngine engine(sim::GpuModel::GTX480, 42);
  const MixExecution h = engine.execute(hungry);
  const MixExecution m = engine.execute(mild);
  EXPECT_GT(h.bw_pressure, m.bw_pressure);
  EXPECT_GT(h.contention_factor, 1.0);
  // Two memory kernels on half a board each genuinely collide: both run
  // visibly slower than solo, not within float noise of it.
  for (const MemberExecution& me : h.members) {
    EXPECT_GT(me.slowdown, 1.05) << me.benchmark;
  }
}

TEST(MixEngine, ExecuteValidatesTheMix) {
  MixEngine engine(sim::GpuModel::GTX480, 42);
  EXPECT_THROW(engine.execute(pair_mix(0.8, 0.8)), Error);
}

TEST(MixEngine, RespectsPinnedFrequencyPair) {
  MixEngine engine(sim::GpuModel::GTX480, 42);
  const MixExecution high = engine.execute(pair_mix());
  engine.set_frequency_pair(
      {sim::ClockLevel::Low, sim::ClockLevel::Low});
  const MixExecution low = engine.execute(pair_mix());
  EXPECT_GT(low.makespan.as_seconds(), high.makespan.as_seconds());
}

}  // namespace
}  // namespace gppm::mix
