// Router behaviors against a scriptable fake backend: deterministic
// placement, failover + breaker trip, typed exhaustion, hedging on a slow
// primary, the submit() future contract, and membership-change rerouting.
// The fake answers instantly (or after a scripted delay on a private
// thread) with a per-backend power constant, so each response identifies
// who served it.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/ring.hpp"
#include "cluster/router.hpp"
#include "common/error.hpp"

namespace gppm::cluster {
namespace {

class FakeBackend : public Backend {
 public:
  FakeBackend(std::string name, double power_constant)
      : name_(std::move(name)) {
    canned_.kind = serve::RequestKind::Predict;
    canned_.status = serve::ResponseStatus::Ok;
    canned_.power_watts = power_constant;
    canned_.time_seconds = 0.125;
    canned_.energy_joules = power_constant * 0.125;
  }

  ~FakeBackend() override {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::thread& t : delayers_) t.join();
  }

  const std::string& name() const override { return name_; }

  std::future<serve::Response> submit(const serve::Request&) override {
    ++submits_;
    if (always_throw_.load()) throw Error(name_ + " is down");
    std::promise<serve::Response> promise;
    std::future<serve::Response> future = promise.get_future();
    const double delay_s = delay_seconds_.load();
    if (delay_s > 0.0) {
      std::lock_guard<std::mutex> lock(mutex_);
      delayers_.emplace_back(
          [promise = std::move(promise), delay_s, r = canned_]() mutable {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(delay_s));
            promise.set_value(r);
          });
    } else {
      promise.set_value(canned_);
    }
    return future;
  }

  bool ping() override { return !always_throw_.load(); }

  void set_down(bool down) { always_throw_.store(down); }
  void set_delay_seconds(double s) { delay_seconds_.store(s); }
  std::uint64_t submits() const { return submits_.load(); }
  double power_constant() const { return canned_.power_watts; }

 private:
  std::string name_;
  serve::Response canned_;
  std::atomic<bool> always_throw_{false};
  std::atomic<double> delay_seconds_{0.0};
  std::atomic<std::uint64_t> submits_{0};
  std::mutex mutex_;
  std::vector<std::thread> delayers_;
};

serve::Request make_request(int i) {
  serve::Request r;
  r.kind = serve::RequestKind::Predict;
  r.gpu = sim::GpuModel::GTX460;
  r.counters.counters.push_back({"k" + std::to_string(i),
                                 profiler::EventClass::Core,
                                 static_cast<double>(i), 1.0});
  return r;
}

RouterOptions quiet_options() {
  RouterOptions opt;
  opt.hedging = false;
  opt.health_interval = Duration::seconds(0.0);  // tests drive breakers
  return opt;
}

/// Index of a request whose ring primary is `want` — computed on a shadow
/// ring with the router's member names, since placement is a pure function
/// of (names, key).
int request_owned_by(const std::vector<std::string>& members,
                     const std::string& want) {
  HashRing ring;
  for (const std::string& m : members) ring.add(m);
  for (int i = 0; i < 1000; ++i) {
    if (ring.owner(request_key(make_request(i))) == want) return i;
  }
  ADD_FAILURE() << "no request found with primary " << want;
  return 0;
}

TEST(ClusterRouter, RoutesDeterministicallyAndSpreadsKeys) {
  Router router(quiet_options());
  auto a = std::make_shared<FakeBackend>("alpha", 100.0);
  auto b = std::make_shared<FakeBackend>("beta", 200.0);
  router.add_backend(a);
  router.add_backend(b);

  // Same request, ten times: always the same server answers.
  const serve::Request pinned = make_request(0);
  const double first = router.predict(pinned).power_watts;
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(router.predict(pinned).power_watts, first);
  }

  // Distinct keys land on both backends.
  for (int i = 1; i <= 40; ++i) router.predict(make_request(i));
  EXPECT_GT(a->submits(), 0u);
  EXPECT_GT(b->submits(), 0u);
  EXPECT_EQ(router.stats().requests, 50u);
  EXPECT_EQ(router.stats().failovers, 0u);
}

TEST(ClusterRouter, NoBackendsThrowsTypedError) {
  Router router(quiet_options());
  EXPECT_THROW(router.predict(make_request(0)), Error);
}

TEST(ClusterRouter, FailoverCoversDeadBackendAndTripsItsBreaker) {
  RouterOptions opt = quiet_options();
  opt.breaker.failure_threshold = 3;
  Router router(opt);
  auto dead = std::make_shared<FakeBackend>("dead", 100.0);
  auto live = std::make_shared<FakeBackend>("live", 200.0);
  dead->set_down(true);
  router.add_backend(dead);
  router.add_backend(live);

  // With replicas=2 every key's candidate list holds both nodes, so every
  // answer must come from the live one — failover, not failure.
  for (int i = 0; i < 30; ++i) {
    const serve::Response r = router.predict(make_request(i));
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.power_watts, live->power_constant());
  }
  const RouterStats stats = router.stats();
  EXPECT_GT(stats.failovers, 0u);
  // Three consecutive launch failures tripped the breaker; with no health
  // loop nothing probes it back, and later keys whose primary is `dead`
  // are rerouted without a submit (breaker_rejections).
  EXPECT_EQ(router.breaker_state("dead"), BreakerState::Open);
  EXPECT_EQ(router.breaker_state("live"), BreakerState::Closed);
  EXPECT_GT(stats.breaker_rejections, 0u);
  EXPECT_LE(dead->submits(), 3u);
}

TEST(ClusterRouter, AllReplicasFailedAnswersTypedInternalError) {
  Router router(quiet_options());
  auto only = std::make_shared<FakeBackend>("only", 100.0);
  only->set_down(true);
  router.add_backend(only);

  const serve::Response r = router.predict(make_request(0));  // never throws
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status, serve::ResponseStatus::InternalError);
  EXPECT_FALSE(r.error.empty());
  EXPECT_GT(router.stats().exhausted, 0u);
}

TEST(ClusterRouter, HedgeFiresOnSlowPrimaryAndFastReplicaWins) {
  RouterOptions opt;
  opt.health_interval = Duration::seconds(0.0);
  opt.hedging = true;
  // Pin the trigger: no warm-up requirement, and the clamp window is a
  // point, so the hedge fires exactly 2 ms into a slow primary.
  opt.hedge_min_samples = 0;
  opt.hedge_min_delay = Duration::milliseconds(2.0);
  opt.hedge_max_delay = Duration::milliseconds(2.0);
  Router router(opt);
  auto slow = std::make_shared<FakeBackend>("slow", 100.0);
  auto fast = std::make_shared<FakeBackend>("fast", 200.0);
  slow->set_delay_seconds(0.040);
  router.add_backend(slow);
  router.add_backend(fast);
  EXPECT_DOUBLE_EQ(router.hedge_delay().as_seconds(), 2e-3);

  const int i = request_owned_by({"slow", "fast"}, "slow");
  const serve::Response r = router.predict(make_request(i));
  ASSERT_TRUE(r.ok());
  // The fast replica's answer came back first; the slow flight was
  // abandoned, not awaited — well under the 40 ms primary delay.
  EXPECT_EQ(r.power_watts, fast->power_constant());
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.hedges_fired, 1u);
  EXPECT_EQ(stats.hedge_wins, 1u);
  EXPECT_EQ(stats.hedges_abandoned, 1u);
  EXPECT_EQ(stats.failovers, 0u);  // a hedge is not a failover
}

TEST(ClusterRouter, EmptyLatencyWindowHasNoQuantileEstimate) {
  // Regression: an empty tracker answered 0.0, which callers clamping into
  // a delay band turned into the *aggressive* floor.  "No samples" is "no
  // estimate" — the sentinel is +inf so such clamps land on the ceiling.
  LatencyTracker tracker;
  EXPECT_TRUE(std::isinf(tracker.quantile(0.0)));
  EXPECT_TRUE(std::isinf(tracker.quantile(0.5)));
  EXPECT_TRUE(std::isinf(tracker.quantile(0.99)));
}

TEST(ClusterRouter, SingleSampleWindowAnswersItsOwnBinAtEveryQuantile) {
  // Regression: rank was the fractional q * total compared with >=, so
  // q == 0 (rank 0) matched the empty bin 0 and reported ~1.19 us for a
  // window whose only sample was 10 ms.  Every quantile of a one-sample
  // window must return that sample's own bin edge.
  LatencyTracker tracker;
  tracker.record(0.010);  // 10 ms
  const double edge = tracker.quantile(0.5);
  EXPECT_GT(edge, 0.008);
  EXPECT_LT(edge, 0.014);  // ~19 % log-bin width around 10 ms
  EXPECT_DOUBLE_EQ(tracker.quantile(0.0), edge);
  EXPECT_DOUBLE_EQ(tracker.quantile(0.99), edge);
  EXPECT_DOUBLE_EQ(tracker.quantile(1.0), edge);
}

TEST(ClusterRouter, HedgeWaitsAtCeilingBeforeAnyLatencyIsObserved) {
  // Regression: with hedge_min_samples == 0 an unwarmed router computed
  // quantile() == 0.0 and clamped to hedge_min_delay — hedging every
  // request at the most aggressive trigger before a single latency had
  // been observed.  The no-estimate sentinel now clamps to the ceiling.
  RouterOptions opt;
  opt.health_interval = Duration::seconds(0.0);
  opt.hedging = true;
  opt.hedge_min_samples = 0;
  opt.hedge_min_delay = Duration::milliseconds(0.5);
  opt.hedge_max_delay = Duration::milliseconds(100.0);
  Router router(opt);
  EXPECT_DOUBLE_EQ(router.hedge_delay().as_seconds(),
                   opt.hedge_max_delay.as_seconds());
}

TEST(ClusterRouter, SubmitDeliversThroughFutureAndThrowsAfterStop) {
  Router router(quiet_options());
  auto a = std::make_shared<FakeBackend>("alpha", 100.0);
  router.add_backend(a);

  std::vector<std::future<serve::Response>> futures;
  futures.reserve(16);
  for (int i = 0; i < 16; ++i) futures.push_back(router.submit(make_request(i)));
  for (std::future<serve::Response>& f : futures) {
    const serve::Response r = f.get();  // never an exception once enqueued
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.power_watts, a->power_constant());
  }

  router.stop();
  EXPECT_THROW(router.submit(make_request(0)), Error);
  EXPECT_THROW(router.predict(make_request(0)), Error);
}

TEST(ClusterRouter, RemoveBackendReroutesItsKeys) {
  Router router(quiet_options());
  auto a = std::make_shared<FakeBackend>("alpha", 100.0);
  auto b = std::make_shared<FakeBackend>("beta", 200.0);
  router.add_backend(a);
  router.add_backend(b);

  const int i = request_owned_by({"alpha", "beta"}, "alpha");
  EXPECT_EQ(router.predict(make_request(i)).power_watts, a->power_constant());

  router.remove_backend("alpha");
  EXPECT_EQ(router.backends(), std::vector<std::string>{"beta"});
  const serve::Response r = router.predict(make_request(i));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.power_watts, b->power_constant());

  router.remove_backend("ghost");  // unknown names are a no-op
  EXPECT_EQ(router.backends().size(), 1u);
}

TEST(ClusterRouter, HealthReflectsBreakerAdmission) {
  RouterOptions opt = quiet_options();
  opt.breaker.failure_threshold = 1;
  Router router(opt);
  auto a = std::make_shared<FakeBackend>("alpha", 100.0);
  router.add_backend(a);
  EXPECT_TRUE(router.health().accepting);
  EXPECT_EQ(router.health().boards, 1u);

  a->set_down(true);
  router.predict(make_request(0));  // trips the only breaker
  ASSERT_EQ(router.breaker_state("alpha"), BreakerState::Open);
  EXPECT_FALSE(router.health().accepting);
}

}  // namespace
}  // namespace gppm::cluster
