// Concurrent membership churn: one thread cycles add_backend /
// drain_backend / remove_backend while others run predict() and read
// stats()/health()/breaker_state()/in_flight().  The assertions are
// deliberately weak (every request answered, typed statuses only, counts
// coherent) — the real gate is the ThreadSanitizer build: this file is
// part of test_cluster, which `cluster_smoke` runs under
// -DGPPM_SANITIZE=thread, so any membership/hot-path data race fails
// there.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/router.hpp"

namespace gppm::cluster {
namespace {

class FakeBackend : public Backend {
 public:
  FakeBackend(std::string name, double power_constant)
      : name_(std::move(name)) {
    canned_.kind = serve::RequestKind::Predict;
    canned_.status = serve::ResponseStatus::Ok;
    canned_.power_watts = power_constant;
    canned_.time_seconds = 0.125;
    canned_.energy_joules = power_constant * 0.125;
  }

  const std::string& name() const override { return name_; }

  std::future<serve::Response> submit(const serve::Request&) override {
    std::promise<serve::Response> promise;
    promise.set_value(canned_);
    return promise.get_future();
  }

  bool ping() override { return true; }

 private:
  std::string name_;
  serve::Response canned_;
};

serve::Request make_request(int i) {
  serve::Request r;
  r.kind = serve::RequestKind::Predict;
  r.gpu = sim::GpuModel::GTX460;
  r.counters.counters.push_back({"k" + std::to_string(i),
                                 profiler::EventClass::Core,
                                 static_cast<double>(i), 1.0});
  return r;
}

TEST(ClusterMembership, ChurnUnderConcurrentTrafficStaysCoherent) {
  RouterOptions opt;
  opt.hedging = false;
  opt.health_interval = Duration::milliseconds(2.0);  // probe loop racing too
  Router router(opt);
  // The anchor never leaves, so predict() always has a member to land on.
  router.add_backend(std::make_shared<FakeBackend>("anchor", 100.0));

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> not_ok{0};

  constexpr int kTrafficThreads = 3;
  std::vector<std::thread> traffic;
  for (int t = 0; t < kTrafficThreads; ++t) {
    traffic.emplace_back([&, t] {
      int i = t;
      while (!done.load(std::memory_order_acquire)) {
        const serve::Response r = router.predict(make_request(i++));
        ++answered;
        if (!r.ok()) ++not_ok;
      }
    });
  }

  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)router.stats();
      (void)router.backends();
      (void)router.health();
      (void)router.breaker_state("anchor");
      (void)router.in_flight("churn");
      (void)router.draining("churn");
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // The churner: join a member, let traffic find it, then take it out —
  // alternating planned drains and abrupt removals, plus a second member
  // whose add/remove overlaps the first's drain window.
  constexpr int kCycles = 150;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    router.add_backend(std::make_shared<FakeBackend>("churn", 200.0));
    router.add_backend(std::make_shared<FakeBackend>("extra", 300.0));
    std::this_thread::sleep_for(std::chrono::microseconds(500));
    router.remove_backend("extra");
    if (cycle % 2 == 0) {
      const DrainReport report =
          router.drain_backend("churn", Duration::seconds(2.0));
      EXPECT_TRUE(report.completed) << "cycle " << cycle;
    } else {
      router.remove_backend("churn");
    }
  }

  done.store(true, std::memory_order_release);
  for (std::thread& t : traffic) t.join();
  reader.join();

  // Everything was answered; nothing threw out of predict(); the fakes
  // never fail, so abrupt removals are the only refusal source and even
  // those resolve through the still-held slot.
  EXPECT_GT(answered.load(), 0u);
  EXPECT_EQ(not_ok.load(), 0u);
  EXPECT_EQ(router.stats().requests, answered.load());
  EXPECT_GE(router.stats().drains, static_cast<std::uint64_t>(kCycles) / 2);
  EXPECT_EQ(router.backends(), std::vector<std::string>{"anchor"});
  EXPECT_TRUE(router.health().accepting);
}

}  // namespace
}  // namespace gppm::cluster
