// Circuit-breaker state machine, driven entirely by explicit time_points —
// no sleeping, so the transition timings under test are exact.
#include "cluster/breaker.hpp"

#include <gtest/gtest.h>

namespace gppm::cluster {
namespace {

using Clock = CircuitBreaker::Clock;

constexpr auto kStart = Clock::time_point{std::chrono::seconds(100)};

BreakerOptions fast_options() {
  BreakerOptions opt;
  opt.failure_threshold = 3;
  opt.cooldown = std::chrono::milliseconds(500);
  opt.half_open_successes = 2;
  opt.half_open_probes = 2;
  return opt;
}

TEST(ClusterBreaker, ClosedAdmitsAndAbsorbsScatteredFailures) {
  CircuitBreaker breaker(fast_options());
  EXPECT_EQ(breaker.state(kStart), BreakerState::Closed);
  // Failures interleaved with successes never accumulate to the threshold:
  // the counter is *consecutive* failures.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(breaker.allow(kStart));
    breaker.record_failure(kStart);
    breaker.record_failure(kStart);
    breaker.record_success(kStart);
  }
  EXPECT_EQ(breaker.state(kStart), BreakerState::Closed);
  EXPECT_EQ(breaker.opens(), 0u);
}

TEST(ClusterBreaker, ConsecutiveFailuresTripOpen) {
  CircuitBreaker breaker(fast_options());
  breaker.record_failure(kStart);
  breaker.record_failure(kStart);
  EXPECT_EQ(breaker.state(kStart), BreakerState::Closed);
  breaker.record_failure(kStart);  // third consecutive
  EXPECT_EQ(breaker.state(kStart), BreakerState::Open);
  EXPECT_EQ(breaker.opens(), 1u);
  // Open refuses everything until the cooldown elapses.
  EXPECT_FALSE(breaker.allow(kStart));
  EXPECT_FALSE(breaker.allow(kStart + std::chrono::milliseconds(499)));
}

TEST(ClusterBreaker, CooldownElapsedAdmitsBoundedProbes) {
  CircuitBreaker breaker(fast_options());
  for (int i = 0; i < 3; ++i) breaker.record_failure(kStart);
  const auto probe_time = kStart + std::chrono::milliseconds(500);
  // First allow() after the cooldown is the Open -> HalfOpen transition.
  EXPECT_TRUE(breaker.allow(probe_time));
  EXPECT_EQ(breaker.state(probe_time), BreakerState::HalfOpen);
  // A second probe fits (half_open_probes = 2); a third is refused while
  // both outcomes are pending — no thundering herd on a recovering node.
  EXPECT_TRUE(breaker.allow(probe_time));
  EXPECT_FALSE(breaker.allow(probe_time));
}

TEST(ClusterBreaker, HalfOpenSuccessesClose) {
  CircuitBreaker breaker(fast_options());
  for (int i = 0; i < 3; ++i) breaker.record_failure(kStart);
  const auto probe_time = kStart + std::chrono::milliseconds(500);
  ASSERT_TRUE(breaker.allow(probe_time));
  breaker.record_success(probe_time);
  EXPECT_EQ(breaker.state(probe_time), BreakerState::HalfOpen)
      << "one success of the required two must not close";
  ASSERT_TRUE(breaker.allow(probe_time));
  breaker.record_success(probe_time);
  EXPECT_EQ(breaker.state(probe_time), BreakerState::Closed);
  // A closed-again breaker needs a full fresh run of consecutive failures.
  breaker.record_failure(probe_time);
  EXPECT_EQ(breaker.state(probe_time), BreakerState::Closed);
  EXPECT_EQ(breaker.opens(), 1u);
}

TEST(ClusterBreaker, HalfOpenFailureReopensAndRestartsCooldown) {
  CircuitBreaker breaker(fast_options());
  for (int i = 0; i < 3; ++i) breaker.record_failure(kStart);
  const auto probe_time = kStart + std::chrono::milliseconds(500);
  ASSERT_TRUE(breaker.allow(probe_time));
  breaker.record_failure(probe_time);  // probe failed — straight back to Open
  EXPECT_EQ(breaker.state(probe_time), BreakerState::Open);
  EXPECT_EQ(breaker.opens(), 2u);
  // The cooldown restarts from the reopen, not from the original trip.
  EXPECT_FALSE(breaker.allow(probe_time + std::chrono::milliseconds(499)));
  EXPECT_TRUE(breaker.allow(probe_time + std::chrono::milliseconds(500)));
}

TEST(ClusterBreaker, StateToStringCoversAllStates) {
  EXPECT_EQ(to_string(BreakerState::Closed), "closed");
  EXPECT_EQ(to_string(BreakerState::Open), "open");
  EXPECT_EQ(to_string(BreakerState::HalfOpen), "half-open");
}

}  // namespace
}  // namespace gppm::cluster
