// The two properties consistent hashing is *for*: keys spread near
// uniformly across members, and membership change remaps a bounded ≈K/N
// slice of the key space instead of reshuffling everything.
#include "cluster/ring.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gppm::cluster {
namespace {

std::vector<std::uint64_t> random_keys(std::size_t count,
                                       std::uint64_t seed = 1) {
  std::vector<std::uint64_t> keys;
  keys.reserve(count);
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) keys.push_back(rng.next_u64());
  return keys;
}

TEST(ClusterRing, MembershipIsIdempotentAndSorted) {
  HashRing ring;
  EXPECT_TRUE(ring.add("b"));
  EXPECT_TRUE(ring.add("a"));
  EXPECT_FALSE(ring.add("a"));  // already present
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_TRUE(ring.contains("a"));
  EXPECT_FALSE(ring.contains("c"));
  EXPECT_TRUE(ring.remove("a"));
  EXPECT_FALSE(ring.remove("a"));
  EXPECT_EQ(ring.size(), 1u);
}

TEST(ClusterRing, EmptyRingThrowsTypedError) {
  HashRing ring;
  EXPECT_THROW(ring.owner(42), Error);
  ring.add("only");
  EXPECT_EQ(ring.owner(42), "only");
}

TEST(ClusterRing, OwnershipIsDeterministic) {
  HashRing a, b;
  for (const char* m : {"node0", "node1", "node2"}) {
    a.add(m);
    b.add(m);
  }
  for (const std::uint64_t key : random_keys(500)) {
    EXPECT_EQ(a.owner(key), b.owner(key));
  }
}

std::map<std::string, std::size_t> owner_counts(
    const HashRing& ring, const std::vector<std::uint64_t>& keys) {
  std::map<std::string, std::size_t> counts;
  for (const std::uint64_t key : keys) ++counts[ring.owner(key)];
  return counts;
}

TEST(ClusterRing, DistributionWithinTenPercentOfUniform) {
  // The distribution bound: with the default 256 vnodes per member, K keys
  // over N members land within ±10 % of K/N at the fleet sizes the bench
  // and CLI run (per-member arc variance grows with N, so larger
  // memberships need more vnodes — pinned separately below).
  const std::vector<std::uint64_t> keys = random_keys(60000, 7);
  for (const std::size_t n : {2u, 3u, 4u}) {
    HashRing ring;
    for (std::size_t i = 0; i < n; ++i) ring.add("node" + std::to_string(i));
    const auto counts = owner_counts(ring, keys);
    const double expected =
        static_cast<double>(keys.size()) / static_cast<double>(n);
    ASSERT_EQ(counts.size(), n);
    for (const auto& [member, count] : counts) {
      EXPECT_NEAR(static_cast<double>(count), expected, 0.10 * expected)
          << member << " at N=" << n;
    }
  }
}

TEST(ClusterRing, MoreVnodesTightenTheBandAtLargerMemberships) {
  const std::vector<std::uint64_t> keys = random_keys(60000, 7);
  HashRing ring(512);
  for (std::size_t i = 0; i < 8; ++i) ring.add("node" + std::to_string(i));
  const auto counts = owner_counts(ring, keys);
  const double expected = static_cast<double>(keys.size()) / 8.0;
  ASSERT_EQ(counts.size(), 8u);
  for (const auto& [member, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count), expected, 0.10 * expected)
        << member;
  }
}

TEST(ClusterRing, MemberJoinRemapsAboutOneNthOfKeys) {
  const std::vector<std::uint64_t> keys = random_keys(40000, 11);
  for (const std::size_t n : {3u, 5u}) {
    HashRing ring;
    for (std::size_t i = 0; i < n; ++i) ring.add("node" + std::to_string(i));
    std::vector<std::string> before;
    before.reserve(keys.size());
    for (const std::uint64_t key : keys) before.push_back(ring.owner(key));

    ring.add("joiner");
    std::size_t moved = 0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const std::string& now = ring.owner(keys[i]);
      if (now != before[i]) {
        // Every remapped key moves *to the joiner*, never between
        // incumbents — the bounded-remap property.
        EXPECT_EQ(now, "joiner");
        ++moved;
      }
    }
    // ≈K/(N+1) keys move; allow a ±40 % band around the ideal share.
    const double ideal =
        static_cast<double>(keys.size()) / static_cast<double>(n + 1);
    EXPECT_NEAR(static_cast<double>(moved), ideal, 0.4 * ideal) << "N=" << n;
  }
}

TEST(ClusterRing, MemberLeaveRemapsOnlyItsOwnKeys) {
  const std::vector<std::uint64_t> keys = random_keys(40000, 13);
  HashRing ring;
  for (int i = 0; i < 4; ++i) ring.add("node" + std::to_string(i));
  std::vector<std::string> before;
  before.reserve(keys.size());
  for (const std::uint64_t key : keys) before.push_back(ring.owner(key));

  ring.remove("node2");
  std::size_t moved = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (before[i] == "node2") {
      EXPECT_NE(ring.owner(keys[i]), "node2");
      ++moved;
    } else {
      // Keys the leaver did not own must not move at all.
      EXPECT_EQ(ring.owner(keys[i]), before[i]);
    }
  }
  const double ideal = static_cast<double>(keys.size()) / 4.0;
  EXPECT_NEAR(static_cast<double>(moved), ideal, 0.4 * ideal);
}

TEST(ClusterRing, ReplicasAreDistinctPrimaryFirst) {
  HashRing ring;
  for (int i = 0; i < 5; ++i) ring.add("node" + std::to_string(i));
  for (const std::uint64_t key : random_keys(1000, 17)) {
    const std::vector<std::string> owners = ring.replicas(key, 3);
    ASSERT_EQ(owners.size(), 3u);
    EXPECT_EQ(owners[0], ring.owner(key));
    EXPECT_NE(owners[0], owners[1]);
    EXPECT_NE(owners[0], owners[2]);
    EXPECT_NE(owners[1], owners[2]);
  }
  // Asking for more replicas than members clamps to the membership.
  EXPECT_EQ(ring.replicas(1, 99).size(), 5u);
}

TEST(ClusterRing, RequestKeySpreadsPhasesAndStaysStable) {
  serve::Request a;
  a.gpu = sim::GpuModel::GTX460;
  a.counters.counters.push_back(
      {"counter0", profiler::EventClass::Core, 10.0, 1.0});
  serve::Request b = a;
  b.counters.counters[0].total = 11.0;  // different phase
  serve::Request c = a;
  c.gpu = sim::GpuModel::GTX680;  // different board, same phase

  EXPECT_EQ(request_key(a), request_key(a));  // deterministic
  EXPECT_NE(request_key(a), request_key(b));  // phase in the key
  EXPECT_NE(request_key(a), request_key(c));  // board in the key
  // The pair is deliberately *not* in the key: all operating points of a
  // phase share owners (and their prediction caches).
  serve::Request d = a;
  d.pair = {sim::ClockLevel::Low, sim::ClockLevel::Low};
  EXPECT_EQ(request_key(a), request_key(d));
}

}  // namespace
}  // namespace gppm::cluster
