// Cluster chaos: a 3-node in-process LocalFleet under concurrent load
// while one node is killed and restarted mid-run.  The gate mirrors the
// loadgen/bench chaos profile: every request is answered (typed non-Ok
// statuses are acceptable refusals, exceptions are not), and every Ok
// answer is bit-identical to a single-node ground truth.  This file is the
// `cluster_smoke` shape — build with -DGPPM_SANITIZE=thread to run it
// under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cluster/fleet.hpp"
#include "core/dataset.hpp"

namespace gppm::cluster {
namespace {

const core::Dataset& dataset() {
  static const core::Dataset ds = core::build_dataset(sim::GpuModel::GTX460);
  return ds;
}

core::UnifiedModel power_model() {
  return core::UnifiedModel::fit(dataset(), core::TargetKind::Power);
}

core::UnifiedModel perf_model() {
  return core::UnifiedModel::fit(dataset(), core::TargetKind::ExecTime);
}

serve::Request predict_request(std::size_t sample_index) {
  serve::Request r;
  r.kind = serve::RequestKind::Predict;
  r.gpu = sim::GpuModel::GTX460;
  r.counters = dataset().samples[sample_index % dataset().samples.size()]
                   .counters;
  return r;
}

bool same_answer(const serve::Response& a, const serve::Response& b) {
  return a.status == b.status && a.pair == b.pair &&
         a.power_watts == b.power_watts && a.time_seconds == b.time_seconds &&
         a.energy_joules == b.energy_joules;
}

TEST(ClusterChaos, KillAndRestartUnderConcurrentLoadStaysBitIdentical) {
  // Ground truth from a plain single-node server on the same model pair.
  constexpr std::size_t kSamples = 8;
  std::vector<serve::Response> truth;
  {
    serve::PredictionServer reference;
    reference.load_models(power_model(), perf_model());
    for (std::size_t i = 0; i < kSamples; ++i) {
      truth.push_back(reference.submit(predict_request(i)).get());
      ASSERT_TRUE(truth.back().ok());
    }
  }

  FleetOptions fopt;
  fopt.backends = 3;
  RouterOptions ropt;
  ropt.replicas = 2;
  // Recover fast: probe often and reopen the breaker after a short
  // cooldown so the restarted node rejoins within the test's run.
  ropt.health_interval = Duration::milliseconds(5.0);
  ropt.breaker.cooldown = std::chrono::milliseconds(20);
  LocalFleet fleet(power_model(), perf_model(), fopt, ropt);
  ASSERT_EQ(fleet.size(), 3u);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> refused{0};
  std::atomic<std::uint64_t> divergent{0};

  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 400;
  std::vector<std::thread> load;
  for (int t = 0; t < kThreads; ++t) {
    load.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const std::size_t sample =
            static_cast<std::size_t>(t * kRequestsPerThread + i) % kSamples;
        const serve::Response r =
            fleet.router().predict(predict_request(sample));
        ++answered;
        if (r.ok()) {
          ++ok;
          if (!same_answer(r, truth[sample])) ++divergent;
        } else {
          ++refused;
        }
      }
    });
  }

  // The reaper: while load runs, kill one node, let traffic re-route,
  // bring it back, let it rejoin — twice, different victims.
  std::thread reaper([&] {
    for (std::size_t victim = 0; victim < 2 && !done.load(); ++victim) {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      fleet.kill(victim);
      EXPECT_FALSE(fleet.alive(victim));
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
      fleet.restart(victim);
      EXPECT_TRUE(fleet.alive(victim));
    }
  });

  for (std::thread& t : load) t.join();
  done.store(true);
  reaper.join();

  // Every request came back, none threw, and no answer was wrong.
  EXPECT_EQ(answered.load(),
            static_cast<std::uint64_t>(kThreads) * kRequestsPerThread);
  EXPECT_EQ(divergent.load(), 0u);
  // Replication (R=2) plus failover means a lone kill rarely refuses
  // anything, but a kill landing between route() and submit() may surface
  // as a typed InternalError; bound it rather than forbid it.
  EXPECT_GT(ok.load(), answered.load() * 9 / 10);

  const RouterStats stats = fleet.router().stats();
  EXPECT_EQ(stats.requests, answered.load());
  EXPECT_TRUE(fleet.router().health().accepting);
  EXPECT_EQ(fleet.router().health().boards, 3u);
}

TEST(ClusterChaos, FleetBridgeServesAndReportsModels) {
  // The bridge is what `gppm serve --cluster N` hands to net::Server:
  // submit() resolves through the router, models/health come from the
  // fleet.
  FleetOptions fopt;
  fopt.backends = 2;
  RouterOptions ropt;
  ropt.health_interval = Duration::seconds(0.0);
  LocalFleet fleet(power_model(), perf_model(), fopt, ropt);

  net::ServeBridge bridge = fleet.bridge();
  const serve::Response r = bridge.submit(predict_request(0)).get();
  EXPECT_TRUE(r.ok());

  // One model pair, announced once (every node holds an identical copy).
  const auto models = bridge.loaded_models();
  ASSERT_EQ(models.size(), 1u);
  EXPECT_EQ(models[0].gpu, sim::GpuModel::GTX460);
  EXPECT_TRUE(bridge.health().accepting);

  fleet.stop();
  EXPECT_FALSE(bridge.health().accepting);
}

}  // namespace
}  // namespace gppm::cluster
