// Supervisor behaviors over a LocalFleet: a killed node is probed dead and
// restarted, a drained (off-ring) node is left alone, a lying monitoring
// plane (the supervisor.probe fault site) burns through the restart budget
// and flags the node instead of looping forever, and a healthy fleet is
// never touched.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "cluster/fleet.hpp"
#include "cluster/supervisor.hpp"
#include "core/dataset.hpp"
#include "fault/plan.hpp"

namespace gppm::cluster {
namespace {

const core::Dataset& dataset() {
  static const core::Dataset ds = core::build_dataset(sim::GpuModel::GTX460);
  return ds;
}

core::UnifiedModel power_model() {
  return core::UnifiedModel::fit(dataset(), core::TargetKind::Power);
}

core::UnifiedModel perf_model() {
  return core::UnifiedModel::fit(dataset(), core::TargetKind::ExecTime);
}

RouterOptions quiet_router() {
  RouterOptions opt;
  opt.health_interval = Duration::seconds(0.0);
  return opt;
}

SupervisorOptions fast_supervisor() {
  SupervisorOptions opt;
  opt.probe_interval = Duration::milliseconds(2.0);
  opt.failure_threshold = 2;
  opt.initial_backoff = Duration::milliseconds(2.0);
  opt.max_backoff = Duration::milliseconds(20.0);
  return opt;
}

/// Poll `predicate` until it holds or `ms` elapse.
template <typename Predicate>
bool eventually(Predicate predicate, int ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return predicate();
}

TEST(ClusterSupervisor, RestartsAKilledNode) {
  FleetOptions fopt;
  fopt.backends = 2;
  LocalFleet fleet(power_model(), perf_model(), fopt, quiet_router());
  Supervisor supervisor(fleet, fast_supervisor());

  fleet.kill(0);
  ASSERT_FALSE(fleet.alive(0));

  EXPECT_TRUE(eventually([&] { return fleet.alive(0); }, 3000))
      << "supervisor never restarted the killed node";
  supervisor.stop();

  const SupervisorStats stats = supervisor.stats();
  EXPECT_GE(stats.restarts, 1u);
  EXPECT_GE(stats.probe_failures, 2u);  // threshold's worth of misses
  EXPECT_GT(stats.probes, 0u);
}

TEST(ClusterSupervisor, LeavesDrainedNodesAlone) {
  FleetOptions fopt;
  fopt.backends = 2;
  LocalFleet fleet(power_model(), perf_model(), fopt, quiet_router());
  Supervisor supervisor(fleet, fast_supervisor());

  const DrainReport drain = fleet.drain_node(0);
  ASSERT_TRUE(drain.completed);
  ASSERT_FALSE(fleet.in_ring(0));
  ASSERT_FALSE(fleet.alive(0));

  // A planned removal is not a failure: the node stays down and skipped.
  EXPECT_TRUE(
      eventually([&] { return supervisor.stats().skipped_drained >= 5; },
                 3000));
  EXPECT_FALSE(fleet.alive(0));
  supervisor.stop();
  EXPECT_EQ(supervisor.stats().restarts, 0u);

  // rejoin() hands the node back to the supervisor's care.
  fleet.rejoin(0);
  EXPECT_TRUE(fleet.alive(0));
  EXPECT_TRUE(fleet.in_ring(0));
}

TEST(ClusterSupervisor, ProbeLossBurnsBudgetAndFlagsUnrecoverable) {
  // Every probe is "lost": the supervisor sees a healthy fleet as dead, so
  // no probe ever refills the budget and each node is restarted at most
  // restart_budget times before being flagged.
  fault::FaultInjector injector(
      fault::FaultPlan::parse_string("supervisor.probe p=1.0"), /*seed=*/5);
  FleetOptions fopt;
  fopt.backends = 2;
  LocalFleet fleet(power_model(), perf_model(), fopt, quiet_router());

  SupervisorOptions sopt = fast_supervisor();
  sopt.restart_budget = 2;
  sopt.injector = &injector;
  Supervisor supervisor(fleet, sopt);

  EXPECT_TRUE(
      eventually([&] { return supervisor.stats().budget_exhausted >= 2; },
                 5000))
      << "budget never exhausted under total probe loss";
  supervisor.stop();

  const SupervisorStats stats = supervisor.stats();
  EXPECT_GT(stats.probes_lost, 0u);
  EXPECT_GE(stats.probe_failures, stats.probes_lost);
  // Flagged once per node, then left alone: exactly budget * nodes
  // restarts, not an unbounded loop.
  EXPECT_EQ(stats.budget_exhausted, 2u);
  EXPECT_EQ(stats.restarts, 4u);
  // The restarts were spurious but harmless: the fleet still serves.
  serve::Request request;
  request.kind = serve::RequestKind::Predict;
  request.gpu = sim::GpuModel::GTX460;
  request.counters = dataset().samples[0].counters;
  EXPECT_TRUE(fleet.router().predict(request).ok());
}

TEST(ClusterSupervisor, HealthyFleetIsNeverRestarted) {
  FleetOptions fopt;
  fopt.backends = 2;
  LocalFleet fleet(power_model(), perf_model(), fopt, quiet_router());
  Supervisor supervisor(fleet, fast_supervisor());

  EXPECT_TRUE(
      eventually([&] { return supervisor.stats().probes >= 10; }, 3000));
  supervisor.stop();

  const SupervisorStats stats = supervisor.stats();
  EXPECT_EQ(stats.restarts, 0u);
  EXPECT_EQ(stats.probe_failures, 0u);
  EXPECT_EQ(stats.budget_exhausted, 0u);
  EXPECT_TRUE(fleet.alive(0));
  EXPECT_TRUE(fleet.alive(1));
}

}  // namespace
}  // namespace gppm::cluster
