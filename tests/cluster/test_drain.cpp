// Drain/handoff semantics at both layers: Router::drain_backend against a
// scriptable fake (idle drain, live handoff, timeout, the slow-drain fault
// site, unknown-name no-op), LocalFleet's planned lifecycle
// (add_node/drain_node/rejoin/rolling_restart) against real models, and
// the ChaosSchedule determinism contract behind `gppm-loadgen --seed`.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/fleet.hpp"
#include "cluster/ring.hpp"
#include "cluster/router.hpp"
#include "cluster/schedule.hpp"
#include "core/dataset.hpp"
#include "fault/plan.hpp"

namespace gppm::cluster {
namespace {

class FakeBackend : public Backend {
 public:
  FakeBackend(std::string name, double power_constant)
      : name_(std::move(name)) {
    canned_.kind = serve::RequestKind::Predict;
    canned_.status = serve::ResponseStatus::Ok;
    canned_.power_watts = power_constant;
    canned_.time_seconds = 0.125;
    canned_.energy_joules = power_constant * 0.125;
  }

  ~FakeBackend() override {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::thread& t : delayers_) t.join();
  }

  const std::string& name() const override { return name_; }

  std::future<serve::Response> submit(const serve::Request&) override {
    std::promise<serve::Response> promise;
    std::future<serve::Response> future = promise.get_future();
    const double delay_s = delay_seconds_.load();
    if (delay_s > 0.0) {
      std::lock_guard<std::mutex> lock(mutex_);
      delayers_.emplace_back(
          [promise = std::move(promise), delay_s, r = canned_]() mutable {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(delay_s));
            promise.set_value(r);
          });
    } else {
      promise.set_value(canned_);
    }
    return future;
  }

  bool ping() override { return true; }

  void set_delay_seconds(double s) { delay_seconds_.store(s); }
  double power_constant() const { return canned_.power_watts; }

 private:
  std::string name_;
  serve::Response canned_;
  std::atomic<double> delay_seconds_{0.0};
  std::mutex mutex_;
  std::vector<std::thread> delayers_;
};

serve::Request make_request(int i) {
  serve::Request r;
  r.kind = serve::RequestKind::Predict;
  r.gpu = sim::GpuModel::GTX460;
  r.counters.counters.push_back({"k" + std::to_string(i),
                                 profiler::EventClass::Core,
                                 static_cast<double>(i), 1.0});
  return r;
}

RouterOptions quiet_options() {
  RouterOptions opt;
  opt.hedging = false;
  opt.health_interval = Duration::seconds(0.0);
  return opt;
}

int request_owned_by(const std::vector<std::string>& members,
                     const std::string& want) {
  HashRing ring;
  for (const std::string& m : members) ring.add(m);
  for (int i = 0; i < 1000; ++i) {
    if (ring.owner(request_key(make_request(i))) == want) return i;
  }
  ADD_FAILURE() << "no request found with primary " << want;
  return 0;
}

TEST(ClusterDrain, IdleBackendDrainsImmediatelyAndKeysRemap) {
  Router router(quiet_options());
  auto a = std::make_shared<FakeBackend>("alpha", 100.0);
  auto b = std::make_shared<FakeBackend>("beta", 200.0);
  router.add_backend(a);
  router.add_backend(b);

  const int i = request_owned_by({"alpha", "beta"}, "alpha");
  ASSERT_EQ(router.predict(make_request(i)).power_watts, a->power_constant());

  const DrainReport report = router.drain_backend("alpha");
  EXPECT_EQ(report.backend, "alpha");
  EXPECT_TRUE(report.completed);
  EXPECT_TRUE(report.zero_loss);
  EXPECT_EQ(report.in_flight_at_start, 0u);
  EXPECT_EQ(report.handed_off, 0u);
  EXPECT_FALSE(router.draining("alpha"));

  // alpha's keys now belong to the post-removal owners.
  EXPECT_EQ(router.backends(), std::vector<std::string>{"beta"});
  EXPECT_EQ(router.predict(make_request(i)).power_watts, b->power_constant());
  EXPECT_EQ(router.stats().drains, 1u);
}

TEST(ClusterDrain, UnknownNameIsCompletedNoOp) {
  Router router(quiet_options());
  router.add_backend(std::make_shared<FakeBackend>("alpha", 100.0));

  const DrainReport report = router.drain_backend("ghost");
  EXPECT_TRUE(report.completed);
  EXPECT_TRUE(report.zero_loss);
  EXPECT_EQ(report.handed_off, 0u);
  EXPECT_EQ(router.backends().size(), 1u);
  EXPECT_EQ(router.stats().drains, 0u);  // a no-op is not a drain
}

TEST(ClusterDrain, InFlightRequestHandsOffAndCompletesOnLeaver) {
  Router router(quiet_options());
  auto slow = std::make_shared<FakeBackend>("slow", 100.0);
  auto fast = std::make_shared<FakeBackend>("fast", 200.0);
  slow->set_delay_seconds(0.030);
  router.add_backend(slow);
  router.add_backend(fast);

  // Park one request on the leaver, then drain while it is in flight.
  const int i = request_owned_by({"slow", "fast"}, "slow");
  std::future<serve::Response> inflight = router.submit(make_request(i));
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (router.in_flight("slow") == 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(router.in_flight("slow"), 1);

  const DrainReport report =
      router.drain_backend("slow", Duration::seconds(5.0));
  EXPECT_TRUE(report.completed);
  EXPECT_TRUE(report.zero_loss);
  EXPECT_EQ(report.in_flight_at_start, 1u);
  EXPECT_EQ(report.handed_off, 1u);
  EXPECT_GE(report.duration.as_seconds(), 0.0);

  // The handed-off request finished on the backend it was routed to.
  const serve::Response r = inflight.get();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.power_watts, slow->power_constant());
  EXPECT_EQ(router.stats().drain_handed_off, 1u);
}

TEST(ClusterDrain, TimeoutReportsIncompleteDrain) {
  Router router(quiet_options());
  auto slow = std::make_shared<FakeBackend>("slow", 100.0);
  auto fast = std::make_shared<FakeBackend>("fast", 200.0);
  slow->set_delay_seconds(0.200);
  router.add_backend(slow);
  router.add_backend(fast);

  const int i = request_owned_by({"slow", "fast"}, "slow");
  std::future<serve::Response> inflight = router.submit(make_request(i));
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (router.in_flight("slow") == 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(router.in_flight("slow"), 1);

  const DrainReport report =
      router.drain_backend("slow", Duration::milliseconds(10.0));
  EXPECT_FALSE(report.completed);
  EXPECT_FALSE(report.zero_loss);
  // The straggler still finishes correctly: drain never cancels work.
  EXPECT_TRUE(inflight.get().ok());
}

TEST(ClusterDrain, SlowDrainFaultSiteStretchesTheHandoffWindow) {
  fault::FaultInjector injector(
      fault::FaultPlan::parse_string("cluster.drain.slow p=1.0 mag=20.0"),
      /*seed=*/1);
  RouterOptions opt = quiet_options();
  opt.injector = &injector;
  Router router(opt);
  router.add_backend(std::make_shared<FakeBackend>("alpha", 100.0));
  router.add_backend(std::make_shared<FakeBackend>("beta", 200.0));

  const DrainReport report = router.drain_backend("alpha");
  // The stall stretches the window but never changes the verdict.
  EXPECT_TRUE(report.completed);
  EXPECT_TRUE(report.zero_loss);
  EXPECT_GE(report.duration.as_seconds(), 0.020);
}

// ---------------------------------------------------------------------------
// LocalFleet planned lifecycle, against real fitted models.

const core::Dataset& dataset() {
  static const core::Dataset ds = core::build_dataset(sim::GpuModel::GTX460);
  return ds;
}

core::UnifiedModel power_model() {
  return core::UnifiedModel::fit(dataset(), core::TargetKind::Power);
}

core::UnifiedModel perf_model() {
  return core::UnifiedModel::fit(dataset(), core::TargetKind::ExecTime);
}

serve::Request predict_request(std::size_t sample_index) {
  serve::Request r;
  r.kind = serve::RequestKind::Predict;
  r.gpu = sim::GpuModel::GTX460;
  r.counters = dataset().samples[sample_index % dataset().samples.size()]
                   .counters;
  return r;
}

bool same_answer(const serve::Response& a, const serve::Response& b) {
  return a.status == b.status && a.pair == b.pair &&
         a.power_watts == b.power_watts && a.time_seconds == b.time_seconds &&
         a.energy_joules == b.energy_joules;
}

TEST(ClusterFleetReconfig, AddDrainRejoinLifecycle) {
  FleetOptions fopt;
  fopt.backends = 2;
  RouterOptions ropt;
  ropt.health_interval = Duration::seconds(0.0);
  LocalFleet fleet(power_model(), perf_model(), fopt, ropt);
  ASSERT_EQ(fleet.size(), 2u);

  // Grow live: the new node is on the ring and serving.
  const std::size_t added = fleet.add_node();
  EXPECT_EQ(added, 2u);
  EXPECT_EQ(fleet.size(), 3u);
  EXPECT_TRUE(fleet.in_ring(added));
  EXPECT_TRUE(fleet.alive(added));
  EXPECT_EQ(fleet.router().backends().size(), 3u);
  EXPECT_TRUE(fleet.router().predict(predict_request(0)).ok());

  // Planned removal: off the ring, engine down, traffic still answered.
  const DrainReport drain = fleet.drain_node(0);
  EXPECT_TRUE(drain.completed);
  EXPECT_TRUE(drain.zero_loss);
  EXPECT_FALSE(fleet.in_ring(0));
  EXPECT_FALSE(fleet.alive(0));
  EXPECT_EQ(fleet.router().backends().size(), 2u);
  EXPECT_TRUE(fleet.router().predict(predict_request(1)).ok());

  // Rejoin: fresh engine, back on the ring; idempotent for members.
  fleet.rejoin(0);
  EXPECT_TRUE(fleet.in_ring(0));
  EXPECT_TRUE(fleet.alive(0));
  EXPECT_EQ(fleet.router().backends().size(), 3u);
  fleet.rejoin(0);  // no-op
  EXPECT_EQ(fleet.router().backends().size(), 3u);
  EXPECT_TRUE(fleet.probe(0));
}

TEST(ClusterFleetReconfig, RollingRestartIsZeroLossUnderTraffic) {
  // Ground truth from a plain single-node server on the same pair.
  constexpr std::size_t kSamples = 8;
  std::vector<serve::Response> truth;
  {
    serve::PredictionServer reference;
    reference.load_models(power_model(), perf_model());
    for (std::size_t i = 0; i < kSamples; ++i) {
      truth.push_back(reference.submit(predict_request(i)).get());
      ASSERT_TRUE(truth.back().ok());
    }
  }

  FleetOptions fopt;
  fopt.backends = 3;
  RouterOptions ropt;
  ropt.replicas = 2;
  ropt.health_interval = Duration::milliseconds(5.0);
  ropt.breaker.cooldown = std::chrono::milliseconds(20);
  LocalFleet fleet(power_model(), perf_model(), fopt, ropt);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> not_ok{0};
  std::atomic<std::uint64_t> divergent{0};
  std::vector<std::thread> load;
  for (int t = 0; t < 3; ++t) {
    load.emplace_back([&, t] {
      std::size_t i = static_cast<std::size_t>(t);
      while (!done.load()) {
        const std::size_t sample = i++ % kSamples;
        const serve::Response r =
            fleet.router().predict(predict_request(sample));
        ++answered;
        if (!r.ok()) {
          ++not_ok;
        } else if (!same_answer(r, truth[sample])) {
          ++divergent;
        }
      }
    });
  }

  // Let traffic establish, then upgrade the whole fleet in place.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const RollingRestartReport report = fleet.rolling_restart();
  done.store(true);
  for (std::thread& t : load) t.join();

  // Every in-ring node was cycled, nothing was lost, and the planned path
  // never produced a wrong or refused answer.
  EXPECT_EQ(report.drains.size(), 3u);
  EXPECT_TRUE(report.zero_loss);
  for (const DrainReport& drain : report.drains) {
    EXPECT_TRUE(drain.completed) << drain.backend;
    EXPECT_TRUE(drain.zero_loss) << drain.backend;
  }
  EXPECT_GT(answered.load(), 0u);
  EXPECT_EQ(divergent.load(), 0u);
  EXPECT_EQ(not_ok.load(), 0u);
  EXPECT_EQ(fleet.router().backends().size(), 3u);
  EXPECT_TRUE(fleet.router().health().accepting);
}

// ---------------------------------------------------------------------------
// ChaosSchedule: the determinism contract behind `gppm-loadgen --seed`.

TEST(ClusterChaosSchedule, SameSeedEmitsIdenticalLogs) {
  const ChaosSchedule::Options options{/*seed=*/11, /*nodes=*/3,
                                       /*drains=*/true, /*kills=*/true};
  ChaosSchedule a(options);
  ChaosSchedule b(options);
  for (int i = 0; i < 200; ++i) {
    const ChaosEvent ea = a.next();
    const ChaosEvent eb = b.next();
    ASSERT_EQ(ea.action, eb.action) << "event " << i;
    ASSERT_EQ(ea.node, eb.node) << "event " << i;
  }
  EXPECT_EQ(a.log().size(), 200u);
  EXPECT_FALSE(a.log_string().empty());
  EXPECT_EQ(a.log_string(), b.log_string());
}

TEST(ClusterChaosSchedule, DifferentSeedsDiverge) {
  ChaosSchedule a({/*seed=*/1, /*nodes=*/3, /*drains=*/true, /*kills=*/true});
  ChaosSchedule b({/*seed=*/2, /*nodes=*/3, /*drains=*/true, /*kills=*/true});
  for (int i = 0; i < 100; ++i) {
    a.next();
    b.next();
  }
  EXPECT_NE(a.log_string(), b.log_string());
}

TEST(ClusterChaosSchedule, DisturbancesPairWithRecoveries) {
  ChaosSchedule schedule(
      {/*seed=*/7, /*nodes=*/4, /*drains=*/true, /*kills=*/true});
  // Replay the stream against a mode model: a node is only killed/drained
  // from Up, only restarted from Killed, only rejoined from Drained — and
  // the fleet never goes fully dark.
  enum class Mode { Up, Killed, Drained };
  std::vector<Mode> modes(4, Mode::Up);
  for (int i = 0; i < 500; ++i) {
    const ChaosEvent event = schedule.next();
    ASSERT_LT(event.node, modes.size());
    switch (event.action) {
      case ChaosAction::Kill:
        ASSERT_EQ(modes[event.node], Mode::Up) << "event " << i;
        modes[event.node] = Mode::Killed;
        break;
      case ChaosAction::Drain:
        ASSERT_EQ(modes[event.node], Mode::Up) << "event " << i;
        modes[event.node] = Mode::Drained;
        break;
      case ChaosAction::Restart:
        ASSERT_EQ(modes[event.node], Mode::Killed) << "event " << i;
        modes[event.node] = Mode::Up;
        break;
      case ChaosAction::Rejoin:
        ASSERT_EQ(modes[event.node], Mode::Drained) << "event " << i;
        modes[event.node] = Mode::Up;
        break;
    }
    std::size_t up = 0;
    for (const Mode mode : modes) {
      if (mode == Mode::Up) ++up;
    }
    ASSERT_GE(up, 1u) << "fleet fully dark after event " << i;
  }
}

TEST(ClusterChaosSchedule, SingleFamilyStreamsStayInFamily) {
  ChaosSchedule drains(
      {/*seed=*/3, /*nodes=*/3, /*drains=*/true, /*kills=*/false});
  ChaosSchedule kills(
      {/*seed=*/3, /*nodes=*/3, /*drains=*/false, /*kills=*/true});
  for (int i = 0; i < 100; ++i) {
    const ChaosAction d = drains.next().action;
    EXPECT_TRUE(d == ChaosAction::Drain || d == ChaosAction::Rejoin);
    const ChaosAction k = kills.next().action;
    EXPECT_TRUE(k == ChaosAction::Kill || k == ChaosAction::Restart);
  }
}

}  // namespace
}  // namespace gppm::cluster
