#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace gppm::linalg {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(m(r, c), 0.0);
  }
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), Error);
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::identity(3);
  EXPECT_EQ(id(0, 0), 1.0);
  EXPECT_EQ(id(0, 1), 0.0);
  EXPECT_EQ(id(2, 2), 1.0);
}

TEST(Matrix, BoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), Error);
  EXPECT_THROW(m(0, 2), Error);
}

TEST(Matrix, RowAndColExtraction) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.row(1), (Vector{4, 5, 6}));
  EXPECT_EQ(m.col(2), (Vector{3, 6}));
  EXPECT_THROW(m.row(2), Error);
  EXPECT_THROW(m.col(3), Error);
}

TEST(Matrix, SetCol) {
  Matrix m(2, 2);
  m.set_col(1, {7, 8});
  EXPECT_EQ(m(0, 1), 7.0);
  EXPECT_EQ(m(1, 1), 8.0);
  EXPECT_THROW(m.set_col(0, {1}), Error);
}

TEST(Matrix, Transpose) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
}

TEST(Matrix, MatMul) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a * b;
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatMulDimensionMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a * b, Error);
}

TEST(Matrix, MatVec) {
  Matrix a{{1, 2}, {3, 4}};
  EXPECT_EQ(a * Vector({1, 1}), (Vector{3, 7}));
  EXPECT_THROW(a * Vector({1, 1, 1}), Error);
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{1, 2.5}, {3, 4}};
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.5);
  Matrix c(1, 2);
  EXPECT_THROW(a.max_abs_diff(c), Error);
}

TEST(VectorOps, DotNormSub) {
  EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(norm2({3, 4}), 5.0);
  EXPECT_EQ(sub({3, 4}, {1, 1}), (Vector{2, 3}));
  EXPECT_THROW(dot({1}, {1, 2}), Error);
  EXPECT_THROW(sub({1}, {1, 2}), Error);
}

}  // namespace
}  // namespace gppm::linalg
