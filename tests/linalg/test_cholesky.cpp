#include "linalg/cholesky.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gppm::linalg {
namespace {

Matrix random_spd(std::size_t n, std::uint64_t seed) {
  gppm::Rng rng(seed);
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.normal();
  }
  // A^T A + n I is symmetric positive definite.
  Matrix spd = a.transposed() * a;
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

class CholeskySizes : public ::testing::TestWithParam<int> {};

TEST_P(CholeskySizes, FactorReconstructs) {
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, 11 + n);
  const Matrix l = cholesky(a);
  EXPECT_LT((l * l.transposed()).max_abs_diff(a), 1e-9);
}

TEST_P(CholeskySizes, SolveMatchesMatVec) {
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, 23 + n);
  gppm::Rng rng(99);
  Vector x_true(n);
  for (auto& v : x_true) v = rng.normal();
  const Vector b = a * x_true;
  const Vector x = cholesky_solve(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizes, ::testing::Values(1, 2, 5, 10, 21));

TEST(Cholesky, LowerTriangularOutput) {
  const Matrix l = cholesky(random_spd(4, 3));
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = r + 1; c < 4; ++c) EXPECT_EQ(l(r, c), 0.0);
  }
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(cholesky(Matrix(2, 3)), gppm::Error);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a{{1, 0}, {0, -1}};
  EXPECT_THROW(cholesky(a), gppm::Error);
}

TEST(Cholesky, SolveRejectsSizeMismatch) {
  EXPECT_THROW(cholesky_solve(Matrix::identity(2), {1, 2, 3}), gppm::Error);
}

}  // namespace
}  // namespace gppm::linalg
