#include "linalg/qr.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gppm::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  gppm::Rng rng(seed);
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.normal();
  }
  return m;
}

class QrSizes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QrSizes, ReconstructsInput) {
  const auto [rows, cols] = GetParam();
  const Matrix a = random_matrix(rows, cols, 42 + rows * 31 + cols);
  const QrResult f = qr_decompose(a);
  EXPECT_LT((f.q * f.r).max_abs_diff(a), 1e-10);
}

TEST_P(QrSizes, QHasOrthonormalColumns) {
  const auto [rows, cols] = GetParam();
  const Matrix a = random_matrix(rows, cols, 7 + rows + cols);
  const QrResult f = qr_decompose(a);
  const Matrix qtq = f.q.transposed() * f.q;
  EXPECT_LT(qtq.max_abs_diff(Matrix::identity(cols)), 1e-10);
}

TEST_P(QrSizes, RIsUpperTriangular) {
  const auto [rows, cols] = GetParam();
  const Matrix a = random_matrix(rows, cols, 99 + rows + cols);
  const QrResult f = qr_decompose(a);
  for (std::size_t r = 1; r < f.r.rows(); ++r) {
    for (std::size_t c = 0; c < r; ++c) EXPECT_EQ(f.r(r, c), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrSizes,
                         ::testing::Values(std::make_pair(3, 3),
                                           std::make_pair(5, 3),
                                           std::make_pair(10, 4),
                                           std::make_pair(50, 10),
                                           std::make_pair(200, 12),
                                           std::make_pair(4, 1)));

TEST(Qr, DetectsFullRank) {
  const Matrix a = random_matrix(20, 5, 3);
  EXPECT_TRUE(qr_decompose(a).full_rank);
}

TEST(Qr, DetectsRankDeficiency) {
  Matrix a = random_matrix(10, 3, 5);
  // Make column 2 a copy of column 0.
  for (std::size_t r = 0; r < a.rows(); ++r) a(r, 2) = a(r, 0);
  EXPECT_FALSE(qr_decompose(a).full_rank);
}

TEST(Qr, RejectsWideMatrix) {
  EXPECT_THROW(qr_decompose(Matrix(2, 5)), gppm::Error);
}

TEST(Qr, RejectsEmptyMatrix) {
  EXPECT_THROW(qr_decompose(Matrix()), gppm::Error);
}

TEST(SolveUpperTriangular, SolvesKnownSystem) {
  Matrix r{{2, 1}, {0, 4}};
  const Vector x = solve_upper_triangular(r, {4, 8});
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
}

TEST(SolveUpperTriangular, RejectsSingular) {
  Matrix r{{1, 1}, {0, 0}};
  EXPECT_THROW(solve_upper_triangular(r, {1, 1}), gppm::Error);
}

TEST(SolveUpperTriangular, RejectsBadShapes) {
  EXPECT_THROW(solve_upper_triangular(Matrix(2, 3), {1, 1}), gppm::Error);
  EXPECT_THROW(solve_upper_triangular(Matrix::identity(2), {1, 1, 1}),
               gppm::Error);
}

}  // namespace
}  // namespace gppm::linalg
