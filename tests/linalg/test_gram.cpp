#include "linalg/gram.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/cholesky.hpp"

namespace gppm::linalg {
namespace {

Matrix random_matrix(std::size_t n, std::size_t p, std::uint64_t seed) {
  gppm::Rng rng(seed);
  Matrix x(n, p);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < p; ++j) {
      // Spread column scales over orders of magnitude like counter features.
      x(i, j) = rng.normal() * std::pow(10.0, static_cast<double>(j % 7) - 3);
    }
  }
  return x;
}

TEST(GramSystem, MatchesExplicitNormalEquations) {
  const std::size_t n = 40, p = 6;
  const Matrix x = random_matrix(n, p, 5);
  gppm::Rng rng(6);
  Vector y(n);
  for (auto& v : y) v = rng.normal();

  const GramSystem gs = build_gram_system(x, y);
  ASSERT_EQ(gs.gram.rows(), p + 1);
  ASSERT_EQ(gs.n_rows, n);
  ASSERT_EQ(gs.n_candidates, p);

  // Check against the explicitly-built normalized design [1/sqrt(n) | X D^-1].
  for (std::size_t i = 0; i <= p; ++i) {
    for (std::size_t j = 0; j <= p; ++j) {
      double raw = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        const double vi = i == 0 ? 1.0 : x(r, i - 1);
        const double vj = j == 0 ? 1.0 : x(r, j - 1);
        raw += vi * vj;
      }
      const double expected = raw / (gs.col_scale[i] * gs.col_scale[j]);
      EXPECT_NEAR(gs.gram(i, j), expected, 1e-12 * std::abs(expected) + 1e-14)
          << "entry " << i << "," << j;
    }
  }
  for (std::size_t j = 0; j <= p; ++j) {
    double raw = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      raw += (j == 0 ? 1.0 : x(r, j - 1)) * y[r];
    }
    EXPECT_NEAR(gs.xty[j], raw / gs.col_scale[j], 1e-10);
  }
}

TEST(GramSystem, ParallelBuildIsBitIdentical) {
  const std::size_t n = 64, p = 33;
  const Matrix x = random_matrix(n, p, 77);
  gppm::Rng rng(78);
  Vector y(n);
  for (auto& v : y) v = rng.normal();

  const GramSystem serial = build_gram_system(x, y, /*parallel=*/false);
  const GramSystem parallel = build_gram_system(x, y, /*parallel=*/true);
  EXPECT_EQ(serial.gram.max_abs_diff(parallel.gram), 0.0);
  EXPECT_EQ(serial.xty, parallel.xty);
  EXPECT_EQ(serial.col_scale, parallel.col_scale);
}

TEST(GramSystem, ZeroColumnGetsZeroScale) {
  Matrix x(5, 2);
  for (std::size_t i = 0; i < 5; ++i) x(i, 1) = static_cast<double>(i + 1);
  const GramSystem gs = build_gram_system(x, {1, 2, 3, 4, 5});
  EXPECT_EQ(gs.col_scale[1], 0.0);
  EXPECT_EQ(gs.gram(1, 1), 0.0);  // never selectable
  EXPECT_EQ(gs.gram(2, 2), 1.0);
}

TEST(GramSystem, RejectsMismatchedRows) {
  EXPECT_THROW(build_gram_system(Matrix(4, 2), Vector(3)), gppm::Error);
}

Matrix random_spd(std::size_t n, std::uint64_t seed) {
  gppm::Rng rng(seed);
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.normal();
  }
  Matrix spd = a.transposed() * a;
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

TEST(CholeskyIncremental, AppendMatchesFreshFactorization) {
  const std::size_t n = 8;
  const Matrix a = random_spd(n + 1, 31);
  // Factor the leading n x n block, then append row/column n.
  Matrix lead(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) lead(i, j) = a(i, j);
  }
  Vector cross(n);
  for (std::size_t i = 0; i < n; ++i) cross[i] = a(i, n);

  const Matrix appended = cholesky_append(cholesky(lead), cross, a(n, n));
  const Matrix fresh = cholesky(a);
  EXPECT_LT(appended.max_abs_diff(fresh), 1e-9);
}

TEST(CholeskyIncremental, AppendFromEmptyFactor) {
  const Matrix l = cholesky_append(Matrix(), {}, 4.0);
  ASSERT_EQ(l.rows(), 1u);
  EXPECT_DOUBLE_EQ(l(0, 0), 2.0);
}

TEST(CholeskyIncremental, AppendRejectsDependentColumn) {
  // Appending a column equal to an existing one makes the bordered matrix
  // singular.
  Matrix a{{2, 2}, {2, 2}};
  const Matrix l = cholesky(Matrix{{2}});
  EXPECT_THROW(cholesky_append(l, {2.0}, 2.0), gppm::Error);
}

TEST(CholeskyIncremental, UpdateMatchesFreshFactorization) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const std::size_t n = 6;
    const Matrix a = random_spd(n, 40 + seed);
    gppm::Rng rng(50 + seed);
    Vector v(n);
    for (auto& e : v) e = rng.normal();

    Matrix updated_a = a;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) updated_a(i, j) += v[i] * v[j];
    }
    const Matrix via_update = cholesky_update(cholesky(a), v);
    EXPECT_LT(via_update.max_abs_diff(cholesky(updated_a)), 1e-9);
  }
}

TEST(CholeskyIncremental, DowndateInvertsUpdate) {
  for (std::uint64_t seed : {7u, 8u, 9u}) {
    const std::size_t n = 5;
    const Matrix a = random_spd(n, 60 + seed);
    gppm::Rng rng(70 + seed);
    Vector v(n);
    for (auto& e : v) e = rng.normal();

    const Matrix l = cholesky(a);
    const Matrix round_trip = cholesky_downdate(cholesky_update(l, v), v);
    EXPECT_LT(round_trip.max_abs_diff(l), 1e-8);
  }
}

TEST(CholeskyIncremental, DowndateMatchesFreshFactorization) {
  const std::size_t n = 6;
  const Matrix a = random_spd(n, 91);
  gppm::Rng rng(92);
  Vector v(n);
  for (auto& e : v) e = 0.3 * rng.normal();  // small enough to stay PD

  Matrix downdated_a = a;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) downdated_a(i, j) -= v[i] * v[j];
  }
  const Matrix via_downdate = cholesky_downdate(cholesky(a), v);
  EXPECT_LT(via_downdate.max_abs_diff(cholesky(downdated_a)), 1e-9);
}

TEST(CholeskyIncremental, DowndateRejectsIndefiniteResult) {
  const Matrix l = cholesky(Matrix{{1.0}});
  EXPECT_THROW(cholesky_downdate(l, {2.0}), gppm::Error);
}

TEST(LowerTriangularSolvers, RoundTrip) {
  const Matrix a = random_spd(7, 13);
  const Matrix l = cholesky(a);
  gppm::Rng rng(14);
  Vector x_true(7);
  for (auto& v : x_true) v = rng.normal();
  const Vector b = a * x_true;
  const Vector x = solve_lower_transposed(l, solve_lower_triangular(l, b));
  for (std::size_t i = 0; i < 7; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

}  // namespace
}  // namespace gppm::linalg
