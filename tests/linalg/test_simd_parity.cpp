// Bitwise parity of the linalg hot paths that were rewritten onto the
// SIMD kernels: the strided Matrix reductions against their contiguous
// equivalents, and the Gram column panel against the source matrix.
//
// Everything here compares raw bit patterns (std::bit_cast), because the
// contract under test is "the SIMD rewrite changed the speed and nothing
// else" — across backends AND across memory layouts of the same data.

#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "linalg/gram.hpp"
#include "linalg/matrix.hpp"

namespace {

using gppm::Rng;
using gppm::linalg::Matrix;
using gppm::linalg::Vector;
using gppm::linalg::build_gram_system;
using gppm::linalg::GramSystem;
namespace simd = gppm::simd;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

Matrix random_matrix(Rng& rng, std::size_t rows, std::size_t cols) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.normal(0.0, 2.0);
  }
  return m;
}

TEST(SimdLinalgParity, ColDotMatchesContiguousCopyBitwise) {
  Rng rng(31);
  // Row counts straddle the 8-lane block boundary on purpose.
  for (std::size_t rows : {1ul, 7ul, 8ul, 9ul, 33ul, 100ul}) {
    const Matrix m = random_matrix(rng, rows, 5);
    for (std::size_t c1 = 0; c1 < m.cols(); ++c1) {
      for (std::size_t c2 = 0; c2 < m.cols(); ++c2) {
        std::vector<double> a(rows), b(rows);
        for (std::size_t r = 0; r < rows; ++r) {
          a[r] = m(r, c1);
          b[r] = m(r, c2);
        }
        EXPECT_EQ(bits(m.col_dot(c1, c2)),
                  bits(simd::scalar::dot(a.data(), b.data(), rows)))
            << "rows=" << rows << " c1=" << c1 << " c2=" << c2;
      }
    }
  }
}

TEST(SimdLinalgParity, RowDotMatchesScalarReference) {
  Rng rng(37);
  const Matrix m = random_matrix(rng, 4, 23);
  for (std::size_t r1 = 0; r1 < m.rows(); ++r1) {
    for (std::size_t r2 = 0; r2 < m.rows(); ++r2) {
      EXPECT_EQ(bits(m.row_dot(r1, r2)),
                bits(simd::scalar::dot(m.row_ptr(r1), m.row_ptr(r2),
                                       m.cols())));
    }
  }
}

TEST(SimdLinalgParity, GramPanelIsExactColumnTranspose) {
  Rng rng(41);
  const std::size_t n = 57, p = 9;
  const Matrix candidates = random_matrix(rng, n, p);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = rng.normal();
  const GramSystem gs = build_gram_system(candidates, y, /*parallel=*/false);
  ASSERT_EQ(gs.panel.rows(), p);
  ASSERT_EQ(gs.panel.cols(), n);
  for (std::size_t j = 0; j < p; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(bits(gs.panel(j, i)), bits(candidates(i, j)));
    }
  }
}

TEST(SimdLinalgParity, GramEntriesMatchStridedColDotBitwise) {
  // The Gram builder computes every cross term from the contiguous panel;
  // the equilibration in lstsq computes the same quantities through the
  // strided col_dot.  They must agree to the bit or the two engines drift.
  Rng rng(43);
  const std::size_t n = 40, p = 6;
  const Matrix candidates = random_matrix(rng, n, p);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = rng.normal();
  const GramSystem gs = build_gram_system(candidates, y, /*parallel=*/false);
  for (std::size_t i = 0; i < p; ++i) {
    // The diagonal is pinned to exactly 1.0 by construction (the scale IS
    // the column norm); dot/norm^2 would differ by rounding, so only the
    // cross terms go through the dot-vs-dot comparison.
    EXPECT_EQ(bits(gs.gram(i + 1, i + 1)), bits(1.0));
    for (std::size_t j = 0; j < p; ++j) {
      if (i == j) continue;
      const double strided = candidates.col_dot(i, j) /
                             (gs.col_scale[i + 1] * gs.col_scale[j + 1]);
      EXPECT_EQ(bits(gs.gram(i + 1, j + 1)), bits(strided))
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(SimdLinalgParity, GramSerialParallelStillBitIdentical) {
  // Re-pins the pre-existing serial/parallel guarantee on top of the SIMD
  // kernels: each Gram entry is produced by one task with one fixed
  // summation tree, so thread count cannot change a single bit.
  Rng rng(47);
  const std::size_t n = 65, p = 24;  // p > min_parallel so the pool engages
  const Matrix candidates = random_matrix(rng, n, p);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = rng.normal();
  const GramSystem serial = build_gram_system(candidates, y, false);
  const GramSystem parallel = build_gram_system(candidates, y, true);
  for (std::size_t i = 0; i <= p; ++i) {
    EXPECT_EQ(bits(serial.xty[i]), bits(parallel.xty[i]));
    EXPECT_EQ(bits(serial.col_scale[i]), bits(parallel.col_scale[i]));
    for (std::size_t j = 0; j <= p; ++j) {
      EXPECT_EQ(bits(serial.gram(i, j)), bits(parallel.gram(i, j)));
    }
  }
}

}  // namespace
