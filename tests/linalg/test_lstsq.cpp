#include "linalg/lstsq.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gppm::linalg {
namespace {

TEST(Lstsq, ExactSystemRecovered) {
  Matrix a{{1, 0}, {0, 1}, {1, 1}};
  const Vector b = a * Vector{2.0, -3.0};
  const LstsqResult r = lstsq(a, b);
  EXPECT_NEAR(r.x[0], 2.0, 1e-12);
  EXPECT_NEAR(r.x[1], -3.0, 1e-12);
  EXPECT_NEAR(r.residual_ss, 0.0, 1e-18);
  EXPECT_TRUE(r.full_rank);
}

TEST(Lstsq, MinimizesResidualOnOverdetermined) {
  // y = 2x fit over noisy points; solution must be near 2 and the residual
  // must not exceed that of the true coefficient.
  gppm::Rng rng(5);
  const std::size_t n = 200;
  Matrix a(n, 1);
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / 10.0;
    a(i, 0) = x;
    b[i] = 2.0 * x + rng.normal(0.0, 0.1);
  }
  const LstsqResult r = lstsq(a, b);
  EXPECT_NEAR(r.x[0], 2.0, 0.01);

  double true_ss = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double res = b[i] - 2.0 * a(i, 0);
    true_ss += res * res;
  }
  EXPECT_LE(r.residual_ss, true_ss + 1e-9);
}

TEST(Lstsq, HandlesWildColumnScales) {
  // Columns spanning 12 orders of magnitude — the regime the regression
  // layer actually produces (counter totals vs intercept-scale features).
  Matrix a(6, 2);
  Vector b(6);
  for (std::size_t i = 0; i < 6; ++i) {
    a(i, 0) = 1e-6 * static_cast<double>(i + 1);
    a(i, 1) = 1e6 * static_cast<double>((i * 7) % 5 + 1);
    b[i] = 3.0 * a(i, 0) + 2e-6 * a(i, 1);
  }
  const LstsqResult r = lstsq(a, b);
  EXPECT_NEAR(r.x[0], 3.0, 1e-6);
  EXPECT_NEAR(r.x[1], 2e-6, 1e-12);
}

TEST(Lstsq, RankDeficientStillSolves) {
  Matrix a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = 2.0 * static_cast<double>(i + 1);  // collinear
  }
  const Vector b{2, 4, 6, 8};
  const LstsqResult r = lstsq(a, b);
  EXPECT_FALSE(r.full_rank);
  // Prediction must still reproduce b even if the split between the two
  // collinear coefficients is arbitrary.
  const Vector pred = a * r.x;
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(pred[i], b[i], 1e-6);
}

TEST(Lstsq, RejectsBadInputs) {
  EXPECT_THROW(lstsq(Matrix(), Vector{}), gppm::Error);
  EXPECT_THROW(lstsq(Matrix(3, 2), Vector{1, 2}), gppm::Error);   // rhs size
  EXPECT_THROW(lstsq(Matrix(2, 3), Vector{1, 2}), gppm::Error);   // wide
}

}  // namespace
}  // namespace gppm::linalg
