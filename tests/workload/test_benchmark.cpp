// Property tests over every benchmark at every input size: the profiles
// must be valid simulator inputs with physically sensible behaviour.
#include "workload/benchmark.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/str.hpp"
#include "gpusim/timing.hpp"
#include "workload/suite.hpp"

namespace gppm::workload {
namespace {

/// (benchmark index, size index) parameter space over the whole suite.
struct Case {
  std::size_t bench;
  std::size_t size;
};

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  const auto& suite = benchmark_suite();
  for (std::size_t b = 0; b < suite.size(); ++b) {
    for (std::size_t s = 0; s < suite[b].size_count; ++s) cases.push_back({b, s});
  }
  return cases;
}

class EveryBenchmarkSize : public ::testing::TestWithParam<Case> {
 protected:
  const BenchmarkDef& def() const { return benchmark_suite()[GetParam().bench]; }
  sim::RunProfile profile() const { return def().profile(GetParam().size); }
};

TEST_P(EveryBenchmarkSize, ProfileIsValidSimulatorInput) {
  const sim::RunProfile p = profile();
  EXPECT_EQ(p.benchmark_name, def().name);
  ASSERT_FALSE(p.kernels.empty());
  const sim::DeviceSpec& spec = sim::device_spec(sim::GpuModel::GTX480);
  for (const sim::KernelProfile& k : p.kernels) {
    EXPECT_NO_THROW(sim::compute_kernel_timing(spec, k, sim::kDefaultPair));
  }
}

TEST_P(EveryBenchmarkSize, KernelNamesCarryBenchmarkAndSizeTags) {
  const sim::RunProfile p = profile();
  const std::string size_tag = "/s" + std::to_string(GetParam().size) + "/";
  for (const sim::KernelProfile& k : p.kernels) {
    EXPECT_TRUE(starts_with(k.name, def().name)) << k.name;
    EXPECT_TRUE(contains(k.name, size_tag)) << k.name;
  }
}

TEST_P(EveryBenchmarkSize, HostTimePositive) {
  EXPECT_GT(profile().host_time.as_seconds(), 0.0);
}

TEST_P(EveryBenchmarkSize, NominalGpuTimeInPaperRange) {
  // The paper's runs span hundreds of ms to tens of seconds; allow slack
  // for the sub-500 ms programs the repetition rule later extends.
  const sim::RunProfile p = profile();
  const sim::DeviceSpec& spec = sim::device_spec(sim::GpuModel::GTX480);
  double total = 0;
  for (const sim::KernelProfile& k : p.kernels) {
    total += sim::compute_kernel_timing(spec, k, sim::kDefaultPair)
                 .total_time.as_seconds();
  }
  EXPECT_GT(total, 0.01);
  EXPECT_LT(total, 60.0);
}

TEST_P(EveryBenchmarkSize, NoiseScaleDecreasesWithSize) {
  const sim::RunProfile p = profile();
  for (const sim::KernelProfile& k : p.kernels) {
    EXPECT_NEAR(k.unmodeled_scale,
                1.45 - 0.3 * static_cast<double>(GetParam().size), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, EveryBenchmarkSize, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string n = benchmark_suite()[info.param.bench].name + "_s" +
                      std::to_string(info.param.size);
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

TEST(Benchmark, LargerInputsRunLonger) {
  const sim::DeviceSpec& spec = sim::device_spec(sim::GpuModel::GTX480);
  for (const BenchmarkDef& def : benchmark_suite()) {
    auto gpu_time = [&](std::size_t size) {
      double total = 0;
      for (const sim::KernelProfile& k : def.profile(size).kernels) {
        total += sim::compute_kernel_timing(spec, k, sim::kDefaultPair)
                     .total_time.as_seconds();
      }
      return total;
    };
    EXPECT_GT(gpu_time(def.size_count - 1), gpu_time(0)) << def.name;
  }
}

TEST(Benchmark, ScaleOfDoublingLadder) {
  const BenchmarkDef& def = benchmark_suite().front();
  EXPECT_DOUBLE_EQ(def.scale_of(0), 1.0);
  EXPECT_DOUBLE_EQ(def.scale_of(1), 2.0);
  EXPECT_DOUBLE_EQ(def.scale_of(2), 4.0);
  EXPECT_THROW(def.scale_of(def.size_count), gppm::Error);
}

TEST(Benchmark, MaxProfileUsesLargestSize) {
  const BenchmarkDef& def = find_benchmark("streamcluster");
  const sim::RunProfile max = def.max_profile();
  const sim::RunProfile last = def.profile(def.size_count - 1);
  EXPECT_EQ(max.kernels.front().blocks, last.kernels.front().blocks);
}

TEST(Benchmark, CharacteristicIntensities) {
  // The showcased workloads must keep their paper roles: backprop
  // compute-bound, streamcluster memory-bound (on the reference board).
  const sim::DeviceSpec& spec = sim::device_spec(sim::GpuModel::GTX480);
  const auto bp = find_benchmark("backprop").max_profile();
  const auto t_bp =
      sim::compute_kernel_timing(spec, bp.kernels.front(), sim::kDefaultPair);
  EXPECT_GT(t_bp.compute_time.as_seconds(), t_bp.memory_time.as_seconds() * 5);

  const auto sc = find_benchmark("streamcluster").max_profile();
  const auto t_sc =
      sim::compute_kernel_timing(spec, sc.kernels.front(), sim::kDefaultPair);
  EXPECT_GT(t_sc.memory_time.as_seconds(), t_sc.compute_time.as_seconds() * 2);
}

}  // namespace
}  // namespace gppm::workload
