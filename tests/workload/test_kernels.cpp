#include "workload/kernels.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "gpusim/timing.hpp"

namespace gppm::workload {
namespace {

sim::KernelProfile base_kernel() {
  sim::KernelProfile k;
  k.name = "k";
  k.blocks = 1000;
  k.threads_per_block = 256;
  k.flops_sp_per_thread = 100.0;
  k.global_load_bytes_per_thread = 8.0;
  return k;
}

TEST(Kernels, ScaleGridMultipliesBlocks) {
  const auto k = scale_grid(base_kernel(), 4.0);
  EXPECT_EQ(k.blocks, 4000u);
}

TEST(Kernels, ScaleGridRoundsAndFloorsAtOne) {
  auto k = base_kernel();
  k.blocks = 1;
  EXPECT_EQ(scale_grid(k, 0.1).blocks, 1u);
  EXPECT_THROW(scale_grid(k, 0.0), gppm::Error);
}

TEST(Kernels, ScaleLaunches) {
  auto k = base_kernel();
  k.launches = 10;
  EXPECT_EQ(scale_launches(k, 2.5).launches, 25u);
  EXPECT_THROW(scale_launches(k, -1.0), gppm::Error);
}

TEST(Kernels, BalanceLaunchesHitsTargetOnReferenceBoard) {
  const double target = 0.8;
  const auto k = balance_launches(base_kernel(), target);
  const sim::DeviceSpec& ref = sim::device_spec(sim::GpuModel::GTX480);
  const auto t = sim::compute_kernel_timing(ref, k, sim::kDefaultPair);
  // Launch count quantization bounds the error to one launch either way.
  const double per_launch = t.total_time.as_seconds() / k.launches;
  EXPECT_NEAR(t.total_time.as_seconds(), target, per_launch + 1e-9);
}

TEST(Kernels, BalanceLaunchesAtLeastOne) {
  const auto k = balance_launches(base_kernel(), 1e-9);
  EXPECT_GE(k.launches, 1u);
}

TEST(Kernels, BalanceLaunchesRejectsNonPositiveTarget) {
  EXPECT_THROW(balance_launches(base_kernel(), 0.0), gppm::Error);
}

TEST(Kernels, BalanceLaunchesCapped) {
  // A microscopic kernel cannot blow up the launch count unboundedly.
  auto k = base_kernel();
  k.blocks = 1;
  k.threads_per_block = 32;
  k.flops_sp_per_thread = 1.0;
  k.global_load_bytes_per_thread = 0.5;
  const auto balanced = balance_launches(k, 3600.0);
  EXPECT_LE(balanced.launches, 200000u);
}

}  // namespace
}  // namespace gppm::workload
