#include "workload/phases.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/error.hpp"
#include "workload/suite.hpp"

namespace gppm::workload {
namespace {

TEST(PhaseSchedule, EqualSeedsGiveIdenticalSchedules) {
  PhaseScheduleOptions opt;
  opt.phases = 32;
  opt.seed = 9;
  const std::vector<Phase> a = phase_schedule(opt);
  const std::vector<Phase> b = phase_schedule(opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].benchmark, b[i].benchmark);
    EXPECT_EQ(a[i].scale, b[i].scale);
  }
}

TEST(PhaseSchedule, DifferentSeedsDiffer) {
  PhaseScheduleOptions a_opt, b_opt;
  a_opt.phases = b_opt.phases = 32;
  a_opt.seed = 1;
  b_opt.seed = 2;
  const std::vector<Phase> a = phase_schedule(a_opt);
  const std::vector<Phase> b = phase_schedule(b_opt);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].benchmark != b[i].benchmark || a[i].scale != b[i].scale) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(PhaseSchedule, ExcludedBenchmarksNeverAppear) {
  const std::string excluded = benchmark_suite().front().name;
  PhaseScheduleOptions opt;
  opt.phases = 64;
  for (const Phase& p : phase_schedule(opt, {excluded})) {
    EXPECT_NE(p.benchmark, excluded);
  }
}

TEST(PhaseSchedule, EachLapVisitsEveryEligibleBenchmarkOnce) {
  const std::size_t suite_size = benchmark_suite().size();
  PhaseScheduleOptions opt;
  opt.phases = suite_size;
  const std::vector<Phase> lap = phase_schedule(opt);
  std::set<std::string> seen;
  for (const Phase& p : lap) seen.insert(p.benchmark);
  EXPECT_EQ(seen.size(), suite_size);
}

TEST(PhaseSchedule, ZeroDriftStaysOnCorpusLadder) {
  PhaseScheduleOptions opt;
  opt.phases = 48;
  opt.drift = 0.0;
  for (const Phase& p : phase_schedule(opt)) {
    const BenchmarkDef& def = find_benchmark(p.benchmark);
    bool on_ladder = false;
    for (std::size_t i = 0; i < def.size_count; ++i) {
      if (p.scale == def.scale_of(i)) on_ladder = true;
    }
    EXPECT_TRUE(on_ladder) << p.benchmark << " scale " << p.scale;
  }
}

TEST(PhaseSchedule, DriftedScalesStayWithinWobbleBand) {
  PhaseScheduleOptions opt;
  opt.phases = 96;
  opt.drift = 0.25;
  for (const Phase& p : phase_schedule(opt)) {
    const BenchmarkDef& def = find_benchmark(p.benchmark);
    bool within_band = false;
    for (std::size_t i = 0; i < def.size_count; ++i) {
      const double ladder = def.scale_of(i);
      if (p.scale >= ladder * 0.75 && p.scale <= ladder * 1.25) {
        within_band = true;
      }
    }
    EXPECT_TRUE(within_band) << p.benchmark << " scale " << p.scale;
    EXPECT_GT(p.scale, 0.0);
  }
}

TEST(PhaseSchedule, RejectsInvalidDrift) {
  PhaseScheduleOptions opt;
  opt.drift = 1.0;
  EXPECT_THROW(phase_schedule(opt), Error);
  opt.drift = -0.1;
  EXPECT_THROW(phase_schedule(opt), Error);
}

TEST(PhaseSchedule, PhaseProfileBuildsRunProfile) {
  PhaseScheduleOptions opt;
  opt.phases = 4;
  for (const Phase& p : phase_schedule(opt)) {
    EXPECT_FALSE(p.profile().kernels.empty());
  }
}

}  // namespace
}  // namespace gppm::workload
