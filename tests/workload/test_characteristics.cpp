// Suite-wide characterization properties: every benchmark on every board
// must behave physically, and the showcased intensity classes must hold on
// all architectures.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "gpusim/timing.hpp"
#include "workload/suite.hpp"

namespace gppm::workload {
namespace {

struct Cell {
  std::size_t bench;
  sim::GpuModel gpu;
};

std::vector<Cell> all_cells() {
  std::vector<Cell> cells;
  for (std::size_t b = 0; b < benchmark_suite().size(); ++b) {
    for (sim::GpuModel m : sim::kAllGpus) cells.push_back({b, m});
  }
  return cells;
}

class EveryBenchmarkOnEveryBoard : public ::testing::TestWithParam<Cell> {
 protected:
  const BenchmarkDef& def() const { return benchmark_suite()[GetParam().bench]; }
  const sim::DeviceSpec& spec() const {
    return sim::device_spec(GetParam().gpu);
  }
};

TEST_P(EveryBenchmarkOnEveryBoard, MeasurementIsPhysical) {
  core::MeasurementRunner runner(GetParam().gpu);
  const core::Measurement m = runner.measure(def(), 0, sim::kDefaultPair);
  // Time: at least the 500 ms repetition floor (minus timer noise), at most
  // minutes.
  EXPECT_GT(m.exec_time.as_seconds(), 0.45);
  EXPECT_LT(m.exec_time.as_seconds(), 300.0);
  // Wall power: above the host floor, below PSU-relevant maxima.
  const sim::HostSpec& host = runner.options().host;
  EXPECT_GT(m.avg_power.as_watts(),
            host.gpu_wait.as_watts() / host.psu_efficiency);
  EXPECT_LT(m.avg_power.as_watts(), 450.0);
}

TEST_P(EveryBenchmarkOnEveryBoard, DownclockedMemoryNeverSpeedsUp) {
  core::MeasurementRunner runner(GetParam().gpu);
  const core::Measurement hh = runner.measure(def(), 0, sim::kDefaultPair);
  const core::Measurement hl = runner.measure(
      def(), 0, {sim::ClockLevel::High, sim::ClockLevel::Low});
  // Allow timer noise, nothing more.
  EXPECT_GE(hl.exec_time.as_seconds(), hh.exec_time.as_seconds() * 0.98);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, EveryBenchmarkOnEveryBoard, ::testing::ValuesIn(all_cells()),
    [](const ::testing::TestParamInfo<Cell>& info) {
      std::string n = benchmark_suite()[info.param.bench].name + "_" +
                      sim::to_string(info.param.gpu);
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

// --- Intensity classes across architectures -----------------------------

double mem_to_compute_ratio(const char* name, sim::GpuModel gpu) {
  const sim::DeviceSpec& spec = sim::device_spec(gpu);
  const sim::RunProfile p = find_benchmark(name).max_profile();
  double tc = 0, tm = 0;
  for (const sim::KernelProfile& k : p.kernels) {
    const auto t = sim::compute_kernel_timing(spec, k, sim::kDefaultPair);
    tc += t.compute_time.as_seconds() * k.launches;
    tm += t.memory_time.as_seconds() * k.launches;
  }
  return tm / tc;
}

TEST(IntensityClasses, ComputeIntensiveEverywhere) {
  for (const char* name :
       {"backprop", "mri-q", "binomialOptions", "cutcp", "MMul", "lavaMD"}) {
    for (sim::GpuModel gpu : sim::kAllGpus) {
      EXPECT_LT(mem_to_compute_ratio(name, gpu), 1.0)
          << name << " on " << sim::to_string(gpu);
    }
  }
}

TEST(IntensityClasses, MemoryIntensiveEverywhere) {
  for (const char* name : {"streamcluster", "MAdd", "spmv", "lbm", "MTranspose"}) {
    for (sim::GpuModel gpu : sim::kAllGpus) {
      EXPECT_GT(mem_to_compute_ratio(name, gpu), 1.0)
          << name << " on " << sim::to_string(gpu);
    }
  }
}

TEST(IntensityClasses, KeplerIsMoreMemoryLeaningThanTesla) {
  // The GTX 680's compute grew far more than its bandwidth: every workload
  // shifts toward the memory wall relative to the GTX 285.  This drives
  // TABLE IV's diversification.
  for (const BenchmarkDef& def : benchmark_suite()) {
    EXPECT_GT(mem_to_compute_ratio(def.name.c_str(), sim::GpuModel::GTX680),
              mem_to_compute_ratio(def.name.c_str(), sim::GpuModel::GTX285) *
                  0.99)
        << def.name;
  }
}

}  // namespace
}  // namespace gppm::workload
