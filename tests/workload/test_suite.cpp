// Validates the benchmark suite against paper TABLE II and the modeling
// corpus size (114 samples over the profiler-supported programs).
#include "workload/suite.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "profiler/cuda_profiler.hpp"

namespace gppm::workload {
namespace {

TEST(Suite, ThirtySevenBenchmarks) {
  EXPECT_EQ(benchmark_suite().size(), 37u);
}

TEST(Suite, SuiteCompositionMatchesTableTwo) {
  std::map<Suite, int> counts;
  for (const BenchmarkDef& def : benchmark_suite()) counts[def.suite]++;
  EXPECT_EQ(counts[Suite::Rodinia], 18);
  EXPECT_EQ(counts[Suite::Parboil], 10);
  EXPECT_EQ(counts[Suite::CudaSdk], 6);
  EXPECT_EQ(counts[Suite::Matrix], 3);
}

TEST(Suite, NamesAreUnique) {
  std::set<std::string> names;
  for (const BenchmarkDef& def : benchmark_suite()) {
    EXPECT_TRUE(names.insert(def.name).second) << def.name;
  }
}

TEST(Suite, TableTwoProgramsPresent) {
  for (const char* name :
       {"backprop", "bfs", "cfd", "gaussian", "heartwall", "hotspot", "kmeans",
        "lavaMD", "leukocyte", "mummergpu", "lud", "nn", "nw",
        "particlefilter_float", "pathfinder", "srad_v1", "srad_v2",
        "streamcluster", "cutcp", "histo", "lbm", "mri-gridding", "mri-q",
        "sad", "sgemm", "spmv", "stencil", "tpacf", "binomialOptions",
        "BlackScholes", "concurrentKernels", "histogram64", "histogram256",
        "MersenneTwister", "MAdd", "MMul", "MTranspose"}) {
    EXPECT_NO_THROW(find_benchmark(name)) << name;
  }
}

TEST(Suite, FindUnknownThrows) {
  EXPECT_THROW(find_benchmark("nonexistent"), gppm::Error);
}

TEST(Suite, ModelingCorpusHas114Samples) {
  // The paper: 114 samples across the profiler-supported programs.
  std::vector<BenchmarkDef> supported;
  for (const BenchmarkDef& def : benchmark_suite()) {
    if (profiler::CudaProfiler::supports(def.name)) supported.push_back(def);
  }
  EXPECT_EQ(supported.size(), 33u);
  EXPECT_EQ(total_samples(supported), 114u);
}

TEST(Suite, EverySizeCountPositiveAndSmall) {
  for (const BenchmarkDef& def : benchmark_suite()) {
    EXPECT_GE(def.size_count, 3u) << def.name;
    EXPECT_LE(def.size_count, 4u) << def.name;
  }
}

TEST(Suite, ToStringCoversAllSuites) {
  EXPECT_EQ(to_string(Suite::Rodinia), "Rodinia");
  EXPECT_EQ(to_string(Suite::Parboil), "Parboil");
  EXPECT_EQ(to_string(Suite::CudaSdk), "CUDA SDK");
  EXPECT_EQ(to_string(Suite::Matrix), "Matrix");
}

}  // namespace
}  // namespace gppm::workload
