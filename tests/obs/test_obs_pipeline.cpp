// End-to-end observability: run the instrumented layers (resilient sweep,
// forward selection over the compute pool, prediction serving) with obs
// enabled, then check the Chrome trace is well-formed and properly nested
// and that the metrics registry saw all four subsystems.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/characterization.hpp"
#include "core/dataset.hpp"
#include "core/evaluation.hpp"
#include "fault/injector.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "serve/server.hpp"
#include "stats/forward_selection.hpp"
#include "workload/suite.hpp"

namespace gppm {
namespace {

const core::Dataset& shared_dataset() {
  static const core::Dataset* ds =
      new core::Dataset(core::build_dataset(sim::GpuModel::GTX460));
  return *ds;
}

/// One parsed trace event (the fields the nesting check needs).
struct TraceEvent {
  std::string name;
  std::uint64_t tid = 0;
  double ts = 0.0;   // microseconds
  double dur = 0.0;  // microseconds
};

/// Structural JSON well-formedness: braces/brackets balance outside string
/// literals and every string closes.  Not a full parser, but enough to
/// guarantee chrome://tracing's JSON.parse will not reject the shape.
bool json_structure_ok(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

std::string field_value(const std::string& event, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = event.find(needle);
  if (at == std::string::npos) return "";
  std::size_t begin = at + needle.size();
  if (begin < event.size() && event[begin] == '"') {
    const std::size_t end = event.find('"', begin + 1);
    return event.substr(begin + 1, end - begin - 1);
  }
  std::size_t end = begin;
  while (end < event.size() && event[end] != ',' && event[end] != '}') ++end;
  return event.substr(begin, end - begin);
}

std::vector<TraceEvent> parse_trace_events(const std::string& json) {
  std::vector<TraceEvent> events;
  const std::size_t list = json.find("\"traceEvents\":[");
  if (list == std::string::npos) return events;
  std::size_t at = list;
  while (true) {
    const std::size_t open = json.find('{', at);
    if (open == std::string::npos) break;
    const std::size_t close = json.find('}', open);
    if (close == std::string::npos) break;
    const std::string body = json.substr(open + 1, close - open - 1);
    TraceEvent e;
    e.name = field_value(body, "name");
    e.tid = std::stoull(field_value(body, "tid"));
    e.ts = std::stod(field_value(body, "ts"));
    e.dur = std::stod(field_value(body, "dur"));
    EXPECT_EQ(field_value(body, "ph"), "X");
    EXPECT_EQ(field_value(body, "pid"), "1");
    EXPECT_FALSE(e.name.empty());
    events.push_back(e);
    at = close + 1;
  }
  return events;
}

TEST(ObsPipeline, SweepSelectServeProducesTraceAndFullMetrics) {
  obs::set_enabled(true);
  obs::clear_spans();
  obs::Registry::instance().reset_values();

  // Layer 1+2: resilient sweep under a light fault plan (exercises the
  // retry/imputation counters, sweep.* spans and the measurement path).
  fault::FaultInjector injector(fault::FaultPlan::default_profile(), 11);
  core::RunnerOptions ropt;
  ropt.injector = &injector;
  core::MeasurementRunner runner(sim::GpuModel::GTX460, ropt);
  const core::Sweep sweep = core::sweep_pairs_resilient(
      runner, workload::find_benchmark("gaussian"), 0);
  EXPECT_GT(sweep.results.size(), 0u);

  // Layer 3: forward selection fanned out over the compute pool
  // (select.* spans/counters plus parallel.* from the pool itself).
  const core::RegressionTable table =
      core::build_table(shared_dataset(), core::TargetKind::Power);
  stats::SelectionOptions sopt;
  sopt.max_variables = 5;
  sopt.parallel = true;
  const stats::SelectionResult sel =
      stats::forward_select(table.features, table.target, sopt);
  EXPECT_GT(sel.selected.size(), 0u);

  // Layer 4: prediction serving (serve.* counters, histogram and the
  // snapshot-time gauge bridge).
  {
    serve::PredictionServer server;
    server.load_models(
        core::UnifiedModel::fit(shared_dataset(), core::TargetKind::Power),
        core::UnifiedModel::fit(shared_dataset(), core::TargetKind::ExecTime));
    std::vector<std::future<serve::Response>> pending;
    for (std::size_t i = 0; i < 16; ++i) {
      serve::Request req;
      req.kind = serve::RequestKind::Predict;
      req.gpu = sim::GpuModel::GTX460;
      req.counters =
          shared_dataset().samples[i % shared_dataset().samples.size()]
              .counters;
      pending.push_back(server.submit(std::move(req)));
    }
    for (auto& f : pending) {
      EXPECT_EQ(f.get().status, serve::ResponseStatus::Ok);
    }
    (void)server.metrics();  // publishes the serve.* gauges
    server.shutdown();
  }

  // All four layers must show up in one registry snapshot...
  const obs::MetricsSnapshot snap = obs::Registry::instance().snapshot();
  EXPECT_TRUE(snap.has_activity("sweep."));
  EXPECT_TRUE(snap.has_activity("select."));
  EXPECT_TRUE(snap.has_activity("parallel."));
  EXPECT_TRUE(snap.has_activity("serve."));

  // ...and in the CSV export.
  std::ostringstream csv;
  obs::write_metrics_csv(snap, csv);
  for (const char* name :
       {"sweep.attempts", "select.steps", "parallel.tasks",
        "serve.requests"}) {
    EXPECT_NE(csv.str().find(name), std::string::npos) << name;
  }

  // The trace must be structurally valid JSON with every span family
  // present, and spans on one thread must nest (contain or not overlap).
  std::ostringstream trace;
  obs::write_chrome_trace(obs::span_snapshot(), trace);
  const std::string json = trace.str();
  EXPECT_TRUE(json_structure_ok(json));
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);

  const std::vector<TraceEvent> events = parse_trace_events(json);
  EXPECT_GT(events.size(), 0u);
  std::map<std::string, int> by_name;
  for (const TraceEvent& e : events) ++by_name[e.name];
  for (const char* name : {"sweep.resilient", "sweep.cell", "select.step",
                           "parallel.task", "serve.batch"}) {
    EXPECT_GT(by_name[name], 0) << name;
  }

  const double slack_us = 1.0;  // export rounds to 0.001 us; allow rounding
  for (const TraceEvent& a : events) {
    for (const TraceEvent& b : events) {
      if (a.tid != b.tid) continue;
      if (b.ts >= a.ts - slack_us && b.ts + b.dur <= a.ts + a.dur + slack_us)
        continue;  // b inside a
      if (a.ts >= b.ts - slack_us && a.ts + a.dur <= b.ts + b.dur + slack_us)
        continue;  // a inside b
      if (b.ts >= a.ts + a.dur - slack_us || a.ts >= b.ts + b.dur - slack_us)
        continue;  // disjoint
      ADD_FAILURE() << a.name << " and " << b.name
                    << " overlap without nesting on tid " << a.tid;
    }
  }

  obs::set_enabled(false);
}

TEST(ObsPipeline, ServeTableOutputUnchangedByObsBridge) {
  // The registry bridge must not perturb the serve-side rendering: the same
  // recorded history prints byte-identically with obs off and on.
  const auto drive = [] {
    serve::MetricsCollector collector;
    collector.record_request(serve::RequestKind::Predict, 0.0012);
    collector.record_request(serve::RequestKind::Optimize, 0.0203);
    collector.record_batch(3);
    collector.record_shed();
    collector.record_deadline_expired();
    serve::ServerMetrics m = collector.snapshot();
    m.queue_high_water = 5;
    std::ostringstream out;
    m.print(out);
    m.write_csv(out);
    return out.str();
  };

  obs::set_enabled(false);
  const std::string disabled = drive();
  obs::set_enabled(true);
  const std::string enabled = drive();
  obs::set_enabled(false);
  EXPECT_EQ(disabled, enabled);
}

}  // namespace
}  // namespace gppm
