#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "obs/export.hpp"

// ---------------------------------------------------------------------------
// Allocation counting for the disabled-mode zero-cost check.  The overrides
// are process-wide, so they forward to malloc/free and only bump an atomic —
// cheap enough for the rest of the binary not to notice.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace gppm::obs {
namespace {

/// Restores the disabled default however a test exits, so suites sharing the
/// process never observe each other's enable flag.
struct EnabledGuard {
  explicit EnabledGuard(bool on) { set_enabled(on); }
  ~EnabledGuard() { set_enabled(false); }
};

TEST(ObsRegistry, DisabledInstrumentsDoNotMove) {
  set_enabled(false);
  Counter& c = Registry::instance().counter("test.disabled_counter");
  Gauge& g = Registry::instance().gauge("test.disabled_gauge");
  Histogram& h =
      Registry::instance().histogram("test.disabled_hist", {1.0, 10.0});
  const std::uint64_t c0 = c.value();
  c.add(5);
  g.set(42);
  g.add(7);
  h.record(3.0);
  EXPECT_EQ(c.value(), c0);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max(), 0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(ObsRegistry, CounterGaugeHistogramRecordWhenEnabled) {
  EnabledGuard on(true);
  Counter& c = Registry::instance().counter("test.counter");
  c.add();
  c.add(9);
  EXPECT_EQ(c.value(), 10u);

  Gauge& g = Registry::instance().gauge("test.gauge");
  g.set(5);
  g.add(3);   // level 8, max 8
  g.add(-6);  // level 2, max stays 8
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 8);

  Histogram& h = Registry::instance().histogram("test.hist", {1.0, 10.0});
  h.record(0.5);   // bucket 0
  h.record(1.0);   // bucket 0 (le semantics: v <= bound)
  h.record(7.0);   // bucket 1
  h.record(99.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_NEAR(h.sum(), 107.5, 1e-6);
  const std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
}

TEST(ObsRegistry, FindOrCreateIsStable) {
  Counter& a = Registry::instance().counter("test.same_name");
  Counter& b = Registry::instance().counter("test.same_name");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = Registry::instance().histogram("test.same_hist", {1.0});
  // Bounds are ignored on a find; the instrument keeps its original shape.
  Histogram& h2 =
      Registry::instance().histogram("test.same_hist", {5.0, 50.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.upper_bounds().size(), 1u);
}

TEST(ObsRegistry, SnapshotSortsByNameAndReportsActivity) {
  EnabledGuard on(true);
  Registry::instance().counter("test.zz_last").add();
  Registry::instance().counter("test.aa_first").add();
  const MetricsSnapshot snap = Registry::instance().snapshot();
  ASSERT_GE(snap.counters.size(), 2u);
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
  EXPECT_TRUE(snap.has_activity("test.zz_last"));
  EXPECT_FALSE(snap.has_activity("no.such.prefix"));
}

TEST(ObsRegistry, ConcurrentRecordingUnderParallelForIsExact) {
  EnabledGuard on(true);
  Counter& c = Registry::instance().counter("test.par_counter");
  Gauge& g = Registry::instance().gauge("test.par_gauge");
  Histogram& h = Registry::instance().histogram("test.par_hist", {100.0});
  const std::uint64_t c0 = c.value();
  const std::uint64_t h0 = h.count();

  constexpr std::size_t kIters = 20000;
  parallel_for(kIters, [&](std::size_t i) {
    c.add();
    g.add(1);
    h.record(static_cast<double>(i % 200));
    g.add(-1);
  });

  EXPECT_EQ(c.value() - c0, kIters);
  EXPECT_EQ(h.count() - h0, kIters);
  EXPECT_EQ(g.value(), 0);
  EXPECT_GE(g.max(), 1);
}

TEST(ObsSpans, NestingDepthsOnOneThread) {
  EnabledGuard on(true);
  clear_spans();
  {
    ObsSpan outer("test.outer");
    {
      ObsSpan mid("test.mid");
      { ObsSpan inner("test.inner"); }
    }
  }
  const std::vector<SpanRecord> spans = span_snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Completion order: innermost ends first.
  EXPECT_STREQ(spans[0].name, "test.inner");
  EXPECT_STREQ(spans[1].name, "test.mid");
  EXPECT_STREQ(spans[2].name, "test.outer");
  EXPECT_EQ(spans[0].depth, 2u);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].depth, 0u);
  EXPECT_EQ(spans[0].tid, spans[2].tid);
  // Containment: the outer span covers the inner ones.
  EXPECT_LE(spans[2].start_ns, spans[0].start_ns);
  EXPECT_GE(spans[2].start_ns + spans[2].duration_ns,
            spans[0].start_ns + spans[0].duration_ns);
}

TEST(ObsSpans, PerThreadDepthAcrossPoolWorkers) {
  EnabledGuard on(true);
  clear_spans();
  parallel_for(64, [&](std::size_t) {
    ObsSpan outer("test.pool_outer");
    ObsSpan inner("test.pool_inner");
  });
  const std::vector<SpanRecord> spans = span_snapshot();
  std::size_t outers = 0;
  std::size_t inners = 0;
  for (const SpanRecord& s : spans) {
    const std::string name = s.name;
    // The pool's own instrumentation ("parallel.task") wraps each task, so
    // user spans inside a pool task sit one or two levels deep depending on
    // whether this iteration ran inline on the caller or on a worker.  The
    // invariant is relative: inner is exactly one deeper than outer.
    if (name == "test.pool_outer") {
      ++outers;
    } else if (name == "test.pool_inner") {
      ++inners;
      EXPECT_GE(s.depth, 1u);
    }
  }
  EXPECT_EQ(outers, 64u);
  EXPECT_EQ(inners, 64u);
  // Per-thread nesting: within one thread, spans sorted by start time must
  // be properly nested — each later-starting, earlier-ending span sits
  // strictly inside or strictly after any earlier span.
  for (const SpanRecord& a : spans) {
    for (const SpanRecord& b : spans) {
      if (a.tid != b.tid) continue;
      const std::uint64_t a_end = a.start_ns + a.duration_ns;
      const std::uint64_t b_end = b.start_ns + b.duration_ns;
      if (b.start_ns >= a.start_ns && b_end <= a_end) continue;  // nested
      if (b.start_ns >= a_end || a.start_ns >= b_end) continue;  // disjoint
      if (a.start_ns >= b.start_ns && a_end <= b_end) continue;  // nested
      ADD_FAILURE() << a.name << " and " << b.name
                    << " overlap without nesting on tid " << a.tid;
    }
  }
}

TEST(ObsSpans, BufferIsBoundedAndCountsDrops) {
  EnabledGuard on(true);
  clear_spans();
  set_span_capacity(16);
  for (int i = 0; i < 64; ++i) {
    ObsSpan span("test.bounded");
  }
  EXPECT_LE(span_snapshot().size(), 16u);
  EXPECT_EQ(spans_dropped(), 48u);
  set_span_capacity(1 << 16);  // restore the default for later suites
  clear_spans();
}

TEST(ObsDisabled, HotPathDoesNotAllocate) {
  set_enabled(false);
  // Registration is the cold path and may allocate; do it first.
  Counter& c = Registry::instance().counter("test.noalloc_counter");
  Gauge& g = Registry::instance().gauge("test.noalloc_gauge");
  Histogram& h =
      Registry::instance().histogram("test.noalloc_hist", {1.0, 10.0});

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    c.add();
    g.set(i);
    g.add(1);
    h.record(static_cast<double>(i));
    ObsSpan span("test.noalloc_span");
  }
  EXPECT_EQ(g_allocations.load(), before);
}

TEST(ObsExport, MetricsCsvListsEveryInstrumentKind) {
  EnabledGuard on(true);
  Registry::instance().counter("test.csv_counter").add(3);
  Registry::instance().gauge("test.csv_gauge").set(7);
  Registry::instance().histogram("test.csv_hist", {1.0, 10.0}).record(5.0);

  std::ostringstream out;
  write_metrics_csv(Registry::instance().snapshot(), out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("kind,name,field,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,test.csv_counter,value,3"), std::string::npos);
  EXPECT_NE(csv.find("gauge,test.csv_gauge,value,7"), std::string::npos);
  EXPECT_NE(csv.find("histogram,test.csv_hist,count,"), std::string::npos);
  EXPECT_NE(csv.find("le_1"), std::string::npos);
  EXPECT_NE(csv.find("le_inf"), std::string::npos);
}

TEST(ObsExport, MetricsTableHasOneRowPerInstrument) {
  EnabledGuard on(true);
  Registry::instance().counter("test.table_counter").add();
  const MetricsSnapshot snap = Registry::instance().snapshot();
  const AsciiTable table = metrics_table(snap);
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("test.table_counter"), std::string::npos);
}

}  // namespace
}  // namespace gppm::obs
