#include "stats/descriptive.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace gppm::stats {
namespace {

TEST(Descriptive, Mean) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({-1, 1}), 0.0);
  EXPECT_THROW(mean({}), gppm::Error);
}

TEST(Descriptive, VarianceAndStddev) {
  // Sample variance of {2,4,4,4,5,5,7,9} is 32/7.
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_THROW(variance({1.0}), gppm::Error);
}

TEST(Descriptive, MinMax) {
  EXPECT_DOUBLE_EQ(min_of({3, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(max_of({3, 1, 2}), 3.0);
  EXPECT_THROW(min_of({}), gppm::Error);
}

TEST(Descriptive, QuantileInterpolates) {
  const std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0 / 3.0), 20.0);
}

TEST(Descriptive, QuantileValidatesInput) {
  EXPECT_THROW(quantile({}, 0.5), gppm::Error);
  EXPECT_THROW(quantile({1.0}, 1.5), gppm::Error);
}

TEST(Descriptive, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(Descriptive, FiveNumberBasics) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  const FiveNumber f = five_number(v);
  EXPECT_NEAR(f.median, 50.5, 1e-9);
  EXPECT_NEAR(f.q1, 25.75, 1e-9);
  EXPECT_NEAR(f.q3, 75.25, 1e-9);
  // No outliers: whiskers reach the extremes.
  EXPECT_DOUBLE_EQ(f.whisker_lo, 1.0);
  EXPECT_DOUBLE_EQ(f.whisker_hi, 100.0);
}

TEST(Descriptive, FiveNumberExcludesOutliersFromWhiskers) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 1000};
  const FiveNumber f = five_number(v);
  EXPECT_LT(f.whisker_hi, 1000.0);  // the outlier is beyond the fence
  EXPECT_GE(f.whisker_hi, f.q3);
}

TEST(Descriptive, FiveNumberOrdering) {
  const std::vector<double> v{9, 3, 7, 1, 5, 8, 2};
  const FiveNumber f = five_number(v);
  EXPECT_LE(f.whisker_lo, f.q1);
  EXPECT_LE(f.q1, f.median);
  EXPECT_LE(f.median, f.q3);
  EXPECT_LE(f.q3, f.whisker_hi);
}

TEST(Descriptive, PearsonPerfectCorrelation) {
  EXPECT_NEAR(pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(Descriptive, PearsonValidates) {
  EXPECT_THROW(pearson({1, 2}, {1}), gppm::Error);
  EXPECT_THROW(pearson({1, 1}, {1, 2}), gppm::Error);  // constant series
}

}  // namespace
}  // namespace gppm::stats
