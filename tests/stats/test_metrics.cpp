#include "stats/metrics.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace gppm::stats {
namespace {

TEST(Metrics, MapeKnownValue) {
  // Errors: 10% and 20% -> mean 15%.
  EXPECT_NEAR(mape({100, 100}, {110, 80}), 15.0, 1e-12);
}

TEST(Metrics, MapeZeroForPerfectPrediction) {
  EXPECT_DOUBLE_EQ(mape({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(Metrics, MaeKnownValue) {
  EXPECT_DOUBLE_EQ(mae({10, 20}, {12, 16}), 3.0);
}

TEST(Metrics, SignedErrorsKeepDirection) {
  const auto errs = signed_percentage_errors({100, 200}, {110, 180});
  EXPECT_NEAR(errs[0], 10.0, 1e-12);
  EXPECT_NEAR(errs[1], -10.0, 1e-12);
}

TEST(Metrics, AbsoluteErrorsAreNonNegative) {
  const auto errs = absolute_percentage_errors({100, 200}, {90, 260});
  EXPECT_NEAR(errs[0], 10.0, 1e-12);
  EXPECT_NEAR(errs[1], 30.0, 1e-12);
}

TEST(Metrics, NegativeActualUsesMagnitude) {
  const auto errs = signed_percentage_errors({-100}, {-90});
  EXPECT_NEAR(errs[0], 10.0, 1e-12);
}

TEST(Metrics, ValidatesInputs) {
  EXPECT_THROW(mape({1, 2}, {1}), gppm::Error);
  EXPECT_THROW(mape({}, {}), gppm::Error);
  EXPECT_THROW(mape({0.0}, {1.0}), gppm::Error);  // zero actual
  EXPECT_THROW(mae({1}, {}), gppm::Error);
}

}  // namespace
}  // namespace gppm::stats
