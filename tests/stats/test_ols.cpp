#include "stats/ols.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gppm::stats {
namespace {

TEST(Ols, RecoversExactLinearModel) {
  linalg::Matrix x(10, 2);
  linalg::Vector y(10);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = static_cast<double>(i);
    x(i, 1) = static_cast<double>(i * i);
    y[i] = 5.0 + 2.0 * x(i, 0) - 0.5 * x(i, 1);
  }
  const OlsFit fit = ols_fit(x, y);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[0], 2.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], -0.5, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.adjusted_r_squared, 1.0, 1e-12);
}

TEST(Ols, PredictMatchesManualEvaluation) {
  linalg::Matrix x{{1, 2}, {2, 1}, {3, 3}, {0, 1}};
  const linalg::Vector y{4, 5, 9, 1};
  const OlsFit fit = ols_fit(x, y);
  const double pred = fit.predict({2.0, 2.0});
  EXPECT_NEAR(pred,
              fit.intercept + 2.0 * fit.coefficients[0] + 2.0 * fit.coefficients[1],
              1e-12);
}

TEST(Ols, PredictValidatesFeatureCount) {
  linalg::Matrix x{{1}, {2}, {3}};
  const OlsFit fit = ols_fit(x, {1, 2, 3});
  EXPECT_THROW(fit.predict({1.0, 2.0}), gppm::Error);
}

TEST(Ols, AdjustedR2BelowR2WithUselessPredictors) {
  gppm::Rng rng(3);
  const std::size_t n = 40;
  linalg::Matrix x(n, 3);
  linalg::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = static_cast<double>(i);
    x(i, 1) = rng.normal();  // noise predictors
    x(i, 2) = rng.normal();
    y[i] = 1.0 + 0.5 * x(i, 0) + rng.normal(0.0, 2.0);
  }
  const OlsFit fit = ols_fit(x, y);
  EXPECT_LT(fit.adjusted_r_squared, fit.r_squared);
  EXPECT_GT(fit.r_squared, 0.5);
}

TEST(Ols, NoInterceptFitsThroughOrigin) {
  linalg::Matrix x(5, 1);
  linalg::Vector y(5);
  for (std::size_t i = 0; i < 5; ++i) {
    x(i, 0) = static_cast<double>(i + 1);
    y[i] = 3.0 * x(i, 0);
  }
  const OlsFit fit = ols_fit(x, y, /*fit_intercept=*/false);
  EXPECT_EQ(fit.intercept, 0.0);
  EXPECT_NEAR(fit.coefficients[0], 3.0, 1e-12);
}

TEST(Ols, RejectsUnderdeterminedProblems) {
  linalg::Matrix x(3, 3);  // 3 samples, 3 predictors + intercept = 4 params
  EXPECT_THROW(ols_fit(x, {1, 2, 3}), gppm::Error);
}

TEST(Ols, RejectsRowMismatch) {
  EXPECT_THROW(ols_fit(linalg::Matrix(4, 1), {1, 2, 3}), gppm::Error);
}

TEST(Ols, ConstantTargetGivesPerfectFit) {
  linalg::Matrix x{{1}, {2}, {3}, {4}};
  const OlsFit fit = ols_fit(x, {7, 7, 7, 7});
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.predict({10.0}), 7.0, 1e-9);
}

TEST(Ols, FlagsCollinearDesign) {
  linalg::Matrix x(6, 2);
  for (std::size_t i = 0; i < 6; ++i) {
    x(i, 0) = static_cast<double>(i);
    x(i, 1) = 2.0 * static_cast<double>(i);
  }
  const OlsFit fit = ols_fit(x, {0, 2, 4, 6, 8, 10});
  EXPECT_FALSE(fit.full_rank);
}

}  // namespace
}  // namespace gppm::stats
