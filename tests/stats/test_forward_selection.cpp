#include "stats/forward_selection.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gppm::stats {
namespace {

/// 60 samples, 8 candidates of which columns 2 and 5 generate y.
struct Problem {
  linalg::Matrix x;
  linalg::Vector y;
};

Problem make_problem(double noise_sigma) {
  gppm::Rng rng(17);
  const std::size_t n = 60, p = 8;
  Problem prob{linalg::Matrix(n, p), linalg::Vector(n)};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < p; ++j) prob.x(i, j) = rng.normal();
    prob.y[i] = 4.0 * prob.x(i, 2) - 3.0 * prob.x(i, 5) +
                rng.normal(0.0, noise_sigma);
  }
  return prob;
}

TEST(ForwardSelection, FindsTruePredictorsFirst) {
  const Problem prob = make_problem(0.05);
  SelectionOptions opt;
  opt.max_variables = 2;
  const SelectionResult result = forward_select(prob.x, prob.y, opt);
  ASSERT_EQ(result.selected.size(), 2u);
  std::vector<std::size_t> sorted = result.selected;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::size_t>{2, 5}));
  EXPECT_GT(result.fit.adjusted_r_squared, 0.99);
}

TEST(ForwardSelection, RespectsVariableCap) {
  const Problem prob = make_problem(1.0);
  SelectionOptions opt;
  opt.max_variables = 3;
  const SelectionResult result = forward_select(prob.x, prob.y, opt);
  EXPECT_LE(result.selected.size(), 3u);
}

TEST(ForwardSelection, R2TraceIsNonDecreasing) {
  const Problem prob = make_problem(0.5);
  SelectionOptions opt;
  opt.max_variables = 6;
  const SelectionResult result = forward_select(prob.x, prob.y, opt);
  for (std::size_t i = 1; i < result.r2_trace.size(); ++i) {
    EXPECT_GE(result.r2_trace[i], result.r2_trace[i - 1] - 1e-12);
  }
  EXPECT_EQ(result.r2_trace.size(), result.selected.size());
}

TEST(ForwardSelection, StopsWhenNothingImproves) {
  // y depends on one column only; selection should stop well before the cap
  // because further variables cannot improve adjusted R^2.
  gppm::Rng rng(7);
  const std::size_t n = 80;
  linalg::Matrix x(n, 6);
  linalg::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 6; ++j) x(i, j) = rng.normal();
    y[i] = 2.0 * x(i, 0);  // exact, single-variable
  }
  SelectionOptions opt;
  opt.max_variables = 6;
  const SelectionResult result = forward_select(x, y, opt);
  EXPECT_EQ(result.selected.size(), 1u);
  EXPECT_EQ(result.selected[0], 0u);
}

TEST(ForwardSelection, SkipsConstantColumns) {
  gppm::Rng rng(9);
  const std::size_t n = 30;
  linalg::Matrix x(n, 3);
  linalg::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = 5.0;  // constant (like prof_trigger counters)
    x(i, 1) = rng.normal();
    x(i, 2) = rng.normal();
    y[i] = x(i, 1) + 0.1 * rng.normal();
  }
  const SelectionResult result = forward_select(x, y);
  for (std::size_t c : result.selected) EXPECT_NE(c, 0u);
}

TEST(ForwardSelection, SkipsCollinearCandidates) {
  gppm::Rng rng(21);
  const std::size_t n = 40;
  linalg::Matrix x(n, 3);
  linalg::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = 2.0 * x(i, 0);  // exact copy (scaled)
    x(i, 2) = rng.normal();
    y[i] = x(i, 0) + x(i, 2);
  }
  SelectionOptions opt;
  opt.max_variables = 3;
  const SelectionResult result = forward_select(x, y, opt);
  // Both of {0,1} cannot be selected together.
  const bool has0 = std::count(result.selected.begin(), result.selected.end(), 0u);
  const bool has1 = std::count(result.selected.begin(), result.selected.end(), 1u);
  EXPECT_FALSE(has0 && has1);
}

TEST(ForwardSelection, ValidatesInputs) {
  linalg::Matrix x(10, 2);
  EXPECT_THROW(forward_select(x, linalg::Vector(5)), gppm::Error);
  SelectionOptions opt;
  opt.max_variables = 0;
  EXPECT_THROW(forward_select(x, linalg::Vector(10), opt), gppm::Error);
}

Problem seeded_problem(std::uint64_t seed, double noise_sigma,
                       std::size_t n = 60, std::size_t p = 12) {
  gppm::Rng rng(seed);
  Problem prob{linalg::Matrix(n, p), linalg::Vector(n)};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < p; ++j) prob.x(i, j) = rng.normal();
    prob.y[i] = 4.0 * prob.x(i, 2) - 3.0 * prob.x(i, 5) +
                0.5 * prob.x(i, 7) + rng.normal(0.0, noise_sigma);
  }
  return prob;
}

SelectionResult run_engine(const Problem& prob, SelectionEngine engine,
                           bool parallel, std::size_t max_variables) {
  SelectionOptions opt;
  opt.max_variables = max_variables;
  opt.engine = engine;
  opt.parallel = parallel;
  return forward_select(prob.x, prob.y, opt);
}

/// Accepted models are QR-refit in both engines, so parity is exact — not
/// approximate: same selected order, same traces, same coefficient bits.
void expect_exact_parity(const SelectionResult& a, const SelectionResult& b) {
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_EQ(a.r2_trace, b.r2_trace);
  EXPECT_EQ(a.fit.coefficients, b.fit.coefficients);
  EXPECT_EQ(a.fit.r_squared, b.fit.r_squared);
  EXPECT_EQ(a.fit.adjusted_r_squared, b.fit.adjusted_r_squared);
  ASSERT_EQ(a.prefix_fits.size(), b.prefix_fits.size());
  for (std::size_t k = 0; k < a.prefix_fits.size(); ++k) {
    EXPECT_EQ(a.prefix_fits[k].coefficients, b.prefix_fits[k].coefficients);
  }
}

TEST(ForwardSelectionParity, IncrementalMatchesNaiveOnRandomProblems) {
  for (std::uint64_t seed : {3u, 11u, 29u, 57u}) {
    for (double noise : {0.05, 1.0, 5.0}) {
      const Problem prob = seeded_problem(seed, noise);
      const SelectionResult naive =
          run_engine(prob, SelectionEngine::NaiveQr, false, 8);
      const SelectionResult incr =
          run_engine(prob, SelectionEngine::IncrementalGram, false, 8);
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " noise=" + std::to_string(noise));
      expect_exact_parity(naive, incr);
    }
  }
}

TEST(ForwardSelectionParity, ParallelMatchesSerial) {
  // Deterministic fan-out: per-candidate score slots plus a serial argmax
  // make the result independent of thread count.
  const Problem prob = seeded_problem(101, 0.8, 120, 80);
  const SelectionResult serial =
      run_engine(prob, SelectionEngine::IncrementalGram, false, 10);
  const SelectionResult parallel =
      run_engine(prob, SelectionEngine::IncrementalGram, true, 10);
  expect_exact_parity(serial, parallel);
}

TEST(ForwardSelectionParity, MatchesNaiveWithDegenerateColumns) {
  gppm::Rng rng(33);
  const std::size_t n = 50;
  Problem prob{linalg::Matrix(n, 8), linalg::Vector(n)};
  for (std::size_t i = 0; i < n; ++i) {
    prob.x(i, 0) = rng.normal();
    prob.x(i, 1) = 7.5;                                // constant
    prob.x(i, 2) = -3.0 * prob.x(i, 0);                // collinear with 0
    prob.x(i, 3) = rng.normal();
    prob.x(i, 4) = 0.0;                                // all-zero
    prob.x(i, 5) = prob.x(i, 0) + prob.x(i, 3);        // sum of 0 and 3
    prob.x(i, 6) = rng.normal();
    prob.x(i, 7) = 1e9 * (1.0 + 1e-15 * rng.normal()); // constant up to noise
    prob.y[i] = 2.0 * prob.x(i, 0) - prob.x(i, 3) + 0.5 * prob.x(i, 6) +
                rng.normal(0.0, 0.3);
  }
  const SelectionResult naive =
      run_engine(prob, SelectionEngine::NaiveQr, false, 8);
  const SelectionResult incr =
      run_engine(prob, SelectionEngine::IncrementalGram, false, 8);
  expect_exact_parity(naive, incr);
  for (std::size_t c : incr.selected) {
    EXPECT_NE(c, 1u);
    EXPECT_NE(c, 4u);
    EXPECT_NE(c, 7u);
  }
}

TEST(ForwardSelectionParity, MinImprovementStopsBothEnginesAlike) {
  const Problem prob = seeded_problem(71, 2.0);
  for (double min_improvement : {0.0, 1e-3, 0.05}) {
    SelectionOptions opt;
    opt.max_variables = 10;
    opt.min_improvement = min_improvement;
    opt.engine = SelectionEngine::NaiveQr;
    const SelectionResult naive = forward_select(prob.x, prob.y, opt);
    opt.engine = SelectionEngine::IncrementalGram;
    const SelectionResult incr = forward_select(prob.x, prob.y, opt);
    SCOPED_TRACE("min_improvement=" + std::to_string(min_improvement));
    expect_exact_parity(naive, incr);
  }
}

TEST(ForwardSelection, PrefixFitsMatchCappedRuns) {
  // Greedy selection is prefix-consistent: capping at k must reproduce the
  // first k steps of a larger run, so prefix_fits[k-1] is exactly the model
  // a max_variables=k run would return.
  const Problem prob = seeded_problem(5, 0.5);
  const SelectionResult full =
      run_engine(prob, SelectionEngine::IncrementalGram, false, 6);
  ASSERT_GE(full.selected.size(), 3u);
  ASSERT_EQ(full.prefix_fits.size(), full.selected.size());
  for (std::size_t k = 1; k <= full.selected.size(); ++k) {
    const SelectionResult capped =
        run_engine(prob, SelectionEngine::IncrementalGram, false, k);
    ASSERT_EQ(capped.selected.size(), k);
    EXPECT_TRUE(std::equal(capped.selected.begin(), capped.selected.end(),
                           full.selected.begin()));
    EXPECT_EQ(capped.fit.coefficients, full.prefix_fits[k - 1].coefficients);
    EXPECT_EQ(capped.fit.adjusted_r_squared, full.r2_trace[k - 1]);
  }
}

TEST(ForwardSelection, ExcludesNearConstantColumns) {
  // Relative tolerance: a column hovering at 1e9 with 1e-4 absolute jitter
  // is constant for all fitting purposes (spread / magnitude ~ 1e-13), even
  // though an absolute test would keep it.
  gppm::Rng rng(13);
  const std::size_t n = 40;
  linalg::Matrix x(n, 3);
  linalg::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = 1e9 + 1e-4 * rng.normal();
    x(i, 1) = rng.normal();
    x(i, 2) = rng.normal();
    y[i] = 3.0 * x(i, 1) + 0.1 * rng.normal();
  }
  for (SelectionEngine engine :
       {SelectionEngine::NaiveQr, SelectionEngine::IncrementalGram}) {
    SelectionOptions opt;
    opt.engine = engine;
    const SelectionResult result = forward_select(x, y, opt);
    for (std::size_t c : result.selected) EXPECT_NE(c, 0u);
  }
}

TEST(GatherColumns, ExtractsRequestedColumns) {
  linalg::Matrix m{{1, 2, 3}, {4, 5, 6}};
  const linalg::Matrix g = gather_columns(m, {2, 0});
  EXPECT_EQ(g.cols(), 2u);
  EXPECT_EQ(g(0, 0), 3.0);
  EXPECT_EQ(g(1, 1), 4.0);
  EXPECT_THROW(gather_columns(m, {5}), gppm::Error);
}

}  // namespace
}  // namespace gppm::stats
