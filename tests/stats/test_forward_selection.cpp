#include "stats/forward_selection.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gppm::stats {
namespace {

/// 60 samples, 8 candidates of which columns 2 and 5 generate y.
struct Problem {
  linalg::Matrix x;
  linalg::Vector y;
};

Problem make_problem(double noise_sigma) {
  gppm::Rng rng(17);
  const std::size_t n = 60, p = 8;
  Problem prob{linalg::Matrix(n, p), linalg::Vector(n)};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < p; ++j) prob.x(i, j) = rng.normal();
    prob.y[i] = 4.0 * prob.x(i, 2) - 3.0 * prob.x(i, 5) +
                rng.normal(0.0, noise_sigma);
  }
  return prob;
}

TEST(ForwardSelection, FindsTruePredictorsFirst) {
  const Problem prob = make_problem(0.05);
  SelectionOptions opt;
  opt.max_variables = 2;
  const SelectionResult result = forward_select(prob.x, prob.y, opt);
  ASSERT_EQ(result.selected.size(), 2u);
  std::vector<std::size_t> sorted = result.selected;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::size_t>{2, 5}));
  EXPECT_GT(result.fit.adjusted_r_squared, 0.99);
}

TEST(ForwardSelection, RespectsVariableCap) {
  const Problem prob = make_problem(1.0);
  SelectionOptions opt;
  opt.max_variables = 3;
  const SelectionResult result = forward_select(prob.x, prob.y, opt);
  EXPECT_LE(result.selected.size(), 3u);
}

TEST(ForwardSelection, R2TraceIsNonDecreasing) {
  const Problem prob = make_problem(0.5);
  SelectionOptions opt;
  opt.max_variables = 6;
  const SelectionResult result = forward_select(prob.x, prob.y, opt);
  for (std::size_t i = 1; i < result.r2_trace.size(); ++i) {
    EXPECT_GE(result.r2_trace[i], result.r2_trace[i - 1] - 1e-12);
  }
  EXPECT_EQ(result.r2_trace.size(), result.selected.size());
}

TEST(ForwardSelection, StopsWhenNothingImproves) {
  // y depends on one column only; selection should stop well before the cap
  // because further variables cannot improve adjusted R^2.
  gppm::Rng rng(7);
  const std::size_t n = 80;
  linalg::Matrix x(n, 6);
  linalg::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 6; ++j) x(i, j) = rng.normal();
    y[i] = 2.0 * x(i, 0);  // exact, single-variable
  }
  SelectionOptions opt;
  opt.max_variables = 6;
  const SelectionResult result = forward_select(x, y, opt);
  EXPECT_EQ(result.selected.size(), 1u);
  EXPECT_EQ(result.selected[0], 0u);
}

TEST(ForwardSelection, SkipsConstantColumns) {
  gppm::Rng rng(9);
  const std::size_t n = 30;
  linalg::Matrix x(n, 3);
  linalg::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = 5.0;  // constant (like prof_trigger counters)
    x(i, 1) = rng.normal();
    x(i, 2) = rng.normal();
    y[i] = x(i, 1) + 0.1 * rng.normal();
  }
  const SelectionResult result = forward_select(x, y);
  for (std::size_t c : result.selected) EXPECT_NE(c, 0u);
}

TEST(ForwardSelection, SkipsCollinearCandidates) {
  gppm::Rng rng(21);
  const std::size_t n = 40;
  linalg::Matrix x(n, 3);
  linalg::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = 2.0 * x(i, 0);  // exact copy (scaled)
    x(i, 2) = rng.normal();
    y[i] = x(i, 0) + x(i, 2);
  }
  SelectionOptions opt;
  opt.max_variables = 3;
  const SelectionResult result = forward_select(x, y, opt);
  // Both of {0,1} cannot be selected together.
  const bool has0 = std::count(result.selected.begin(), result.selected.end(), 0u);
  const bool has1 = std::count(result.selected.begin(), result.selected.end(), 1u);
  EXPECT_FALSE(has0 && has1);
}

TEST(ForwardSelection, ValidatesInputs) {
  linalg::Matrix x(10, 2);
  EXPECT_THROW(forward_select(x, linalg::Vector(5)), gppm::Error);
  SelectionOptions opt;
  opt.max_variables = 0;
  EXPECT_THROW(forward_select(x, linalg::Vector(10), opt), gppm::Error);
}

TEST(GatherColumns, ExtractsRequestedColumns) {
  linalg::Matrix m{{1, 2, 3}, {4, 5, 6}};
  const linalg::Matrix g = gather_columns(m, {2, 0});
  EXPECT_EQ(g.cols(), 2u);
  EXPECT_EQ(g(0, 0), 3.0);
  EXPECT_EQ(g(1, 1), 4.0);
  EXPECT_THROW(gather_columns(m, {5}), gppm::Error);
}

}  // namespace
}  // namespace gppm::stats
