#include "stats/streaming_ols.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "stats/ols.hpp"

namespace gppm::stats {
namespace {

// Rows of y = 3 + 2*x - 0.5*x^2 with an explicit intercept column, the
// shape StreamingOls consumes (the caller owns the intercept).
linalg::Vector row_of(double x) { return linalg::Vector{1.0, x, x * x}; }
double target_of(double x) { return 3.0 + 2.0 * x - 0.5 * x * x; }

TEST(StreamingOls, RecoversExactLinearModelFromStream) {
  StreamingOls ols(3);
  for (int i = 0; i < 12; ++i) {
    const double x = static_cast<double>(i);
    ols.observe(row_of(x), target_of(x));
  }
  // Tolerance bounded below by the ridge prior's shrinkage, not fp error.
  const linalg::Vector beta = ols.coefficients();
  EXPECT_NEAR(beta[0], 3.0, 1e-4);
  EXPECT_NEAR(beta[1], 2.0, 1e-4);
  EXPECT_NEAR(beta[2], -0.5, 1e-4);
}

TEST(StreamingOls, SeedPlusStreamMatchesBatchFit) {
  // Noisy data, half seeded as the permanent prior and half streamed:
  // with no eviction the solution must match one batch OLS over all rows.
  Rng rng(7);
  const std::size_t n = 40;
  linalg::Matrix all_x(n, 3);
  linalg::Vector all_y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(-3.0, 3.0);
    const linalg::Vector row = row_of(x);
    for (std::size_t j = 0; j < 3; ++j) all_x(i, j) = row[j];
    all_y[i] = target_of(x) + rng.uniform(-0.1, 0.1);
  }

  StreamingOls ols(3);
  linalg::Matrix seed_x(n / 2, 3);
  linalg::Vector seed_y(n / 2);
  for (std::size_t i = 0; i < n / 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) seed_x(i, j) = all_x(i, j);
    seed_y[i] = all_y[i];
  }
  ols.seed(seed_x, seed_y);
  for (std::size_t i = n / 2; i < n; ++i) {
    ols.observe({all_x(i, 0), all_x(i, 1), all_x(i, 2)}, all_y[i]);
  }

  // Batch reference without the explicit intercept column (ols_fit adds
  // its own): strip column 0.
  linalg::Matrix no_intercept(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    no_intercept(i, 0) = all_x(i, 1);
    no_intercept(i, 1) = all_x(i, 2);
  }
  const OlsFit batch = ols_fit(no_intercept, all_y);
  const linalg::Vector beta = ols.coefficients();
  EXPECT_NEAR(beta[0], batch.intercept, 1e-6);
  EXPECT_NEAR(beta[1], batch.coefficients[0], 1e-6);
  EXPECT_NEAR(beta[2], batch.coefficients[1], 1e-6);
}

TEST(StreamingOls, WindowActuallyForgets) {
  // Fill the window from one regime, then stream a full window of a
  // different regime: the old rows must be fully evicted and the solution
  // must track the new slope, not a blend.
  StreamingOlsOptions opt;
  opt.window = 16;
  StreamingOls ols(2, opt);
  for (int i = 0; i < 16; ++i) {
    const double x = static_cast<double>(i + 1);
    ols.observe({1.0, x}, 10.0 * x);
  }
  for (int i = 0; i < 16; ++i) {
    const double x = static_cast<double>(i + 1);
    ols.observe({1.0, x}, -4.0 * x);
  }
  EXPECT_EQ(ols.window_size(), 16u);
  EXPECT_EQ(ols.observed(), 32u);
  EXPECT_EQ(ols.evicted(), 16u);
  const linalg::Vector beta = ols.coefficients();
  EXPECT_NEAR(beta[0], 0.0, 1e-5);
  EXPECT_NEAR(beta[1], -4.0, 1e-5);
}

TEST(StreamingOls, CollinearStreamStaysFiniteThroughRidge) {
  StreamingOls ols(2);
  for (int i = 0; i < 8; ++i) ols.observe({1.0, 2.0}, 5.0);
  const linalg::Vector beta = ols.coefficients();
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_TRUE(std::isfinite(beta[j])) << "beta[" << j << "]";
  }
  // The fitted plane must still reproduce the one observed point.
  EXPECT_NEAR(beta[0] + 2.0 * beta[1], 5.0, 1e-4);
}

TEST(StreamingOls, IdenticalStreamsYieldIdenticalCoefficients) {
  StreamingOlsOptions opt;
  opt.window = 8;
  StreamingOls a(3, opt);
  StreamingOls b(3, opt);
  Rng rng(11);
  for (int i = 0; i < 40; ++i) {
    const double x = rng.uniform(-2.0, 2.0);
    const double y = target_of(x) + rng.uniform(-0.05, 0.05);
    a.observe(row_of(x), y);
    b.observe(row_of(x), y);
  }
  const linalg::Vector ba = a.coefficients();
  const linalg::Vector bb = b.coefficients();
  for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(ba[j], bb[j]);
  EXPECT_EQ(a.evicted(), b.evicted());
  EXPECT_EQ(a.rebuilds(), b.rebuilds());
}

TEST(StreamingOls, SeedRowsArePermanentAcrossEviction) {
  // A strong seed prior must still anchor the fit after the entire
  // streamed window has turned over.
  StreamingOlsOptions opt;
  opt.window = 4;
  StreamingOls ols(2, opt);
  linalg::Matrix seed_x(32, 2);
  linalg::Vector seed_y(32);
  for (std::size_t i = 0; i < 32; ++i) {
    const double x = static_cast<double>(i % 8);
    seed_x(i, 0) = 1.0;
    seed_x(i, 1) = x;
    seed_y[i] = 7.0 * x;
  }
  ols.seed(seed_x, seed_y);
  for (int i = 0; i < 12; ++i) {
    const double x = static_cast<double>(i % 8);
    ols.observe({1.0, x}, 7.0 * x);
  }
  EXPECT_EQ(ols.window_size(), 4u);
  const linalg::Vector beta = ols.coefficients();
  EXPECT_NEAR(beta[1], 7.0, 1e-5);
}

}  // namespace
}  // namespace gppm::stats
