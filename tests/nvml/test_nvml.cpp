#include "nvml/nvml.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "gpusim/power.hpp"
#include "workload/suite.hpp"

namespace gppm::nvml {
namespace {

struct Fixture {
  sim::Gpu gpu{sim::GpuModel::GTX680, 42};
  Session session;
  DeviceHandle handle;
  sim::RunExecution exec;

  Fixture() {
    handle = session.attach_device(gpu);
    exec = gpu.run(workload::find_benchmark("hotspot").profile(0));
    session.begin_run(handle, exec);
  }
};

TEST(Nvml, DeviceEnumeration) {
  sim::Gpu a(sim::GpuModel::GTX285), b(sim::GpuModel::GTX680);
  Session session;
  const DeviceHandle ha = session.attach_device(a);
  const DeviceHandle hb = session.attach_device(b);
  EXPECT_EQ(session.device_count(), 2u);
  EXPECT_EQ(session.device_name(ha), "NVIDIA GeForce GTX 285");
  EXPECT_EQ(session.device_name(hb), "NVIDIA GeForce GTX 680");
}

TEST(Nvml, InvalidHandleRejected) {
  Session session;
  EXPECT_THROW(session.device_name(DeviceHandle{5}), Error);
}

TEST(Nvml, ClockInfoTracksOperatingPoint) {
  Fixture f;
  EXPECT_EQ(f.session.clock_info(f.handle).graphics_mhz, 1411u);
  EXPECT_EQ(f.session.clock_info(f.handle).memory_mhz, 3004u);
  f.gpu.set_frequency_pair({sim::ClockLevel::Medium, sim::ClockLevel::Low});
  EXPECT_EQ(f.session.clock_info(f.handle).graphics_mhz, 1080u);
  EXPECT_EQ(f.session.clock_info(f.handle).memory_mhz, 324u);
}

TEST(Nvml, PowerDuringKernelAboveIdle) {
  Fixture f;
  // Host setup phase first: idle-ish power.
  const unsigned setup_mw =
      f.session.power_usage_mw(f.handle, Duration::seconds(0.0));
  // Middle of the run: likely inside the kernel.
  const Duration mid = Duration::seconds(f.exec.total_time.as_seconds() / 2);
  const unsigned mid_mw = f.session.power_usage_mw(f.handle, mid);
  EXPECT_GT(mid_mw, setup_mw);
}

TEST(Nvml, PowerAfterRunIsIdle) {
  Fixture f;
  const Duration after =
      Duration::seconds(f.exec.total_time.as_seconds() + 1.0);
  const double idle_w =
      sim::gpu_idle_power(f.gpu.spec(), f.gpu.frequency_pair()).as_watts();
  EXPECT_NEAR(f.session.power_usage_mw(f.handle, after) / 1000.0, idle_w, 0.01);
}

TEST(Nvml, UtilizationZeroDuringHostPhases) {
  Fixture f;
  const UtilizationRates rates =
      f.session.utilization(f.handle, Duration::seconds(0.0));
  EXPECT_EQ(rates.gpu, 0u);
  EXPECT_EQ(rates.memory, 0u);
}

TEST(Nvml, UtilizationReportedDuringKernel) {
  Fixture f;
  const Duration mid = Duration::seconds(f.exec.total_time.as_seconds() / 2);
  const UtilizationRates rates = f.session.utilization(f.handle, mid);
  EXPECT_GT(rates.gpu + rates.memory, 0u);
  EXPECT_LE(rates.gpu, 100u);
  EXPECT_LE(rates.memory, 100u);
}

TEST(Nvml, EnergyCounterMatchesTimelineIntegral) {
  Fixture f;
  double joules = 0.0;
  for (const sim::PowerSegment& seg : f.exec.timeline) {
    joules += seg.gpu_power.as_watts() * seg.duration.as_seconds();
  }
  const std::uint64_t mj = f.session.total_energy_mj(f.handle, f.exec.total_time);
  EXPECT_NEAR(static_cast<double>(mj) / 1000.0, joules, joules * 1e-6 + 0.01);
}

TEST(Nvml, EnergyCounterMonotonic) {
  Fixture f;
  std::uint64_t prev = 0;
  for (double t = 0.1; t < f.exec.total_time.as_seconds() + 1.0; t += 0.2) {
    const std::uint64_t mj =
        f.session.total_energy_mj(f.handle, Duration::seconds(t));
    EXPECT_GE(mj, prev);
    prev = mj;
  }
}

TEST(Nvml, SamplerAveragesNearTimelineAverage) {
  Fixture f;
  const auto samples =
      sample_power(f.session, f.handle, f.exec.total_time,
                   Duration::milliseconds(10.0));
  EXPECT_GT(samples.size(), 10u);
  const double avg = average_power(samples).as_watts();
  const double true_avg =
      static_cast<double>(f.session.total_energy_mj(f.handle, f.exec.total_time)) /
      1000.0 / f.exec.total_time.as_seconds();
  EXPECT_NEAR(avg, true_avg, true_avg * 0.15);
}

TEST(Nvml, SamplerValidatesArguments) {
  Fixture f;
  EXPECT_THROW(sample_power(f.session, f.handle, Duration::seconds(1.0),
                            Duration::seconds(0.0)),
               Error);
  EXPECT_THROW(sample_power(f.session, f.handle, Duration::seconds(0.01),
                            Duration::seconds(1.0)),
               Error);
  EXPECT_THROW(average_power({}), Error);
}

TEST(Nvml, NegativeTimestampRejected) {
  Fixture f;
  EXPECT_THROW(f.session.power_usage_mw(f.handle, Duration::seconds(-1.0)),
               Error);
}

}  // namespace
}  // namespace gppm::nvml
