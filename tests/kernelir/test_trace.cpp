#include "kernelir/trace.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "gpusim/timing.hpp"
#include "kernelir/programs.hpp"

namespace gppm::ir {
namespace {

TEST(Trace, CountsArithmeticPerThread) {
  Program p;
  p.name = "counts";
  p.threads_per_block = 64;
  p.iterations = 3;
  p.body = {fma(), fma(), fadd(), int_op(), special()};
  const TraceStats s = trace_block(p);
  EXPECT_DOUBLE_EQ(s.flops, 3 * (2 + 2 + 1));
  EXPECT_DOUBLE_EQ(s.int_ops, 3.0);
  EXPECT_DOUBLE_EQ(s.special_ops, 3.0);
}

TEST(Trace, PrologueRunsOnce) {
  Program p;
  p.name = "prologue";
  p.threads_per_block = 32;
  p.iterations = 5;
  p.prologue = {fadd()};
  p.body = {int_op()};
  const TraceStats s = trace_block(p);
  EXPECT_DOUBLE_EQ(s.flops, 1.0);
  EXPECT_DOUBLE_EQ(s.int_ops, 5.0);
}

TEST(Trace, CoalescedStreamMeasuresFullEfficiency) {
  const TraceStats s = trace_block(vector_add(1 << 16));
  EXPECT_GT(s.coalescing, 0.95);
  EXPECT_DOUBLE_EQ(s.global_load_bytes, 8.0);
  EXPECT_DOUBLE_EQ(s.global_store_bytes, 4.0);
}

TEST(Trace, StreamingHasNoReuse) {
  const TraceStats s = trace_block(vector_add(1 << 16));
  EXPECT_LT(s.locality, 0.05);
}

TEST(Trace, TransposedStoreCollapsesCoalescing) {
  const TraceStats s = trace_block(transpose_naive(1024));
  // Load side coalesced, store side one 32B segment per lane:
  // across both accesses efficiency lands near (1 + 4/32) / 2.
  EXPECT_LT(s.coalescing, 0.62);
  EXPECT_GT(s.coalescing, 0.40);
}

TEST(Trace, StencilNeighboursHitCacheLines) {
  const TraceStats s = trace_block(stencil5(4096, 4));
  // Five taps per cell: four of the five land on lines the sweep already
  // touched.
  EXPECT_GT(s.locality, 0.5);
}

TEST(Trace, TiledMatmulReusesTiles) {
  const TraceStats s = trace_block(matrix_mul_tiled(256));
  EXPECT_GT(s.shared_ops, 30.0);        // 2 stores + 32 loads per k-tile
  EXPECT_GT(s.coalescing, 0.9);         // tile loads are coalesced
  EXPECT_NEAR(s.flops, 256.0 / 16 * 16 * 2, 1.0);  // 2 FLOPs per k element
}

TEST(Trace, SharedBroadcastIsConflictFree) {
  const TraceStats s = trace_block(matrix_mul_tiled(256));
  EXPECT_LT(s.bank_conflict, 1.3);
}

TEST(Trace, FewBinHistogramConflicts) {
  const TraceStats s8 = trace_block(histogram_shared(8, 16));
  const TraceStats s256 = trace_block(histogram_shared(256, 16));
  EXPECT_GT(s8.bank_conflict, 2.0);   // 32 lanes onto 8 bins
  EXPECT_GT(s8.bank_conflict, s256.bank_conflict);
}

TEST(Trace, PointerChaseScattersAndDiverges) {
  const TraceStats s = trace_block(pointer_chase(1 << 20, 32, 0.5));
  EXPECT_LT(s.coalescing, 0.3);
  EXPECT_GT(s.divergence, 1.3);
  EXPECT_LT(s.locality, 0.2);
}

TEST(Trace, SyncsCounted) {
  const TraceStats s = trace_block(matrix_mul_tiled(128));
  EXPECT_DOUBLE_EQ(s.syncs, 2.0 * (128 / 16));
}

TEST(Trace, RejectsInvalidPrograms) {
  Program p;
  p.threads_per_block = 0;
  EXPECT_THROW(trace_block(p), Error);
  p.threads_per_block = 32;
  EXPECT_THROW(trace_block(p), Error);  // empty body and prologue
}

TEST(DeriveProfile, ProducesValidSimulatorInput) {
  for (const Program& p :
       {vector_add(1 << 16), matrix_mul_tiled(256), transpose_naive(512),
        stencil5(4096, 4), histogram_shared(64, 8),
        pointer_chase(1 << 18, 16, 0.4)}) {
    const sim::KernelProfile k = derive_profile(p);
    EXPECT_EQ(k.name, p.name);
    EXPECT_EQ(k.blocks, p.blocks);
    EXPECT_NO_THROW(sim::compute_kernel_timing(
        sim::device_spec(sim::GpuModel::GTX480), k, sim::kDefaultPair))
        << p.name;
  }
}

TEST(DeriveProfile, OptionsPropagate) {
  ProfileOptions opt;
  opt.occupancy = 0.5;
  opt.overlap = 0.6;
  const sim::KernelProfile k = derive_profile(vector_add(1 << 16), opt);
  EXPECT_DOUBLE_EQ(k.occupancy, 0.5);
  EXPECT_DOUBLE_EQ(k.overlap, 0.6);
}

TEST(DeriveProfile, TracedStreamingKernelIsMemoryBound) {
  const sim::KernelProfile k = derive_profile(vector_add(1 << 20));
  const auto t = sim::compute_kernel_timing(
      sim::device_spec(sim::GpuModel::GTX480), k, sim::kDefaultPair);
  EXPECT_GT(t.memory_time.as_seconds(), t.compute_time.as_seconds());
}

TEST(DeriveProfile, TracedTiledMatmulIsComputeBound) {
  const sim::KernelProfile k = derive_profile(matrix_mul_tiled(512));
  const auto t = sim::compute_kernel_timing(
      sim::device_spec(sim::GpuModel::GTX480), k, sim::kDefaultPair);
  EXPECT_GT(t.compute_time.as_seconds(), t.memory_time.as_seconds());
}

}  // namespace
}  // namespace gppm::ir
