#include "kernelir/ir.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace gppm::ir {
namespace {

TEST(AddressExpr, LinearEvaluation) {
  AddressExpr a;
  a.base = 1000;
  a.stride_thread = 4;
  a.stride_iter = 256;
  EXPECT_EQ(a.evaluate(0, 0), 1000u);
  EXPECT_EQ(a.evaluate(3, 0), 1012u);
  EXPECT_EQ(a.evaluate(3, 2), 1524u);
}

TEST(AddressExpr, ShuffleTermWraps) {
  AddressExpr a;
  a.shuffle_mul = 1;
  a.shuffle_mod = 16;
  a.shuffle_stride = 8;
  EXPECT_EQ(a.evaluate(5, 0), 40u);
  EXPECT_EQ(a.evaluate(21, 0), 40u);  // 21 % 16 == 5
}

TEST(AddressExpr, NegativeShuffleStrideCancelsLinearPart) {
  // The split used by the tiled-mmul broadcast pattern: tid*4 - (tid%16)*4
  // is constant within a 16-thread row group.
  AddressExpr a;
  a.base = 4096;
  a.stride_thread = 4;
  a.shuffle_mul = 1;
  a.shuffle_mod = 16;
  a.shuffle_stride = -4;
  EXPECT_EQ(a.evaluate(0, 0), a.evaluate(15, 0));
  EXPECT_NE(a.evaluate(0, 0), a.evaluate(16, 0));
}

TEST(AddressExpr, RejectsNegativeResult) {
  AddressExpr a;
  a.base = 0;
  a.shuffle_mul = 1;
  a.shuffle_mod = 16;
  a.shuffle_stride = -4;
  EXPECT_THROW(a.evaluate(5, 0), Error);
}

TEST(AddressExpr, RejectsNonPositiveMod) {
  AddressExpr a;
  a.shuffle_mod = 0;
  EXPECT_THROW(a.evaluate(0, 0), Error);
}

TEST(IrBuilders, OpcodesAndValidation) {
  EXPECT_EQ(fma().op, Op::Fma);
  EXPECT_EQ(fadd().op, Op::FAdd);
  EXPECT_EQ(int_op().op, Op::IntOp);
  EXPECT_EQ(special().op, Op::Special);
  EXPECT_EQ(sync().op, Op::Sync);
  EXPECT_EQ(branch(0.3).op, Op::Branch);
  EXPECT_DOUBLE_EQ(branch(0.3).divergence_prob, 0.3);
  EXPECT_THROW(branch(1.5), Error);

  AddressExpr a;
  a.width = 4;
  EXPECT_EQ(load_global(a).op, Op::LoadGlobal);
  EXPECT_EQ(store_global(a).op, Op::StoreGlobal);
  EXPECT_EQ(load_shared(a).op, Op::LoadShared);
  EXPECT_EQ(store_shared(a).op, Op::StoreShared);
  a.width = 0;
  EXPECT_THROW(load_global(a), Error);
}

}  // namespace
}  // namespace gppm::ir
