#include "serve/queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace gppm::serve {
namespace {

TEST(ServeQueue, PushPopBasics) {
  BoundedQueue<int> q(8);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.size(), 3u);
  const std::vector<int> batch = q.pop_batch(2);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], 1);  // FIFO
  EXPECT_EQ(batch[1], 2);
  EXPECT_EQ(q.size(), 1u);
}

TEST(ServeQueue, PopBatchDrainsUpToMax) {
  BoundedQueue<int> q(16);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.pop_batch(64).size(), 10u);
}

TEST(ServeQueue, TryPushFailsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  q.pop_batch(1);
  EXPECT_TRUE(q.try_push(3));
}

TEST(ServeQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedQueue<int>(0), Error);
}

TEST(ServeQueue, HighWaterMarkTracksPeakDepth) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) q.push(i);
  q.pop_batch(5);
  q.push(1);
  EXPECT_EQ(q.high_water_mark(), 5u);
}

TEST(ServeQueue, CloseRejectsNewButDrainsQueued) {
  BoundedQueue<int> q(8);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.pop_batch(8).size(), 2u);  // drain still works
  EXPECT_TRUE(q.pop_batch(8).empty());   // then empty-on-closed
}

TEST(ServeQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(4);
  std::thread consumer([&] { EXPECT_TRUE(q.pop_batch(4).empty()); });
  q.close();
  consumer.join();
}

TEST(ServeQueue, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread producer([&] { EXPECT_FALSE(q.push(2)); });  // blocks on full
  q.close();
  producer.join();
}

TEST(ServeQueue, FullQueueAppliesBackpressure) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));
    pushed.store(true);
  });
  // The producer must be blocked until a pop frees a slot.
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop_batch(1).size(), 1u);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop_batch(1).front(), 2);
}

TEST(ServeQueue, ConcurrentProducersConsumersConserveItems) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  BoundedQueue<int> q(64);
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (true) {
        const std::vector<int> batch = q.pop_batch(16);
        if (batch.empty()) return;  // closed and drained
        for (int v : batch) sum.fetch_add(v);
        popped.fetch_add(static_cast<int>(batch.size()));
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (std::size_t t = kProducers; t < threads.size(); ++t) threads[t].join();

  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ServeQueue, ShutdownUnderProducerPressureLosesNothing) {
  // Producers hammer a full bounded queue (most of them block on capacity)
  // while close-with-drain races them: every push must resolve to exactly
  // one of accepted/rejected, and every accepted item must come back out.
  // This is the shutdown data-race stress the TSan serve_smoke build runs.
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 200;
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.push(i));  // start saturated

  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (q.push(i)) {
          accepted.fetch_add(1);
        } else {
          rejected.fetch_add(1);  // woken by close
        }
      }
    });
  }
  std::thread consumer([&] {
    // Drain a little so producers make progress, then close mid-flight and
    // keep draining until the queue reports closed-and-empty.
    while (popped.load() < 3 * kProducers) {
      popped.fetch_add(static_cast<int>(q.pop_batch(8).size()));
    }
    q.close();
    while (true) {
      const std::vector<int> batch = q.pop_batch(16);
      if (batch.empty()) return;
      popped.fetch_add(static_cast<int>(batch.size()));
    }
  });
  for (std::thread& t : producers) t.join();
  consumer.join();

  EXPECT_EQ(accepted.load() + rejected.load(), kProducers * kPerProducer);
  EXPECT_GT(rejected.load(), 0);  // close really cut producers off
  EXPECT_EQ(popped.load(), 4 + accepted.load());  // nothing lost or invented
  EXPECT_FALSE(q.push(1));  // still closed
  EXPECT_TRUE(q.pop_batch(1).empty());
}

}  // namespace
}  // namespace gppm::serve
