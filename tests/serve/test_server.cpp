#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/optimizer.hpp"
#include "serve/trace.hpp"

namespace gppm::serve {
namespace {

const core::Dataset& dataset() {
  static const core::Dataset ds = core::build_dataset(sim::GpuModel::GTX460);
  return ds;
}

const core::UnifiedModel& power_model() {
  static const core::UnifiedModel m =
      core::UnifiedModel::fit(dataset(), core::TargetKind::Power);
  return m;
}

const core::UnifiedModel& perf_model() {
  static const core::UnifiedModel m =
      core::UnifiedModel::fit(dataset(), core::TargetKind::ExecTime);
  return m;
}

Request predict_request(const profiler::ProfileResult& counters,
                        sim::FrequencyPair pair = sim::kDefaultPair) {
  Request r;
  r.kind = RequestKind::Predict;
  r.gpu = sim::GpuModel::GTX460;
  r.counters = counters;
  r.pair = pair;
  return r;
}

TEST(ServeServer, LoadValidatesModelPairing) {
  PredictionServer server;
  EXPECT_THROW(server.load_models(perf_model(), perf_model()), Error);
  EXPECT_THROW(server.load_models(power_model(), power_model()), Error);
  EXPECT_FALSE(server.has_models(sim::GpuModel::GTX460));
  server.load_models(power_model(), perf_model());
  EXPECT_TRUE(server.has_models(sim::GpuModel::GTX460));
  EXPECT_FALSE(server.has_models(sim::GpuModel::GTX680));
}

TEST(ServeServer, PredictMatchesDirectModelCall) {
  PredictionServer server;
  server.load_models(power_model(), perf_model());
  const profiler::ProfileResult& counters = dataset().samples.front().counters;
  const sim::FrequencyPair pair{sim::ClockLevel::Medium, sim::ClockLevel::Low};
  const Response r = server.submit(predict_request(counters, pair)).get();
  EXPECT_EQ(r.kind, RequestKind::Predict);
  EXPECT_EQ(r.pair, pair);
  EXPECT_DOUBLE_EQ(r.power_watts, power_model().predict(counters, pair));
  EXPECT_DOUBLE_EQ(r.time_seconds, perf_model().predict(counters, pair));
  EXPECT_DOUBLE_EQ(r.energy_joules, r.power_watts * r.time_seconds);
  EXPECT_GT(r.latency.as_seconds(), 0.0);
}

TEST(ServeServer, OptimizeMatchesOptimizer) {
  PredictionServer server;
  server.load_models(power_model(), perf_model());
  for (std::size_t i = 0; i < 5; ++i) {
    const core::Sample& sample = dataset().samples[i * 7];
    Request req;
    req.kind = RequestKind::Optimize;
    req.gpu = sim::GpuModel::GTX460;
    req.counters = sample.counters;
    const Response r = server.submit(req).get();
    EXPECT_EQ(r.pair, core::predict_min_energy_pair(power_model(), perf_model(),
                                                    sample.counters));
    // The response carries the optimizer-clamped values.
    bool found = false;
    for (const core::PairPrediction& p : core::predict_all_pairs(
             power_model(), perf_model(), sample.counters)) {
      if (!(p.pair == r.pair)) continue;
      found = true;
      EXPECT_DOUBLE_EQ(r.power_watts, p.predicted_power_watts);
      EXPECT_DOUBLE_EQ(r.time_seconds, p.predicted_time_seconds);
      EXPECT_DOUBLE_EQ(r.energy_joules, p.predicted_energy_joules);
    }
    EXPECT_TRUE(found);
  }
}

TEST(ServeServer, GovernMatchesFreshGovernor) {
  ServerOptions opt;
  PredictionServer server(opt);
  server.load_models(power_model(), perf_model());
  core::GovernorOptions gopt = opt.governor;
  gopt.policy = core::GovernorPolicy::MinimumEnergy;
  core::DvfsGovernor reference(power_model(), perf_model(), gopt);

  for (std::size_t i = 0; i < 8; ++i) {
    const core::Sample& sample = dataset().samples[i * 3];
    Request req;
    req.kind = RequestKind::Govern;
    req.gpu = sim::GpuModel::GTX460;
    req.counters = sample.counters;
    req.policy = core::GovernorPolicy::MinimumEnergy;
    const Response r = server.submit(req).get();
    // The server's governor sees the same phase sequence, so its stateful
    // hysteresis decisions must match the reference governor's.
    EXPECT_EQ(r.pair, reference.decide(sample.counters));
  }
}

TEST(ServeServer, RepeatedRequestHitsCache) {
  PredictionServer server;
  server.load_models(power_model(), perf_model());
  const Request req = predict_request(dataset().samples.front().counters);
  const Response first = server.submit(req).get();
  EXPECT_FALSE(first.cache_hit);
  const Response second = server.submit(req).get();
  EXPECT_TRUE(second.cache_hit);
  EXPECT_DOUBLE_EQ(second.power_watts, first.power_watts);
  const ServerMetrics m = server.metrics();
  EXPECT_GE(m.cache.hits, 2u);  // power + time predictions on the repeat
  EXPECT_GE(m.cache.entries, 2u);
}

TEST(ServeServer, DisabledCacheNeverHits) {
  ServerOptions opt;
  opt.cache_capacity = 0;
  PredictionServer server(opt);
  server.load_models(power_model(), perf_model());
  const Request req = predict_request(dataset().samples.front().counters);
  EXPECT_FALSE(server.submit(req).get().cache_hit);
  EXPECT_FALSE(server.submit(req).get().cache_hit);
  EXPECT_EQ(server.metrics().cache.hits, 0u);
}

TEST(ServeServer, HotSwapChangesServedModel) {
  PredictionServer server;
  server.load_models(power_model(), perf_model());
  core::ModelOptions ext;
  ext.scaling = core::FeatureScaling::VoltageSquaredFrequency;
  ext.include_baseline_terms = true;
  const core::UnifiedModel extended =
      core::UnifiedModel::fit(dataset(), core::TargetKind::Power, ext);
  server.load_models(extended, perf_model());
  const profiler::ProfileResult& counters = dataset().samples.back().counters;
  const Response r = server.submit(predict_request(counters)).get();
  EXPECT_DOUBLE_EQ(r.power_watts, extended.predict(counters, sim::kDefaultPair));
}

TEST(ServeServer, UnloadedBoardGetsTypedErrorResponse) {
  PredictionServer server;
  server.load_models(power_model(), perf_model());
  Request req = predict_request(dataset().samples.front().counters);
  req.gpu = sim::GpuModel::GTX680;  // never loaded
  // Errors are responses, not exceptions: the future must resolve.
  const Response r = server.submit(req).get();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status, ResponseStatus::NoModels);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(r.kind, RequestKind::Predict);
  EXPECT_GT(r.latency.as_seconds(), 0.0);
  EXPECT_GE(server.metrics().error_responses, 1u);
}

TEST(ServeServer, ResponseStatusNamesAreStable) {
  EXPECT_EQ(to_string(ResponseStatus::Ok), "ok");
  EXPECT_EQ(to_string(ResponseStatus::NoModels), "no_models");
  EXPECT_EQ(to_string(ResponseStatus::DeadlineExceeded), "deadline_exceeded");
  EXPECT_EQ(to_string(ResponseStatus::Overloaded), "overloaded");
  EXPECT_EQ(to_string(ResponseStatus::InternalError), "internal_error");
}

TEST(ServeServer, ExpiredDeadlinesGetTypedResponses) {
  ServerOptions opt;
  opt.worker_threads = 1;
  PredictionServer server(opt);
  server.load_models(power_model(), perf_model());
  Request req = predict_request(dataset().samples.front().counters);
  req.deadline = Duration::seconds(1e-9);  // expires before any worker runs
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 64; ++i) futures.push_back(server.submit(req));
  std::uint64_t expired = 0;
  for (auto& f : futures) {
    const Response r = f.get();  // always resolves, never throws
    if (r.status == ResponseStatus::DeadlineExceeded) {
      ++expired;
      EXPECT_FALSE(r.error.empty());
    } else {
      EXPECT_EQ(r.status, ResponseStatus::Ok);
    }
  }
  EXPECT_GT(expired, 0u);
  EXPECT_EQ(server.metrics().deadline_expired, expired);
}

TEST(ServeServer, GenerousDeadlinesAreServedNormally) {
  PredictionServer server;
  server.load_models(power_model(), perf_model());
  Request req = predict_request(dataset().samples.front().counters);
  req.deadline = Duration::seconds(60.0);
  const Response r = server.submit(req).get();
  EXPECT_EQ(r.status, ResponseStatus::Ok);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(server.metrics().deadline_expired, 0u);
}

TEST(ServeServer, LoadSheddingAnswersOverloadedInsteadOfBlocking) {
  ServerOptions opt;
  opt.worker_threads = 1;
  opt.queue_capacity = 2;  // tiny queue, saturates immediately
  opt.load_shedding = true;
  PredictionServer server(opt);
  server.load_models(power_model(), perf_model());

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 500;
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> shed{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kPerClient; ++i) {
        Request req;
        req.kind = RequestKind::Optimize;  // heavier than a single predict
        req.gpu = sim::GpuModel::GTX460;
        req.counters =
            dataset().samples[(c * kPerClient + i) % dataset().samples.size()]
                .counters;
        const Response r = server.submit(req).get();
        if (r.status == ResponseStatus::Overloaded) {
          shed.fetch_add(1);
          EXPECT_FALSE(r.error.empty());
        } else {
          EXPECT_EQ(r.status, ResponseStatus::Ok);
          ok.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok.load() + shed.load(), kClients * kPerClient);
  EXPECT_GT(shed.load(), 0u);  // capacity 2 with one worker must shed
  const ServerMetrics m = server.metrics();
  EXPECT_EQ(m.shed_requests, shed.load());
  EXPECT_EQ(m.total_requests, ok.load());  // shed requests never served
}

TEST(ServeServer, SheddingServerStillThrowsAfterShutdown) {
  ServerOptions opt;
  opt.load_shedding = true;
  PredictionServer server(opt);
  server.load_models(power_model(), perf_model());
  server.shutdown();
  EXPECT_THROW(
      server.submit(predict_request(dataset().samples.front().counters)),
      Error);
}

TEST(ServeServer, ShutdownDrainsQueuedWorkAndRejectsNew) {
  ServerOptions opt;
  opt.worker_threads = 2;
  PredictionServer server(opt);
  server.load_models(power_model(), perf_model());
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(
        server.submit(predict_request(dataset().samples.front().counters)));
  }
  server.shutdown();
  EXPECT_FALSE(server.running());
  for (auto& f : futures) EXPECT_NO_THROW(f.get());  // all drained

  EXPECT_THROW(
      server.submit(predict_request(dataset().samples.front().counters)),
      Error);
  EXPECT_EQ(server.try_submit(
                predict_request(dataset().samples.front().counters)),
            std::nullopt);
  EXPECT_GE(server.metrics().rejected_requests, 2u);
  EXPECT_EQ(server.metrics().total_requests, 200u);
}

TEST(ServeServer, ShutdownIsIdempotent) {
  PredictionServer server;
  server.shutdown();
  server.shutdown();
  EXPECT_FALSE(server.running());
}

TEST(ServeServer, ConcurrentShutdownWithInFlightSubmits) {
  // Many threads hammer submit() while several others race shutdown().
  // Contract under test: every submit either yields a future that resolves
  // to a Response, or throws gppm::Error (shut down) — never a hang, a
  // broken future, or a crash; and every shutdown() returns with the
  // workers joined.
  for (int round = 0; round < 4; ++round) {
    ServerOptions opt;
    opt.worker_threads = 2;
    opt.queue_capacity = 16;
    PredictionServer server(opt);
    server.load_models(power_model(), perf_model());
    const profiler::ProfileResult& counters =
        dataset().samples.front().counters;

    std::atomic<int> answered{0};
    std::atomic<int> rejected{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&] {
        for (int i = 0; i < 200; ++i) {
          try {
            Response r = server.submit(predict_request(counters)).get();
            EXPECT_NE(r.status, ResponseStatus::InternalError) << r.error;
            answered.fetch_add(1);
          } catch (const Error&) {
            rejected.fetch_add(1);
          }
        }
      });
    }
    std::vector<std::thread> stoppers;
    for (int t = 0; t < 3; ++t) {
      stoppers.emplace_back([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1 + round));
        server.shutdown();
        EXPECT_FALSE(server.running());
      });
    }
    for (std::thread& t : submitters) t.join();
    for (std::thread& t : stoppers) t.join();
    server.shutdown();  // still safe after the race
    EXPECT_FALSE(server.running());
    EXPECT_EQ(answered.load() + rejected.load(), 4 * 200);
  }
}

TEST(ServeServer, ConcurrentClientsAllAnswered) {
  ServerOptions opt;
  opt.worker_threads = 4;
  opt.queue_capacity = 64;  // small queue: exercises back-pressure
  PredictionServer server(opt);
  server.load_models(power_model(), perf_model());

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 500;
  std::vector<std::thread> clients;
  std::array<std::size_t, kClients> answered{};
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const core::Sample& sample =
            dataset().samples[(c * kPerClient + i) % dataset().samples.size()];
        Request req;
        req.gpu = sim::GpuModel::GTX460;
        req.counters = sample.counters;
        switch (i % 3) {
          case 0:
            req.kind = RequestKind::Predict;
            req.pair = sample.runs[i % sample.runs.size()].pair;
            break;
          case 1: req.kind = RequestKind::Optimize; break;
          case 2:
            req.kind = RequestKind::Govern;
            req.policy = core::GovernorPolicy::MinimumEdp;
            break;
        }
        // Predict returns *raw* model output, which may be non-positive for
        // unfavorable counter/pair combos — count resolution, not value.
        const Response r = server.submit(req).get();
        if (r.latency.as_seconds() > 0.0) ++answered[c];
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (std::size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(answered[c], kPerClient);
  }
  const ServerMetrics m = server.metrics();
  EXPECT_EQ(m.total_requests, kClients * kPerClient);
  EXPECT_GE(m.batches, 1u);
  EXPECT_GT(m.cache.hit_rate(), 0.5);  // phases repeat across clients
}

TEST(ServeServer, SyntheticTraceReplayEndToEnd) {
  ServerOptions opt;
  opt.worker_threads = 2;
  PredictionServer server(opt);
  server.load_models(power_model(), perf_model());

  PhaseCorpus corpus;
  corpus.gpu = sim::GpuModel::GTX460;
  for (std::size_t i = 0; i < 8; ++i) {
    corpus.names.push_back(dataset().samples[i].benchmark);
    corpus.counters.push_back(dataset().samples[i].counters);
  }
  TraceOptions topt;
  topt.request_count = 400;
  const std::vector<Request> trace = synthetic_trace(corpus, topt);
  ASSERT_EQ(trace.size(), 400u);

  std::vector<std::future<Response>> futures;
  futures.reserve(trace.size());
  for (const Request& req : trace) futures.push_back(server.submit(req));
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
  const ServerMetrics m = server.metrics();
  EXPECT_EQ(m.total_requests, 400u);
  std::uint64_t per_endpoint = 0;
  for (const EndpointStats& s : m.endpoints) per_endpoint += s.requests;
  EXPECT_EQ(per_endpoint, 400u);
  EXPECT_GT(m.cache.hit_rate(), 0.5);
}

}  // namespace
}  // namespace gppm::serve
