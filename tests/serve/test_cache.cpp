#include "serve/cache.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <utility>
#include <vector>

#include "core/dataset.hpp"
#include "core/serialization.hpp"

namespace gppm::serve {
namespace {

PredictionKey key(std::uint64_t model_fp, std::uint64_t counters_fp,
                  sim::FrequencyPair pair = sim::kDefaultPair,
                  std::uint64_t family = 0) {
  return PredictionKey{model_fp, counters_fp, family, pair};
}

TEST(ServeCache, MissThenHit) {
  PredictionCache cache(16);
  double v = 0.0;
  EXPECT_FALSE(cache.lookup(key(1, 2), v));
  cache.insert(key(1, 2), 42.0);
  EXPECT_TRUE(cache.lookup(key(1, 2), v));
  EXPECT_EQ(v, 42.0);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(ServeCache, KeyComponentsAllMatter) {
  PredictionCache cache(16);
  cache.insert(key(1, 2, sim::kDefaultPair), 1.0);
  double v = 0.0;
  EXPECT_FALSE(cache.lookup(key(9, 2, sim::kDefaultPair), v));
  EXPECT_FALSE(cache.lookup(key(1, 9, sim::kDefaultPair), v));
  EXPECT_FALSE(cache.lookup(
      key(1, 2, {sim::ClockLevel::Low, sim::ClockLevel::High}), v));
  EXPECT_TRUE(cache.lookup(key(1, 2, sim::kDefaultPair), v));
}

TEST(ServeCache, FamilySeparatesTenantEntries) {
  // Two tenants can serve bit-identical models (same fingerprints) over
  // the same phase — e.g. a tenant family bootstrapped from a copy of the
  // default pair.  The family id must keep their entries apart so a later
  // refit of one family can never be answered from the other's cache.
  PredictionCache cache(16);
  cache.insert(key(1, 2, sim::kDefaultPair, /*family=*/0), 10.0);
  double v = 0.0;
  EXPECT_FALSE(cache.lookup(key(1, 2, sim::kDefaultPair, /*family=*/7), v));
  cache.insert(key(1, 2, sim::kDefaultPair, /*family=*/7), 70.0);
  ASSERT_TRUE(cache.lookup(key(1, 2, sim::kDefaultPair, 0), v));
  EXPECT_EQ(v, 10.0);
  ASSERT_TRUE(cache.lookup(key(1, 2, sim::kDefaultPair, 7), v));
  EXPECT_EQ(v, 70.0);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ServeCache, LruEvictsOldestWithinShard) {
  // Single shard so the LRU order is global and deterministic.
  PredictionCache cache(2, /*shards=*/1);
  cache.insert(key(1, 1), 1.0);
  cache.insert(key(2, 2), 2.0);
  double v = 0.0;
  ASSERT_TRUE(cache.lookup(key(1, 1), v));  // refresh key 1
  cache.insert(key(3, 3), 3.0);             // evicts key 2 (LRU)
  EXPECT_TRUE(cache.lookup(key(1, 1), v));
  EXPECT_FALSE(cache.lookup(key(2, 2), v));
  EXPECT_TRUE(cache.lookup(key(3, 3), v));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ServeCache, InsertRefreshesExistingEntry) {
  PredictionCache cache(4, 1);
  cache.insert(key(1, 1), 1.0);
  cache.insert(key(1, 1), 7.0);
  double v = 0.0;
  ASSERT_TRUE(cache.lookup(key(1, 1), v));
  EXPECT_EQ(v, 7.0);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ServeCache, ZeroCapacityDisables) {
  PredictionCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.insert(key(1, 1), 1.0);
  double v = 0.0;
  EXPECT_FALSE(cache.lookup(key(1, 1), v));
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ServeCache, ClearResetsEntriesAndStats) {
  PredictionCache cache(8);
  cache.insert(key(1, 1), 1.0);
  double v = 0.0;
  cache.lookup(key(1, 1), v);
  cache.clear();
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
}

TEST(ServeCache, CountersFingerprintSeparatesPhases) {
  profiler::ProfileResult a;
  a.run_time = Duration::seconds(1.0);
  a.counters.push_back({"c0", profiler::EventClass::Core, 10.0, 10.0});
  profiler::ProfileResult b = a;
  EXPECT_EQ(counters_fingerprint(a), counters_fingerprint(b));
  b.counters[0].total = 10.0000001;
  EXPECT_NE(counters_fingerprint(a), counters_fingerprint(b));
}

TEST(ServeCache, CountersFingerprintKeyedOnNameAndClass) {
  // Regression: the fingerprint once hashed only the numeric values, so two
  // profiles with identical readings under *different counter names* (or
  // event classes) collided — and the prediction cache served one workload's
  // cached prediction for the other.
  profiler::ProfileResult a;
  a.run_time = Duration::seconds(1.0);
  a.counters.push_back({"inst_executed", profiler::EventClass::Core, 10.0, 10.0});
  a.counters.push_back({"dram_reads", profiler::EventClass::Memory, 3.0, 3.0});

  profiler::ProfileResult renamed = a;
  renamed.counters[0].name = "inst_issued";  // same values, different counter
  EXPECT_NE(counters_fingerprint(a), counters_fingerprint(renamed));

  profiler::ProfileResult reclassed = a;
  reclassed.counters[0].klass = profiler::EventClass::Memory;
  EXPECT_NE(counters_fingerprint(a), counters_fingerprint(reclassed));

  // Same multiset of (name, value) attached to swapped counters must also
  // differ: identity stays glued to its own reading.
  profiler::ProfileResult swapped = a;
  std::swap(swapped.counters[0].name, swapped.counters[1].name);
  EXPECT_NE(counters_fingerprint(a), counters_fingerprint(swapped));

  profiler::ProfileResult same = a;
  EXPECT_EQ(counters_fingerprint(a), counters_fingerprint(same));
}

TEST(ServeCache, ModelFingerprintStableAcrossRoundTrip) {
  const core::Dataset ds = core::build_dataset(sim::GpuModel::GTX460);
  const core::UnifiedModel power =
      core::UnifiedModel::fit(ds, core::TargetKind::Power);
  const core::UnifiedModel perf =
      core::UnifiedModel::fit(ds, core::TargetKind::ExecTime);
  EXPECT_NE(core::model_fingerprint(power), core::model_fingerprint(perf));
  const core::UnifiedModel loaded =
      core::deserialize_model(core::serialize_model(power));
  EXPECT_EQ(core::model_fingerprint(power), core::model_fingerprint(loaded));
}

TEST(ServeCache, ConcurrentMixedLoadKeepsCounts) {
  constexpr int kThreads = 4;
  constexpr int kOps = 5000;
  PredictionCache cache(256);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        const auto k = key(static_cast<std::uint64_t>(t),
                           static_cast<std::uint64_t>(i % 97));
        double v = 0.0;
        if (!cache.lookup(k, v)) cache.insert(k, static_cast<double>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_GT(s.hits, 0u);
  EXPECT_LE(s.entries, 256u);
}

}  // namespace
}  // namespace gppm::serve
