// AdmissionController unit behaviors: the hard concurrency gate, AIMD
// limit motion (additive raise per success, rate-limited multiplicative
// cut per congestion signal), deadline-aware shedding off the latency
// EWMA, and the neutral error release.  No clock dependence except the
// decrease rate-limit window, which is driven explicitly.
#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <thread>

#include "common/error.hpp"
#include "serve/admission.hpp"

namespace gppm::serve {
namespace {

AdmissionOptions small_options() {
  AdmissionOptions opt;
  opt.initial_limit = 4.0;
  opt.min_limit = 2.0;
  opt.instrument = false;  // unit tests: no registry traffic
  return opt;
}

Duration no_deadline() { return Duration::seconds(0.0); }

TEST(ServeAdmission, AdmitsUpToLimitAndShedsBeyond) {
  AdmissionController ctl(small_options());
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ctl.try_acquire(no_deadline())) << "slot " << i;
  }
  EXPECT_EQ(ctl.in_flight(), 4);
  EXPECT_FALSE(ctl.try_acquire(no_deadline()));

  const AdmissionStats stats = ctl.stats();
  EXPECT_EQ(stats.admitted, 4u);
  EXPECT_EQ(stats.shed_limit, 1u);
  EXPECT_EQ(stats.shed_deadline, 0u);

  // A released slot admits again.
  ctl.release_success(Duration::milliseconds(1.0));
  EXPECT_EQ(ctl.in_flight(), 3);
  EXPECT_TRUE(ctl.try_acquire(no_deadline()));
}

TEST(ServeAdmission, SuccessRaisesLimitAdditively) {
  AdmissionController ctl(small_options());
  const double before = ctl.limit();
  ASSERT_TRUE(ctl.try_acquire(no_deadline()));
  ctl.release_success(Duration::milliseconds(1.0));
  // One success at limit L raises by 1/L: a full window of successes is
  // worth one unit of concurrency.
  EXPECT_NEAR(ctl.limit(), before + 1.0 / before, 1e-9);
}

TEST(ServeAdmission, CongestionCutsMultiplicativelyAndIsRateLimited) {
  AdmissionOptions opt = small_options();
  opt.initial_limit = 10.0;
  AdmissionController ctl(opt);
  ASSERT_TRUE(ctl.try_acquire(no_deadline()));
  ASSERT_TRUE(ctl.try_acquire(no_deadline()));

  ctl.release_congestion();
  EXPECT_NEAR(ctl.limit(), 10.0 * opt.decrease, 1e-9);
  // A second signal inside the same window is the same burst: no cut.
  ctl.release_congestion();
  EXPECT_NEAR(ctl.limit(), 10.0 * opt.decrease, 1e-9);
  EXPECT_EQ(ctl.stats().backoffs, 1u);

  // Past the window (>= 10 ms with an empty EWMA) the next signal counts.
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  ASSERT_TRUE(ctl.try_acquire(no_deadline()));
  ctl.release_congestion();
  EXPECT_NEAR(ctl.limit(), 10.0 * opt.decrease * opt.decrease, 1e-9);
  EXPECT_EQ(ctl.stats().backoffs, 2u);
}

TEST(ServeAdmission, LimitNeverFallsBelowFloor) {
  AdmissionOptions opt = small_options();
  opt.initial_limit = 4.0;
  opt.min_limit = 2.0;
  opt.decrease = 0.1;  // one cut would land at 0.4 without the floor
  AdmissionController ctl(opt);
  ASSERT_TRUE(ctl.try_acquire(no_deadline()));
  ctl.release_congestion();
  EXPECT_DOUBLE_EQ(ctl.limit(), 2.0);
  // The floor still admits.
  EXPECT_TRUE(ctl.try_acquire(no_deadline()));
}

TEST(ServeAdmission, DeadlineShorterThanEstimateIsShed) {
  AdmissionController ctl(small_options());
  // Teach the EWMA a ~100 ms service time.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(ctl.try_acquire(no_deadline()));
    ctl.release_success(Duration::milliseconds(100.0));
  }
  ASSERT_GT(ctl.stats().ewma_latency_s, 0.05);

  // A 1 ms deadline cannot be met; no deadline (zero) always passes the
  // estimate check; a generous deadline is admitted.
  EXPECT_FALSE(ctl.try_acquire(Duration::milliseconds(1.0)));
  EXPECT_EQ(ctl.stats().shed_deadline, 1u);
  EXPECT_TRUE(ctl.try_acquire(no_deadline()));
  EXPECT_TRUE(ctl.try_acquire(Duration::seconds(5.0)));
}

TEST(ServeAdmission, ErrorReleaseIsNeutral) {
  AdmissionController ctl(small_options());
  const double before = ctl.limit();
  ASSERT_TRUE(ctl.try_acquire(no_deadline()));
  ctl.release_error();
  EXPECT_DOUBLE_EQ(ctl.limit(), before);
  EXPECT_EQ(ctl.in_flight(), 0);
  EXPECT_EQ(ctl.stats().backoffs, 0u);
}

TEST(ServeAdmission, ConstructionRejectsInvertedAndZeroLimits) {
  // Boundary sweep of the Options contract: inverted clamp, zero/sub-one
  // limits, and out-of-range knobs all throw a typed gppm::Error at
  // construction instead of silently producing a pinned/inverted clamp.
  auto with = [](auto mutate) {
    AdmissionOptions opt;
    opt.instrument = false;
    mutate(opt);
    return opt;
  };
  EXPECT_THROW(AdmissionController(with([](AdmissionOptions& o) {
                 o.min_limit = 8.0;
                 o.max_limit = 4.0;  // inverted
               })),
               gppm::Error);
  EXPECT_THROW(AdmissionController(with([](AdmissionOptions& o) {
                 o.min_limit = 0.0;  // zero floor
               })),
               gppm::Error);
  EXPECT_THROW(AdmissionController(with([](AdmissionOptions& o) {
                 o.max_limit = 0.0;  // zero ceiling (also < min)
               })),
               gppm::Error);
  EXPECT_THROW(AdmissionController(with([](AdmissionOptions& o) {
                 o.initial_limit = 0.0;  // zero start
               })),
               gppm::Error);
  EXPECT_THROW(AdmissionController(with([](AdmissionOptions& o) {
                 o.decrease = 1.0;  // no decrease
               })),
               gppm::Error);
  EXPECT_THROW(AdmissionController(with([](AdmissionOptions& o) {
                 o.ewma_alpha = 0.0;  // EWMA never updates
               })),
               gppm::Error);
  EXPECT_THROW(AdmissionController(with([](AdmissionOptions& o) {
                 o.deadline_headroom = 0.0;  // sheds every deadline request
               })),
               gppm::Error);
  // min == max is a legal degenerate (fixed limit); exactly-1 floors work.
  EXPECT_NO_THROW(AdmissionController(with([](AdmissionOptions& o) {
    o.min_limit = o.max_limit = o.initial_limit = 1.0;
  })));
}

TEST(ServeAdmission, ConstructionRejectsNaNLimits) {
  // Regression: a NaN initial_limit survived std::clamp and pinned the AIMD
  // window open — `in_flight + 1 > NaN` is false forever, so the controller
  // admitted without bound.  NaN anywhere in Options must throw instead.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int field = 0; field < 4; ++field) {
    AdmissionOptions opt;
    opt.instrument = false;
    if (field == 0) opt.initial_limit = nan;
    if (field == 1) opt.min_limit = nan;
    if (field == 2) opt.max_limit = nan;
    if (field == 3) opt.deadline_headroom = nan;
    EXPECT_THROW(AdmissionController ctl(opt), gppm::Error) << "field "
                                                            << field;
  }
  AdmissionOptions inf_opt;
  inf_opt.instrument = false;
  inf_opt.max_limit = std::numeric_limits<double>::infinity();
  EXPECT_THROW(AdmissionController ctl(inf_opt), gppm::Error);
}

TEST(ServeAdmission, OutOfRangeInitialLimitClampsIntoBand) {
  AdmissionOptions opt;
  opt.instrument = false;
  opt.min_limit = 4.0;
  opt.max_limit = 16.0;
  opt.initial_limit = 1000.0;  // above the ceiling: clamped, not rejected
  AdmissionController ctl(opt);
  EXPECT_DOUBLE_EQ(ctl.limit(), 16.0);
}

TEST(ServeAdmission, StatsSnapshotIsCoherent) {
  AdmissionController ctl(small_options());
  ASSERT_TRUE(ctl.try_acquire(no_deadline()));
  ASSERT_TRUE(ctl.try_acquire(no_deadline()));
  ctl.release_success(Duration::milliseconds(2.0));

  const AdmissionStats stats = ctl.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.in_flight, 1);
  EXPECT_GT(stats.limit, 0.0);
  EXPECT_GT(stats.ewma_latency_s, 0.0);
}

}  // namespace
}  // namespace gppm::serve
