// AdmissionController unit behaviors: the hard concurrency gate, AIMD
// limit motion (additive raise per success, rate-limited multiplicative
// cut per congestion signal), deadline-aware shedding off the latency
// EWMA, and the neutral error release.  No clock dependence except the
// decrease rate-limit window, which is driven explicitly.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "serve/admission.hpp"

namespace gppm::serve {
namespace {

AdmissionOptions small_options() {
  AdmissionOptions opt;
  opt.initial_limit = 4.0;
  opt.min_limit = 2.0;
  opt.instrument = false;  // unit tests: no registry traffic
  return opt;
}

Duration no_deadline() { return Duration::seconds(0.0); }

TEST(ServeAdmission, AdmitsUpToLimitAndShedsBeyond) {
  AdmissionController ctl(small_options());
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ctl.try_acquire(no_deadline())) << "slot " << i;
  }
  EXPECT_EQ(ctl.in_flight(), 4);
  EXPECT_FALSE(ctl.try_acquire(no_deadline()));

  const AdmissionStats stats = ctl.stats();
  EXPECT_EQ(stats.admitted, 4u);
  EXPECT_EQ(stats.shed_limit, 1u);
  EXPECT_EQ(stats.shed_deadline, 0u);

  // A released slot admits again.
  ctl.release_success(Duration::milliseconds(1.0));
  EXPECT_EQ(ctl.in_flight(), 3);
  EXPECT_TRUE(ctl.try_acquire(no_deadline()));
}

TEST(ServeAdmission, SuccessRaisesLimitAdditively) {
  AdmissionController ctl(small_options());
  const double before = ctl.limit();
  ASSERT_TRUE(ctl.try_acquire(no_deadline()));
  ctl.release_success(Duration::milliseconds(1.0));
  // One success at limit L raises by 1/L: a full window of successes is
  // worth one unit of concurrency.
  EXPECT_NEAR(ctl.limit(), before + 1.0 / before, 1e-9);
}

TEST(ServeAdmission, CongestionCutsMultiplicativelyAndIsRateLimited) {
  AdmissionOptions opt = small_options();
  opt.initial_limit = 10.0;
  AdmissionController ctl(opt);
  ASSERT_TRUE(ctl.try_acquire(no_deadline()));
  ASSERT_TRUE(ctl.try_acquire(no_deadline()));

  ctl.release_congestion();
  EXPECT_NEAR(ctl.limit(), 10.0 * opt.decrease, 1e-9);
  // A second signal inside the same window is the same burst: no cut.
  ctl.release_congestion();
  EXPECT_NEAR(ctl.limit(), 10.0 * opt.decrease, 1e-9);
  EXPECT_EQ(ctl.stats().backoffs, 1u);

  // Past the window (>= 10 ms with an empty EWMA) the next signal counts.
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  ASSERT_TRUE(ctl.try_acquire(no_deadline()));
  ctl.release_congestion();
  EXPECT_NEAR(ctl.limit(), 10.0 * opt.decrease * opt.decrease, 1e-9);
  EXPECT_EQ(ctl.stats().backoffs, 2u);
}

TEST(ServeAdmission, LimitNeverFallsBelowFloor) {
  AdmissionOptions opt = small_options();
  opt.initial_limit = 4.0;
  opt.min_limit = 2.0;
  opt.decrease = 0.1;  // one cut would land at 0.4 without the floor
  AdmissionController ctl(opt);
  ASSERT_TRUE(ctl.try_acquire(no_deadline()));
  ctl.release_congestion();
  EXPECT_DOUBLE_EQ(ctl.limit(), 2.0);
  // The floor still admits.
  EXPECT_TRUE(ctl.try_acquire(no_deadline()));
}

TEST(ServeAdmission, DeadlineShorterThanEstimateIsShed) {
  AdmissionController ctl(small_options());
  // Teach the EWMA a ~100 ms service time.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(ctl.try_acquire(no_deadline()));
    ctl.release_success(Duration::milliseconds(100.0));
  }
  ASSERT_GT(ctl.stats().ewma_latency_s, 0.05);

  // A 1 ms deadline cannot be met; no deadline (zero) always passes the
  // estimate check; a generous deadline is admitted.
  EXPECT_FALSE(ctl.try_acquire(Duration::milliseconds(1.0)));
  EXPECT_EQ(ctl.stats().shed_deadline, 1u);
  EXPECT_TRUE(ctl.try_acquire(no_deadline()));
  EXPECT_TRUE(ctl.try_acquire(Duration::seconds(5.0)));
}

TEST(ServeAdmission, ErrorReleaseIsNeutral) {
  AdmissionController ctl(small_options());
  const double before = ctl.limit();
  ASSERT_TRUE(ctl.try_acquire(no_deadline()));
  ctl.release_error();
  EXPECT_DOUBLE_EQ(ctl.limit(), before);
  EXPECT_EQ(ctl.in_flight(), 0);
  EXPECT_EQ(ctl.stats().backoffs, 0u);
}

TEST(ServeAdmission, StatsSnapshotIsCoherent) {
  AdmissionController ctl(small_options());
  ASSERT_TRUE(ctl.try_acquire(no_deadline()));
  ASSERT_TRUE(ctl.try_acquire(no_deadline()));
  ctl.release_success(Duration::milliseconds(2.0));

  const AdmissionStats stats = ctl.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.in_flight, 1);
  EXPECT_GT(stats.limit, 0.0);
  EXPECT_GT(stats.ewma_latency_s, 0.0);
}

}  // namespace
}  // namespace gppm::serve
