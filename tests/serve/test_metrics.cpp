#include "serve/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace gppm::serve {
namespace {

TEST(ServeMetrics, RequestKindNames) {
  EXPECT_EQ(to_string(RequestKind::Predict), "predict");
  EXPECT_EQ(to_string(RequestKind::Optimize), "optimize");
  EXPECT_EQ(to_string(RequestKind::Govern), "govern");
}

TEST(ServeMetrics, LatencyBinsAreMonotone) {
  std::size_t prev = 0;
  for (double s : {1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0}) {
    const std::size_t bin = MetricsCollector::latency_bin(s);
    EXPECT_GE(bin, prev);
    prev = bin;
    EXPECT_LT(bin, kLatencyBins);
    // The recorded value sits at or below its bin's upper edge.
    EXPECT_LE(s, MetricsCollector::bin_upper_seconds(bin) * 1.0000001);
  }
}

TEST(ServeMetrics, PercentilesFromKnownDistribution) {
  MetricsCollector collector;
  // 90 requests at ~10 us, 10 at ~10 ms: p50 must sit near 10 us and p99
  // near 10 ms (within one log-bin = factor 10^0.1 resolution).
  for (int i = 0; i < 90; ++i) {
    collector.record_request(RequestKind::Predict, 10e-6);
  }
  for (int i = 0; i < 10; ++i) {
    collector.record_request(RequestKind::Predict, 10e-3);
  }
  const ServerMetrics m = collector.snapshot();
  const EndpointStats& s =
      m.endpoints[static_cast<std::size_t>(RequestKind::Predict)];
  EXPECT_EQ(s.requests, 100u);
  EXPECT_NEAR(s.p50_seconds, 10e-6, 10e-6);   // within the bin
  EXPECT_NEAR(s.p99_seconds, 10e-3, 10e-3);
  EXPECT_GT(s.p95_seconds, s.p50_seconds);
  EXPECT_NEAR(s.mean_latency_seconds, 0.9 * 10e-6 + 0.1 * 10e-3, 1e-4);
}

TEST(ServeMetrics, EndpointsAreIndependent) {
  MetricsCollector collector;
  collector.record_request(RequestKind::Predict, 1e-6);
  collector.record_request(RequestKind::Optimize, 1e-3);
  const ServerMetrics m = collector.snapshot();
  EXPECT_EQ(m.endpoints[0].requests, 1u);
  EXPECT_EQ(m.endpoints[1].requests, 1u);
  EXPECT_EQ(m.endpoints[2].requests, 0u);
  EXPECT_EQ(m.total_requests, 2u);
  EXPECT_LT(m.endpoints[0].p50_seconds, m.endpoints[1].p50_seconds);
}

TEST(ServeMetrics, BatchDistribution) {
  MetricsCollector collector;
  collector.record_batch(1);
  collector.record_batch(1);
  collector.record_batch(4);
  collector.record_batch(kMaxTrackedBatch + 10);  // clamps into last bin
  const ServerMetrics m = collector.snapshot();
  EXPECT_EQ(m.batches, 4u);
  EXPECT_EQ(m.batch_size_counts[0], 2u);
  EXPECT_EQ(m.batch_size_counts[3], 1u);
  EXPECT_EQ(m.batch_size_counts[kMaxTrackedBatch - 1], 1u);
  EXPECT_EQ(m.max_batch_size, kMaxTrackedBatch + 10);
  EXPECT_DOUBLE_EQ(m.mean_batch_size, (1.0 + 1 + 4 + kMaxTrackedBatch + 10) / 4);
}

TEST(ServeMetrics, TableAndCsvRenderings) {
  MetricsCollector collector;
  collector.record_request(RequestKind::Predict, 5e-6);
  collector.record_batch(2);
  collector.record_rejected();
  ServerMetrics m = collector.snapshot();
  m.cache.hits = 3;
  m.cache.misses = 1;

  std::ostringstream table;
  m.print(table);
  EXPECT_NE(table.str().find("predict"), std::string::npos);
  EXPECT_NE(table.str().find("hit rate 75.0%"), std::string::npos);
  EXPECT_NE(table.str().find("1 rejected"), std::string::npos);

  std::ostringstream csv;
  m.write_csv(csv);
  EXPECT_NE(csv.str().find("requests,predict,1"), std::string::npos);
  EXPECT_NE(csv.str().find("summary,rejected_requests,1"), std::string::npos);
  EXPECT_NE(csv.str().find("batch_size,2,1"), std::string::npos);
}

TEST(ServeMetrics, TenantCountersRoundTripThroughTableAndCsv) {
  MetricsCollector collector;
  // Tenant 0 is the shared default: recording it is a no-op by contract.
  collector.record_tenant_accepted(0);
  collector.record_tenant_shed(0);
  collector.record_tenant_cache_hit(0);
  for (int i = 0; i < 3; ++i) collector.record_tenant_accepted(7);
  collector.record_tenant_shed(7);
  collector.record_tenant_accepted(9);
  for (int i = 0; i < 2; ++i) collector.record_tenant_cache_hit(9);

  const ServerMetrics m = collector.snapshot();
  ASSERT_EQ(m.tenants.size(), 2u);  // tenant 0 never appears
  EXPECT_EQ(m.tenants[0].tenant, 7u);
  EXPECT_EQ(m.tenants[0].accepted, 3u);
  EXPECT_EQ(m.tenants[0].shed, 1u);
  EXPECT_EQ(m.tenants[0].cache_hits, 0u);
  EXPECT_EQ(m.tenants[1].tenant, 9u);
  EXPECT_EQ(m.tenants[1].accepted, 1u);
  EXPECT_EQ(m.tenants[1].cache_hits, 2u);

  std::ostringstream table;
  m.print(table);
  EXPECT_NE(table.str().find("per-tenant"), std::string::npos);

  std::ostringstream csv;
  m.write_csv(csv);
  EXPECT_NE(csv.str().find("tenant_accepted,7,3"), std::string::npos);
  EXPECT_NE(csv.str().find("tenant_shed,7,1"), std::string::npos);
  EXPECT_NE(csv.str().find("tenant_cache_hits,9,2"), std::string::npos);
}

TEST(ServeMetrics, ConcurrentTenantRecordingLosesNothing) {
  MetricsCollector collector;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        collector.record_tenant_accepted(1 + (i % 2));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const ServerMetrics m = collector.snapshot();
  ASSERT_EQ(m.tenants.size(), 2u);
  EXPECT_EQ(m.tenants[0].accepted + m.tenants[1].accepted,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ServeMetrics, ConcurrentRecordingLosesNothing) {
  MetricsCollector collector;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        collector.record_request(RequestKind::Govern, 1e-6);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const ServerMetrics m = collector.snapshot();
  EXPECT_EQ(m.endpoints[static_cast<std::size_t>(RequestKind::Govern)].requests,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace gppm::serve
