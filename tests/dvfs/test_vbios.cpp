#include "dvfs/vbios.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "dvfs/combos.hpp"
#include "gpusim/device_spec.hpp"

namespace gppm::dvfs {
namespace {

using sim::ClockLevel;
using sim::FrequencyPair;
using sim::GpuModel;

class VbiosOnEveryBoard : public ::testing::TestWithParam<GpuModel> {};

TEST_P(VbiosOnEveryBoard, RoundTripPreservesEverything) {
  const auto image = build_vbios(GetParam());
  const PerfTable table = parse_vbios(image);
  EXPECT_EQ(table.model, GetParam());
  EXPECT_EQ(table.boot_index, 0u);
  ASSERT_EQ(table.entries.size(), 9u);

  const sim::DeviceSpec& spec = sim::device_spec(GetParam());
  for (const PStateEntry& e : table.entries) {
    EXPECT_EQ(e.core_mhz,
              std::lround(spec.core_clock.at(e.pair.core).frequency.as_mhz()));
    EXPECT_EQ(e.mem_mhz,
              std::lround(spec.mem_clock.at(e.pair.mem).frequency.as_mhz()));
    EXPECT_EQ(e.core_millivolts,
              std::lround(spec.core_clock.at(e.pair.core).voltage.as_volts() * 1000));
    EXPECT_EQ(e.configurable, is_configurable(GetParam(), e.pair));
  }
}

TEST_P(VbiosOnEveryBoard, PatchMovesBootPState) {
  auto image = build_vbios(GetParam());
  const FrequencyPair target{ClockLevel::Medium, ClockLevel::Medium};
  patch_boot_pstate(image, target);
  const PerfTable table = parse_vbios(image);
  EXPECT_EQ(table.entries[table.boot_index].pair, target);
}

TEST_P(VbiosOnEveryBoard, PatchRejectsNonConfigurablePairs) {
  auto image = build_vbios(GetParam());
  // Every board has at least one non-configurable core-L row.
  for (FrequencyPair p : all_candidate_pairs()) {
    if (!is_configurable(GetParam(), p)) {
      EXPECT_THROW(patch_boot_pstate(image, p), gppm::Error);
      return;
    }
  }
  FAIL() << "expected at least one illegal pair";
}

INSTANTIATE_TEST_SUITE_P(AllBoards, VbiosOnEveryBoard,
                         ::testing::ValuesIn(sim::kAllGpus),
                         [](const ::testing::TestParamInfo<GpuModel>& info) {
                           std::string n = sim::to_string(info.param);
                           n.erase(std::remove(n.begin(), n.end(), ' '), n.end());
                           return n;
                         });

TEST(Vbios, ChecksumDetectsCorruption) {
  auto image = build_vbios(GpuModel::GTX480);
  image[12] ^= 0x01;
  EXPECT_THROW(parse_vbios(image), gppm::Error);
}

TEST(Vbios, BadMagicRejected) {
  auto image = build_vbios(GpuModel::GTX480);
  image[0] = 'X';
  EXPECT_THROW(parse_vbios(image), gppm::Error);
}

TEST(Vbios, TruncatedImageRejected) {
  auto image = build_vbios(GpuModel::GTX480);
  image.pop_back();
  EXPECT_THROW(parse_vbios(image), gppm::Error);
}

TEST(Vbios, BadVersionRejected) {
  auto image = build_vbios(GpuModel::GTX480);
  image[4] = 99;
  EXPECT_THROW(parse_vbios(image), gppm::Error);
}

TEST(Vbios, WholeImageSumsToZeroMod256) {
  const auto image = build_vbios(GpuModel::GTX680);
  unsigned sum = 0;
  for (auto b : image) sum += b;
  EXPECT_EQ(sum & 0xff, 0u);
}

TEST(Vbios, PatchKeepsChecksumValid) {
  auto image = build_vbios(GpuModel::GTX285);
  patch_boot_pstate(image, {ClockLevel::High, ClockLevel::Low});
  EXPECT_NO_THROW(parse_vbios(image));
}

TEST(PerfTable, IndexOfThrowsOnMissingPair) {
  PerfTable t;
  EXPECT_THROW(t.index_of(sim::kDefaultPair), gppm::Error);
}

}  // namespace
}  // namespace gppm::dvfs
