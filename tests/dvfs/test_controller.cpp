#include "dvfs/controller.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dvfs/combos.hpp"

namespace gppm::dvfs {
namespace {

using sim::ClockLevel;
using sim::FrequencyPair;
using sim::GpuModel;

TEST(Controller, BootsAtDefaultPair) {
  sim::Gpu gpu(GpuModel::GTX480);
  gpu.set_frequency_pair({ClockLevel::Low, ClockLevel::Low});  // pre-set junk
  Controller ctl(gpu);
  EXPECT_EQ(gpu.frequency_pair(), sim::kDefaultPair);
  EXPECT_EQ(ctl.current_pair(), sim::kDefaultPair);
  EXPECT_EQ(ctl.reboot_count(), 1);
}

TEST(Controller, SetPairAppliesToGpu) {
  sim::Gpu gpu(GpuModel::GTX680);
  Controller ctl(gpu);
  const FrequencyPair mm{ClockLevel::Medium, ClockLevel::Medium};
  ctl.set_pair(mm);
  EXPECT_EQ(gpu.frequency_pair(), mm);
  EXPECT_EQ(ctl.current_pair(), mm);
  EXPECT_EQ(ctl.reboot_count(), 2);
}

TEST(Controller, RejectsIllegalPairAndKeepsState) {
  sim::Gpu gpu(GpuModel::GTX680);
  Controller ctl(gpu);
  const FrequencyPair before = ctl.current_pair();
  EXPECT_THROW(ctl.set_pair({ClockLevel::Low, ClockLevel::Low}), gppm::Error);
  EXPECT_EQ(ctl.current_pair(), before);
  EXPECT_EQ(gpu.frequency_pair(), before);
}

TEST(Controller, RejectedSetPairIsFullyTransactional) {
  // A refused transition must leave no trace: the VBIOS image byte-for-byte
  // as it was, and no reboot charged — set_pair validates before patching.
  sim::Gpu gpu(GpuModel::GTX680);
  Controller ctl(gpu);
  ctl.set_pair({ClockLevel::Medium, ClockLevel::Medium});  // non-default state
  const std::vector<std::uint8_t> image_before = ctl.image();
  const int reboots_before = ctl.reboot_count();
  EXPECT_THROW(ctl.set_pair({ClockLevel::Low, ClockLevel::Low}), gppm::Error);
  EXPECT_EQ(ctl.image(), image_before);
  EXPECT_EQ(ctl.reboot_count(), reboots_before);
  EXPECT_EQ(ctl.current_pair(),
            (FrequencyPair{ClockLevel::Medium, ClockLevel::Medium}));
  // The controller still works after the refusal.
  EXPECT_NO_THROW(ctl.set_pair(sim::kDefaultPair));
  EXPECT_EQ(ctl.reboot_count(), reboots_before + 1);
}

TEST(Controller, SamePairSetIsANoOpWithoutReboot) {
  // Regression: set_pair used to patch + reboot even when the requested
  // pair equaled current_pair(), so a governor re-asserting its steady
  // state thrashed reboot_count once per phase.
  sim::Gpu gpu(GpuModel::GTX680);
  Controller ctl(gpu);
  const FrequencyPair mm{ClockLevel::Medium, ClockLevel::Medium};
  ctl.set_pair(mm);
  const int reboots_after_transition = ctl.reboot_count();
  const std::vector<std::uint8_t> image_before = ctl.image();
  for (int i = 0; i < 100; ++i) ctl.set_pair(mm);
  EXPECT_EQ(ctl.reboot_count(), reboots_after_transition);
  EXPECT_EQ(ctl.image(), image_before);
  EXPECT_EQ(ctl.current_pair(), mm);
  EXPECT_EQ(gpu.frequency_pair(), mm);
}

TEST(Controller, SamePairSetStillRejectsIllegalPairs) {
  // The no-op path must not weaken validation: an illegal pair throws even
  // if (impossibly) requested repeatedly.
  sim::Gpu gpu(GpuModel::GTX680);
  Controller ctl(gpu);
  EXPECT_THROW(ctl.set_pair({ClockLevel::Low, ClockLevel::Low}), gppm::Error);
  EXPECT_THROW(ctl.set_pair({ClockLevel::Low, ClockLevel::Low}), gppm::Error);
}

TEST(Controller, SamePairSetReassertsExternallyMovedClocks) {
  // If something bypassed the controller and moved the GPU's clocks, a
  // same-pair set_pair is NOT a no-op: it reboots to re-assert BIOS state.
  sim::Gpu gpu(GpuModel::GTX680);
  Controller ctl(gpu);
  const FrequencyPair boot_pair = ctl.current_pair();
  gpu.set_frequency_pair({ClockLevel::Medium, ClockLevel::Medium});
  const int before = ctl.reboot_count();
  ctl.set_pair(boot_pair);
  EXPECT_EQ(ctl.reboot_count(), before + 1);
  EXPECT_EQ(gpu.frequency_pair(), boot_pair);
}

TEST(Controller, AvailablePairsMatchTableThree) {
  sim::Gpu gpu(GpuModel::GTX460);
  Controller ctl(gpu);
  EXPECT_EQ(ctl.available_pairs(), configurable_pairs(GpuModel::GTX460));
}

TEST(Controller, CanSweepEveryAvailablePair) {
  for (GpuModel m : sim::kAllGpus) {
    sim::Gpu gpu(m);
    Controller ctl(gpu);
    for (FrequencyPair p : ctl.available_pairs()) {
      ctl.set_pair(p);
      EXPECT_EQ(gpu.frequency_pair(), p);
    }
  }
}

TEST(Controller, ImageStaysParseable) {
  sim::Gpu gpu(GpuModel::GTX285);
  Controller ctl(gpu);
  ctl.set_pair({ClockLevel::Low, ClockLevel::Medium});
  EXPECT_NO_THROW(parse_vbios(ctl.image()));
}

}  // namespace
}  // namespace gppm::dvfs
