// Validates the legal-combination table against paper TABLE III.
#include "dvfs/combos.hpp"

#include <gtest/gtest.h>

namespace gppm::dvfs {
namespace {

using sim::ClockLevel;
using sim::FrequencyPair;
using sim::GpuModel;

FrequencyPair fp(ClockLevel c, ClockLevel m) { return {c, m}; }

TEST(Combos, NineCandidatesInTableOrder) {
  const auto all = all_candidate_pairs();
  ASSERT_EQ(all.size(), 9u);
  EXPECT_EQ(all.front(), fp(ClockLevel::High, ClockLevel::High));
  EXPECT_EQ(all.back(), fp(ClockLevel::Low, ClockLevel::Low));
}

TEST(Combos, CoreHighAndMediumAlwaysConfigurable) {
  for (GpuModel m : sim::kAllGpus) {
    for (ClockLevel core : {ClockLevel::High, ClockLevel::Medium}) {
      for (ClockLevel mem : sim::kAllLevels) {
        EXPECT_TRUE(is_configurable(m, fp(core, mem)))
            << sim::to_string(m) << " " << sim::to_string(fp(core, mem));
      }
    }
  }
}

TEST(Combos, Gtx285CoreLowRows) {
  // TABLE III: L-H and L-M configurable, L-L not.
  EXPECT_TRUE(is_configurable(GpuModel::GTX285, fp(ClockLevel::Low, ClockLevel::High)));
  EXPECT_TRUE(is_configurable(GpuModel::GTX285, fp(ClockLevel::Low, ClockLevel::Medium)));
  EXPECT_FALSE(is_configurable(GpuModel::GTX285, fp(ClockLevel::Low, ClockLevel::Low)));
}

TEST(Combos, FermiBoardsCoreLowOnlyWithMemLow) {
  for (GpuModel m : {GpuModel::GTX460, GpuModel::GTX480}) {
    EXPECT_FALSE(is_configurable(m, fp(ClockLevel::Low, ClockLevel::High)));
    EXPECT_FALSE(is_configurable(m, fp(ClockLevel::Low, ClockLevel::Medium)));
    EXPECT_TRUE(is_configurable(m, fp(ClockLevel::Low, ClockLevel::Low)));
  }
}

TEST(Combos, Gtx680CoreLowOnlyWithMemHigh) {
  EXPECT_TRUE(is_configurable(GpuModel::GTX680, fp(ClockLevel::Low, ClockLevel::High)));
  EXPECT_FALSE(is_configurable(GpuModel::GTX680, fp(ClockLevel::Low, ClockLevel::Medium)));
  EXPECT_FALSE(is_configurable(GpuModel::GTX680, fp(ClockLevel::Low, ClockLevel::Low)));
}

TEST(Combos, PairCountsPerBoard) {
  EXPECT_EQ(configurable_pairs(GpuModel::GTX285).size(), 8u);
  EXPECT_EQ(configurable_pairs(GpuModel::GTX460).size(), 7u);
  EXPECT_EQ(configurable_pairs(GpuModel::GTX480).size(), 7u);
  EXPECT_EQ(configurable_pairs(GpuModel::GTX680).size(), 7u);
}

TEST(Combos, ConfigurableListContainsDefaultFirst) {
  for (GpuModel m : sim::kAllGpus) {
    EXPECT_EQ(configurable_pairs(m).front(), sim::kDefaultPair);
  }
}

}  // namespace
}  // namespace gppm::dvfs
