#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace gppm::net {
namespace {

std::vector<std::uint8_t> payload_bytes() {
  std::vector<std::uint8_t> p;
  for (int i = 0; i < 300; ++i) p.push_back(static_cast<std::uint8_t>(i));
  return p;
}

TEST(NetFrame, HeaderLayoutPinned) {
  const std::vector<std::uint8_t> bytes =
      encode_frame(FrameType::PredictRequest, {0xaa, 0xbb}, 0x0102030405060708);
  ASSERT_EQ(bytes.size(), kFrameHeaderSize + 2);
  EXPECT_EQ(bytes[0], 'G');
  EXPECT_EQ(bytes[1], 'P');
  EXPECT_EQ(bytes[2], 'P');
  EXPECT_EQ(bytes[3], 'M');
  // Legacy frame kinds stay at the base version on the wire so v1-only
  // peers interoperate untouched on the predict path.
  EXPECT_EQ(bytes[4], kBaseProtocolVersion);
  EXPECT_EQ(bytes[5], static_cast<std::uint8_t>(FrameType::PredictRequest));
  EXPECT_EQ(bytes[6], 0);  // flags LE
  EXPECT_EQ(bytes[7], 0);
  EXPECT_EQ(bytes[8], 2);  // payload size LE
  EXPECT_EQ(bytes[9], 0);
  // deadline LE u64 at offset 16
  EXPECT_EQ(bytes[16], 0x08);
  EXPECT_EQ(bytes[23], 0x01);
  EXPECT_EQ(bytes[24], 0xaa);
  EXPECT_EQ(bytes[25], 0xbb);
}

TEST(NetFrame, RoundTripSingleFeed) {
  const std::vector<std::uint8_t> payload = payload_bytes();
  const std::vector<std::uint8_t> bytes =
      encode_frame(FrameType::PredictResponse, payload, 12345);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  const std::optional<Frame> frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->header.type, FrameType::PredictResponse);
  EXPECT_EQ(frame->header.deadline_micros, 12345u);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_EQ(decoder.buffered(), 0u);
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(NetFrame, RoundTripByteByByte) {
  // The decoder must reassemble from the worst possible chunking — the
  // same path an injected net.short_read exercises.
  const std::vector<std::uint8_t> payload = payload_bytes();
  const std::vector<std::uint8_t> bytes =
      encode_frame(FrameType::Ping, payload);
  FrameDecoder decoder;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.feed(&bytes[i], 1);
    EXPECT_FALSE(decoder.next().has_value());
  }
  decoder.feed(&bytes[bytes.size() - 1], 1);
  const std::optional<Frame> frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, payload);
}

TEST(NetFrame, MultipleFramesInOneFeed) {
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 5; ++i) {
    const std::vector<std::uint8_t> one = encode_frame(
        FrameType::Pong, {static_cast<std::uint8_t>(i)},
        static_cast<std::uint64_t>(i));
    stream.insert(stream.end(), one.begin(), one.end());
  }
  FrameDecoder decoder;
  decoder.feed(stream.data(), stream.size());
  for (int i = 0; i < 5; ++i) {
    const std::optional<Frame> frame = decoder.next();
    ASSERT_TRUE(frame.has_value()) << i;
    EXPECT_EQ(frame->payload[0], i);
    EXPECT_EQ(frame->header.deadline_micros, static_cast<std::uint64_t>(i));
  }
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(NetFrame, EmptyPayloadFrame) {
  const std::vector<std::uint8_t> bytes =
      encode_frame(FrameType::InfoRequest, {});
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  const std::optional<Frame> frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->payload.empty());
}

TEST(NetFrame, RejectsBadMagic) {
  std::vector<std::uint8_t> bytes = encode_frame(FrameType::Ping, {1});
  bytes[0] = 'X';
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  EXPECT_THROW(decoder.next(), ProtocolError);
}

TEST(NetFrame, RejectsUnknownVersion) {
  std::vector<std::uint8_t> bytes = encode_frame(FrameType::Ping, {1});
  bytes[4] = kProtocolVersion + 1;
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  EXPECT_THROW(decoder.next(), ProtocolError);
}

TEST(NetFrame, RejectsUnknownType) {
  std::vector<std::uint8_t> bytes = encode_frame(FrameType::Ping, {1});
  bytes[5] = 0x7f;
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  EXPECT_THROW(decoder.next(), ProtocolError);
}

TEST(NetFrame, RejectsNonzeroFlags) {
  std::vector<std::uint8_t> bytes = encode_frame(FrameType::Ping, {1});
  bytes[6] = 1;
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  EXPECT_THROW(decoder.next(), ProtocolError);
}

TEST(NetFrame, RejectsCorruptedPayload) {
  std::vector<std::uint8_t> bytes =
      encode_frame(FrameType::PredictRequest, payload_bytes());
  bytes[kFrameHeaderSize + 7] ^= 0x40;  // flip one payload bit
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  EXPECT_THROW(decoder.next(), ProtocolError);
}

TEST(NetFrame, OversizedDeclarationRejectedBeforeBuffering) {
  // A frame header declaring a 4 GiB payload must be rejected from the 24
  // header bytes alone — no allocation, no waiting for the bytes.
  std::vector<std::uint8_t> bytes = encode_frame(FrameType::Ping, {1});
  bytes[8] = 0xff;
  bytes[9] = 0xff;
  bytes[10] = 0xff;
  bytes[11] = 0xff;
  FrameDecoder decoder;
  decoder.feed(bytes.data(), kFrameHeaderSize);  // header only
  EXPECT_THROW(decoder.next(), ProtocolError);

  // Same with a configured cap: one byte over is rejected, at-cap passes.
  FrameDecoder small(64);
  const std::vector<std::uint8_t> over =
      encode_frame(FrameType::Ping, std::vector<std::uint8_t>(65, 0));
  small.feed(over.data(), kFrameHeaderSize);
  EXPECT_THROW(small.next(), ProtocolError);

  FrameDecoder at_cap(64);
  const std::vector<std::uint8_t> fits =
      encode_frame(FrameType::Ping, std::vector<std::uint8_t>(64, 0));
  at_cap.feed(fits.data(), fits.size());
  EXPECT_TRUE(at_cap.next().has_value());
}

TEST(NetFrame, TruncatedStreamNeverThrowsNorYields) {
  const std::vector<std::uint8_t> bytes =
      encode_frame(FrameType::PredictRequest, payload_bytes(), 99);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameDecoder decoder;
    if (cut > 0) decoder.feed(bytes.data(), cut);
    EXPECT_FALSE(decoder.next().has_value()) << "cut=" << cut;
    EXPECT_EQ(decoder.buffered(), cut);
  }
}

TEST(NetFrame, RandomCorruptionFuzzNeverCrashes) {
  // Contract: arbitrary corruption yields either a ProtocolError or a
  // decoded frame (flips confined to the unchecksummed deadline field),
  // never a crash, hang or unbounded allocation.
  const std::vector<std::uint8_t> good =
      encode_frame(FrameType::PredictRequest, payload_bytes(), 424242);
  Rng rng(20260807);
  int errors = 0, decoded = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> bytes = good;
    const int flips = 1 + static_cast<int>(rng.uniform_index(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = rng.uniform_index(bytes.size());
      bytes[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_index(255));
    }
    FrameDecoder decoder;
    try {
      decoder.feed(bytes.data(), bytes.size());
      if (decoder.next().has_value()) ++decoded;
    } catch (const ProtocolError&) {
      ++errors;
    }
  }
  EXPECT_GT(errors, 0);
  EXPECT_EQ(errors + decoded <= 2000, true);
}

TEST(NetFrame, RandomGarbageStreamsFuzz) {
  // Pure noise: every outcome must be a typed error or "need more bytes".
  Rng rng(7);
  for (int iter = 0; iter < 500; ++iter) {
    const std::size_t len = rng.uniform_index(256);
    std::vector<std::uint8_t> bytes(len);
    for (std::uint8_t& b : bytes) {
      b = static_cast<std::uint8_t>(rng.uniform_index(256));
    }
    FrameDecoder decoder;
    try {
      decoder.feed(bytes.data(), bytes.size());
      while (decoder.next().has_value()) {
      }
    } catch (const ProtocolError&) {
    }
  }
}

TEST(NetFrame, FrameTypeNames) {
  EXPECT_EQ(to_string(FrameType::Ping), "ping");
  EXPECT_EQ(to_string(FrameType::PredictRequest), "predict-request");
  EXPECT_EQ(to_string(FrameType::HealthRequest), "health-request");
  EXPECT_TRUE(frame_type_known(1));
  EXPECT_TRUE(frame_type_known(7));
  EXPECT_FALSE(frame_type_known(0));
  // The health pair exists only from protocol v2 on.
  EXPECT_TRUE(frame_type_known(8));
  EXPECT_TRUE(frame_type_known(9));
  EXPECT_FALSE(frame_type_known(8, kBaseProtocolVersion));
  EXPECT_FALSE(frame_type_known(9, kBaseProtocolVersion));
  EXPECT_FALSE(frame_type_known(10));
}

TEST(NetFrame, HealthFramesStampedV2AndRoundTrip) {
  // Health frames stay at their introduction version (2), not the build's
  // top version — stamping the minimum keeps mixed-version fleets talking.
  const std::vector<std::uint8_t> bytes =
      encode_frame(FrameType::HealthRequest, {0x01, 0x02});
  EXPECT_EQ(bytes[4], 2);
  EXPECT_EQ(frame_min_version(FrameType::HealthRequest), 2);
  EXPECT_EQ(frame_min_version(FrameType::Ping), kBaseProtocolVersion);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  const std::optional<Frame> frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->header.type, FrameType::HealthRequest);
  EXPECT_EQ(frame->header.version, 2);
}

TEST(NetFrame, VersionOverrideStampsTenantFrames) {
  // A codec can raise the stamped version above the type minimum (the v3
  // tenant trailer rides a PredictRequest, whose minimum is v1)...
  const std::vector<std::uint8_t> v3 = encode_frame(
      FrameType::PredictRequest, {0x01}, /*deadline_micros=*/0, 3);
  EXPECT_EQ(v3[4], 3);
  FrameDecoder decoder;
  decoder.feed(v3.data(), v3.size());
  ASSERT_TRUE(decoder.next().has_value());

  // ...and a pre-v3 peer rejects such a frame cleanly instead of
  // mis-parsing the trailer it does not know about.
  FrameDecoder old_peer(kDefaultMaxPayload, /*max_version=*/2);
  old_peer.feed(v3.data(), v3.size());
  EXPECT_THROW(old_peer.next(), ProtocolError);

  // Below the type minimum or above the build maximum is a caller bug.
  EXPECT_THROW(encode_frame(FrameType::HealthRequest, {0x01}, 0, 1),
               Error);
  EXPECT_THROW(encode_frame(FrameType::Ping, {0x01}, 0,
                            kProtocolVersion + 1),
               Error);
}

TEST(NetFrame, OldPeerRejectsHealthFrameCleanly) {
  // A v1-only decoder (an old peer) must reject a v2 health frame as a
  // typed ProtocolError — connection dropped, never mis-parsed.
  const std::vector<std::uint8_t> health =
      encode_frame(FrameType::HealthRequest, {0xff});
  FrameDecoder old_peer(kDefaultMaxPayload, kBaseProtocolVersion);
  old_peer.feed(health.data(), health.size());
  EXPECT_THROW(old_peer.next(), ProtocolError);

  // ...while legacy traffic still flows through the same old decoder.
  const std::vector<std::uint8_t> ping = encode_frame(FrameType::Ping, {1});
  FrameDecoder old_peer2(kDefaultMaxPayload, kBaseProtocolVersion);
  old_peer2.feed(ping.data(), ping.size());
  EXPECT_TRUE(old_peer2.next().has_value());
}

TEST(NetFrame, HealthFrameDowngradedToV1Rejected) {
  // A health frame whose header claims v1 is a protocol violation: the
  // type post-dates the stamped version.
  std::vector<std::uint8_t> bytes =
      encode_frame(FrameType::HealthRequest, {0x07});
  bytes[4] = kBaseProtocolVersion;
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  EXPECT_THROW(decoder.next(), ProtocolError);
}

TEST(NetFrame, VersionedFuzzNeverCrashes) {
  // Same corruption contract as the unversioned fuzz, but against a
  // v1-capped decoder and a corpus mixing v1 and v2 frames: every outcome
  // is a typed error or a decoded frame, never a crash.
  const std::vector<std::uint8_t> v1 =
      encode_frame(FrameType::PredictRequest, payload_bytes(), 77);
  const std::vector<std::uint8_t> v2 =
      encode_frame(FrameType::HealthResponse, payload_bytes());
  Rng rng(20260809);
  int errors = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> bytes = (iter % 2 == 0) ? v1 : v2;
    const int flips = 1 + static_cast<int>(rng.uniform_index(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = rng.uniform_index(bytes.size());
      bytes[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_index(255));
    }
    FrameDecoder decoder(kDefaultMaxPayload, iter % 4 == 0
                                                 ? kBaseProtocolVersion
                                                 : kProtocolVersion);
    try {
      decoder.feed(bytes.data(), bytes.size());
      while (decoder.next().has_value()) {
      }
    } catch (const ProtocolError&) {
      ++errors;
    }
  }
  EXPECT_GT(errors, 0);
}

}  // namespace
}  // namespace gppm::net
