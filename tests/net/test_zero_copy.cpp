// The zero-copy decode path: FrameDecoder::next_view() fuzzed over
// arbitrary stream chunkings (injected short reads), view-lifetime
// aliasing rules across buffer compaction, the response arena, and the
// steady-state no-allocation contract of the framing hot path.
//
// This binary overrides global operator new to COUNT allocations, so the
// no-allocation test can assert an exact zero over the warmed reply path.
// The override must live in this test binary only — never in a library.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/arena.hpp"
#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "net/wire.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace gppm::net;
using gppm::Rng;
namespace serve = gppm::serve;

struct CorpusFrame {
  FrameType type;
  std::vector<std::uint8_t> payload;
  std::uint64_t deadline;
};

std::vector<CorpusFrame> random_corpus(Rng& rng, std::size_t count,
                                       std::size_t max_payload) {
  // The decoder validates framing, not payload semantics, so random bytes
  // under any known frame type exercise it fully.
  const FrameType kinds[] = {FrameType::Ping, FrameType::PredictRequest,
                             FrameType::PredictResponse, FrameType::InfoRequest,
                             FrameType::HealthRequest, FrameType::ErrorReply};
  std::vector<CorpusFrame> corpus;
  corpus.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    CorpusFrame f;
    f.type = kinds[rng.uniform_index(std::size(kinds))];
    f.payload.resize(rng.uniform_index(max_payload + 1));
    for (std::uint8_t& b : f.payload) {
      b = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
    }
    f.deadline = rng.next_u64() & 0xffffffffull;
    corpus.push_back(std::move(f));
  }
  return corpus;
}

std::vector<std::uint8_t> concat_stream(const std::vector<CorpusFrame>& c) {
  std::vector<std::uint8_t> stream;
  for (const CorpusFrame& f : c) {
    encode_frame_into(stream, f.type, f.payload, f.deadline);
  }
  return stream;
}

TEST(ZeroCopyDecode, FuzzedChunkingReassemblesEveryFrame) {
  Rng rng(101);
  for (int round = 0; round < 20; ++round) {
    const std::vector<CorpusFrame> corpus =
        random_corpus(rng, 12, /*max_payload=*/600);
    const std::vector<std::uint8_t> stream = concat_stream(corpus);

    FrameDecoder decoder;
    std::size_t next_expected = 0;
    std::size_t fed = 0;
    while (fed < stream.size()) {
      // Short reads of every size down to a single byte, so frame headers
      // and payloads split at arbitrary offsets.
      const std::size_t chunk =
          1 + rng.uniform_index(std::min<std::size_t>(97, stream.size() - fed));
      decoder.feed(stream.data() + fed, chunk);
      fed += chunk;
      // Views must be consumed (here: verified) before the next feed —
      // exactly the server reader's discipline.
      while (std::optional<FrameView> view = decoder.next_view()) {
        ASSERT_LT(next_expected, corpus.size());
        const CorpusFrame& want = corpus[next_expected++];
        EXPECT_EQ(view->header.type, want.type);
        EXPECT_EQ(view->header.deadline_micros, want.deadline);
        ASSERT_EQ(view->payload.size(), want.payload.size());
        EXPECT_TRUE(std::equal(view->payload.begin(), view->payload.end(),
                               want.payload.begin()));
      }
    }
    EXPECT_EQ(next_expected, corpus.size());
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

TEST(ZeroCopyDecode, ShortReadReassemblyAcrossCompactionBoundary) {
  // Payloads large enough that the decoder's 64 KiB compaction threshold
  // trips repeatedly while later frames are still partially buffered: the
  // erase moves live partial-frame bytes to the front, and the views
  // handed out afterwards must point at the moved bytes, not the old
  // offsets.
  Rng rng(103);
  const std::vector<CorpusFrame> corpus =
      random_corpus(rng, 10, /*max_payload=*/20 * 1024);
  const std::vector<std::uint8_t> stream = concat_stream(corpus);

  FrameDecoder decoder;
  std::size_t next_expected = 0;
  std::size_t fed = 0;
  while (fed < stream.size()) {
    const std::size_t chunk =
        std::min<std::size_t>(1 + rng.uniform_index(7000), stream.size() - fed);
    decoder.feed(stream.data() + fed, chunk);
    fed += chunk;
    while (std::optional<FrameView> view = decoder.next_view()) {
      ASSERT_LT(next_expected, corpus.size());
      const CorpusFrame& want = corpus[next_expected++];
      ASSERT_EQ(view->payload.size(), want.payload.size());
      EXPECT_TRUE(std::equal(view->payload.begin(), view->payload.end(),
                             want.payload.begin()))
          << "frame " << next_expected - 1;
    }
  }
  EXPECT_EQ(next_expected, corpus.size());
}

TEST(ZeroCopyDecode, ViewsFromOneFeedStayValidUntilNextFeed) {
  // Multiple frames landing in a single feed: taking the second view must
  // not invalidate the first (no compaction happens between next_view
  // calls, only inside feed).
  const std::vector<std::uint8_t> p1 = {1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> p2 = {9, 8, 7};
  std::vector<std::uint8_t> stream;
  encode_frame_into(stream, FrameType::Ping, p1);
  encode_frame_into(stream, FrameType::ErrorReply, p2);

  FrameDecoder decoder;
  decoder.feed(stream.data(), stream.size());
  std::optional<FrameView> v1 = decoder.next_view();
  std::optional<FrameView> v2 = decoder.next_view();
  ASSERT_TRUE(v1 && v2);
  EXPECT_TRUE(std::equal(v1->payload.begin(), v1->payload.end(), p1.begin()));
  EXPECT_TRUE(std::equal(v2->payload.begin(), v2->payload.end(), p2.begin()));
  EXPECT_FALSE(decoder.next_view());
}

TEST(ZeroCopyDecode, NextAndNextViewDecodeIdentically) {
  Rng rng(107);
  const std::vector<CorpusFrame> corpus = random_corpus(rng, 8, 200);
  const std::vector<std::uint8_t> stream = concat_stream(corpus);

  FrameDecoder by_copy;
  FrameDecoder by_view;
  by_copy.feed(stream.data(), stream.size());
  by_view.feed(stream.data(), stream.size());
  while (true) {
    std::optional<Frame> frame = by_copy.next();
    std::optional<FrameView> view = by_view.next_view();
    ASSERT_EQ(frame.has_value(), view.has_value());
    if (!frame) break;
    EXPECT_EQ(frame->header.type, view->header.type);
    EXPECT_EQ(frame->header.payload_crc, view->header.payload_crc);
    ASSERT_EQ(frame->payload.size(), view->payload.size());
    EXPECT_TRUE(std::equal(view->payload.begin(), view->payload.end(),
                           frame->payload.begin()));
  }
}

TEST(ZeroCopyDecode, CorruptPayloadThrowsThroughNextView) {
  std::vector<std::uint8_t> stream =
      encode_frame(FrameType::Ping, {1, 2, 3, 4, 5, 6, 7, 8});
  stream[kFrameHeaderSize + 3] ^= 0x40;  // flip a payload bit
  FrameDecoder decoder;
  decoder.feed(stream.data(), stream.size());
  EXPECT_THROW(decoder.next_view(), ProtocolError);
}

TEST(Arena, ResetKeepsCapacity) {
  Arena arena;
  arena.payload().u64(42);
  arena.payload().str("warmup payload");
  encode_frame_into(arena.frames(), FrameType::Pong, arena.payload().data());
  const std::size_t warm = arena.capacity_bytes();
  EXPECT_GT(warm, 0u);
  arena.reset();
  EXPECT_EQ(arena.payload().size(), 0u);
  EXPECT_TRUE(arena.frames().empty());
  EXPECT_EQ(arena.capacity_bytes(), warm);
}

TEST(Arena, WireWriterReuseAdoptsStorage) {
  WireWriter first;
  first.reserve(1024);
  first.u64(7);
  std::vector<std::uint8_t> storage = first.take();
  const std::size_t cap = storage.capacity();
  WireWriter reused(std::move(storage));
  EXPECT_EQ(reused.size(), 0u);        // adopted cleared...
  EXPECT_EQ(reused.capacity(), cap);   // ...but capacity retained
}

TEST(ZeroCopySteadyState, FramingPathAllocatesNothingOnceWarm) {
  // The regression the read-buffer/arena satellites exist for: after the
  // first requests warm every buffer, one request's worth of transport
  // work — feed, next_view (CRC in place), response encode into the
  // arena, frame append, reset — performs ZERO heap allocations.
  serve::Response response;
  response.power_watts = 101.25;
  response.time_seconds = 0.125;
  response.energy_joules = 12.65625;

  const std::vector<std::uint8_t> request_payload(512, 0xa5);
  const std::vector<std::uint8_t> request_bytes =
      encode_frame(FrameType::PredictRequest, request_payload);

  FrameDecoder decoder;
  Arena arena;
  const auto one_request = [&] {
    // Feed in two chunks so the reassembly path runs too.
    const std::size_t half = request_bytes.size() / 2;
    decoder.feed(request_bytes.data(), half);
    ASSERT_FALSE(decoder.next_view().has_value());
    decoder.feed(request_bytes.data() + half, request_bytes.size() - half);
    std::optional<FrameView> view = decoder.next_view();
    ASSERT_TRUE(view.has_value());
    arena.reset();
    WireWriter& payload = arena.payload();
    payload.clear();
    encode_predict_response_into(payload, /*request_id=*/7, response);
    encode_frame_into(arena.frames(), FrameType::PredictResponse,
                      payload.data());
  };

  for (int i = 0; i < 16; ++i) one_request();  // warm all capacities

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) one_request();
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " allocations leaked into the warmed hot path";
}

}  // namespace
