#include "net/protocol.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gppm::net {
namespace {

profiler::ProfileResult sample_counters() {
  profiler::ProfileResult counters;
  counters.counters.push_back(
      {"inst_issued", profiler::EventClass::Core, 1.25e9, 3.1e9});
  counters.counters.push_back(
      {"fb_subp0_read_sectors", profiler::EventClass::Memory, 7.5e6, 0.1});
  counters.counters.push_back({"", profiler::EventClass::Core, 0.0, -0.0});
  counters.run_time = Duration::seconds(0.40625);
  return counters;
}

serve::Request sample_request() {
  serve::Request request;
  request.kind = serve::RequestKind::Optimize;
  request.gpu = sim::GpuModel::GTX480;
  request.counters = sample_counters();
  request.pair = {sim::ClockLevel::High, sim::ClockLevel::Low};
  request.policy = core::GovernorPolicy::PowerCap;
  return request;
}

TEST(NetProtocol, PredictRequestRoundTrip) {
  const serve::Request request = sample_request();
  const std::vector<std::uint8_t> payload =
      encode_predict_request(77, request);
  const DecodedRequest decoded = decode_predict_request(payload, 2500);

  EXPECT_EQ(decoded.request_id, 77u);
  EXPECT_EQ(decoded.request.kind, request.kind);
  EXPECT_EQ(decoded.request.gpu, request.gpu);
  EXPECT_EQ(decoded.request.policy, request.policy);
  EXPECT_EQ(decoded.request.pair, request.pair);
  // The deadline comes from the frame header, not the payload.
  EXPECT_DOUBLE_EQ(decoded.request.deadline.as_seconds(), 2500e-6);
  ASSERT_EQ(decoded.request.counters.counters.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const profiler::CounterReading& in = request.counters.counters[i];
    const profiler::CounterReading& out = decoded.request.counters.counters[i];
    EXPECT_EQ(out.name, in.name);
    EXPECT_EQ(out.klass, in.klass);
    EXPECT_EQ(out.total, in.total);       // bit-exact, not approximately
    EXPECT_EQ(out.per_second, in.per_second);
  }
  EXPECT_EQ(decoded.request.counters.run_time.as_seconds(),
            request.counters.run_time.as_seconds());
}

TEST(NetProtocol, TenantTrailerRoundTrip) {
  serve::Request request = sample_request();
  request.tenant = 4242;
  const std::vector<std::uint8_t> payload =
      encode_predict_request(9, request);
  EXPECT_EQ(predict_request_version(request), 3);
  const DecodedRequest decoded = decode_predict_request(payload, 0);
  EXPECT_EQ(decoded.request.tenant, 4242u);
  EXPECT_EQ(decoded.request.kind, request.kind);
  EXPECT_EQ(decoded.request.gpu, request.gpu);
}

TEST(NetProtocol, TenantZeroKeepsLegacyBytes) {
  // A tenant-0 request must encode to exactly the pre-v3 byte layout —
  // that is the interoperability contract with v1/v2 peers.
  serve::Request request = sample_request();
  const std::vector<std::uint8_t> legacy = encode_predict_request(7, request);
  request.tenant = 0;
  const std::vector<std::uint8_t> again = encode_predict_request(7, request);
  EXPECT_EQ(legacy, again);
  EXPECT_EQ(predict_request_version(request), kBaseProtocolVersion);

  request.tenant = 1;
  const std::vector<std::uint8_t> tenanted =
      encode_predict_request(7, request);
  EXPECT_EQ(tenanted.size(), legacy.size() + 4);
  EXPECT_EQ(decode_predict_request(legacy, 0).request.tenant, 0u);
}

TEST(NetProtocol, RejectsZeroTenantTrailer) {
  // A trailer announcing tenant 0 is a layout disagreement, not a value.
  serve::Request request = sample_request();
  request.tenant = 1;
  std::vector<std::uint8_t> payload = encode_predict_request(7, request);
  for (std::size_t i = payload.size() - 4; i < payload.size(); ++i) {
    payload[i] = 0;
  }
  EXPECT_THROW(decode_predict_request(payload, 0), ProtocolError);
}

TEST(NetProtocol, DeadlineConversions) {
  EXPECT_EQ(deadline_to_micros(Duration::seconds(0.0)), 0u);
  EXPECT_EQ(deadline_to_micros(Duration::seconds(-1.0)), 0u);
  EXPECT_EQ(deadline_to_micros(Duration::milliseconds(1.5)), 1500u);
  // Sub-microsecond deadlines round *up* so they stay nonzero (zero on the
  // wire means "no deadline" — silently dropping one would be wrong).
  EXPECT_EQ(deadline_to_micros(Duration::seconds(1e-9)), 1u);
  EXPECT_DOUBLE_EQ(deadline_from_micros(1500).as_seconds(), 1.5e-3);
  EXPECT_DOUBLE_EQ(deadline_from_micros(0).as_seconds(), 0.0);
}

TEST(NetProtocol, PredictResponseRoundTrip) {
  serve::Response response;
  response.kind = serve::RequestKind::Govern;
  response.status = serve::ResponseStatus::Ok;
  response.pair = {sim::ClockLevel::Low, sim::ClockLevel::High};
  response.power_watts = 101.17;
  response.time_seconds = 0.1;
  response.energy_joules = 101.17 * 0.1;
  response.cache_hit = true;
  response.latency = Duration::seconds(3.25e-5);
  response.error = "";

  const std::vector<std::uint8_t> payload =
      encode_predict_response(42, response);
  const DecodedResponse decoded = decode_predict_response(payload);
  EXPECT_EQ(decoded.request_id, 42u);
  EXPECT_EQ(decoded.response.kind, response.kind);
  EXPECT_EQ(decoded.response.status, response.status);
  EXPECT_EQ(decoded.response.pair, response.pair);
  EXPECT_EQ(decoded.response.power_watts, response.power_watts);
  EXPECT_EQ(decoded.response.time_seconds, response.time_seconds);
  EXPECT_EQ(decoded.response.energy_joules, response.energy_joules);
  EXPECT_TRUE(decoded.response.cache_hit);
  EXPECT_EQ(decoded.response.latency.as_seconds(),
            response.latency.as_seconds());
  EXPECT_EQ(decoded.response.error, "");
}

TEST(NetProtocol, ErrorResponseCarriesTypedStatus) {
  serve::Response response;
  response.kind = serve::RequestKind::Predict;
  response.status = serve::ResponseStatus::NoModels;
  response.error = "no models loaded for GTX680";
  const DecodedResponse decoded =
      decode_predict_response(encode_predict_response(1, response));
  EXPECT_EQ(decoded.response.status, serve::ResponseStatus::NoModels);
  EXPECT_EQ(decoded.response.error, "no models loaded for GTX680");
}

TEST(NetProtocol, RejectsOutOfRangeEnums) {
  const std::vector<std::uint8_t> good =
      encode_predict_request(1, sample_request());
  // Offsets: id u64 (0..7), kind (8), gpu (9), policy (10), pair (11, 12).
  for (const std::size_t offset : {8u, 9u, 10u, 11u, 12u}) {
    std::vector<std::uint8_t> bad = good;
    bad[offset] = 0x7f;
    EXPECT_THROW(decode_predict_request(bad, 0), ProtocolError) << offset;
  }

  serve::Response response;
  const std::vector<std::uint8_t> resp = encode_predict_response(1, response);
  for (const std::size_t offset : {8u, 9u, 10u, 11u}) {
    std::vector<std::uint8_t> bad = resp;
    bad[offset] = 0x7f;
    EXPECT_THROW(decode_predict_response(bad), ProtocolError) << offset;
  }
  // cache_hit flag must be 0 or 1.
  std::vector<std::uint8_t> bad_hit = resp;
  bad_hit[12 + 24] = 2;  // after pair: 3 f64 = 24 bytes, then the flag
  EXPECT_THROW(decode_predict_response(bad_hit), ProtocolError);
}

TEST(NetProtocol, RejectsTruncatedAndPaddedPayloads) {
  std::vector<std::uint8_t> payload =
      encode_predict_request(9, sample_request());
  std::vector<std::uint8_t> truncated(payload.begin(), payload.end() - 1);
  EXPECT_THROW(decode_predict_request(truncated, 0), ProtocolError);
  payload.push_back(0);  // trailing garbage
  EXPECT_THROW(decode_predict_request(payload, 0), ProtocolError);
}

TEST(NetProtocol, RejectsCounterCountBomb) {
  // A declared counter count the payload cannot hold must be rejected
  // before any proportional allocation happens.
  serve::Request request = sample_request();
  request.counters.counters.clear();
  std::vector<std::uint8_t> payload = encode_predict_request(1, request);
  // The u16 counter count sits right after id/kind/gpu/policy/pair = 13
  // bytes.
  payload[13] = 0xff;
  payload[14] = 0xff;
  EXPECT_THROW(decode_predict_request(payload, 0), ProtocolError);
}

TEST(NetProtocol, ServerInfoRoundTrip) {
  ServerInfo info;
  info.boards.push_back({sim::GpuModel::GTX460, 0x1111222233334444ull,
                         0x5555666677778888ull});
  info.boards.push_back({sim::GpuModel::GTX680, 1, 2});
  const ServerInfo decoded = decode_server_info(encode_server_info(info));
  EXPECT_EQ(decoded.protocol_version, kProtocolVersion);
  ASSERT_EQ(decoded.boards.size(), 2u);
  EXPECT_EQ(decoded.boards[0].gpu, sim::GpuModel::GTX460);
  EXPECT_EQ(decoded.boards[0].power_fingerprint, 0x1111222233334444ull);
  EXPECT_EQ(decoded.boards[1].perf_fingerprint, 2u);
}

TEST(NetProtocol, HealthRoundTrip) {
  EXPECT_EQ(decode_health_request(encode_health_request(0xfeedf00dull)),
            0xfeedf00dull);
  HealthStatus status;
  status.accepting = false;
  status.boards = 3;
  status.queue_depth = 17;
  status.queue_capacity = 4096;
  status.workers = 8;
  const DecodedHealth decoded =
      decode_health_response(encode_health_response(0xabcdull, status));
  EXPECT_EQ(decoded.token, 0xabcdull);
  EXPECT_EQ(decoded.status.protocol_version, kProtocolVersion);
  EXPECT_FALSE(decoded.status.accepting);
  EXPECT_EQ(decoded.status.boards, 3u);
  EXPECT_EQ(decoded.status.queue_depth, 17u);
  EXPECT_EQ(decoded.status.queue_capacity, 4096u);
  EXPECT_EQ(decoded.status.workers, 8u);
}

TEST(NetProtocol, HealthRejectsMalformedPayload) {
  // The accepting flag is a strict 0/1 byte on the wire; anything else is
  // a protocol violation, and truncated payloads are typed errors.
  std::vector<std::uint8_t> bytes =
      encode_health_response(1, HealthStatus{});
  bytes[9] = 2;  // accepting byte follows u64 token + u8 version
  EXPECT_THROW(decode_health_response(bytes), ProtocolError);
  EXPECT_THROW(decode_health_request(std::vector<std::uint8_t>{0x01, 0x02}),
               ProtocolError);
  std::vector<std::uint8_t> truncated =
      encode_health_response(1, HealthStatus{});
  truncated.resize(truncated.size() - 3);
  EXPECT_THROW(decode_health_response(truncated), ProtocolError);
}

TEST(NetProtocol, PingAndWireErrorRoundTrip) {
  EXPECT_EQ(decode_ping(encode_ping(0xdeadbeefcafef00dull)),
            0xdeadbeefcafef00dull);
  const WireError error{WireErrorCode::ShuttingDown, "drain in progress"};
  const WireError decoded = decode_wire_error(encode_wire_error(error));
  EXPECT_EQ(decoded.code, WireErrorCode::ShuttingDown);
  EXPECT_EQ(decoded.message, "drain in progress");
  // Unknown codes are rejected.
  std::vector<std::uint8_t> bad = encode_wire_error(error);
  bad[0] = 99;
  EXPECT_THROW(decode_wire_error(bad), ProtocolError);
}

}  // namespace
}  // namespace gppm::net
