// Loopback client <-> server integration: the wire path must be
// indistinguishable from in-process serving.  Every server here binds port
// 0 (the kernel picks a free ephemeral port), so suites run in parallel
// without port collisions.
#include "net/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/serialization.hpp"
#include "net/client.hpp"

namespace gppm::net {
namespace {

const core::Dataset& dataset() {
  static const core::Dataset ds = core::build_dataset(sim::GpuModel::GTX460);
  return ds;
}

const core::UnifiedModel& power_model() {
  static const core::UnifiedModel m =
      core::UnifiedModel::fit(dataset(), core::TargetKind::Power);
  return m;
}

const core::UnifiedModel& perf_model() {
  static const core::UnifiedModel m =
      core::UnifiedModel::fit(dataset(), core::TargetKind::ExecTime);
  return m;
}

serve::Request predict_request(const profiler::ProfileResult& counters,
                               sim::FrequencyPair pair = sim::kDefaultPair) {
  serve::Request r;
  r.kind = serve::RequestKind::Predict;
  r.gpu = sim::GpuModel::GTX460;
  r.counters = counters;
  r.pair = pair;
  return r;
}

/// Backend + wire server + client on an ephemeral loopback port.
struct Rig {
  explicit Rig(serve::ServerOptions backend_options = {},
               ServerOptions server_options = {},
               std::size_t client_pool = 1)
      : backend(backend_options), server(backend, server_options) {
    backend.load_models(power_model(), perf_model());
    ClientOptions copt;
    copt.port = server.port();
    copt.pool_size = client_pool;
    client = std::make_unique<Client>(copt);
  }
  serve::PredictionServer backend;
  Server server;
  std::unique_ptr<Client> client;
};

TEST(NetServer, BindsEphemeralPort) {
  serve::PredictionServer backend;
  Server server(backend);
  EXPECT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());
}

TEST(NetServer, PingAndInfo) {
  Rig rig;
  rig.client->ping();
  const ServerInfo info = rig.client->info();
  EXPECT_EQ(info.protocol_version, kProtocolVersion);
  ASSERT_EQ(info.boards.size(), 1u);
  EXPECT_EQ(info.boards[0].gpu, sim::GpuModel::GTX460);
  EXPECT_EQ(info.boards[0].power_fingerprint,
            core::model_fingerprint(power_model()));
  EXPECT_EQ(info.boards[0].perf_fingerprint,
            core::model_fingerprint(perf_model()));
}

TEST(NetServer, WirePredictionsBitIdenticalToInProcess) {
  Rig rig;
  const std::vector<sim::FrequencyPair> pairs = {
      {sim::ClockLevel::Low, sim::ClockLevel::Low},
      {sim::ClockLevel::Medium, sim::ClockLevel::High},
      {sim::ClockLevel::High, sim::ClockLevel::High},
  };
  for (std::size_t i = 0; i < 8; ++i) {
    const core::Sample& sample = dataset().samples[i * 4];
    for (const sim::FrequencyPair pair : pairs) {
      const serve::Response wire =
          rig.client->predict(predict_request(sample.counters, pair));
      const serve::Response local =
          rig.backend.submit(predict_request(sample.counters, pair)).get();
      ASSERT_EQ(wire.status, serve::ResponseStatus::Ok) << wire.error;
      // Bit-identical, not approximately equal: doubles cross the wire as
      // IEEE-754 bit patterns and both answers come from the same models.
      EXPECT_EQ(wire.power_watts, local.power_watts);
      EXPECT_EQ(wire.time_seconds, local.time_seconds);
      EXPECT_EQ(wire.energy_joules, local.energy_joules);
      EXPECT_EQ(wire.pair, pair);
      EXPECT_EQ(wire.kind, serve::RequestKind::Predict);
    }
  }
}

TEST(NetServer, PipelinedBatchBitIdenticalToInProcess) {
  Rig rig;
  std::vector<serve::Request> batch;
  std::vector<serve::Response> expected;
  for (std::size_t i = 0; i < 40; ++i) {
    const core::Sample& sample = dataset().samples[i % 12];
    batch.push_back(predict_request(sample.counters));
    expected.push_back(rig.backend.submit(batch.back()).get());
  }
  const std::vector<serve::Response> replies =
      rig.client->predict_batch(batch);
  ASSERT_EQ(replies.size(), batch.size());
  for (std::size_t i = 0; i < replies.size(); ++i) {
    ASSERT_EQ(replies[i].status, serve::ResponseStatus::Ok)
        << i << ": " << replies[i].error;
    // In request order, bit-identical — the pipelined path must be
    // indistinguishable from 40 serial RPCs.
    EXPECT_EQ(replies[i].power_watts, expected[i].power_watts) << i;
    EXPECT_EQ(replies[i].time_seconds, expected[i].time_seconds) << i;
    EXPECT_EQ(replies[i].energy_joules, expected[i].energy_joules) << i;
  }
  EXPECT_TRUE(rig.client->predict_batch({}).empty());
}

TEST(NetServer, OptimizeOverTheWireMatchesInProcess) {
  Rig rig;
  const core::Sample& sample = dataset().samples.front();
  serve::Request request;
  request.kind = serve::RequestKind::Optimize;
  request.gpu = sim::GpuModel::GTX460;
  request.counters = sample.counters;
  const serve::Response wire = rig.client->predict(request);
  const serve::Response local = rig.backend.submit(request).get();
  ASSERT_TRUE(wire.ok()) << wire.error;
  EXPECT_EQ(wire.pair, local.pair);
  EXPECT_EQ(wire.power_watts, local.power_watts);
  EXPECT_EQ(wire.time_seconds, local.time_seconds);
  EXPECT_EQ(wire.energy_joules, local.energy_joules);
}

TEST(NetServer, GovernOverTheWire) {
  Rig rig;
  serve::Request request;
  request.kind = serve::RequestKind::Govern;
  request.gpu = sim::GpuModel::GTX460;
  request.counters = dataset().samples.front().counters;
  request.policy = core::GovernorPolicy::MinimumEnergy;
  const serve::Response r = rig.client->predict(request);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.kind, serve::RequestKind::Govern);
  EXPECT_GT(r.power_watts, 0.0);
}

TEST(NetServer, UnloadedBoardAnswersTypedStatusNotError) {
  Rig rig;
  serve::Request request = predict_request(dataset().samples[0].counters);
  request.gpu = sim::GpuModel::GTX680;
  const serve::Response r = rig.client->predict(request);
  EXPECT_EQ(r.status, serve::ResponseStatus::NoModels);
  EXPECT_NE(r.error.find("no models loaded"), std::string::npos) << r.error;
}

TEST(NetServer, DeadlinePropagatesThroughFrameHeader) {
  // One worker chewing through slow uncached Optimize requests guarantees
  // a later 1 us-deadline request out-waits its deadline in the queue.
  serve::ServerOptions bopt;
  bopt.worker_threads = 1;
  bopt.cache_capacity = 0;  // every Optimize evaluates all pairs for real
  Rig rig(bopt);
  std::vector<std::thread> floods;
  std::atomic<bool> flood_ok{true};
  for (int t = 0; t < 2; ++t) {
    floods.emplace_back([&rig, &flood_ok] {
      ClientOptions copt;
      copt.port = rig.server.port();
      Client flooder(copt);
      serve::Request slow;
      slow.kind = serve::RequestKind::Optimize;
      slow.gpu = sim::GpuModel::GTX460;
      slow.counters = dataset().samples.front().counters;
      for (int i = 0; i < 20; ++i) {
        if (!flooder.predict(slow).ok()) flood_ok = false;
      }
    });
  }
  serve::Request urgent = predict_request(dataset().samples[1].counters);
  urgent.deadline = Duration::microseconds(1.0);
  int expired = 0;
  for (int i = 0; i < 20; ++i) {
    const serve::Response r = rig.client->predict(urgent);
    if (r.status == serve::ResponseStatus::DeadlineExceeded) ++expired;
  }
  for (std::thread& t : floods) t.join();
  EXPECT_TRUE(flood_ok.load());
  // Under a flooded single worker, queue wait >> 1 us essentially always.
  EXPECT_GT(expired, 0);
}

TEST(NetServer, ConcurrentClientsAllServedCorrectly) {
  Rig rig({}, {}, /*client_pool=*/4);
  const core::Sample& sample = dataset().samples.front();
  const serve::Response local =
      rig.backend.submit(predict_request(sample.counters)).get();
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        const serve::Response r =
            rig.client->predict(predict_request(sample.counters));
        if (!r.ok() || r.power_watts != local.power_watts ||
            r.time_seconds != local.time_seconds) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(rig.client->stats().rpcs, 200u);
  const ServerStats stats = rig.server.stats();
  EXPECT_EQ(stats.requests_bridged, 200u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(NetServer, GarbageBytesGetTypedErrorReplyThenDisconnect) {
  Rig rig;
  Socket raw = Socket::connect("127.0.0.1", rig.server.port());
  const std::uint8_t garbage[] = "this is definitely not a gppm frame";
  raw.write_all(garbage, sizeof garbage);

  FrameDecoder decoder;
  std::uint8_t buf[4096];
  std::optional<Frame> reply;
  while (!reply.has_value()) {
    ASSERT_TRUE(raw.wait_readable(5000));
    const std::size_t n = raw.read_some(buf, sizeof buf);
    ASSERT_GT(n, 0u) << "peer closed before sending an ErrorReply";
    decoder.feed(buf, n);
    reply = decoder.next();
  }
  EXPECT_EQ(reply->header.type, FrameType::ErrorReply);
  const WireError error = decode_wire_error(reply->payload);
  EXPECT_EQ(error.code, WireErrorCode::Malformed);
  // Then EOF: the server dropped us.
  while (true) {
    ASSERT_TRUE(raw.wait_readable(5000));
    const std::size_t n = raw.read_some(buf, sizeof buf);
    if (n == 0) break;
  }
  // Poll until the server's reader thread has accounted the error.
  for (int i = 0; i < 100 && rig.server.stats().protocol_errors == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(rig.server.stats().protocol_errors, 1u);
  // The healthy client still works: protocol errors are per-connection.
  EXPECT_TRUE(
      rig.client->predict(predict_request(dataset().samples[0].counters))
          .ok());
}

TEST(NetServer, OversizedFrameDeclarationIsRejected) {
  ServerOptions sopt;
  sopt.max_frame_payload = 1024;
  Rig rig({}, sopt);
  Socket raw = Socket::connect("127.0.0.1", rig.server.port());
  // A syntactically valid header announcing 1 MiB on a 1 KiB-cap server.
  const std::vector<std::uint8_t> frame =
      encode_frame(FrameType::Ping, std::vector<std::uint8_t>(1 << 20, 7));
  raw.write_all(frame.data(), kFrameHeaderSize);

  FrameDecoder decoder;
  std::uint8_t buf[4096];
  std::optional<Frame> reply;
  while (!reply.has_value()) {
    ASSERT_TRUE(raw.wait_readable(5000));
    const std::size_t n = raw.read_some(buf, sizeof buf);
    ASSERT_GT(n, 0u);
    decoder.feed(buf, n);
    reply = decoder.next();
  }
  EXPECT_EQ(reply->header.type, FrameType::ErrorReply);
  EXPECT_EQ(decode_wire_error(reply->payload).code, WireErrorCode::Malformed);
}

TEST(NetServer, StopIsIdempotentAndRefusesNewWork) {
  Rig rig;
  EXPECT_TRUE(
      rig.client->predict(predict_request(dataset().samples[0].counters))
          .ok());
  rig.server.stop();
  rig.server.stop();
  EXPECT_FALSE(rig.server.running());
  // New RPCs fail with a typed transport error once retries are exhausted.
  ClientOptions copt;
  copt.port = rig.server.port();
  copt.retry.max_attempts = 2;
  copt.retry.initial_backoff = Duration::milliseconds(1.0);
  Client late(copt);
  EXPECT_THROW(late.ping(), ConnectionError);
}

TEST(NetServer, UnexpectedFrameTypeKillsOnlyThatConnection) {
  Rig rig;
  const serve::Request request = predict_request(dataset().samples[0].counters);
  EXPECT_TRUE(rig.client->predict(request).ok());
  // A client-bound frame type arriving at the server is a protocol
  // violation: that connection is dropped, every other one is untouched.
  Socket raw = Socket::connect("127.0.0.1", rig.server.port());
  const std::vector<std::uint8_t> bad =
      encode_frame(FrameType::Pong, encode_ping(1));  // server-invalid type
  raw.write_all(bad.data(), bad.size());
  std::uint8_t buf[1024];
  while (true) {
    if (!raw.wait_readable(5000)) break;
    if (raw.read_some(buf, sizeof buf) == 0) break;  // dropped, as expected
  }
  // The pooled client connection was untouched throughout.
  EXPECT_TRUE(rig.client->predict(request).ok());
  EXPECT_GE(rig.server.stats().protocol_errors, 1u);
}

TEST(NetServer, ConnectionLimitAnswersTypedRefusal) {
  ServerOptions sopt;
  sopt.max_connections = 1;
  Rig rig({}, sopt);
  rig.client->ping();  // occupies the single slot

  Socket second = Socket::connect("127.0.0.1", rig.server.port());
  FrameDecoder decoder;
  std::uint8_t buf[1024];
  std::optional<Frame> reply;
  while (!reply.has_value()) {
    ASSERT_TRUE(second.wait_readable(5000));
    const std::size_t n = second.read_some(buf, sizeof buf);
    ASSERT_GT(n, 0u);
    decoder.feed(buf, n);
    reply = decoder.next();
  }
  EXPECT_EQ(reply->header.type, FrameType::ErrorReply);
  EXPECT_EQ(rig.server.stats().connections_refused, 1u);
  // The occupant is unaffected.
  rig.client->ping();
}

TEST(NetServer, HealthRpcObservesBackendState) {
  serve::ServerOptions bopt;
  bopt.worker_threads = 2;
  bopt.queue_capacity = 128;
  Rig rig(bopt);
  const HealthStatus h = rig.client->health();
  EXPECT_EQ(h.protocol_version, kProtocolVersion);
  EXPECT_TRUE(h.accepting);
  EXPECT_EQ(h.boards, 1u);
  EXPECT_EQ(h.queue_capacity, 128u);
  EXPECT_EQ(h.workers, 2u);
  // Health is answered inline by the transport, never bridged through the
  // prediction queue.
  EXPECT_EQ(rig.server.stats().requests_bridged, 0u);

  rig.backend.shutdown();
  EXPECT_FALSE(rig.client->health().accepting);
}

TEST(NetServer, ClientPoolReadoptsRestartedServer) {
  // S2 regression: a pooled connection must notice its server died and
  // was replaced (same port, new process in spirit) and silently redial
  // instead of failing the next RPC on a dead FD.
  Rig rig;
  const serve::Request request = predict_request(dataset().samples[0].counters);
  const serve::Response before = rig.client->predict(request);
  ASSERT_TRUE(before.ok());

  const std::uint16_t port = rig.server.port();
  rig.server.stop();
  ServerOptions sopt;
  sopt.port = port;  // SO_REUSEADDR: the replacement binds the same port
  Server reborn(rig.backend, sopt);
  ASSERT_EQ(reborn.port(), port);

  const serve::Response after = rig.client->predict(request);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.power_watts, before.power_watts);
  const ClientStats cs = rig.client->stats();
  // The dead pooled socket was evicted or redialed, never reused broken.
  EXPECT_GE(cs.stale_evictions + cs.reconnects + cs.transport_retries, 1u);
}

TEST(NetServer, ClientIdleTimeoutEvictsPooledConnection) {
  Rig rig;
  ClientOptions copt;
  copt.port = rig.server.port();
  copt.idle_timeout_ms = 1;
  Client impatient(copt);
  impatient.ping();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  impatient.ping();  // pooled socket is past its idle deadline -> redial
  EXPECT_GE(impatient.stats().stale_evictions, 1u);
}

TEST(NetServer, BackendShutdownAnswersShuttingDown) {
  Rig rig;
  rig.client->ping();
  rig.backend.shutdown();
  try {
    rig.client->predict(predict_request(dataset().samples[0].counters));
    FAIL() << "expected an error after backend shutdown";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), WireErrorCode::ShuttingDown);
  } catch (const ConnectionError&) {
    // Also acceptable: the server closed the connection right after the
    // ErrorReply and the race saw EOF first, exhausting retries.
  }
}

}  // namespace
}  // namespace gppm::net
