#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "common/error.hpp"

namespace gppm::net {
namespace {

TEST(NetWire, Crc32KnownAnswers) {
  // The canonical IEEE CRC-32 check value.
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(check, sizeof check), 0xcbf43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0x00000000u);
  const std::uint8_t zero[4] = {0, 0, 0, 0};
  EXPECT_EQ(crc32(zero, sizeof zero), 0x2144df1cu);
}

TEST(NetWire, LittleEndianLayoutPinned) {
  WireWriter w;
  w.u16(0x1122);
  w.u32(0x33445566u);
  w.u64(0x778899aabbccddeeull);
  const std::vector<std::uint8_t> expected = {
      0x22, 0x11,                                      // u16
      0x66, 0x55, 0x44, 0x33,                          // u32
      0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 0x77,  // u64
  };
  EXPECT_EQ(w.data(), expected);
}

TEST(NetWire, ScalarRoundTrip) {
  WireWriter w;
  w.u8(0xab);
  w.u16(0xffff);
  w.u32(0);
  w.u64(std::numeric_limits<std::uint64_t>::max());
  w.f64(0.1);
  w.f64(-0.0);
  w.f64(5e-324);  // smallest subnormal
  w.str("hello wire");
  w.str("");

  WireReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xffff);
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_EQ(r.u64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(r.f64(), 0.1);
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.f64(), 5e-324);
  EXPECT_EQ(r.str(), "hello wire");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
  EXPECT_NO_THROW(r.expect_done("test"));
}

TEST(NetWire, NanRoundTripsBitExactly) {
  const double quiet = std::numeric_limits<double>::quiet_NaN();
  WireWriter w;
  w.f64(quiet);
  WireReader r(w.data());
  const double back = r.f64();
  std::uint64_t a = 0, b = 0;
  std::memcpy(&a, &quiet, sizeof a);
  std::memcpy(&b, &back, sizeof b);
  EXPECT_EQ(a, b);
}

TEST(NetWire, ReaderOverrunIsTypedError) {
  WireWriter w;
  w.u16(7);
  WireReader r(w.data());
  EXPECT_EQ(r.u16(), 7);
  EXPECT_THROW(r.u8(), ProtocolError);
  WireReader r2(w.data());
  EXPECT_THROW(r2.u32(), ProtocolError);
}

TEST(NetWire, TrailingGarbageIsTypedError) {
  WireWriter w;
  w.u32(1);
  w.u8(0);
  WireReader r(w.data());
  r.u32();
  EXPECT_FALSE(r.done());
  EXPECT_THROW(r.expect_done("payload"), ProtocolError);
}

TEST(NetWire, StringLengthPrefixIsBounded) {
  // A declared string length past the payload end must throw, not read
  // out of bounds.
  WireWriter w;
  w.u16(1000);  // claims 1000 bytes follow
  w.u8('x');    // only one does
  WireReader r(w.data());
  EXPECT_THROW(r.str(), ProtocolError);

  // Encode side: oversized strings are an encode bug, not a wire error.
  WireWriter big;
  EXPECT_THROW(big.str(std::string(kMaxWireString + 1, 'a')), Error);
}

TEST(NetWire, ErrorTaxonomy) {
  // ProtocolError is a NetError is a gppm::Error — and is NOT transient:
  // the retry layer must not absorb bad bytes.
  try {
    throw ProtocolError("boom");
  } catch (const NetError& e) {
    EXPECT_NE(std::string(e.what()).find("protocol error"), std::string::npos);
  }
  EXPECT_THROW(throw ProtocolError("x"), Error);
  bool transient = false;
  try {
    throw ProtocolError("x");
  } catch (const TransientError&) {
    transient = true;
  } catch (const Error&) {
  }
  EXPECT_FALSE(transient);
}

}  // namespace
}  // namespace gppm::net
