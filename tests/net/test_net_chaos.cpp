// Network chaos: a client whose every connect/read/write passes through a
// seeded FaultInjector running the `net` site family (connect refusals,
// short reads, mid-frame resets) against a healthy server.  The contract
// under test is the headline robustness claim of the RPC layer: the retry
// path converges, and no injected transport fault ever surfaces as a
// *wrong* prediction — every answer that comes back is bit-identical to
// the in-process one.
#include <gtest/gtest.h>

#include <vector>

#include "core/dataset.hpp"
#include "fault/injector.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

namespace gppm::net {
namespace {

const core::Dataset& dataset() {
  static const core::Dataset ds = core::build_dataset(sim::GpuModel::GTX460);
  return ds;
}

serve::Request predict_request(std::size_t sample_index) {
  serve::Request r;
  r.kind = serve::RequestKind::Predict;
  r.gpu = sim::GpuModel::GTX460;
  r.counters = dataset().samples[sample_index].counters;
  return r;
}

TEST(NetChaos, ClientRetriesConvergeWithZeroDivergentPredictions) {
  serve::PredictionServer backend;
  backend.load_models(
      core::UnifiedModel::fit(dataset(), core::TargetKind::Power),
      core::UnifiedModel::fit(dataset(), core::TargetKind::ExecTime));
  Server server(backend);

  // Expected answers, in-process, before any chaos.
  constexpr std::size_t kSamples = 6;
  std::vector<serve::Response> expected;
  for (std::size_t i = 0; i < kSamples; ++i) {
    expected.push_back(backend.submit(predict_request(i)).get());
    ASSERT_TRUE(expected.back().ok());
  }

  fault::FaultInjector injector(fault::FaultPlan::net_profile(), 20260807);
  ClientOptions copt;
  copt.port = server.port();
  copt.retry.max_attempts = 10;
  copt.retry.initial_backoff = Duration::milliseconds(0.1);
  copt.retry.max_backoff = Duration::milliseconds(5.0);
  Client client(copt, &injector);

  int answered = 0, divergent = 0, gave_up = 0;
  for (int iter = 0; iter < 150; ++iter) {
    const std::size_t i = static_cast<std::size_t>(iter) % kSamples;
    try {
      const serve::Response r = client.predict(predict_request(i));
      ASSERT_TRUE(r.ok()) << r.error;
      ++answered;
      if (r.power_watts != expected[i].power_watts ||
          r.time_seconds != expected[i].time_seconds ||
          r.energy_joules != expected[i].energy_joules) {
        ++divergent;
      }
    } catch (const ConnectionError&) {
      // Ten consecutive injected faults: statistically possible, counted,
      // must stay rare.
      ++gave_up;
    }
  }

  EXPECT_EQ(divergent, 0);
  EXPECT_GT(answered, 100);
  EXPECT_LT(gave_up, 25);

  // The chaos actually happened: sites fired and the client retried.
  EXPECT_GT(injector.total_fires(), 0u);
  const auto& stats = injector.stats();
  EXPECT_GT(stats.at("net.short_read").fires, 0u);
  EXPECT_GT(client.stats().transport_retries, 0u);
  EXPECT_GT(client.stats().reconnects, 0u);

  // And the server took no protocol damage from any of it: a reset mid
  // frame is a dropped connection, never a mis-parsed one.  (Short reads
  // are client-side here, but resets truncate client->server writes, which
  // the server sees as clean EOFs mid-frame.)
  EXPECT_EQ(server.stats().protocol_errors, 0u);
}

TEST(NetChaos, PipelinedBatchesConvergeUnderChaos) {
  // The batch path resends the whole pipeline on a fresh connection after
  // a transport fault; every batch that returns must be complete, in
  // order, and bit-identical — a mid-batch reset must never surface as a
  // short or shuffled result.
  serve::PredictionServer backend;
  backend.load_models(
      core::UnifiedModel::fit(dataset(), core::TargetKind::Power),
      core::UnifiedModel::fit(dataset(), core::TargetKind::ExecTime));
  Server server(backend);

  constexpr std::size_t kSamples = 6;
  std::vector<serve::Request> batch;
  std::vector<serve::Response> expected;
  for (std::size_t i = 0; i < kSamples; ++i) {
    batch.push_back(predict_request(i));
    expected.push_back(backend.submit(batch.back()).get());
  }

  fault::FaultInjector injector(fault::FaultPlan::net_profile(), 4242);
  ClientOptions copt;
  copt.port = server.port();
  copt.retry.max_attempts = 10;
  copt.retry.initial_backoff = Duration::milliseconds(0.1);
  copt.retry.max_backoff = Duration::milliseconds(5.0);
  Client client(copt, &injector);

  int completed = 0, divergent = 0, gave_up = 0;
  for (int round = 0; round < 40; ++round) {
    try {
      const std::vector<serve::Response> replies = client.predict_batch(batch);
      ASSERT_EQ(replies.size(), batch.size());
      ++completed;
      for (std::size_t i = 0; i < replies.size(); ++i) {
        if (replies[i].power_watts != expected[i].power_watts ||
            replies[i].time_seconds != expected[i].time_seconds) {
          ++divergent;
        }
      }
    } catch (const ConnectionError&) {
      ++gave_up;
    }
  }
  EXPECT_EQ(divergent, 0);
  EXPECT_GT(completed, 25);
  EXPECT_GT(injector.total_fires(), 0u);
}

TEST(NetChaos, PoolEvictsBrokenSocketsInsteadOfReusingThem) {
  // S2 regression: an injected mid-frame reset leaves a dead FD in the
  // client pool.  The next RPC on that slot must detect the carcass
  // (readable-at-idle = EOF or stray bytes), evict it and redial — never
  // fail or mis-answer on the broken socket.
  serve::PredictionServer backend;
  backend.load_models(
      core::UnifiedModel::fit(dataset(), core::TargetKind::Power),
      core::UnifiedModel::fit(dataset(), core::TargetKind::ExecTime));
  Server server(backend);
  const serve::Response expected = backend.submit(predict_request(0)).get();

  fault::FaultInjector injector(
      fault::FaultPlan::parse_string("net.reset p=0.10 burst=1\n"), 11);
  ClientOptions copt;
  copt.port = server.port();
  copt.retry.max_attempts = 10;
  copt.retry.initial_backoff = Duration::milliseconds(0.1);
  copt.retry.max_backoff = Duration::milliseconds(5.0);
  Client client(copt, &injector);

  int divergent = 0;
  for (int i = 0; i < 120; ++i) {
    const serve::Response r = client.predict(predict_request(0));
    ASSERT_TRUE(r.ok()) << r.error;
    if (r.power_watts != expected.power_watts) ++divergent;
  }
  EXPECT_EQ(divergent, 0);
  EXPECT_GT(injector.stats().at("net.reset").fires, 0u);
  // Every fired reset surfaced as an evicted/redialed pool slot, not a
  // reused broken one.
  EXPECT_GT(client.stats().reconnects + client.stats().stale_evictions, 0u);
}

TEST(NetChaos, ConnectRefusalsAloneAreAbsorbed) {
  serve::PredictionServer backend;
  backend.load_models(
      core::UnifiedModel::fit(dataset(), core::TargetKind::Power),
      core::UnifiedModel::fit(dataset(), core::TargetKind::ExecTime));
  Server server(backend);

  fault::FaultInjector injector(
      fault::FaultPlan::parse_string("net.connect p=0.5 burst=1\n"), 7);
  ClientOptions copt;
  copt.port = server.port();
  copt.retry.max_attempts = 12;
  copt.retry.initial_backoff = Duration::milliseconds(0.1);
  Client client(copt, &injector);

  // The client's pooled connection is lazy and persistent, so connect-only
  // faults are consulted just at dial time; close() between RPCs forces a
  // fresh dial each round.  p=0.5 over 12 attempts: failure odds ~2^-12
  // per RPC; with the pinned seed this sequence completes deterministically.
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(client.predict(predict_request(0)).ok());
    client.close();
  }
  EXPECT_GT(injector.stats().at("net.connect").fires, 0u);
}

}  // namespace
}  // namespace gppm::net
