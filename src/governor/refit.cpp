#include "governor/refit.hpp"

#include <utility>

#include "common/error.hpp"
#include "core/features.hpp"

namespace gppm::governor {

namespace {

stats::StreamingOlsOptions to_ols_options(const RefitOptions& options) {
  stats::StreamingOlsOptions ols;
  ols.window = options.window;
  ols.ridge = options.ridge;
  return ols;
}

}  // namespace

ModelRefitter::ModelRefitter(const core::Dataset& seed_corpus,
                             core::UnifiedModel power, core::UnifiedModel perf,
                             RefitOptions options)
    : power_(std::move(power)),
      perf_(std::move(perf)),
      power_ols_(power_.variables().size() + 1, to_ols_options(options)),
      perf_ols_(perf_.variables().size() + 1, to_ols_options(options)) {
  GPPM_CHECK(power_.target() == core::TargetKind::Power,
             "refitter's first model must target power");
  GPPM_CHECK(perf_.target() == core::TargetKind::ExecTime,
             "refitter's second model must target exectime");
  GPPM_CHECK(power_.gpu() == perf_.gpu(), "refitter models for different boards");
  GPPM_CHECK(seed_corpus.model == power_.gpu(),
             "seed corpus board != model board");

  // Replay the offline training rows into the permanent prior: one row per
  // (sample, measured pair), built through the same feature path the
  // models predict with.
  const std::size_t rows = seed_corpus.row_count();
  linalg::Matrix power_x(rows, power_ols_.dim());
  linalg::Matrix perf_x(rows, perf_ols_.dim());
  linalg::Vector power_y(rows), perf_y(rows);
  std::size_t r = 0;
  for (const core::Sample& s : seed_corpus.samples) {
    for (const core::Measurement& m : s.runs) {
      const linalg::Vector pr = feature_row(power_, s.counters, m.pair);
      const linalg::Vector tr = feature_row(perf_, s.counters, m.pair);
      for (std::size_t c = 0; c < pr.size(); ++c) power_x(r, c) = pr[c];
      for (std::size_t c = 0; c < tr.size(); ++c) perf_x(r, c) = tr[c];
      power_y[r] = m.avg_power.as_watts();
      perf_y[r] = m.exec_time.as_seconds();
      ++r;
    }
  }
  GPPM_ASSERT(r == rows);
  power_ols_.seed(power_x, power_y);
  perf_ols_.seed(perf_x, perf_y);
  seed_rebuilds_ = power_ols_.rebuilds() + perf_ols_.rebuilds();
}

linalg::Vector ModelRefitter::feature_row(
    const core::UnifiedModel& model, const profiler::ProfileResult& counters,
    sim::FrequencyPair pair) const {
  const sim::DeviceSpec& spec = sim::device_spec(model.gpu());
  const core::UnifiedModel::Parts parts = model.parts();
  linalg::Vector row(parts.variables.size() + 1);
  row[0] = 1.0;  // intercept column
  for (std::size_t i = 0; i < parts.variables.size(); ++i) {
    const std::size_t idx = parts.counter_indices[i];
    profiler::CounterReading reading;
    if (idx < counters.counters.size()) {
      reading = counters.counters[idx];
      GPPM_CHECK(reading.name == parts.variables[i].counter,
                 "counter order mismatch: expected " +
                     parts.variables[i].counter);
    } else {
      reading = core::baseline_reading(parts.variables[i].klass);
    }
    row[i + 1] = core::feature_value(reading, pair, spec, model.target(),
                                     model.scaling());
  }
  return row;
}

void ModelRefitter::observe(const profiler::ProfileResult& counters,
                            sim::FrequencyPair pair, Power measured_power,
                            Duration measured_time) {
  power_ols_.observe(feature_row(power_, counters, pair),
                     measured_power.as_watts());
  perf_ols_.observe(feature_row(perf_, counters, pair),
                    measured_time.as_seconds());
}

core::UnifiedModel ModelRefitter::with_coefficients(
    const core::UnifiedModel& model, const linalg::Vector& beta) {
  core::UnifiedModel::Parts parts = model.parts();
  GPPM_ASSERT(beta.size() == parts.variables.size() + 1);
  parts.intercept = beta[0];
  for (std::size_t i = 0; i < parts.variables.size(); ++i) {
    parts.variables[i].coefficient = beta[i + 1];
  }
  return core::UnifiedModel::from_parts(std::move(parts));
}

void ModelRefitter::refit() {
  power_ = with_coefficients(power_, power_ols_.coefficients());
  perf_ = with_coefficients(perf_, perf_ols_.coefficients());
  ++refits_;
}

int ModelRefitter::rebuild_count() const {
  return power_ols_.rebuilds() + perf_ols_.rebuilds() - seed_rebuilds_;
}

}  // namespace gppm::governor
