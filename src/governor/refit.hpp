// Online model refitting for the DVFS governor.
//
// The offline pipeline selects variables once (forward selection over the
// corpus) and fits their coefficients once.  The governor keeps the
// *selected variable sets* fixed — re-running selection online would make
// decisions non-stationary for no benefit at these dimensions — but
// re-estimates the coefficients continuously from the phases it actually
// measured, through a sliding-window stats::StreamingOls per target seeded
// with the offline corpus as a permanent prior.  As the live workload mix
// drifts away from the corpus (off-ladder input scales, counters collected
// at non-default clocks), the window rows pull the coefficients toward the
// governor's own operating conditions while the prior keeps the problem
// conditioned when the window is short.
#pragma once

#include <cstdint>

#include "core/unified_model.hpp"
#include "stats/streaming_ols.hpp"

namespace gppm::governor {

struct RefitOptions {
  /// Streamed (phase, measurement) observations retained per target.
  std::size_t window = 256;
  /// Prior ridge handed to stats::StreamingOls.
  double ridge = 1e-6;
};

/// Maintains online-refitted copies of one board's power and performance
/// models.  Feature rows are built exactly as UnifiedModel::predict
/// consumes them (selected catalog counters by index, baseline
/// pseudo-features past the catalog, feature_value scaling per target), so
/// a refitted model is interchangeable with the offline fit everywhere.
class ModelRefitter {
 public:
  /// `seed_corpus` replays the offline training rows into the prior; the
  /// two models fix the variable sets and provide the starting
  /// coefficients.  Power must target Power, perf ExecTime, same board.
  ModelRefitter(const core::Dataset& seed_corpus, core::UnifiedModel power,
                core::UnifiedModel perf, RefitOptions options = {});

  /// Stream one measured phase: the counters it was profiled with, the
  /// pair it ran at, and what the instruments reported.
  void observe(const profiler::ProfileResult& counters,
               sim::FrequencyPair pair, Power measured_power,
               Duration measured_time);

  /// Re-solve both models' coefficients from prior + window and swap the
  /// refitted models in.  Cheap (two k x k triangular solve pairs).
  void refit();

  /// Current models (refitted after the last refit() call; the offline
  /// seeds before the first).
  const core::UnifiedModel& power_model() const { return power_; }
  const core::UnifiedModel& perf_model() const { return perf_; }

  std::size_t window_size() const { return power_ols_.window_size(); }
  std::uint64_t observation_count() const { return power_ols_.observed(); }
  int refit_count() const { return refits_; }
  /// Cholesky rebuilds forced by downdate breakdown (both targets).
  int rebuild_count() const;

 private:
  linalg::Vector feature_row(const core::UnifiedModel& model,
                             const profiler::ProfileResult& counters,
                             sim::FrequencyPair pair) const;
  static core::UnifiedModel with_coefficients(const core::UnifiedModel& model,
                                              const linalg::Vector& beta);

  core::UnifiedModel power_;
  core::UnifiedModel perf_;
  stats::StreamingOls power_ols_;
  stats::StreamingOls perf_ols_;
  int refits_ = 0;
  int seed_rebuilds_ = 0;  ///< rebuilds consumed by construction-time seeding
};

}  // namespace gppm::governor
