// The online energy-optimal DVFS governor — the paper's "dynamic runtime
// management of power and performance" future work, closed into a loop.
//
// Per phase, the governor consumes the live counter profile, queries the
// (online-refitted) unified models for every TABLE III (core, mem) pair,
// and picks the operating point under its policy — energy sweet spot, EDP,
// or fastest-under-cap — with the same hysteresis discipline as the
// offline core::DvfsGovernor (a switch costs a VBIOS reboot; marginal
// predicted gains are not worth one).  MinimumEnergy optionally carries a
// max-slowdown constraint: pairs whose predicted time exceeds the bound
// relative to the predicted default-pair time are excluded, which is how a
// latency-sensitive deployment states "save energy, but never more than
// X % slower".
//
// Every measured phase is streamed back through governor::ModelRefitter;
// every `refit_interval` observations the coefficients are re-solved from
// the sliding window (incremental Cholesky, see stats::StreamingOls), so
// the decision models track workload drift instead of staying frozen at
// the offline corpus.
//
// Instrumented under governor.* (decisions, switches, refits, rebuilds,
// window gauge) with an obs span per decision and per refit.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/governor.hpp"
#include "governor/refit.hpp"

namespace gppm::governor {

struct OnlineGovernorOptions {
  /// Policy, power cap and hysteresis threshold (same semantics as the
  /// offline core::DvfsGovernor).
  core::GovernorPolicy policy = core::GovernorPolicy::MinimumEnergy;
  Power power_cap = Power::watts(200.0);
  double switch_threshold = 0.02;
  /// MinimumEnergy only: exclude pairs predicted slower than this factor
  /// times the predicted default-pair time (1.15 = at most 15 % slower).
  /// 0 disables the constraint.
  double max_slowdown = 0.0;
  /// Re-solve model coefficients every this many observations (0 = never
  /// refit; the models stay at the offline seed).
  std::size_t refit_interval = 8;
  RefitOptions refit;
  /// Learn multiplicative prediction-bias corrections from measured
  /// feedback, keyed by (phase key, pair) with a per-pair fallback for
  /// phases never measured at that pair.  This is what lets the governor
  /// survive boards whose energy margins are thinner than the model error
  /// (Tesla): the first mispredicted down-clock is also the last.
  bool feedback = true;
  /// EMA smoothing for the bias corrections (1 = latest ratio wins).
  double feedback_alpha = 0.5;
  /// Export governor.* metrics and decision/refit spans.
  bool instrument = true;
};

/// Multiplicative measured/predicted correction for one (phase, pair),
/// plus the measured pair-over-default scaling curve.  The curve is the
/// fallback when the linear model extrapolates a pair into its clamp
/// floor — a floored prediction carries no signal for a ratio to correct,
/// but measured(pair) = measured(default) x rel still does.
struct FeedbackBias {
  double power = 1.0;
  double time = 1.0;
  int samples = 0;
  double rel_power = 1.0;  ///< measured power(pair) / power(default)
  double rel_time = 1.0;   ///< measured time(pair) / time(default)
  int rel_samples = 0;
};

/// One logged decision, in order.  The log is what determinism tests pin:
/// same seed corpus, same phase stream, same options => identical logs.
struct Decision {
  sim::FrequencyPair pair;
  bool switched = false;
  double predicted_power_watts = 0.0;
  double predicted_time_seconds = 0.0;
  double predicted_energy_joules = 0.0;
};

class OnlineGovernor {
 public:
  /// Seeds the refit engine with the offline corpus and takes the offline
  /// models as the starting point (power must target Power, perf
  /// ExecTime, same board — validated by the refitter).
  OnlineGovernor(const core::Dataset& seed_corpus, core::UnifiedModel power,
                 core::UnifiedModel perf, OnlineGovernorOptions options = {});

  /// Decide the pair for a phase from its counter profile.  Applies
  /// hysteresis against the current pair and appends to the decision log.
  /// `phase_key` identifies the phase family (e.g. benchmark name) for the
  /// feedback bias table; empty falls back to per-pair corrections only.
  sim::FrequencyPair decide(const profiler::ProfileResult& phase_counters,
                            const std::string& phase_key = {});

  /// Feed back what the decided phase actually measured; updates the
  /// feedback bias table and triggers a refit every
  /// options.refit_interval observations.
  void observe(const profiler::ProfileResult& phase_counters,
               sim::FrequencyPair pair, Power measured_power,
               Duration measured_time, const std::string& phase_key = {});

  /// The correction decide() applies for (phase_key, pair): the entry
  /// under exactly that key if one was ever measured, else identity.  The
  /// empty key holds the cross-phase per-pair aggregate (what keyless
  /// decide() calls use).
  FeedbackBias feedback_bias(const std::string& phase_key,
                             sim::FrequencyPair pair) const;

  /// Objective value of a prediction under the configured policy
  /// (identical to core::DvfsGovernor::objective).
  double objective(const core::PairPrediction& prediction) const;

  sim::FrequencyPair current_pair() const { return current_; }
  int switch_count() const { return switches_; }
  int decision_count() const { return static_cast<int>(log_.size()); }
  int refit_count() const { return refitter_.refit_count(); }
  const std::vector<Decision>& decision_log() const { return log_; }
  const OnlineGovernorOptions& options() const { return options_; }
  const core::UnifiedModel& power_model() const {
    return refitter_.power_model();
  }
  const core::UnifiedModel& perf_model() const {
    return refitter_.perf_model();
  }
  const ModelRefitter& refitter() const { return refitter_; }

  /// Reset pair state and the decision log (the refit window is kept — the
  /// learned coefficients remain valid across workload restarts).
  void reset(sim::FrequencyPair start = sim::kDefaultPair);

 private:
  void update_bias(FeedbackBias& bias, double power_ratio,
                   double time_ratio) const;
  void update_rel(FeedbackBias& bias, double rel_power,
                  double rel_time) const;
  /// Fold one measured (power, time) at `pair` into the bias table, under
  /// `phase_key` and the cross-phase aggregate.
  void seed_bias(const std::string& phase_key,
                 const profiler::ProfileResult& counters,
                 sim::FrequencyPair pair, Power measured_power,
                 Duration measured_time);

  OnlineGovernorOptions options_;
  ModelRefitter refitter_;
  sim::FrequencyPair current_ = sim::kDefaultPair;
  int switches_ = 0;
  std::vector<Decision> log_;
  /// Feedback corrections: (phase key, pair) plus a per-pair aggregate
  /// under the empty key.  Kept across reset() like the refit window.
  std::map<std::pair<std::string, int>, FeedbackBias> bias_;
};

}  // namespace gppm::governor
