#include "governor/loop.hpp"

#include <utility>

#include "common/error.hpp"

namespace gppm::governor {

namespace {

/// Re-express a profile collected at arbitrary clocks on the models'
/// training basis.  The corpus collects counters at the default (H-H)
/// pair, so per-second rates are "events per second of H-H run time"; a
/// governor profiling at its *current* clocks sees the same totals over a
/// different run time, which deflates every rate at low clocks and biases
/// the power model's activity terms against the (unscaled) baseline
/// terms.  Totals are clock-invariant, and the performance model consumes
/// only totals — so its predicted default-pair run time reconstructs the
/// training-basis rate: per_second = total / T_pred(H-H).
profiler::ProfileResult normalize_to_default_basis(
    const core::UnifiedModel& perf, profiler::ProfileResult counters) {
  const double t_hh =
      std::max(perf.predict(counters, sim::kDefaultPair), 1e-3);
  for (profiler::CounterReading& r : counters.counters) {
    r.per_second = r.total / t_hh;
  }
  counters.run_time = Duration::seconds(t_hh);
  return counters;
}

}  // namespace

GovernorLoop::GovernorLoop(sim::GpuModel board,
                           const core::Dataset& seed_corpus,
                           core::UnifiedModel power, core::UnifiedModel perf,
                           LoopOptions options)
    : options_(options),
      runner_(board, options.runner),
      controller_(runner_.gpu()),
      profiler_(options.profiler_seed),
      governor_(seed_corpus, std::move(power), std::move(perf),
                options.governor) {
  GPPM_CHECK(seed_corpus.model == board, "seed corpus board != loop board");
  governor_.reset(controller_.current_pair());
}

LoopResult GovernorLoop::run(const std::vector<workload::Phase>& phases) {
  LoopResult result;
  const int reboots_before = controller_.reboot_count();
  const int refits_before = governor_.refit_count();
  const std::vector<sim::FrequencyPair> all_pairs =
      controller_.available_pairs();

  for (const workload::Phase& phase : phases) {
    if (!profiler::CudaProfiler::supports(phase.benchmark)) continue;
    const sim::RunProfile profile = phase.profile();

    // 1. Profile at the clocks the board is at right now, then re-express
    //    the rates on the models' (H-H) training basis.
    const profiler::ProfileResult counters = normalize_to_default_basis(
        governor_.perf_model(), profiler_.collect(runner_.gpu(), profile));

    // 2-3. Decide and apply.  Same-pair decisions are a controller no-op.
    const sim::FrequencyPair pick =
        governor_.decide(counters, phase.benchmark);
    controller_.set_pair(pick);

    PhaseOutcome outcome;
    outcome.phase = phase;
    outcome.pair = pick;

    // Baselines first: measure_profile leaves the board at the pair it
    // measured, so measuring the governed point last parks the clocks
    // where the controller thinks they are for the next phase's profile.
    if (options_.measure_baselines) {
      const core::Measurement at_default =
          runner_.measure_profile(profile, sim::kDefaultPair);
      outcome.default_energy_joules = at_default.energy.as_joules();
      outcome.default_time_seconds = at_default.exec_time.as_seconds();
      outcome.oracle_energy_joules = at_default.energy.as_joules();
      outcome.oracle_pair = sim::kDefaultPair;
      for (sim::FrequencyPair pair : all_pairs) {
        const core::Measurement m = runner_.measure_profile(profile, pair);
        if (m.energy.as_joules() < outcome.oracle_energy_joules) {
          outcome.oracle_energy_joules = m.energy.as_joules();
          outcome.oracle_pair = pair;
        }
      }
    }

    // 4. Measure the governed phase.
    outcome.measured = runner_.measure_profile(profile, pick);

    // 5. Close the loop: stream the measured triple into the refit window.
    governor_.observe(counters, pick, outcome.measured.avg_power,
                      outcome.measured.exec_time, phase.benchmark);

    result.governed_energy_joules += outcome.measured.energy.as_joules();
    result.governed_time_seconds += outcome.measured.exec_time.as_seconds();
    result.default_energy_joules += outcome.default_energy_joules;
    result.default_time_seconds += outcome.default_time_seconds;
    result.oracle_energy_joules += outcome.oracle_energy_joules;
    result.phases.push_back(std::move(outcome));
  }

  result.switches = governor_.switch_count();
  result.reboots = controller_.reboot_count() - reboots_before;
  result.refits = governor_.refit_count() - refits_before;
  return result;
}

}  // namespace gppm::governor
