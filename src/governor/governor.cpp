#include "governor/governor.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace gppm::governor {

namespace {

/// Dense key for a (core, mem) pair inside the bias table.
int pair_key(sim::FrequencyPair pair) {
  return static_cast<int>(pair.core) * 8 + static_cast<int>(pair.mem);
}

struct GovernorObs {
  obs::Counter& decisions;
  obs::Counter& switches;
  obs::Counter& holds;  ///< decisions resolved by hysteresis to "stay"
  obs::Counter& refits;
  obs::Counter& rebuilds;
  obs::Gauge& window;
};

GovernorObs& governor_obs() {
  obs::Registry& reg = obs::Registry::instance();
  static GovernorObs instruments{
      reg.counter("governor.decisions"),
      reg.counter("governor.switches"),
      reg.counter("governor.holds"),
      reg.counter("governor.refits"),
      reg.counter("governor.rebuilds"),
      reg.gauge("governor.window"),
  };
  return instruments;
}

}  // namespace

OnlineGovernor::OnlineGovernor(const core::Dataset& seed_corpus,
                               core::UnifiedModel power,
                               core::UnifiedModel perf,
                               OnlineGovernorOptions options)
    : options_(options),
      refitter_(seed_corpus, std::move(power), std::move(perf),
                options.refit) {
  GPPM_CHECK(options_.switch_threshold >= 0.0,
             "governor switch threshold must be >= 0");
  GPPM_CHECK(options_.max_slowdown == 0.0 || options_.max_slowdown >= 1.0,
             "governor max_slowdown must be 0 (off) or >= 1");

  // Seed the feedback table with the training residuals: the corpus holds
  // measured (power, time) at every pair, so the initial biases encode
  // exactly where the linear models mispredict each benchmark.  On boards
  // whose energy margins are thinner than the model error (Tesla: ~3 %
  // margin vs ~9 % median power error) this is what makes the very first
  // decisions safe — the models alone cannot rank pairs there, model +
  // residual correction can.  Online observations then EMA these as the
  // workload drifts from the corpus.
  if (options_.feedback) {
    for (const core::Sample& sample : seed_corpus.samples) {
      const core::Measurement* at_default = nullptr;
      for (const core::Measurement& run : sample.runs) {
        if (run.pair == sim::kDefaultPair) at_default = &run;
      }
      for (const core::Measurement& run : sample.runs) {
        seed_bias(sample.benchmark, sample.counters, run.pair,
                  run.avg_power, run.exec_time);
        if (at_default == nullptr) continue;
        const double rel_power =
            run.avg_power.as_watts() /
            std::max(1.0, at_default->avg_power.as_watts());
        const double rel_time =
            run.exec_time.as_seconds() /
            std::max(1e-3, at_default->exec_time.as_seconds());
        const int pk = pair_key(run.pair);
        update_rel(bias_[{sample.benchmark, pk}], rel_power, rel_time);
        update_rel(bias_[{std::string(), pk}], rel_power, rel_time);
      }
    }
  }
}

void OnlineGovernor::seed_bias(const std::string& phase_key,
                               const profiler::ProfileResult& counters,
                               sim::FrequencyPair pair, Power measured_power,
                               Duration measured_time) {
  const double pred_power =
      std::max(1.0, refitter_.power_model().predict(counters, pair));
  const double pred_time =
      std::max(1e-3, refitter_.perf_model().predict(counters, pair));
  // The clamp only guards against degenerate predictions (the 1 W / 1 ms
  // floors); it must stay wide enough to represent real mispredictions —
  // a memory-bound kernel at the low memory clock can run 10x past the
  // linear model's extrapolation, and truncating that ratio would defeat
  // the correction exactly where it matters most.
  const double power_ratio =
      std::clamp(measured_power.as_watts() / pred_power, 0.05, 20.0);
  const double time_ratio =
      std::clamp(measured_time.as_seconds() / pred_time, 0.05, 20.0);
  const int pk = pair_key(pair);
  if (!phase_key.empty()) {
    update_bias(bias_[{phase_key, pk}], power_ratio, time_ratio);
  }
  update_bias(bias_[{std::string(), pk}], power_ratio, time_ratio);
}

double OnlineGovernor::objective(const core::PairPrediction& p) const {
  switch (options_.policy) {
    case core::GovernorPolicy::MinimumEnergy:
      return p.predicted_energy_joules;
    case core::GovernorPolicy::MinimumEdp:
      return p.predicted_energy_joules * p.predicted_time_seconds;
    case core::GovernorPolicy::PowerCap:
      if (p.predicted_power_watts <= options_.power_cap.as_watts()) {
        return p.predicted_time_seconds;
      }
      return 1e12 + p.predicted_power_watts;
  }
  throw Error("unknown governor policy");
}

FeedbackBias OnlineGovernor::feedback_bias(const std::string& phase_key,
                                           sim::FrequencyPair pair) const {
  const auto it = bias_.find({phase_key, pair_key(pair)});
  return it != bias_.end() ? it->second : FeedbackBias{};
}

void OnlineGovernor::update_bias(FeedbackBias& bias, double power_ratio,
                                 double time_ratio) const {
  // First sample replaces the identity prior outright; later samples blend.
  const double alpha = bias.samples == 0 ? 1.0 : options_.feedback_alpha;
  bias.power = (1.0 - alpha) * bias.power + alpha * power_ratio;
  bias.time = (1.0 - alpha) * bias.time + alpha * time_ratio;
  ++bias.samples;
}

void OnlineGovernor::update_rel(FeedbackBias& bias, double rel_power,
                                double rel_time) const {
  const double alpha = bias.rel_samples == 0 ? 1.0 : options_.feedback_alpha;
  bias.rel_power = (1.0 - alpha) * bias.rel_power + alpha * rel_power;
  bias.rel_time = (1.0 - alpha) * bias.rel_time + alpha * rel_time;
  ++bias.rel_samples;
}

sim::FrequencyPair OnlineGovernor::decide(
    const profiler::ProfileResult& phase_counters,
    const std::string& phase_key) {
  obs::ObsSpan span("governor.decide");
  std::vector<core::PairPrediction> predictions = core::predict_all_pairs(
      refitter_.power_model(), refitter_.perf_model(), phase_counters);
  GPPM_CHECK(!predictions.empty(), "no configurable pairs");

  // Measured-feedback correction: rescale the raw model predictions by
  // what this same phase actually measured at the pair.  On thin-margin
  // boards the model error exceeds the energy margin, so uncorrected
  // predictions systematically overrate down-clocking; the bias table
  // converts each realized misprediction into a standing correction, so a
  // phase's first mispredicted down-clock is also its last.  Cross-phase
  // aggregates deliberately do NOT feed decisions for keyed phases:
  // prediction bias is workload-specific, and exporting one phase's
  // correction to another measurably degrades boards whose models are
  // already accurate.  (A keyless caller still gets the per-pair
  // aggregate — it is the best information available without identity.)
  if (options_.feedback) {
    const auto bias_of = [&](sim::FrequencyPair pair) -> const FeedbackBias* {
      const auto it =
          bias_.find({phase_key.empty() ? std::string() : phase_key,
                      pair_key(pair)});
      return it != bias_.end() ? &it->second : nullptr;
    };

    // Correct the default pair first: it anchors the scaling-curve
    // fallback, and (H-H) is always inside the training distribution so
    // its raw prediction never degenerates.
    double default_power = 0.0, default_time = 0.0;
    for (core::PairPrediction& p : predictions) {
      if (!(p.pair == sim::kDefaultPair)) continue;
      if (const FeedbackBias* bias = bias_of(p.pair)) {
        p.predicted_power_watts *= bias->power;
        p.predicted_time_seconds *= bias->time;
        p.predicted_energy_joules =
            p.predicted_power_watts * p.predicted_time_seconds;
      }
      default_power = p.predicted_power_watts;
      default_time = p.predicted_time_seconds;
    }

    for (core::PairPrediction& p : predictions) {
      if (p.pair == sim::kDefaultPair) continue;
      const FeedbackBias* bias = bias_of(p.pair);
      if (bias == nullptr) continue;
      // A prediction pinned at its clamp floor is linear-extrapolation
      // collapse — no multiplicative ratio can repair it.  Rebuild it from
      // the corrected default prediction and the measured scaling curve.
      const bool degenerate = p.predicted_time_seconds <= 2e-3 ||
                              p.predicted_power_watts <= 2.0;
      if (degenerate && bias->rel_samples > 0 && default_time > 0.0) {
        p.predicted_power_watts = default_power * bias->rel_power;
        p.predicted_time_seconds = default_time * bias->rel_time;
      } else {
        p.predicted_power_watts *= bias->power;
        p.predicted_time_seconds *= bias->time;
      }
      p.predicted_energy_joules =
          p.predicted_power_watts * p.predicted_time_seconds;
    }
  }

  // Max-slowdown constraint (MinimumEnergy only): bound predicted time
  // relative to the predicted default-pair time.  The default pair itself
  // is always feasible, so the constraint can never strand the governor
  // without a choice.
  double time_bound = 0.0;
  if (options_.policy == core::GovernorPolicy::MinimumEnergy &&
      options_.max_slowdown > 0.0) {
    for (const core::PairPrediction& p : predictions) {
      if (p.pair == sim::kDefaultPair) {
        time_bound = p.predicted_time_seconds * options_.max_slowdown;
      }
    }
  }
  auto feasible = [&](const core::PairPrediction& p) {
    if (time_bound <= 0.0 || p.pair == sim::kDefaultPair) return true;
    return p.predicted_time_seconds <= time_bound;
  };

  const core::PairPrediction* best = nullptr;
  const core::PairPrediction* incumbent = nullptr;
  for (const core::PairPrediction& p : predictions) {
    if (feasible(p) && (!best || objective(p) < objective(*best))) best = &p;
    if (p.pair == current_) incumbent = &p;
  }
  GPPM_ASSERT(best != nullptr);

  // Hysteresis, same discipline as core::DvfsGovernor: stay unless the
  // best pair beats the *incumbent* by more than the threshold margin.  An
  // incumbent that became infeasible (slowdown bound moved under it) gets
  // no such protection.
  const core::PairPrediction* chosen = best;
  if (incumbent != nullptr && feasible(*incumbent)) {
    const double inc = objective(*incumbent);
    if (objective(*best) >= inc * (1.0 - options_.switch_threshold)) {
      chosen = incumbent;
    }
  }

  Decision d;
  d.pair = chosen->pair;
  d.switched = !(chosen->pair == current_);
  d.predicted_power_watts = chosen->predicted_power_watts;
  d.predicted_time_seconds = chosen->predicted_time_seconds;
  d.predicted_energy_joules = chosen->predicted_energy_joules;
  log_.push_back(d);
  if (d.switched) ++switches_;
  current_ = chosen->pair;

  if (options_.instrument) {
    GovernorObs& o = governor_obs();
    o.decisions.add();
    if (d.switched) {
      o.switches.add();
    } else {
      o.holds.add();
    }
  }
  return current_;
}

void OnlineGovernor::observe(const profiler::ProfileResult& phase_counters,
                             sim::FrequencyPair pair, Power measured_power,
                             Duration measured_time,
                             const std::string& phase_key) {
  // Ratios are measured over the *raw* model prediction (the bias table
  // maps model space to measured space), clamped so one pathological
  // phase cannot poison the table.
  if (options_.feedback) {
    seed_bias(phase_key, phase_counters, pair, measured_power,
              measured_time);
  }

  const int rebuilds_before = refitter_.rebuild_count();
  refitter_.observe(phase_counters, pair, measured_power, measured_time);
  if (options_.refit_interval > 0 &&
      refitter_.observation_count() % options_.refit_interval == 0) {
    obs::ObsSpan span("governor.refit");
    refitter_.refit();
    if (options_.instrument) governor_obs().refits.add();
  }
  if (options_.instrument) {
    GovernorObs& o = governor_obs();
    const int rebuilt = refitter_.rebuild_count() - rebuilds_before;
    if (rebuilt > 0) o.rebuilds.add(static_cast<std::uint64_t>(rebuilt));
    o.window.set(static_cast<std::int64_t>(refitter_.window_size()));
  }
}

void OnlineGovernor::reset(sim::FrequencyPair start) {
  current_ = start;
  switches_ = 0;
  log_.clear();
}

}  // namespace gppm::governor
