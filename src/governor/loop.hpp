// The closed DVFS loop: phase stream -> profile -> decide -> apply through
// the VBIOS controller -> measure -> feed the refit engine.
//
// This is the harness that turns the library's pieces into the running
// system the paper's future-work section sketches.  Per phase it
//
//   1. profiles the incoming kernel at the clocks the board is currently
//      at (a real governor cannot profile anywhere else);
//   2. asks the OnlineGovernor for the operating point;
//   3. applies it through dvfs::Controller — a same-pair decision is a
//      validated no-op there, so steady state costs zero reboots;
//   4. measures the phase at the chosen point;
//   5. streams the (counters, pair, measurement) triple back into the
//      governor's refit window.
//
// With measure_baselines on, each phase is additionally measured at the
// static default pair and swept across every configurable pair for the
// per-phase oracle, which is what the bench gates compare against
// (TABLE IV's offline-optimal pairs, phase by phase).
#pragma once

#include <string>
#include <vector>

#include "core/runner.hpp"
#include "dvfs/controller.hpp"
#include "governor/governor.hpp"
#include "profiler/cuda_profiler.hpp"
#include "workload/phases.hpp"

namespace gppm::governor {

struct LoopOptions {
  OnlineGovernorOptions governor;
  core::RunnerOptions runner;
  std::uint64_t profiler_seed = 11;
  /// Also measure every phase at the static default pair and at every
  /// configurable pair (per-phase oracle) for comparison.
  bool measure_baselines = true;
};

/// What one phase did.
struct PhaseOutcome {
  workload::Phase phase;
  sim::FrequencyPair pair;            ///< governor's choice
  core::Measurement measured;         ///< at the governed pair
  double default_energy_joules = 0.0; ///< static (H-H), if baselines on
  double default_time_seconds = 0.0;
  double oracle_energy_joules = 0.0;  ///< per-phase best pair, if baselines on
  sim::FrequencyPair oracle_pair;
};

struct LoopResult {
  std::vector<PhaseOutcome> phases;
  double governed_energy_joules = 0.0;
  double governed_time_seconds = 0.0;
  double default_energy_joules = 0.0;
  double default_time_seconds = 0.0;
  double oracle_energy_joules = 0.0;
  int switches = 0;
  int reboots = 0;  ///< effective P-state transitions (dvfs reboot_count delta)
  int refits = 0;
};

/// Owns the board, controller, profiler and governor for one closed loop.
class GovernorLoop {
 public:
  /// `seed_corpus` must be built for `board`; it seeds the governor's refit
  /// prior.  The offline models are fitted by the caller (so benches can
  /// share cached fits) and handed in.
  GovernorLoop(sim::GpuModel board, const core::Dataset& seed_corpus,
               core::UnifiedModel power, core::UnifiedModel perf,
               LoopOptions options = {});

  /// Run the loop over a phase schedule.  Profiler-unsupported phases are
  /// skipped (a real governor falls back to current clocks for them; here
  /// they simply do not contribute outcomes).
  LoopResult run(const std::vector<workload::Phase>& phases);

  OnlineGovernor& governor() { return governor_; }
  dvfs::Controller& controller() { return controller_; }
  core::MeasurementRunner& runner() { return runner_; }

 private:
  LoopOptions options_;
  core::MeasurementRunner runner_;
  dvfs::Controller controller_;
  profiler::CudaProfiler profiler_;
  OnlineGovernor governor_;
};

}  // namespace gppm::governor
