#include "obs/export.hpp"

#include <cstdio>
#include <fstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/str.hpp"

namespace gppm::obs {

namespace {

/// JSON string escaping for span names (our own literals, but stay safe).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string bound_label(double upper) {
  // Integral bounds print bare (le_10), fractional with 3 digits.
  if (upper == static_cast<double>(static_cast<long long>(upper))) {
    return "le_" + std::to_string(static_cast<long long>(upper));
  }
  return "le_" + format_double(upper, 3);
}

}  // namespace

AsciiTable metrics_table(const MetricsSnapshot& snapshot) {
  AsciiTable table({"kind", "name", "value", "max/mean"});
  table.set_title("obs metrics");
  for (const CounterRow& c : snapshot.counters) {
    table.add_row({"counter", c.name, std::to_string(c.value), "-"});
  }
  for (const GaugeRow& g : snapshot.gauges) {
    table.add_row(
        {"gauge", g.name, std::to_string(g.value), std::to_string(g.max)});
  }
  for (const HistogramRow& h : snapshot.histograms) {
    const double mean =
        h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
    table.add_row({"histogram", h.name, std::to_string(h.count),
                   format_double(mean, 3)});
  }
  return table;
}

void write_metrics_csv(const MetricsSnapshot& snapshot, std::ostream& out) {
  CsvWriter csv(out);
  csv.row({"kind", "name", "field", "value"});
  for (const CounterRow& c : snapshot.counters) {
    csv.row({"counter", c.name, "value", std::to_string(c.value)});
  }
  for (const GaugeRow& g : snapshot.gauges) {
    csv.row({"gauge", g.name, "value", std::to_string(g.value)});
    csv.row({"gauge", g.name, "max", std::to_string(g.max)});
  }
  for (const HistogramRow& h : snapshot.histograms) {
    csv.row({"histogram", h.name, "count", std::to_string(h.count)});
    csv.row({"histogram", h.name, "sum", format_double(h.sum, 6)});
    for (std::size_t b = 0; b < h.bucket_counts.size(); ++b) {
      const std::string label = b < h.upper_bounds.size()
                                    ? bound_label(h.upper_bounds[b])
                                    : std::string("le_inf");
      csv.row({"histogram", h.name, label,
               std::to_string(h.bucket_counts[b])});
    }
  }
}

void write_chrome_trace(const std::vector<SpanRecord>& spans,
                        std::ostream& out) {
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) out << ",";
    first = false;
    // Complete events; ts/dur are microseconds in the trace_event format.
    out << "\n{\"name\":\"" << json_escape(s.name)
        << "\",\"cat\":\"gppm\",\"ph\":\"X\",\"ts\":"
        << format_double(static_cast<double>(s.start_ns) / 1e3, 3)
        << ",\"dur\":"
        << format_double(static_cast<double>(s.duration_ns) / 1e3, 3)
        << ",\"pid\":1,\"tid\":" << s.tid << ",\"args\":{\"depth\":" << s.depth
        << "}}";
  }
  out << "\n]}\n";
}

void write_metrics_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open " + path);
  write_metrics_csv(Registry::instance().snapshot(), out);
}

void write_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open " + path);
  write_chrome_trace(span_snapshot(), out);
}

}  // namespace gppm::obs
