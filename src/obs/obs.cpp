#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>

#include "common/error.hpp"

namespace gppm::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram.

Histogram::Histogram(std::vector<double> uppers)
    : uppers_(std::move(uppers)), buckets_(uppers_.size() + 1) {
  GPPM_CHECK(!uppers_.empty(), "histogram needs at least one bucket bound");
  GPPM_CHECK(std::is_sorted(uppers_.begin(), uppers_.end()),
             "histogram bounds must be ascending");
}

void Histogram::record(double v) {
  if (!enabled()) return;
  std::size_t b = 0;
  while (b < uppers_.size() && v > uppers_[b]) ++b;
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Sums accumulate in integer nanounits so concurrent records stay exact.
  const double scaled = v * 1e9;
  sum_nanos_.fetch_add(
      scaled > 0.0 ? static_cast<std::uint64_t>(scaled) : 0,
      std::memory_order_relaxed);
}

double Histogram::sum() const {
  return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) / 1e9;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_nanos_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry.

struct Registry::Impl {
  mutable std::mutex mu;
  // Node-based maps: instrument addresses stay stable across registrations,
  // so call sites can cache references forever.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& Registry::instance() {
  // Leaked on purpose (see header): pool workers may record at teardown.
  static Registry* r = new Registry();
  return *r;
}

Registry::Impl& Registry::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

Counter& Registry::counter(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.counters[name];
  if (!slot) slot.reset(new Counter());
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.gauges[name];
  if (!slot) slot.reset(new Gauge());
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> upper_bounds) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.histograms[name];
  if (!slot) slot.reset(new Histogram(std::move(upper_bounds)));
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  MetricsSnapshot s;
  s.counters.reserve(im.counters.size());
  for (const auto& [name, c] : im.counters) {
    s.counters.push_back({name, c->value()});
  }
  s.gauges.reserve(im.gauges.size());
  for (const auto& [name, g] : im.gauges) {
    s.gauges.push_back({name, g->value(), g->max()});
  }
  s.histograms.reserve(im.histograms.size());
  for (const auto& [name, h] : im.histograms) {
    s.histograms.push_back(
        {name, h->upper_bounds(), h->bucket_counts(), h->count(), h->sum()});
  }
  return s;
}

void Registry::reset_values() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (auto& [name, c] : im.counters) c->reset();
  for (auto& [name, g] : im.gauges) g->reset();
  for (auto& [name, h] : im.histograms) h->reset();
}

bool MetricsSnapshot::has_activity(const std::string& prefix) const {
  const auto matches = [&](const std::string& name) {
    return name.size() >= prefix.size() &&
           name.compare(0, prefix.size(), prefix) == 0;
  };
  for (const CounterRow& c : counters) {
    if (matches(c.name) && c.value > 0) return true;
  }
  for (const GaugeRow& g : gauges) {
    if (matches(g.name) && g.max > 0) return true;
  }
  for (const HistogramRow& h : histograms) {
    if (matches(h.name) && h.count > 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Spans.

namespace {

struct SpanBuffer {
  std::mutex mu;
  std::vector<SpanRecord> spans;
  std::size_t capacity = 1 << 16;
  std::atomic<std::uint64_t> dropped{0};
};

SpanBuffer& span_buffer() {
  static SpanBuffer* b = new SpanBuffer();  // leaked, like the registry
  return *b;
}

std::uint64_t trace_epoch_ns() {
  static const std::uint64_t epoch = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return epoch;
}

std::uint32_t this_thread_index() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

thread_local std::uint32_t tl_span_depth = 0;

}  // namespace

std::uint64_t trace_now_ns() {
  // Resolve the epoch before reading the clock: the first-ever call
  // initializes it, and reading `now` first would put it before the epoch
  // (a negative difference wrapped to ~2^64).
  const std::uint64_t epoch = trace_epoch_ns();
  const std::uint64_t now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return now - epoch;
}

ObsSpan::ObsSpan(const char* name) : name_(name) {
  if (!enabled()) return;
  active_ = true;
  depth_ = tl_span_depth++;
  start_ns_ = trace_now_ns();
}

ObsSpan::~ObsSpan() {
  if (!active_) return;
  --tl_span_depth;
  SpanRecord rec;
  rec.name = name_;
  rec.tid = this_thread_index();
  rec.depth = depth_;
  rec.start_ns = start_ns_;
  rec.duration_ns = trace_now_ns() - start_ns_;
  SpanBuffer& buf = span_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  if (buf.spans.size() >= buf.capacity) {
    buf.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.spans.push_back(rec);
}

std::vector<SpanRecord> span_snapshot() {
  SpanBuffer& buf = span_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  return buf.spans;
}

std::uint64_t spans_dropped() {
  return span_buffer().dropped.load(std::memory_order_relaxed);
}

void clear_spans() {
  SpanBuffer& buf = span_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.spans.clear();
  buf.dropped.store(0, std::memory_order_relaxed);
}

void set_span_capacity(std::size_t cap) {
  SpanBuffer& buf = span_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.capacity = cap;
}

}  // namespace gppm::obs
