// gppm::obs — process-wide observability for the long-running layers.
//
// The paper's headline numbers come from unattended runs (37 benchmarks x
// frequency pairs x 50 ms power sampling feeding 114-sample regression
// fits); characterization results are only trustworthy when the measurement
// pipeline itself is instrumented.  This layer gives every subsystem one
// shared vocabulary:
//
//   * a metrics registry — named Counters, Gauges and fixed-bucket
//     Histograms.  Registration takes a mutex once; the returned instrument
//     reference is stable for the process lifetime, and every hot-path
//     record is a single relaxed atomic op.
//   * span-based tracing — RAII ObsSpan scoped timers with thread-aware
//     nesting (per-thread depth, dense thread ids) collected into a bounded
//     in-memory buffer and exportable as Chrome trace_event JSON
//     (chrome://tracing / Perfetto loadable); see obs/export.hpp.
//
// The whole layer is gated on one process-wide enable flag: with obs
// disabled (the default) every instrument call is a single relaxed atomic
// load and branch, no allocation, no lock — cheap enough to leave compiled
// into the selection and serving hot paths.
//
// Singletons are intentionally leaked: the compute pool's workers and other
// static-lifetime objects may record during process teardown, so neither
// the registry nor the span buffer is ever destroyed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gppm::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when the observability layer is recording.  Relaxed load — the one
/// branch every disabled-mode instrument call pays.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turn recording on or off process-wide.  Instruments registered while
/// disabled stay registered; their values simply stop moving.
void set_enabled(bool on);

/// Monotonic event counter.  add() is lock-free (one relaxed fetch_add).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  Counter() = default;
  void reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level with a high-water mark (queue depths, busy workers).
/// set()/add() are lock-free.
class Gauge {
 public:
  void set(std::int64_t v) {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
    raise_max(v);
  }
  /// Adjust the level by `delta` (e.g. +1/-1 around a busy section).
  void add(std::int64_t delta) {
    if (!enabled()) return;
    const std::int64_t v =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    raise_max(v);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  Gauge() = default;
  void raise_max(std::int64_t v) {
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  void reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed-bucket histogram: explicit upper bounds (ascending) plus an
/// implicit overflow bucket.  record() is lock-free: one linear bucket scan
/// over a handful of bounds and two relaxed atomic ops.
class Histogram {
 public:
  void record(double v);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  const std::vector<double>& upper_bounds() const { return uppers_; }
  /// Bucket counts; size() == upper_bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> uppers);
  void reset();
  std::vector<double> uppers_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // uppers_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_nanos_{0};  // sum scaled by 1e9 for atomicity
};

/// One registry row per instrument kind, materialized by snapshot().
struct CounterRow {
  std::string name;
  std::uint64_t value = 0;
};
struct GaugeRow {
  std::string name;
  std::int64_t value = 0;
  std::int64_t max = 0;
};
struct HistogramRow {
  std::string name;
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> bucket_counts;  // bounds + overflow
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// A point-in-time copy of every registered instrument, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;

  /// True when any instrument whose name starts with `prefix` has recorded
  /// at least one event (counter/histogram count > 0, or gauge max > 0).
  bool has_activity(const std::string& prefix) const;
};

/// Process-wide instrument registry.  counter()/gauge()/histogram() find or
/// create by name under a mutex; call sites cache the returned reference
/// (function-local static) so the hot path never touches the map.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Find or create; `upper_bounds` must be non-empty and ascending, and is
  /// ignored when the histogram already exists.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  MetricsSnapshot snapshot() const;

  /// Zero every instrument (registrations and cached references survive).
  void reset_values();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

// ---------------------------------------------------------------------------
// Span tracing.

/// One completed span, in the order spans *ended*.
struct SpanRecord {
  const char* name = "";     ///< static-lifetime literal from the call site
  std::uint32_t tid = 0;     ///< dense per-process thread index
  std::uint32_t depth = 0;   ///< nesting depth on that thread at entry
  std::uint64_t start_ns = 0;     ///< since the process trace epoch
  std::uint64_t duration_ns = 0;
};

/// RAII scoped timer.  Constructing while disabled is a no-op (no clock
/// read, no allocation); the record lands in the bounded span buffer at
/// destruction.  `name` must be a string literal or otherwise outlive the
/// buffer.
class ObsSpan {
 public:
  explicit ObsSpan(const char* name);
  ~ObsSpan();
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  bool active_ = false;
};

/// Copy of the span buffer (completion order).
std::vector<SpanRecord> span_snapshot();

/// Spans dropped because the buffer was full.
std::uint64_t spans_dropped();

/// Empty the span buffer and reset the dropped count.
void clear_spans();

/// Resize the span buffer cap (default 65536).  Existing spans beyond the
/// new cap are kept; new spans drop while at or above it.
void set_span_capacity(std::size_t cap);

/// Nanoseconds since the process trace epoch (first use of the clock).
std::uint64_t trace_now_ns();

}  // namespace gppm::obs
