// Renderers for gppm::obs: the standard ASCII table and CSV every bench
// emits, plus Chrome trace_event JSON for the span buffer (load the file in
// chrome://tracing or Perfetto).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "obs/obs.hpp"

namespace gppm::obs {

/// Counters/gauges/histograms as one ASCII table (kind, name, value, max).
AsciiTable metrics_table(const MetricsSnapshot& snapshot);

/// CSV rows `kind,name,field,value`; histograms expand to count/sum plus
/// one `le_<bound>` row per bucket and `le_inf` for the overflow bucket.
void write_metrics_csv(const MetricsSnapshot& snapshot, std::ostream& out);

/// Chrome trace_event JSON: one complete ("ph":"X") event per span, with
/// timestamps/durations in microseconds.
void write_chrome_trace(const std::vector<SpanRecord>& spans,
                        std::ostream& out);

/// Snapshot the live registry / span buffer and write to `path`.  Throws
/// gppm::Error when the file cannot be opened.
void write_metrics_file(const std::string& path);
void write_trace_file(const std::string& path);

}  // namespace gppm::obs
