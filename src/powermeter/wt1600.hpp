// Model of the Yokogawa WT1600 digital power meter (paper Section II-C).
//
// The instrument samples wall voltage and current every 50 ms; power is
// their product and energy is the accumulation of the sampled power.  The
// model reproduces the measurement pipeline's artifacts: the 50 ms sampling
// grid (which is why the paper repeats sub-500 ms benchmarks until at least
// 10 samples exist), additive measurement noise, and display quantization.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace gppm::meter {

/// A constant-power interval of the measured system's wall-power draw.
struct TimelineSegment {
  Duration duration;
  Power power;
};

/// Instrument configuration.  Defaults model the WT1600 on its 50 ms range.
struct MeterConfig {
  Duration sampling_period = Duration::milliseconds(50.0);
  /// Additive gaussian noise floor (instrument + line noise), watts.
  double noise_floor_watts = 0.3;
  /// Multiplicative gaussian noise, fraction of the reading.
  double noise_fraction = 0.002;
  /// Reading quantization step, watts.
  double quantization_watts = 0.1;
};

/// One sampled reading.
struct PowerSample {
  Duration timestamp;  ///< sample time from measurement start
  Power power;
};

/// Result of one measurement session.
struct Measurement {
  std::vector<PowerSample> samples;
  Duration duration;    ///< sample_count * sampling period
  Energy energy;        ///< accumulated sampled power
  Power average_power;  ///< energy / duration

  std::size_t sample_count() const { return samples.size(); }
};

/// The meter.  Deterministic given its seed.
class WT1600 {
 public:
  explicit WT1600(MeterConfig config = {}, std::uint64_t seed = 7);

  /// Measure a run described by its wall-power timeline.  The timeline must
  /// be long enough to produce at least one sample; the paper's 500 ms
  /// repetition rule guarantees >= 10.
  Measurement measure(const std::vector<TimelineSegment>& timeline);

  /// Exact (instrument-free) integral of a timeline, for tests and
  /// meter-accuracy ablations.
  static Energy integrate(const std::vector<TimelineSegment>& timeline);

  /// Exact total duration of a timeline.
  static Duration total_duration(const std::vector<TimelineSegment>& timeline);

  const MeterConfig& config() const { return config_; }

 private:
  MeterConfig config_;
  std::uint64_t seed_;
  std::uint64_t session_ = 0;
};

}  // namespace gppm::meter
