#include "powermeter/wt1600.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gppm::meter {

WT1600::WT1600(MeterConfig config, std::uint64_t seed)
    : config_(config), seed_(seed) {
  GPPM_CHECK(config_.sampling_period > Duration::seconds(0.0),
             "sampling period must be positive");
  GPPM_CHECK(config_.noise_floor_watts >= 0.0 && config_.noise_fraction >= 0.0,
             "negative noise");
  GPPM_CHECK(config_.quantization_watts >= 0.0, "negative quantization");
}

Energy WT1600::integrate(const std::vector<TimelineSegment>& timeline) {
  Energy e = Energy::joules(0.0);
  for (const TimelineSegment& seg : timeline) {
    GPPM_CHECK(seg.duration >= Duration::seconds(0.0), "negative duration");
    e += seg.power * seg.duration;
  }
  return e;
}

Duration WT1600::total_duration(const std::vector<TimelineSegment>& timeline) {
  Duration d = Duration::seconds(0.0);
  for (const TimelineSegment& seg : timeline) d += seg.duration;
  return d;
}

Measurement WT1600::measure(const std::vector<TimelineSegment>& timeline) {
  GPPM_CHECK(!timeline.empty(), "empty timeline");
  for (const TimelineSegment& seg : timeline) {
    GPPM_CHECK(seg.duration >= Duration::seconds(0.0),
               "timeline segment with negative duration");
  }
  const Duration total = total_duration(timeline);
  const double period_s = config_.sampling_period.as_seconds();
  GPPM_CHECK(total.as_seconds() >= period_s,
             "run shorter than one sampling period; apply the 500 ms "
             "repetition rule before measuring");

  Rng rng = Rng(seed_).fork(session_++);

  Measurement m;
  // The instrument integrates V*I over each 50 ms window; we model the
  // window average of the (piecewise-constant) true power plus noise.
  const std::size_t n_samples =
      static_cast<std::size_t>(std::floor(total.as_seconds() / period_s));
  std::size_t seg_idx = 0;
  double seg_remaining = timeline[0].duration.as_seconds();

  for (std::size_t s = 0; s < n_samples; ++s) {
    // Average true power over this window.
    double window_left = period_s;
    double joules = 0.0;
    while (window_left > 1e-15 && seg_idx < timeline.size()) {
      const double take = std::min(window_left, seg_remaining);
      joules += timeline[seg_idx].power.as_watts() * take;
      window_left -= take;
      seg_remaining -= take;
      if (seg_remaining <= 1e-15) {
        ++seg_idx;
        if (seg_idx < timeline.size()) {
          seg_remaining = timeline[seg_idx].duration.as_seconds();
        }
      }
    }
    const double covered = period_s - window_left;
    double reading = covered > 0.0 ? joules / covered : 0.0;

    // Instrument noise and quantization.
    reading += rng.normal(0.0, config_.noise_floor_watts +
                                   config_.noise_fraction * reading);
    if (config_.quantization_watts > 0.0) {
      reading = std::round(reading / config_.quantization_watts) *
                config_.quantization_watts;
    }
    reading = std::max(0.0, reading);

    m.samples.push_back(
        {Duration::seconds(static_cast<double>(s + 1) * period_s),
         Power::watts(reading)});
  }

  GPPM_ASSERT(!m.samples.empty());
  m.duration = Duration::seconds(static_cast<double>(n_samples) * period_s);
  double joules = 0.0;
  for (const PowerSample& s : m.samples) joules += s.power.as_watts() * period_s;
  m.energy = Energy::joules(joules);
  m.average_power = m.energy / m.duration;
  return m;
}

}  // namespace gppm::meter
