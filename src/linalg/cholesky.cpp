#include "linalg/cholesky.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/simd.hpp"

namespace gppm::linalg {

Matrix cholesky(const Matrix& a) {
  GPPM_CHECK(a.rows() == a.cols(), "cholesky requires a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      // Rows i and j of the factor are contiguous prefixes: one SIMD dot.
      const double s = a(i, j) - simd::dot(l.row_ptr(i), l.row_ptr(j), j);
      if (i == j) {
        GPPM_CHECK(s > 0.0, "matrix not positive definite");
        l(i, i) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  return l;
}

Vector solve_lower_triangular(const Matrix& l, const Vector& b) {
  GPPM_CHECK(l.rows() == l.cols(), "L must be square");
  GPPM_CHECK(b.size() == l.rows(), "rhs size mismatch");
  const std::size_t n = l.rows();
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double acc = b[i] - simd::dot(l.row_ptr(i), y.data(), i);
    GPPM_CHECK(l(i, i) != 0.0, "singular triangular system");
    y[i] = acc / l(i, i);
  }
  return y;
}

Vector solve_lower_transposed(const Matrix& l, const Vector& y) {
  GPPM_CHECK(l.rows() == l.cols(), "L must be square");
  GPPM_CHECK(y.size() == l.rows(), "rhs size mismatch");
  const std::size_t n = l.rows();
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    // Column ii below the diagonal is an n-strided walk; the strided kernel
    // keeps the canonical summation tree without transposing the factor.
    const double acc =
        ii + 1 < n ? y[ii] - simd::dot_strided(l.row_ptr(ii + 1) + ii,
                                               x.data() + ii + 1, n - ii - 1,
                                               n, 1)
                   : y[ii];
    GPPM_CHECK(l(ii, ii) != 0.0, "singular triangular system");
    x[ii] = acc / l(ii, ii);
  }
  return x;
}

Vector cholesky_solve(const Matrix& a, const Vector& b) {
  GPPM_CHECK(b.size() == a.rows(), "rhs size mismatch");
  const Matrix l = cholesky(a);
  return solve_lower_transposed(l, solve_lower_triangular(l, b));
}

Matrix cholesky_append(const Matrix& l, const Vector& cross, double diag) {
  GPPM_CHECK(l.rows() == l.cols(), "L must be square");
  GPPM_CHECK(cross.size() == l.rows(), "cross-term size mismatch");
  const std::size_t k = l.rows();
  // Bordered factor: new row w = L^{-1} cross, new pivot sqrt(diag - |w|^2).
  const Vector w = k == 0 ? Vector{} : solve_lower_triangular(l, cross);
  const double s = diag - simd::dot(w.data(), w.data(), w.size());
  // An exactly dependent column can still leave s a few ulps above zero
  // (the subtraction cancels to rounding noise), so the positivity test must
  // be relative to the column's own scale, mirroring the QR rank tolerance.
  GPPM_CHECK(s > diag * 1e-12, "appended column is linearly dependent");
  Matrix out(k + 1, k + 1);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j <= i; ++j) out(i, j) = l(i, j);
  }
  for (std::size_t j = 0; j < k; ++j) out(k, j) = w[j];
  out(k, k) = std::sqrt(s);
  return out;
}

Matrix cholesky_update(const Matrix& l, const Vector& v) {
  GPPM_CHECK(l.rows() == l.cols(), "L must be square");
  GPPM_CHECK(v.size() == l.rows(), "update vector size mismatch");
  const std::size_t n = l.rows();
  Matrix out = l;
  Vector w = v;
  // Sequence of Givens rotations absorbing w into the factor.
  for (std::size_t k = 0; k < n; ++k) {
    const double lkk = out(k, k);
    const double r = std::hypot(lkk, w[k]);
    const double c = r / lkk;
    const double s = w[k] / lkk;
    out(k, k) = r;
    for (std::size_t i = k + 1; i < n; ++i) {
      out(i, k) = (out(i, k) + s * w[i]) / c;
      w[i] = c * w[i] - s * out(i, k);
    }
  }
  return out;
}

Matrix cholesky_downdate(const Matrix& l, const Vector& v) {
  GPPM_CHECK(l.rows() == l.cols(), "L must be square");
  GPPM_CHECK(v.size() == l.rows(), "downdate vector size mismatch");
  const std::size_t n = l.rows();
  Matrix out = l;
  Vector w = v;
  // Hyperbolic rotations; fails when A - v v^T loses positive definiteness.
  for (std::size_t k = 0; k < n; ++k) {
    const double lkk = out(k, k);
    const double rsq = lkk * lkk - w[k] * w[k];
    GPPM_CHECK(rsq > 0.0, "downdate makes matrix indefinite");
    const double r = std::sqrt(rsq);
    const double c = r / lkk;
    const double s = w[k] / lkk;
    out(k, k) = r;
    for (std::size_t i = k + 1; i < n; ++i) {
      out(i, k) = (out(i, k) - s * w[i]) / c;
      w[i] = c * w[i] - s * out(i, k);
    }
  }
  return out;
}

}  // namespace gppm::linalg
