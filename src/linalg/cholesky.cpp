#include "linalg/cholesky.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gppm::linalg {

Matrix cholesky(const Matrix& a) {
  GPPM_CHECK(a.rows() == a.cols(), "cholesky requires a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        GPPM_CHECK(s > 0.0, "matrix not positive definite");
        l(i, i) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  return l;
}

Vector cholesky_solve(const Matrix& a, const Vector& b) {
  GPPM_CHECK(b.size() == a.rows(), "rhs size mismatch");
  const Matrix l = cholesky(a);
  const std::size_t n = l.rows();
  // Forward substitution: L y = b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l(i, k) * y[k];
    y[i] = acc / l(i, i);
  }
  // Back substitution: L^T x = y.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) acc -= l(k, ii) * x[k];
    x[ii] = acc / l(ii, ii);
  }
  return x;
}

}  // namespace gppm::linalg
