#include "linalg/lstsq.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/qr.hpp"

namespace gppm::linalg {

LstsqResult lstsq(const Matrix& a, const Vector& b) {
  GPPM_CHECK(!a.empty(), "lstsq on empty matrix");
  GPPM_CHECK(b.size() == a.rows(), "rhs size mismatch");
  GPPM_CHECK(a.rows() >= a.cols(), "underdetermined system");
  const std::size_t m = a.rows(), n = a.cols();

  // Column equilibration.
  Vector scale(n, 1.0);
  Matrix as = a;
  for (std::size_t j = 0; j < n; ++j) {
    const double nrm = a.col_norm(j);
    if (nrm > 0.0) {
      scale[j] = nrm;
      for (std::size_t i = 0; i < m; ++i) as(i, j) = a(i, j) / nrm;
    }
  }

  QrResult f = qr_decompose(as);
  LstsqResult out;
  out.full_rank = f.full_rank;

  if (!f.full_rank) {
    // Regularize tiny diagonals: Tikhonov-like fallback keeps the solve
    // defined when forward selection probes a collinear candidate column.
    double max_diag = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      max_diag = std::max(max_diag, std::abs(f.r(i, i)));
    const double bump = std::max(max_diag, 1.0) * 1e-10;
    for (std::size_t i = 0; i < n; ++i) {
      if (std::abs(f.r(i, i)) < bump) f.r(i, i) = (f.r(i, i) < 0 ? -bump : bump);
    }
  }

  // x_scaled = R^{-1} Q^T b
  Vector qtb(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i) acc += f.q(i, j) * b[i];
    qtb[j] = acc;
  }
  Vector xs = solve_upper_triangular(f.r, qtb);
  out.x.resize(n);
  for (std::size_t j = 0; j < n; ++j) out.x[j] = xs[j] / scale[j];

  const Vector pred = a * out.x;
  double ss = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double r = b[i] - pred[i];
    ss += r * r;
  }
  out.residual_ss = ss;
  return out;
}

}  // namespace gppm::linalg
