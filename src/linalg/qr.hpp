// Householder QR factorization.
//
// Used by the least-squares solver: QR is the numerically stable choice for
// the regression design matrices produced by the feature layer, whose columns
// (counter x frequency products) can differ by many orders of magnitude.
#pragma once

#include "linalg/matrix.hpp"

namespace gppm::linalg {

/// Thin QR factorization A = Q R of an m x n matrix with m >= n.
/// Q is m x n with orthonormal columns; R is n x n upper triangular.
struct QrResult {
  Matrix q;
  Matrix r;
  /// True if no diagonal of R is (numerically) zero, i.e. A has full column
  /// rank at the given tolerance.
  bool full_rank = false;
};

/// Compute the thin QR factorization by Householder reflections.
/// Requires a.rows() >= a.cols() and a non-empty matrix.
QrResult qr_decompose(const Matrix& a, double rank_tol = 1e-12);

/// Solve R x = b for upper-triangular R (back substitution).
/// Requires R square, b.size() == R.rows(), and nonzero diagonal.
Vector solve_upper_triangular(const Matrix& r, const Vector& b);

}  // namespace gppm::linalg
