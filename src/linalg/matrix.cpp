#include "linalg/matrix.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/simd.hpp"

namespace gppm::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    GPPM_CHECK(row.size() == cols_, "ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  GPPM_CHECK(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  GPPM_CHECK(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

Vector Matrix::row(std::size_t r) const {
  GPPM_CHECK(r < rows_, "row out of range");
  return Vector(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
                data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

const double* Matrix::row_ptr(std::size_t r) const {
  GPPM_CHECK(r < rows_, "row out of range");
  return data_.data() + r * cols_;
}

Vector Matrix::col(std::size_t c) const {
  GPPM_CHECK(c < cols_, "col out of range");
  Vector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = data_[r * cols_ + c];
  return v;
}

void Matrix::set_col(std::size_t c, const Vector& v) {
  GPPM_CHECK(c < cols_, "col out of range");
  GPPM_CHECK(v.size() == rows_, "column size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) data_[r * cols_ + c] = v[r];
}

double Matrix::col_dot(std::size_t c1, std::size_t c2) const {
  GPPM_CHECK(c1 < cols_ && c2 < cols_, "col out of range");
  return simd::dot_strided(data_.data() + c1, data_.data() + c2, rows_, cols_,
                           cols_);
}

double Matrix::col_norm(std::size_t c) const { return std::sqrt(col_dot(c, c)); }

double Matrix::row_dot(std::size_t r1, std::size_t r2) const {
  GPPM_CHECK(r1 < rows_ && r2 < rows_, "row out of range");
  return simd::dot(data_.data() + r1 * cols_, data_.data() + r2 * cols_,
                   cols_);
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = data_[r * cols_ + c];
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  GPPM_CHECK(cols_ == rhs.rows_, "matmul dimension mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = data_[i * cols_ + k];
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += a * rhs.data_[k * rhs.cols_ + j];
      }
    }
  }
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  GPPM_CHECK(v.size() == cols_, "matvec dimension mismatch");
  Vector out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += data_[i * cols_ + j] * v[j];
    out[i] = acc;
  }
  return out;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  GPPM_CHECK(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  }
  return m;
}

double dot(const Vector& a, const Vector& b) {
  GPPM_CHECK(a.size() == b.size(), "dot size mismatch");
  return simd::dot(a.data(), b.data(), a.size());
}

double norm2(const Vector& v) { return std::sqrt(dot(v, v)); }

Vector sub(const Vector& a, const Vector& b) {
  GPPM_CHECK(a.size() == b.size(), "sub size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

}  // namespace gppm::linalg
