#include "linalg/gram.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"

namespace gppm::linalg {

GramSystem build_gram_system(const Matrix& candidates, const Vector& y,
                             bool parallel) {
  GPPM_CHECK(!candidates.empty(), "gram of empty matrix");
  GPPM_CHECK(candidates.rows() == y.size(), "X/y row mismatch");
  const std::size_t n = candidates.rows();
  const std::size_t p = candidates.cols();

  GramSystem gs;
  gs.n_rows = n;
  gs.n_candidates = p;
  gs.gram = Matrix(p + 1, p + 1);
  gs.xty = Vector(p + 1, 0.0);
  gs.col_scale = Vector(p + 1, 0.0);

  double sum_y = 0.0;
  for (double v : y) {
    sum_y += v;
    gs.yty += v * v;
  }
  gs.tss = gs.yty - sum_y * sum_y / static_cast<double>(n);

  // Transpose once into the column panel: candidate column j becomes panel
  // row j, contiguous, so every dot below is a straight-line SIMD kernel.
  gs.panel = candidates.transposed();

  // Column norms (= the lstsq equilibration scales) and the intercept
  // terms.  simd::dot over a panel row computes the same 8-lane tree as
  // Matrix::col_norm's strided walk, so the scales equal the ones lstsq
  // derives from the row-major matrix bit for bit.
  gs.col_scale[0] = std::sqrt(static_cast<double>(n));
  for (std::size_t j = 0; j < p; ++j) {
    const double* cj = gs.panel.row_ptr(j);
    gs.col_scale[j + 1] = std::sqrt(simd::dot(cj, cj, n));
  }
  gs.xty[0] = sum_y / gs.col_scale[0];
  gs.gram(0, 0) = 1.0;

  // One task per design column: its cross terms against earlier columns,
  // its (unit) diagonal, and its X^T y entry.  Each Gram entry is written by
  // exactly one task with a fixed inner summation order, so parallel and
  // serial builds are bit-identical.
  const double* yp = y.data();
  const auto build_column = [&](std::size_t j) {
    const double sj = gs.col_scale[j + 1];
    if (sj <= 0.0) return;  // all-zero column: row stays 0, never selectable
    const double* cj = gs.panel.row_ptr(j);
    double col_sum = 0.0;
    double cy = 0.0;
    simd::sum_dot(cj, yp, n, col_sum, cy);
    gs.gram(0, j + 1) = col_sum / (gs.col_scale[0] * sj);
    gs.gram(j + 1, 0) = gs.gram(0, j + 1);
    gs.xty[j + 1] = cy / sj;
    gs.gram(j + 1, j + 1) = 1.0;
    for (std::size_t i = 0; i < j; ++i) {
      const double si = gs.col_scale[i + 1];
      if (si <= 0.0) continue;
      const double g = simd::dot(gs.panel.row_ptr(i), cj, n) / (si * sj);
      gs.gram(i + 1, j + 1) = g;
      gs.gram(j + 1, i + 1) = g;
    }
  };

  if (parallel) {
    gppm::parallel_for(p, build_column, /*min_parallel=*/16);
  } else {
    for (std::size_t j = 0; j < p; ++j) build_column(j);
  }
  return gs;
}

}  // namespace gppm::linalg
