#include "linalg/qr.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gppm::linalg {

QrResult qr_decompose(const Matrix& a, double rank_tol) {
  GPPM_CHECK(!a.empty(), "qr of empty matrix");
  const std::size_t m = a.rows(), n = a.cols();
  GPPM_CHECK(m >= n, "qr requires rows >= cols");

  // Work on a copy; accumulate Householder vectors in-place below the
  // diagonal and R on/above it, then form thin Q explicitly at the end.
  Matrix work = a;
  std::vector<Vector> reflectors;
  reflectors.reserve(n);

  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k, rows k..m-1.
    Vector v(m - k);
    double norm_x = 0.0;
    for (std::size_t i = k; i < m; ++i) {
      v[i - k] = work(i, k);
      norm_x += v[i - k] * v[i - k];
    }
    norm_x = std::sqrt(norm_x);
    const double alpha = (v[0] >= 0.0) ? -norm_x : norm_x;
    v[0] -= alpha;
    const double vnorm = norm2(v);
    if (vnorm > 0.0) {
      for (auto& e : v) e /= vnorm;
      // Apply reflection H = I - 2 v v^T to the trailing submatrix.
      for (std::size_t j = k; j < n; ++j) {
        double s = 0.0;
        for (std::size_t i = k; i < m; ++i) s += v[i - k] * work(i, j);
        s *= 2.0;
        for (std::size_t i = k; i < m; ++i) work(i, j) -= s * v[i - k];
      }
    }
    reflectors.push_back(std::move(v));
  }

  QrResult out;
  out.r = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) out.r(i, j) = work(i, j);
  }

  // Form thin Q by applying the reflections to the first n columns of I,
  // in reverse order.
  Matrix q(m, n);
  for (std::size_t j = 0; j < n; ++j) q(j, j) = 1.0;
  for (std::size_t k = n; k-- > 0;) {
    const Vector& v = reflectors[k];
    if (norm2(v) == 0.0) continue;
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = k; i < m; ++i) s += v[i - k] * q(i, j);
      s *= 2.0;
      for (std::size_t i = k; i < m; ++i) q(i, j) -= s * v[i - k];
    }
  }
  out.q = std::move(q);

  // Rank check relative to the largest diagonal magnitude.
  double max_diag = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    max_diag = std::max(max_diag, std::abs(out.r(i, i)));
  out.full_rank = max_diag > 0.0;
  for (std::size_t i = 0; i < n && out.full_rank; ++i) {
    if (std::abs(out.r(i, i)) <= rank_tol * max_diag) out.full_rank = false;
  }
  return out;
}

Vector solve_upper_triangular(const Matrix& r, const Vector& b) {
  GPPM_CHECK(r.rows() == r.cols(), "R must be square");
  GPPM_CHECK(b.size() == r.rows(), "rhs size mismatch");
  const std::size_t n = r.rows();
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= r(ii, j) * x[j];
    GPPM_CHECK(r(ii, ii) != 0.0, "singular triangular system");
    x[ii] = acc / r(ii, ii);
  }
  return x;
}

}  // namespace gppm::linalg
