// Linear least squares via QR with column equilibration.
#pragma once

#include "linalg/matrix.hpp"

namespace gppm::linalg {

/// Result of a least-squares solve min ||A x - b||_2.
struct LstsqResult {
  Vector x;              ///< coefficient vector, size A.cols()
  double residual_ss;    ///< sum of squared residuals
  bool full_rank;        ///< false if A was column-rank-deficient
};

/// Solve the least-squares problem by Householder QR.  Columns of A are
/// scaled to unit norm before factorization and the solution is unscaled,
/// which keeps the solve stable for design matrices whose columns span many
/// orders of magnitude (counter values vs. intercept).  Rank-deficient
/// columns get coefficient 0 and full_rank=false.
LstsqResult lstsq(const Matrix& a, const Vector& b);

}  // namespace gppm::linalg
