// Normal-equations precomputation for incremental least squares.
//
// Forward selection scores hundreds of candidate fits that all share one
// sample matrix X.  Instead of refactorizing a design matrix per trial, the
// Gram system is built once — G = X^T X and c = X^T y over the *full*
// candidate set plus an implicit intercept column — and every trial fit is
// then answered from submatrices of G in O(k^2) via Cholesky (see
// stats/forward_selection.cpp).
//
// Columns are normalized to unit Euclidean length (the same equilibration
// lstsq applies), which keeps the Gram matrix conditioned even though raw
// counter features span many orders of magnitude.  All R^2-type statistics
// are invariant under this column scaling.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace gppm::linalg {

/// Precomputed normal equations of the design [1 | X] against target y,
/// with unit-normalized columns.  Design index 0 is the intercept; candidate
/// column j of X is design index j + 1.
struct GramSystem {
  Matrix gram;       ///< (p+1) x (p+1) normalized X^T X, unit diagonal
  Vector xty;        ///< (p+1) normalized X^T y
  Vector col_scale;  ///< per-design-column Euclidean norm (0 for zero cols)
  /// Transpose-once column panel: row j is candidate column j of X stored
  /// contiguously (p x n).  Built once per system so every column dot in
  /// the Gram accumulation — and any later streaming refit against the
  /// same sample block — is a contiguous SIMD kernel instead of a
  /// cols()-strided walk over the row-major sample matrix.
  Matrix panel;
  double yty = 0.0;  ///< y^T y
  double tss = 0.0;  ///< total sum of squares about the mean of y
  std::size_t n_rows = 0;
  std::size_t n_candidates = 0;
};

/// Build the Gram system.  With `parallel` set, the O(p^2 n) entry
/// computation fans out over the shared compute pool; each Gram entry is
/// produced by exactly one task with a fixed summation order (the
/// common/simd.hpp 8-lane tree, identical on every backend), so the result
/// is bit-identical to the serial build and to a -DGPPM_SIMD=off build.
GramSystem build_gram_system(const Matrix& candidates, const Vector& y,
                             bool parallel = false);

}  // namespace gppm::linalg
