// Dense row-major matrix and vector types.
//
// The regression layer needs only small dense problems (hundreds of rows,
// tens of columns), so this is a deliberately simple self-contained
// implementation: no expression templates, no BLAS dependency, bounds checks
// in every accessor (the cost is irrelevant at these sizes and the safety is
// not).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace gppm::linalg {

using Vector = std::vector<double>;

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// Construct from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  /// Bounds-checked element access.
  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Copy of row r as a vector.
  Vector row(std::size_t r) const;
  /// Borrowed pointer to row r's contiguous storage (cols() doubles).  The
  /// SIMD kernels (common/simd.hpp) consume rows through this.
  const double* row_ptr(std::size_t r) const;
  /// Copy of column c as a vector.
  Vector col(std::size_t c) const;
  /// Overwrite column c.
  void set_col(std::size_t c, const Vector& v);

  /// Dot product of two columns, computed in place (no temporary copies).
  /// Strided access (row-major storage), but over the same fixed 8-lane
  /// summation tree as the contiguous SIMD kernels, so col_dot over a
  /// column equals simd::dot over that column copied contiguous, bit for
  /// bit (the GramSystem column-panel path relies on this).
  double col_dot(std::size_t c1, std::size_t c2) const;
  /// Euclidean norm of column c, computed in place (no temporary copy).
  double col_norm(std::size_t c) const;
  /// Dot product of two rows (contiguous in memory, SIMD-vectorized).
  double row_dot(std::size_t r1, std::size_t r2) const;

  /// Matrix transpose.
  Matrix transposed() const;

  /// Matrix-matrix product; dimensions must agree.
  Matrix operator*(const Matrix& rhs) const;

  /// Matrix-vector product; v.size() must equal cols().
  Vector operator*(const Vector& v) const;

  /// Max absolute element difference; matrices must be the same shape.
  double max_abs_diff(const Matrix& other) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// Dot product; sizes must match.
double dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double norm2(const Vector& v);

/// a - b elementwise; sizes must match.
Vector sub(const Vector& a, const Vector& b);

}  // namespace gppm::linalg
