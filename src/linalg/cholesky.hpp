// Cholesky factorization of symmetric positive-definite matrices, plus the
// incremental operations the forward-selection engine is built on.
//
// Used for fast refits inside forward selection where the normal equations
// are small (<= 21 x 21) and well-conditioned after column scaling.  The
// append/update/downdate routines let a factor track a growing or rank-1
// perturbed Gram matrix in O(k^2) instead of refactorizing in O(k^3).
#pragma once

#include "linalg/matrix.hpp"

namespace gppm::linalg {

/// Lower-triangular L with A = L L^T.  Throws gppm::Error if A is not
/// (numerically) positive definite.
Matrix cholesky(const Matrix& a);

/// Solve A x = b given A's Cholesky factor is computed internally.
/// Requires A symmetric positive definite.
Vector cholesky_solve(const Matrix& a, const Vector& b);

/// Solve L y = b for lower-triangular L (forward substitution).
Vector solve_lower_triangular(const Matrix& l, const Vector& b);

/// Solve L^T x = y for lower-triangular L (back substitution on L^T).
Vector solve_lower_transposed(const Matrix& l, const Vector& y);

/// Grow a factor by one row/column: given L with A = L L^T (k x k), the new
/// column's cross terms `cross` = A[0..k-1, k] and diagonal `diag` = A[k, k],
/// return the (k+1) x (k+1) factor of the bordered matrix.  Throws
/// gppm::Error if the bordered matrix is not (numerically) positive definite
/// — i.e. the appended column is linearly dependent on the existing ones.
Matrix cholesky_append(const Matrix& l, const Vector& cross, double diag);

/// Factor of the rank-1 update A + v v^T, given L with A = L L^T.  O(k^2).
Matrix cholesky_update(const Matrix& l, const Vector& v);

/// Factor of the rank-1 downdate A - v v^T, given L with A = L L^T.  O(k^2).
/// Throws gppm::Error if the downdated matrix is not positive definite.
Matrix cholesky_downdate(const Matrix& l, const Vector& v);

}  // namespace gppm::linalg
