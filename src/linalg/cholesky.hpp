// Cholesky factorization of symmetric positive-definite matrices.
//
// Used for fast refits inside forward selection where the normal equations
// are small (<= 21 x 21) and well-conditioned after column scaling.
#pragma once

#include "linalg/matrix.hpp"

namespace gppm::linalg {

/// Lower-triangular L with A = L L^T.  Throws gppm::Error if A is not
/// (numerically) positive definite.
Matrix cholesky(const Matrix& a);

/// Solve A x = b given A's Cholesky factor is computed internally.
/// Requires A symmetric positive definite.
Vector cholesky_solve(const Matrix& a, const Vector& b);

}  // namespace gppm::linalg
