#include "stats/forward_selection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace gppm::stats {

linalg::Matrix gather_columns(const linalg::Matrix& m,
                              const std::vector<std::size_t>& cols) {
  linalg::Matrix out(m.rows(), cols.size());
  for (std::size_t j = 0; j < cols.size(); ++j) {
    GPPM_CHECK(cols[j] < m.cols(), "column index out of range");
    for (std::size_t i = 0; i < m.rows(); ++i) out(i, j) = m(i, cols[j]);
  }
  return out;
}

namespace {
bool is_constant_column(const linalg::Matrix& m, std::size_t c) {
  const double first = m(0, c);
  for (std::size_t i = 1; i < m.rows(); ++i) {
    if (m(i, c) != first) return false;
  }
  return true;
}
}  // namespace

SelectionResult forward_select(const linalg::Matrix& candidates,
                               const linalg::Vector& y,
                               const SelectionOptions& options) {
  GPPM_CHECK(candidates.rows() == y.size(), "X/y row mismatch");
  GPPM_CHECK(candidates.rows() >= 3, "too few samples");
  GPPM_CHECK(options.max_variables >= 1, "max_variables must be >= 1");

  const std::size_t n_candidates = candidates.cols();
  std::vector<bool> used(n_candidates, false);
  // Constant columns can never improve the fit beyond the intercept and make
  // the design rank-deficient; exclude them up front.
  for (std::size_t c = 0; c < n_candidates; ++c) {
    if (is_constant_column(candidates, c)) used[c] = true;
  }

  SelectionResult result;
  double best_adj_r2 = -std::numeric_limits<double>::infinity();

  const std::size_t cap =
      std::min(options.max_variables,
               candidates.rows() >= 2 ? candidates.rows() - 2
                                      : static_cast<std::size_t>(0));

  while (result.selected.size() < cap) {
    std::size_t best_c = n_candidates;
    double best_step_r2 = best_adj_r2;
    OlsFit best_fit;

    for (std::size_t c = 0; c < n_candidates; ++c) {
      if (used[c]) continue;
      std::vector<std::size_t> trial = result.selected;
      trial.push_back(c);
      const OlsFit fit = ols_fit(gather_columns(candidates, trial), y);
      if (!fit.full_rank) continue;  // collinear with current model
      if (fit.adjusted_r_squared > best_step_r2) {
        best_step_r2 = fit.adjusted_r_squared;
        best_c = c;
        best_fit = fit;
      }
    }

    if (best_c == n_candidates) break;  // nothing improves
    if (!result.selected.empty() &&
        best_step_r2 - best_adj_r2 < options.min_improvement) {
      break;
    }

    used[best_c] = true;
    result.selected.push_back(best_c);
    result.fit = best_fit;
    result.r2_trace.push_back(best_step_r2);
    best_adj_r2 = best_step_r2;
  }

  GPPM_CHECK(!result.selected.empty(),
             "forward selection found no usable variable");
  return result;
}

}  // namespace gppm::stats
