#include "stats/forward_selection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/gram.hpp"
#include "obs/obs.hpp"

namespace gppm::stats {

namespace {

// Selection-engine instruments, cached once; every record below is a single
// enabled-flag branch when obs is off, keeping the hot path at reference
// speed.
struct SelectionInstruments {
  obs::Counter& steps;
  obs::Counter& candidates_scored;
  obs::Counter& qr_confirms;

  static SelectionInstruments& instance() {
    static SelectionInstruments* in = new SelectionInstruments{
        obs::Registry::instance().counter("select.steps"),
        obs::Registry::instance().counter("select.candidates_scored"),
        obs::Registry::instance().counter("select.qr_confirms"),
    };
    return *in;
  }
};

}  // namespace

linalg::Matrix gather_columns(const linalg::Matrix& m,
                              const std::vector<std::size_t>& cols) {
  linalg::Matrix out(m.rows(), cols.size());
  for (std::size_t j = 0; j < cols.size(); ++j) {
    GPPM_CHECK(cols[j] < m.cols(), "column index out of range");
    for (std::size_t i = 0; i < m.rows(); ++i) out(i, j) = m(i, cols[j]);
  }
  return out;
}

namespace {

/// A column whose spread is negligible *relative to its magnitude* can never
/// improve the fit beyond the intercept; it only costs a rank-deficient
/// trial solve per step.  The relative tolerance also catches columns that
/// are constant up to rounding (e.g. a counter rate quantized at 1e-12 of
/// its value), which an exact equality test lets through.
bool is_constant_column(const linalg::Matrix& m, std::size_t c) {
  double lo = m(0, c), hi = m(0, c);
  for (std::size_t i = 1; i < m.rows(); ++i) {
    lo = std::min(lo, m(i, c));
    hi = std::max(hi, m(i, c));
  }
  const double magnitude = std::max(std::abs(lo), std::abs(hi));
  return hi - lo <= magnitude * 1e-12;
}

/// Candidate columns the engines must ignore up front.
std::vector<bool> excluded_columns(const linalg::Matrix& candidates) {
  std::vector<bool> used(candidates.cols(), false);
  for (std::size_t c = 0; c < candidates.cols(); ++c) {
    if (is_constant_column(candidates, c)) used[c] = true;
  }
  return used;
}

std::size_t selection_cap(const linalg::Matrix& candidates,
                          const SelectionOptions& options) {
  return std::min(options.max_variables,
                  candidates.rows() >= 2 ? candidates.rows() - 2
                                         : static_cast<std::size_t>(0));
}

/// Reference engine: refit every trial model from scratch by QR.
SelectionResult forward_select_naive(const linalg::Matrix& candidates,
                                     const linalg::Vector& y,
                                     const SelectionOptions& options) {
  const std::size_t n_candidates = candidates.cols();
  std::vector<bool> used = excluded_columns(candidates);

  SelectionResult result;
  double best_adj_r2 = -std::numeric_limits<double>::infinity();
  const std::size_t cap = selection_cap(candidates, options);

  while (result.selected.size() < cap) {
    std::size_t best_c = n_candidates;
    double best_step_r2 = best_adj_r2;
    OlsFit best_fit;

    for (std::size_t c = 0; c < n_candidates; ++c) {
      if (used[c]) continue;
      std::vector<std::size_t> trial = result.selected;
      trial.push_back(c);
      const OlsFit fit = ols_fit(gather_columns(candidates, trial), y);
      if (!fit.full_rank) continue;  // collinear with current model
      if (fit.adjusted_r_squared > best_step_r2) {
        best_step_r2 = fit.adjusted_r_squared;
        best_c = c;
        best_fit = fit;
      }
    }

    if (best_c == n_candidates) break;  // nothing improves
    if (!result.selected.empty() &&
        best_step_r2 - best_adj_r2 < options.min_improvement) {
      break;
    }

    used[best_c] = true;
    result.selected.push_back(best_c);
    result.fit = best_fit;
    result.r2_trace.push_back(best_step_r2);
    result.prefix_fits.push_back(std::move(best_fit));
    best_adj_r2 = best_step_r2;
  }
  return result;
}

/// Incremental engine: score candidates from the precomputed Gram system by
/// a one-column Cholesky append in O(k^2), QR-refit only accepted models.
///
/// State invariants, all in the column-normalized design of the GramSystem
/// (design index 0 = intercept, candidate c = c + 1):
///   l       = Cholesky factor of gram[model, model] (row-grown, k x k)
///   z       = l^{-1} xty[model], so rss = y^T y - |z|^2
/// Appending design column d to the model extends the factor by
///   w = l^{-1} gram[model, d],   pivot s = 1 - |w|^2,
///   z_d = (xty[d] - w.z) / sqrt(s),   rss' = rss - z_d^2,
/// which prices every candidate's exact OLS residual in O(k^2).
class IncrementalState {
 public:
  IncrementalState(const linalg::GramSystem& gs)
      : gs_(gs), model_{0}, lrows_{{1.0}}, z_{gs.xty[0]} {
    rss_ = gs_.yty - z_[0] * z_[0];
  }

  /// Adjusted R^2 of the model extended with candidate c, or NaN when c is
  /// numerically collinear with the current model.
  double score(std::size_t c) const {
    linalg::Vector w;
    double s = 0.0, zd = 0.0;
    if (!try_append(c, w, s, zd)) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    double rss = rss_ - zd * zd;
    if (rss < 0.0) rss = 0.0;
    const double n = static_cast<double>(gs_.n_rows);
    const double k = static_cast<double>(model_.size());  // params incl. new
    if (gs_.tss <= 0.0) return 1.0;
    const double r2 = 1.0 - rss / gs_.tss;
    return 1.0 - (1.0 - r2) * (n - 1.0) / (n - k - 1.0);
  }

  /// Extend the model with candidate c (must have scored non-NaN).
  void accept(std::size_t c) {
    linalg::Vector w;
    double s = 0.0, zd = 0.0;
    GPPM_CHECK(try_append(c, w, s, zd), "accepting a collinear candidate");
    w.push_back(std::sqrt(s));
    lrows_.push_back(std::move(w));
    z_.push_back(zd);
    rss_ -= zd * zd;
    if (rss_ < 0.0) rss_ = 0.0;
    model_.push_back(c + 1);
  }

 private:
  /// Pivot tolerance matching the QR engine's rank test: QR flags a trial
  /// design rank-deficient when the new diagonal of R falls below 1e-12 of
  /// the largest (all <= 1 after normalization); s is that diagonal squared.
  static constexpr double kPivotTol = 1e-24;

  bool try_append(std::size_t c, linalg::Vector& w, double& s,
                  double& zd) const {
    const std::size_t d = c + 1;
    const std::size_t k = model_.size();
    if (gs_.col_scale[d] <= 0.0) return false;  // all-zero column
    // Forward substitution against the row-grown factor; the subtracted
    // cross term is one contiguous SIMD dot per row.
    w.resize(k);
    for (std::size_t i = 0; i < k; ++i) {
      const double acc =
          gs_.gram(model_[i], d) - simd::dot(lrows_[i].data(), w.data(), i);
      w[i] = acc / lrows_[i][i];
    }
    s = 1.0 - simd::dot(w.data(), w.data(), k);
    const double wz = simd::dot(w.data(), z_.data(), k);
    if (s <= kPivotTol) return false;
    zd = (gs_.xty[d] - wz) / std::sqrt(s);
    return true;
  }

  const linalg::GramSystem& gs_;
  std::vector<std::size_t> model_;        ///< design indices, intercept first
  std::vector<linalg::Vector> lrows_;     ///< growable lower-triangular factor
  linalg::Vector z_;
  double rss_ = 0.0;
};

SelectionResult forward_select_incremental(const linalg::Matrix& candidates,
                                           const linalg::Vector& y,
                                           const SelectionOptions& options) {
  const std::size_t n_candidates = candidates.cols();
  std::vector<bool> used = excluded_columns(candidates);
  const std::size_t cap = selection_cap(candidates, options);

  const linalg::GramSystem gs =
      linalg::build_gram_system(candidates, y, options.parallel);
  IncrementalState state(gs);

  SelectionResult result;
  double best_adj_r2 = -std::numeric_limits<double>::infinity();
  // Width of the window (below the best score) within which Gram-based
  // scores cannot be trusted to rank candidates: anything this close to the
  // top is re-scored by the exact QR reference before the argmax decides.
  const double score_slack = std::max(options.min_improvement, 1e-9);

  std::vector<double> scores(n_candidates);
  std::vector<bool> confirmed(n_candidates);
  std::vector<OlsFit> exact_fits(n_candidates);

  // Replace candidate c's O(k^2) score with its exact QR adjusted R^2 (NaN
  // if the trial design is rank-deficient).
  const auto confirm = [&](std::size_t c) {
    obs::ObsSpan span("select.confirm");
    SelectionInstruments::instance().qr_confirms.add();
    std::vector<std::size_t> trial = result.selected;
    trial.push_back(c);
    OlsFit exact = ols_fit(gather_columns(candidates, trial), y);
    if (!exact.full_rank) {
      scores[c] = std::numeric_limits<double>::quiet_NaN();
      return;
    }
    scores[c] = exact.adjusted_r_squared;
    exact_fits[c] = std::move(exact);
    confirmed[c] = true;
  };

  while (result.selected.size() < cap) {
    obs::ObsSpan step_span("select.step");
    SelectionInstruments::instance().steps.add();
    const auto score_one = [&](std::size_t c) {
      scores[c] = used[c] ? std::numeric_limits<double>::quiet_NaN()
                          : state.score(c);
    };
    {
      obs::ObsSpan score_span("select.score");
      if (options.parallel) {
        // Each slot is written by exactly one iteration, so the fan-out is
        // bit-deterministic; the argmax below is serial with first-index
        // wins, matching the reference engine's strict-improvement scan.
        gppm::parallel_for(n_candidates, score_one, /*min_parallel=*/64);
      } else {
        for (std::size_t c = 0; c < n_candidates; ++c) score_one(c);
      }
      SelectionInstruments::instance().candidates_scored.add(n_candidates);
    }
    std::fill(confirmed.begin(), confirmed.end(), false);

    bool accepted = false;
    bool stop = false;
    while (!accepted && !stop) {
      // First-index-wins argmax, matching the reference engine's ascending
      // strict-improvement scan.
      std::size_t best_c = n_candidates;
      double best_score = -std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < n_candidates; ++c) {
        if (std::isnan(scores[c])) continue;
        if (scores[c] > best_score) {
          best_score = scores[c];
          best_c = c;
        }
      }
      if (best_c == n_candidates) {
        stop = true;  // every remaining candidate is used or collinear
        break;
      }

      // The accept/stop decisions and the returned models must come from the
      // reference QR fit, so both engines apply tie-breaking and
      // min_improvement semantics to the same numbers.
      if (!confirmed[best_c]) {
        confirm(best_c);
        continue;  // re-rank on the exact value
      }

      // Gram scores can reorder an exact tie by a few ulps (e.g. between two
      // collinear candidates).  Confirm every candidate whose score lands in
      // the slack window below the winner, so ties compare exact-vs-exact
      // and the lowest index wins like the reference scan.
      bool window_changed = false;
      for (std::size_t c = 0; c < n_candidates; ++c) {
        if (confirmed[c] || std::isnan(scores[c])) continue;
        if (scores[c] < best_score - score_slack) continue;
        confirm(c);
        window_changed = true;
      }
      if (window_changed) continue;

      const double adj = scores[best_c];
      if (!result.selected.empty() &&
          (adj <= best_adj_r2 ||
           adj - best_adj_r2 < options.min_improvement)) {
        stop = true;
        break;
      }

      state.accept(best_c);
      used[best_c] = true;
      result.selected.push_back(best_c);
      result.fit = exact_fits[best_c];
      result.r2_trace.push_back(adj);
      result.prefix_fits.push_back(std::move(exact_fits[best_c]));
      best_adj_r2 = adj;
      accepted = true;
    }
    if (stop) break;
  }
  return result;
}

}  // namespace

SelectionResult forward_select(const linalg::Matrix& candidates,
                               const linalg::Vector& y,
                               const SelectionOptions& options) {
  GPPM_CHECK(candidates.rows() == y.size(), "X/y row mismatch");
  GPPM_CHECK(candidates.rows() >= 3, "too few samples");
  GPPM_CHECK(options.max_variables >= 1, "max_variables must be >= 1");

  obs::ObsSpan span("select.run");
  SelectionResult result = options.engine == SelectionEngine::NaiveQr
                               ? forward_select_naive(candidates, y, options)
                               : forward_select_incremental(candidates, y,
                                                            options);
  GPPM_CHECK(!result.selected.empty(),
             "forward selection found no usable variable");
  return result;
}

}  // namespace gppm::stats
