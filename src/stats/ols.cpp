#include "stats/ols.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/lstsq.hpp"
#include "stats/descriptive.hpp"

namespace gppm::stats {

double OlsFit::predict(const linalg::Vector& features) const {
  GPPM_CHECK(features.size() == coefficients.size(),
             "feature size != coefficient count");
  return intercept + linalg::dot(features, coefficients);
}

OlsFit ols_fit(const linalg::Matrix& x, const linalg::Vector& y,
               bool fit_intercept) {
  GPPM_CHECK(x.rows() == y.size(), "X/y row mismatch");
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  const std::size_t total_params = p + (fit_intercept ? 1 : 0);
  GPPM_CHECK(n > total_params, "not enough samples for the parameter count");

  // Build the design matrix with an intercept column if requested.
  linalg::Matrix design(n, total_params);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t j = 0;
    if (fit_intercept) design(i, j++) = 1.0;
    for (std::size_t c = 0; c < p; ++c) design(i, j++) = x(i, c);
  }

  const linalg::LstsqResult sol = linalg::lstsq(design, y);

  OlsFit fit;
  fit.n_samples = n;
  fit.n_predictors = p;
  fit.full_rank = sol.full_rank;
  fit.residual_ss = sol.residual_ss;
  std::size_t j = 0;
  if (fit_intercept) fit.intercept = sol.x[j++];
  fit.coefficients.assign(sol.x.begin() + static_cast<std::ptrdiff_t>(j),
                          sol.x.end());

  // R^2 against the mean model (or against zero when no intercept).
  double tss = 0.0;
  if (fit_intercept) {
    const double my = mean(y);
    for (double v : y) tss += (v - my) * (v - my);
  } else {
    for (double v : y) tss += v * v;
  }
  if (tss <= 0.0) {
    fit.r_squared = 1.0;
    fit.adjusted_r_squared = 1.0;
    return fit;
  }
  fit.r_squared = 1.0 - fit.residual_ss / tss;
  const double dof = static_cast<double>(n) - static_cast<double>(total_params);
  fit.adjusted_r_squared =
      1.0 - (1.0 - fit.r_squared) * (static_cast<double>(n) - 1.0) / dof;
  return fit;
}

}  // namespace gppm::stats
