#include "stats/metrics.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gppm::stats {

namespace {
void check_sizes(const std::vector<double>& a, const std::vector<double>& p) {
  GPPM_CHECK(a.size() == p.size(), "actual/predicted size mismatch");
  GPPM_CHECK(!a.empty(), "empty metric input");
}
}  // namespace

std::vector<double> signed_percentage_errors(const std::vector<double>& actual,
                                             const std::vector<double>& predicted) {
  check_sizes(actual, predicted);
  std::vector<double> out(actual.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    GPPM_CHECK(actual[i] != 0.0, "percentage error with zero actual");
    out[i] = (predicted[i] - actual[i]) / std::abs(actual[i]) * 100.0;
  }
  return out;
}

std::vector<double> absolute_percentage_errors(
    const std::vector<double>& actual, const std::vector<double>& predicted) {
  std::vector<double> out = signed_percentage_errors(actual, predicted);
  for (double& v : out) v = std::abs(v);
  return out;
}

double mape(const std::vector<double>& actual,
            const std::vector<double>& predicted) {
  const std::vector<double> errs = absolute_percentage_errors(actual, predicted);
  double acc = 0.0;
  for (double e : errs) acc += e;
  return acc / static_cast<double>(errs.size());
}

double mae(const std::vector<double>& actual,
           const std::vector<double>& predicted) {
  check_sizes(actual, predicted);
  double acc = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    acc += std::abs(predicted[i] - actual[i]);
  }
  return acc / static_cast<double>(actual.size());
}

}  // namespace gppm::stats
