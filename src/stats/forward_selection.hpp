// Forward stepwise variable selection maximizing adjusted R^2.
//
// This is the selection procedure of the paper (Section IV-A): starting from
// the empty model, greedily add the candidate column that maximizes adjusted
// R-bar^2, stop when no candidate improves it or when the cap on the number
// of variables (10 in the paper; 5..20 in the Fig. 7/8 sweeps) is reached.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "stats/ols.hpp"

namespace gppm::stats {

/// Outcome of a forward-selection run.
struct SelectionResult {
  std::vector<std::size_t> selected;  ///< candidate column indices, in
                                      ///< the order they were added
  OlsFit fit;                         ///< final model over the selected columns
  std::vector<double> r2_trace;       ///< adjusted R^2 after each addition
};

/// Options for forward selection.
struct SelectionOptions {
  std::size_t max_variables = 10;
  /// Stop early if the best candidate improves adjusted R^2 by less than
  /// this amount (0 reproduces "maximize" exactly; a tiny positive epsilon
  /// avoids adding numerically useless columns).
  double min_improvement = 1e-9;
};

/// Run forward selection of columns of `candidates` against target `y`.
/// Columns that are constant or collinear with the current model are skipped.
SelectionResult forward_select(const linalg::Matrix& candidates,
                               const linalg::Vector& y,
                               const SelectionOptions& options = {});

/// Helper: gather the given columns of a matrix into a new matrix.
linalg::Matrix gather_columns(const linalg::Matrix& m,
                              const std::vector<std::size_t>& cols);

}  // namespace gppm::stats
