// Forward stepwise variable selection maximizing adjusted R^2.
//
// This is the selection procedure of the paper (Section IV-A): starting from
// the empty model, greedily add the candidate column that maximizes adjusted
// R-bar^2, stop when no candidate improves it or when the cap on the number
// of variables (10 in the paper; 5..20 in the Fig. 7/8 sweeps) is reached.
//
// Two engines implement the identical procedure:
//
//  * NaiveQr — the reference: every trial model is refit from scratch by QR
//    least squares, O(steps x candidates x n k^2).
//  * IncrementalGram (default) — the Gram matrix G = X^T X and X^T y are
//    built once; each trial is scored in O(k^2) by appending one column to a
//    Cholesky factor of the selected submatrix, and only the *accepted*
//    model per step is refit by the reference QR path.  This keeps selected
//    sets, R^2 traces and coefficients identical to NaiveQr while removing
//    the per-candidate refits that dominate its cost.  Candidate scoring
//    within a step can additionally fan out over the shared compute pool.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "stats/ols.hpp"

namespace gppm::stats {

/// Outcome of a forward-selection run.
struct SelectionResult {
  std::vector<std::size_t> selected;  ///< candidate column indices, in
                                      ///< the order they were added
  OlsFit fit;                         ///< final model over the selected columns
  std::vector<double> r2_trace;       ///< adjusted R^2 after each addition
  /// Fitted model after each addition; prefix_fits[k-1] is the model over
  /// the first k selected columns and prefix_fits.back() == fit.  Because
  /// greedy selection is prefix-consistent, prefix_fits[k-1] is *exactly*
  /// the model a separate run capped at k variables would produce — the
  /// nvars sweeps (Figs. 7/8) read all of 5/10/15/20 from one k=20 run.
  std::vector<OlsFit> prefix_fits;
};

/// Which implementation carries out the selection (results are identical).
enum class SelectionEngine { NaiveQr, IncrementalGram };

/// Options for forward selection.
struct SelectionOptions {
  std::size_t max_variables = 10;
  /// Stop early if the best candidate improves adjusted R^2 by less than
  /// this amount (0 reproduces "maximize" exactly; a tiny positive epsilon
  /// avoids adding numerically useless columns).
  double min_improvement = 1e-9;
  SelectionEngine engine = SelectionEngine::IncrementalGram;
  /// Fan candidate scoring within a step out over the shared compute pool
  /// (IncrementalGram only).  The argmax reduction is serial and ties break
  /// on the lowest column index either way, so results do not depend on
  /// this flag or the thread count.
  bool parallel = false;
};

/// Run forward selection of columns of `candidates` against target `y`.
/// Columns that are (near-)constant or collinear with the current model are
/// skipped.
SelectionResult forward_select(const linalg::Matrix& candidates,
                               const linalg::Vector& y,
                               const SelectionOptions& options = {});

/// Helper: gather the given columns of a matrix into a new matrix.
linalg::Matrix gather_columns(const linalg::Matrix& m,
                              const std::vector<std::size_t>& cols);

}  // namespace gppm::stats
