#include "stats/streaming_ols.hpp"

#include "common/error.hpp"
#include "linalg/cholesky.hpp"

namespace gppm::stats {

StreamingOls::StreamingOls(std::size_t dim, StreamingOlsOptions options)
    : dim_(dim), options_(options) {
  GPPM_CHECK(dim_ >= 1, "streaming OLS needs at least one column");
  GPPM_CHECK(options_.window >= 1, "streaming OLS window must be >= 1");
  GPPM_CHECK(options_.ridge > 0.0, "streaming OLS ridge must be > 0");
  prior_gram_ = linalg::Matrix(dim_, dim_);
  for (std::size_t i = 0; i < dim_; ++i) prior_gram_(i, i) = options_.ridge;
  prior_rhs_.assign(dim_, 0.0);
  rhs_ = prior_rhs_;
  factor_ = linalg::cholesky(prior_gram_);
  rebuilds_ = 0;  // the constructor's factorization is not a rebuild
}

void StreamingOls::seed(const linalg::Matrix& x, const linalg::Vector& y) {
  GPPM_CHECK(x.cols() == dim_, "seed width != streaming OLS dimension");
  GPPM_CHECK(x.rows() == y.size(), "seed rows != targets");
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const double* row = x.row_ptr(r);
    for (std::size_t i = 0; i < dim_; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        prior_gram_(i, j) += row[i] * row[j];
      }
      prior_rhs_[i] += y[r] * row[i];
    }
  }
  // Mirror the lower triangle (cholesky reads the full matrix).
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = i + 1; j < dim_; ++j) {
      prior_gram_(i, j) = prior_gram_(j, i);
    }
  }
  rebuild();
}

void StreamingOls::observe(const linalg::Vector& x, double y) {
  GPPM_CHECK(x.size() == dim_, "observation width != streaming OLS dimension");
  factor_ = linalg::cholesky_update(factor_, x);
  for (std::size_t i = 0; i < dim_; ++i) rhs_[i] += y * x[i];
  window_.emplace_back(x, y);
  ++observed_;
  if (window_.size() <= options_.window) return;

  const auto& [old_x, old_y] = window_.front();
  for (std::size_t i = 0; i < dim_; ++i) rhs_[i] -= old_y * old_x[i];
  try {
    factor_ = linalg::cholesky_downdate(factor_, old_x);
    window_.pop_front();
  } catch (const Error&) {
    // Rounding broke positive-definiteness: refactorize from the exact
    // prior Gram plus the retained window.
    window_.pop_front();
    rebuild();
  }
  ++evicted_;
}

void StreamingOls::rebuild() {
  linalg::Matrix gram = prior_gram_;
  rhs_ = prior_rhs_;
  for (const auto& [x, y] : window_) {
    for (std::size_t i = 0; i < dim_; ++i) {
      for (std::size_t j = 0; j <= i; ++j) gram(i, j) += x[i] * x[j];
      rhs_[i] += y * x[i];
    }
  }
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = i + 1; j < dim_; ++j) gram(i, j) = gram(j, i);
  }
  factor_ = linalg::cholesky(gram);
  ++rebuilds_;
}

linalg::Vector StreamingOls::coefficients() const {
  const linalg::Vector y = linalg::solve_lower_triangular(factor_, rhs_);
  return linalg::solve_lower_transposed(factor_, y);
}

}  // namespace gppm::stats
