// Prediction-error metrics reported by the paper's evaluation
// (TABLEs VII/VIII report mean absolute percentage error and, for power,
// mean absolute error in watts).
#pragma once

#include <vector>

namespace gppm::stats {

/// Mean absolute percentage error: mean(|pred - actual| / |actual|) * 100.
/// Requires all actual values nonzero.
double mape(const std::vector<double>& actual,
            const std::vector<double>& predicted);

/// Mean absolute error in the units of the inputs.
double mae(const std::vector<double>& actual,
           const std::vector<double>& predicted);

/// Per-sample signed percentage errors ((pred - actual) / actual * 100).
std::vector<double> signed_percentage_errors(
    const std::vector<double>& actual, const std::vector<double>& predicted);

/// Per-sample absolute percentage errors.
std::vector<double> absolute_percentage_errors(
    const std::vector<double>& actual, const std::vector<double>& predicted);

}  // namespace gppm::stats
