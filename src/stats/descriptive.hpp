// Descriptive statistics helpers used by the evaluation layer and the
// box-and-whisker figures.
#pragma once

#include <cstddef>
#include <vector>

namespace gppm::stats {

double mean(const std::vector<double>& v);
double variance(const std::vector<double>& v);  ///< sample variance (n-1)
double stddev(const std::vector<double>& v);
double min_of(const std::vector<double>& v);
double max_of(const std::vector<double>& v);

/// Linear-interpolated quantile, q in [0, 1].  Requires non-empty input.
double quantile(std::vector<double> v, double q);

/// Median (quantile 0.5).
double median(const std::vector<double>& v);

/// Five-number summary for box-and-whisker plots.  Whiskers follow the Tukey
/// convention: most extreme data point within 1.5 IQR of the box.
struct FiveNumber {
  double whisker_lo;
  double q1;
  double median;
  double q3;
  double whisker_hi;
};
FiveNumber five_number(const std::vector<double>& v);

/// Pearson correlation coefficient; requires equal non-trivial sizes.
double pearson(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace gppm::stats
