#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gppm::stats {

double mean(const std::vector<double>& v) {
  GPPM_CHECK(!v.empty(), "mean of empty vector");
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  GPPM_CHECK(v.size() >= 2, "variance needs >= 2 samples");
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size() - 1);
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double min_of(const std::vector<double>& v) {
  GPPM_CHECK(!v.empty(), "min of empty vector");
  return *std::min_element(v.begin(), v.end());
}

double max_of(const std::vector<double>& v) {
  GPPM_CHECK(!v.empty(), "max of empty vector");
  return *std::max_element(v.begin(), v.end());
}

double quantile(std::vector<double> v, double q) {
  GPPM_CHECK(!v.empty(), "quantile of empty vector");
  GPPM_CHECK(q >= 0.0 && q <= 1.0, "quantile out of [0,1]");
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double median(const std::vector<double>& v) { return quantile(v, 0.5); }

FiveNumber five_number(const std::vector<double>& v) {
  GPPM_CHECK(!v.empty(), "five_number of empty vector");
  FiveNumber f{};
  f.q1 = quantile(v, 0.25);
  f.median = quantile(v, 0.5);
  f.q3 = quantile(v, 0.75);
  const double iqr = f.q3 - f.q1;
  const double lo_fence = f.q1 - 1.5 * iqr;
  const double hi_fence = f.q3 + 1.5 * iqr;
  f.whisker_lo = f.q3;
  f.whisker_hi = f.q1;
  // Whisker = most extreme point within the fences.
  double wlo = f.q1, whi = f.q3;
  for (double x : v) {
    if (x >= lo_fence) wlo = std::min(wlo, x);
    if (x <= hi_fence) whi = std::max(whi, x);
  }
  f.whisker_lo = wlo;
  f.whisker_hi = whi;
  return f;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  GPPM_CHECK(x.size() == y.size() && x.size() >= 2, "pearson size mismatch");
  const double mx = mean(x), my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  GPPM_CHECK(sxx > 0.0 && syy > 0.0, "pearson of constant series");
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace gppm::stats
