// Sliding-window ordinary least squares on an incrementally-maintained
// Cholesky factor — the refit engine behind the online DVFS governor.
//
// The offline pipeline fits once over the whole corpus; a governor watching
// a live counter stream must *keep* fitting as the workload mix drifts,
// without paying a full refactorization per observation.  This class keeps
// the normal equations G = X^T X and b = X^T y in factored form:
//
//   * seed rows (the offline corpus) enter the prior Gram permanently —
//     they condition the problem and anchor the fit when the window is
//     short;
//   * each streamed observation is a rank-1 cholesky_update (O(k^2));
//   * once the window is full, the oldest streamed row leaves by
//     cholesky_downdate (O(k^2)); if rounding has eaten the factor's
//     positive-definiteness the engine rebuilds from the stored prior Gram
//     plus the live window (O(k^3), counted in rebuilds());
//   * coefficients() is two triangular solves against the current factor.
//
// Dimensions here are tiny (intercept + at most 10 selected variables), so
// every operation is microseconds; the point is the *contract* — bounded
// state, deterministic results, and a window that actually forgets.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>

#include "linalg/matrix.hpp"

namespace gppm::stats {

struct StreamingOlsOptions {
  /// Streamed observations retained; the oldest is evicted beyond this.
  /// Seed rows are permanent and do not count against the window.
  std::size_t window = 256;
  /// Tikhonov prior lambda*I added to the Gram matrix: keeps the factor
  /// positive definite before any row arrives and bounds the condition
  /// number after collinear streams.  Negligibly small against real data.
  double ridge = 1e-6;
};

/// Incremental least squares over fixed-dimension rows (the caller supplies
/// the intercept as an explicit column if one is wanted).
class StreamingOls {
 public:
  explicit StreamingOls(std::size_t dim, StreamingOlsOptions options = {});

  /// Fold a block of permanent prior rows into the Gram matrix (the
  /// offline corpus).  May be called repeatedly; rebuilds the factor.
  void seed(const linalg::Matrix& x, const linalg::Vector& y);

  /// Stream one observation into the window.  Evicts the oldest streamed
  /// row once the window is full.
  void observe(const linalg::Vector& x, double y);

  /// Current solution of (G_prior + G_window + ridge I) beta = b.
  linalg::Vector coefficients() const;

  std::size_t dim() const { return dim_; }
  std::size_t window_size() const { return window_.size(); }
  std::uint64_t observed() const { return observed_; }
  std::uint64_t evicted() const { return evicted_; }
  /// Full refactorizations forced by seed() calls or downdate breakdown.
  int rebuilds() const { return rebuilds_; }

 private:
  void rebuild();

  std::size_t dim_;
  StreamingOlsOptions options_;
  linalg::Matrix factor_;      ///< Cholesky L of prior + window Gram
  linalg::Vector rhs_;         ///< X^T y over prior + window
  linalg::Matrix prior_gram_;  ///< ridge I + seeded rows (for rebuilds)
  linalg::Vector prior_rhs_;
  std::deque<std::pair<linalg::Vector, double>> window_;
  std::uint64_t observed_ = 0;
  std::uint64_t evicted_ = 0;
  int rebuilds_ = 0;
};

}  // namespace gppm::stats
