// Ordinary least squares with the goodness-of-fit statistics the paper's
// model selection relies on (R^2 and adjusted R^2).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace gppm::stats {

/// A fitted linear model y ~ X beta (+ intercept if fit_intercept).
struct OlsFit {
  linalg::Vector coefficients;  ///< one per column of X
  double intercept = 0.0;       ///< 0 if fit_intercept was false
  double r_squared = 0.0;
  double adjusted_r_squared = 0.0;
  double residual_ss = 0.0;
  std::size_t n_samples = 0;
  std::size_t n_predictors = 0;  ///< excluding the intercept
  bool full_rank = true;

  /// Predict for one feature row (size must equal n_predictors).
  double predict(const linalg::Vector& features) const;
};

/// Fit y ~ X by QR least squares.
/// Requires X.rows() == y.size() and X.rows() > X.cols() (+1 if intercept).
/// adjusted R^2 uses the standard (1 - (1-R^2)(n-1)/(n-p-1)) form, the
/// quantity the paper reports in TABLEs V and VI.
OlsFit ols_fit(const linalg::Matrix& x, const linalg::Vector& y,
               bool fit_intercept = true);

}  // namespace gppm::stats
