// The concurrent-kernel execution engine.
//
// MixEngine co-schedules a MixProfile on one simulated board: each member
// kernel holds its SM share (compute throughput scales with the share) and
// all members compete for DRAM bandwidth.  The contention model is
// first-order, on the same physics as the solo roofline: each member
// *demands* the bandwidth it would consume running alone in its partition;
// when the aggregate demand exceeds the device ceiling every member's
// memory time inflates by the overcommit factor.  The simulation is
// piecewise — as members retire, the survivors' contention factor is
// recomputed — so short co-runners stop hurting long ones once they finish.
// Deterministic: same (model, seed, mix, pair) gives bit-identical results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "gpusim/engine.hpp"
#include "mix/profile.hpp"

namespace gppm::mix {

/// What happened to one member of an executed mix.
struct MemberExecution {
  std::string benchmark;
  std::string kernel;
  double sm_share = 0.0;
  Duration solo_time;       ///< realized solo run on the full board
  Duration contended_time;  ///< completion time inside the mix
  double slowdown = 1.0;    ///< contended / solo (>= 1 by construction)
  double bw_demand = 0.0;   ///< bytes/s the member demands in its partition
  double co_bw_pressure = 0.0;  ///< co-runners' aggregate demand / ceiling
};

/// Result of executing one mix.
struct MixExecution {
  Duration makespan;              ///< time until the last member finishes
  Power avg_power;                ///< board power averaged over the makespan
  Energy energy;                  ///< avg_power * makespan
  sim::HardwareEvents events;     ///< blended ground truth over all members
  std::vector<MemberExecution> members;  ///< mix order
  double bw_pressure = 0.0;       ///< aggregate initial demand / ceiling
  double contention_factor = 1.0; ///< max(1, bw_pressure) at mix start
};

/// Co-schedules mixes on one simulated board.  Mirrors sim::Gpu's
/// determinism contract: results are keyed on (seed, model, mix identity,
/// operating point), never on call order.
class MixEngine {
 public:
  explicit MixEngine(sim::GpuModel model, std::uint64_t seed = 42);

  const sim::DeviceSpec& spec() const { return gpu_.spec(); }
  const sim::Gpu& gpu() const { return gpu_; }

  void set_frequency_pair(sim::FrequencyPair pair);
  sim::FrequencyPair frequency_pair() const { return gpu_.frequency_pair(); }

  /// Execute a validated mix at the pinned clocks.
  MixExecution execute(const MixProfile& mix) const;

 private:
  sim::Gpu gpu_;
  std::uint64_t seed_;
};

}  // namespace gppm::mix
