#include "mix/schedule.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gppm::mix {

std::vector<ScheduledMix> mix_schedule(const MixScheduleOptions& options,
                                       const std::vector<std::string>& exclude) {
  GPPM_CHECK(options.mixes > 0, "mix schedule with zero mixes");
  GPPM_CHECK(options.degree >= kMinMixDegree &&
                 options.degree <= kMaxMixDegree,
             "mix degree must be in [2, 4]");

  // Oversample the phase stream: grouping requires distinct benchmarks per
  // mix, and the stream's reshuffle boundaries can put the same program in
  // adjacent positions.  Phases that would duplicate a benchmark already in
  // the open mix are deferred, never dropped out of order arbitrarily —
  // the construction is a pure function of the stream, hence of the seed.
  workload::PhaseScheduleOptions popt;
  popt.phases = options.mixes * options.degree * 2;
  popt.seed = options.seed;
  popt.drift = options.drift;
  const std::vector<workload::Phase> stream =
      workload::phase_schedule(popt, exclude);

  std::vector<ScheduledMix> out;
  out.reserve(options.mixes);
  std::vector<workload::Phase> deferred;
  ScheduledMix open;

  auto has_benchmark = [&](const std::string& name) {
    return std::any_of(open.phases.begin(), open.phases.end(),
                       [&](const workload::Phase& p) {
                         return p.benchmark == name;
                       });
  };
  auto push_phase = [&](const workload::Phase& p) {
    open.phases.push_back(p);
    if (open.phases.size() == options.degree) {
      out.push_back(std::move(open));
      open = ScheduledMix{};
    }
  };

  for (const workload::Phase& p : stream) {
    if (out.size() == options.mixes) break;
    if (has_benchmark(p.benchmark)) {
      deferred.push_back(p);
      continue;
    }
    push_phase(p);
    // Deferred phases re-enter as soon as a mix can take them.
    for (std::size_t i = 0; i < deferred.size() && out.size() < options.mixes;) {
      if (!has_benchmark(deferred[i].benchmark)) {
        push_phase(deferred[i]);
        deferred.erase(deferred.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  GPPM_CHECK(out.size() == options.mixes,
             "phase stream too short to build the requested mixes");

  // Seeded, uneven SM shares normalized to a full partition.  Forked per
  // mix index so a schedule prefix is stable under a larger `mixes`.
  const Rng base(options.seed ^ fnv1a("gppm.mix.shares"));
  for (std::size_t mi = 0; mi < out.size(); ++mi) {
    Rng rng = base.fork(mi);
    std::vector<double>& shares = out[mi].shares;
    shares.resize(options.degree);
    double sum = 0.0;
    for (double& s : shares) {
      s = rng.uniform(0.5, 1.5);
      sum += s;
    }
    for (double& s : shares) s /= sum;
  }
  return out;
}

MixProfile make_mix_profile(const ScheduledMix& scheduled, std::size_t index) {
  GPPM_CHECK(scheduled.phases.size() == scheduled.shares.size(),
             "scheduled mix with mismatched phases/shares");
  MixProfile mix;
  mix.name = "mix-" + std::to_string(index);
  for (std::size_t i = 0; i < scheduled.phases.size(); ++i) {
    const sim::RunProfile run = scheduled.phases[i].profile();
    MixMember m;
    m.benchmark = scheduled.phases[i].benchmark;
    m.kernel = dominant_kernel(run);
    m.sm_share = scheduled.shares[i];
    mix.members.push_back(std::move(m));
  }
  validate(mix);
  return mix;
}

}  // namespace gppm::mix
