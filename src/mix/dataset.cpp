#include "mix/dataset.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "dvfs/combos.hpp"
#include "mix/engine.hpp"
#include "mix/model.hpp"
#include "profiler/cuda_profiler.hpp"

namespace gppm::mix {

namespace {

/// Average board power over a solo run's timeline.
Power timeline_power(const sim::RunExecution& exec) {
  double joules = 0.0;
  for (const sim::PowerSegment& seg : exec.timeline) {
    joules += seg.gpu_power.as_watts() * seg.duration.as_seconds();
  }
  const double total = exec.total_time.as_seconds();
  return Power::watts(total > 0.0 ? joules / total : 0.0);
}

}  // namespace

MixCorpus build_mix_corpus(sim::GpuModel model,
                           const MixCorpusOptions& options) {
  GPPM_CHECK(options.holdout_every >= 2,
             "holdout_every must be >= 2 (every corpus needs both splits)");

  MixCorpus corpus;
  corpus.model = model;
  corpus.degree = options.degree;
  corpus.solo.model = model;
  corpus.member_train.model = model;
  corpus.member_eval.model = model;
  corpus.power_train.model = model;
  corpus.power_eval.model = model;

  MixScheduleOptions sopt;
  sopt.mixes = options.mixes;
  sopt.degree = options.degree;
  sopt.seed = options.seed;
  sopt.drift = options.drift;
  const std::vector<ScheduledMix> schedule = mix_schedule(
      sopt, profiler::CudaProfiler::unsupported_benchmarks());

  MixEngine engine(model, options.seed);
  profiler::CudaProfiler prof(options.seed ^ 0xC0DA);
  prof.set_sampling_sigma(options.profiler_sampling_sigma);
  const std::vector<sim::FrequencyPair> pairs = dvfs::configurable_pairs(model);
  const sim::Architecture arch = engine.spec().architecture;

  for (std::size_t mi = 0; mi < schedule.size(); ++mi) {
    const MixProfile mix = make_mix_profile(schedule[mi], mi);
    const bool holdout =
        mi % options.holdout_every == options.holdout_every - 1;

    // --- Solo corpus: each member alone on the full board -------------
    // Counters at the default pair (the paper's basis), measurements at
    // every configurable pair.  The member corpus reuses these counters,
    // so solo and mix models see bit-identical observation noise.
    std::vector<profiler::ProfileResult> solo_counters;
    for (const MixMember& m : mix.members) {
      sim::RunProfile run;
      run.benchmark_name = m.benchmark;
      run.kernels.push_back(m.kernel);
      run.host_time = Duration::seconds(0.0);

      engine.set_frequency_pair(sim::kDefaultPair);
      core::Sample solo;
      solo.benchmark = m.benchmark;
      solo.size_index = mi;
      solo.counters = prof.collect(engine.gpu(), run);
      solo_counters.push_back(solo.counters);

      for (sim::FrequencyPair pair : pairs) {
        engine.set_frequency_pair(pair);
        const sim::RunExecution exec = engine.gpu().run(run);
        core::Measurement meas;
        meas.pair = pair;
        meas.exec_time = exec.total_time;
        meas.avg_power = timeline_power(exec);
        meas.energy = meas.avg_power * meas.exec_time;
        solo.runs.push_back(meas);
      }
      corpus.solo.samples.push_back(std::move(solo));
    }

    // --- Mix execution at the default pair: counter basis -------------
    engine.set_frequency_pair(sim::kDefaultPair);
    const MixExecution base = engine.execute(mix);
    const profiler::ProfileResult blended =
        prof.collect_events(arch, base.events, base.makespan, mix_key(mix));

    std::vector<core::Sample> members(mix.degree());
    for (std::size_t k = 0; k < mix.degree(); ++k) {
      members[k].benchmark = mix.members[k].benchmark;
      members[k].size_index = mi;
      members[k].counters =
          augment_profile(solo_counters[k], std::max(0.0, base.contention_factor - 1.0),
                          mix.members[k].sm_share);
    }
    core::Sample power;
    power.benchmark = mix.name;
    power.size_index = mi;
    power.counters = blended;

    // --- Measurements at every configurable pair ----------------------
    for (sim::FrequencyPair pair : pairs) {
      engine.set_frequency_pair(pair);
      const MixExecution exec = engine.execute(mix);
      for (std::size_t k = 0; k < mix.degree(); ++k) {
        core::Measurement meas;
        meas.pair = pair;
        meas.exec_time = exec.members[k].contended_time;
        meas.avg_power = exec.avg_power;
        meas.energy = meas.avg_power * meas.exec_time;
        members[k].runs.push_back(meas);
      }
      core::Measurement pmeas;
      pmeas.pair = pair;
      pmeas.exec_time = exec.makespan;
      pmeas.avg_power = exec.avg_power;
      pmeas.energy = exec.energy;
      power.runs.push_back(pmeas);
    }

    core::Dataset& member_ds =
        holdout ? corpus.member_eval : corpus.member_train;
    core::Dataset& power_ds = holdout ? corpus.power_eval : corpus.power_train;
    for (core::Sample& s : members) member_ds.samples.push_back(std::move(s));
    power_ds.samples.push_back(std::move(power));
  }

  GPPM_CHECK(!corpus.member_train.samples.empty() &&
                 !corpus.member_eval.samples.empty(),
             "mix corpus needs enough mixes for both splits; raise `mixes` "
             "or lower `holdout_every`");
  return corpus;
}

}  // namespace gppm::mix
