#include "mix/profile.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "gpusim/timing.hpp"

namespace gppm::mix {

void validate(const MixProfile& mix) {
  GPPM_CHECK(mix.members.size() >= kMinMixDegree &&
                 mix.members.size() <= kMaxMixDegree,
             "mix '" + mix.name + "': degree must be in [2, 4], got " +
                 std::to_string(mix.members.size()));
  double share_sum = 0.0;
  for (const MixMember& m : mix.members) {
    GPPM_CHECK(std::isfinite(m.sm_share) && m.sm_share > 0.0 &&
                   m.sm_share <= 1.0,
               "mix '" + mix.name + "': member '" + m.kernel.name +
                   "' sm_share must be in (0, 1]");
    share_sum += m.sm_share;
  }
  // Tolerate float accumulation on exactly-full partitions.
  GPPM_CHECK(share_sum <= 1.0 + 1e-9,
             "mix '" + mix.name + "': SM shares sum to " +
                 std::to_string(share_sum) + " > 1 (oversubscribed)");
  for (std::size_t i = 0; i < mix.members.size(); ++i) {
    for (std::size_t j = i + 1; j < mix.members.size(); ++j) {
      GPPM_CHECK(mix.members[i].benchmark != mix.members[j].benchmark,
                 "mix '" + mix.name + "': duplicate benchmark '" +
                     mix.members[i].benchmark + "'");
    }
  }
}

const sim::KernelProfile& dominant_kernel(const sim::RunProfile& profile) {
  GPPM_CHECK(!profile.kernels.empty(),
             "run '" + profile.benchmark_name + "' has no kernels");
  const sim::DeviceSpec& ref = sim::device_spec(sim::GpuModel::GTX480);
  const sim::KernelProfile* best = nullptr;
  double best_s = -1.0;
  for (const sim::KernelProfile& k : profile.kernels) {
    const double s =
        sim::compute_kernel_timing(ref, k, sim::kDefaultPair)
            .total_time.as_seconds();
    if (s > best_s) {
      best_s = s;
      best = &k;
    }
  }
  return *best;
}

std::uint64_t mix_key(const MixProfile& mix) {
  std::vector<std::string> keys;
  keys.reserve(mix.members.size());
  for (const MixMember& m : mix.members) {
    keys.push_back(m.kernel.name + "@" + std::to_string(m.sm_share));
  }
  std::sort(keys.begin(), keys.end());
  std::uint64_t key = fnv1a("gppm.mix");
  for (const std::string& k : keys) key ^= fnv1a(k);
  return key;
}

}  // namespace gppm::mix
