// Interference-aware model fitting and gating.
//
// The mix-level feature set extends the paper's counter basis with two
// pseudo-counters appended past the catalog (core::kMixFeaturePrefix):
//
//   mix.bw_pressure  (memory-event)  the mix's bandwidth overcommit beyond
//                                    the device ceiling (contention factor
//                                    minus one), scaled by the member's
//                                    profiled run time — its Eq. 2 feature
//                                    is proportional to the extra memory
//                                    time contention adds;
//   mix.sm_share     (core-event)    (1/share - 1) scaled by the profiled
//                                    run time — proportional to the extra
//                                    compute time a partial SM partition
//                                    adds.
//
// Both flow through the existing Eq. 1/Eq. 2 frequency scaling and the
// incremental-Gram forward selection unchanged; a solo-trained family sees
// neither, which is exactly why it underpredicts contended time.
#pragma once

#include "core/evaluation.hpp"
#include "mix/dataset.hpp"

namespace gppm::mix {

/// Names of the two mix pseudo-features (under core::kMixFeaturePrefix).
inline constexpr const char* kMixBwPressureFeature = "mix.bw_pressure";
inline constexpr const char* kMixSmShareFeature = "mix.sm_share";

/// Prefixes of the interacted pseudo-counters: each core-event counter `c`
/// gains a share-interacted copy `mix.sx.<c>` (reading scaled by
/// 1/share - 1) and each memory-event counter a bandwidth-interacted copy
/// `mix.bx.<c>` (scaled by the overcommit).  The extra time interference
/// adds is proportional to the member's own compute (resp. memory) work,
/// and these let the regression express that in the very basis the solo
/// model used for it, instead of through a single whole-run time proxy.
inline constexpr const char* kMixShareInteractionPrefix = "mix.sx.";
inline constexpr const char* kMixBwInteractionPrefix = "mix.bx.";

/// Append the two mix pseudo-readings to a member's (or blend's) profile.
/// `bw_overcommit` is the mix's aggregate-demand excess over the device
/// ceiling (MixExecution::contention_factor - 1; 0 when bandwidth does not
/// bind), `sm_share` the member's SM fraction.  Recomputable at serving
/// time from any profile plus the two mix scalars.
profiler::ProfileResult augment_profile(const profiler::ProfileResult& base,
                                        double bw_overcommit,
                                        double sm_share);

/// The two mix scalars recovered from an augmented profile's
/// pseudo-counters (throws if the profile was never augmented).
struct MixScalars {
  double bw_overcommit = 0.0;  ///< contention factor - 1
  double share_scalar = 0.0;   ///< 1/sm_share - 1
};
MixScalars mix_scalars(const profiler::ProfileResult& augmented);

/// The fitted per-degree model set of one board.
struct MixModelSet {
  sim::GpuModel model = sim::GpuModel::GTX480;
  std::size_t degree = 2;
  core::ModelFamily solo_time;   ///< fitted on the solo corpus (no mix terms)
  core::ModelFamily solo_power;  ///< fitted on the solo corpus
  core::ModelFamily mix_time;    ///< fitted on augmented member samples
  core::ModelFamily mix_power;   ///< fitted on blended per-mix samples
};

/// Fit the four families through the existing selection engine.  The solo
/// families select freely over the catalog; the mix families restrict
/// their candidates to the matching solo family's proven basis plus the
/// mix pseudo-features (ModelOptions::candidate_features), so small
/// interference corpora extend a validated feature set instead of chasing
/// noise counters.  The mix time family additionally chooses its candidate
/// set (with or without the rarely-binding bandwidth terms) and its prefix
/// length on two complementary validation slices of the training mixes.
MixModelSet fit_mix_models(const MixCorpus& corpus,
                           const core::ModelOptions& options = {});

/// Predict one member's contended time from its augmented profile, with
/// the prediction clamped to the physically admissible slowdown envelope
/// [0, solo_prediction * (1/share) * contention] — the guard that keeps a
/// leverage point in a small interference corpus from producing runaway
/// extrapolations at serving time.
double predict_member_time(const MixModelSet& models,
                           const profiler::ProfileResult& augmented,
                           sim::FrequencyPair pair);

/// Held-out gate quantities (evaluated on the corpus's eval splits).
///
/// The headline comparison is time-weighted (wape): it reads as the
/// misprediction of aggregate contended GPU-seconds, which is what
/// admission and capacity decisions consume, and it is robust to the
/// sub-second rows whose tiny denominators dominate mape on a corpus
/// whose targets span orders of magnitude.
struct MixEvaluation {
  double solo_time_wape = 0.0;   ///< solo family on contended member times
  double mix_time_wape = 0.0;    ///< mix family on the same rows
  double solo_time_mape = 0.0;   ///< unweighted, for reference
  double mix_time_mape = 0.0;    ///< unweighted, for reference
  /// Mean signed relative error (predicted - actual) / actual of the solo
  /// family on contended times; negative = systematic underprediction,
  /// which the acceptance gate requires the solo models to show.
  double solo_signed_bias = 0.0;
  double power_wape = 0.0;       ///< mix power family on held-out mixes
  double power_mape = 0.0;       ///< unweighted, for reference

  /// The interference gate: the mix family explains held-out contended
  /// time strictly better than the solo family, and the solo family
  /// systematically underpredicts it (interference is real and modeled).
  bool passes() const {
    return mix_time_wape < solo_time_wape && solo_signed_bias < 0.0;
  }
};

MixEvaluation evaluate_mix_models(const MixModelSet& models,
                                  const MixCorpus& corpus);

}  // namespace gppm::mix
