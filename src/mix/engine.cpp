#include "mix/engine.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "gpusim/power.hpp"
#include "gpusim/timing.hpp"

namespace gppm::mix {

namespace {

/// Bounded-overlap roofline combination, same form as the solo engine.
double roofline(double t_comp, double t_mem, double overlap) {
  const double t_max = std::max(t_comp, t_mem);
  const double t_min = std::min(t_comp, t_mem);
  return t_max + (1.0 - overlap) * t_min;
}

/// Per-member state threaded through the piecewise simulation.
struct MemberState {
  double t_comp = 0.0;     ///< per-launch compute time in its partition, s
  double t_mem_solo = 0.0; ///< per-launch memory time at full bandwidth, s
  double overlap = 0.85;
  double launches = 1.0;
  double factor = 1.0;     ///< realized/nominal unmodeled time factor
  double demand = 0.0;     ///< bytes/s wanted while the kernel executes
  double remaining = 1.0;  ///< fraction of the launch series left
  bool active = true;
};

}  // namespace

MixEngine::MixEngine(sim::GpuModel model, std::uint64_t seed)
    : gpu_(model, seed), seed_(seed) {}

void MixEngine::set_frequency_pair(sim::FrequencyPair pair) {
  gpu_.set_frequency_pair(pair);
}

MixExecution MixEngine::execute(const MixProfile& mix) const {
  validate(mix);
  const sim::DeviceSpec& spec = gpu_.spec();
  const sim::FrequencyPair pair = gpu_.frequency_pair();
  const double overhead = spec.timing.launch_overhead.as_seconds();
  const double ceiling = sim::device_bandwidth_ceiling(spec, pair);

  MixExecution out;
  std::vector<MemberState> st(mix.members.size());

  for (std::size_t i = 0; i < mix.members.size(); ++i) {
    const MixMember& m = mix.members[i];
    const sim::KernelTiming nominal =
        sim::compute_kernel_timing(spec, m.kernel, pair);
    // The solo run on the full board — what a solo-trained model predicts.
    const sim::KernelExecution solo = gpu_.launch(m.kernel);
    out.events += solo.events;

    MemberState& s = st[i];
    s.t_comp = nominal.compute_time.as_seconds() / m.sm_share;
    s.t_mem_solo = nominal.memory_time.as_seconds();
    s.overlap = m.kernel.overlap;
    s.launches = static_cast<double>(m.kernel.launches);
    // Recover the engine's counter-invisible time factor from the realized
    // solo run, so a mix member carries the same workload character solo
    // and contended (Gpu keys the draw on the kernel, not on call order).
    const double t_kernel_nominal = nominal.kernel_time.as_seconds();
    s.factor =
        t_kernel_nominal > 0.0
            ? (solo.timing.total_time.as_seconds() / s.launches - overhead) /
                  t_kernel_nominal
            : 1.0;
    // Demand: the bandwidth the member consumes running uncontended in its
    // partition.  A share cut raises memory-boundedness and thus demand —
    // the per-launch DRAM traffic is spread over a shorter compute shadow.
    const double t_part = roofline(s.t_comp, s.t_mem_solo, s.overlap);
    s.demand = t_part > 0.0 ? nominal.dram_bytes / t_part : 0.0;

    MemberExecution me;
    me.benchmark = m.benchmark;
    me.kernel = m.kernel.name;
    me.sm_share = m.sm_share;
    me.solo_time = solo.timing.total_time;
    me.bw_demand = s.demand;
    out.members.push_back(std::move(me));
  }

  GPPM_CHECK(ceiling > 0.0 || std::all_of(st.begin(), st.end(),
                                          [](const MemberState& s) {
                                            return s.t_mem_solo == 0.0;
                                          }),
             "mix '" + mix.name +
                 "' moves DRAM traffic but the device bandwidth ceiling at "
                 "this operating point is zero");

  double total_demand = 0.0;
  for (const MemberState& s : st) total_demand += s.demand;
  out.bw_pressure = ceiling > 0.0 ? total_demand / ceiling : 0.0;
  out.contention_factor = std::max(1.0, out.bw_pressure);
  for (std::size_t i = 0; i < st.size(); ++i) {
    out.members[i].co_bw_pressure =
        ceiling > 0.0 ? (total_demand - st[i].demand) / ceiling : 0.0;
  }

  // Piecewise co-simulation: within an interval the active set is fixed, so
  // each member progresses at 1/T_i of its launch series per second, where
  // T_i is its total time under the interval's contention factor.  The
  // earliest finisher bounds the interval; afterwards the survivors'
  // contention factor is recomputed (it can only drop).
  double elapsed = 0.0;
  double energy_j = 0.0;
  std::size_t active_count = st.size();
  while (active_count > 0) {
    double demand_sum = 0.0;
    for (const MemberState& s : st) {
      if (s.active) demand_sum += s.demand;
    }
    const double contention =
        ceiling > 0.0 ? std::max(1.0, demand_sum / ceiling) : 1.0;

    // Interval rates and the earliest retirement.
    double dt = 0.0;
    bool first = true;
    std::vector<double> totals(st.size(), 0.0);
    for (std::size_t i = 0; i < st.size(); ++i) {
      MemberState& s = st[i];
      if (!s.active) continue;
      const double t_cont =
          roofline(s.t_comp, s.t_mem_solo * contention, s.overlap);
      totals[i] = s.launches * (t_cont * s.factor + overhead);
      GPPM_CHECK(totals[i] > 0.0, "mix member with zero duration");
      const double finish = s.remaining * totals[i];
      if (first || finish < dt) {
        dt = finish;
        first = false;
      }
    }

    // Board power during the interval: each member keeps its partition's
    // compute busy for its compute fraction (share-weighted to the device)
    // and draws its granted bandwidth slice.
    double core_util = 0.0;
    double mem_util = 0.0;
    for (std::size_t i = 0; i < st.size(); ++i) {
      const MemberState& s = st[i];
      if (!s.active) continue;
      const double t_cont =
          roofline(s.t_comp, s.t_mem_solo * contention, s.overlap);
      if (t_cont > 0.0) {
        core_util += out.members[i].sm_share * std::min(1.0, s.t_comp / t_cont);
      }
      if (ceiling > 0.0) mem_util += s.demand / contention / ceiling;
    }
    core_util = std::clamp(core_util, 0.0, 1.0);
    mem_util = std::clamp(mem_util, 0.0, 1.0);
    const double watts =
        sim::gpu_power(spec, pair, core_util, mem_util).as_watts();

    elapsed += dt;
    energy_j += watts * dt;
    for (std::size_t i = 0; i < st.size(); ++i) {
      MemberState& s = st[i];
      if (!s.active) continue;
      s.remaining -= dt / totals[i];
      if (s.remaining <= 1e-12) {
        s.active = false;
        --active_count;
        out.members[i].contended_time = Duration::seconds(elapsed);
        const double solo_s = out.members[i].solo_time.as_seconds();
        out.members[i].slowdown = solo_s > 0.0 ? elapsed / solo_s : 1.0;
      }
    }
  }

  out.makespan = Duration::seconds(elapsed);

  // Counter-invisible power deviation, same structure as the solo engine:
  // a per-mix workload factor plus a small per-pair residual, scaling the
  // above-idle portion only.  Keyed on the mix identity so two engines
  // executing the same mix agree bit-for-bit.
  const std::uint64_t kkey =
      mix_key(mix) ^ (static_cast<std::uint64_t>(spec.model) << 40);
  Rng krng = Rng(seed_ ^ 0x9077e5).fork(kkey);
  Rng prng =
      Rng(seed_ ^ 0x9077e6).fork(kkey ^ (fnv1a(sim::to_string(pair)) << 1));
  const double pfactor =
      std::exp(spec.power.unmodeled_power_sigma * krng.normal() +
               0.03 * prng.normal());
  const double idle = sim::gpu_idle_power(spec, pair).as_watts();
  const double avg_nominal = elapsed > 0.0 ? energy_j / elapsed : idle;
  const double avg_w = idle + (avg_nominal - idle) * pfactor;
  out.avg_power = Power::watts(avg_w);
  out.energy = out.avg_power * out.makespan;

  // Blended elapsed cycles cover the co-scheduled wall time, not the sum of
  // each member's solo run (work-like counters blend by summation; cycle
  // counters follow the wall clock).
  const double core_hz = spec.core_clock.at(pair.core).frequency.as_hz();
  out.events.elapsed_cycles = elapsed * core_hz;

  return out;
}

}  // namespace gppm::mix
