// Deterministic mix-schedule generation.
//
// Composes workload::phase_schedule — the drifting (benchmark, scale)
// stream built for the governor — into co-schedules: consecutive eligible
// phases are grouped into mixes of a fixed degree, each member receiving a
// seeded SM share.  Same seed, same schedule, bit for bit; drift bounds are
// inherited per co-runner from the underlying phase stream.
#pragma once

#include <cstdint>
#include <vector>

#include "mix/profile.hpp"
#include "workload/phases.hpp"

namespace gppm::mix {

/// One scheduled co-schedule: the phases that feed it and the SM shares
/// assigned to them (parallel arrays, `degree` entries each).
struct ScheduledMix {
  std::vector<workload::Phase> phases;
  std::vector<double> shares;
};

struct MixScheduleOptions {
  std::size_t mixes = 12;      ///< number of co-schedules emitted
  std::size_t degree = 2;      ///< members per mix, in [2, 4]
  std::uint64_t seed = 42;     ///< equal seeds give identical schedules
  double drift = 0.25;         ///< per-phase scale wobble (see phase_schedule)
};

/// Build a deterministic schedule of kernel mixes over the benchmark suite,
/// skipping benchmarks named in `exclude` (callers pass the
/// profiler-unsupported set).  Benchmarks within one mix are distinct;
/// shares are seeded, uneven, and sum to 1 per mix.
std::vector<ScheduledMix> mix_schedule(
    const MixScheduleOptions& options = {},
    const std::vector<std::string>& exclude = {});

/// Materialize a scheduled mix into an executable MixProfile: each phase
/// contributes the dominant kernel of its run profile at the scheduled
/// scale.  `index` names the mix deterministically.
MixProfile make_mix_profile(const ScheduledMix& scheduled, std::size_t index);

}  // namespace gppm::mix
