// Co-scheduled kernel mixes (gppm::mix input format).
//
// A MixProfile describes 2-4 kernels resident on one board at once, each
// holding a fraction of the SMs.  The paper characterizes one kernel at a
// time; real fleets co-schedule, and the contention that produces is the
// scenario axis this subsystem opens (see docs/MIX.md and PAPERS.md,
// Goswami et al.).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "gpusim/kernel_profile.hpp"

namespace gppm::mix {

/// Mix cardinality bounds: pairs up to 4-way co-schedules.
inline constexpr std::size_t kMinMixDegree = 2;
inline constexpr std::size_t kMaxMixDegree = 4;

/// One co-scheduled kernel: where it came from, its profile, and the
/// fraction of the board's SMs it holds.
struct MixMember {
  std::string benchmark;      ///< source benchmark (for routing/reporting)
  sim::KernelProfile kernel;  ///< the kernel occupying the partition
  double sm_share = 0.5;      ///< fraction of SMs allocated, (0, 1]
};

/// A full co-schedule.  `name` identifies the mix deterministically
/// (it keys profiler observation noise and the engine's unmodeled draws).
struct MixProfile {
  std::string name;
  std::vector<MixMember> members;

  std::size_t degree() const { return members.size(); }
};

/// Validate a mix: 2-4 members, distinct benchmarks, shares in (0, 1]
/// summing to at most 1 (the partition cannot oversubscribe SMs).
/// Throws gppm::Error on violations.
void validate(const MixProfile& mix);

/// The dominant kernel of a run profile: the one with the largest nominal
/// total time on the reference board (GTX 480) at the default pair.  Mixes
/// are built from dominant kernels — they carry the contention story of
/// their benchmark.
const sim::KernelProfile& dominant_kernel(const sim::RunProfile& profile);

/// Stable identity of a mix: fnv1a over the sorted member kernel names and
/// shares.  Keys profiler observation error and unmodeled power draws so
/// results depend on the mix, not on call order.
std::uint64_t mix_key(const MixProfile& mix);

}  // namespace gppm::mix
