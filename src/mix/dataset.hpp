// The interference-modeling corpus builder.
//
// Mirrors the paper's corpus discipline (counters once at the default pair,
// measurements at every configurable pair) on three corpora per board:
//
//   * solo      — every distinct mix-member kernel run alone on the full
//                 board; the baseline a solo-trained time model comes from;
//   * member    — one sample per (mix, member): the member's own solo
//                 counters augmented with the mix pseudo-features
//                 (co-runner bandwidth pressure, SM-share loss), target =
//                 the member's *contended* completion time in the mix;
//   * power     — one sample per mix: blended counters over all members,
//                 target = average board power of the co-schedule.
//
// Mixes ending each `holdout_every` window go to the eval split, so fitted
// mix models are gated on mixes they never saw.
#pragma once

#include <cstdint>

#include "core/dataset.hpp"
#include "mix/schedule.hpp"

namespace gppm::mix {

struct MixCorpusOptions {
  std::uint64_t seed = 42;
  std::size_t mixes = 12;
  std::size_t degree = 2;   ///< members per mix, in [2, 4]
  double drift = 0.25;      ///< input-scale wobble of the phase stream
  double profiler_sampling_sigma = 0.05;
  std::size_t holdout_every = 4;  ///< every N-th mix is held out (N >= 2)
};

/// The three corpora plus their held-out splits.
struct MixCorpus {
  sim::GpuModel model = sim::GpuModel::GTX480;
  std::size_t degree = 2;
  core::Dataset solo;          ///< solo-kernel baseline corpus
  core::Dataset member_train;  ///< augmented member samples, training mixes
  core::Dataset member_eval;   ///< augmented member samples, held-out mixes
  core::Dataset power_train;   ///< blended per-mix samples, training mixes
  core::Dataset power_eval;    ///< blended per-mix samples, held-out mixes
};

/// Build the corpus for one board from a seeded mix schedule.
MixCorpus build_mix_corpus(sim::GpuModel model,
                           const MixCorpusOptions& options = {});

}  // namespace gppm::mix
