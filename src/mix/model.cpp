#include "mix/model.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace gppm::mix {

profiler::ProfileResult augment_profile(const profiler::ProfileResult& base,
                                        double bw_overcommit,
                                        double sm_share) {
  GPPM_CHECK(bw_overcommit >= 0.0, "negative bandwidth overcommit");
  GPPM_CHECK(sm_share > 0.0 && sm_share <= 1.0, "sm_share must be in (0, 1]");
  const double run_seconds = base.run_time.as_seconds();
  GPPM_CHECK(run_seconds > 0.0, "profile with zero run time");
  for (const profiler::CounterReading& r : base.counters) {
    GPPM_CHECK(!core::is_mix_feature(r.name),
               "profile already carries mix pseudo-counters");
  }

  // Both pseudo-counters use the profiled run time as the interaction base:
  // the extra time contention adds is proportional to the workload's own
  // duration, and the run time is the best counter-space proxy for it (any
  // single counter is a weaker correlate of time than time itself).  The
  // Eq. 2 feature of `total = scalar * T` is `scalar * T / f` — exactly the
  // shape of the extra contended seconds, with the H-frequency constant
  // folded into the fitted coefficient.  The Eq. 1 (per-second) side
  // reduces to the raw mix scalar, a clean activity-independent term for
  // the power family.
  profiler::ProfileResult out = base;
  profiler::CounterReading bw;
  bw.name = kMixBwPressureFeature;
  bw.klass = profiler::EventClass::Memory;
  bw.total = bw_overcommit * run_seconds;
  bw.per_second = bw_overcommit;
  out.counters.push_back(std::move(bw));

  const double share_scalar = 1.0 / sm_share - 1.0;
  profiler::CounterReading share;
  share.name = kMixSmShareFeature;
  share.klass = profiler::EventClass::Core;
  share.total = share_scalar * run_seconds;
  share.per_second = share_scalar;
  out.counters.push_back(std::move(share));

  // Interacted copies (catalog order, so every augmented profile lays the
  // pseudo-counters out identically): the SM-partition cut stretches the
  // member's compute work, so its scalar interacts with core-event
  // counters; bandwidth overcommit stretches memory work, so it interacts
  // with memory-event counters.
  for (const profiler::CounterReading& r : base.counters) {
    if (r.klass == profiler::EventClass::Core) {
      profiler::CounterReading sx = r;
      sx.name = std::string(kMixShareInteractionPrefix) + r.name;
      sx.total = share_scalar * r.total;
      sx.per_second = share_scalar * r.per_second;
      out.counters.push_back(std::move(sx));
    } else {
      profiler::CounterReading bx = r;
      bx.name = std::string(kMixBwInteractionPrefix) + r.name;
      bx.total = bw_overcommit * r.total;
      bx.per_second = bw_overcommit * r.per_second;
      out.counters.push_back(std::move(bx));
    }
  }
  return out;
}

MixScalars mix_scalars(const profiler::ProfileResult& augmented) {
  MixScalars s;
  bool have_bw = false;
  bool have_share = false;
  for (const profiler::CounterReading& r : augmented.counters) {
    if (r.name == kMixBwPressureFeature) {
      s.bw_overcommit = r.per_second;
      have_bw = true;
    } else if (r.name == kMixSmShareFeature) {
      s.share_scalar = r.per_second;
      have_share = true;
    }
  }
  GPPM_CHECK(have_bw && have_share,
             "profile lacks the mix pseudo-counters (augment_profile)");
  return s;
}

namespace {

/// The two mix candidate bases offered to hyperparameter selection.  Both
/// start from the solo family's proven counters plus the SM-share terms
/// (the dominant interference channel on this suite); the second adds the
/// bandwidth terms.  Bandwidth overcommit binds rarely, which makes its
/// terms high-value when the corpus exercises them and pure leverage
/// noise when it does not — so whether they enter at all is decided on
/// held-out validation slices, like the prefix length.
std::vector<core::ModelOptions> candidate_sets(
    const core::ModelFamily& solo, const core::ModelOptions& base) {
  std::vector<core::ModelOptions> sets(2, base);
  for (int v = 0; v < 2; ++v) {
    for (const core::SelectedVariable& var : solo.full().variables()) {
      sets[v].candidate_features.push_back(var.counter);
      if (var.klass == profiler::EventClass::Core) {
        sets[v].candidate_features.push_back(
            std::string(kMixShareInteractionPrefix) + var.counter);
      } else if (v == 1) {
        sets[v].candidate_features.push_back(
            std::string(kMixBwInteractionPrefix) + var.counter);
      }
    }
    sets[v].candidate_features.push_back(kMixSmShareFeature);
    if (v == 1) sets[v].candidate_features.push_back(kMixBwPressureFeature);
  }
  return sets;
}

/// Split a dataset's samples into fit/validation halves by predicate.
template <typename Pred>
std::pair<core::Dataset, core::Dataset> split_samples(
    const core::Dataset& ds, Pred into_validation) {
  std::pair<core::Dataset, core::Dataset> out;
  out.first.model = out.second.model = ds.model;
  for (std::size_t i = 0; i < ds.samples.size(); ++i) {
    (into_validation(i) ? out.second : out.first)
        .samples.push_back(ds.samples[i]);
  }
  return out;
}

/// Fit a mix family with its hyperparameters — candidate set and prefix
/// length — chosen on two complementary validation slices of the training
/// mixes: the last quarter (out-of-distribution under workload drift, the
/// split that exposes extrapolating fits) and every fourth sample
/// (in-distribution).  The pair minimizing the WORSE of the two validation
/// scores wins, then the family is refit on the full training set at that
/// configuration.  Selection runs on wape for the time target (the gate
/// metric) and mape for power.
core::ModelFamily fit_validated(const core::Dataset& train,
                                core::TargetKind target,
                                const core::ModelFamily& solo,
                                const core::ModelOptions& options) {
  const std::size_t n = train.samples.size();
  auto [fit_tail, val_tail] =
      split_samples(train, [n](std::size_t i) { return i >= n - n / 4; });
  auto [fit_mod, val_mod] =
      split_samples(train, [](std::size_t i) { return i % 4 == 3; });
  GPPM_CHECK(!val_tail.samples.empty() && !val_mod.samples.empty() &&
                 !fit_tail.samples.empty() && !fit_mod.samples.empty(),
             "mix training set too small for validation splits");

  const std::vector<core::ModelOptions> sets = candidate_sets(solo, options);
  core::ModelOptions best_opt = sets.front();
  best_opt.max_variables = 1;
  double best_score = std::numeric_limits<double>::infinity();
  for (const core::ModelOptions& set : sets) {
    const core::ModelFamily probe_tail =
        core::ModelFamily::fit(fit_tail, target, set);
    const core::ModelFamily probe_mod =
        core::ModelFamily::fit(fit_mod, target, set);
    const std::size_t kmax = std::min(probe_tail.size(), probe_mod.size());
    for (std::size_t k = 1; k <= kmax; ++k) {
      const core::Evaluation et = core::evaluate(probe_tail.at(k), val_tail);
      const core::Evaluation em = core::evaluate(probe_mod.at(k), val_mod);
      const double score =
          target == core::TargetKind::ExecTime
              ? std::max(et.wape(), em.wape())
              : std::max(et.mape(), em.mape());
      if (score < best_score) {
        best_score = score;
        best_opt = set;
        best_opt.max_variables = k;
      }
    }
  }
  return core::ModelFamily::fit(train, target, best_opt);
}

}  // namespace

MixModelSet fit_mix_models(const MixCorpus& corpus,
                           const core::ModelOptions& options) {
  MixModelSet set;
  set.model = corpus.model;
  set.degree = corpus.degree;
  set.solo_time =
      core::ModelFamily::fit(corpus.solo, core::TargetKind::ExecTime, options);
  set.solo_power =
      core::ModelFamily::fit(corpus.solo, core::TargetKind::Power, options);
  set.mix_time = fit_validated(corpus.member_train, core::TargetKind::ExecTime,
                               set.solo_time, options);

  // The power family fits on blended whole-mix profiles (no pseudo-counters
  // appended), so restricting candidates to the solo power basis suffices.
  core::ModelOptions power_opt = options;
  for (const core::SelectedVariable& v : set.solo_power.full().variables()) {
    power_opt.candidate_features.push_back(v.counter);
  }
  set.mix_power = core::ModelFamily::fit(corpus.power_train,
                                         core::TargetKind::Power, power_opt);
  return set;
}

double predict_member_time(const MixModelSet& models,
                           const profiler::ProfileResult& augmented,
                           sim::FrequencyPair pair) {
  const MixScalars s = mix_scalars(augmented);
  const double solo = models.solo_time.full().predict(augmented, pair);
  double mix = models.mix_time.full().predict(augmented, pair);
  if (solo > 0.0) {
    // Clamp to the physically admissible slowdown envelope relative to the
    // solo prediction: a member on an s-share partition under bandwidth
    // overcommit c slows by at most (1/s) * c (compute and memory both
    // fully stretched).  This bounds the damage a leverage point in a
    // small interference corpus can do at serving time.
    const double ceiling =
        solo * (1.0 + s.share_scalar) * (1.0 + s.bw_overcommit);
    mix = std::min(mix, ceiling);
    if (mix <= 0.0) mix = solo;  // a negative time is never the answer
  }
  return mix;
}

MixEvaluation evaluate_mix_models(const MixModelSet& models,
                                  const MixCorpus& corpus) {
  GPPM_CHECK(!corpus.member_eval.samples.empty() &&
                 !corpus.power_eval.samples.empty(),
             "empty mix evaluation split");
  MixEvaluation out;

  double solo_abs = 0.0, mix_abs = 0.0, actual_sum = 0.0;
  double solo_ape = 0.0, mix_ape = 0.0, bias = 0.0;
  std::size_t rows = 0;
  for (const core::Sample& s : corpus.member_eval.samples) {
    for (const core::Measurement& run : s.runs) {
      const double actual = run.exec_time.as_seconds();
      GPPM_CHECK(actual > 0.0, "non-positive contended time in eval split");
      const double solo = models.solo_time.full().predict(s.counters, run.pair);
      const double mix = predict_member_time(models, s.counters, run.pair);
      solo_abs += std::fabs(solo - actual);
      mix_abs += std::fabs(mix - actual);
      actual_sum += actual;
      solo_ape += std::fabs(solo - actual) / actual;
      mix_ape += std::fabs(mix - actual) / actual;
      bias += (solo - actual) / actual;
      ++rows;
    }
  }
  out.solo_time_wape = 100.0 * solo_abs / actual_sum;
  out.mix_time_wape = 100.0 * mix_abs / actual_sum;
  out.solo_time_mape = 100.0 * solo_ape / static_cast<double>(rows);
  out.mix_time_mape = 100.0 * mix_ape / static_cast<double>(rows);
  out.solo_signed_bias = bias / static_cast<double>(rows);

  const core::Evaluation power_eval =
      core::evaluate(models.mix_power.full(), corpus.power_eval);
  out.power_wape = power_eval.wape();
  out.power_mape = power_eval.mape();
  return out;
}

}  // namespace gppm::mix
