// The tracer: execute one representative block of a Program and derive a
// sim::KernelProfile by measuring the address streams.
#pragma once

#include "gpusim/kernel_profile.hpp"
#include "kernelir/ir.hpp"

namespace gppm::ir {

/// Measured behavioural statistics of one traced block.
struct TraceStats {
  // Per-thread dynamic operation counts.
  double flops = 0;
  double int_ops = 0;
  double special_ops = 0;
  double shared_ops = 0;
  double global_load_bytes = 0;
  double global_store_bytes = 0;

  /// Measured DRAM transfer efficiency: ideal 32B segments / touched
  /// segments, averaged over global warp accesses.  1 = fully coalesced.
  double coalescing = 1.0;
  /// Measured cache-line (128B) reuse fraction over the global access
  /// stream (LRU window), the cacheable share of the traffic.
  double locality = 0.0;
  /// Measured shared-memory replay factor from bank collisions (>= 1).
  double bank_conflict = 1.0;
  /// Expected warp-serialization factor from divergent branches (>= 1).
  double divergence = 1.0;
  /// Barriers executed per thread.
  double syncs = 0;
};

/// Trace one block of `program` (all its threads, warp by warp).
/// Deterministic and side-effect free.
TraceStats trace_block(const Program& program);

/// Options for profile derivation.
struct ProfileOptions {
  double occupancy = 0.85;
  double overlap = 0.85;
};

/// Derive a simulator profile for the whole grid from a traced block.
sim::KernelProfile derive_profile(const Program& program,
                                  const ProfileOptions& options = {});

}  // namespace gppm::ir
