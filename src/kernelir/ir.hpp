// A miniature kernel IR: CUDA-like kernels as executable per-thread
// programs.
//
// The workload library (src/workload) parameterizes the simulator with
// hand-derived operation counts and behavioural coefficients (coalescing,
// locality, bank conflicts).  This module closes the loop: kernels are
// written as small instruction programs with *real address expressions*;
// the tracer (trace.hpp) executes one representative block, observes the
// actual address streams, and derives those coefficients by measurement —
// coalescing from 32-byte segment counts per warp access, locality from
// cache-line reuse, bank conflicts from shared-memory bank collisions.
//
// The derived sim::KernelProfile feeds the same execution engine, so a
// traced program and a hand-parameterized model of the same algorithm can
// be compared end-to-end (bench_ir_vs_handmodel).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gppm::ir {

/// Instruction opcodes (a warp-uniform SIMT subset).
enum class Op {
  Fma,          ///< fused multiply-add (2 FLOPs)
  FAdd,         ///< single FLOP
  IntOp,        ///< integer/address arithmetic
  Special,      ///< SFU op (exp/sin/rsqrt)
  LoadGlobal,   ///< global memory read
  StoreGlobal,  ///< global memory write
  LoadShared,   ///< shared memory read
  StoreShared,  ///< shared memory write
  Sync,         ///< __syncthreads()
  Branch,       ///< potentially divergent branch
};

/// Address expression of a memory instruction, evaluated per thread:
///
///   addr = base
///        + stride_thread * threadIdx
///        + stride_iter   * iteration
///        + ((threadIdx * shuffle_mul) % shuffle_mod) * shuffle_stride
///
/// bytes per access is `width`.  The shuffle terms express permuted /
/// transposed patterns (e.g. column-major walks) without a full ALU model.
struct AddressExpr {
  std::uint64_t base = 0;
  std::int64_t stride_thread = 0;
  std::int64_t stride_iter = 0;
  std::int64_t shuffle_mul = 0;
  std::int64_t shuffle_mod = 1;
  std::int64_t shuffle_stride = 0;
  int width = 4;

  std::uint64_t evaluate(std::uint32_t thread, std::uint32_t iteration) const;
};

/// One instruction.
struct Instr {
  Op op = Op::Fma;
  AddressExpr addr;           ///< memory ops only
  double divergence_prob = 0; ///< Branch only: probability a warp splits
};

/// A kernel program: `body` executes `iterations` times per thread after
/// `prologue` runs once.
struct Program {
  std::string name;
  std::vector<Instr> prologue;
  std::vector<Instr> body;
  std::uint32_t iterations = 1;
  std::uint32_t threads_per_block = 256;
  std::uint64_t blocks = 1;
};

// Convenience constructors.
Instr fma();
Instr fadd();
Instr int_op();
Instr special();
Instr sync();
Instr branch(double divergence_prob);
Instr load_global(AddressExpr addr);
Instr store_global(AddressExpr addr);
Instr load_shared(AddressExpr addr);
Instr store_shared(AddressExpr addr);

}  // namespace gppm::ir
