#include "kernelir/ir.hpp"

#include "common/error.hpp"

namespace gppm::ir {

std::uint64_t AddressExpr::evaluate(std::uint32_t thread,
                                    std::uint32_t iteration) const {
  GPPM_CHECK(shuffle_mod > 0, "shuffle_mod must be positive");
  std::int64_t addr = static_cast<std::int64_t>(base);
  addr += stride_thread * static_cast<std::int64_t>(thread);
  addr += stride_iter * static_cast<std::int64_t>(iteration);
  addr += ((static_cast<std::int64_t>(thread) * shuffle_mul) % shuffle_mod) *
          shuffle_stride;
  GPPM_CHECK(addr >= 0, "negative address");
  return static_cast<std::uint64_t>(addr);
}

Instr fma() { return Instr{Op::Fma, {}, 0.0}; }
Instr fadd() { return Instr{Op::FAdd, {}, 0.0}; }
Instr int_op() { return Instr{Op::IntOp, {}, 0.0}; }
Instr special() { return Instr{Op::Special, {}, 0.0}; }
Instr sync() { return Instr{Op::Sync, {}, 0.0}; }

Instr branch(double divergence_prob) {
  GPPM_CHECK(divergence_prob >= 0.0 && divergence_prob <= 1.0,
             "divergence probability out of [0,1]");
  return Instr{Op::Branch, {}, divergence_prob};
}

namespace {
Instr mem(Op op, AddressExpr addr) {
  GPPM_CHECK(addr.width > 0 && addr.width <= 16, "access width out of range");
  Instr i;
  i.op = op;
  i.addr = addr;
  return i;
}
}  // namespace

Instr load_global(AddressExpr addr) { return mem(Op::LoadGlobal, addr); }
Instr store_global(AddressExpr addr) { return mem(Op::StoreGlobal, addr); }
Instr load_shared(AddressExpr addr) { return mem(Op::LoadShared, addr); }
Instr store_shared(AddressExpr addr) { return mem(Op::StoreShared, addr); }

}  // namespace gppm::ir
