#include "kernelir/trace.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "common/error.hpp"

namespace gppm::ir {

namespace {

constexpr std::uint32_t kWarpSize = 32;
constexpr std::uint64_t kSegmentBytes = 32;   // DRAM transaction granularity
constexpr std::uint64_t kLineBytes = 128;     // cache line
constexpr int kSharedBanks = 32;
/// Reuse window for the locality estimate, in global accesses (~ the reach
/// of an L1 + L2 slice for one block's stream).
constexpr std::uint64_t kReuseWindow = 4096;

/// Running statistics collected while walking the instruction stream.
struct Collector {
  TraceStats stats;
  double warp_accesses = 0;
  double coalescing_sum = 0;
  double shared_accesses = 0;
  double replay_sum = 0;
  double line_accesses = 0;
  double line_hits = 0;
  double divergence_mass = 0;
  std::uint64_t access_clock = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> last_seen;

  void global_access(const AddressExpr& addr, std::uint32_t warp_base,
                     std::uint32_t thread_count, std::uint32_t iteration,
                     bool is_load) {
    // Segment and cache-line footprints of the warp access.  Reuse is
    // counted at line granularity per *warp access*: a streaming warp that
    // touches a line once (even with all 32 lanes) gets no credit — the
    // line is fetched once and never revisited — while stencil neighbours
    // and tile reloads do.
    std::set<std::uint64_t> segments;
    std::set<std::uint64_t> lines;
    for (std::uint32_t lane = 0; lane < kWarpSize; ++lane) {
      const std::uint32_t thread = warp_base + lane;
      if (thread >= thread_count) break;
      const std::uint64_t a = addr.evaluate(thread, iteration);
      for (std::uint64_t b = a / kSegmentBytes;
           b <= (a + addr.width - 1) / kSegmentBytes; ++b) {
        segments.insert(b);
      }
      lines.insert(a / kLineBytes);
      const double bytes = addr.width;
      if (is_load) {
        stats.global_load_bytes += bytes;
      } else {
        stats.global_store_bytes += bytes;
      }
    }
    for (std::uint64_t line : lines) {
      ++line_accesses;
      const auto it = last_seen.find(line);
      if (it != last_seen.end() && access_clock - it->second <= kReuseWindow) {
        ++line_hits;
      }
      last_seen[line] = access_clock;
      ++access_clock;
    }
    const std::uint32_t active =
        std::min(kWarpSize, thread_count - warp_base);
    const double ideal = std::max<double>(
        1.0, static_cast<double>(active) * addr.width / kSegmentBytes);
    coalescing_sum +=
        std::min(1.0, ideal / static_cast<double>(segments.size()));
    ++warp_accesses;
  }

  void shared_access(const AddressExpr& addr, std::uint32_t warp_base,
                     std::uint32_t thread_count, std::uint32_t iteration,
                     bool is_store) {
    // Bank conflict degree.  For loads, distinct addresses mapping to the
    // same bank serialize while identical addresses broadcast; stores to
    // the same address also serialize (no write broadcast) — the histogram
    // contention case.
    std::set<std::uint64_t> distinct[kSharedBanks];
    std::size_t lanes_per_bank[kSharedBanks] = {};
    for (std::uint32_t lane = 0; lane < kWarpSize; ++lane) {
      const std::uint32_t thread = warp_base + lane;
      if (thread >= thread_count) break;
      const std::uint64_t a = addr.evaluate(thread, iteration);
      const std::size_t bank = (a / 4) % kSharedBanks;
      distinct[bank].insert(a);
      lanes_per_bank[bank] += 1;
      stats.shared_ops += 1;
    }
    std::size_t replay = 1;
    for (int bank = 0; bank < kSharedBanks; ++bank) {
      replay = std::max(replay, is_store ? lanes_per_bank[bank]
                                         : distinct[bank].size());
    }
    replay_sum += static_cast<double>(replay);
    ++shared_accesses;
  }
};

void execute(const std::vector<Instr>& instrs, std::uint32_t iteration,
             const Program& program, Collector& c) {
  const std::uint32_t threads = program.threads_per_block;
  for (const Instr& instr : instrs) {
    switch (instr.op) {
      case Op::Fma:
        c.stats.flops += 2.0 * threads;
        break;
      case Op::FAdd:
        c.stats.flops += 1.0 * threads;
        break;
      case Op::IntOp:
        c.stats.int_ops += 1.0 * threads;
        break;
      case Op::Special:
        c.stats.special_ops += 1.0 * threads;
        break;
      case Op::Sync:
        c.stats.syncs += 1.0;
        break;
      case Op::Branch:
        c.divergence_mass += instr.divergence_prob;
        break;
      case Op::LoadGlobal:
      case Op::StoreGlobal:
        for (std::uint32_t w = 0; w < threads; w += kWarpSize) {
          c.global_access(instr.addr, w, threads, iteration,
                          instr.op == Op::LoadGlobal);
        }
        break;
      case Op::LoadShared:
      case Op::StoreShared:
        for (std::uint32_t w = 0; w < threads; w += kWarpSize) {
          c.shared_access(instr.addr, w, threads, iteration,
                          instr.op == Op::StoreShared);
        }
        break;
    }
  }
}

}  // namespace

TraceStats trace_block(const Program& program) {
  GPPM_CHECK(program.threads_per_block > 0, "empty block");
  GPPM_CHECK(program.iterations > 0, "iterations must be >= 1");
  GPPM_CHECK(!program.body.empty() || !program.prologue.empty(),
             "empty program");

  Collector c;
  execute(program.prologue, 0, program, c);
  for (std::uint32_t it = 0; it < program.iterations; ++it) {
    execute(program.body, it, program, c);
  }

  TraceStats stats = c.stats;
  const double threads = program.threads_per_block;
  stats.flops /= threads;
  stats.int_ops /= threads;
  stats.special_ops /= threads;
  stats.shared_ops /= threads;
  stats.global_load_bytes /= threads;
  stats.global_store_bytes /= threads;

  stats.coalescing =
      c.warp_accesses > 0 ? c.coalescing_sum / c.warp_accesses : 1.0;
  stats.locality = c.line_accesses > 0 ? c.line_hits / c.line_accesses : 0.0;
  stats.bank_conflict =
      c.shared_accesses > 0 ? c.replay_sum / c.shared_accesses : 1.0;
  // A branch with divergence probability p executes both sides of the
  // split for its share of the iteration: accumulate and cap.
  stats.divergence =
      std::min(2.5, 1.0 + c.divergence_mass /
                              static_cast<double>(program.iterations));
  return stats;
}

sim::KernelProfile derive_profile(const Program& program,
                                  const ProfileOptions& options) {
  const TraceStats stats = trace_block(program);
  sim::KernelProfile k;
  k.name = program.name;
  k.blocks = program.blocks;
  k.threads_per_block = program.threads_per_block;
  k.flops_sp_per_thread = stats.flops;
  k.int_ops_per_thread = stats.int_ops;
  k.special_ops_per_thread = stats.special_ops;
  k.shared_ops_per_thread = stats.shared_ops;
  k.global_load_bytes_per_thread = stats.global_load_bytes;
  k.global_store_bytes_per_thread = stats.global_store_bytes;
  // Clamp into the simulator's valid ranges (a fully-uncacheable stream
  // measures locality 0; a fully-cached one approaches but must not hit 1).
  k.coalescing = std::clamp(stats.coalescing, 0.01, 1.0);
  k.locality = std::clamp(stats.locality, 0.0, 0.95);
  k.bank_conflict = std::max(1.0, stats.bank_conflict);
  k.divergence = std::max(1.0, stats.divergence);
  k.occupancy = options.occupancy;
  k.overlap = options.overlap;
  return k;
}

}  // namespace gppm::ir
