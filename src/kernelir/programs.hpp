// A library of real kernels written in the IR, mirroring algorithms the
// benchmark suite models by hand.  Each builder returns an executable
// Program whose traced profile can be compared against the corresponding
// hand parameterization (bench_ir_vs_handmodel).
#pragma once

#include <cstdint>

#include "kernelir/ir.hpp"

namespace gppm::ir {

/// C[i] = A[i] + B[i] over `elements` floats: the MAdd analogue.
/// Perfectly coalesced streaming, no reuse.
Program vector_add(std::uint64_t elements);

/// Tiled single-precision matrix multiply, n x n with 16x16 shared-memory
/// tiles (one block computes one output tile): the MMul/sgemm analogue.
/// High data reuse in shared memory, coalesced tile loads.
Program matrix_mul_tiled(std::uint32_t n);

/// Naive out-of-place transpose of an n x n float matrix (256-thread
/// blocks, row-major loads, column-major stores): the MTranspose analogue
/// with its classic store-side coalescing collapse.
Program transpose_naive(std::uint32_t n);

/// 1D 5-point stencil over a row of `width` floats, `steps` sweeps: the
/// hotspot/stencil analogue.  Neighbour loads hit cached lines.
Program stencil5(std::uint32_t width, std::uint32_t steps);

/// Shared-memory histogram with `bins` bins over a streamed input (the
/// histogram64/256 analogue).  bins < 32 forces multi-way bank conflicts.
Program histogram_shared(std::uint32_t bins, std::uint32_t items_per_thread);

/// Data-dependent graph walk (the bfs/mummergpu flavour): scattered,
/// pseudo-random 4-byte gathers plus divergent branches.
Program pointer_chase(std::uint64_t nodes, std::uint32_t hops,
                      double divergence_prob);

}  // namespace gppm::ir
