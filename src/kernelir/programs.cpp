#include "kernelir/programs.hpp"

#include "common/error.hpp"

namespace gppm::ir {

namespace {
// Distinct base regions keep the traced address streams of different
// arrays from aliasing in the reuse tracker.
constexpr std::uint64_t kRegion = 1ull << 30;

AddressExpr linear(std::uint64_t region, std::int64_t stride_thread,
                   std::int64_t stride_iter, int width = 4) {
  AddressExpr a;
  a.base = region * kRegion;
  a.stride_thread = stride_thread;
  a.stride_iter = stride_iter;
  a.width = width;
  return a;
}
}  // namespace

Program vector_add(std::uint64_t elements) {
  GPPM_CHECK(elements >= 256, "too few elements");
  Program p;
  p.name = "ir/vector_add";
  p.threads_per_block = 256;
  p.blocks = elements / 256;
  p.iterations = 1;
  // addr = region + tid*4: lanes touch consecutive words.
  p.body = {
      load_global(linear(1, 4, 0)),
      load_global(linear(2, 4, 0)),
      fadd(),
      int_op(),  // index computation
      store_global(linear(3, 4, 0)),
  };
  return p;
}

Program matrix_mul_tiled(std::uint32_t n) {
  GPPM_CHECK(n >= 64 && n % 16 == 0, "n must be a multiple of 16, >= 64");
  Program p;
  p.name = "ir/matrix_mul_tiled";
  p.threads_per_block = 256;  // one 16x16 output tile per block
  p.blocks = static_cast<std::uint64_t>(n / 16) * (n / 16);
  p.iterations = n / 16;  // one body pass per k-tile

  const std::int64_t row_bytes = static_cast<std::int64_t>(n) * 4;

  // Thread (ty, tx) with tid = ty*16 + tx.
  // A[ty_global][k0 + tx]: ty component is linear in tid (stride row/16),
  // the tx*4 column walk needs the shuffle correction (see AddressExpr).
  AddressExpr a_tile;
  a_tile.base = 1 * kRegion;
  a_tile.stride_thread = row_bytes / 16;
  a_tile.shuffle_mul = 1;
  a_tile.shuffle_mod = 16;
  a_tile.shuffle_stride = 4 - row_bytes / 16;
  a_tile.stride_iter = 16 * 4;  // k0 advances 16 columns per tile

  // B[k0 + ty][tx_global]: row from ty (shuffled), column from tx.
  AddressExpr b_tile;
  b_tile.base = 2 * kRegion;
  b_tile.stride_thread = row_bytes / 16;  // ty*row via the same split
  b_tile.shuffle_mul = 1;
  b_tile.shuffle_mod = 16;
  b_tile.shuffle_stride = 4 - row_bytes / 16;
  b_tile.stride_iter = 16 * row_bytes;  // k0 advances 16 rows per tile

  // Shared tiles: 16x16 floats, row-major: addr = tid*4 (conflict-free).
  const AddressExpr as_store = linear(0, 4, 0);
  AddressExpr bs_store = linear(0, 4, 0);
  bs_store.base = 16 * 16 * 4;

  p.body = {load_global(a_tile),  store_shared(as_store),
            load_global(b_tile),  store_shared(bs_store),
            int_op(),             sync()};
  // Inner product over the tile: 16 steps of two shared loads + one FMA.
  for (int k = 0; k < 16; ++k) {
    // As[ty][k]: same address for all tx in a row -> broadcast.
    AddressExpr as_ld;
    as_ld.stride_thread = 4 * 16 / 16;  // ty*64 via the linear/shuffle split
    as_ld.shuffle_mul = 1;
    as_ld.shuffle_mod = 16;
    as_ld.shuffle_stride = -4;  // cancel tx so rows broadcast
    as_ld.base = static_cast<std::uint64_t>(k) * 4;
    // Bs[k][tx]: consecutive words across tx -> distinct banks.
    AddressExpr bs_ld;
    bs_ld.base = 16 * 16 * 4 + static_cast<std::uint64_t>(k) * 16 * 4;
    bs_ld.shuffle_mul = 1;
    bs_ld.shuffle_mod = 16;
    bs_ld.shuffle_stride = 4;
    p.body.push_back(load_shared(as_ld));
    p.body.push_back(load_shared(bs_ld));
    p.body.push_back(fma());
  }
  p.body.push_back(sync());
  return p;
}

Program transpose_naive(std::uint32_t n) {
  GPPM_CHECK(n >= 256 && n % 16 == 0, "n must be a multiple of 16, >= 256");
  Program p;
  p.name = "ir/transpose_naive";
  p.threads_per_block = 256;
  p.blocks = static_cast<std::uint64_t>(n) * n / 256;
  p.iterations = 1;
  const std::int64_t row_bytes = static_cast<std::int64_t>(n) * 4;

  // Read row-major: consecutive lanes read consecutive words.
  p.body.push_back(load_global(linear(1, 4, 0)));
  p.body.push_back(int_op());
  p.body.push_back(int_op());
  // Write column-major: consecutive lanes write a whole matrix row apart.
  // For tid = 32w + l the address is 128w + row_bytes*l — warps advance by
  // 128 bytes while the 32 lanes of each warp walk down a column, which is
  // exactly the transposed store's coalescing collapse.
  AddressExpr out;
  out.base = 2 * kRegion;
  out.stride_thread = 4;
  out.shuffle_mul = 1;
  out.shuffle_mod = 32;
  out.shuffle_stride = row_bytes - 4;
  p.body.push_back(store_global(out));
  return p;
}

Program stencil5(std::uint32_t width, std::uint32_t steps) {
  GPPM_CHECK(width >= 1024, "width too small");
  GPPM_CHECK(steps >= 1, "steps must be >= 1");
  Program p;
  p.name = "ir/stencil5";
  p.threads_per_block = 256;
  p.blocks = width / 256;
  p.iterations = steps;
  // Five taps around tid; neighbours share cache lines with the centre.
  for (std::int64_t offset : {-8, -4, 0, 4, 8}) {
    AddressExpr tap = linear(1, 4, 0);
    tap.base = static_cast<std::uint64_t>(1 * kRegion + 64 + offset);
    p.body.push_back(load_global(tap));
  }
  p.body.push_back(fadd());
  p.body.push_back(fadd());
  p.body.push_back(fadd());
  p.body.push_back(fadd());
  p.body.push_back(fma());
  p.body.push_back(store_global(linear(2, 4, 0)));
  return p;
}

Program histogram_shared(std::uint32_t bins, std::uint32_t items_per_thread) {
  GPPM_CHECK(bins >= 1 && bins <= 256, "bins out of range");
  GPPM_CHECK(items_per_thread >= 1, "items_per_thread must be >= 1");
  Program p;
  p.name = "ir/histogram_shared";
  p.threads_per_block = 256;
  p.blocks = 1024;
  p.iterations = items_per_thread;
  // Stream the input; bin by a pseudo-random shuffle of the thread id:
  // threads in a warp collide on bins when bins < 32.
  AddressExpr bin;
  bin.shuffle_mul = 7;  // odd multiplier scatters lanes across bins
  bin.shuffle_mod = bins;
  bin.shuffle_stride = 4;
  bin.stride_iter = 0;
  p.body = {
      load_global(linear(1, 4, 1024)),
      int_op(),
      int_op(),
      load_shared(bin),
      store_shared(bin),
  };
  return p;
}

Program pointer_chase(std::uint64_t nodes, std::uint32_t hops,
                      double divergence_prob) {
  GPPM_CHECK(nodes >= 4096, "too few nodes");
  GPPM_CHECK(hops >= 1, "hops must be >= 1");
  Program p;
  p.name = "ir/pointer_chase";
  p.threads_per_block = 256;
  p.blocks = 512;
  p.iterations = hops;
  // Pseudo-random gathers: a large odd multiplier modulo the node count
  // scatters consecutive lanes across the whole array; each hop lands on a
  // different pseudo-random offset via stride_iter.
  AddressExpr gather;
  gather.base = 1 * kRegion;
  gather.shuffle_mul = 2654435761;  // Knuth's multiplicative hash constant
  gather.shuffle_mod = static_cast<std::int64_t>(nodes);
  gather.shuffle_stride = 16;  // node records are 16 bytes apart
  gather.stride_iter = 16 * 977;
  p.body = {
      load_global(gather),
      int_op(),
      int_op(),
      branch(divergence_prob),
  };
  return p;
}

}  // namespace gppm::ir
