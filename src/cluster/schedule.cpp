#include "cluster/schedule.hpp"

#include "common/error.hpp"

namespace gppm::cluster {

std::string to_string(ChaosAction action) {
  switch (action) {
    case ChaosAction::Kill: return "kill";
    case ChaosAction::Restart: return "restart";
    case ChaosAction::Drain: return "drain";
    case ChaosAction::Rejoin: return "rejoin";
  }
  return "?";
}

std::string ChaosEvent::to_string() const {
  return cluster::to_string(action) + " node" + std::to_string(node);
}

ChaosSchedule::ChaosSchedule(Options options)
    : options_(options),
      rng_(options.seed),
      modes_(options.nodes, NodeMode::Up) {
  GPPM_CHECK(options_.nodes >= 1, "chaos schedule needs >= 1 node");
  GPPM_CHECK(options_.drains || options_.kills,
             "chaos schedule needs at least one of drains/kills enabled");
}

ChaosEvent ChaosSchedule::next() {
  ChaosEvent event;
  event.node = rng_.uniform_index(options_.nodes);
  switch (modes_[event.node]) {
    case NodeMode::Killed:
      event.action = ChaosAction::Restart;
      modes_[event.node] = NodeMode::Up;
      break;
    case NodeMode::Drained:
      event.action = ChaosAction::Rejoin;
      modes_[event.node] = NodeMode::Up;
      break;
    case NodeMode::Up:
      // Never take the whole fleet down: the last healthy node is left
      // alone (its draw recovers somebody else next call).
      {
        std::size_t up = 0;
        for (const NodeMode mode : modes_) {
          if (mode == NodeMode::Up) ++up;
        }
        if (up <= 1) {
          // Redirect to a disturbed node if any, else a no-op restart.
          for (std::size_t i = 0; i < modes_.size(); ++i) {
            const std::size_t j = (event.node + i) % modes_.size();
            if (modes_[j] == NodeMode::Killed) {
              event.node = j;
              event.action = ChaosAction::Restart;
              modes_[j] = NodeMode::Up;
              log_.push_back(event);
              return event;
            }
            if (modes_[j] == NodeMode::Drained) {
              event.node = j;
              event.action = ChaosAction::Rejoin;
              modes_[j] = NodeMode::Up;
              log_.push_back(event);
              return event;
            }
          }
          event.action = ChaosAction::Restart;  // 1-node fleet: benign
          log_.push_back(event);
          return event;
        }
      }
      if (options_.drains &&
          (!options_.kills || rng_.uniform() < 0.5)) {
        event.action = ChaosAction::Drain;
        modes_[event.node] = NodeMode::Drained;
      } else {
        event.action = ChaosAction::Kill;
        modes_[event.node] = NodeMode::Killed;
      }
      break;
  }
  log_.push_back(event);
  return event;
}

std::string ChaosSchedule::log_string() const {
  std::string out;
  for (const ChaosEvent& event : log_) {
    out += event.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace gppm::cluster
