// cluster::ChaosSchedule — a seeded, deterministic stream of fleet
// disturbance events for the loadgen chaos reaper and drain scheduler.
//
// The reaper used to pick victims round-robin with wall-clock pacing,
// which made two "identical" chaos runs disturb different nodes at
// different times — impossible to compare or replay.  The schedule owns
// victim choice instead: every decision comes from one seeded Rng, each
// disturbance is paired with its recovery (kill → restart, drain →
// rejoin) before the same node is disturbed again, and every emitted
// event is appended to a log.  Two schedules with the same (seed, nodes,
// drains) options emit byte-identical logs — the property the
// determinism test pins and the contract behind `gppm-loadgen --seed`.
//
// The schedule decides *what* happens, the caller decides *when*: pacing
// (sleep between events) stays in the reaper so the schedule is pure and
// replayable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace gppm::cluster {

enum class ChaosAction { Kill, Restart, Drain, Rejoin };

std::string to_string(ChaosAction action);

struct ChaosEvent {
  ChaosAction action = ChaosAction::Kill;
  std::size_t node = 0;

  std::string to_string() const;
};

class ChaosSchedule {
 public:
  struct Options {
    std::uint64_t seed = 42;
    std::size_t nodes = 2;
    /// Emit planned drains (drain → rejoin).
    bool drains = false;
    /// Emit crashes (kill → restart).  Both on = a mixed stream; at least
    /// one must be on.
    bool kills = true;
  };

  explicit ChaosSchedule(Options options);

  /// The next event in the stream.  A node that was disturbed recovers
  /// (Restart/Rejoin) before it can be disturbed again; the victim and
  /// the disturb-vs-recover choice are both drawn from the seeded Rng.
  ChaosEvent next();

  /// Every event emitted so far, in order.
  const std::vector<ChaosEvent>& log() const { return log_; }
  /// The log as one line per event (the determinism assertion compares
  /// these across same-seed runs).
  std::string log_string() const;

 private:
  enum class NodeMode { Up, Killed, Drained };

  Options options_;
  Rng rng_;
  std::vector<NodeMode> modes_;
  std::vector<ChaosEvent> log_;
};

}  // namespace gppm::cluster
