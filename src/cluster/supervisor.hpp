// cluster::Supervisor — keeps a LocalFleet's nodes alive.
//
// A background thread probes every node through its fronting backend
// (wire mode: a protocol-v2 Health frame per probe, with the v1 ping
// fallback RemoteBackend already implements).  A node that misses
// `failure_threshold` consecutive probes is restarted — with jittered
// exponential backoff between attempts so a node that dies on arrival
// does not get hammered, and a per-node restart budget so a truly
// unrecoverable node is eventually left down and flagged instead of
// burning the loop forever.  The budget refills when the node answers a
// probe again: it bounds restart *storms*, not the fleet's lifetime.
//
// Division of labour with the rest of the resilience stack:
//   * drained nodes (off the ring) are skipped — a planned removal is not
//     a failure, and restarting it would fight drain_node();
//   * breakers are NOT reset on restart.  The router's health loop probes
//     the recovered node and walks its breaker Open → HalfOpen → Closed,
//     so a supervised restart re-admits traffic gradually instead of
//     thundering in.  The supervisor restores the *process*, the breaker
//     restores *trust*;
//   * the `supervisor.probe` fault site simulates probe loss (the monitor
//     seeing a healthy node as dead) — the jitter/backoff/threshold
//     machinery must tolerate a lying monitoring plane.
//
// Deterministic: all jitter comes from one seeded Rng forked per node.
// Instrumented under cluster.supervisor.*.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "cluster/fleet.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "fault/injector.hpp"

namespace gppm::cluster {

struct SupervisorOptions {
  Duration probe_interval = Duration::milliseconds(25.0);
  /// Consecutive missed probes before a restart is attempted.
  int failure_threshold = 2;
  /// Restart attempts per node before it is flagged unrecoverable
  /// (refilled when the node answers a probe again).
  int restart_budget = 5;
  Duration initial_backoff = Duration::milliseconds(50.0);
  Duration max_backoff = Duration::seconds(2.0);
  /// Backoff jitter fraction: each wait is scaled by U(1-j, 1+j).
  double jitter = 0.2;
  /// Seed for the jitter streams (forked per node).
  std::uint64_t seed = 42;
  /// Chaos hook for the `supervisor.probe` probe-loss site.  Not owned;
  /// may be nullptr.
  fault::FaultInjector* injector = nullptr;
};

struct SupervisorStats {
  std::uint64_t probes = 0;
  std::uint64_t probe_failures = 0;  ///< missed probes (incl. injected)
  std::uint64_t probes_lost = 0;     ///< injected losses only
  std::uint64_t restarts = 0;
  std::uint64_t skipped_drained = 0;  ///< probes skipped: node off-ring
  std::uint64_t budget_exhausted = 0;  ///< nodes flagged unrecoverable
};

class Supervisor {
 public:
  /// Starts the probe thread immediately.  The fleet must outlive the
  /// supervisor.
  Supervisor(LocalFleet& fleet, SupervisorOptions options = {});
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  SupervisorStats stats() const;

  /// Stop the probe thread.  Idempotent.
  void stop();

 private:
  /// Per-node supervision state (indexed like the fleet; grows with it).
  struct NodeState {
    int consecutive_failures = 0;
    int restarts_used = 0;
    double backoff_s = 0.0;
    std::chrono::steady_clock::time_point next_attempt{};
    bool flagged_unrecoverable = false;
    Rng rng{0};
  };

  void loop();
  void supervise(std::size_t i);

  LocalFleet& fleet_;
  SupervisorOptions options_;
  std::vector<NodeState> states_;  ///< probe thread only
  Rng root_rng_;
  std::thread thread_;
  std::atomic<bool> stopped_{false};

  std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> probe_failures_{0};
  std::atomic<std::uint64_t> probes_lost_{0};
  std::atomic<std::uint64_t> restarts_{0};
  std::atomic<std::uint64_t> skipped_drained_{0};
  std::atomic<std::uint64_t> budget_exhausted_{0};
};

}  // namespace gppm::cluster
