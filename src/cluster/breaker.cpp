#include "cluster/breaker.hpp"

#include "common/error.hpp"

namespace gppm::cluster {

std::string to_string(BreakerState state) {
  switch (state) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(BreakerOptions options) : options_(options) {
  GPPM_CHECK(options_.failure_threshold > 0,
             "breaker failure threshold must be positive");
  GPPM_CHECK(options_.half_open_successes > 0,
             "breaker half-open success count must be positive");
  GPPM_CHECK(options_.half_open_probes > 0,
             "breaker half-open probe budget must be positive");
}

void CircuitBreaker::open(Clock::time_point now) {
  state_ = BreakerState::Open;
  opened_at_ = now;
  half_open_inflight_ = 0;
  half_open_successes_ = 0;
  ++opens_;
}

bool CircuitBreaker::allow(Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case BreakerState::Closed:
      return true;
    case BreakerState::Open:
      if (now - opened_at_ < options_.cooldown) return false;
      state_ = BreakerState::HalfOpen;
      half_open_inflight_ = 1;
      half_open_successes_ = 0;
      return true;
    case BreakerState::HalfOpen:
      if (half_open_inflight_ >= options_.half_open_probes) return false;
      ++half_open_inflight_;
      return true;
  }
  return false;
}

void CircuitBreaker::record_success(Clock::time_point now) {
  (void)now;
  std::lock_guard<std::mutex> lock(mutex_);
  consecutive_failures_ = 0;
  if (state_ == BreakerState::HalfOpen) {
    if (half_open_inflight_ > 0) --half_open_inflight_;
    if (++half_open_successes_ >= options_.half_open_successes) {
      state_ = BreakerState::Closed;
      half_open_inflight_ = 0;
      half_open_successes_ = 0;
    }
  }
}

void CircuitBreaker::record_failure(Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case BreakerState::Closed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        consecutive_failures_ = 0;
        open(now);
      }
      break;
    case BreakerState::HalfOpen:
      // One failed probe is proof enough: back to Open, cooldown restarts.
      open(now);
      break;
    case BreakerState::Open:
      // Stragglers from requests launched before the trip; stay Open but
      // do not extend the cooldown (a recovering backend should not be
      // held hostage by old failures draining).
      break;
  }
}

BreakerState CircuitBreaker::state(Clock::time_point now) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == BreakerState::Open && now - opened_at_ >= options_.cooldown) {
    // Report what allow() would see: the cooldown has lapsed, the next
    // caller becomes the half-open probe.
    return BreakerState::HalfOpen;
  }
  return state_;
}

std::uint64_t CircuitBreaker::opens() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return opens_;
}

}  // namespace gppm::cluster
