// Per-backend circuit breaker — the router's memory of who is failing.
//
// Classic three-state machine:
//
//   Closed ──(failure_threshold consecutive failures)──▶ Open
//   Open ──(cooldown elapses)──▶ HalfOpen
//   HalfOpen ──(half_open_successes successes)──▶ Closed
//   HalfOpen ──(any failure)──▶ Open (cooldown restarts)
//
// Closed admits everything; Open admits nothing (the router routes around
// the backend without spending a connection attempt on it); HalfOpen
// admits a bounded number of probes so recovery is discovered without a
// thundering herd.  Time is passed in by the caller as a steady_clock
// time_point, so the transition tests drive the clock instead of
// sleeping.
//
// Thread-safe: every method takes the internal mutex; calls are cheap
// enough for the predict hot path (one lock, no allocation).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace gppm::cluster {

enum class BreakerState : std::uint8_t { Closed, Open, HalfOpen };

std::string to_string(BreakerState state);

struct BreakerOptions {
  /// Consecutive failures that trip Closed -> Open.
  int failure_threshold = 3;
  /// How long Open refuses before probing again.
  std::chrono::milliseconds cooldown{500};
  /// Successful probes required to close from HalfOpen.
  int half_open_successes = 1;
  /// Probes admitted per HalfOpen episode before further allow() calls
  /// are refused (outcomes still pending).
  int half_open_probes = 2;
};

class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  explicit CircuitBreaker(BreakerOptions options = {});

  /// May a request be sent now?  Open transitions to HalfOpen here once
  /// the cooldown has elapsed; HalfOpen admits up to half_open_probes
  /// callers.
  bool allow(Clock::time_point now = Clock::now());

  void record_success(Clock::time_point now = Clock::now());
  void record_failure(Clock::time_point now = Clock::now());

  BreakerState state(Clock::time_point now = Clock::now()) const;

  /// Closed/HalfOpen -> Open transitions so far (the obs counter's
  /// source).
  std::uint64_t opens() const;

 private:
  void open(Clock::time_point now);

  BreakerOptions options_;
  mutable std::mutex mutex_;
  BreakerState state_ = BreakerState::Closed;
  int consecutive_failures_ = 0;
  int half_open_inflight_ = 0;
  int half_open_successes_ = 0;
  Clock::time_point opened_at_{};
  std::uint64_t opens_ = 0;
};

}  // namespace gppm::cluster
