// Consistent-hash ring with virtual nodes — the cluster's placement
// function.
//
// Each member is projected onto the ring at `vnodes` pseudo-random points
// (splitmix64 stream seeded from the member's name), and a key is owned by
// the first member clockwise from its hash.  Virtual nodes smooth the
// per-member arc length, so K keys spread across N members within a few
// percent of uniform, and membership change stays *bounded*: adding or
// removing one member remaps only the keys on the arcs it gains or loses —
// ≈K/N keys, never a full reshuffle (the property the ring tests pin).
//
// Replication walks further clockwise: replicas(key, R) returns the first
// R *distinct* members, so every key has R owners and the loss of any one
// backend leaves R-1 holders of its keys.
//
// The ring itself is a plain data structure with no locking; the Router
// guards it with its membership lock.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace gppm::cluster {

/// Routing key for one request: the served model family (the board) mixed
/// with the phase's counter fingerprint.  Routing on the phase rather than
/// on the board alone matters twice over — it spreads a single board's
/// traffic across the ring instead of pinning it to R backends, and it
/// sends repeats of the same phase to the same owners, so each backend's
/// prediction cache sees a concentrated (hot) slice of the key space.
std::uint64_t request_key(const serve::Request& request);

class HashRing {
 public:
  /// `vnodes` points per member.  Per-member load deviation scales as
  /// ~1/sqrt(vnodes): 64 points leave ~12 % swings, 256 keep K keys over
  /// N members inside the ±10 % band the tests pin at fleet-size N.  The
  /// sorted point table stays tiny either way (N*vnodes entries).
  explicit HashRing(std::size_t vnodes = 256);

  /// Add a member (idempotent).  Returns true when the membership changed.
  bool add(const std::string& id);
  /// Remove a member (idempotent).  Returns true when the membership
  /// changed.
  bool remove(const std::string& id);

  bool contains(const std::string& id) const;
  std::size_t size() const { return members_.size(); }
  std::vector<std::string> members() const { return members_; }

  /// The first owner clockwise from `key`.  Throws gppm::Error on an empty
  /// ring.
  const std::string& owner(std::uint64_t key) const;

  /// The first min(count, size()) distinct owners clockwise from `key`,
  /// primary first.
  std::vector<std::string> replicas(std::uint64_t key,
                                    std::size_t count) const;

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t member;  ///< index into members_
  };

  void rebuild_points();

  std::size_t vnodes_;
  std::vector<std::string> members_;  ///< sorted, unique
  std::vector<Point> points_;         ///< sorted by hash
};

}  // namespace gppm::cluster
