#include "cluster/fleet.hpp"

#include <utility>

#include "common/error.hpp"

namespace gppm::cluster {

LocalFleet::LocalFleet(core::UnifiedModel power_model,
                       core::UnifiedModel perf_model, FleetOptions options,
                       RouterOptions router_options)
    : options_(std::move(options)),
      power_(std::move(power_model)),
      perf_(std::move(perf_model)) {
  GPPM_CHECK(options_.backends >= 1, "fleet needs at least one backend");
  router_ = std::make_unique<Router>(router_options);

  nodes_.reserve(options_.backends);
  for (std::size_t i = 0; i < options_.backends; ++i) {
    Node node;
    const std::string name = "node" + std::to_string(i);
    node.local = std::make_shared<LocalBackend>(name, power_, perf_,
                                                options_.server);
    if (i == 0) {
      // Same pair everywhere, so node 0 speaks for the fleet.
      models_ = node.local->server()->loaded_models();
    }
    if (options_.wire) {
      net::ServerOptions sopt;
      sopt.port = 0;  // ephemeral on first bind, pinned thereafter
      node.server = std::make_unique<net::Server>(*node.local->server(),
                                                  sopt);
      node.port = node.server->port();
      net::ClientOptions copt = options_.client;
      copt.host = "127.0.0.1";
      copt.port = node.port;
      node.fronting = std::make_shared<RemoteBackend>(
          name, copt, options_.remote_workers, options_.injector);
    } else {
      node.fronting = node.local;
    }
    if (options_.shaped) {
      node.fronting =
          std::make_shared<ShapedBackend>(node.fronting, options_.shaping);
    }
    router_->add_backend(node.fronting);
    nodes_.push_back(std::move(node));
  }
}

LocalFleet::~LocalFleet() { stop(); }

void LocalFleet::stop() {
  if (stopped_) return;
  stopped_ = true;
  router_->stop();
  for (Node& node : nodes_) {
    if (node.server) node.server->stop();
    node.local->kill();
  }
}

const std::string& LocalFleet::name(std::size_t i) const {
  GPPM_CHECK(i < nodes_.size(), "node index out of range");
  return nodes_[i].local->name();
}

std::uint16_t LocalFleet::port(std::size_t i) const {
  GPPM_CHECK(i < nodes_.size(), "node index out of range");
  return nodes_[i].port;
}

bool LocalFleet::alive(std::size_t i) const {
  GPPM_CHECK(i < nodes_.size(), "node index out of range");
  return nodes_[i].local->alive();
}

void LocalFleet::kill(std::size_t i) {
  GPPM_CHECK(i < nodes_.size(), "node index out of range");
  Node& node = nodes_[i];
  // TCP front first (peers see the reset immediately), then the serving
  // engine — the order a real process death presents.
  if (node.server) {
    node.server->stop();
    node.server.reset();
  }
  node.local->kill();
}

void LocalFleet::restart(std::size_t i) {
  GPPM_CHECK(i < nodes_.size(), "node index out of range");
  Node& node = nodes_[i];
  // A restart without a prior kill still swaps the prediction server; the
  // old TCP front must not outlive the engine it references.
  if (node.server) {
    node.server->stop();
    node.server.reset();
  }
  node.local->restart();
  if (options_.wire && !node.server) {
    // Same port (SO_REUSEADDR): clients redial the address they already
    // know, and the pool's stale-FD eviction re-adopts the node.
    net::ServerOptions sopt;
    sopt.port = node.port;
    node.server =
        std::make_unique<net::Server>(*node.local->server(), sopt);
  }
}

std::vector<serve::PredictionServer::LoadedModel> LocalFleet::loaded_models()
    const {
  return models_;
}

net::ServeBridge LocalFleet::bridge() {
  net::ServeBridge bridge;
  bridge.submit = [this](serve::Request request) {
    return router_->submit(std::move(request));
  };
  bridge.loaded_models = [this] { return loaded_models(); };
  bridge.health = [this] {
    net::HealthStatus status = router_->health();
    status.boards = static_cast<std::uint16_t>(models_.size());
    return status;
  };
  return bridge;
}

}  // namespace gppm::cluster
