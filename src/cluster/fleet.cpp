#include "cluster/fleet.hpp"

#include <chrono>
#include <utility>

#include "common/error.hpp"

namespace gppm::cluster {

LocalFleet::LocalFleet(core::UnifiedModel power_model,
                       core::UnifiedModel perf_model, FleetOptions options,
                       RouterOptions router_options)
    : options_(std::move(options)),
      power_(std::move(power_model)),
      perf_(std::move(perf_model)) {
  GPPM_CHECK(options_.backends >= 1, "fleet needs at least one backend");
  router_ = std::make_unique<Router>(router_options);

  nodes_.reserve(options_.backends);
  for (std::size_t i = 0; i < options_.backends; ++i) {
    const std::string name = "node" + std::to_string(next_id_++);
    std::unique_ptr<Node> node = make_node(name);
    if (i == 0) {
      // Same pair everywhere, so node 0 speaks for the fleet.
      models_ = node->local->server()->loaded_models();
    }
    router_->add_backend(node->fronting);
    nodes_.push_back(std::move(node));
  }
}

std::unique_ptr<LocalFleet::Node> LocalFleet::make_node(
    const std::string& name) {
  auto node = std::make_unique<Node>();
  node->local =
      std::make_shared<LocalBackend>(name, power_, perf_, options_.server);
  if (options_.wire) {
    net::ServerOptions sopt;
    sopt.port = 0;  // ephemeral on first bind, pinned thereafter
    node->server =
        std::make_unique<net::Server>(*node->local->server(), sopt);
    node->port = node->server->port();
    net::ClientOptions copt = options_.client;
    copt.host = "127.0.0.1";
    copt.port = node->port;
    node->fronting = std::make_shared<RemoteBackend>(
        name, copt, options_.remote_workers, options_.injector);
  } else {
    node->fronting = node->local;
  }
  if (options_.shaped) {
    node->fronting =
        std::make_shared<ShapedBackend>(node->fronting, options_.shaping);
  }
  return node;
}

LocalFleet::~LocalFleet() { stop(); }

void LocalFleet::stop() {
  std::unique_lock<std::shared_mutex> lock(nodes_mutex_);
  if (stopped_) return;
  stopped_ = true;
  router_->stop();
  for (const std::unique_ptr<Node>& node : nodes_) {
    std::lock_guard<std::mutex> node_lock(node->lifecycle);
    if (node->server) node->server->stop();
    node->local->kill();
  }
}

LocalFleet::Node& LocalFleet::node_at(std::size_t i) const {
  std::shared_lock<std::shared_mutex> lock(nodes_mutex_);
  GPPM_CHECK(i < nodes_.size(), "node index out of range");
  // Stable: nodes are never erased and the unique_ptr target never moves.
  return *nodes_[i];
}

std::size_t LocalFleet::size() const {
  std::shared_lock<std::shared_mutex> lock(nodes_mutex_);
  return nodes_.size();
}

const std::string& LocalFleet::name(std::size_t i) const {
  return node_at(i).local->name();
}

std::uint16_t LocalFleet::port(std::size_t i) const {
  return node_at(i).port;
}

bool LocalFleet::alive(std::size_t i) const {
  return node_at(i).local->alive();
}

void LocalFleet::kill(std::size_t i) {
  Node& node = node_at(i);
  std::lock_guard<std::mutex> lock(node.lifecycle);
  // TCP front first (peers see the reset immediately), then the serving
  // engine — the order a real process death presents.
  if (node.server) {
    node.server->stop();
    node.server.reset();
  }
  node.local->kill();
}

void LocalFleet::restart(std::size_t i) {
  Node& node = node_at(i);
  std::lock_guard<std::mutex> lock(node.lifecycle);
  // A restart without a prior kill still swaps the prediction server; the
  // old TCP front must not outlive the engine it references.
  if (node.server) {
    node.server->stop();
    node.server.reset();
  }
  node.local->restart();
  if (options_.wire && !node.server) {
    // Same port (SO_REUSEADDR): clients redial the address they already
    // know, and the pool's stale-FD eviction re-adopts the node.
    net::ServerOptions sopt;
    sopt.port = node.port;
    node.server =
        std::make_unique<net::Server>(*node.local->server(), sopt);
  }
}

std::size_t LocalFleet::add_node() {
  std::unique_lock<std::shared_mutex> lock(nodes_mutex_);
  GPPM_CHECK(!stopped_, "fleet is stopped");
  const std::string name = "node" + std::to_string(next_id_++);
  std::unique_ptr<Node> node = make_node(name);
  router_->add_backend(node->fronting);
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

DrainReport LocalFleet::drain_node(std::size_t i, Duration timeout) {
  Node& node = node_at(i);
  // Router drain first: the node leaves the ring and finishes its
  // in-flight work while still fully alive, *then* the engine goes down.
  DrainReport report =
      router_->drain_backend(node.local->name(), timeout);
  std::lock_guard<std::mutex> lock(node.lifecycle);
  if (node.server) {
    node.server->stop();
    node.server.reset();
  }
  node.local->kill();
  return report;
}

void LocalFleet::rejoin(std::size_t i) {
  if (in_ring(i)) return;
  restart(i);
  Node& node = node_at(i);
  router_->add_backend(node.fronting);
}

bool LocalFleet::in_ring(std::size_t i) const {
  const std::string& who = node_at(i).local->name();
  for (const std::string& member : router_->backends()) {
    if (member == who) return true;
  }
  return false;
}

bool LocalFleet::probe(std::size_t i) const {
  Node& node = node_at(i);
  // Co-located fast path: a dead engine answers no ping — skip the wire
  // round-trip (and its retry backoff) straight to "down".  A live engine
  // behind a dead TCP front still goes through the real probe.
  if (!node.local->alive()) return false;
  try {
    return node.fronting->ping();
  } catch (const std::exception&) {
    return false;
  }
}

RollingRestartReport LocalFleet::rolling_restart(Duration per_node_timeout) {
  const auto start = std::chrono::steady_clock::now();
  RollingRestartReport report;
  const std::size_t count = size();
  for (std::size_t i = 0; i < count; ++i) {
    if (!in_ring(i)) continue;  // drained/parked nodes are not upgraded
    DrainReport drain =
        router_->drain_backend(name(i), per_node_timeout);
    restart(i);
    Node& node = node_at(i);
    router_->add_backend(node.fronting);
    report.zero_loss = report.zero_loss && drain.zero_loss;
    report.drains.push_back(std::move(drain));
  }
  report.duration = Duration::seconds(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return report;
}

std::vector<serve::PredictionServer::LoadedModel> LocalFleet::loaded_models()
    const {
  return models_;
}

net::ServeBridge LocalFleet::bridge() {
  net::ServeBridge bridge;
  bridge.submit = [this](serve::Request request) {
    return router_->submit(std::move(request));
  };
  bridge.loaded_models = [this] { return loaded_models(); };
  bridge.health = [this] {
    net::HealthStatus status = router_->health();
    status.boards = static_cast<std::uint16_t>(models_.size());
    return status;
  };
  return bridge;
}

}  // namespace gppm::cluster
