#include "cluster/router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "fault/plan.hpp"
#include "obs/obs.hpp"

namespace gppm::cluster {

namespace {

struct RouterObs {
  obs::Counter& requests;
  obs::Counter& hedges_fired;
  obs::Counter& hedge_wins;
  obs::Counter& hedges_abandoned;
  obs::Counter& failovers;
  obs::Counter& breaker_opens;
  obs::Counter& breaker_rejections;
  obs::Counter& ring_remaps;
  obs::Counter& exhausted;
  obs::Counter& admission_shed;
  obs::Histogram& latency_us;
};

RouterObs& router_obs() {
  obs::Registry& reg = obs::Registry::instance();
  static RouterObs instruments{
      reg.counter("cluster.router.requests"),
      reg.counter("cluster.router.hedges_fired"),
      reg.counter("cluster.router.hedge_wins"),
      reg.counter("cluster.router.hedges_abandoned"),
      reg.counter("cluster.router.failovers"),
      reg.counter("cluster.router.breaker_opens"),
      reg.counter("cluster.router.breaker_rejections"),
      reg.counter("cluster.router.ring_remaps"),
      reg.counter("cluster.router.exhausted"),
      reg.counter("cluster.router.admission_shed"),
      reg.histogram("cluster.router.latency_us",
                    {100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000,
                     100000, 250000}),
  };
  return instruments;
}

struct DrainObs {
  obs::Counter& started;
  obs::Counter& completed;
  obs::Counter& timeouts;
  obs::Counter& handed_off;
  obs::Histogram& duration_ms;
};

DrainObs& drain_obs() {
  obs::Registry& reg = obs::Registry::instance();
  static DrainObs instruments{
      reg.counter("cluster.drain.started"),
      reg.counter("cluster.drain.completed"),
      reg.counter("cluster.drain.timeouts"),
      reg.counter("cluster.drain.handed_off"),
      reg.histogram("cluster.drain.duration_ms",
                    {1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 5000}),
  };
  return instruments;
}

/// Per-backend in-flight gauge (dynamic name: one per joined backend).
obs::Gauge& in_flight_gauge(const std::string& name) {
  return obs::Registry::instance().gauge("cluster.router.in_flight." + name);
}

std::chrono::steady_clock::duration to_steady(Duration d) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(d.as_seconds()));
}

}  // namespace

// --- LatencyTracker -------------------------------------------------------

void LatencyTracker::record(double seconds) {
  if (!(seconds > 0.0)) seconds = 1e-9;
  // Bin i covers latencies around 2^(i/4) microseconds: quarter-octave
  // resolution from 1 us up past 50 s in 64 bins.
  const double micros = seconds * 1e6;
  int bin = static_cast<int>(std::lround(std::log2(std::max(micros, 1.0)) *
                                         4.0));
  bin = std::clamp(bin, 0, static_cast<int>(kBins) - 1);
  bins_[static_cast<std::size_t>(bin)].fetch_add(1,
                                                 std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
}

double LatencyTracker::quantile(double q) const {
  const std::uint64_t total = total_.load(std::memory_order_relaxed);
  // No samples: there is no estimate.  +inf (not 0) is the safe sentinel —
  // every caller that clamps the result into a delay band lands on its
  // conservative ceiling instead of its aggressive floor.
  if (total == 0) return std::numeric_limits<double>::infinity();
  // Integer rank in [1, total]: the rank-th smallest recorded sample.  A
  // fractional `q * total` compared with >= let rank 0 (q == 0, or any q
  // small enough to round below one sample) match the *empty* bin 0 and
  // report ~1.19 us no matter what was recorded.
  std::uint64_t rank = 1;
  if (std::isfinite(q) && q > 0.0) {
    rank = q >= 1.0 ? total
                    : std::min<std::uint64_t>(
                          total,
                          static_cast<std::uint64_t>(
                              std::ceil(q * static_cast<double>(total))));
    rank = std::max<std::uint64_t>(rank, 1);
  }
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBins; ++i) {
    seen += bins_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Upper edge of the bin, back in seconds.
      return std::exp2(static_cast<double>(i + 1) / 4.0) * 1e-6;
    }
  }
  return std::exp2(static_cast<double>(kBins) / 4.0) * 1e-6;
}

// --- Router ---------------------------------------------------------------

Router::Router(RouterOptions options)
    : options_(options),
      ring_(options.ring_vnodes),
      async_queue_(4096) {
  GPPM_CHECK(options_.replicas >= 1, "router needs replicas >= 1");
  GPPM_CHECK(options_.async_workers >= 1, "router needs async workers >= 1");
  if (options_.admission_control) {
    admission_ =
        std::make_unique<serve::AdmissionController>(options_.admission);
  }
  executors_.reserve(options_.async_workers);
  for (std::size_t i = 0; i < options_.async_workers; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
  if (options_.health_interval.as_seconds() > 0.0) {
    health_thread_ = std::thread([this] { health_loop(); });
  }
}

Router::~Router() { stop(); }

void Router::stop() {
  if (stopped_.exchange(true)) return;
  async_queue_.close();
  for (std::thread& t : executors_) {
    if (t.joinable()) t.join();
  }
  if (health_thread_.joinable()) health_thread_.join();
}

void Router::add_backend(std::shared_ptr<Backend> backend) {
  GPPM_CHECK(backend != nullptr, "null backend");
  const std::string name = backend->name();
  obs::Gauge& gauge = in_flight_gauge(name);
  std::unique_lock<std::shared_mutex> lock(membership_mutex_);
  GPPM_CHECK(slots_.find(name) == slots_.end(),
             "backend '" + name + "' already joined");
  slots_.emplace(name, std::make_shared<Slot>(std::move(backend),
                                              options_.breaker, gauge));
  if (ring_.add(name)) {
    ring_remaps_.fetch_add(1);
    router_obs().ring_remaps.add();
  }
}

void Router::remove_backend(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(membership_mutex_);
  slots_.erase(name);
  draining_.erase(name);
  if (ring_.remove(name)) {
    ring_remaps_.fetch_add(1);
    router_obs().ring_remaps.add();
  }
}

DrainReport Router::drain_backend(const std::string& name, Duration timeout) {
  obs::ObsSpan span("cluster.router.drain");
  if (timeout.as_seconds() <= 0.0) timeout = options_.drain_timeout;
  const auto start = std::chrono::steady_clock::now();

  DrainReport report;
  report.backend = name;
  SlotPtr slot;
  {
    std::unique_lock<std::shared_mutex> lock(membership_mutex_);
    const auto live = slots_.find(name);
    if (live != slots_.end()) {
      slot = live->second;
      draining_.emplace(name, slot);
      slots_.erase(live);
      if (ring_.remove(name)) {
        ring_remaps_.fetch_add(1);
        router_obs().ring_remaps.add();
      }
    } else {
      // A second drain of the same name observes the in-progress one;
      // fully unknown names are a completed no-op.
      const auto draining = draining_.find(name);
      if (draining == draining_.end()) {
        report.completed = true;
        report.zero_loss = true;
        return report;
      }
      slot = draining->second;
    }
  }
  drains_.fetch_add(1);
  drain_obs().started.add();

  // Everything still counted on the slot is the handoff set: requests
  // routed before the membership change that will finish on the leaving
  // backend (or fail over off it).
  report.in_flight_at_start = static_cast<std::uint64_t>(
      std::max<std::int64_t>(slot->in_flight.load(std::memory_order_relaxed),
                             0));
  const std::uint64_t failures_before =
      slot->failures.load(std::memory_order_relaxed);

  if (options_.injector != nullptr &&
      options_.injector->should_fire(fault::kSiteClusterDrainSlow)) {
    // A slow drain: the handoff window stretches but correctness must not
    // change — exactly what the chaos suite asserts.
    const double stall_ms =
        options_.injector->magnitude(fault::kSiteClusterDrainSlow);
    std::this_thread::sleep_for(to_steady(Duration::milliseconds(stall_ms)));
  }

  const auto deadline = start + to_steady(timeout);
  const auto poll = to_steady(options_.drain_poll);
  while (slot->in_flight.load(std::memory_order_acquire) > 0) {
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(poll);
  }

  const std::int64_t left = slot->in_flight.load(std::memory_order_acquire);
  report.completed = left == 0;
  const std::uint64_t failures_after =
      slot->failures.load(std::memory_order_relaxed);
  report.handed_off = report.in_flight_at_start;
  report.zero_loss = report.completed && failures_after == failures_before;
  report.duration = Duration::seconds(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());

  {
    std::unique_lock<std::shared_mutex> lock(membership_mutex_);
    draining_.erase(name);
  }
  drain_handed_off_.fetch_add(report.handed_off);
  drain_obs().handed_off.add(report.handed_off);
  drain_obs().duration_ms.record(report.duration.as_seconds() * 1e3);
  if (report.completed) {
    drain_obs().completed.add();
  } else {
    drain_obs().timeouts.add();
  }
  return report;
}

bool Router::draining(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  return draining_.find(name) != draining_.end();
}

std::vector<std::string> Router::backends() const {
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  return ring_.members();
}

std::vector<Router::SlotPtr> Router::route(
    const serve::Request& request) const {
  const std::uint64_t key = request_key(request);
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  std::vector<SlotPtr> candidates;
  for (const std::string& name : ring_.replicas(key, options_.replicas)) {
    const auto it = slots_.find(name);
    if (it != slots_.end()) candidates.push_back(it->second);
  }
  return candidates;
}

Duration Router::hedge_delay() const {
  if (latency_.count() < options_.hedge_min_samples) {
    return options_.hedge_max_delay;
  }
  const double q = latency_.quantile(options_.hedge_quantile);
  return Duration::seconds(
      std::clamp(q, options_.hedge_min_delay.as_seconds(),
                 options_.hedge_max_delay.as_seconds()));
}

bool Router::launch(const std::vector<SlotPtr>& candidates, std::size_t& next,
                    bool is_hedge, Flight& out,
                    const serve::Request& request) {
  while (next < candidates.size()) {
    SlotPtr slot = candidates[next++];
    if (!slot->breaker.allow()) {
      breaker_rejections_.fetch_add(1);
      router_obs().breaker_rejections.add();
      continue;
    }
    try {
      Flight flight;
      flight.launched = std::chrono::steady_clock::now();
      flight.future = slot->backend->submit(request);
      flight.slot = slot;
      flight.is_hedge = is_hedge;
      slot->in_flight.fetch_add(1, std::memory_order_relaxed);
      slot->gauge.add(1);
      out = std::move(flight);
      return true;
    } catch (const std::exception&) {
      // Could not even accept (killed node, stopped pool): a synchronous
      // failure, recorded like any other.
      slot->breaker.record_failure();
      slot->failures.fetch_add(1, std::memory_order_relaxed);
      failovers_.fetch_add(1);
      router_obs().failovers.add();
    }
  }
  return false;
}

serve::Response Router::predict(const serve::Request& request) {
  if (!admission_) return predict_admitted(request);

  if (!admission_->try_acquire(request.deadline)) {
    admission_shed_.fetch_add(1);
    router_obs().admission_shed.add();
    serve::Response response;
    response.kind = request.kind;
    response.status = serve::ResponseStatus::Overloaded;
    response.error = "shed by admission control";
    return response;
  }
  const auto start = std::chrono::steady_clock::now();
  try {
    serve::Response response = predict_admitted(request);
    const Duration took = Duration::seconds(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
    const bool late = request.deadline.as_seconds() > 0.0 &&
                      took.as_seconds() > request.deadline.as_seconds();
    if (response.status == serve::ResponseStatus::Ok && !late) {
      admission_->release_success(took);
    } else if (response.status == serve::ResponseStatus::Overloaded ||
               response.status == serve::ResponseStatus::DeadlineExceeded ||
               late) {
      // Downstream shed / blowout: the capacity probe overshot.
      admission_->release_congestion(took);
    } else {
      admission_->release_error();
    }
    return response;
  } catch (...) {
    admission_->release_error();
    throw;
  }
}

serve::Response Router::predict_admitted(const serve::Request& request) {
  obs::ObsSpan span("cluster.router.predict");
  if (stopped_.load(std::memory_order_acquire)) {
    throw Error("cluster router is stopped");
  }
  requests_.fetch_add(1);
  router_obs().requests.add();

  const std::vector<SlotPtr> candidates = route(request);
  if (candidates.empty()) {
    throw Error("cluster router has no backends");
  }

  auto finish = [&](Flight& flight) {
    flight.slot->in_flight.fetch_add(-1, std::memory_order_relaxed);
    flight.slot->gauge.add(-1);
  };
  auto typed_failure = [&] {
    exhausted_.fetch_add(1);
    router_obs().exhausted.add();
    serve::Response response;
    response.kind = request.kind;
    response.status = serve::ResponseStatus::InternalError;
    response.error = "all " + std::to_string(candidates.size()) +
                     " replicas failed";
    return response;
  };

  std::size_t next = 0;
  std::vector<Flight> flights;
  {
    Flight primary;
    if (!launch(candidates, next, /*is_hedge=*/false, primary, request)) {
      return typed_failure();
    }
    flights.push_back(std::move(primary));
  }
  const auto hedge_at = flights.front().launched + to_steady(hedge_delay());
  bool hedge_considered = !options_.hedging;

  const auto slice = to_steady(options_.poll_slice);
  while (true) {
    // Poll every outstanding flight for one slice's worth of budget.
    const auto wait =
        slice / static_cast<std::int64_t>(std::max<std::size_t>(
                    flights.size(), 1));
    for (auto it = flights.begin(); it != flights.end();) {
      if (it->future.wait_for(wait) != std::future_status::ready) {
        ++it;
        continue;
      }
      try {
        serve::Response response = it->future.get();
        // Winner: record, abandon the rest, answer.
        it->slot->breaker.record_success();
        const double took =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          it->launched)
                .count();
        latency_.record(took);
        router_obs().latency_us.record(took * 1e6);
        if (it->is_hedge) {
          hedge_wins_.fetch_add(1);
          router_obs().hedge_wins.add();
        }
        finish(*it);
        for (auto other = flights.begin(); other != flights.end(); ++other) {
          if (other == it) continue;
          // The loser keeps computing into a dropped promise-backed
          // future; its duplicate answer is discarded, which is safe
          // because predictions are pure.
          finish(*other);
          hedges_abandoned_.fetch_add(1);
          router_obs().hedges_abandoned.add();
        }
        return response;
      } catch (const std::exception&) {
        it->slot->breaker.record_failure();
        it->slot->failures.fetch_add(1, std::memory_order_relaxed);
        finish(*it);
        failovers_.fetch_add(1);
        router_obs().failovers.add();
        it = flights.erase(it);
      }
    }

    if (flights.empty()) {
      Flight replacement;
      if (!launch(candidates, next, /*is_hedge=*/false, replacement,
                  request)) {
        return typed_failure();
      }
      flights.push_back(std::move(replacement));
      continue;
    }

    if (!hedge_considered &&
        std::chrono::steady_clock::now() >= hedge_at) {
      hedge_considered = true;  // one hedge per request, fired or not
      Flight hedge;
      if (launch(candidates, next, /*is_hedge=*/true, hedge, request)) {
        hedges_fired_.fetch_add(1);
        router_obs().hedges_fired.add();
        flights.push_back(std::move(hedge));
      }
    }
  }
}

std::future<serve::Response> Router::submit(serve::Request request) {
  AsyncJob job;
  job.request = std::move(request);
  std::future<serve::Response> future = job.promise.get_future();
  if (!async_queue_.push(std::move(job))) {
    throw Error("cluster router is stopped");
  }
  return future;
}

void Router::executor_loop() {
  while (true) {
    std::vector<AsyncJob> batch = async_queue_.pop_batch(1);
    if (batch.empty()) return;  // closed and drained
    AsyncJob& job = batch.front();
    try {
      job.promise.set_value(predict(job.request));
    } catch (const std::exception& e) {
      // predict() throws only for no-backends/stopped; keep the serve
      // contract (futures resolve, never carry exceptions).
      serve::Response response;
      response.kind = job.request.kind;
      response.status = serve::ResponseStatus::InternalError;
      response.error = e.what();
      job.promise.set_value(std::move(response));
    }
  }
}

void Router::health_loop() {
  const auto interval = to_steady(options_.health_interval);
  const auto tick = std::chrono::milliseconds(5);
  auto next_probe = std::chrono::steady_clock::now();
  while (!stopped_.load(std::memory_order_acquire)) {
    if (std::chrono::steady_clock::now() < next_probe) {
      std::this_thread::sleep_for(tick);
      continue;
    }
    next_probe = std::chrono::steady_clock::now() + interval;

    std::vector<SlotPtr> snapshot;
    {
      std::shared_lock<std::shared_mutex> lock(membership_mutex_);
      snapshot.reserve(slots_.size());
      for (const auto& [name, slot] : slots_) snapshot.push_back(slot);
    }
    for (const SlotPtr& slot : snapshot) {
      if (stopped_.load(std::memory_order_acquire)) return;
      bool up = false;
      try {
        up = slot->backend->ping();
      } catch (const std::exception&) {
        up = false;
      }
      if (up) {
        // Feed successes only into a probing breaker (Open/HalfOpen):
        // pings against a Closed one would reset the consecutive-failure
        // count from outside the request path and mask a failing backend.
        if (slot->breaker.state() != BreakerState::Closed) {
          if (slot->breaker.allow()) slot->breaker.record_success();
        }
      } else {
        slot->breaker.record_failure();
      }
    }

    // Mirror Closed/HalfOpen -> Open transitions into the obs counter
    // (single-threaded here, so a plain delta is race-free).
    std::uint64_t opens = 0;
    for (const SlotPtr& slot : snapshot) opens += slot->breaker.opens();
    if (opens > reported_opens_) {
      router_obs().breaker_opens.add(opens - reported_opens_);
      reported_opens_ = opens;
    }
  }
}

net::HealthStatus Router::health() const {
  net::HealthStatus status;
  status.queue_depth = static_cast<std::uint32_t>(async_queue_.size());
  status.queue_capacity = 4096;
  status.workers = static_cast<std::uint32_t>(options_.async_workers);
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  status.boards = static_cast<std::uint16_t>(slots_.size());
  // Accepting means a request submitted now could be served: the router is
  // running and at least one backend's breaker admits traffic (state()
  // already reports a lapsed-cooldown Open as HalfOpen).
  bool admits = false;
  for (const auto& [name, slot] : slots_) {
    if (slot->breaker.state() != BreakerState::Open) {
      admits = true;
      break;
    }
  }
  status.accepting = admits && !stopped_.load(std::memory_order_acquire);
  return status;
}

BreakerState Router::breaker_state(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  if (const auto it = slots_.find(name); it != slots_.end()) {
    return it->second->breaker.state();
  }
  const auto it = draining_.find(name);
  GPPM_CHECK(it != draining_.end(), "unknown backend '" + name + "'");
  return it->second->breaker.state();
}

std::int64_t Router::in_flight(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  if (const auto it = slots_.find(name); it != slots_.end()) {
    return it->second->in_flight.load(std::memory_order_relaxed);
  }
  if (const auto it = draining_.find(name); it != draining_.end()) {
    return it->second->in_flight.load(std::memory_order_relaxed);
  }
  return 0;
}

RouterStats Router::stats() const {
  RouterStats s;
  s.requests = requests_.load();
  s.hedges_fired = hedges_fired_.load();
  s.hedge_wins = hedge_wins_.load();
  s.hedges_abandoned = hedges_abandoned_.load();
  s.failovers = failovers_.load();
  s.breaker_rejections = breaker_rejections_.load();
  s.ring_remaps = ring_remaps_.load();
  s.exhausted = exhausted_.load();
  s.drains = drains_.load();
  s.drain_handed_off = drain_handed_off_.load();
  s.admission_shed = admission_shed_.load();
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  for (const auto& [name, slot] : slots_) {
    s.breaker_opens += slot->breaker.opens();
  }
  for (const auto& [name, slot] : draining_) {
    s.breaker_opens += slot->breaker.opens();
  }
  return s;
}

}  // namespace gppm::cluster
