#include "cluster/supervisor.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "fault/plan.hpp"
#include "obs/obs.hpp"

namespace gppm::cluster {

namespace {

struct SupervisorObs {
  obs::Counter& probes;
  obs::Counter& probe_failures;
  obs::Counter& probes_lost;
  obs::Counter& restarts;
  obs::Counter& budget_exhausted;
  obs::Histogram& backoff_ms;
};

SupervisorObs& supervisor_obs() {
  obs::Registry& reg = obs::Registry::instance();
  static SupervisorObs instruments{
      reg.counter("cluster.supervisor.probes"),
      reg.counter("cluster.supervisor.probe_failures"),
      reg.counter("cluster.supervisor.probes_lost"),
      reg.counter("cluster.supervisor.restarts"),
      reg.counter("cluster.supervisor.budget_exhausted"),
      reg.histogram("cluster.supervisor.backoff_ms",
                    {10, 25, 50, 100, 250, 500, 1000, 2500, 5000}),
  };
  return instruments;
}

std::chrono::steady_clock::duration to_steady(Duration d) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(d.as_seconds()));
}

}  // namespace

Supervisor::Supervisor(LocalFleet& fleet, SupervisorOptions options)
    : fleet_(fleet), options_(options), root_rng_(options.seed) {
  GPPM_CHECK(options_.failure_threshold >= 1,
             "supervisor failure_threshold must be >= 1");
  GPPM_CHECK(options_.restart_budget >= 1,
             "supervisor restart_budget must be >= 1");
  GPPM_CHECK(options_.jitter >= 0.0 && options_.jitter < 1.0,
             "supervisor jitter must be in [0, 1)");
  GPPM_CHECK(options_.probe_interval.as_seconds() > 0.0,
             "supervisor probe_interval must be > 0");
  thread_ = std::thread([this] { loop(); });
}

Supervisor::~Supervisor() { stop(); }

void Supervisor::stop() {
  if (stopped_.exchange(true)) return;
  if (thread_.joinable()) thread_.join();
}

void Supervisor::loop() {
  const auto interval = to_steady(options_.probe_interval);
  const auto tick = std::chrono::milliseconds(2);
  auto next_round = std::chrono::steady_clock::now();
  while (!stopped_.load(std::memory_order_acquire)) {
    if (std::chrono::steady_clock::now() < next_round) {
      std::this_thread::sleep_for(tick);
      continue;
    }
    next_round = std::chrono::steady_clock::now() + interval;

    // The fleet only grows, and indices are stable, so sizing the state
    // table up lazily is all add_node() support costs.
    const std::size_t count = fleet_.size();
    while (states_.size() < count) {
      NodeState state;
      state.backoff_s = options_.initial_backoff.as_seconds();
      state.rng = root_rng_.fork(states_.size());
      states_.push_back(state);
    }
    for (std::size_t i = 0; i < count; ++i) {
      if (stopped_.load(std::memory_order_acquire)) return;
      supervise(i);
    }
  }
}

void Supervisor::supervise(std::size_t i) {
  NodeState& state = states_[i];
  if (!fleet_.in_ring(i)) {
    // Off the ring = planned removal (drain in progress or parked);
    // restarting it would fight the drain path.
    skipped_drained_.fetch_add(1);
    state.consecutive_failures = 0;
    return;
  }

  bool up = false;
  if (options_.injector != nullptr &&
      options_.injector->should_fire(fault::kSiteSupervisorProbe)) {
    // The monitoring plane lies: the probe is lost, the node may be fine.
    probes_lost_.fetch_add(1);
    supervisor_obs().probes_lost.add();
  } else {
    up = fleet_.probe(i);
  }
  probes_.fetch_add(1);
  supervisor_obs().probes.add();

  if (up) {
    state.consecutive_failures = 0;
    // A healthy answer refills the budget and resets the backoff: the
    // budget bounds restart storms, not total restarts over a long run.
    state.restarts_used = 0;
    state.backoff_s = options_.initial_backoff.as_seconds();
    state.flagged_unrecoverable = false;
    return;
  }

  ++state.consecutive_failures;
  probe_failures_.fetch_add(1);
  supervisor_obs().probe_failures.add();
  if (state.consecutive_failures < options_.failure_threshold) return;

  if (state.restarts_used >= options_.restart_budget) {
    if (!state.flagged_unrecoverable) {
      state.flagged_unrecoverable = true;
      budget_exhausted_.fetch_add(1);
      supervisor_obs().budget_exhausted.add();
    }
    return;
  }
  const auto now = std::chrono::steady_clock::now();
  if (now < state.next_attempt) return;  // still backing off

  try {
    fleet_.restart(i);
  } catch (const std::exception&) {
    // Restart itself failed (bind refused, engine load error): treated
    // exactly like a failed probe — backoff advances below.
  }
  ++state.restarts_used;
  restarts_.fetch_add(1);
  supervisor_obs().restarts.add();
  state.consecutive_failures = 0;  // give the fresh engine a probe cycle

  // Jittered exponential backoff before any further attempt.
  const double jittered =
      state.backoff_s *
      state.rng.uniform(1.0 - options_.jitter, 1.0 + options_.jitter);
  supervisor_obs().backoff_ms.record(jittered * 1e3);
  state.next_attempt = now + to_steady(Duration::seconds(jittered));
  state.backoff_s =
      std::min(state.backoff_s * 2.0, options_.max_backoff.as_seconds());
}

SupervisorStats Supervisor::stats() const {
  SupervisorStats s;
  s.probes = probes_.load();
  s.probe_failures = probe_failures_.load();
  s.probes_lost = probes_lost_.load();
  s.restarts = restarts_.load();
  s.skipped_drained = skipped_drained_.load();
  s.budget_exhausted = budget_exhausted_.load();
  return s;
}

}  // namespace gppm::cluster
