#include "cluster/backend.hpp"

#include <chrono>
#include <utility>

#include "common/error.hpp"

namespace gppm::cluster {

// --- LocalBackend ---------------------------------------------------------

LocalBackend::LocalBackend(std::string name, core::UnifiedModel power_model,
                           core::UnifiedModel perf_model,
                           serve::ServerOptions options)
    : name_(std::move(name)),
      power_(std::move(power_model)),
      perf_(std::move(perf_model)),
      options_(options) {
  restart();
}

LocalBackend::~LocalBackend() { kill(); }

std::shared_ptr<serve::PredictionServer> LocalBackend::server() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return server_;
}

std::future<serve::Response> LocalBackend::submit(
    const serve::Request& request) {
  std::shared_ptr<serve::PredictionServer> server = this->server();
  if (!server) throw Error("backend " + name_ + " is down");
  return server->submit(request);
}

bool LocalBackend::ping() {
  const std::shared_ptr<serve::PredictionServer> server = this->server();
  return server && server->running();
}

bool LocalBackend::alive() const { return server() != nullptr; }

void LocalBackend::kill() {
  std::shared_ptr<serve::PredictionServer> victim;
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    victim = std::move(server_);
    server_ = nullptr;
  }
  // Shut down outside the lock: drain-and-join can take a moment, and a
  // concurrent submit holding a shared_ptr copy must be free to fail on
  // its own (submit on a draining server throws, which is the contract).
  if (victim) victim->shutdown();
}

void LocalBackend::restart() {
  auto fresh = std::make_shared<serve::PredictionServer>(options_);
  // A fresh copy of the *same* fitted pair: predictions after the restart
  // are bit-identical to before (the chaos gate depends on this).
  fresh->load_models(power_, perf_);
  std::unique_lock<std::shared_mutex> lock(mutex_);
  server_ = std::move(fresh);
}

// --- RemoteBackend --------------------------------------------------------

RemoteBackend::RemoteBackend(std::string name, net::ClientOptions options,
                             std::size_t workers,
                             fault::FaultInjector* injector)
    : name_(std::move(name)),
      client_(std::move(options), injector),
      queue_(256) {
  GPPM_CHECK(workers > 0, "remote backend needs at least one worker");
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

RemoteBackend::~RemoteBackend() { stop(); }

void RemoteBackend::stop() {
  if (stopped_.exchange(true)) return;
  queue_.close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  client_.close();
}

std::future<serve::Response> RemoteBackend::submit(
    const serve::Request& request) {
  Job job;
  job.request = request;
  std::future<serve::Response> future = job.promise.get_future();
  if (!queue_.push(std::move(job))) {
    throw Error("backend " + name_ + " is stopped");
  }
  return future;
}

void RemoteBackend::worker_loop() {
  while (true) {
    std::vector<Job> batch = queue_.pop_batch(1);
    if (batch.empty()) return;  // closed and drained
    Job& job = batch.front();
    try {
      job.promise.set_value(client_.predict(job.request));
    } catch (...) {
      // NetError (retries exhausted, server gone) rides the future; the
      // router turns it into a breaker-recorded failover.
      job.promise.set_exception(std::current_exception());
    }
  }
}

bool RemoteBackend::ping() {
  try {
    return client_.health().accepting;
  } catch (const net::RpcError&) {
    // A v1 peer rejects the health frame with a typed ErrorReply; fall
    // back to the v1 liveness probe.
    try {
      client_.ping();
      return true;
    } catch (const std::exception&) {
      return false;
    }
  } catch (const std::exception&) {
    return false;
  }
}

// --- ShapedBackend --------------------------------------------------------

ShapedBackend::ShapedBackend(std::shared_ptr<Backend> inner,
                             ShapingOptions options)
    : inner_(std::move(inner)), options_(options), queue_(1024) {
  GPPM_CHECK(options_.concurrency > 0,
             "shaped backend needs concurrency >= 1");
  workers_.reserve(options_.concurrency);
  for (std::size_t i = 0; i < options_.concurrency; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ShapedBackend::~ShapedBackend() { stop(); }

void ShapedBackend::stop() {
  queue_.close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

std::future<serve::Response> ShapedBackend::submit(
    const serve::Request& request) {
  Job job;
  job.request = request;
  job.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::future<serve::Response> future = job.promise.get_future();
  if (!queue_.push(std::move(job))) {
    throw Error("backend " + name() + " is stopped");
  }
  return future;
}

void ShapedBackend::worker_loop() {
  while (true) {
    std::vector<Job> batch = queue_.pop_batch(1);
    if (batch.empty()) return;
    Job& job = batch.front();
    const auto start = std::chrono::steady_clock::now();
    double floor_s = options_.min_service.as_seconds();
    if (options_.lag_every > 0 && job.seq % options_.lag_every == 0) {
      floor_s += options_.lag.as_seconds();
    }
    try {
      serve::Response response = inner_->submit(job.request).get();
      // Make up whatever the real evaluation left of the service floor;
      // sleeping burns no CPU, so shaped nodes genuinely run in parallel
      // on one core.
      const auto deadline =
          start + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(floor_s));
      std::this_thread::sleep_until(deadline);
      job.promise.set_value(std::move(response));
    } catch (...) {
      job.promise.set_exception(std::current_exception());
    }
  }
}

}  // namespace gppm::cluster
