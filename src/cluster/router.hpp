// cluster::Router — sharded, replicated front-end over a backend fleet.
//
// Placement: each request's key (see ring.hpp) owns R replicas on a
// consistent-hash ring, primary first.  The router sends to the primary
// and holds the rest as hedge/failover targets, so a single backend loss
// costs its keys one failover, not an outage, and membership change
// remaps only ≈K/N keys.
//
// Tail control, layered in order of escalation:
//
//   * circuit breaking — a backend that keeps failing trips its breaker
//     Open and is routed around without spending a connection attempt;
//     the health loop probes it (HalfOpen) and closes the breaker when it
//     answers again;
//   * hedged requests — if the primary has not answered within the
//     observed p`hedge_quantile` latency (log-binned tracker, clamped to
//     [hedge_min_delay, hedge_max_delay]), the same request is fired at
//     the next replica and the first answer wins.  The loser is
//     abandoned, not awaited: the futures are promise-backed, so dropping
//     the handle never blocks, and the work it represents is accounted
//     under hedges_abandoned.  Predictions are pure, which is what makes
//     the duplicate send safe;
//   * failover — a failed flight (submit threw, or the future carried an
//     exception) records a breaker failure and moves to the next replica;
//     only when every replica has failed does the caller get an answer —
//     a typed ResponseStatus::InternalError response, never an exception,
//     mirroring the serve contract.
//
// Deadlines need no router logic: they ride the request into whichever
// backend serves it and the serve admission queue enforces them; load
// shedding likewise comes back as a typed Overloaded answer.  With
// admission_control on, the router additionally sheds at its own door
// (AIMD limit + deadline-aware estimate, serve::AdmissionController)
// before any backend is touched.
//
// Membership changes come in two shapes: remove_backend() is abrupt
// (crash semantics — in-flight work keeps its SlotPtr and finishes or
// fails over), drain_backend() is planned — the member leaves the ring
// immediately so new keys route to the post-removal owners, but the slot
// parks in a Draining set until its in-flight count hits zero, then the
// call reports handoff size, duration, and a zero-loss flag.
//
// predict() is synchronous on the caller's thread (closed-loop clients,
// the bench).  submit() runs predict() on a private executor and returns
// a future — the shape net::Server's bridge needs.  Everything is
// instrumented under cluster.router.* (requests, hedges fired/won/
// abandoned, failovers, breaker transitions, ring remaps, per-backend
// in-flight gauges, end-to-end latency histogram).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/backend.hpp"
#include "cluster/breaker.hpp"
#include "cluster/ring.hpp"
#include "common/units.hpp"
#include "fault/injector.hpp"
#include "net/protocol.hpp"
#include "obs/obs.hpp"
#include "serve/admission.hpp"

namespace gppm::cluster {

/// Lock-free log-binned latency sketch: record() on the hot path is two
/// relaxed atomic increments, quantile() scans 64 bins.  Good to ~19 % bin
/// width, plenty for a hedge trigger.
class LatencyTracker {
 public:
  void record(double seconds);
  /// Approximate q-quantile (upper edge of the bin holding the rank-th
  /// smallest sample, rank = clamp(ceil(q * count), 1, count)), or +inf
  /// with no samples — "no estimate": a caller clamping into a delay band
  /// then gets the conservative ceiling, never the aggressive floor.
  /// Single-sample windows and q == 0 return that sample's own bin, not
  /// the empty bin-0 edge.
  double quantile(double q) const;
  std::uint64_t count() const {
    return total_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kBins = 64;
  std::atomic<std::uint64_t> bins_[kBins] = {};
  std::atomic<std::uint64_t> total_{0};
};

struct RouterOptions {
  /// Owners per key (>=2 for the loss-of-one-backend story; clamped to
  /// the fleet size at routing time).
  std::size_t replicas = 2;
  std::size_t ring_vnodes = 256;

  bool hedging = true;
  /// Hedge fires when the primary is slower than this observed quantile.
  double hedge_quantile = 0.99;
  Duration hedge_min_delay = Duration::milliseconds(0.5);
  Duration hedge_max_delay = Duration::milliseconds(100.0);
  /// Below this many recorded latencies the trigger is hedge_max_delay
  /// (be conservative until the distribution is known).
  std::uint64_t hedge_min_samples = 64;

  /// Completion poll tick while flights are outstanding.
  Duration poll_slice = Duration::microseconds(200.0);

  BreakerOptions breaker;

  /// Health-probe period; 0 disables the background loop (tests drive
  /// breakers directly).
  Duration health_interval = Duration::milliseconds(25.0);

  /// Executor threads behind submit().
  std::size_t async_workers = 4;

  /// Adaptive overload control (AIMD limit + deadline-aware admission) in
  /// front of predict(); a shed request gets a typed Overloaded response
  /// instead of queueing toward deadline blowout.
  bool admission_control = false;
  serve::AdmissionOptions admission;

  /// Chaos hook: consulted at the `cluster.drain.slow` site by
  /// drain_backend().  Not owned; may be nullptr (no injection).
  fault::FaultInjector* injector = nullptr;

  /// In-flight poll tick and default wait bound for drain_backend().
  Duration drain_poll = Duration::milliseconds(1.0);
  Duration drain_timeout = Duration::seconds(10.0);
};

/// Outcome of one drain_backend() call.
struct DrainReport {
  std::string backend;
  /// Requests still on the backend when it left the ring.
  std::uint64_t in_flight_at_start = 0;
  /// Requests that completed on the draining backend after it left the
  /// ring (the handoff window).
  std::uint64_t handed_off = 0;
  Duration duration = Duration::seconds(0.0);
  /// Drained to zero in time and no request failed during the handoff.
  bool zero_loss = false;
  /// In-flight reached zero before the timeout.
  bool completed = false;
};

struct RouterStats {
  std::uint64_t requests = 0;
  std::uint64_t hedges_fired = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t hedges_abandoned = 0;
  std::uint64_t failovers = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_rejections = 0;
  std::uint64_t ring_remaps = 0;
  std::uint64_t exhausted = 0;  ///< every replica failed
  std::uint64_t drains = 0;
  std::uint64_t drain_handed_off = 0;
  std::uint64_t admission_shed = 0;  ///< typed Overloaded at the door
};

class Router {
 public:
  explicit Router(RouterOptions options = {});
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Join a backend to the ring (name from backend->name(); must be
  /// unique among live members).
  void add_backend(std::shared_ptr<Backend> backend);
  /// Leave the ring; in-flight requests on the backend finish on their
  /// own.  No-op for unknown names.
  void remove_backend(const std::string& name);
  /// Planned removal: the backend leaves the ring immediately (new keys
  /// route to the post-removal owners) but its slot is kept in a Draining
  /// set so in-flight requests complete on it; blocks until in-flight hits
  /// zero or `timeout` (<= 0 uses options.drain_timeout), then drops the
  /// slot and reports.  Unknown names return a completed zero-loss no-op
  /// report; draining a name twice observes the same drain.
  DrainReport drain_backend(const std::string& name,
                            Duration timeout = Duration::seconds(0.0));
  std::vector<std::string> backends() const;
  /// True while `name` is in the draining set (left the ring, finishing
  /// in-flight work).
  bool draining(const std::string& name) const;

  /// Route, hedge, fail over; always answers (typed statuses for
  /// failures).  Throws gppm::Error only when the router has no backends
  /// at all or is stopped.
  serve::Response predict(const serve::Request& request);

  /// predict() on the executor; the future never carries an exception
  /// once enqueued.  Throws gppm::Error after stop() (the serve submit
  /// contract).
  std::future<serve::Response> submit(serve::Request request);

  /// Aggregate health for the net bridge: accepting while any backend's
  /// breaker admits traffic.
  net::HealthStatus health() const;

  BreakerState breaker_state(const std::string& name) const;
  RouterStats stats() const;
  /// Router-observed in-flight count for one backend (0 for unknown;
  /// draining backends still report).
  std::int64_t in_flight(const std::string& name) const;
  /// Current hedge trigger (what the next slow primary would wait).
  Duration hedge_delay() const;
  /// The admission controller, or nullptr when admission_control is off.
  const serve::AdmissionController* admission() const {
    return admission_ ? admission_.get() : nullptr;
  }

  /// Stop the health loop and the executor; backends are left running
  /// (the fleet owns their lifecycle).  Idempotent.
  void stop();

 private:
  struct Slot {
    std::shared_ptr<Backend> backend;
    CircuitBreaker breaker;
    std::atomic<std::int64_t> in_flight{0};
    /// Failed flights on this backend (feeds the drain zero-loss flag).
    std::atomic<std::uint64_t> failures{0};
    /// cluster.router.in_flight.<name>, resolved once at join time so the
    /// hot path never touches the registry map.
    obs::Gauge& gauge;
    Slot(std::shared_ptr<Backend> b, const BreakerOptions& bo,
         obs::Gauge& g)
        : backend(std::move(b)), breaker(bo), gauge(g) {}
  };
  using SlotPtr = std::shared_ptr<Slot>;

  struct AsyncJob {
    serve::Request request;
    std::promise<serve::Response> promise;
  };

  /// One launched attempt.
  struct Flight {
    SlotPtr slot;
    std::future<serve::Response> future;
    std::chrono::steady_clock::time_point launched;
    bool is_hedge = false;
  };

  std::vector<SlotPtr> route(const serve::Request& request) const;
  serve::Response predict_admitted(const serve::Request& request);
  /// Launch on the first admissible candidate from `next` on; records
  /// breaker failures for refused/failed launches.  Returns false when no
  /// candidate remains.
  bool launch(const std::vector<SlotPtr>& candidates, std::size_t& next,
              bool is_hedge, Flight& out, const serve::Request& request);
  void health_loop();
  void executor_loop();

  RouterOptions options_;
  mutable std::shared_mutex membership_mutex_;
  HashRing ring_;
  std::map<std::string, SlotPtr> slots_;
  /// Backends off the ring but still finishing in-flight work.
  std::map<std::string, SlotPtr> draining_;

  LatencyTracker latency_;
  std::unique_ptr<serve::AdmissionController> admission_;

  serve::BoundedQueue<AsyncJob> async_queue_;
  std::vector<std::thread> executors_;
  std::thread health_thread_;
  std::atomic<bool> stopped_{false};

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> hedges_fired_{0};
  std::atomic<std::uint64_t> hedge_wins_{0};
  std::atomic<std::uint64_t> hedges_abandoned_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> breaker_rejections_{0};
  std::atomic<std::uint64_t> ring_remaps_{0};
  std::atomic<std::uint64_t> exhausted_{0};
  std::atomic<std::uint64_t> drains_{0};
  std::atomic<std::uint64_t> drain_handed_off_{0};
  std::atomic<std::uint64_t> admission_shed_{0};
  /// Breaker opens already mirrored to the obs counter (health thread
  /// only).
  std::uint64_t reported_opens_ = 0;
};

}  // namespace gppm::cluster
