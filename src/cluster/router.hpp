// cluster::Router — sharded, replicated front-end over a backend fleet.
//
// Placement: each request's key (see ring.hpp) owns R replicas on a
// consistent-hash ring, primary first.  The router sends to the primary
// and holds the rest as hedge/failover targets, so a single backend loss
// costs its keys one failover, not an outage, and membership change
// remaps only ≈K/N keys.
//
// Tail control, layered in order of escalation:
//
//   * circuit breaking — a backend that keeps failing trips its breaker
//     Open and is routed around without spending a connection attempt;
//     the health loop probes it (HalfOpen) and closes the breaker when it
//     answers again;
//   * hedged requests — if the primary has not answered within the
//     observed p`hedge_quantile` latency (log-binned tracker, clamped to
//     [hedge_min_delay, hedge_max_delay]), the same request is fired at
//     the next replica and the first answer wins.  The loser is
//     abandoned, not awaited: the futures are promise-backed, so dropping
//     the handle never blocks, and the work it represents is accounted
//     under hedges_abandoned.  Predictions are pure, which is what makes
//     the duplicate send safe;
//   * failover — a failed flight (submit threw, or the future carried an
//     exception) records a breaker failure and moves to the next replica;
//     only when every replica has failed does the caller get an answer —
//     a typed ResponseStatus::InternalError response, never an exception,
//     mirroring the serve contract.
//
// Deadlines need no router logic: they ride the request into whichever
// backend serves it and the serve admission queue enforces them; load
// shedding likewise comes back as a typed Overloaded answer.
//
// predict() is synchronous on the caller's thread (closed-loop clients,
// the bench).  submit() runs predict() on a private executor and returns
// a future — the shape net::Server's bridge needs.  Everything is
// instrumented under cluster.router.* (requests, hedges fired/won/
// abandoned, failovers, breaker transitions, ring remaps, per-backend
// in-flight gauges, end-to-end latency histogram).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/backend.hpp"
#include "cluster/breaker.hpp"
#include "cluster/ring.hpp"
#include "common/units.hpp"
#include "net/protocol.hpp"
#include "obs/obs.hpp"

namespace gppm::cluster {

/// Lock-free log-binned latency sketch: record() on the hot path is two
/// relaxed atomic increments, quantile() scans 64 bins.  Good to ~19 % bin
/// width, plenty for a hedge trigger.
class LatencyTracker {
 public:
  void record(double seconds);
  /// Approximate q-quantile (upper edge of the containing bin), or 0 with
  /// no samples.
  double quantile(double q) const;
  std::uint64_t count() const {
    return total_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kBins = 64;
  std::atomic<std::uint64_t> bins_[kBins] = {};
  std::atomic<std::uint64_t> total_{0};
};

struct RouterOptions {
  /// Owners per key (>=2 for the loss-of-one-backend story; clamped to
  /// the fleet size at routing time).
  std::size_t replicas = 2;
  std::size_t ring_vnodes = 256;

  bool hedging = true;
  /// Hedge fires when the primary is slower than this observed quantile.
  double hedge_quantile = 0.99;
  Duration hedge_min_delay = Duration::milliseconds(0.5);
  Duration hedge_max_delay = Duration::milliseconds(100.0);
  /// Below this many recorded latencies the trigger is hedge_max_delay
  /// (be conservative until the distribution is known).
  std::uint64_t hedge_min_samples = 64;

  /// Completion poll tick while flights are outstanding.
  Duration poll_slice = Duration::microseconds(200.0);

  BreakerOptions breaker;

  /// Health-probe period; 0 disables the background loop (tests drive
  /// breakers directly).
  Duration health_interval = Duration::milliseconds(25.0);

  /// Executor threads behind submit().
  std::size_t async_workers = 4;
};

struct RouterStats {
  std::uint64_t requests = 0;
  std::uint64_t hedges_fired = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t hedges_abandoned = 0;
  std::uint64_t failovers = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_rejections = 0;
  std::uint64_t ring_remaps = 0;
  std::uint64_t exhausted = 0;  ///< every replica failed
};

class Router {
 public:
  explicit Router(RouterOptions options = {});
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Join a backend to the ring (name from backend->name(); must be
  /// unique among live members).
  void add_backend(std::shared_ptr<Backend> backend);
  /// Leave the ring; in-flight requests on the backend finish on their
  /// own.  No-op for unknown names.
  void remove_backend(const std::string& name);
  std::vector<std::string> backends() const;

  /// Route, hedge, fail over; always answers (typed statuses for
  /// failures).  Throws gppm::Error only when the router has no backends
  /// at all or is stopped.
  serve::Response predict(const serve::Request& request);

  /// predict() on the executor; the future never carries an exception
  /// once enqueued.  Throws gppm::Error after stop() (the serve submit
  /// contract).
  std::future<serve::Response> submit(serve::Request request);

  /// Aggregate health for the net bridge: accepting while any backend's
  /// breaker admits traffic.
  net::HealthStatus health() const;

  BreakerState breaker_state(const std::string& name) const;
  RouterStats stats() const;
  /// Router-observed in-flight count for one backend (0 for unknown).
  std::int64_t in_flight(const std::string& name) const;
  /// Current hedge trigger (what the next slow primary would wait).
  Duration hedge_delay() const;

  /// Stop the health loop and the executor; backends are left running
  /// (the fleet owns their lifecycle).  Idempotent.
  void stop();

 private:
  struct Slot {
    std::shared_ptr<Backend> backend;
    CircuitBreaker breaker;
    std::atomic<std::int64_t> in_flight{0};
    /// cluster.router.in_flight.<name>, resolved once at join time so the
    /// hot path never touches the registry map.
    obs::Gauge& gauge;
    Slot(std::shared_ptr<Backend> b, const BreakerOptions& bo,
         obs::Gauge& g)
        : backend(std::move(b)), breaker(bo), gauge(g) {}
  };
  using SlotPtr = std::shared_ptr<Slot>;

  struct AsyncJob {
    serve::Request request;
    std::promise<serve::Response> promise;
  };

  /// One launched attempt.
  struct Flight {
    SlotPtr slot;
    std::future<serve::Response> future;
    std::chrono::steady_clock::time_point launched;
    bool is_hedge = false;
  };

  std::vector<SlotPtr> route(const serve::Request& request) const;
  /// Launch on the first admissible candidate from `next` on; records
  /// breaker failures for refused/failed launches.  Returns false when no
  /// candidate remains.
  bool launch(const std::vector<SlotPtr>& candidates, std::size_t& next,
              bool is_hedge, Flight& out, const serve::Request& request);
  void health_loop();
  void executor_loop();

  RouterOptions options_;
  mutable std::shared_mutex membership_mutex_;
  HashRing ring_;
  std::map<std::string, SlotPtr> slots_;

  LatencyTracker latency_;

  serve::BoundedQueue<AsyncJob> async_queue_;
  std::vector<std::thread> executors_;
  std::thread health_thread_;
  std::atomic<bool> stopped_{false};

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> hedges_fired_{0};
  std::atomic<std::uint64_t> hedge_wins_{0};
  std::atomic<std::uint64_t> hedges_abandoned_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> breaker_rejections_{0};
  std::atomic<std::uint64_t> ring_remaps_{0};
  std::atomic<std::uint64_t> exhausted_{0};
  /// Breaker opens already mirrored to the obs counter (health thread
  /// only).
  std::uint64_t reported_opens_ = 0;
};

}  // namespace gppm::cluster
