// Backend — one node of the serving fleet, as the Router sees it.
//
// Three implementations share the interface:
//
//   * LocalBackend — owns a serve::PredictionServer in-process.  kill()
//     and restart() model a node crash and recovery: a killed backend
//     throws from submit() (the same contract as a shut-down server) and
//     a restarted one serves again from a *freshly loaded copy of the
//     same fitted model pair*, so its answers stay bit-identical across
//     the crash.
//   * RemoteBackend — the node lives behind gppm::net TCP; submits run as
//     blocking Client RPCs on a small private worker pool so the router's
//     caller never blocks on another node's socket.
//   * ShapedBackend — a decorator that imposes a node's service envelope
//     (a minimum service time, a concurrency ceiling, an optional periodic
//     lag spike) on whatever it wraps.  On a single-core host the fitted
//     models answer in microseconds and N co-located backends would just
//     contend for the one core; the envelope makes per-node capacity the
//     binding constraint, which is what the 1→2→4 scaling bench and the
//     hedging p999 comparison are measuring.  Sleeping threads cost no
//     CPU, so shaped fleets scale on one core.
//
// Futures returned by submit() are promise-backed: dropping one (a hedge
// loser) never blocks, and the eventual set_value lands in a dead handle.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/units.hpp"
#include "core/unified_model.hpp"
#include "net/client.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"

namespace gppm::cluster {

/// One routable node.  Implementations must be thread-safe: the router
/// submits from many caller threads and pings from its health thread.
class Backend {
 public:
  virtual ~Backend() = default;

  virtual const std::string& name() const = 0;

  /// Launch one request.  A backend that cannot even accept (killed /
  /// shut down / dead socket with retries exhausted) may throw here or
  /// deliver the exception through the future; the router treats both as
  /// the same breaker-recorded failure.  An *answered* response with a
  /// non-Ok status is a success at this layer — the node is alive.
  virtual std::future<serve::Response> submit(const serve::Request& request) = 0;

  /// Cheap liveness probe for the health loop.  False or throw = down.
  virtual bool ping() = 0;
};

/// In-process node: a PredictionServer plus the model pair to rebuild it.
class LocalBackend : public Backend {
 public:
  LocalBackend(std::string name, core::UnifiedModel power_model,
               core::UnifiedModel perf_model,
               serve::ServerOptions options = {});
  ~LocalBackend() override;

  const std::string& name() const override { return name_; }
  std::future<serve::Response> submit(const serve::Request& request) override;
  bool ping() override;

  /// Crash the node: drain, discard the server.  Subsequent submits
  /// throw.  Idempotent.
  void kill();
  /// Recover: a fresh server with a fresh copy of the same model pair.
  void restart();
  bool alive() const;

  /// The live server, or nullptr while killed (metrics inspection only).
  std::shared_ptr<serve::PredictionServer> server() const;

 private:
  std::string name_;
  core::UnifiedModel power_;
  core::UnifiedModel perf_;
  serve::ServerOptions options_;
  mutable std::shared_mutex mutex_;
  std::shared_ptr<serve::PredictionServer> server_;
};

/// A node behind gppm::net TCP.  Each submit is a blocking Client RPC run
/// on one of `workers` private threads; the pooled client's stale-FD
/// eviction and jittered reconnect backoff give re-adoption of a
/// restarted server for free.
class RemoteBackend : public Backend {
 public:
  RemoteBackend(std::string name, net::ClientOptions options,
                std::size_t workers = 4,
                fault::FaultInjector* injector = nullptr);
  ~RemoteBackend() override;

  const std::string& name() const override { return name_; }
  std::future<serve::Response> submit(const serve::Request& request) override;
  /// health() RPC against a v2 server, plain ping() against a v1 one.
  bool ping() override;

  void stop();
  net::Client& client() { return client_; }

 private:
  struct Job {
    serve::Request request;
    std::promise<serve::Response> promise;
  };

  void worker_loop();

  std::string name_;
  net::Client client_;
  serve::BoundedQueue<Job> queue_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
};

/// Service envelope for ShapedBackend.
struct ShapingOptions {
  /// Floor on per-request service time (queue wait under the concurrency
  /// ceiling counts toward it, extra sleep makes up the rest).
  Duration min_service = Duration::milliseconds(1.0);
  /// Requests serviced concurrently; beyond this they queue.
  std::size_t concurrency = 4;
  /// Every `lag_every`-th request (1-based sequence) stalls an extra
  /// `lag` — the slow-shard behavior hedging exists to absorb.  0 = off.
  std::size_t lag_every = 0;
  Duration lag = Duration::milliseconds(20.0);
};

/// Decorator imposing ShapingOptions on an inner backend.
class ShapedBackend : public Backend {
 public:
  ShapedBackend(std::shared_ptr<Backend> inner, ShapingOptions options);
  ~ShapedBackend() override;

  const std::string& name() const override { return inner_->name(); }
  std::future<serve::Response> submit(const serve::Request& request) override;
  bool ping() override { return inner_->ping(); }

  void stop();

 private:
  struct Job {
    serve::Request request;
    std::promise<serve::Response> promise;
    std::uint64_t seq = 0;
  };

  void worker_loop();

  std::shared_ptr<Backend> inner_;
  ShapingOptions options_;
  serve::BoundedQueue<Job> queue_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> seq_{0};
};

}  // namespace gppm::cluster
