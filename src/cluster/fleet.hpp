// LocalFleet — N backend nodes plus the Router fronting them, built from
// one fitted model pair.
//
// Every node loads a copy of the *same* (power, exectime) UnifiedModel
// pair, so any replica's answer to any request is bit-identical to any
// other's — the property that makes hedging, failover and chaos-time
// re-routing safe, and the one the chaos gate checks against a
// single-node ground truth.
//
// Two wirings:
//   * in-process (default): the router submits straight into each node's
//     PredictionServer — the TSan'd cluster_smoke shape;
//   * wire (`FleetOptions::wire`): each node additionally sits behind its
//     own net::Server on a loopback port and the router talks to it
//     through a RemoteBackend (pooled net::Client).  kill() then stops
//     the node's TCP server too (connections reset like a process death)
//     and restart() rebinds the *same* port — SO_REUSEADDR plus the
//     client pool's stale-FD eviction make re-adoption automatic.
//
// Reconfiguration: kill()/restart() are the *crash* path (abrupt, for
// chaos).  The *planned* path is drain_node() (router drain + engine
// shutdown), rejoin() (fresh engine, back on the ring) and
// rolling_restart() (drain→restart→rejoin every in-ring node in turn, the
// zero-downtime upgrade shape).  add_node() grows the fleet live.  All
// lifecycle entry points are safe to call concurrently — a Supervisor
// restarting node 2 while a chaos reaper kills node 0 and a drain
// scheduler cycles node 1 is the intended load.
//
// Optional shaping wraps every node in a ShapedBackend service envelope
// (see backend.hpp for why the scaling bench needs one on a 1-core host).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cluster/backend.hpp"
#include "cluster/router.hpp"
#include "core/unified_model.hpp"
#include "net/server.hpp"

namespace gppm::cluster {

struct FleetOptions {
  std::size_t backends = 2;
  /// Per-node serve options (worker pool, queue, cache).
  serve::ServerOptions server;
  /// Put each node behind gppm::net TCP (loopback) instead of in-process.
  bool wire = false;
  /// Wire mode: client options template (host/port are filled per node).
  net::ClientOptions client;
  /// Wire mode: RPC worker threads per RemoteBackend.
  std::size_t remote_workers = 4;
  /// Wire mode: fault injector for *client-side* socket I/O (net.reset
  /// bursts in the chaos profile).  May be nullptr.
  fault::FaultInjector* injector = nullptr;
  /// Service envelope; disabled when shape is nullopt-like (enabled flag).
  bool shaped = false;
  ShapingOptions shaping;
};

/// Outcome of one rolling_restart(): per-node drain reports plus the
/// aggregate verdict.
struct RollingRestartReport {
  std::vector<DrainReport> drains;
  bool zero_loss = true;  ///< every drain completed with zero loss
  Duration duration = Duration::seconds(0.0);
};

class LocalFleet {
 public:
  /// Builds the nodes, joins them all to a fresh Router.
  LocalFleet(core::UnifiedModel power_model, core::UnifiedModel perf_model,
             FleetOptions options = {}, RouterOptions router_options = {});
  ~LocalFleet();

  LocalFleet(const LocalFleet&) = delete;
  LocalFleet& operator=(const LocalFleet&) = delete;

  Router& router() { return *router_; }
  std::size_t size() const;
  const std::string& name(std::size_t i) const;
  /// Wire mode only: the node's loopback port.
  std::uint16_t port(std::size_t i) const;

  /// Crash node i mid-run: prediction server drained and discarded; in
  /// wire mode its TCP server stops too (peers see resets/refusals).
  void kill(std::size_t i);
  /// Recover node i with a fresh copy of the same model pair; wire mode
  /// rebinds the same port.  Does NOT touch ring membership — pair with
  /// rejoin() after a drain.
  void restart(std::size_t i);
  bool alive(std::size_t i) const;

  /// Grow the fleet: build one more node (unique name, fresh port) and
  /// join it to the ring.  Returns its index.
  std::size_t add_node();
  /// Planned removal of node i: drain on the router (handoff), then shut
  /// the engine down.  `timeout` <= 0 uses the router default.
  DrainReport drain_node(std::size_t i,
                         Duration timeout = Duration::seconds(0.0));
  /// Bring a drained/killed node back: fresh engine, rejoin the ring.
  /// No-op when the node is already a ring member.
  void rejoin(std::size_t i);
  /// True when node i is currently a ring member (draining counts as
  /// out).
  bool in_ring(std::size_t i) const;
  /// One supervised health probe of node i through its fronting backend.
  bool probe(std::size_t i) const;
  /// Drain → restart → rejoin every in-ring node, one at a time, under
  /// whatever traffic is running.  The zero-downtime upgrade shape.
  RollingRestartReport rolling_restart(
      Duration per_node_timeout = Duration::seconds(0.0));

  /// Model fingerprints as a single-node server would announce them.
  std::vector<serve::PredictionServer::LoadedModel> loaded_models() const;

  /// Bridge for net::Server: `gppm serve --cluster N` puts the whole
  /// fleet behind one port.  The fleet must outlive the bridge's use.
  net::ServeBridge bridge();

  /// Stop the router and every node.  Idempotent.
  void stop();

 private:
  struct Node {
    std::shared_ptr<LocalBackend> local;
    std::unique_ptr<net::Server> server;  ///< wire mode only
    std::uint16_t port = 0;               ///< pinned across restarts
    std::shared_ptr<Backend> fronting;    ///< what the router routes to
    /// Serializes kill/restart/rejoin on this node (a supervisor restart
    /// racing a chaos kill must interleave whole operations, not torn
    /// halves).
    std::mutex lifecycle;
  };

  /// Build a node (engine, optional wire front, shaping) but do not join
  /// it to the ring.
  std::unique_ptr<Node> make_node(const std::string& name);
  Node& node_at(std::size_t i) const;

  FleetOptions options_;
  core::UnifiedModel power_;
  core::UnifiedModel perf_;
  /// unique_ptr so concurrent add_node() growth never moves a Node that
  /// kill/restart/probe hold a reference to.
  std::vector<std::unique_ptr<Node>> nodes_;
  mutable std::shared_mutex nodes_mutex_;
  std::size_t next_id_ = 0;
  std::vector<serve::PredictionServer::LoadedModel> models_;
  std::unique_ptr<Router> router_;
  bool stopped_ = false;
};

}  // namespace gppm::cluster
