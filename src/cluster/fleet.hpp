// LocalFleet — N backend nodes plus the Router fronting them, built from
// one fitted model pair.
//
// Every node loads a copy of the *same* (power, exectime) UnifiedModel
// pair, so any replica's answer to any request is bit-identical to any
// other's — the property that makes hedging, failover and chaos-time
// re-routing safe, and the one the chaos gate checks against a
// single-node ground truth.
//
// Two wirings:
//   * in-process (default): the router submits straight into each node's
//     PredictionServer — the TSan'd cluster_smoke shape;
//   * wire (`FleetOptions::wire`): each node additionally sits behind its
//     own net::Server on a loopback port and the router talks to it
//     through a RemoteBackend (pooled net::Client).  kill() then stops
//     the node's TCP server too (connections reset like a process death)
//     and restart() rebinds the *same* port — SO_REUSEADDR plus the
//     client pool's stale-FD eviction make re-adoption automatic.
//
// Optional shaping wraps every node in a ShapedBackend service envelope
// (see backend.hpp for why the scaling bench needs one on a 1-core host).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/backend.hpp"
#include "cluster/router.hpp"
#include "core/unified_model.hpp"
#include "net/server.hpp"

namespace gppm::cluster {

struct FleetOptions {
  std::size_t backends = 2;
  /// Per-node serve options (worker pool, queue, cache).
  serve::ServerOptions server;
  /// Put each node behind gppm::net TCP (loopback) instead of in-process.
  bool wire = false;
  /// Wire mode: client options template (host/port are filled per node).
  net::ClientOptions client;
  /// Wire mode: RPC worker threads per RemoteBackend.
  std::size_t remote_workers = 4;
  /// Wire mode: fault injector for *client-side* socket I/O (net.reset
  /// bursts in the chaos profile).  May be nullptr.
  fault::FaultInjector* injector = nullptr;
  /// Service envelope; disabled when shape is nullopt-like (enabled flag).
  bool shaped = false;
  ShapingOptions shaping;
};

class LocalFleet {
 public:
  /// Builds the nodes, joins them all to a fresh Router.
  LocalFleet(core::UnifiedModel power_model, core::UnifiedModel perf_model,
             FleetOptions options = {}, RouterOptions router_options = {});
  ~LocalFleet();

  LocalFleet(const LocalFleet&) = delete;
  LocalFleet& operator=(const LocalFleet&) = delete;

  Router& router() { return *router_; }
  std::size_t size() const { return nodes_.size(); }
  const std::string& name(std::size_t i) const;
  /// Wire mode only: the node's loopback port.
  std::uint16_t port(std::size_t i) const;

  /// Crash node i mid-run: prediction server drained and discarded; in
  /// wire mode its TCP server stops too (peers see resets/refusals).
  void kill(std::size_t i);
  /// Recover node i with a fresh copy of the same model pair; wire mode
  /// rebinds the same port.
  void restart(std::size_t i);
  bool alive(std::size_t i) const;

  /// Model fingerprints as a single-node server would announce them.
  std::vector<serve::PredictionServer::LoadedModel> loaded_models() const;

  /// Bridge for net::Server: `gppm serve --cluster N` puts the whole
  /// fleet behind one port.  The fleet must outlive the bridge's use.
  net::ServeBridge bridge();

  /// Stop the router and every node.  Idempotent.
  void stop();

 private:
  struct Node {
    std::shared_ptr<LocalBackend> local;
    std::unique_ptr<net::Server> server;  ///< wire mode only
    std::uint16_t port = 0;               ///< pinned across restarts
    std::shared_ptr<Backend> fronting;    ///< what the router routes to
  };

  FleetOptions options_;
  core::UnifiedModel power_;
  core::UnifiedModel perf_;
  std::vector<Node> nodes_;
  std::vector<serve::PredictionServer::LoadedModel> models_;
  std::unique_ptr<Router> router_;
  bool stopped_ = false;
};

}  // namespace gppm::cluster
