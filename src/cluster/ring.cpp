#include "cluster/ring.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "serve/cache.hpp"

namespace gppm::cluster {

std::uint64_t request_key(const serve::Request& request) {
  // Mix the board and the tenant into the phase fingerprint: two boards
  // with an identical counter vector must not collide onto one arc, and
  // two tenants replaying the same phase may be served by different model
  // families, so their keys (and hence placement) must differ too.
  std::uint64_t state = serve::counters_fingerprint(request.counters) ^
                        (0x9e3779b97f4a7c15ull *
                         (static_cast<std::uint64_t>(request.gpu) + 1)) ^
                        (0xbf58476d1ce4e5b9ull *
                         (static_cast<std::uint64_t>(request.tenant) + 1));
  return splitmix64(state);
}

HashRing::HashRing(std::size_t vnodes) : vnodes_(vnodes) {
  GPPM_CHECK(vnodes_ > 0, "ring needs at least one virtual node per member");
}

bool HashRing::add(const std::string& id) {
  const auto it = std::lower_bound(members_.begin(), members_.end(), id);
  if (it != members_.end() && *it == id) return false;
  members_.insert(it, id);
  rebuild_points();
  return true;
}

bool HashRing::remove(const std::string& id) {
  const auto it = std::lower_bound(members_.begin(), members_.end(), id);
  if (it == members_.end() || *it != id) return false;
  members_.erase(it);
  rebuild_points();
  return true;
}

bool HashRing::contains(const std::string& id) const {
  return std::binary_search(members_.begin(), members_.end(), id);
}

void HashRing::rebuild_points() {
  // Point positions depend only on (member name, vnode index), never on
  // the rest of the membership — that independence is what bounds the
  // remap on join/leave to the arcs the member itself covers.
  points_.clear();
  points_.reserve(members_.size() * vnodes_);
  for (std::uint32_t m = 0; m < members_.size(); ++m) {
    std::uint64_t state = fnv1a(members_[m]);
    for (std::size_t v = 0; v < vnodes_; ++v) {
      points_.push_back({splitmix64(state), m});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.hash != b.hash ? a.hash < b.hash
                                      : a.member < b.member;
            });
}

const std::string& HashRing::owner(std::uint64_t key) const {
  GPPM_CHECK(!points_.empty(), "consistent-hash ring is empty");
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const Point& p, std::uint64_t k) { return p.hash < k; });
  if (it == points_.end()) it = points_.begin();  // wrap
  return members_[it->member];
}

std::vector<std::string> HashRing::replicas(std::uint64_t key,
                                            std::size_t count) const {
  std::vector<std::string> owners;
  if (points_.empty() || count == 0) return owners;
  const std::size_t want = std::min(count, members_.size());
  owners.reserve(want);
  std::vector<bool> taken(members_.size(), false);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const Point& p, std::uint64_t k) { return p.hash < k; });
  for (std::size_t steps = 0; steps < points_.size() && owners.size() < want;
       ++steps, ++it) {
    if (it == points_.end()) it = points_.begin();  // wrap
    if (taken[it->member]) continue;
    taken[it->member] = true;
    owners.push_back(members_[it->member]);
  }
  return owners;
}

}  // namespace gppm::cluster
