#include "fault/plan.hpp"

#include <istream>
#include <sstream>

#include "common/error.hpp"
#include "common/str.hpp"

namespace gppm::fault {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

double parse_number(const std::string& field, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(value, &consumed);
    GPPM_CHECK(consumed == value.size(), "trailing junk");
    return v;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error("fault profile: bad value '" + value + "' for " + field);
  }
}

}  // namespace

const SiteSpec* FaultPlan::find(std::string_view site) const {
  for (const SiteSpec& s : sites) {
    if (s.site == site) return &s;
  }
  return nullptr;
}

FaultPlan FaultPlan::parse(std::istream& in) {
  FaultPlan plan;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;

    SiteSpec spec;
    spec.site = tokens[0];
    GPPM_CHECK(plan.find(spec.site) == nullptr,
               "fault profile line " + std::to_string(lineno) +
                   ": duplicate site '" + spec.site + "'");
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const std::string& tok = tokens[i];
      const std::size_t eq = tok.find('=');
      GPPM_CHECK(eq != std::string::npos && eq > 0 && eq + 1 < tok.size(),
                 "fault profile line " + std::to_string(lineno) +
                     ": expected key=value, got '" + tok + "'");
      const std::string key = tok.substr(0, eq);
      const std::string value = tok.substr(eq + 1);
      if (key == "p") {
        spec.probability = parse_number(key, value);
      } else if (key == "burst") {
        spec.burst = static_cast<int>(parse_number(key, value));
      } else if (key == "mag") {
        spec.magnitude = parse_number(key, value);
      } else {
        throw Error("fault profile line " + std::to_string(lineno) +
                    ": unknown field '" + key + "'");
      }
    }
    GPPM_CHECK(spec.probability >= 0.0 && spec.probability <= 1.0,
               "fault profile: probability of '" + spec.site +
                   "' must be in [0, 1]");
    GPPM_CHECK(spec.burst >= 1,
               "fault profile: burst of '" + spec.site + "' must be >= 1");
    plan.sites.push_back(std::move(spec));
  }
  return plan;
}

FaultPlan FaultPlan::parse_string(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

FaultPlan FaultPlan::default_profile() {
  return parse_string(
      "# gppm default chaos profile\n"
      "meter.drop        p=0.02 burst=2\n"
      "meter.spike       p=0.02 mag=3.0\n"
      "meter.disconnect  p=0.03\n"
      "nvml.query        p=0.05 burst=3\n"
      "dvfs.set_pair     p=0.08\n");
}

FaultPlan FaultPlan::net_profile() {
  return parse_string(
      "# gppm network chaos profile\n"
      "net.connect     p=0.10 burst=2\n"
      "net.short_read  p=0.20 burst=4\n"
      "net.reset       p=0.02\n");
}

FaultPlan FaultPlan::cluster_profile() {
  return parse_string(
      "# gppm cluster reconfiguration chaos profile\n"
      "net.connect         p=0.05 burst=2\n"
      "net.short_read      p=0.10 burst=4\n"
      "net.reset           p=0.01\n"
      "supervisor.probe    p=0.10 burst=2\n"
      "cluster.drain.slow  p=0.20 mag=5.0\n");
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const SiteSpec& s : sites) {
    out += s.site + " p=" + format_double(s.probability, 6) +
           " burst=" + std::to_string(s.burst) +
           " mag=" + format_double(s.magnitude, 6) + "\n";
  }
  return out;
}

}  // namespace gppm::fault
