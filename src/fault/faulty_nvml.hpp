// NVML queries as an unreliable, status-returning channel.
//
// Real NVML calls return nvmlReturn_t; transient NVML_ERROR_TIMEOUT /
// NVML_ERROR_UNKNOWN results are routine under driver load and callers are
// expected to retry, while NVML_ERROR_GPU_IS_LOST means the device fell off
// the bus and retrying is pointless.  This wrapper reproduces that contract
// over the deterministic nvml::Session shim: every query consults the
// `nvml.query` injection site and, when it fires, returns an NVML-style
// status instead of a value (transient statuses with high probability, the
// permanent one rarely).
//
// A retrying sampler built on common/retry.hpp is included — the hardened
// equivalent of nvml::sample_power, which keeps sampling through transient
// query failures and surfaces only permanent ones.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/retry.hpp"
#include "fault/injector.hpp"
#include "nvml/nvml.hpp"

namespace gppm::fault {

/// NVML-style status codes (the subset the wrapper can produce).
enum class NvmlStatus : std::uint8_t {
  Success,
  ErrorTimeout,    ///< transient: the query timed out
  ErrorUnknown,    ///< transient: the driver hiccupped
  ErrorGpuIsLost,  ///< permanent: the device fell off the bus
};

std::string to_string(NvmlStatus status);

/// True for statuses a caller should retry.
bool is_transient(NvmlStatus status);

/// A status-or-value query result (NVML's nvmlReturn_t + out-parameter
/// shape, folded into one value).
template <typename T>
struct NvmlResult {
  NvmlStatus status = NvmlStatus::Success;
  T value{};
  bool ok() const { return status == NvmlStatus::Success; }
};

/// An nvml::Session whose queries can fail with NVML-style statuses.
class FaultyNvmlSession {
 public:
  /// `injector` may be nullptr: every query then succeeds.
  FaultyNvmlSession(nvml::Session& session, FaultInjector* injector);

  NvmlResult<unsigned> power_usage_mw(nvml::DeviceHandle handle,
                                      Duration at);
  NvmlResult<nvml::UtilizationRates> utilization(nvml::DeviceHandle handle,
                                                 Duration at);
  NvmlResult<std::uint64_t> total_energy_mj(nvml::DeviceHandle handle,
                                            Duration until);

  /// Hardened fixed-interval sampler: like nvml::sample_power but each
  /// query retries under `policy` on transient statuses.  Queries that
  /// stay failed after the policy's attempts throw TransientError;
  /// ErrorGpuIsLost throws PermanentError immediately.  `stats`, when
  /// non-null, accumulates the retry accounting.
  std::vector<nvml::PowerSample> sample_power(nvml::DeviceHandle handle,
                                              Duration duration,
                                              Duration period,
                                              const RetryPolicy& policy,
                                              RetryStats* stats = nullptr);

  const nvml::Session& session() const { return session_; }

 private:
  NvmlStatus query_status();

  nvml::Session& session_;
  FaultInjector* injector_;
};

}  // namespace gppm::fault
