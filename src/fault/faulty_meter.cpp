#include "fault/faulty_meter.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gppm::fault {

FaultyMeter::FaultyMeter(meter::MeterConfig config, std::uint64_t seed,
                         FaultInjector* injector)
    : meter_(config, seed), injector_(injector) {}

std::size_t FaultyMeter::expected_sample_count(
    const meter::MeterConfig& config,
    const std::vector<meter::TimelineSegment>& timeline) {
  const double total = meter::WT1600::total_duration(timeline).as_seconds();
  return static_cast<std::size_t>(
      std::floor(total / config.sampling_period.as_seconds()));
}

meter::Measurement FaultyMeter::measure(
    const std::vector<meter::TimelineSegment>& timeline) {
  meter::Measurement m = meter_.measure(timeline);
  if (injector_ == nullptr) return m;

  // Disconnect is a per-run event (the GPIB link dying), not a per-sample
  // one — runs span hundreds of sampling windows and a per-sample check
  // would compound the probability into near-certain failure.  The cut
  // point is drawn from the same site stream, so it is as deterministic as
  // the decision itself.
  if (injector_->should_fire(kSiteMeterDisconnect)) {
    const auto cut = static_cast<std::size_t>(
        injector_->uniform(kSiteMeterDisconnect) *
        static_cast<double>(m.samples.size()));
    throw TransientError("power meter disconnected mid-run after " +
                         std::to_string(cut) + " of " +
                         std::to_string(m.samples.size()) + " samples");
  }

  std::vector<meter::PowerSample> survivors;
  survivors.reserve(m.samples.size());
  bool mutated = false;
  for (std::size_t i = 0; i < m.samples.size(); ++i) {
    if (injector_->should_fire(kSiteMeterDrop)) {
      mutated = true;
      continue;
    }
    meter::PowerSample sample = m.samples[i];
    if (injector_->should_fire(kSiteMeterSpike)) {
      sample.power = sample.power * injector_->magnitude(kSiteMeterSpike);
      mutated = true;
    }
    survivors.push_back(sample);
  }
  // A run every site left alone is bit-identical to the healthy meter's —
  // the equivalence the chaos suite's best-pair assertions build on.
  if (!mutated) return m;

  // Recompute the summaries over what survived; an empty survivor set is a
  // run the channel lost entirely.
  if (survivors.empty()) {
    throw TransientError("power meter delivered no samples");
  }
  const double period_s = meter_.config().sampling_period.as_seconds();
  m.samples = std::move(survivors);
  double joules = 0.0;
  for (const meter::PowerSample& s : m.samples) {
    joules += s.power.as_watts() * period_s;
  }
  // Duration stays the nominal measurement window; energy is extrapolated
  // from the surviving samples' mean so a thinned stream remains an
  // unbiased (if noisier) estimate.
  const double mean_watts =
      joules / (static_cast<double>(m.samples.size()) * period_s);
  m.average_power = Power::watts(mean_watts);
  m.energy = m.average_power * m.duration;
  return m;
}

}  // namespace gppm::fault
