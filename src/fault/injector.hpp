// The executing half of fault injection: a seeded, fully deterministic
// firing engine over named sites.
//
// Every instrumented code path asks `should_fire(site)` at the moment the
// corresponding real-world failure could happen (one check per meter
// sample, per NVML query, per P-state transition).  Each site draws from
// its own RNG stream — forked from the injector seed by the FNV-1a hash of
// the site name — so firing sequences are independent of the order in
// which *other* sites are exercised and byte-reproducible across runs with
// the same seed and the same per-site check sequence.
//
// Burst semantics model correlated failures (a wedged serial link drops
// several consecutive samples, a driver hiccup fails several consecutive
// queries): once a site triggers, it keeps firing for `burst` consecutive
// checks before re-arming.
//
// Thread safety: all methods take one internal mutex, so a single injector
// can sit under concurrent socket paths (the cluster chaos profile drives
// hedged RPCs against several backends through one injector).  Each site's
// stream is still deterministic given its own check sequence; when checks
// of ONE site race across threads, their interleaving — and hence which
// check a fault lands on — is scheduling-dependent, so byte-reproducible
// runs require each site to be exercised from one thread at a time.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/rng.hpp"
#include "fault/plan.hpp"

namespace gppm::fault {

/// Per-site firing statistics.
struct SiteStats {
  std::uint64_t checks = 0;
  std::uint64_t fires = 0;
};

/// Deterministic fault firing engine.  A default-constructed injector has
/// no plan and never fires; code paths accept `FaultInjector*` with nullptr
/// meaning "healthy".
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(FaultPlan plan, std::uint64_t seed);

  /// One injection-point check.  Deterministic given the seed and this
  /// site's check count.  Unknown (or zero-probability) sites never fire.
  bool should_fire(std::string_view site);

  /// Kind-specific magnitude of a site (e.g. the spike factor); falls back
  /// to the SiteSpec default when the plan does not name the site.
  double magnitude(std::string_view site) const;

  /// Uniform [0,1) draw from the site's stream — used by wrappers that
  /// need a deterministic secondary choice (e.g. which NVML status code a
  /// failed query returns).  Counts as neither check nor fire.
  double uniform(std::string_view site);

  /// Re-arm every site from scratch with a new seed (check counts, burst
  /// state and statistics reset).
  void reset(std::uint64_t seed);

  const FaultPlan& plan() const { return plan_; }
  std::uint64_t seed() const { return seed_; }

  /// Firing statistics per site (sites appear once checked or planned).
  /// Returned by value: a snapshot, safe against concurrent checks.
  std::map<std::string, SiteStats, std::less<>> stats() const;
  std::uint64_t total_fires() const;
  std::uint64_t total_checks() const;

 private:
  struct SiteState {
    const SiteSpec* spec = nullptr;  // points into plan_.sites
    Rng rng{0};
    int burst_remaining = 0;
  };
  SiteState& state(std::string_view site);

  FaultPlan plan_;
  std::uint64_t seed_ = 0;
  mutable std::mutex mutex_;
  std::map<std::string, SiteState, std::less<>> states_;
  std::map<std::string, SiteStats, std::less<>> stats_;
};

}  // namespace gppm::fault
